#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

namespace msvm::sim {

namespace {

/// The fiber currently executing on this thread (nullptr in main context).
/// The whole simulator is single-threaded by design, but thread_local keeps
/// independent simulations on different host threads (e.g. parallel gtest
/// shards) from interfering.
thread_local Fiber* g_current_fiber = nullptr;

}  // namespace

// msvm_fiber_swap(save, load): saves callee-saved registers and the stack
// pointer into *save, then installs *load as the new stack pointer and
// restores registers from it. SysV x86-64: rbx, rbp, r12-r15 are the only
// callee-saved GPRs; xmm registers are caller-saved and the simulator never
// changes mxcsr/x87 control words.
extern "C" void msvm_fiber_swap(void** save_rsp, void* const* load_rsp);

asm(R"asm(
.text
.globl msvm_fiber_swap
.type msvm_fiber_swap, @function
.align 16
msvm_fiber_swap:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq %rsp, (%rdi)
    movq (%rsi), %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    ret
.size msvm_fiber_swap, .-msvm_fiber_swap
)asm");

Fiber::Fiber(Entry entry, std::size_t stack_bytes)
    : entry_(std::move(entry)) {
  const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  // Round the stack up to whole pages and add one guard page below it.
  stack_bytes = (stack_bytes + page - 1) / page * page;
  map_bytes_ = stack_bytes + page;
  void* map = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (map == MAP_FAILED) throw std::bad_alloc{};
  stack_base_ = map;
  if (mprotect(map, page, PROT_NONE) != 0) {
    munmap(map, map_bytes_);
    throw std::bad_alloc{};
  }

  // Build the initial frame so that the first msvm_fiber_swap() into this
  // fiber pops six zeroed callee-saved registers and "returns" into
  // trampoline(). Layout (low -> high): r15 r14 r13 r12 rbx rbp ret pad.
  // The pad qword keeps rsp % 16 == 8 at trampoline entry, matching the
  // SysV alignment contract for a function entered via call/ret.
  auto top = reinterpret_cast<std::uintptr_t>(map) + map_bytes_;
  top &= ~std::uintptr_t{15};
  auto* slots = reinterpret_cast<void**>(top) - 8;
  for (int i = 0; i < 6; ++i) slots[i] = nullptr;
  slots[6] = reinterpret_cast<void*>(&Fiber::trampoline);
  slots[7] = nullptr;
  fiber_rsp_ = slots;
}

Fiber::~Fiber() {
  if (started_ && !finished_) {
    // Destroying a suspended fiber would leak the objects on its stack.
    // This indicates a scheduler bug; fail loudly.
    std::fprintf(stderr,
                 "msvm::sim::Fiber destroyed while suspended mid-execution\n");
    std::abort();
  }
  if (stack_base_ != nullptr) munmap(stack_base_, map_bytes_);
}

void Fiber::resume() {
  assert(g_current_fiber == nullptr && "resume() must come from main");
  assert(!finished_ && "cannot resume a finished fiber");
  started_ = true;
  g_current_fiber = this;
  msvm_fiber_swap(&main_rsp_, &fiber_rsp_);
  g_current_fiber = nullptr;
}

void Fiber::yield_to_main() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr && "yield_to_main() called outside any fiber");
  msvm_fiber_swap(&self->fiber_rsp_, &self->main_rsp_);
}

void Fiber::transfer(Fiber& from, Fiber& to) {
  assert(g_current_fiber == &from && "transfer() must come from `from`");
  assert(!to.finished_ && "cannot transfer to a finished fiber");
  // Whoever later yields to main must land in the resume() frame that
  // started this chain of transfers.
  to.main_rsp_ = from.main_rsp_;
  to.started_ = true;
  g_current_fiber = &to;
  msvm_fiber_swap(&from.fiber_rsp_, &to.fiber_rsp_);
  // Control returns here when some context switches back into `from`;
  // that resumer (resume() or another transfer()) has already updated
  // g_current_fiber, so nothing must be touched after the swap.
}

Fiber* Fiber::current() { return g_current_fiber; }

void Fiber::trampoline() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr);
  self->entry_();
  self->finished_ = true;
  // Release the closure eagerly: it may own captures whose destructors the
  // caller expects to run when the fiber completes, not when destroyed.
  self->entry_ = nullptr;
  Fiber::yield_to_main();
  // A finished fiber must never be resumed again.
  std::fprintf(stderr, "msvm::sim::Fiber resumed after completion\n");
  std::abort();
}

}  // namespace msvm::sim
