// Minimal leveled logger for the simulator. Off by default so that the
// discrete-event hot path stays free of I/O; benchmarks and failing tests
// turn it on via MSVM_LOG=debug or sim::set_log_level().
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace msvm::sim {

enum class LogLevel : int { kNone = 0, kError = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Reads MSVM_LOG (none|error|info|debug) once and installs the level.
void init_log_from_env();

namespace detail {
void vlog(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
}  // namespace detail

#define MSVM_LOG_ERROR(...)                                        \
  do {                                                             \
    if (::msvm::sim::log_level() >= ::msvm::sim::LogLevel::kError) \
      ::msvm::sim::detail::vlog(::msvm::sim::LogLevel::kError,     \
                                __VA_ARGS__);                      \
  } while (0)

#define MSVM_LOG_INFO(...)                                        \
  do {                                                            \
    if (::msvm::sim::log_level() >= ::msvm::sim::LogLevel::kInfo) \
      ::msvm::sim::detail::vlog(::msvm::sim::LogLevel::kInfo,     \
                                __VA_ARGS__);                     \
  } while (0)

#define MSVM_LOG_DEBUG(...)                                        \
  do {                                                             \
    if (::msvm::sim::log_level() >= ::msvm::sim::LogLevel::kDebug) \
      ::msvm::sim::detail::vlog(::msvm::sim::LogLevel::kDebug,     \
                                __VA_ARGS__);                      \
  } while (0)

}  // namespace msvm::sim
