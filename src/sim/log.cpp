#include "sim/log.hpp"

#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace msvm::sim {

namespace {
LogLevel g_level = LogLevel::kError;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void init_log_from_env() {
  const char* env = std::getenv("MSVM_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) {
    g_level = LogLevel::kDebug;
  } else if (std::strcmp(env, "info") == 0) {
    g_level = LogLevel::kInfo;
  } else if (std::strcmp(env, "error") == 0) {
    g_level = LogLevel::kError;
  } else if (std::strcmp(env, "none") == 0) {
    g_level = LogLevel::kNone;
  }
}

namespace detail {

void vlog(LogLevel level, const char* fmt, ...) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kError:
      tag = "E";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kNone:
      return;
  }
  std::fprintf(stderr, "[msvm:%s] ", tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace msvm::sim
