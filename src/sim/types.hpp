// Common fixed-width aliases and simulated-time types used across the
// MetalSVM reproduction. Simulated time is kept in integer picoseconds so
// that the three SCC clock domains (core 533 MHz, mesh 800 MHz, DRAM
// 800 MHz) can be mixed without rounding drift.
#pragma once

#include <cstdint>

namespace msvm {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulated time in picoseconds.
using TimePs = u64;

/// An unresolvable/infinite point in simulated time.
inline constexpr TimePs kTimeNever = ~TimePs{0};

inline constexpr TimePs kPsPerNs = 1000;
inline constexpr TimePs kPsPerUs = 1000 * 1000;
inline constexpr TimePs kPsPerMs = 1000ull * 1000 * 1000;
inline constexpr TimePs kPsPerSec = 1000ull * 1000 * 1000 * 1000;

/// Converts a frequency in MHz to a cycle period in picoseconds,
/// e.g. 533 MHz -> 1876 ps (truncating).
constexpr TimePs cycle_ps_from_mhz(u64 mhz) { return 1'000'000 / mhz; }

/// Convenience conversions for reporting.
constexpr double ps_to_us(TimePs t) { return static_cast<double>(t) / 1e6; }
constexpr double ps_to_ms(TimePs t) { return static_cast<double>(t) / 1e9; }
constexpr double ps_to_sec(TimePs t) { return static_cast<double>(t) / 1e12; }

}  // namespace msvm
