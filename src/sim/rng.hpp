// Deterministic PRNG for workload generation. The simulation itself is
// fully deterministic (single-threaded discrete-event core), so the only
// randomness in the system is the one injected by workload generators, and
// it must be reproducible from a seed across platforms — hence a fixed
// algorithm (SplitMix64 + xoshiro256**) instead of std::mt19937 whose
// distributions are implementation-defined.
#pragma once

#include <array>

#include "sim/types.hpp"

namespace msvm::sim {

/// xoshiro256** seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(u64 seed) {
    u64 x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ull;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 yields 0.
  u64 next_below(u64 bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    for (;;) {
      const u64 r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi] inclusive.
  u64 next_range(u64 lo, u64 hi) { return lo + next_below(hi - lo + 1); }

  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_{};
};

}  // namespace msvm::sim
