#include "sim/scheduler.hpp"

#include <sstream>

#include "sim/log.hpp"

namespace msvm::sim {

Actor::Actor(Scheduler& sched, int id, std::string name,
             std::function<void()> body, std::size_t stack_bytes)
    : sched_(sched), id_(id), name_(std::move(name)) {
  fiber_ = std::make_unique<Fiber>(
      [this, body = std::move(body)] {
        try {
          body();
        } catch (const CancelledError&) {
          // Scheduler teardown: unwind quietly so stack objects destruct.
        }
        state_ = State::kFinished;
      },
      stack_bytes);
}

std::string Actor::describe_sites() const {
  std::ostringstream oss;
  // Innermost site first: it names the immediate wait, the outer entries
  // give the enclosing operation (e.g. "mbox.recv <- svm.wait_match").
  for (std::size_t i = site_depth_; i-- > 0;) {
    const BlockSite& s = sites_[i];
    oss << s.what << "(" << s.a << "," << s.b << ")";
    if (i != 0) oss << " <- ";
  }
  return oss.str();
}

Scheduler::~Scheduler() { cancel_all(); }

void Scheduler::cancel_all() {
  // Cooperatively cancel any actor that is still suspended mid-execution
  // (normal completion leaves none). Each resume makes dispatch_from()
  // throw CancelledError inside the actor, unwinding its stack.
  // A never-started fiber has no stack objects and may simply be
  // destroyed; running its body at teardown would be wrong.
  //
  // Besides the destructor, Chip::run calls this right before throwing a
  // hang/deadlock error: the unwind must happen while the objects the
  // parked frames reference (kernels, mailboxes, SVM runtimes) are still
  // alive, which is no longer true once destruction reaches ~Scheduler.
  cancelling_ = true;
  for (auto& a : actors_) {
    if (a->state_ != Actor::State::kFinished && a->fiber_ != nullptr &&
        a->fiber_->started() && !a->fiber_->finished()) {
      // A killed actor already counted itself finished in kill_self();
      // unwinding it here must not count it twice.
      const bool was_killed = a->state_ == Actor::State::kKilled;
      current_ = a.get();
      a->fiber_->resume();
      current_ = nullptr;
      if (a->fiber_->finished()) {
        a->state_ = Actor::State::kFinished;
        if (!was_killed) ++finished_count_;
      }
    }
    // The unwound actor may still own a queue entry (it was scheduled, or
    // blocked with a timeout); drop it so the heap holds live actors only.
    if (a->state_ == Actor::State::kFinished &&
        a->heap_pos_ != Actor::kNotInHeap) {
      heap_remove_at(lane_of(*a), a->heap_pos_);
    }
  }
  cancelling_ = false;
}

void Scheduler::configure_lanes(int n, TimePs lookahead) {
  assert(actors_.empty() && "configure_lanes() after spawn");
  assert(n >= 1 && lookahead >= 1);
  lanes_.assign(static_cast<std::size_t>(n), Lane{});
  lookahead_ = lookahead;
  cur_lane_ = 0;
  // With one lane the window never closes and the scheduler degenerates
  // to the classic exact global heap.
  window_end_ = n == 1 ? kTimeNever : 0;
}

Actor& Scheduler::spawn(std::string name, std::function<void()> body,
                        TimePs start, std::size_t stack_bytes, int lane) {
  assert(lane >= 0 && lane < num_lanes());
  const int id = static_cast<int>(actors_.size());
  actors_.push_back(std::unique_ptr<Actor>(
      new Actor(*this, id, std::move(name), std::move(body), stack_bytes)));
  Actor& a = *actors_.back();
  a.clock_ = start;
  a.state_ = Actor::State::kScheduled;
  a.lane_ = lane;
  heap_push(a, start);
  return a;
}

// ---- indexed binary heap ----

void Scheduler::sift_up(Lane& ln, std::size_t i) {
  const HeapEntry e = ln.heap[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!entry_less(e, ln.heap[parent])) break;
    heap_place(ln, i, ln.heap[parent]);
    i = parent;
  }
  heap_place(ln, i, e);
}

void Scheduler::sift_down(Lane& ln, std::size_t i) {
  const HeapEntry e = ln.heap[i];
  const std::size_t n = ln.heap.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && entry_less(ln.heap[child + 1], ln.heap[child])) {
      ++child;
    }
    if (!entry_less(ln.heap[child], e)) break;
    heap_place(ln, i, ln.heap[child]);
    i = child;
  }
  heap_place(ln, i, e);
}

void Scheduler::heap_push(Actor& a, TimePs at) {
  assert(a.heap_pos_ == Actor::kNotInHeap);
  Lane& ln = lane_of(a);
  ln.heap.push_back(HeapEntry{at, a.id_, &a});
  a.heap_pos_ = ln.heap.size() - 1;
  sift_up(ln, a.heap_pos_);
}

void Scheduler::heap_remove_at(Lane& ln, std::size_t i) {
  assert(i < ln.heap.size());
  ln.heap[i].actor->heap_pos_ = Actor::kNotInHeap;
  const std::size_t last = ln.heap.size() - 1;
  if (i != last) {
    const HeapEntry moved = ln.heap[last];
    ln.heap.pop_back();
    heap_place(ln, i, moved);
    if (i > 0 && entry_less(ln.heap[i], ln.heap[(i - 1) / 2])) {
      sift_up(ln, i);
    } else {
      sift_down(ln, i);
    }
  } else {
    ln.heap.pop_back();
  }
}

void Scheduler::heap_move(Actor& a, TimePs at) {
  Lane& ln = lane_of(a);
  const std::size_t i = a.heap_pos_;
  assert(i < ln.heap.size() && ln.heap[i].actor == &a);
  const TimePs old = ln.heap[i].time;
  ln.heap[i].time = at;
  if (at < old) {
    sift_up(ln, i);
  } else if (at > old) {
    sift_down(ln, i);
  }
}

// ---- run loop and suspension points ----

Actor* Scheduler::take_next() {
  // Finished actors never hold heap entries during a run (they finish
  // while running, i.e. dequeued); the skip only matters for a heap
  // inspected after cancel_all tore actors down mid-flight.
  //
  // With lanes configured, each lane drains its events strictly below
  // window_end_ before the cursor moves to the next lane; when every
  // lane is dry the window advances (see advance_window). Single-lane
  // schedulers keep window_end_ == kTimeNever, so the loop below is
  // exactly the classic global-heap pop.
  for (;;) {
    Lane& ln = lanes_[cur_lane_];
    while (!ln.heap.empty() && ln.heap[0].time < window_end_) {
      const HeapEntry top = ln.heap[0];
      heap_remove_at(ln, 0);
      Actor* next = top.actor;
      if (next->state_ == Actor::State::kFinished ||
          next->state_ == Actor::State::kKilled) {
        continue;
      }
      // A popped entry for a blocked actor is a timeout firing.
      next->wake_reason_ = next->state_ == Actor::State::kBlocked
                               ? WakeReason::kTimeout
                               : WakeReason::kWoken;
      next->advance_to(top.time);
      next->state_ = Actor::State::kRunning;
      ++ln.dispatched;
      return next;
    }
    if (!advance_window()) return nullptr;
  }
}

bool Scheduler::advance_window() {
  const std::size_t nl = lanes_.size();
  // Single lane: the window is infinite, so a drained heap means there
  // are no events at all.
  if (nl == 1) return false;
  // Visit the remaining lanes of the current window in fixed order —
  // the deterministic merge barrier.
  while (++cur_lane_ < nl) {
    Lane& ln = lanes_[cur_lane_];
    if (!ln.heap.empty() && ln.heap[0].time < window_end_) return true;
  }
  // All lanes dry below window_end_: open the next window at the global
  // minimum. Lookahead is the minimum cross-lane latency (one mesh hop),
  // so no lane can schedule work for another below t_min + lookahead_.
  TimePs t_min = kTimeNever;
  for (const Lane& ln : lanes_) {
    if (!ln.heap.empty() && ln.heap[0].time < t_min) t_min = ln.heap[0].time;
  }
  if (t_min == kTimeNever) {
    // Keep the cursor in range: the run loop probes take_next() again
    // after a blocked actor falls back to main (deadlock detection).
    cur_lane_ = 0;
    return false;
  }
  window_end_ = t_min + lookahead_;
  cur_lane_ = 0;
  ++windows_;
  return true;
}

std::string Scheduler::describe_blocked_actors() const {
  std::ostringstream oss;
  for (const auto& a : actors_) {
    if (a->state_ == Actor::State::kFinished) continue;
    oss << "  " << a->name() << " @" << a->clock() << "ps";
    if (a->state_ == Actor::State::kKilled) {
      oss << " KILLED (fail-stop)\n";
      continue;
    }
    const std::string sites = a->describe_sites();
    oss << (sites.empty() ? " (no wait site recorded)" : " waiting at " + sites);
    oss << "\n";
  }
  return oss.str();
}

std::string Scheduler::describe_lanes() const {
  if (lanes_.size() <= 1) return "";
  std::ostringstream oss;
  oss << "  event lanes: " << lanes_.size() << ", windows opened: "
      << windows_ << "\n";
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    oss << "  lane " << i << ": " << lanes_[i].dispatched
        << " events dispatched, " << lanes_[i].heap.size()
        << " queued\n";
  }
  return oss.str();
}

void Scheduler::kill_self() {
  Actor* self = current_;
  assert(self != nullptr && "kill_self() outside an actor");
  assert(self->heap_pos_ == Actor::kNotInHeap &&
         "running actor unexpectedly holds a heap entry");
  self->state_ = Actor::State::kKilled;
  ++finished_count_;  // the run loop treats the dead core as done
  dispatch_from(self);
  // Only reachable when cancel_all resumes the parked fiber — and then
  // dispatch_from throws CancelledError, so this point is never reached
  // with a live simulation.
}

void Scheduler::run() {
  assert(current_ == nullptr && "run() is not reentrant");
  running_ = true;
  while (finished_count_ < actors_.size() && !stop_requested_) {
    Actor* next = take_next();
    if (next == nullptr) {
      std::ostringstream oss;
      oss << "simulated deadlock: all live actors blocked, no timeout "
             "pending\n"
          << describe_blocked_actors();
      running_ = false;
      throw DeadlockError(oss.str());
    }

    current_ = next;
    next->fiber_->resume();
    // Direct fiber-to-fiber transfers mean the actor that returned control
    // to us is the *last* one that ran, not necessarily the one resumed.
    Actor* last = current_;
    current_ = nullptr;
    if (last->fiber_->finished()) {
      last->state_ = Actor::State::kFinished;
      ++finished_count_;
    }
  }
  running_ = false;
}

void Scheduler::dispatch_from(Actor* self) {
  if (!stop_requested_) {
    Actor* next = take_next();
    if (next == self) {
      // Popped our own entry (sole runnable, or own block_until timeout
      // fired first): continue without a context switch.
      return;
    }
    if (next != nullptr) {
      current_ = next;
      Fiber::transfer(*self->fiber_, *next->fiber_);
      if (cancelling_) throw CancelledError{};
      return;
    }
    // Heap empty with self suspended: fall back to main, whose run loop
    // reports the deadlock.
  }
  Fiber::yield_to_main();
  if (cancelling_) throw CancelledError{};
}

void Scheduler::yield_switch(Actor* self) {
  self->state_ = Actor::State::kScheduled;
  heap_push(*self, self->clock_);
  dispatch_from(self);
}

WakeReason Scheduler::block() {
  Actor* self = current_;
  assert(self != nullptr && "block() outside an actor");
  self->state_ = Actor::State::kBlocked;
  dispatch_from(self);
  return self->wake_reason_;
}

WakeReason Scheduler::block_until(TimePs deadline) {
  Actor* self = current_;
  assert(self != nullptr && "block_until() outside an actor");
  self->state_ = Actor::State::kBlocked;
  heap_push(*self, deadline);  // timeout entry
  dispatch_from(self);
  return self->wake_reason_;
}

void Scheduler::wake(Actor& target, TimePs at) {
  if (target.state_ != Actor::State::kBlocked) return;
  target.state_ = Actor::State::kScheduled;
  const TimePs t = at > target.clock_ ? at : target.clock_;
  if (target.heap_pos_ != Actor::kNotInHeap) {
    heap_move(target, t);  // re-key the pending timeout entry in place
  } else {
    heap_push(target, t);
  }
}

}  // namespace msvm::sim
