#include "sim/scheduler.hpp"

#include <sstream>

#include "sim/log.hpp"

namespace msvm::sim {

Actor::Actor(Scheduler& sched, int id, std::string name,
             std::function<void()> body, std::size_t stack_bytes)
    : sched_(sched), id_(id), name_(std::move(name)) {
  fiber_ = std::make_unique<Fiber>(
      [this, body = std::move(body)] {
        try {
          body();
        } catch (const CancelledError&) {
          // Scheduler teardown: unwind quietly so stack objects destruct.
        }
        state_ = State::kFinished;
      },
      stack_bytes);
}

std::string Actor::describe_sites() const {
  std::ostringstream oss;
  // Innermost site first: it names the immediate wait, the outer entries
  // give the enclosing operation (e.g. "mbox.recv <- svm.wait_match").
  for (std::size_t i = site_depth_; i-- > 0;) {
    const BlockSite& s = sites_[i];
    oss << s.what << "(" << s.a << "," << s.b << ")";
    if (i != 0) oss << " <- ";
  }
  return oss.str();
}

Scheduler::~Scheduler() { cancel_all(); }

void Scheduler::cancel_all() {
  // Cooperatively cancel any actor that is still suspended mid-execution
  // (normal completion leaves none). Each resume makes switch_out() throw
  // CancelledError inside the actor, unwinding its stack.
  // A never-started fiber has no stack objects and may simply be
  // destroyed; running its body at teardown would be wrong.
  //
  // Besides the destructor, Chip::run calls this right before throwing a
  // hang/deadlock error: the unwind must happen while the objects the
  // parked frames reference (kernels, mailboxes, SVM runtimes) are still
  // alive, which is no longer true once destruction reaches ~Scheduler.
  cancelling_ = true;
  for (auto& a : actors_) {
    if (a->state_ != Actor::State::kFinished && a->fiber_ != nullptr &&
        a->fiber_->started() && !a->fiber_->finished()) {
      current_ = a.get();
      a->fiber_->resume();
      current_ = nullptr;
      if (a->fiber_->finished()) {
        a->state_ = Actor::State::kFinished;
        ++finished_count_;
      }
    }
  }
  cancelling_ = false;
}

Actor& Scheduler::spawn(std::string name, std::function<void()> body,
                        TimePs start, std::size_t stack_bytes) {
  const int id = static_cast<int>(actors_.size());
  actors_.push_back(std::unique_ptr<Actor>(
      new Actor(*this, id, std::move(name), std::move(body), stack_bytes)));
  Actor& a = *actors_.back();
  a.clock_ = start;
  a.state_ = Actor::State::kScheduled;
  schedule(a, start);
  return a;
}

void Scheduler::schedule(Actor& a, TimePs at) {
  a.generation_ += 1;
  heap_.push(HeapEntry{at, seq_++, a.generation_, &a});
}

std::string Scheduler::describe_blocked_actors() const {
  std::ostringstream oss;
  for (const auto& a : actors_) {
    if (a->state_ == Actor::State::kFinished) continue;
    oss << "  " << a->name() << " @" << a->clock() << "ps";
    const std::string sites = a->describe_sites();
    oss << (sites.empty() ? " (no wait site recorded)" : " waiting at " + sites);
    oss << "\n";
  }
  return oss.str();
}

void Scheduler::run() {
  assert(current_ == nullptr && "run() is not reentrant");
  running_ = true;
  while (finished_count_ < actors_.size() && !stop_requested_) {
    // Pop the earliest valid heap entry.
    Actor* next = nullptr;
    TimePs at = 0;
    while (!heap_.empty()) {
      HeapEntry e = heap_.top();
      heap_.pop();
      if (e.generation != e.actor->generation_ ||
          e.actor->state_ == Actor::State::kFinished) {
        continue;  // stale entry
      }
      next = e.actor;
      at = e.time;
      break;
    }
    if (next == nullptr) {
      std::ostringstream oss;
      oss << "simulated deadlock: all live actors blocked, no timeout "
             "pending\n"
          << describe_blocked_actors();
      running_ = false;
      throw DeadlockError(oss.str());
    }

    // A popped entry for a blocked actor is a timeout firing.
    next->wake_reason_ = next->state_ == Actor::State::kBlocked
                             ? WakeReason::kTimeout
                             : WakeReason::kWoken;
    next->advance_to(at);
    next->state_ = Actor::State::kRunning;
    current_ = next;
    next->fiber_->resume();
    current_ = nullptr;
    if (next->fiber_->finished()) {
      next->state_ = Actor::State::kFinished;
      ++finished_count_;
    }
  }
  running_ = false;
}

void Scheduler::yield() {
  Actor* self = current_;
  assert(self != nullptr && "yield() outside an actor");
  self->state_ = Actor::State::kScheduled;
  schedule(*self, self->clock_);
  switch_out();
}

bool Scheduler::maybe_yield() {
  Actor* self = current_;
  assert(self != nullptr);
  if (!someone_earlier(self->clock_)) return false;
  yield();
  return true;
}

bool Scheduler::someone_earlier(TimePs t) const {
  // The heap may contain stale entries; a stale top only causes a spurious
  // yield (harmless: the scheduler discards it and resumes the earliest
  // real actor, possibly the caller itself).
  if (heap_.empty()) return false;
  return heap_.top().time < t;
}

WakeReason Scheduler::block() {
  Actor* self = current_;
  assert(self != nullptr && "block() outside an actor");
  self->state_ = Actor::State::kBlocked;
  self->generation_ += 1;  // invalidate any pending heap entry
  switch_out();
  return self->wake_reason_;
}

WakeReason Scheduler::block_until(TimePs deadline) {
  Actor* self = current_;
  assert(self != nullptr && "block_until() outside an actor");
  self->state_ = Actor::State::kBlocked;
  schedule(*self, deadline);  // timeout entry
  switch_out();
  return self->wake_reason_;
}

void Scheduler::wake(Actor& target, TimePs at) {
  if (target.state_ != Actor::State::kBlocked) return;
  target.state_ = Actor::State::kScheduled;
  schedule(target, at > target.clock_ ? at : target.clock_);
}

void Scheduler::switch_out() {
  assert(Fiber::current() != nullptr);
  Fiber::yield_to_main();
  // Resumed: scheduler has set state to kRunning and adjusted the clock —
  // unless this is a teardown resume, which unwinds the actor instead.
  if (cancelling_) throw CancelledError{};
}

}  // namespace msvm::sim
