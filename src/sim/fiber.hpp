// Cooperative fibers (stackful coroutines) used to run one simulated SCC
// core per fiber inside a single host thread.
//
// Rationale: MetalSVM page faults are *transparent* — a plain store deep
// inside application code may have to suspend the core while an
// ownership-transfer message round-trips through the mailbox system. A
// stackful context switch lets any call depth suspend, which stackless
// C++20 coroutines cannot do without infecting every call signature.
//
// The context switch is hand-rolled x86-64 System V assembly (callee-saved
// registers + stack pointer only, ~20 ns) because glibc's swapcontext()
// performs a sigprocmask system call per switch, which dominates the
// simulator's run time at our switch rates.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "sim/types.hpp"

namespace msvm::sim {

/// A single cooperatively-scheduled execution context with its own stack.
/// Fibers are resumed from the "main" (scheduler) context and always switch
/// back to it; fibers never switch directly between each other.
class Fiber {
 public:
  using Entry = std::function<void()>;

  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  /// Creates a fiber that will execute `entry` when first resumed. The
  /// stack is mmap'd with an inaccessible guard page below it so that a
  /// stack overflow faults loudly instead of corrupting a neighbour.
  explicit Fiber(Entry entry,
                 std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs the fiber until it yields or finishes. Must be called from the
  /// main context (never from inside another fiber).
  void resume();

  /// Switches from inside this fiber back to the main context. Must be
  /// called from inside the currently running fiber.
  static void yield_to_main();

  /// Switches directly from fiber `from` (the currently running one) to
  /// fiber `to` without bouncing through the main context: one context
  /// switch instead of two. The "return to main" continuation travels
  /// with the running fiber — `to` inherits it — so whichever fiber in a
  /// transfer chain eventually calls yield_to_main() (or finishes)
  /// returns to the resume() call that entered the chain.
  static void transfer(Fiber& from, Fiber& to);

  /// The fiber currently executing, or nullptr when in the main context.
  static Fiber* current();

  bool finished() const { return finished_; }
  bool started() const { return started_; }
  bool running() const { return this == current(); }

 private:
  static void trampoline();

  Entry entry_;
  void* stack_base_ = nullptr;  // mmap'd region (guard page + stack)
  std::size_t map_bytes_ = 0;
  void* fiber_rsp_ = nullptr;  // saved rsp while suspended
  void* main_rsp_ = nullptr;   // saved rsp of the resuming context
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace msvm::sim
