// Lightweight streaming statistics used by the benchmark harnesses to
// summarise latency samples (mean / min / max / stddev / percentiles).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "sim/types.hpp"

namespace msvm::sim {

/// Streaming mean/variance (Welford) plus min/max. O(1) memory.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Keeps all samples; supports exact percentiles. Use for benchmark
/// harnesses where the sample count is modest (<= a few million).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    stats_.add(x);
    sorted_ = false;
  }

  std::size_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double stddev() const { return stats_.stddev(); }

  /// Exact percentile by nearest-rank, p in [0, 100].
  double percentile(double p) {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto idx = static_cast<std::size_t>(rank);
    return samples_[std::min(idx, samples_.size() - 1)];
  }

  double median() { return percentile(50.0); }

  void reset() {
    samples_.clear();
    stats_.reset();
    sorted_ = true;
  }

 private:
  std::vector<double> samples_;
  RunningStats stats_;
  bool sorted_ = true;
};

}  // namespace msvm::sim
