// Seeded, deterministic fault injection and the virtual-time watchdog.
//
// A FaultPlan is a small parsed record of *what* to break and *how* to
// recover: probabilities for dropping/delaying IPIs, delaying/duplicating
// mailbox flag visibility, stalling cores, and spurious wakeups — plus
// the recovery knobs (watchdog limit, IPI-mode poll-sweep period,
// degradation threshold, retransmission base timeout). Everything is
// default-off: a default-constructed plan injects nothing, enables no
// sweep, and arms no watchdog, so the simulation is bit-identical to a
// build without this subsystem.
//
// The FaultInjector owns the plan plus one private xoshiro256** stream
// *per clause*, each seeded by a splitmix finalizer over (plan.seed,
// clause index). Because the simulator is single-threaded and
// deterministic, the sequence of injector queries is itself
// deterministic, so a (seed, plan) pair replays the exact same fault
// schedule every run — and because the streams are independent, adding
// a clause to a plan never perturbs the draws of the clauses already
// there.
//
// Spec grammar (CLI `--faults=` / env `MSVM_FAULTS`), comma- or
// whitespace-separated `key=value` tokens:
//
//   seed=N            RNG seed for the fault stream (default 1)
//   ipi_drop=P        drop each raised IPI with probability P
//   ipi_delay=P:DUR   delay each IPI by uniform(0,DUR] with prob. P
//   mail_delay=P      hide a set mailbox flag for one check with prob. P
//   mail_dup=P        deliver a received mail twice with probability P
//   stall=P:DUR       stall a core uniform(0,DUR] at a tick boundary
//   spurious=P        wake a halted core early with probability P
//   flipmail=P[@CORE] flip one random bit in a delivered mail line with
//                     probability P (optionally only mails delivered to
//                     core CORE)
//   flippage=P        flip one random bit in a page frame at an
//                     ownership handoff with probability P
//   flipmeta=P        flip one random bit in an SVM meta word (owner /
//                     scratchpad / directory) at a store with prob. P
//   integrity=0|1     force the checksum/verify machinery on even with
//                     no flip clause armed (flips imply integrity)
//   scrub=DUR         background scrubber: walk idle sealed pages every
//                     DUR of virtual time (0 = off; implies integrity)
//   watchdog=DUR      per-core hang limit (0 = disabled)
//   sweep=N           IPI mode: poll-sweep every N timer ticks (0 = off)
//   degrade=N         drop to poll mode after N sweep recoveries (0 = off)
//   retry=DUR         base protocol retransmission timeout (0 = default)
//   kill=CORE@TIME    fail-stop core CORE permanently at virtual TIME
//                     (repeatable; the kill fires at the first tick
//                     boundary at or after TIME)
//   lease=DUR         heartbeat lease: a core silent for more than DUR
//                     is presumed dead (0 = no failure detection)
//
// DUR is an integer or decimal with a mandatory ns/us/ms/s suffix,
// e.g. `watchdog=500ms,ipi_drop=0.2,ipi_delay=0.1:200us`. A kill-enabled
// plan reads `kill=3@10ms,lease=2ms,watchdog=500ms`.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/bus.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/types.hpp"

namespace msvm::sim {

/// Thrown by FaultPlan::parse on a malformed spec string.
class FaultSpecError : public std::runtime_error {
 public:
  explicit FaultSpecError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One scheduled fail-stop death: core `core` halts forever at the first
/// tick boundary at or after virtual time `at_ps`.
struct KillSpec {
  int core = 0;
  TimePs at_ps = 0;

  friend bool operator==(const KillSpec& a, const KillSpec& b) {
    return a.core == b.core && a.at_ps == b.at_ps;
  }
};

struct FaultPlan {
  u64 seed = 1;

  // Injection probabilities (all default 0: no faults).
  double ipi_drop = 0.0;
  double ipi_delay = 0.0;
  TimePs ipi_delay_max_ps = 200 * kPsPerUs;
  double mail_delay = 0.0;
  double mail_dup = 0.0;
  double stall = 0.0;
  TimePs stall_max_ps = 50 * kPsPerUs;
  double spurious = 0.0;

  // Corruption injection (the SDC fault domain; all default 0).
  double flipmail = 0.0;
  int flipmail_core = -1;   // -1 = mails to any core; else only to CORE
  double flippage = 0.0;
  double flipmeta = 0.0;

  // Scheduled fail-stop deaths (default none). Kills are deterministic —
  // no RNG draw — so adding one perturbs nothing else in the schedule.
  std::vector<KillSpec> kills;

  // Recovery / hardening knobs (all default off).
  TimePs watchdog_ps = 0;   // per-core hang limit; 0 disables the watchdog
  u32 sweep_period = 0;     // IPI mode: poll sweep every N timer ticks
  u32 degrade_after = 0;    // degrade to poll mode after N sweep recoveries
  TimePs retry_ps = 0;      // protocol retransmission base timeout override
  TimePs lease_ps = 0;      // heartbeat lease; 0 = no failure detection
  bool integrity = false;   // force checksums on without any flip clause
  TimePs scrub_ps = 0;      // background scrubber period; 0 = off

  /// True when any injection is armed (probabilities, flips, or
  /// scheduled kills). Recovery knobs (watchdog, sweep, degrade, retry,
  /// lease, integrity, scrub) do not count: an armed watchdog with no
  /// faults must stay bit-identical.
  bool any_faults() const {
    return ipi_drop > 0 || ipi_delay > 0 || mail_delay > 0 || mail_dup > 0 ||
           stall > 0 || spurious > 0 || flipmail > 0 || flippage > 0 ||
           flipmeta > 0 || !kills.empty();
  }

  /// True when the integrity layer (mail CRCs, page seals, meta guards)
  /// must be armed: explicitly requested, needed by a scrubber, or
  /// implied by any flip clause — injected corruption without detection
  /// would be exactly the silent-wrong outcome the layer exists to kill.
  bool integrity_armed() const {
    return integrity || scrub_ps > 0 || flipmail > 0 || flippage > 0 ||
           flipmeta > 0;
  }

  /// Parses the spec grammar above. Throws FaultSpecError with the
  /// offending token on any malformed input. An empty spec is the
  /// default plan.
  static FaultPlan parse(const std::string& spec);

  /// parse() of the MSVM_FAULTS environment variable (default plan when
  /// unset or empty).
  static FaultPlan from_env();

  /// Canonical spec string for this plan (parse(to_spec()) round-trips).
  /// Empty for the default plan.
  std::string to_spec() const;
};

/// Host-side tally of what was actually injected during a run. The
/// three flip counters double as the corruption *ledger*: the campaign
/// gate reconciles them against the detection-side counters (corrupt
/// mail drops, seal mismatches, meta corrections) so no injected flip
/// can vanish unaccounted.
struct FaultStats {
  u64 ipis_dropped = 0;
  u64 ipis_delayed = 0;
  TimePs ipi_delay_ps = 0;
  u64 flags_delayed = 0;
  u64 mails_duplicated = 0;
  u64 stalls = 0;
  TimePs stall_ps = 0;
  u64 spurious_wakes = 0;
  u64 mail_flips = 0;
  u64 page_flips = 0;
  u64 meta_flips = 0;
};

/// Stable clause identities for the per-clause RNG sub-streams. The
/// numeric values are part of the determinism contract (they feed the
/// sub-seed derivation), so append only — never renumber.
enum class FaultClause : u32 {
  kIpiDrop = 0,
  kIpiDelay = 1,
  kMailDelay = 2,
  kMailDup = 3,
  kStall = 4,
  kSpurious = 5,
  kFlipMail = 6,
  kFlipPage = 7,
  kFlipMeta = 8,
  kCount = 9,
};

/// Derives the sub-seed for one clause's RNG stream: a splitmix64-style
/// finalizer over (seed, clause), so neighbouring clause indices land in
/// unrelated regions of seed space.
constexpr u64 fault_clause_seed(u64 seed, FaultClause clause) {
  u64 x = seed ^ (0x9e3779b97f4a7c15ull * (static_cast<u64>(clause) + 1));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The per-chip fault oracle. Hook points (gic raise, mailbox flag
/// check, core tick boundary, halt) call the query methods below; each
/// consumes RNG draws only when the corresponding probability is
/// non-zero, so a fault-free plan makes every query a branch on a
/// constant and perturbs nothing.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), enabled_(plan.any_faults()) {
    for (u32 i = 0; i < static_cast<u32>(FaultClause::kCount); ++i) {
      streams_[i].reseed(
          fault_clause_seed(plan.seed, static_cast<FaultClause>(i)));
    }
  }

  const FaultPlan& plan() const { return plan_; }
  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

  /// Cheap global gate: false for a fault-free plan, letting hook sites
  /// skip all queries with one predictable branch.
  bool enabled() const { return enabled_; }

  /// Should this raised IPI be dropped on the wire?
  bool drop_ipi() {
    Rng& rng = stream(FaultClause::kIpiDrop);
    if (plan_.ipi_drop <= 0 || !rng.next_bool(plan_.ipi_drop)) return false;
    ++stats_.ipis_dropped;
    return true;
  }

  /// Extra wire delay for this IPI (0 = deliver normally).
  TimePs ipi_extra_delay_ps() {
    Rng& rng = stream(FaultClause::kIpiDelay);
    if (plan_.ipi_delay <= 0 || !rng.next_bool(plan_.ipi_delay)) return 0;
    const TimePs d = 1 + static_cast<TimePs>(rng.next_below(
                             static_cast<u64>(plan_.ipi_delay_max_ps)));
    ++stats_.ipis_delayed;
    stats_.ipi_delay_ps += d;
    return d;
  }

  /// Should this set mailbox flag be reported as clear for one check?
  bool delay_flag() {
    Rng& rng = stream(FaultClause::kMailDelay);
    if (plan_.mail_delay <= 0 || !rng.next_bool(plan_.mail_delay)) {
      return false;
    }
    ++stats_.flags_delayed;
    return true;
  }

  /// Should this received mail be dispatched twice?
  bool duplicate_mail() {
    Rng& rng = stream(FaultClause::kMailDup);
    if (plan_.mail_dup <= 0 || !rng.next_bool(plan_.mail_dup)) return false;
    ++stats_.mails_duplicated;
    return true;
  }

  /// Bounded virtual-time stall to impose at a tick boundary (0 = none).
  TimePs stall_ps() {
    Rng& rng = stream(FaultClause::kStall);
    if (plan_.stall <= 0 || !rng.next_bool(plan_.stall)) return 0;
    const TimePs d = 1 + static_cast<TimePs>(rng.next_below(
                             static_cast<u64>(plan_.stall_max_ps)));
    ++stats_.stalls;
    stats_.stall_ps += d;
    return d;
  }

  /// Early-wake offset for a halted core: 0 = sleep normally, else wake
  /// uniform(0,max_gap) early. `max_gap` is the time until the real wake
  /// event, so the spurious wake never sleeps *longer* than intended.
  TimePs spurious_wake_ps(TimePs max_gap) {
    Rng& rng = stream(FaultClause::kSpurious);
    if (plan_.spurious <= 0 || max_gap <= 0 ||
        !rng.next_bool(plan_.spurious)) {
      return 0;
    }
    ++stats_.spurious_wakes;
    return 1 + static_cast<TimePs>(
                   rng.next_below(static_cast<u64>(max_gap)));
  }

  /// Bit to flip in a mail line delivered to `dest_core`, or -1 to
  /// deliver intact. `nbits` is the flippable span (the payload + CRC
  /// bytes — never the flag byte, which is flow control, not data).
  /// Cores outside the plan's @CORE filter draw nothing, so focusing
  /// the clause on one core perturbs no other core's delivery stream.
  int mail_flip_bit(int dest_core, u32 nbits) {
    if (plan_.flipmail <= 0 || nbits == 0) return -1;
    if (plan_.flipmail_core >= 0 && plan_.flipmail_core != dest_core) {
      return -1;
    }
    Rng& rng = stream(FaultClause::kFlipMail);
    if (!rng.next_bool(plan_.flipmail)) return -1;
    ++stats_.mail_flips;
    return static_cast<int>(rng.next_below(nbits));
  }

  /// Bit to flip in a page frame at an ownership handoff, or -1 to
  /// hand the frame over intact. `nbits` = page_bytes * 8.
  i64 page_flip_bit(u64 nbits) {
    if (plan_.flippage <= 0 || nbits == 0) return -1;
    Rng& rng = stream(FaultClause::kFlipPage);
    if (!rng.next_bool(plan_.flippage)) return -1;
    ++stats_.page_flips;
    return static_cast<i64>(rng.next_below(nbits));
  }

  /// Bit to flip in an SVM meta word being stored, or -1 to store it
  /// intact. `nbits` is the width of the stored word (16 or 64).
  int meta_flip_bit(u32 nbits) {
    if (plan_.flipmeta <= 0 || nbits == 0) return -1;
    Rng& rng = stream(FaultClause::kFlipMeta);
    if (!rng.next_bool(plan_.flipmeta)) return -1;
    ++stats_.meta_flips;
    return static_cast<int>(rng.next_below(nbits));
  }

 private:
  Rng& stream(FaultClause clause) {
    return streams_[static_cast<u32>(clause)];
  }

  FaultPlan plan_;
  Rng streams_[static_cast<u32>(FaultClause::kCount)];
  bool enabled_;
  FaultStats stats_;
};

/// Thrown by Chip::run when the watchdog trips: carries the structured
/// hang report so the failure is a typed error, never a silent hang or a
/// bare deadlock abort.
class HangError : public std::runtime_error {
 public:
  HangError(const std::string& what, std::string report)
      : std::runtime_error(what), report_(std::move(report)) {}
  const std::string& report() const { return report_; }

 private:
  std::string report_;
};

/// Per-core virtual-time watchdog. Wait loops call check() with the
/// virtual time the wait started; when now-since exceeds the limit the
/// watchdog builds a structured hang report (blocked actors + their
/// wait sites, then every registered provider's section — SVM owner
/// words, trace rings, mailbox stats), asks the scheduler to stop, and
/// returns true. The tripping actor must then park itself (block());
/// teardown unwinds everyone, and Chip::run rethrows as HangError.
///
/// All checks are host-side only: an armed watchdog that never trips
/// costs zero simulated time and changes no outputs.
class Watchdog {
 public:
  Watchdog(Scheduler& sched, TimePs limit_ps)
      : sched_(sched), limit_(limit_ps) {}

  bool enabled() const { return limit_ > 0; }
  TimePs limit_ps() const { return limit_; }

  /// Routes the trip event onto the chip's observability bus (the chip
  /// binds its own bus at construction).
  void bind_bus(obs::EventBus* bus) { bus_ = bus; }

  /// Registers a diagnostics section appended to the hang report (e.g.
  /// the SVM runtime dumps owner vectors and its protocol trace ring).
  void add_provider(std::function<void(std::string&)> fn) {
    providers_.push_back(std::move(fn));
  }

  /// Returns true when the wait that began at `since` has exceeded the
  /// hang limit; records the report and requests a scheduler stop.
  /// `site`/`core_id` name the wait that noticed the hang first.
  bool check(TimePs now, TimePs since, const char* site, int core_id);

  bool tripped() const { return tripped_; }
  const std::string& report() const { return report_; }

 private:
  Scheduler& sched_;
  TimePs limit_;
  obs::EventBus* bus_ = nullptr;
  bool tripped_ = false;
  std::string report_;
  std::vector<std::function<void(std::string&)>> providers_;
};

}  // namespace msvm::sim
