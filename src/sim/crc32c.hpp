// CRC32C (Castagnoli) — the checksum behind the integrity layer.
//
// Header-only, table-driven, byte-at-a-time. Host-side only: checksums
// model software integrity checks the paper's SVM would run on real
// non-coherent hardware, so speed matters less than determinism and
// zero link-time footprint. The polynomial is the iSCSI/ext4 Castagnoli
// 0x1EDC6F41 (reflected 0x82F63B78), chosen over CRC32 (zlib) for its
// better Hamming distance at short message lengths — our mails are 27
// bytes and pages 4 KiB, both comfortably inside its HD=4+ envelope.
#pragma once

#include <array>
#include <cstddef>

#include "sim/types.hpp"

namespace msvm::sim {

namespace detail {

constexpr std::array<u32, 256> make_crc32c_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<u32, 256> kCrc32cTable = make_crc32c_table();

}  // namespace detail

/// CRC32C of `size` bytes starting at `data`. Standard init/final XOR
/// (0xFFFFFFFF), so crc32c("", 0) == 0 and the empty-message case is
/// harmless.
inline u32 crc32c(const void* data, std::size_t size) {
  const u8* p = static_cast<const u8*>(data);
  u32 crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ detail::kCrc32cTable[(crc ^ p[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

/// Incremental form for split buffers: seed with the previous call's
/// return value. crc32c_extend(crc32c(a), b) == crc32c(a||b).
inline u32 crc32c_extend(u32 crc, const void* data, std::size_t size) {
  const u8* p = static_cast<const u8*>(data);
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ detail::kCrc32cTable[(crc ^ p[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace msvm::sim
