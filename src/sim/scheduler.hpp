// Discrete-event scheduler for simulated cores.
//
// Every simulated core runs as an Actor: a fiber with a private virtual
// clock (picoseconds). The scheduler always resumes the schedulable actor
// with the smallest clock (ties broken by actor id), which makes the whole
// simulation deterministic and keeps inter-core virtual-time skew bounded
// by the cores' yield quantum.
//
// Actors advance their own clocks while running (plain function calls, no
// events) and interact with the scheduler only at synchronisation points:
//   yield()        - reinsert at own clock, let earlier actors run
//   maybe_yield()  - fast path: switch only if someone is strictly earlier
//   block()        - suspend until another actor calls wake()
//   block_until(t) - suspend with a timeout at virtual time t
//   wake(a, t)     - make a blocked actor schedulable at time >= t
//
// Event-core layout: the ready/timeout queue is an *indexed* binary heap —
// a flat vector of (time, id, actor) entries plus a heap-position index
// stored in each Actor. Entries are moved in place (sift up/down) when an
// actor is re-keyed by wake(), so the heap holds at most one entry per
// live actor at all times: no stale-generation tombstones, no pop-time
// skip loops, and someone_earlier()/maybe_yield() are an O(1) read of the
// root entry, which is always live and exact. Actor switches transfer
// fiber-to-fiber directly (one context switch), only falling back to the
// main run() loop when the heap empties or a stop is requested; yield()
// by an actor that is still the earliest runnable is a plain return with
// no heap traffic at all.
#pragma once

#include <array>
#include <cassert>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/types.hpp"

namespace msvm::sim {

class Scheduler;

/// Why a blocked actor resumed.
enum class WakeReason { kWoken, kTimeout };

/// One entry of an actor's wait-site stack: a static label plus two
/// free-form operands (e.g. a mail type and a page index). Pushed by the
/// wait loops of the layers above (mailbox recv/send, TAS spins, SVM
/// protocol waits) so a deadlock abort or a watchdog hang report can say
/// *what* each blocked core is waiting for, not just that it is blocked.
struct BlockSite {
  const char* what = nullptr;
  u64 a = 0;
  u64 b = 0;
};

/// A schedulable fiber with a virtual clock.
class Actor {
 public:
  enum class State { kScheduled, kRunning, kBlocked, kFinished };

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  TimePs clock() const { return clock_; }
  State state() const { return state_; }
  bool finished() const { return state_ == State::kFinished; }

  /// Advances this actor's clock. Only meaningful while running.
  void advance(TimePs dt) { clock_ += dt; }

  /// Forces the clock forward to at least `t` (never backwards).
  void advance_to(TimePs t) {
    if (t > clock_) clock_ = t;
  }

  // ---- wait-site annotation (host-side diagnostics, zero simulated
  // cost; prefer the RAII BlockScope over calling these directly) ----

  static constexpr std::size_t kMaxBlockSites = 4;

  /// Pushes a wait-site entry; returns false (and records nothing) when
  /// the stack is full — nested sites beyond the cap are simply elided.
  bool push_site(const BlockSite& site) {
    if (site_depth_ >= kMaxBlockSites) return false;
    sites_[site_depth_++] = site;
    return true;
  }
  void pop_site() {
    assert(site_depth_ > 0);
    --site_depth_;
  }

  /// "inner <- outer" description of the current wait-site stack, or ""
  /// when no site is annotated.
  std::string describe_sites() const;

 private:
  friend class Scheduler;

  /// Sentinel heap position for an actor with no queue entry.
  static constexpr std::size_t kNotInHeap = ~std::size_t{0};

  Actor(Scheduler& sched, int id, std::string name,
        std::function<void()> body, std::size_t stack_bytes);

  Scheduler& sched_;
  int id_;
  std::string name_;
  TimePs clock_ = 0;
  State state_ = State::kScheduled;
  std::size_t heap_pos_ = kNotInHeap;  // index into Scheduler::heap_
  WakeReason wake_reason_ = WakeReason::kWoken;
  std::unique_ptr<Fiber> fiber_;
  std::array<BlockSite, kMaxBlockSites> sites_{};
  std::size_t site_depth_ = 0;
};

/// Thrown by Scheduler::run() when every live actor is blocked and no
/// timeout is pending: the simulated system has deadlocked.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown inside an actor at its suspension point when the scheduler is
/// torn down with the actor still live (e.g. after a DeadlockError). The
/// actor body wrapper catches it, so actor stacks unwind and run their
/// destructors instead of leaking.
class CancelledError {};

class Scheduler {
 public:
  Scheduler() = default;
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Creates an actor that starts at virtual time `start`. Must be called
  /// before run() or from inside a running actor.
  Actor& spawn(std::string name, std::function<void()> body,
               TimePs start = 0,
               std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  /// Runs until every actor has finished. Throws DeadlockError if all
  /// remaining actors are blocked without timeouts.
  void run();

  /// The actor currently executing (nullptr from the main context).
  Actor* current() { return current_; }

  // ---- Called from inside a running actor ----

  /// Unconditionally reinsert self and let the scheduler pick the earliest
  /// actor (possibly self again). When the caller is still the earliest
  /// runnable actor this is a plain return: no heap traffic, no switch.
  void yield() {
    Actor* self = current_;
    assert(self != nullptr && "yield() outside an actor");
    if (!stop_requested_) {
      if (heap_.empty()) return;  // nobody else could run before us
      const HeapEntry& top = heap_[0];
      if (top.time > self->clock_ ||
          (top.time == self->clock_ && top.id > self->id_)) {
        return;  // re-queueing self would pop self right back
      }
    }
    yield_switch(self);
  }

  /// Cheap check used on the memory-access hot path: yields only when some
  /// other schedulable actor has a strictly smaller clock. Returns true if
  /// a switch happened.
  bool maybe_yield() {
    Actor* self = current_;
    assert(self != nullptr);
    if (heap_.empty() || heap_[0].time >= self->clock_) return false;
    yield_switch(self);
    return true;
  }

  /// True when another schedulable actor has a strictly earlier clock than
  /// time `t`. Exact: the heap root is always a live entry.
  bool someone_earlier(TimePs t) const {
    return !heap_.empty() && heap_[0].time < t;
  }

  /// Suspends the current actor until wake(). Returns the reason.
  WakeReason block();

  /// Suspends until wake() or until virtual time `deadline`.
  WakeReason block_until(TimePs deadline);

  /// Makes `target` schedulable at virtual time >= `at`. No-op when the
  /// target is already scheduled or finished. Any actor (or the main
  /// context) may call this.
  void wake(Actor& target, TimePs at);

  /// Asks the run loop to return to the main context at the next actor
  /// switch instead of resuming further actors. Used by the watchdog:
  /// the tripping actor records its report, calls request_stop(), then
  /// parks itself with block(); teardown unwinds everyone via
  /// CancelledError. Safe to call from any actor or the main context.
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  /// Unwinds every suspended actor by resuming it with CancelledError
  /// (see dispatch_from). Must be called from the main context. The
  /// destructor calls this; Chip::run also calls it right before
  /// throwing a hang error, while the objects the parked stack frames
  /// reference are still alive. Idempotent.
  void cancel_all();

  /// One line per unfinished actor: name, clock, state, and wait sites.
  /// Used by the deadlock abort and by watchdog hang reports.
  std::string describe_blocked_actors() const;

  std::size_t num_actors() const { return actors_.size(); }
  Actor& actor(std::size_t i) { return *actors_.at(i); }

  /// Live entry count of the event heap. At most one entry per unfinished
  /// actor by construction — exposed so tests can pin that bound.
  std::size_t heap_size() const { return heap_.size(); }

 private:
  /// One indexed-heap entry. The tie-break id is stored inline so the
  /// comparison never chases the Actor.
  struct HeapEntry {
    TimePs time;
    int id;
    Actor* actor;
  };

  static bool entry_less(const HeapEntry& a, const HeapEntry& b) {
    return a.time != b.time ? a.time < b.time : a.id < b.id;
  }

  // ---- indexed-heap primitives (maintain Actor::heap_pos_) ----
  void heap_place(std::size_t i, const HeapEntry& e) {
    heap_[i] = e;
    e.actor->heap_pos_ = i;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void heap_push(Actor& a, TimePs at);
  void heap_remove_at(std::size_t i);
  void heap_move(Actor& a, TimePs at);  // re-key the existing entry

  /// Pops the earliest live entry and prepares its actor to run (wake
  /// reason, clock, state). Returns nullptr when the heap is empty.
  Actor* take_next();

  /// Suspension point: picks the next actor and transfers to it directly,
  /// or falls back to the main context when the heap is empty or a stop
  /// was requested. Rethrows CancelledError on teardown resumes.
  void dispatch_from(Actor* self);

  /// Out-of-line slow path of yield()/maybe_yield(): requeue self, switch.
  void yield_switch(Actor* self);

  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<HeapEntry> heap_;
  Actor* current_ = nullptr;
  std::size_t finished_count_ = 0;
  bool running_ = false;
  bool cancelling_ = false;
  bool stop_requested_ = false;
};

/// RAII wait-site annotation for the current actor. Tolerates a null
/// actor (main-context callers) and a full site stack, so wait loops can
/// annotate unconditionally.
class BlockScope {
 public:
  BlockScope(Actor* actor, const char* what, u64 a = 0, u64 b = 0)
      : actor_(actor) {
    if (actor_ != nullptr) pushed_ = actor_->push_site({what, a, b});
  }
  ~BlockScope() {
    if (pushed_) actor_->pop_site();
  }
  BlockScope(const BlockScope&) = delete;
  BlockScope& operator=(const BlockScope&) = delete;

 private:
  Actor* actor_;
  bool pushed_ = false;
};

}  // namespace msvm::sim
