// Discrete-event scheduler for simulated cores.
//
// Every simulated core runs as an Actor: a fiber with a private virtual
// clock (picoseconds). The scheduler always resumes the schedulable actor
// with the smallest clock (ties broken by actor id), which makes the whole
// simulation deterministic and keeps inter-core virtual-time skew bounded
// by the cores' yield quantum.
//
// Actors advance their own clocks while running (plain function calls, no
// events) and interact with the scheduler only at synchronisation points:
//   yield()        - reinsert at own clock, let earlier actors run
//   maybe_yield()  - fast path: switch only if someone is strictly earlier
//   block()        - suspend until another actor calls wake()
//   block_until(t) - suspend with a timeout at virtual time t
//   wake(a, t)     - make a blocked actor schedulable at time >= t
//
// Event-core layout: the ready/timeout queue is an *indexed* binary heap —
// a flat vector of (time, id, actor) entries plus a heap-position index
// stored in each Actor. Entries are moved in place (sift up/down) when an
// actor is re-keyed by wake(), so the heap holds at most one entry per
// live actor at all times: no stale-generation tombstones, no pop-time
// skip loops, and someone_earlier()/maybe_yield() are an O(1) read of the
// root entry, which is always live and exact. Actor switches transfer
// fiber-to-fiber directly (one context switch), only falling back to the
// main run() loop when the heap empties or a stop is requested; yield()
// by an actor that is still the earliest runnable is a plain return with
// no heap traffic at all.
//
// Event lanes (configure_lanes): the heap may be sharded into N lanes,
// each an independent indexed heap holding a fixed subset of the actors
// (the chip assigns cores to lanes by mesh quadrant). Lanes advance
// independently inside a conservative lookahead window [t_min, t_min +
// lookahead) — t_min the global minimum root, lookahead the minimum
// cross-lane notification latency — and merge at the deterministic
// window barrier: lanes are drained in fixed lane order, each in local
// (time, id) order, then the window recomputes. Same seed => same drain
// sequence => byte-identical results, run to run. With one lane (the
// default) the window is infinite and the behaviour — and the event
// order — is exactly the classic single-heap scheduler. See DESIGN.md
// §12 for the lookahead/determinism argument.
#pragma once

#include <array>
#include <cassert>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/types.hpp"

namespace msvm::sim {

class Scheduler;

/// Why a blocked actor resumed.
enum class WakeReason { kWoken, kTimeout };

/// One entry of an actor's wait-site stack: a static label plus two
/// free-form operands (e.g. a mail type and a page index). Pushed by the
/// wait loops of the layers above (mailbox recv/send, TAS spins, SVM
/// protocol waits) so a deadlock abort or a watchdog hang report can say
/// *what* each blocked core is waiting for, not just that it is blocked.
struct BlockSite {
  const char* what = nullptr;
  u64 a = 0;
  u64 b = 0;
};

/// A schedulable fiber with a virtual clock.
class Actor {
 public:
  // kKilled models a fail-stop death: the fiber is parked mid-stack
  // forever (its frames are unwound at teardown by cancel_all), it holds
  // no heap entry, and wake() ignores it. From the run loop's point of
  // view a killed actor counts as finished.
  enum class State { kScheduled, kRunning, kBlocked, kFinished, kKilled };

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  TimePs clock() const { return clock_; }
  State state() const { return state_; }
  bool finished() const { return state_ == State::kFinished; }

  /// Advances this actor's clock. Only meaningful while running.
  void advance(TimePs dt) { clock_ += dt; }

  /// Forces the clock forward to at least `t` (never backwards).
  void advance_to(TimePs t) {
    if (t > clock_) clock_ = t;
  }

  // ---- wait-site annotation (host-side diagnostics, zero simulated
  // cost; prefer the RAII BlockScope over calling these directly) ----

  static constexpr std::size_t kMaxBlockSites = 4;

  /// Pushes a wait-site entry; returns false (and records nothing) when
  /// the stack is full — nested sites beyond the cap are simply elided.
  bool push_site(const BlockSite& site) {
    if (site_depth_ >= kMaxBlockSites) return false;
    sites_[site_depth_++] = site;
    return true;
  }
  void pop_site() {
    assert(site_depth_ > 0);
    --site_depth_;
  }

  /// "inner <- outer" description of the current wait-site stack, or ""
  /// when no site is annotated.
  std::string describe_sites() const;

 private:
  friend class Scheduler;

  /// Sentinel heap position for an actor with no queue entry.
  static constexpr std::size_t kNotInHeap = ~std::size_t{0};

  Actor(Scheduler& sched, int id, std::string name,
        std::function<void()> body, std::size_t stack_bytes);

  Scheduler& sched_;
  int id_;
  std::string name_;
  TimePs clock_ = 0;
  State state_ = State::kScheduled;
  int lane_ = 0;                       // event lane this actor lives in
  std::size_t heap_pos_ = kNotInHeap;  // index into its lane's heap
  WakeReason wake_reason_ = WakeReason::kWoken;
  std::unique_ptr<Fiber> fiber_;
  std::array<BlockSite, kMaxBlockSites> sites_{};
  std::size_t site_depth_ = 0;
};

/// Thrown by Scheduler::run() when every live actor is blocked and no
/// timeout is pending: the simulated system has deadlocked.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown inside an actor at its suspension point when the scheduler is
/// torn down with the actor still live (e.g. after a DeadlockError). The
/// actor body wrapper catches it, so actor stacks unwind and run their
/// destructors instead of leaking.
class CancelledError {};

class Scheduler {
 public:
  Scheduler() = default;
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Creates an actor that starts at virtual time `start`. Must be called
  /// before run() or from inside a running actor. `lane` selects the
  /// event lane (must be < num_lanes(); 0 is always valid).
  Actor& spawn(std::string name, std::function<void()> body,
               TimePs start = 0,
               std::size_t stack_bytes = Fiber::kDefaultStackBytes,
               int lane = 0);

  /// Shards the event core into `n` independent lanes with a conservative
  /// lookahead window of `lookahead` picoseconds (must be >= 1). Call
  /// before the first spawn. n == 1 restores the classic single heap.
  void configure_lanes(int n, TimePs lookahead);

  int num_lanes() const { return static_cast<int>(lanes_.size()); }

  /// Events dispatched from lane `i` so far (lane-utilization metric).
  u64 lane_dispatched(int i) const {
    return lanes_[static_cast<std::size_t>(i)].dispatched;
  }
  /// Lookahead windows opened so far (1 lane: stays 0).
  u64 windows_opened() const { return windows_; }

  /// Runs until every actor has finished. Throws DeadlockError if all
  /// remaining actors are blocked without timeouts.
  void run();

  /// The actor currently executing (nullptr from the main context).
  Actor* current() { return current_; }

  // ---- Called from inside a running actor ----

  /// Unconditionally reinsert self and let the scheduler pick the earliest
  /// actor (possibly self again). When the caller is still the earliest
  /// runnable actor this is a plain return: no heap traffic, no switch.
  void yield() {
    Actor* self = current_;
    assert(self != nullptr && "yield() outside an actor");
    if (!stop_requested_ && self->clock_ < window_end_) {
      const auto& heap = lanes_[static_cast<std::size_t>(self->lane_)].heap;
      if (heap.empty()) return;  // nobody else could run before us
      const HeapEntry& top = heap[0];
      if (top.time > self->clock_ ||
          (top.time == self->clock_ && top.id > self->id_)) {
        return;  // re-queueing self would pop self right back
      }
    }
    yield_switch(self);
  }

  /// Cheap check used on the memory-access hot path: yields only when some
  /// other schedulable actor in this lane has a strictly smaller clock (or
  /// when the lane's lookahead window has been outrun). Returns true if a
  /// switch happened.
  bool maybe_yield() {
    Actor* self = current_;
    assert(self != nullptr);
    const auto& heap = lanes_[static_cast<std::size_t>(self->lane_)].heap;
    if (self->clock_ < window_end_ &&
        (heap.empty() || heap[0].time >= self->clock_)) {
      return false;
    }
    yield_switch(self);
    return true;
  }

  /// True when another schedulable actor in the caller's lane has a
  /// strictly earlier clock than time `t`. Exact: the lane root is always
  /// a live entry. (From the main context, consults lane 0.)
  bool someone_earlier(TimePs t) const {
    const auto& heap =
        lanes_[current_ != nullptr
                   ? static_cast<std::size_t>(current_->lane_)
                   : 0]
            .heap;
    return !heap.empty() && heap[0].time < t;
  }

  /// Fail-stop death of the *current* actor: marks it kKilled, counts it
  /// as finished, and switches away without requeueing it. The fiber
  /// stays parked mid-stack (simulating a core that stops dead between
  /// two instructions) until cancel_all unwinds it at teardown. Never
  /// returns control to the caller except by CancelledError.
  void kill_self();

  /// Suspends the current actor until wake(). Returns the reason.
  WakeReason block();

  /// Suspends until wake() or until virtual time `deadline`.
  WakeReason block_until(TimePs deadline);

  /// Makes `target` schedulable at virtual time >= `at`. No-op when the
  /// target is already scheduled or finished. Any actor (or the main
  /// context) may call this.
  void wake(Actor& target, TimePs at);

  /// Asks the run loop to return to the main context at the next actor
  /// switch instead of resuming further actors. Used by the watchdog:
  /// the tripping actor records its report, calls request_stop(), then
  /// parks itself with block(); teardown unwinds everyone via
  /// CancelledError. Safe to call from any actor or the main context.
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  /// Unwinds every suspended actor by resuming it with CancelledError
  /// (see dispatch_from). Must be called from the main context. The
  /// destructor calls this; Chip::run also calls it right before
  /// throwing a hang error, while the objects the parked stack frames
  /// reference are still alive. Idempotent.
  void cancel_all();

  /// One line per unfinished actor: name, clock, state, and wait sites.
  /// Used by the deadlock abort and by watchdog hang reports.
  std::string describe_blocked_actors() const;

  /// Lane-utilization summary ("lane 0: N events" per lane plus the
  /// window count) for multi-lane hang reports; "" with a single lane.
  std::string describe_lanes() const;

  std::size_t num_actors() const { return actors_.size(); }
  Actor& actor(std::size_t i) { return *actors_.at(i); }

  /// Live entry count across all event lanes. At most one entry per
  /// unfinished actor by construction — exposed so tests can pin that
  /// bound.
  std::size_t heap_size() const {
    std::size_t n = 0;
    for (const Lane& ln : lanes_) n += ln.heap.size();
    return n;
  }

 private:
  /// One indexed-heap entry. The tie-break id is stored inline so the
  /// comparison never chases the Actor.
  struct HeapEntry {
    TimePs time;
    int id;
    Actor* actor;
  };

  /// One event lane: an independent indexed heap plus its stats.
  struct Lane {
    std::vector<HeapEntry> heap;
    u64 dispatched = 0;
  };

  static bool entry_less(const HeapEntry& a, const HeapEntry& b) {
    return a.time != b.time ? a.time < b.time : a.id < b.id;
  }

  Lane& lane_of(Actor& a) {
    return lanes_[static_cast<std::size_t>(a.lane_)];
  }

  // ---- indexed-heap primitives (maintain Actor::heap_pos_) ----
  static void heap_place(Lane& ln, std::size_t i, const HeapEntry& e) {
    ln.heap[i] = e;
    e.actor->heap_pos_ = i;
  }
  static void sift_up(Lane& ln, std::size_t i);
  static void sift_down(Lane& ln, std::size_t i);
  void heap_push(Actor& a, TimePs at);
  static void heap_remove_at(Lane& ln, std::size_t i);
  void heap_move(Actor& a, TimePs at);  // re-key the existing entry

  /// Pops the earliest live entry of the lane cursor's current window and
  /// prepares its actor to run (wake reason, clock, state). Advances the
  /// lane cursor / lookahead window as lanes drain. Returns nullptr when
  /// every lane is empty.
  Actor* take_next();

  /// Moves the lane cursor to the next lane with work in the current
  /// window, opening a fresh window when all lanes are drained. Returns
  /// false when no lane holds any entry (simulation idle).
  bool advance_window();

  /// Suspension point: picks the next actor and transfers to it directly,
  /// or falls back to the main context when the heap is empty or a stop
  /// was requested. Rethrows CancelledError on teardown resumes.
  void dispatch_from(Actor* self);

  /// Out-of-line slow path of yield()/maybe_yield(): requeue self, switch.
  void yield_switch(Actor* self);

  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<Lane> lanes_{1};  // single classic lane by default
  std::size_t cur_lane_ = 0;    // drain cursor within the current window
  TimePs lookahead_ = 1;        // cross-lane window width (>= 1)
  TimePs window_end_ = kTimeNever;  // exclusive; kTimeNever when 1 lane
  u64 windows_ = 0;
  Actor* current_ = nullptr;
  std::size_t finished_count_ = 0;
  bool running_ = false;
  bool cancelling_ = false;
  bool stop_requested_ = false;
};

/// RAII wait-site annotation for the current actor. Tolerates a null
/// actor (main-context callers) and a full site stack, so wait loops can
/// annotate unconditionally.
class BlockScope {
 public:
  BlockScope(Actor* actor, const char* what, u64 a = 0, u64 b = 0)
      : actor_(actor) {
    if (actor_ != nullptr) pushed_ = actor_->push_site({what, a, b});
  }
  ~BlockScope() {
    if (pushed_) actor_->pop_site();
  }
  BlockScope(const BlockScope&) = delete;
  BlockScope& operator=(const BlockScope&) = delete;

 private:
  Actor* actor_;
  bool pushed_ = false;
};

}  // namespace msvm::sim
