// FnRef — a non-owning callable reference: one context pointer plus one
// function pointer, nothing else.
//
// std::function on the simulator's hot paths has two costs we care about:
// captures past the small-buffer limit heap-allocate on every
// construction (the mailbox predicates and spin-wait callbacks are built
// per call, i.e. per simulated fault), and the type-erased call is an
// indirect call through a vtable-like thunk either way. FnRef keeps the
// indirect call but removes ownership — so constructing one is two stores
// and can never allocate.
//
// Lifetime rule: FnRef does NOT copy the callable. The referenced
// callable must outlive every invocation. Passing a lambda temporary
// directly as a function argument is safe (the temporary lives to the end
// of the full expression, which includes the callee's execution); storing
// a FnRef in an object that outlives the current statement requires the
// callable to be a named local (or longer-lived) — assigning a lambda
// temporary to a struct member dangles.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace msvm::sim {

template <typename Sig>
class FnRef;

template <typename R, typename... Args>
class FnRef<R(Args...)> {
 public:
  FnRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FnRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FnRef(F&& f)  // NOLINT(google-explicit-constructor): drop-in for
                // std::function parameters, same implicit conversions
      : ctx_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        fn_([](void* ctx, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(ctx))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return fn_(ctx_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return fn_ != nullptr; }

 private:
  void* ctx_ = nullptr;
  R (*fn_)(void*, Args...) = nullptr;
};

}  // namespace msvm::sim
