#include "sim/faults.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/log.hpp"

namespace msvm::sim {

namespace {

/// True when every character of `text` is a plain decimal digit or dot.
/// Used to reject the exotic spellings std::stod happily accepts — nan,
/// inf, hex ("0x1f"), exponents, signs — which would otherwise turn into
/// garbage picosecond values without an error.
bool plain_decimal(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if ((c < '0' || c > '9') && c != '.') return false;
  }
  return true;
}

/// Parses "500ms" / "2.5us" / "100ns" / "1s" into picoseconds. The unit
/// suffix is mandatory so a bare number can never silently mean the
/// wrong scale.
TimePs parse_duration(const std::string& tok, const std::string& text) {
  std::size_t pos = 0;
  double value = 0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw FaultSpecError("fault spec: bad duration in '" + tok + "'");
  }
  if (!plain_decimal(text.substr(0, pos))) {
    throw FaultSpecError("fault spec: bad duration in '" + tok + "'");
  }
  if (value < 0) {
    throw FaultSpecError("fault spec: negative duration in '" + tok + "'");
  }
  const std::string unit = text.substr(pos);
  double scale = 0;
  if (unit == "ns") {
    scale = static_cast<double>(kPsPerNs);
  } else if (unit == "us") {
    scale = static_cast<double>(kPsPerUs);
  } else if (unit == "ms") {
    scale = static_cast<double>(kPsPerMs);
  } else if (unit == "s") {
    scale = static_cast<double>(kPsPerSec);
  } else {
    throw FaultSpecError("fault spec: duration needs a ns/us/ms/s suffix in '" +
                         tok + "'");
  }
  // Guard the double->TimePs cast: an overflowing conversion is UB, and a
  // "duration" beyond the virtual-time range is a typo anyway.
  if (value * scale >= static_cast<double>(kTimeNever)) {
    throw FaultSpecError("fault spec: duration too large in '" + tok + "'");
  }
  return static_cast<TimePs>(value * scale);
}

double parse_probability(const std::string& tok, const std::string& text) {
  std::size_t pos = 0;
  double p = 0;
  try {
    p = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw FaultSpecError("fault spec: bad probability in '" + tok + "'");
  }
  // "nan" passes a naive `p < 0 || p > 1` (both comparisons are false),
  // and "0x1"/"infinity" parse without consuming the whole token only
  // sometimes — require full consumption AND an in-range comparison that
  // NaN fails. Exponent forms ("1e-05") stay legal: to_spec emits them.
  if (pos != text.size() || !(p >= 0 && p <= 1)) {
    throw FaultSpecError("fault spec: probability outside [0,1] in '" + tok +
                         "'");
  }
  return p;
}

u64 parse_u64(const std::string& tok, const std::string& text) {
  try {
    // stoull accepts a leading '-' (wrapping modulo 2^64) and skips
    // leading whitespace; require a plain digit string instead.
    if (text.empty() || text[0] < '0' || text[0] > '9') {
      throw std::invalid_argument(text);
    }
    std::size_t pos = 0;
    const u64 v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw FaultSpecError("fault spec: bad integer in '" + tok + "'");
  }
}

/// Splits "CORE@TIME" for kill clauses.
KillSpec parse_kill(const std::string& tok, const std::string& text) {
  const std::size_t at = text.find('@');
  if (at == std::string::npos) {
    throw FaultSpecError("fault spec: expected CORE@TIME in '" + tok + "'");
  }
  KillSpec k;
  const u64 core = parse_u64(tok, text.substr(0, at));
  if (core > 100000) {
    throw FaultSpecError("fault spec: implausible core id in '" + tok + "'");
  }
  k.core = static_cast<int>(core);
  k.at_ps = parse_duration(tok, text.substr(at + 1));
  if (k.at_ps <= 0) {
    throw FaultSpecError("fault spec: kill time must be positive in '" + tok +
                         "'");
  }
  return k;
}

/// Splits "P[@CORE]" for the flipmail clause: a bare probability means
/// every core's deliveries are fair game; "P@CORE" focuses the flips on
/// mails delivered to one core.
void parse_flip_target(const std::string& tok, const std::string& text,
                       double* p, int* core) {
  const std::size_t at = text.find('@');
  *p = parse_probability(tok, text.substr(0, at));
  if (at == std::string::npos) {
    *core = -1;
    return;
  }
  const u64 c = parse_u64(tok, text.substr(at + 1));
  if (c > 100000) {
    throw FaultSpecError("fault spec: implausible core id in '" + tok + "'");
  }
  *core = static_cast<int>(c);
}

/// Parses "0"/"1" for boolean knobs.
bool parse_bool(const std::string& tok, const std::string& text) {
  if (text == "0") return false;
  if (text == "1") return true;
  throw FaultSpecError("fault spec: expected 0 or 1 in '" + tok + "'");
}

/// Splits "P:DUR" for the delay/stall knobs.
void parse_prob_duration(const std::string& tok, const std::string& text,
                         double* p, TimePs* dur) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) {
    throw FaultSpecError("fault spec: expected P:DUR in '" + tok + "'");
  }
  *p = parse_probability(tok, text.substr(0, colon));
  *dur = parse_duration(tok, text.substr(colon + 1));
  if (*p > 0 && *dur == 0) {
    throw FaultSpecError("fault spec: zero duration with non-zero "
                         "probability in '" + tok + "'");
  }
}

std::string fmt_duration(TimePs ps) {
  char buf[32];
  if (ps % kPsPerMs == 0) {
    std::snprintf(buf, sizeof(buf), "%llums",
                  static_cast<unsigned long long>(ps / kPsPerMs));
  } else if (ps % kPsPerUs == 0) {
    std::snprintf(buf, sizeof(buf), "%lluus",
                  static_cast<unsigned long long>(ps / kPsPerUs));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ps / kPsPerNs));
  }
  return buf;
}

std::string fmt_prob(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", p);
  return buf;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::string token;
  std::istringstream stream(spec);
  // Accept both comma- and whitespace-separated tokens.
  while (std::getline(stream, token, ',')) {
    std::istringstream inner(token);
    std::string tok;
    while (inner >> tok) {
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos) {
        throw FaultSpecError("fault spec: expected key=value, got '" + tok +
                             "'");
      }
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      if (key == "seed") {
        plan.seed = parse_u64(tok, val);
      } else if (key == "ipi_drop") {
        plan.ipi_drop = parse_probability(tok, val);
      } else if (key == "ipi_delay") {
        parse_prob_duration(tok, val, &plan.ipi_delay, &plan.ipi_delay_max_ps);
      } else if (key == "mail_delay") {
        plan.mail_delay = parse_probability(tok, val);
      } else if (key == "mail_dup") {
        plan.mail_dup = parse_probability(tok, val);
      } else if (key == "stall") {
        parse_prob_duration(tok, val, &plan.stall, &plan.stall_max_ps);
      } else if (key == "spurious") {
        plan.spurious = parse_probability(tok, val);
      } else if (key == "flipmail") {
        parse_flip_target(tok, val, &plan.flipmail, &plan.flipmail_core);
      } else if (key == "flippage") {
        plan.flippage = parse_probability(tok, val);
      } else if (key == "flipmeta") {
        plan.flipmeta = parse_probability(tok, val);
      } else if (key == "integrity") {
        plan.integrity = parse_bool(tok, val);
      } else if (key == "scrub") {
        plan.scrub_ps = parse_duration(tok, val);
      } else if (key == "watchdog") {
        plan.watchdog_ps = parse_duration(tok, val);
      } else if (key == "sweep") {
        plan.sweep_period = static_cast<u32>(parse_u64(tok, val));
      } else if (key == "degrade") {
        plan.degrade_after = static_cast<u32>(parse_u64(tok, val));
      } else if (key == "retry") {
        plan.retry_ps = parse_duration(tok, val);
      } else if (key == "kill") {
        plan.kills.push_back(parse_kill(tok, val));
      } else if (key == "lease") {
        plan.lease_ps = parse_duration(tok, val);
      } else {
        throw FaultSpecError("fault spec: unknown key '" + key + "'");
      }
    }
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* env = std::getenv("MSVM_FAULTS");
  if (env == nullptr || env[0] == '\0') return FaultPlan{};
  return parse(env);
}

std::string FaultPlan::to_spec() const {
  const FaultPlan def;
  std::string out;
  const auto add = [&out](const std::string& tok) {
    if (!out.empty()) out += ",";
    out += tok;
  };
  if (seed != def.seed) add("seed=" + std::to_string(seed));
  if (ipi_drop > 0) add("ipi_drop=" + fmt_prob(ipi_drop));
  if (ipi_delay > 0) {
    add("ipi_delay=" + fmt_prob(ipi_delay) + ":" +
        fmt_duration(ipi_delay_max_ps));
  }
  if (mail_delay > 0) add("mail_delay=" + fmt_prob(mail_delay));
  if (mail_dup > 0) add("mail_dup=" + fmt_prob(mail_dup));
  if (stall > 0) add("stall=" + fmt_prob(stall) + ":" +
                     fmt_duration(stall_max_ps));
  if (spurious > 0) add("spurious=" + fmt_prob(spurious));
  if (flipmail > 0) {
    std::string tok = "flipmail=" + fmt_prob(flipmail);
    if (flipmail_core >= 0) tok += "@" + std::to_string(flipmail_core);
    add(tok);
  }
  if (flippage > 0) add("flippage=" + fmt_prob(flippage));
  if (flipmeta > 0) add("flipmeta=" + fmt_prob(flipmeta));
  if (integrity) add("integrity=1");
  if (scrub_ps > 0) add("scrub=" + fmt_duration(scrub_ps));
  if (watchdog_ps > 0) add("watchdog=" + fmt_duration(watchdog_ps));
  if (sweep_period > 0) add("sweep=" + std::to_string(sweep_period));
  if (degrade_after > 0) add("degrade=" + std::to_string(degrade_after));
  if (retry_ps > 0) add("retry=" + fmt_duration(retry_ps));
  if (lease_ps > 0) add("lease=" + fmt_duration(lease_ps));
  for (const KillSpec& k : kills) {
    add("kill=" + std::to_string(k.core) + "@" + fmt_duration(k.at_ps));
  }
  return out;
}

bool Watchdog::check(TimePs now, TimePs since, const char* site,
                     int core_id) {
  if (limit_ == 0 || tripped_) return tripped_;
  if (now < since || now - since <= limit_) return false;
  tripped_ = true;

  std::ostringstream oss;
  oss << "=== watchdog hang report ===\n"
      << "tripped by core " << core_id << " at site " << site << " after "
      << ps_to_ms(now - since) << " ms blocked (limit "
      << ps_to_ms(limit_) << " ms)\n"
      << "blocked actors:\n"
      << sched_.describe_blocked_actors() << sched_.describe_lanes();
  report_ = oss.str();
  for (const auto& provider : providers_) provider(report_);
  report_ += "=== end hang report ===\n";

  MSVM_LOG_ERROR("watchdog: hang detected by core %d at %s; stopping sim",
                 core_id, site);
  if (bus_ != nullptr && bus_->enabled(obs::kCatChaos)) {
    bus_->publish(obs::Event{now, static_cast<obs::u64>(core_id), 0, 0,
                             obs::EventKind::kWatchdogTrip, -1});
  }
  sched_.request_stop();
  return true;
}

}  // namespace msvm::sim
