#include "sccsim/core.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "sccsim/chip.hpp"
#include "sim/log.hpp"

namespace msvm::scc {

namespace {

// Stack buffer bound for one cache line (config asserts line_bytes <= 64).
constexpr u32 kMaxLineBytes = 64;

[[noreturn]] void die(const char* msg, u64 addr) {
  std::fprintf(stderr, "msvm::scc::Core fatal: %s (addr=0x%llx)\n", msg,
               static_cast<unsigned long long>(addr));
  std::abort();
}

}  // namespace

Core::Core(Chip& chip, int id)
    : chip_(chip),
      cfg_(chip.config()),
      topo_(&chip.topology()),
      id_(id),
      l1_(cfg_.l1_bytes, cfg_.l1_assoc, cfg_.line_bytes),
      l2_(cfg_.l2_bytes, cfg_.l2_assoc, cfg_.line_bytes),
      wcb_(cfg_.line_bytes),
      pagetable_(cfg_.page_bytes) {
  timer_period_ps_ = cfg_.timer_period_us * kPsPerUs;
  boundary_interval_ps_ =
      cfg_.boundary_check_cycles * cfg_.core_cycle_ps();
  lat_l1_hit_ps_ = chip.latency().l1_hit();
  lat_store_hit_ps_ = chip.latency().store_hit();
  lat_wcb_merge_ps_ = chip.latency().wcb_merge();
  line_off_mask_ = cfg_.line_bytes - 1;
  page_off_mask_ = cfg_.page_bytes - 1;
  page_shift_ = pagetable_.page_shift();
}

void Core::bind_actor(sim::Actor* actor) {
  actor_ = actor;
  next_timer_ = actor->clock() + timer_period_ps_;
  next_boundary_ = actor->clock() + boundary_interval_ps_;
}

// ---------------------------------------------------------------------------
// time & interrupts

void Core::tick(TimePs cost) {
  actor_->advance(cost);
  counters_.busy_ps += cost;
  if (actor_->clock() >= next_boundary_) boundary();
}

void Core::boundary() {
  if (chip_.faults().enabled()) {
    // Scheduled fail-stop: the core dies between two instructions —
    // mid-protocol, mid-handler, locks held, WCB dirty, whatever the
    // moment happened to be. fail_stop() parks the fiber and never
    // returns. Checked even inside handlers and masked sections: death
    // does not wait for sti.
    if (actor_->clock() >= chip_.kill_time(id_)) {
      chip_.fail_stop(*this);
    }
    // Bounded virtual-time stall: the core simply loses time, as if the
    // hardware thread was starved. Delivered work resumes afterwards.
    const TimePs stall = chip_.faults().stall_ps();
    if (stall > 0) {
      actor_->advance(stall);
      counters_.busy_ps += stall;
      obs::EventBus& bus = chip_.bus();
      if (bus.enabled(obs::kCatChaos)) {
        bus.publish(obs::Event{
            actor_->clock(), static_cast<u64>(obs::InjectKind::kStall),
            stall, 0, obs::EventKind::kFaultInject, id_});
      }
    }
  }
  next_boundary_ = actor_->clock() + boundary_interval_ps_;
  if (in_irq_) {
    // Handlers run with interrupts masked; re-delivery happens when the
    // outer deliver_interrupts() loop finishes.
  } else if (irq_mask_depth_ > 0) {
    // Masked (an access commit or an explicit cli section): remember
    // that a delivery opportunity passed so the unmask point can make up
    // for it even if every subsequent tick is masked too.
    pending_irq_check_ = true;
  } else {
    deliver_interrupts();
  }
  chip_.scheduler().maybe_yield();
}

void Core::deliver_interrupts() {
  // Interrupt handlers themselves perform modelled memory accesses which
  // tick(); the in_irq_ flag keeps delivery non-reentrant, the same way a
  // kernel runs handlers with interrupts masked.
  in_irq_ = true;
  if (chip_.gic().has_pending(id_)) {
    const IpiSourceSet sources = chip_.gic().take_pending(id_);
    ++counters_.ipi_irqs;
    tick(chip_.latency().irq_entry());
    if (ipi_handler_) ipi_handler_(*this, sources);
    tick(chip_.latency().irq_exit());
  }
  if (actor_->clock() >= next_timer_) {
    // Catch up without replaying every missed period (a long halt should
    // deliver one tick, not a burst).
    while (next_timer_ <= actor_->clock()) next_timer_ += timer_period_ps_;
    ++counters_.timer_irqs;
    tick(chip_.latency().irq_entry());
    if (timer_handler_) timer_handler_(*this);
    tick(chip_.latency().irq_exit());
  }
  in_irq_ = false;
}

void Core::compute_cycles(u64 core_cycles) {
  // Slice long computations at the boundary-check granularity so
  // interrupts are delivered *during* the work, not after it — a single
  // bulk tick would make a 1 ms computation an uninterruptible block.
  while (core_cycles > 0) {
    const u64 step = std::min<u64>(core_cycles, cfg_.boundary_check_cycles);
    tick(step * cfg_.core_cycle_ps());
    core_cycles -= step;
  }
}

void Core::yield() { chip_.scheduler().maybe_yield(); }

void Core::relax(TimePs gap) {
  if (in_irq_ || irq_mask_depth_ > 0) {
    // Cannot sleep inside a handler or a masked section; fall back to a
    // plain cooperative pause.
    tick(gap);
    chip_.scheduler().maybe_yield();
    return;
  }
  const TimePs t0 = actor_->clock();
  chip_.scheduler().block_until(t0 + gap);
  counters_.busy_ps += actor_->clock() - t0;  // account like spin time
  deliver_interrupts();
}

void Core::halt() {
  assert(irq_mask_depth_ == 0 && "halt with interrupts masked");
  // Sleep until the next timer tick unless an IPI arrives first. The GIC
  // wake goes through Chip, which calls scheduler().wake on our actor.
  if (!chip_.gic().has_pending(id_)) {
    TimePs deadline = next_timer_;
    if (chip_.faults().enabled() && deadline > actor_->clock()) {
      // Spurious wakeup: resume early for no reason. Callers of halt()
      // already re-check their wake condition in a loop, so this only
      // probes that the loops really are condition-driven.
      deadline -= chip_.faults().spurious_wake_ps(deadline - actor_->clock());
    }
    chip_.scheduler().block_until(deadline);
  }
  if (!in_irq_) deliver_interrupts();
}

// ---------------------------------------------------------------------------
// translation

MemPolicy Core::policy_of(const Pte& pte) {
  if (pte.mpbt) return MemPolicy::kMpbt;
  if (pte.l2_enable) return MemPolicy::kCachedWT;
  // Present, non-MPBT, no-L2 pages behave as L1+L2 write-through on the
  // real part; private memory uses this default.
  return MemPolicy::kCachedWT;
}

// Returns WITH interrupts masked: the caller commits the access and then
// unmasks. This makes the translation+commit pair atomic against served
// ownership transfers (which may unmap the page) — the same guarantee a
// real instruction has.
Core::Translation Core::translate(u64 vaddr, bool is_write) {
  irq_disable();
  // Host-side translation cache, invalidated on page-table epoch change.
  if (tlb_epoch_ != pagetable_.epoch()) {
    for (auto& e : tlb_) e.vpage = ~u64{0};
    tlb_epoch_ = pagetable_.epoch();
  }
  const u64 vpage = pagetable_.vpage_of(vaddr);
  TlbEntry& slot = tlb_[vpage % kTlbEntries];
  if (slot.vpage == vpage && slot.pte.present &&
      (!is_write || slot.pte.writable)) {
    ++counters_.tlb_hits;
    return {slot.pte.frame_paddr + pagetable_.page_offset(vaddr),
            policy_of(slot.pte)};
  }
  // TLB miss: the hardware walks the page table (the walk itself is
  // charged; the entries are private-memory resident).
  ++counters_.tlb_misses;
  tick(cfg_.tlb_miss_cycles * cfg_.core_cycle_ps());

  int guard = 0;
  for (;;) {
    const Pte* pte = pagetable_.find(vaddr);
    if (pte != nullptr && pte->present && (!is_write || pte->writable)) {
      // Re-sync the TLB slot (the epoch may have moved inside a handler).
      if (tlb_epoch_ != pagetable_.epoch()) {
        for (auto& e : tlb_) e.vpage = ~u64{0};
        tlb_epoch_ = pagetable_.epoch();
      }
      TlbEntry& fresh = tlb_[vpage % kTlbEntries];
      fresh.vpage = vpage;
      fresh.pte = *pte;
      return {pte->frame_paddr + pagetable_.page_offset(vaddr),
              policy_of(*pte)};
    }
    if (!fault_handler_) die("page fault with no handler installed", vaddr);
    if (++guard > 1024) die("page fault not resolved by handler", vaddr);
    ++counters_.page_faults;
    // Exception entry cost: trap + kernel prologue. The handler itself
    // runs with interrupts live (it may wait on the mailbox system and
    // must keep serving incoming requests).
    irq_enable();
    tick(chip_.latency().irq_entry());
    fault_handler_(*this, vaddr, is_write);
    irq_disable();
  }
}

// ---------------------------------------------------------------------------
// virtual plane

void Core::vread(u64 vaddr, void* out, u32 size) {
  ++counters_.loads;
  u8* dst = static_cast<u8*>(out);
  while (size > 0) {
    const u32 line_off = static_cast<u32>(vaddr & (cfg_.line_bytes - 1));
    const u32 seg = std::min(size, cfg_.line_bytes - line_off);
    // translate() returns with interrupts masked; the commit below is
    // therefore atomic against interrupt handlers, the way a real load
    // instruction is. Without this, an ownership transfer served
    // mid-commit could unmap the page between translation and the data
    // movement.
    const Translation tr = translate(vaddr, /*is_write=*/false);
    read_path(tr.paddr, dst, seg, tr.policy);
    irq_enable();
    vaddr += seg;
    dst += seg;
    size -= seg;
  }
}

void Core::vwrite(u64 vaddr, const void* src, u32 size) {
  ++counters_.stores;
  const u8* s = static_cast<const u8*>(src);
  while (size > 0) {
    const u32 line_off = static_cast<u32>(vaddr & (cfg_.line_bytes - 1));
    const u32 seg = std::min(size, cfg_.line_bytes - line_off);
    const Translation tr = translate(vaddr, /*is_write=*/true);
    write_path(tr.paddr, s, seg, tr.policy);
    irq_enable();
    vaddr += seg;
    s += seg;
    size -= seg;
  }
}

void Core::irq_enable() {
  assert(irq_mask_depth_ > 0);
  --irq_mask_depth_;
  deliver_deferred();
}

void Core::deliver_deferred() {
  if (pending_irq_check_ && irq_mask_depth_ == 0 && !in_irq_) {
    pending_irq_check_ = false;
    deliver_interrupts();
  }
}

// ---------------------------------------------------------------------------
// physical plane

void Core::pread(u64 paddr, void* out, u32 size, MemPolicy pol) {
  u8* dst = static_cast<u8*>(out);
  while (size > 0) {
    const u32 line_off = static_cast<u32>(paddr & (cfg_.line_bytes - 1));
    const u32 seg = std::min(size, cfg_.line_bytes - line_off);
    read_path(paddr, dst, seg, pol);
    paddr += seg;
    dst += seg;
    size -= seg;
  }
}

void Core::pwrite(u64 paddr, const void* src, u32 size, MemPolicy pol) {
  const u8* s = static_cast<const u8*>(src);
  while (size > 0) {
    const u32 line_off = static_cast<u32>(paddr & (cfg_.line_bytes - 1));
    const u32 seg = std::min(size, cfg_.line_bytes - line_off);
    write_path(paddr, s, seg, pol);
    paddr += seg;
    s += seg;
    size -= seg;
  }
}

// ---------------------------------------------------------------------------
// cache pipeline (per-segment: never straddles a line)

void Core::read_path(u64 paddr, void* out, u32 size, MemPolicy pol) {
  switch (pol) {
    case MemPolicy::kUncached: {
      ++counters_.uncached_ops;
      tick(device_read(paddr, out, size));
      return;
    }
    case MemPolicy::kMpbt: {
      // Loads must observe this core's own buffered stores: forward when
      // fully dirty, otherwise drain the buffer first.
      if (wcb_.overlaps(paddr, size)) {
        if (wcb_.forward(paddr, out, size)) {
          tick(chip_.latency().l1_hit());
          return;
        }
        flush_wcb();
      }
      if (l1_.read(paddr, out, size)) {
        ++counters_.l1_hits;
        tick(chip_.latency().l1_hit());
        return;
      }
      ++counters_.l1_misses;
      // Read-allocate the full line from the device; MPBT bypasses L2.
      u8 line[kMaxLineBytes];
      const u64 la = l1_.line_addr(paddr);
      tick(device_read(la, line, cfg_.line_bytes));
      l1_.fill(la, line, /*mpbt=*/true);
      std::memcpy(out, line + (paddr - la), size);
      return;
    }
    case MemPolicy::kCachedWT: {
      if (l1_.read(paddr, out, size)) {
        ++counters_.l1_hits;
        tick(chip_.latency().l1_hit());
        return;
      }
      ++counters_.l1_misses;
      u8 line[kMaxLineBytes];
      const u64 la = l1_.line_addr(paddr);
      if (l2_.read(la, line, cfg_.line_bytes)) {
        ++counters_.l2_hits;
        tick(chip_.latency().l2_hit());
      } else {
        ++counters_.l2_misses;
        tick(device_read(la, line, cfg_.line_bytes));
        l2_.fill(la, line, /*mpbt=*/false);
      }
      l1_.fill(la, line, /*mpbt=*/false);
      std::memcpy(out, line + (paddr - la), size);
      return;
    }
  }
}

void Core::write_path(u64 paddr, const void* src, u32 size, MemPolicy pol) {
  switch (pol) {
    case MemPolicy::kUncached: {
      ++counters_.uncached_ops;
      tick(device_write(paddr, src, size));
      return;
    }
    case MemPolicy::kMpbt: {
      // Write-through into a present L1 line keeps our own reads coherent
      // with the combine buffer (no allocate on miss).
      if (l1_.write(paddr, src, size)) {
        tick(chip_.latency().store_hit());
      }
      auto flush = wcb_.store(paddr, src, size);
      if (flush.has_value()) {
        ++counters_.wcb_flushes;
        tick(device_write_masked(flush->line_addr, flush->data,
                                 flush->size, flush->dirty_mask));
        flush = wcb_.store(paddr, src, size);
        assert(!flush.has_value());
      }
      ++counters_.wcb_merges;
      tick(chip_.latency().wcb_merge());
      return;
    }
    case MemPolicy::kCachedWT: {
      // Plain write-through: update any present copies, pay the full
      // downstream write (this is the "like uncachable memory" store path
      // of Section 7.2.2 — no combine buffer without the MPBT type).
      if (l1_.write(paddr, src, size)) {
        tick(chip_.latency().store_hit());
      }
      l2_.write(paddr, src, size);
      tick(device_write(paddr, src, size));
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// devices

TimePs Core::device_latency(u64 paddr, bool is_write) {
  const PhysTarget t = chip_.map().decode(paddr);
  const LatencyModel& lat = chip_.latency();
  switch (t.kind) {
    case MemKind::kSharedDram:
    case MemKind::kPrivateDram: {
      const int hops = topo_->hops_core_to_mc(id_, t.owner);
      const TimePs queue = chip_.mc_queue_delay(t.owner, actor_->clock());
      if (is_write) {
        ++counters_.dram_writes;
        return lat.dram_write(hops) + queue;
      }
      ++counters_.dram_reads;
      return lat.dram_access(hops) + queue;
    }
    case MemKind::kMpb: {
      const int hops = topo_->hops_between_cores(id_, t.owner);
      if (is_write) {
        ++counters_.mpb_writes;
        return lat.mpb_write(hops);
      }
      ++counters_.mpb_reads;
      return lat.mpb_access(hops);
    }
    case MemKind::kTas:
    case MemKind::kInvalid:
      break;
  }
  die("access to unmapped physical address", paddr);
}

void Core::publish_mem_event(u64 paddr, u32 size, bool is_write) {
  const PhysTarget t = chip_.map().decode(paddr);
  chip_.bus().publish(obs::Event{
      actor_->clock(), paddr, size,
      (static_cast<u64>(t.kind) << 8) | static_cast<u64>(t.owner & 0xff),
      is_write ? obs::EventKind::kMemWrite : obs::EventKind::kMemRead,
      id_});
}

TimePs Core::device_read(u64 paddr, void* out, u32 size) {
  const TimePs cost = device_latency(paddr, /*is_write=*/false);
  chip_.memory().read(paddr, out, size);
  // kCatMem is the firehose category (--trace-mem): off even under a
  // plain --trace, so the decode+publish never runs by default.
  if (chip_.bus().enabled(obs::kCatMem)) {
    publish_mem_event(paddr, size, /*is_write=*/false);
  }
  return cost;
}

TimePs Core::device_write(u64 paddr, const void* src, u32 size) {
  const TimePs cost = device_latency(paddr, /*is_write=*/true);
  chip_.memory().write(paddr, src, size);
  if (chip_.bus().enabled(obs::kCatMem)) {
    publish_mem_event(paddr, size, /*is_write=*/true);
  }
  return cost;
}

TimePs Core::device_write_masked(u64 paddr, const void* src, u32 size,
                                 u64 mask) {
  const TimePs cost = device_latency(paddr, /*is_write=*/true);
  chip_.memory().write_masked(paddr, src, size, mask);
  return cost;
}

// ---------------------------------------------------------------------------
// special ops

void Core::cl1invmb() {
  ++counters_.cl1invmb_count;
  l1_.invalidate_mpbt();
  tick(chip_.latency().cl1invmb());
}

void Core::flush_wcb() {
  auto flush = wcb_.flush();
  if (!flush.has_value()) return;
  ++counters_.wcb_flushes;
  tick(device_write_masked(flush->line_addr, flush->data, flush->size,
                           flush->dirty_mask));
  obs::EventBus& bus = chip_.bus();
  if (bus.enabled(obs::kCatSync)) {
    bus.publish(obs::Event{actor_->clock(), flush->line_addr, flush->size,
                           0, obs::EventKind::kWcbFlush, id_});
  }
}

bool Core::tas_try_acquire(int reg) {
  const int hops =
      topo_->hops(topo_->coord_of_core(id_), topo_->coord_of_core(reg));
  tick(chip_.latency().tas_access(hops));
  ++counters_.tas_acquires;
  const bool got = chip_.memory().tas_read_acquire(reg);
  if (!got) ++counters_.tas_spins;
  // Host-side holder note (only in kill-enabled runs): lets recovery
  // identify and break locks orphaned by a dead holder.
  if (got && chip_.tracking_deaths()) chip_.note_tas_owner(reg, id_);
  return got;
}

void Core::tas_release(int reg) {
  const int hops =
      topo_->hops(topo_->coord_of_core(id_), topo_->coord_of_core(reg));
  tick(chip_.latency().tas_access(hops));
  if (chip_.tracking_deaths()) chip_.clear_tas_owner(reg);
  chip_.memory().tas_write_release(reg);
}

void Core::raise_ipi(int target) {
  const int hops = topo_->hops_core_to_system_if(id_);
  tick(chip_.latency().gic_access(hops));
  ++counters_.ipis_sent;
  obs::EventBus& bus = chip_.bus();
  if (bus.enabled(obs::kCatSync)) {
    bus.publish(obs::Event{actor_->clock(), static_cast<u64>(target), 0, 0,
                           obs::EventKind::kIpiRaise, id_});
  }
  sim::FaultInjector& faults = chip_.faults();
  if (faults.enabled()) {
    if (faults.drop_ipi()) {  // lost on the wire: no pending bit
      if (bus.enabled(obs::kCatChaos)) {
        bus.publish(obs::Event{
            actor_->clock(), static_cast<u64>(obs::InjectKind::kIpiDrop), 0,
            0, obs::EventKind::kFaultInject, id_});
      }
      return;
    }
    const TimePs extra = faults.ipi_extra_delay_ps();
    if (extra > 0) {
      if (bus.enabled(obs::kCatChaos)) {
        bus.publish(obs::Event{
            actor_->clock(), static_cast<u64>(obs::InjectKind::kIpiDelay),
            extra, 0, obs::EventKind::kFaultInject, id_});
      }
      chip_.gic().raise_delayed(target, id_, actor_->clock(), extra);
      return;
    }
  }
  chip_.gic().raise(target, id_, actor_->clock());
}

}  // namespace msvm::scc
