// Global Interrupt Controller (GIC).
//
// Since sccKit 1.4.0 the SCC's system FPGA hosts a GIC through which a
// core can raise an inter-processor interrupt on another core *and* the
// receiver can query which core raised it (Section 5). That source
// information is what lets the IPI-driven mailbox check exactly one
// receive slot instead of scanning all of them.
//
// The GIC itself is functional state (pending-source bitmasks); the
// register-access latency is charged by the accessing Core, and target
// wake-up is delegated to the Chip via `wake_fn` so a halted core resumes
// when the interrupt arrives.
#pragma once

#include <cassert>
#include <functional>
#include <vector>

#include "sim/types.hpp"

namespace msvm::scc {

class Gic {
 public:
  explicit Gic(int num_cores)
      : pending_(static_cast<std::size_t>(num_cores), 0) {}

  /// Callback installed by the Chip: wake `target`'s actor at time `at`.
  std::function<void(int target, TimePs at)> wake_fn;

  /// Raises an IPI on `target`, recording `source` in the pending mask.
  /// `at` is the sender-side time of the GIC register write; the target
  /// observes the interrupt no earlier than `at` plus the wire delay the
  /// Chip folds into wake_fn.
  void raise(int target, int source, TimePs at) {
    assert(target >= 0 &&
           static_cast<std::size_t>(target) < pending_.size());
    pending_[static_cast<std::size_t>(target)] |= u64{1} << source;
    if (wake_fn) wake_fn(target, at);
  }

  /// Like raise(), but the target's wake-up is deferred by `extra` on
  /// top of the normal wire delay. Used by the fault injector to model a
  /// slow interrupt: the pending bit is set immediately (the GIC write
  /// happened), only the delivery to the halted core lags.
  void raise_delayed(int target, int source, TimePs at, TimePs extra) {
    assert(target >= 0 &&
           static_cast<std::size_t>(target) < pending_.size());
    pending_[static_cast<std::size_t>(target)] |= u64{1} << source;
    if (wake_fn) wake_fn(target, at + extra);
  }

  bool has_pending(int core) const {
    return pending_[static_cast<std::size_t>(core)] != 0;
  }

  /// Atomically fetches and clears the pending-source bitmask — the
  /// "which core raised it" status read of the sccKit GIC.
  u64 take_pending(int core) {
    const u64 mask = pending_[static_cast<std::size_t>(core)];
    pending_[static_cast<std::size_t>(core)] = 0;
    return mask;
  }

 private:
  std::vector<u64> pending_;
};

}  // namespace msvm::scc
