// Global Interrupt Controller (GIC).
//
// Since sccKit 1.4.0 the SCC's system FPGA hosts a GIC through which a
// core can raise an inter-processor interrupt on another core *and* the
// receiver can query which core raised it (Section 5). That source
// information is what lets the IPI-driven mailbox check exactly one
// receive slot instead of scanning all of them.
//
// The GIC itself is functional state (pending-source bitmasks); the
// register-access latency is charged by the accessing Core, and target
// wake-up is delegated to the Chip via `wake_fn` so a halted core resumes
// when the interrupt arrives.
//
// The pending mask is multi-word so the controller scales past 64 cores
// (parameterized topologies go to 1024): IpiSourceSet is the value type
// handed to handlers — a fixed-capacity bitset whose populated width is
// ceil(num_cores / 64) words.
#pragma once

#include <array>
#include <cassert>
#include <functional>
#include <vector>

#include "sim/types.hpp"

namespace msvm::scc {

/// Which cores raised the interrupt(s) being delivered. Fixed capacity of
/// 1024 sources (the topology validation cap); only the first `nwords`
/// words are meaningful for a given chip.
struct IpiSourceSet {
  static constexpr int kMaxWords = 16;  // 16 * 64 = 1024 sources

  std::array<u64, kMaxWords> words{};
  int nwords = 1;

  bool any() const {
    for (int i = 0; i < nwords; ++i) {
      if (words[static_cast<std::size_t>(i)] != 0) return true;
    }
    return false;
  }

  void set(int source) {
    assert(source >= 0 && source < nwords * 64);
    words[static_cast<std::size_t>(source / 64)] |= u64{1} << (source % 64);
  }

  bool test(int source) const {
    if (source < 0 || source >= nwords * 64) return false;
    return (words[static_cast<std::size_t>(source / 64)] >>
            (source % 64)) & 1;
  }

  /// Calls `fn(source)` for every set source, in ascending order.
  template <typename F>
  void for_each(F&& fn) const {
    for (int w = 0; w < nwords; ++w) {
      u64 bits = words[static_cast<std::size_t>(w)];
      while (bits != 0) {
        const int bit = __builtin_ctzll(bits);
        fn(w * 64 + bit);
        bits &= bits - 1;
      }
    }
  }

  /// Compatibility view for <= 64-core chips (tests, log lines).
  u64 word0() const { return words[0]; }
};

class Gic {
 public:
  explicit Gic(int num_cores)
      : nwords_((num_cores + 63) / 64),
        pending_(static_cast<std::size_t>(num_cores) *
                     static_cast<std::size_t>(nwords_),
                 0) {
    assert(num_cores >= 1 && nwords_ <= IpiSourceSet::kMaxWords);
  }

  /// Callback installed by the Chip: wake `target`'s actor at time `at`.
  std::function<void(int target, TimePs at)> wake_fn;

  /// Raises an IPI on `target`, recording `source` in the pending mask.
  /// `at` is the sender-side time of the GIC register write; the target
  /// observes the interrupt no earlier than `at` plus the wire delay the
  /// Chip folds into wake_fn.
  void raise(int target, int source, TimePs at) {
    set_pending(target, source);
    if (wake_fn) wake_fn(target, at);
  }

  /// Like raise(), but the target's wake-up is deferred by `extra` on
  /// top of the normal wire delay. Used by the fault injector to model a
  /// slow interrupt: the pending bit is set immediately (the GIC write
  /// happened), only the delivery to the halted core lags.
  void raise_delayed(int target, int source, TimePs at, TimePs extra) {
    set_pending(target, source);
    if (wake_fn) wake_fn(target, at + extra);
  }

  bool has_pending(int core) const {
    const u64* row = row_of(core);
    for (int w = 0; w < nwords_; ++w) {
      if (row[w] != 0) return true;
    }
    return false;
  }

  /// Atomically fetches and clears the pending-source set — the "which
  /// core raised it" status read of the sccKit GIC.
  IpiSourceSet take_pending(int core) {
    IpiSourceSet set;
    set.nwords = nwords_;
    u64* row = row_of(core);
    for (int w = 0; w < nwords_; ++w) {
      set.words[static_cast<std::size_t>(w)] = row[w];
      row[w] = 0;
    }
    return set;
  }

 private:
  void set_pending(int target, int source) {
    assert(source >= 0 && source < nwords_ * 64);
    row_of(target)[source / 64] |= u64{1} << (source % 64);
  }

  u64* row_of(int core) {
    assert(core >= 0 && static_cast<std::size_t>(core) * nwords_ <
                            pending_.size() + 1);
    return pending_.data() +
           static_cast<std::size_t>(core) * static_cast<std::size_t>(nwords_);
  }
  const u64* row_of(int core) const {
    return const_cast<Gic*>(this)->row_of(core);
  }

  int nwords_;
  std::vector<u64> pending_;  // num_cores rows of nwords_ words
};

}  // namespace msvm::scc
