// Simulated physical and virtual address maps.
//
// Physical space (simulator-defined, not the SCC's LUT-based map — the LUT
// indirection is a configuration mechanism we do not need to model; see
// DESIGN.md):
//   [kSharedBase,  +shared_dram_bytes)            shared off-die DRAM
//   [kPrivBase  + i*private_dram_bytes, ...)      core i's private DRAM
//   [kMpbBase   + i*mpb_bytes, ...)               core i's on-die MPB
//   [kTasBase   + i*8, ...)                       core i's Test-and-Set reg
//
// Virtual space (per core, private page tables):
//   [kPrivVBase, +private_dram_bytes)   identity-style map of own private
//   [kSvmVBase, ...)                    SVM regions (allocated collectively)
#pragma once

#include <cassert>
#include <utility>

#include "sccsim/config.hpp"
#include "sccsim/mesh.hpp"
#include "sim/types.hpp"

namespace msvm::scc {

inline constexpr u64 kSharedBase = 0x0000'0000ull;
inline constexpr u64 kPrivBase = 0x1'0000'0000ull;
inline constexpr u64 kMpbBase = 0x2'0000'0000ull;
inline constexpr u64 kTasBase = 0x3'0000'0000ull;

inline constexpr u64 kPrivVBase = 0x0100'0000ull;
inline constexpr u64 kSvmVBase = 0x8'0000'0000ull;

enum class MemKind : u8 {
  kSharedDram,
  kPrivateDram,
  kMpb,
  kTas,
  kInvalid,
};

/// Result of decoding a simulated physical address.
struct PhysTarget {
  MemKind kind = MemKind::kInvalid;
  /// Owning resource: memory-controller id for DRAM, core id for MPB/TAS.
  int owner = -1;
  /// Offset within the owning device region.
  u64 offset = 0;
};

class AddrMap {
 public:
  explicit AddrMap(const ChipConfig& cfg)
      : cfg_(cfg), topo_(cfg.topology) {}

  /// The runtime topology backing this map (and, via Chip::topology(),
  /// the whole chip: the map is constructed first and owns the instance).
  const Topology& topology() const { return topo_; }

  u64 shared_base() const { return kSharedBase; }
  u64 shared_size() const { return cfg_.shared_dram_bytes; }
  u64 private_base(int core) const {
    return kPrivBase + static_cast<u64>(core) * cfg_.private_dram_bytes;
  }
  u64 private_size() const { return cfg_.private_dram_bytes; }
  u64 mpb_base(int core) const {
    return kMpbBase + static_cast<u64>(core) * cfg_.mpb_bytes;
  }
  u64 mpb_size() const { return cfg_.mpb_bytes; }
  u64 tas_addr(int core) const {
    return kTasBase + static_cast<u64>(core) * 8;
  }

  /// Memory controller serving a shared-DRAM offset. The shared region is
  /// split into four equal quarters, one per MC, so that the first-touch
  /// allocator can place frames near a core.
  int mc_of_shared_offset(u64 offset) const {
    const int nmc = topo_.num_mem_controllers();
    const u64 quarter = cfg_.shared_dram_bytes / static_cast<u64>(nmc);
    const u64 mc = offset / quarter;
    return static_cast<int>(mc < static_cast<u64>(nmc)
                                ? mc
                                : static_cast<u64>(nmc) - 1);
  }

  /// Range of shared-DRAM offsets served by `mc`: [first, last).
  std::pair<u64, u64> shared_range_of_mc(int mc) const {
    const u64 quarter =
        cfg_.shared_dram_bytes / static_cast<u64>(topo_.num_mem_controllers());
    return {static_cast<u64>(mc) * quarter,
            static_cast<u64>(mc + 1) * quarter};
  }

  PhysTarget decode(u64 paddr) const {
    if (paddr < kSharedBase + cfg_.shared_dram_bytes) {
      const u64 off = paddr - kSharedBase;
      return {MemKind::kSharedDram, mc_of_shared_offset(off), off};
    }
    if (paddr >= kPrivBase &&
        paddr < kPrivBase + static_cast<u64>(cfg_.num_cores) *
                                cfg_.private_dram_bytes) {
      const u64 off = paddr - kPrivBase;
      const int core = static_cast<int>(off / cfg_.private_dram_bytes);
      return {MemKind::kPrivateDram, topo_.nearest_mc(core),
              off % cfg_.private_dram_bytes +
                  static_cast<u64>(core) * cfg_.private_dram_bytes};
    }
    if (paddr >= kMpbBase &&
        paddr <
            kMpbBase + static_cast<u64>(cfg_.num_cores) * cfg_.mpb_bytes) {
      const u64 off = paddr - kMpbBase;
      return {MemKind::kMpb, static_cast<int>(off / cfg_.mpb_bytes),
              off % cfg_.mpb_bytes};
    }
    // The TAS register file is a die resource: all max_cores() registers
    // exist even when fewer cores run programs (application locks use the
    // upper half of the file regardless of the member count).
    if (paddr >= kTasBase &&
        paddr < kTasBase + static_cast<u64>(topo_.max_cores()) * 8) {
      const u64 off = paddr - kTasBase;
      return {MemKind::kTas, static_cast<int>(off / 8), off % 8};
    }
    return {};
  }

  /// Core hosting the MPB that contains `paddr` (asserts on non-MPB).
  int mpb_owner(u64 paddr) const {
    const PhysTarget t = decode(paddr);
    assert(t.kind == MemKind::kMpb);
    return t.owner;
  }

 private:
  const ChipConfig& cfg_;
  Topology topo_;
};

}  // namespace msvm::scc
