// On-die mesh topology, parameterized at runtime.
//
// The default instance is the Intel SCC: 6x4 tiles, two cores per tile,
// four memory controllers attached at the mesh edges (tiles (0,0), (5,0),
// (0,2), (5,2)), and the system interface FPGA (hosting the Global
// Interrupt Controller) at router (3,0). Routing is dimension-ordered
// (X then Y), so the latency-relevant quantity is the Manhattan distance.
//
// To scale past one die, identical chips tile into a chips_x x chips_y
// super-mesh: tile coordinates are global, but tile/core *numbering* is
// chip-major (cores 0..47 fill chip 0, 48..95 chip 1, ...), so each chip
// keeps a contiguous core range next to its own four memory controllers
// (ids also chip-major). Crossing a chip boundary costs
// `interchip_hop_cost` extra hops per boundary in each dimension
// (modelling an off-die link as a slower mesh segment). With one chip the
// math reduces exactly to the classic SCC mesh.
#pragma once

#include <cassert>
#include <cstdlib>
#include <vector>

#include "sim/types.hpp"

namespace msvm::scc {

struct TileCoord {
  int x = 0;
  int y = 0;
  bool operator==(const TileCoord&) const = default;
};

/// Plain-data description of a chip topology; ChipConfig carries one.
/// The default is the exact SCC die.
struct TopologySpec {
  int tile_cols = 6;        // tiles per chip, X
  int tile_rows = 4;        // tiles per chip, Y
  int cores_per_tile = 2;
  int chips_x = 1;          // chips in the super-mesh, X
  int chips_y = 1;          // chips in the super-mesh, Y
  int interchip_hop_cost = 4;  // extra hops per chip boundary crossed

  bool operator==(const TopologySpec&) const = default;

  /// Smallest chip grid of SCC dies that provides at least `cores` cores
  /// (near-square, X grows first). `cores` <= 48 keeps the single die.
  static TopologySpec for_cores(int cores) {
    TopologySpec spec;
    const int per_chip = spec.tile_cols * spec.tile_rows * spec.cores_per_tile;
    if (cores <= per_chip) return spec;
    const int chips = (cores + per_chip - 1) / per_chip;
    int cx = 1;
    while (cx * cx < chips) ++cx;
    spec.chips_x = cx;
    spec.chips_y = (chips + cx - 1) / cx;
    return spec;
  }
};

/// Runtime topology: geometry queries plus precomputed per-core tables on
/// the hot paths (nearest MC, hops to each MC, hops to the system IF).
/// Construction is cheap enough to do once per Chip.
class Topology {
 public:
  explicit Topology(const TopologySpec& spec = {}) : spec_(spec) {
    assert(spec_.tile_cols >= 1 && spec_.tile_rows >= 1 &&
           spec_.cores_per_tile >= 1 && spec_.chips_x >= 1 &&
           spec_.chips_y >= 1 && spec_.interchip_hop_cost >= 0);
    const int cores = max_cores();
    const int mcs = num_mem_controllers();
    coord_of_core_.reserve(static_cast<std::size_t>(cores));
    nearest_mc_.reserve(static_cast<std::size_t>(cores));
    hops_sysif_.reserve(static_cast<std::size_t>(cores));
    hops_mc_.reserve(static_cast<std::size_t>(cores) *
                     static_cast<std::size_t>(mcs));
    for (int c = 0; c < cores; ++c) {
      const TileCoord at = coord_of_tile(c / spec_.cores_per_tile);
      coord_of_core_.push_back(at);
      int best = 0;
      int best_hops = hops(at, mem_controller_coord(0));
      hops_mc_.push_back(best_hops);
      for (int mc = 1; mc < mcs; ++mc) {
        const int h = hops(at, mem_controller_coord(mc));
        hops_mc_.push_back(h);
        if (h < best_hops) {  // ties break to the lower MC id
          best = mc;
          best_hops = h;
        }
      }
      nearest_mc_.push_back(best);
      hops_sysif_.push_back(hops(at, system_interface_coord()));
    }
  }

  const TopologySpec& spec() const { return spec_; }

  // ---- geometry ----

  /// Total mesh columns/rows across the whole chip grid.
  int cols() const { return spec_.tile_cols * spec_.chips_x; }
  int rows() const { return spec_.tile_rows * spec_.chips_y; }
  int tiles() const { return cols() * rows(); }
  int cores_per_tile() const { return spec_.cores_per_tile; }
  /// Cores the die(s) provide; ChipConfig::num_cores may use fewer.
  int max_cores() const { return tiles() * cores_per_tile(); }
  int num_chips() const { return spec_.chips_x * spec_.chips_y; }
  /// Four DDR3 controllers per chip, ids chip-major.
  int num_mem_controllers() const { return 4 * num_chips(); }

  /// Tile hosting a given core; core c lives on tile c/cores_per_tile,
  /// as on the SCC.
  int tile_of_core(int core) const {
    assert(core >= 0 && core < max_cores());
    return core / spec_.cores_per_tile;
  }

  /// Tile numbering is chip-major: each chip's tiles are numbered locally
  /// row-major, chips in row-major grid order. One chip degenerates to a
  /// plain row-major mesh.
  TileCoord coord_of_tile(int tile) const {
    assert(tile >= 0 && tile < tiles());
    const int per_chip = spec_.tile_cols * spec_.tile_rows;
    const int chip = tile / per_chip;
    const int local = tile % per_chip;
    return TileCoord{
        (chip % spec_.chips_x) * spec_.tile_cols + local % spec_.tile_cols,
        (chip / spec_.chips_x) * spec_.tile_rows + local / spec_.tile_cols};
  }

  TileCoord coord_of_core(int core) const {
    return coord_of_core_[static_cast<std::size_t>(core)];
  }

  /// Chip hosting a tile coordinate (chip-grid coordinates).
  TileCoord chip_of_coord(TileCoord at) const {
    return TileCoord{at.x / spec_.tile_cols, at.y / spec_.tile_rows};
  }

  /// XY-routed distance: Manhattan hops plus the inter-chip penalty per
  /// chip boundary crossed in each dimension.
  int hops(TileCoord a, TileCoord b) const {
    int h = std::abs(a.x - b.x) + std::abs(a.y - b.y);
    if (spec_.interchip_hop_cost != 0 && num_chips() > 1) {
      const TileCoord ca = chip_of_coord(a);
      const TileCoord cb = chip_of_coord(b);
      h += spec_.interchip_hop_cost *
           (std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y));
    }
    return h;
  }

  int hops_between_cores(int a, int b) const {
    return hops(coord_of_core(a), coord_of_core(b));
  }

  /// Tile at which memory controller `mc` attaches. Each chip carries
  /// four, at its local corners/edge midheight exactly like the SCC:
  /// local (0,0), (cols-1,0), (0,rows/2), (cols-1,rows/2).
  TileCoord mem_controller_coord(int mc) const {
    assert(mc >= 0 && mc < num_mem_controllers());
    const int chip = mc / 4;
    const int local = mc % 4;
    const int base_x = (chip % spec_.chips_x) * spec_.tile_cols;
    const int base_y = (chip / spec_.chips_x) * spec_.tile_rows;
    const int lx = (local == 0 || local == 2) ? 0 : spec_.tile_cols - 1;
    const int ly = local < 2 ? 0 : spec_.tile_rows / 2;
    return TileCoord{base_x + lx, base_y + ly};
  }

  /// Router where the system interface (FPGA / GIC) attaches: the SCC
  /// position (3,0) on chip 0 of the grid.
  TileCoord system_interface_coord() const {
    return TileCoord{spec_.tile_cols / 2, 0};
  }

  /// Memory controller closest to a core (ties broken by lower MC id);
  /// used for affinity-on-first-touch frame placement and for the
  /// private-region placement of each core. O(1), precomputed.
  int nearest_mc(int core) const {
    return nearest_mc_[static_cast<std::size_t>(core)];
  }

  int hops_core_to_mc(int core, int mc) const {
    return hops_mc_[static_cast<std::size_t>(core) *
                        static_cast<std::size_t>(num_mem_controllers()) +
                    static_cast<std::size_t>(mc)];
  }

  int hops_core_to_system_if(int core) const {
    return hops_sysif_[static_cast<std::size_t>(core)];
  }

  /// The process-wide default-SCC instance, for contexts with no Chip at
  /// hand (tests, examples). Chips own their instance.
  static const Topology& scc_default() {
    static const Topology topo{};
    return topo;
  }

 private:
  TopologySpec spec_;
  std::vector<TileCoord> coord_of_core_;
  std::vector<int> nearest_mc_;
  std::vector<int> hops_sysif_;
  std::vector<int> hops_mc_;  // max_cores x num_mem_controllers
};

}  // namespace msvm::scc
