// SCC on-die mesh topology: 6x4 tiles, two cores per tile, four memory
// controllers attached at the mesh edges (tiles (0,0), (0,2), (5,0),
// (5,2)), and the system interface FPGA (hosting the Global Interrupt
// Controller) at router (3,0). Routing is dimension-ordered (X then Y), so
// the latency-relevant quantity is simply the Manhattan distance.
#pragma once

#include <array>
#include <cassert>
#include <cstdlib>

#include "sim/types.hpp"

namespace msvm::scc {

struct TileCoord {
  int x = 0;
  int y = 0;
  bool operator==(const TileCoord&) const = default;
};

class Mesh {
 public:
  static constexpr int kCols = 6;
  static constexpr int kRows = 4;
  static constexpr int kTiles = kCols * kRows;
  static constexpr int kCoresPerTile = 2;
  static constexpr int kMaxCores = kTiles * kCoresPerTile;
  static constexpr int kNumMemControllers = 4;

  /// Tile hosting a given core. Cores are numbered as on the SCC: core c
  /// lives on tile c/2.
  static int tile_of_core(int core) {
    assert(core >= 0 && core < kMaxCores);
    return core / kCoresPerTile;
  }

  static TileCoord coord_of_tile(int tile) {
    assert(tile >= 0 && tile < kTiles);
    return TileCoord{tile % kCols, tile / kCols};
  }

  static TileCoord coord_of_core(int core) {
    return coord_of_tile(tile_of_core(core));
  }

  /// Manhattan distance between two tiles (XY routing).
  static int hops(TileCoord a, TileCoord b) {
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
  }

  static int hops_between_cores(int a, int b) {
    return hops(coord_of_core(a), coord_of_core(b));
  }

  /// Tiles at which the four DDR3 memory controllers attach.
  static TileCoord mem_controller_coord(int mc) {
    assert(mc >= 0 && mc < kNumMemControllers);
    static constexpr std::array<TileCoord, 4> kMcTiles = {
        TileCoord{0, 0}, TileCoord{5, 0}, TileCoord{0, 2}, TileCoord{5, 2}};
    return kMcTiles[static_cast<std::size_t>(mc)];
  }

  /// Router where the system interface (FPGA / GIC) attaches.
  static TileCoord system_interface_coord() { return TileCoord{3, 0}; }

  /// Memory controller closest to a core (ties broken by lower MC id);
  /// used for affinity-on-first-touch frame placement and for the
  /// private-region placement of each core.
  static int nearest_mc(int core) {
    const TileCoord c = coord_of_core(core);
    int best = 0;
    int best_hops = hops(c, mem_controller_coord(0));
    for (int mc = 1; mc < kNumMemControllers; ++mc) {
      const int h = hops(c, mem_controller_coord(mc));
      if (h < best_hops) {
        best = mc;
        best_hops = h;
      }
    }
    return best;
  }

  static int hops_core_to_mc(int core, int mc) {
    return hops(coord_of_core(core), mem_controller_coord(mc));
  }

  static int hops_core_to_system_if(int core) {
    return hops(coord_of_core(core), system_interface_coord());
  }
};

}  // namespace msvm::scc
