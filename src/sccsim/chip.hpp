// The simulated SCC chip: cores, memory, mesh latency model, GIC, TAS
// registers, the discrete-event scheduler, and the optional memory-
// controller contention model. One Chip instance is one simulation.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "obs/bus.hpp"
#include "sccsim/addrmap.hpp"
#include "sccsim/config.hpp"
#include "sccsim/core.hpp"
#include "sccsim/counters.hpp"
#include "sccsim/gic.hpp"
#include "sccsim/latency.hpp"
#include "sccsim/memory.hpp"
#include "sccsim/mesh.hpp"
#include "sim/faults.hpp"
#include "sim/scheduler.hpp"

namespace msvm::scc {

class Chip {
 public:
  explicit Chip(ChipConfig cfg);
  ~Chip();

  Chip(const Chip&) = delete;
  Chip& operator=(const Chip&) = delete;

  const ChipConfig& config() const { return cfg_; }
  const AddrMap& map() const { return memory_.map(); }
  /// Runtime mesh topology (owned by the address map, built first).
  const Topology& topology() const { return memory_.map().topology(); }
  Memory& memory() { return memory_; }
  const LatencyModel& latency() const { return latency_; }
  Gic& gic() { return gic_; }
  sim::Scheduler& scheduler() { return sched_; }
  sim::FaultInjector& faults() { return faults_; }
  sim::Watchdog& watchdog() { return watchdog_; }

  /// This chip's observability event bus (see obs/bus.hpp). Configured
  /// from obs::runtime_config() at construction; with observability off
  /// it only keeps the always-on per-core protocol rings.
  obs::EventBus& bus() { return bus_; }
  const obs::EventBus& bus() const { return bus_; }

  int num_cores() const { return cfg_.num_cores; }
  Core& core(int i) { return *cores_.at(static_cast<std::size_t>(i)); }

  /// Registers the SPMD program to run on `core_id`. Must be called for
  /// every participating core before run().
  void spawn_program(int core_id, std::function<void(Core&)> fn);

  /// Runs the simulation until every spawned program finishes. Throws
  /// sim::HangError (carrying the structured hang report) when the
  /// watchdog trips; with the watchdog armed, a scheduler deadlock is
  /// converted into a HangError too, so chaos runs always fail typed.
  void run();

  /// Extra queueing delay at memory controller `mc` for a transaction
  /// issued at time `t` (zero unless mc_contention is enabled).
  TimePs mc_queue_delay(int mc, TimePs t);

  /// Sum of all cores' counters.
  CoreCounters total_counters() const;

  /// Latest virtual completion time across all spawned programs.
  TimePs makespan() const { return makespan_; }

 private:
  ChipConfig cfg_;
  Memory memory_;
  LatencyModel latency_;
  Gic gic_;
  sim::Scheduler sched_;
  sim::FaultInjector faults_;
  sim::Watchdog watchdog_;
  obs::EventBus bus_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<TimePs> mc_busy_until_;
  TimePs makespan_ = 0;
};

}  // namespace msvm::scc
