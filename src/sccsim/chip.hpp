// The simulated SCC chip: cores, memory, mesh latency model, GIC, TAS
// registers, the discrete-event scheduler, and the optional memory-
// controller contention model. One Chip instance is one simulation.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "obs/bus.hpp"
#include "sccsim/addrmap.hpp"
#include "sccsim/config.hpp"
#include "sccsim/core.hpp"
#include "sccsim/counters.hpp"
#include "sccsim/gic.hpp"
#include "sccsim/latency.hpp"
#include "sccsim/memory.hpp"
#include "sccsim/mesh.hpp"
#include "sim/faults.hpp"
#include "sim/scheduler.hpp"

namespace msvm::scc {

class Chip {
 public:
  explicit Chip(ChipConfig cfg);
  ~Chip();

  Chip(const Chip&) = delete;
  Chip& operator=(const Chip&) = delete;

  const ChipConfig& config() const { return cfg_; }
  const AddrMap& map() const { return memory_.map(); }
  /// Runtime mesh topology (owned by the address map, built first).
  const Topology& topology() const { return memory_.map().topology(); }
  Memory& memory() { return memory_; }
  const LatencyModel& latency() const { return latency_; }
  Gic& gic() { return gic_; }
  sim::Scheduler& scheduler() { return sched_; }
  sim::FaultInjector& faults() { return faults_; }
  sim::Watchdog& watchdog() { return watchdog_; }

  /// This chip's observability event bus (see obs/bus.hpp). Configured
  /// from obs::runtime_config() at construction; with observability off
  /// it only keeps the always-on per-core protocol rings.
  obs::EventBus& bus() { return bus_; }
  const obs::EventBus& bus() const { return bus_; }

  int num_cores() const { return cfg_.num_cores; }
  Core& core(int i) { return *cores_.at(static_cast<std::size_t>(i)); }

  /// Registers the SPMD program to run on `core_id`. Must be called for
  /// every participating core before run().
  void spawn_program(int core_id, std::function<void(Core&)> fn);

  /// Runs the simulation until every spawned program finishes. Throws
  /// sim::HangError (carrying the structured hang report) when the
  /// watchdog trips; with the watchdog armed, a scheduler deadlock is
  /// converted into a HangError too, so chaos runs always fail typed.
  void run();

  /// Extra queueing delay at memory controller `mc` for a transaction
  /// issued at time `t` (zero unless mc_contention is enabled).
  TimePs mc_queue_delay(int mc, TimePs t);

  /// Sum of all cores' counters.
  CoreCounters total_counters() const;

  /// Latest virtual completion time across all spawned programs.
  TimePs makespan() const { return makespan_; }

  // ---- fail-stop failure model (host-side bookkeeping; all vectors stay
  // empty — and every query a constant branch — unless the fault plan
  // schedules kills or arms the heartbeat lease) ----

  /// True when the fault plan schedules at least one core kill; gates
  /// the TAS owner tracking below so fault-free runs pay nothing.
  bool tracking_deaths() const { return !kill_at_.empty(); }

  /// Virtual time core `i` is scheduled to fail-stop (kTimeNever: never).
  TimePs kill_time(int i) const {
    return kill_at_.empty() ? kTimeNever
                            : kill_at_[static_cast<std::size_t>(i)];
  }

  /// True once core `i` has fail-stopped.
  bool core_dead(int i) const {
    return !dead_.empty() && dead_[static_cast<std::size_t>(i)] != 0;
  }
  int dead_count() const { return dead_count_; }

  /// The physical line address core `i`'s write-combine buffer held when
  /// it died (valid flag separate: paddr 0 is a legal line). With a
  /// write-through L1 this is the *only* store a dead core can have
  /// failed to make globally visible.
  bool dead_wcb_valid(int i) const {
    return !dead_wcb_valid_.empty() &&
           dead_wcb_valid_[static_cast<std::size_t>(i)] != 0;
  }
  u64 dead_wcb_line(int i) const {
    return dead_wcb_line_[static_cast<std::size_t>(i)];
  }

  /// Fail-stops the calling core mid-instruction-stream: captures its
  /// unflushed WCB line, marks it dead, publishes the kill event, and
  /// parks its fiber forever via Scheduler::kill_self(). Never returns.
  void fail_stop(Core& c);

  // Heartbeat lease failure detection (kernel timer handlers feed it).
  bool lease_enabled() const { return cfg_.faults.lease_ps > 0; }
  void record_heartbeat(int core, TimePs now) {
    if (!heartbeat_.empty()) {
      heartbeat_[static_cast<std::size_t>(core)] = now;
    }
  }
  /// The shared failure-detection predicate: true when `peer` has not
  /// heartbeated for longer than the lease. False whenever the lease is
  /// disabled — detection is an opt-in recovery knob, never ambient.
  bool peer_presumed_dead(int peer, TimePs now) const {
    if (heartbeat_.empty()) return false;
    return now - heartbeat_[static_cast<std::size_t>(peer)] >
           cfg_.faults.lease_ps;
  }

  // TAS lock-owner tracking (populated only when kills are scheduled):
  // lets recovery break locks orphaned by a dead holder.
  void note_tas_owner(int reg, int core) {
    if (!tas_owner_.empty()) tas_owner_[static_cast<std::size_t>(reg)] = core;
  }
  void clear_tas_owner(int reg) {
    if (!tas_owner_.empty()) tas_owner_[static_cast<std::size_t>(reg)] = -1;
  }
  int tas_owner(int reg) const {
    return tas_owner_.empty() ? -1
                              : tas_owner_[static_cast<std::size_t>(reg)];
  }

 private:
  ChipConfig cfg_;
  Memory memory_;
  LatencyModel latency_;
  Gic gic_;
  sim::Scheduler sched_;
  sim::FaultInjector faults_;
  sim::Watchdog watchdog_;
  obs::EventBus bus_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<TimePs> mc_busy_until_;
  TimePs makespan_ = 0;

  // Fail-stop bookkeeping (sized in the ctor only when the plan asks).
  std::vector<TimePs> kill_at_;     // per-core scheduled death time
  std::vector<u8> dead_;            // 1 = core has fail-stopped
  std::vector<u8> dead_wcb_valid_;  // 1 = line below was dirty at death
  std::vector<u64> dead_wcb_line_;  // unflushed WCB line paddr at death
  std::vector<TimePs> heartbeat_;   // last heartbeat per core (lease mode)
  std::vector<int> tas_owner_;      // current TAS holder per reg, -1 free
  int dead_count_ = 0;
};

}  // namespace msvm::scc
