// One simulated SCC core: the P54C-style memory pipeline (L1, L2, write-
// combine buffer, page-table translation) plus interrupt delivery and the
// binding to its scheduler actor.
//
// Two access planes are exposed:
//   - vload/vstore/vread/vwrite: *virtual* addresses, translated through
//     this core's private page table; a missing/forbidden mapping vectors
//     into the registered fault handler (the SVM layer) exactly like a
//     hardware page fault, at any call depth.
//   - pread/pwrite: *physical* addresses with an explicit memory policy;
//     this is the plane kernel code (mailboxes, scratchpad, owner vector)
//     uses, mirroring MetalSVM's kernel running on identity mappings.
//
// All latency accounting funnels through tick(), which also delivers
// timer/IPI interrupts at access boundaries and bounds virtual-time skew
// between cores via the scheduler's maybe_yield.
#pragma once

#include <array>
#include <cstring>
#include <functional>
#include <string>

#include "sccsim/cache.hpp"
#include "sccsim/config.hpp"
#include "sccsim/counters.hpp"
#include "sccsim/gic.hpp"
#include "sccsim/pagetable.hpp"
#include "sccsim/wcb.hpp"
#include "sim/scheduler.hpp"
#include "sim/types.hpp"

namespace msvm::scc {

class Chip;

/// How an access moves through the cache hierarchy.
enum class MemPolicy : u8 {
  kUncached,   // straight to the device, no caching
  kMpbt,       // MPBT type: L1 write-through + WCB, bypasses L2
  kCachedWT,   // L1 + L2, write-through, read-allocate only
};

class Core {
 public:
  Core(Chip& chip, int id);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  int id() const { return id_; }
  Chip& chip() { return chip_; }

  // ---- virtual-address (application) plane ----

  template <typename T>
  T vload(u64 vaddr) {
    T out;
    if (!vread_fast(vaddr, &out)) vread(vaddr, &out, sizeof(T));
    return out;
  }

  template <typename T>
  void vstore(u64 vaddr, T value) {
    if (!vwrite_fast(vaddr, &value)) vwrite(vaddr, &value, sizeof(T));
  }

  void vread(u64 vaddr, void* out, u32 size);
  void vwrite(u64 vaddr, const void* src, u32 size);

  // ---- physical (kernel) plane ----

  template <typename T>
  T pload(u64 paddr, MemPolicy pol) {
    T out;
    pread(paddr, &out, sizeof(T), pol);
    return out;
  }

  template <typename T>
  void pstore(u64 paddr, T value, MemPolicy pol) {
    pwrite(paddr, &value, sizeof(T), pol);
  }

  void pread(u64 paddr, void* out, u32 size, MemPolicy pol);
  void pwrite(u64 paddr, const void* src, u32 size, MemPolicy pol);

  // ---- special instructions / registers ----

  /// CL1INVMB: invalidates every MPBT-tagged L1 line.
  void cl1invmb();

  /// Drains the write-combine buffer to memory.
  void flush_wcb();

  /// One attempt on the Test-and-Set register `reg` (a read): true when
  /// the lock was free and is now held by this core.
  bool tas_try_acquire(int reg);

  /// Releases Test-and-Set register `reg` (a write).
  void tas_release(int reg);

  /// Raises an IPI on `target` through the Global Interrupt Controller.
  void raise_ipi(int target);

  // ---- time ----

  TimePs now() const { return actor_->clock(); }

  /// Charges pure compute time (ALU/FPU work between memory accesses).
  void compute_cycles(u64 core_cycles);

  /// Cooperatively yields to earlier cores (cheap when already earliest).
  void yield();

  /// Halts until the next interrupt (IPI or timer) is delivered, then
  /// returns. Models the kernel idle "hlt".
  void halt();

  /// Sleeps for `gap` of virtual time (or until an IPI arrives, whichever
  /// is first), then delivers pending interrupts. Used by spin loops as a
  /// scheduler-friendly backoff: semantically a bounded pause, but it
  /// releases the host scheduler instead of churning through yields.
  void relax(TimePs gap);

  // ---- kernel integration ----

  using FaultHandler = std::function<void(Core&, u64 vaddr, bool is_write)>;
  using TimerHandler = std::function<void(Core&)>;
  using IpiHandler = std::function<void(Core&, const IpiSourceSet& sources)>;

  void set_fault_handler(FaultHandler h) { fault_handler_ = std::move(h); }
  void set_timer_handler(TimerHandler h) { timer_handler_ = std::move(h); }
  void set_ipi_handler(IpiHandler h) { ipi_handler_ = std::move(h); }

  bool in_interrupt() const { return in_irq_; }

  /// Masks interrupt delivery (cli/sti, nestable). A delivery opportunity
  /// that passes while masked fires at the final irq_enable(), like a
  /// pending interrupt after sti. Used to make memory-access commits and
  /// mailbox slot claims atomic against handlers, the way instructions
  /// are on real hardware.
  void irq_disable() { ++irq_mask_depth_; }
  void irq_enable();
  bool irqs_masked() const { return irq_mask_depth_ > 0; }

  PageTable& pagetable() { return pagetable_; }
  const PageTable& pagetable() const { return pagetable_; }
  CoreCounters& counters() { return counters_; }
  const CoreCounters& counters() const { return counters_; }
  Cache& l1() { return l1_; }
  Cache& l2() { return l2_; }
  WriteCombineBuffer& wcb() { return wcb_; }

  /// Scheduler binding (installed by Chip::spawn_program).
  void bind_actor(sim::Actor* actor);
  sim::Actor* actor() { return actor_; }

  /// Charges `cost` picoseconds and performs boundary work (interrupt
  /// delivery, cooperative yield) when due. Public so that higher layers
  /// (mailbox slot checks, kernel entry costs) can charge modelled
  /// software overheads.
  void tick(TimePs cost);

 private:
  // ---- inlined cache-hit fast path ----------------------------------
  //
  // An L1 hit whose cost fits inside the current boundary interval is a
  // pure header-only operation: TLB-slot check, tag check, LRU stamp,
  // byte copy, clock advance. It never touches the Mesh/latency
  // machinery, never masks interrupts (no boundary can fall inside the
  // access, so masking would be a no-op), and publishes no bus events
  // (only device transactions do). Every pre-condition is checked before
  // any state is mutated, so a bail-out to the slow path is free — and
  // the slow path then performs the access bit- and cycle-identically.
  //
  // Invariant (pinned by tests/sccsim/core_fastpath_test.cpp): for any
  // access, fast path taken or not, counters, clocks, cache/LRU state
  // and data movement are identical to the slow path's.

  template <typename T>
  [[gnu::always_inline]] inline bool vread_fast(u64 vaddr, T* out) {
    constexpr u32 size = sizeof(T);
    const u32 off = static_cast<u32>(vaddr & line_off_mask_);
    if (off + size > line_off_mask_ + 1) return false;  // straddles a line
    if (tlb_epoch_ != pagetable_.epoch()) return false;
    const u64 vpage = vaddr >> page_shift_;
    const TlbEntry& slot = tlb_[vpage % kTlbEntries];
    if (slot.vpage != vpage || !slot.pte.present) return false;
    const u64 paddr = slot.pte.frame_paddr + (vaddr & page_off_mask_);
    // Buffered stores must be observed; any WCB overlap is slow-path work
    // (forward or drain). Only MPBT loads consult the WCB.
    if (slot.pte.mpbt && wcb_.overlaps(paddr, size)) return false;
    if (actor_->clock() + lat_l1_hit_ps_ >= next_boundary_) return false;
    const u8* bytes = l1_.hit_bytes(paddr);
    if (bytes == nullptr) return false;
    // Commit: replicate the slow path's counters and timing exactly.
    std::memcpy(out, bytes + off, size);
    ++counters_.loads;
    ++counters_.tlb_hits;
    ++counters_.l1_hits;
    counters_.busy_ps += lat_l1_hit_ps_;
    actor_->advance(lat_l1_hit_ps_);
    return true;
  }

  template <typename T>
  [[gnu::always_inline]] inline bool vwrite_fast(u64 vaddr, const T* src) {
    constexpr u32 size = sizeof(T);
    const u32 off = static_cast<u32>(vaddr & line_off_mask_);
    if (off + size > line_off_mask_ + 1) return false;  // straddles a line
    if (tlb_epoch_ != pagetable_.epoch()) return false;
    const u64 vpage = vaddr >> page_shift_;
    const TlbEntry& slot = tlb_[vpage % kTlbEntries];
    if (slot.vpage != vpage || !slot.pte.present || !slot.pte.writable) {
      return false;
    }
    // Only the MPBT write path stays on-core (WCB merge); write-through
    // CachedWT stores always pay a device transaction — slow path.
    if (!slot.pte.mpbt) return false;
    const u64 paddr = slot.pte.frame_paddr + (vaddr & page_off_mask_);
    // Mergeable only when the WCB is empty or already holds this line;
    // anything else must flush downstream first — slow path.
    if (wcb_.valid() && wcb_.line_addr() != (paddr & ~line_off_mask_)) {
      return false;
    }
    // Bound the cost by the worst case (store-hit + merge) so the check
    // is independent of whether L1 holds the line; a near-boundary store
    // that would still have fit simply takes the slow path.
    if (actor_->clock() + lat_store_hit_ps_ + lat_wcb_merge_ps_ >=
        next_boundary_) {
      return false;
    }
    TimePs cost = lat_wcb_merge_ps_;
    if (u8* bytes = l1_.hit_bytes(paddr)) {  // write-through into L1
      std::memcpy(bytes + off, src, size);
      cost += lat_store_hit_ps_;
    }
    wcb_.merge(paddr & ~line_off_mask_, off, src, size);
    ++counters_.stores;
    ++counters_.tlb_hits;
    ++counters_.wcb_merges;
    counters_.busy_ps += cost;
    actor_->advance(cost);
    return true;
  }

  // Translation outcome for one access segment.
  struct Translation {
    u64 paddr;
    MemPolicy policy;
  };

  Translation translate(u64 vaddr, bool is_write);
  static MemPolicy policy_of(const Pte& pte);

  void read_path(u64 paddr, void* out, u32 size, MemPolicy pol);
  void write_path(u64 paddr, const void* src, u32 size, MemPolicy pol);

  /// One device transaction (<= one line). Returns its latency.
  TimePs device_read(u64 paddr, void* out, u32 size);
  TimePs device_write(u64 paddr, const void* src, u32 size);
  TimePs device_write_masked(u64 paddr, const void* src, u32 size,
                             u64 mask);
  TimePs device_latency(u64 paddr, bool is_write);

  /// Emits a kMemRead/kMemWrite bus event for one device transaction
  /// (--trace-mem firehose; callers gate on obs::kCatMem first).
  void publish_mem_event(u64 paddr, u32 size, bool is_write);

  void deliver_interrupts();
  void deliver_deferred();
  void boundary();

  Chip& chip_;
  const ChipConfig& cfg_;
  const Topology* topo_;  // cached for the device-latency hot path
  int id_;
  sim::Actor* actor_ = nullptr;

  Cache l1_;
  Cache l2_;
  WriteCombineBuffer wcb_;
  PageTable pagetable_;
  CoreCounters counters_;

  FaultHandler fault_handler_;
  TimerHandler timer_handler_;
  IpiHandler ipi_handler_;

  bool in_irq_ = false;
  bool pending_irq_check_ = false;
  int irq_mask_depth_ = 0;
  TimePs next_timer_ = 0;
  TimePs next_boundary_ = 0;
  TimePs timer_period_ps_ = 0;
  TimePs boundary_interval_ps_ = 0;

  // Constants cached at construction for the inlined fast path (the
  // latency model composes them from ChipConfig once; they never change
  // during a run).
  TimePs lat_l1_hit_ps_ = 0;
  TimePs lat_store_hit_ps_ = 0;
  TimePs lat_wcb_merge_ps_ = 0;
  u64 line_off_mask_ = 0;  // line_bytes - 1
  u64 page_off_mask_ = 0;  // page_bytes - 1
  u32 page_shift_ = 0;

  // Host-side translation cache (zero simulated cost): direct-mapped on
  // vpage, invalidated wholesale whenever the page table's epoch moves.
  struct TlbEntry {
    u64 vpage = ~u64{0};
    Pte pte;
  };
  static constexpr std::size_t kTlbEntries = 64;
  std::array<TlbEntry, kTlbEntries> tlb_;
  u64 tlb_epoch_ = ~u64{0};
};

}  // namespace msvm::scc
