// Chip-level configuration for the simulated Intel SCC.
//
// Defaults follow the paper's test platform (Section 7): 48 P54C cores at
// 533 MHz, mesh and DDR3-800 memory at 800 MHz, 16 KiB L1, 256 KiB L2,
// 8 KiB on-die message-passing buffer (MPB) per core, 32-byte cache lines,
// four on-die memory controllers.
#pragma once

#include <cstddef>

#include "sim/faults.hpp"
#include "sim/types.hpp"

namespace msvm::scc {

struct ChipConfig {
  // ---- topology ----
  int num_cores = 48;   // <= 48 (6x4 mesh of tiles, 2 cores/tile)
  u32 core_mhz = 533;   // paper's benchmark configuration
  u32 mesh_mhz = 800;
  u32 dram_mhz = 800;

  // ---- memory sizes ----
  u64 shared_dram_bytes = 64ull << 20;   // shared off-die region
  u64 private_dram_bytes = 8ull << 20;   // per-core private region
  u32 page_bytes = 4096;
  u32 line_bytes = 32;                   // P54C cache line
  u32 mpb_bytes = 8192;                  // on-die MPB per core

  // ---- caches ----
  u32 l1_bytes = 16 * 1024;
  u32 l1_assoc = 2;
  u32 l2_bytes = 256 * 1024;
  u32 l2_assoc = 4;

  // ---- core latencies, in *core* cycles unless stated ----
  u32 l1_hit_cycles = 1;
  u32 l2_hit_cycles = 18;          // SCC programmer's guide approximation
  u32 mpb_base_cycles = 15;        // on-die MPB access, excluding hops
  // Loads stall for the full round trip (load-to-use): core-side share
  // plus mesh plus the DRAM access itself. ~270 ns at the default
  // frequencies, within the measured range for uncached DDR3-800 reads
  // on the SCC (the EAS quotes 46 DRAM cycles for the array access alone;
  // bank/page management and clock-domain crossings add the rest).
  u32 dram_core_cycles = 60;       // core-side share of a DRAM *read*
  u32 dram_mem_cycles = 110;       // DRAM-side share, in *DRAM* cycles
  // Stores are posted: the core hands the write to the mesh interface and
  // continues; the charged cost is the issue occupancy, not the round
  // trip. (Sustained store streams are additionally throttled by the
  // optional memory-controller contention model.)
  u32 dram_store_core_cycles = 20;
  u32 dram_store_mem_cycles = 16;
  u32 mesh_hop_cycles = 4;         // per hop, per direction, *mesh* cycles
  u32 tas_base_cycles = 15;        // Test-and-Set register access
  u32 gic_base_cycles = 25;        // system-FPGA register access
  u32 cl1invmb_cycles = 8;         // tag sweep of MPBT-typed L1 lines
  u32 wcb_merge_cycles = 1;        // store absorbed by the combine buffer
  u32 store_hit_cycles = 1;        // write-through update of a present line
  u32 irq_entry_cycles = 400;      // interrupt entry: vector + kernel prologue
  u32 irq_exit_cycles = 200;
  // P54C data TLB: 64 entries; a miss walks the two-level page table
  // (two memory references, mostly cache-resident on the real part).
  u32 tlb_entries = 64;            // direct-mapped on the page number
  u32 tlb_miss_cycles = 28;

  // ---- interrupt / scheduling model ----
  u64 timer_period_us = 1000;      // periodic timer tick per core
  u32 boundary_check_cycles = 128; // interrupt-delivery granularity
  u64 ipi_wire_ps = 100 * 1000;    // GIC-to-core wire/propagation delay

  // ---- optional memory-controller contention (queueing) model ----
  bool mc_contention = false;
  u32 mc_service_mesh_cycles = 8;  // bus occupancy per 32-byte transaction

  // ---- chaos layer (default: no faults, no watchdog; bit-identical) ----
  sim::FaultPlan faults;

  // ---- derived helpers ----
  TimePs core_cycle_ps() const { return cycle_ps_from_mhz(core_mhz); }
  TimePs mesh_cycle_ps() const { return cycle_ps_from_mhz(mesh_mhz); }
  TimePs dram_cycle_ps() const { return cycle_ps_from_mhz(dram_mhz); }

  u64 num_shared_pages() const { return shared_dram_bytes / page_bytes; }
};

}  // namespace msvm::scc
