// Chip-level configuration for the simulated Intel SCC.
//
// Defaults follow the paper's test platform (Section 7): 48 P54C cores at
// 533 MHz, mesh and DDR3-800 memory at 800 MHz, 16 KiB L1, 256 KiB L2,
// 8 KiB on-die message-passing buffer (MPB) per core, 32-byte cache lines,
// four on-die memory controllers.
#pragma once

#include <cstddef>
#include <string>

#include "sccsim/mesh.hpp"
#include "sim/faults.hpp"
#include "sim/types.hpp"

namespace msvm::scc {

struct ChipConfig {
  // ---- topology ----
  /// Cores actually running programs; must not exceed the die(s) in
  /// `topology` (48 on the default SCC mesh, more on multi-chip grids).
  int num_cores = 48;
  /// Geometry of the simulated die(s). Default: the exact SCC 6x4 mesh.
  TopologySpec topology;
  u32 core_mhz = 533;   // paper's benchmark configuration
  u32 mesh_mhz = 800;
  u32 dram_mhz = 800;

  /// Event lanes for the sharded scheduler (1 = the classic single global
  /// event heap; >1 shards actors by mesh quadrant, see DESIGN.md §12).
  int sched_lanes = 1;

  // ---- memory sizes ----
  u64 shared_dram_bytes = 64ull << 20;   // shared off-die region
  u64 private_dram_bytes = 8ull << 20;   // per-core private region
  u32 page_bytes = 4096;
  u32 line_bytes = 32;                   // P54C cache line
  u32 mpb_bytes = 8192;                  // on-die MPB per core

  // ---- caches ----
  u32 l1_bytes = 16 * 1024;
  u32 l1_assoc = 2;
  u32 l2_bytes = 256 * 1024;
  u32 l2_assoc = 4;

  // ---- core latencies, in *core* cycles unless stated ----
  u32 l1_hit_cycles = 1;
  u32 l2_hit_cycles = 18;          // SCC programmer's guide approximation
  u32 mpb_base_cycles = 15;        // on-die MPB access, excluding hops
  // Loads stall for the full round trip (load-to-use): core-side share
  // plus mesh plus the DRAM access itself. ~270 ns at the default
  // frequencies, within the measured range for uncached DDR3-800 reads
  // on the SCC (the EAS quotes 46 DRAM cycles for the array access alone;
  // bank/page management and clock-domain crossings add the rest).
  u32 dram_core_cycles = 60;       // core-side share of a DRAM *read*
  u32 dram_mem_cycles = 110;       // DRAM-side share, in *DRAM* cycles
  // Stores are posted: the core hands the write to the mesh interface and
  // continues; the charged cost is the issue occupancy, not the round
  // trip. (Sustained store streams are additionally throttled by the
  // optional memory-controller contention model.)
  u32 dram_store_core_cycles = 20;
  u32 dram_store_mem_cycles = 16;
  u32 mesh_hop_cycles = 4;         // per hop, per direction, *mesh* cycles
  u32 tas_base_cycles = 15;        // Test-and-Set register access
  u32 gic_base_cycles = 25;        // system-FPGA register access
  u32 cl1invmb_cycles = 8;         // tag sweep of MPBT-typed L1 lines
  u32 wcb_merge_cycles = 1;        // store absorbed by the combine buffer
  u32 store_hit_cycles = 1;        // write-through update of a present line
  u32 irq_entry_cycles = 400;      // interrupt entry: vector + kernel prologue
  u32 irq_exit_cycles = 200;
  // P54C data TLB: 64 entries; a miss walks the two-level page table
  // (two memory references, mostly cache-resident on the real part).
  u32 tlb_entries = 64;            // direct-mapped on the page number
  u32 tlb_miss_cycles = 28;

  // ---- interrupt / scheduling model ----
  u64 timer_period_us = 1000;      // periodic timer tick per core
  u32 boundary_check_cycles = 128; // interrupt-delivery granularity
  u64 ipi_wire_ps = 100 * 1000;    // GIC-to-core wire/propagation delay

  // ---- optional memory-controller contention (queueing) model ----
  bool mc_contention = false;
  u32 mc_service_mesh_cycles = 8;  // bus occupancy per 32-byte transaction

  // ---- chaos layer (default: no faults, no watchdog; bit-identical) ----
  sim::FaultPlan faults;

  // ---- derived helpers ----
  TimePs core_cycle_ps() const { return cycle_ps_from_mhz(core_mhz); }
  TimePs mesh_cycle_ps() const { return cycle_ps_from_mhz(mesh_mhz); }
  TimePs dram_cycle_ps() const { return cycle_ps_from_mhz(dram_mhz); }

  u64 num_shared_pages() const { return shared_dram_bytes / page_bytes; }
};

/// Minimum per-core MPB bytes a `max_cores`-core die needs: the mail-slot
/// region (one 32-byte slot per sender), the SVM scratchpad (2 KiB,
/// holding the barrier flag block plus page entries), the RCCE comm
/// buffer (4 KiB) and the RCCE flag/barrier bytes (3 per core + 1).
/// Mirrors mbox::Layout; kept here so config validation needs no
/// mailbox-layer include.
inline u64 min_mpb_bytes(int max_cores) {
  const u64 n = static_cast<u64>(max_cores);
  return n * 32 + 2048 + 4096 + 3 * n + 1;
}

/// Validates a chip configuration; returns an empty string when the
/// config is runnable, otherwise a human-readable error. Replaces the
/// old `assert(num_cores <= 48)` hard caps: release builds get a clear
/// message instead of UB.
inline std::string validate_config(const ChipConfig& cfg) {
  const Topology topo(cfg.topology);
  const auto err = [](std::string msg) { return msg; };
  if (cfg.num_cores < 1) return err("num_cores must be >= 1");
  if (cfg.num_cores > 1024) {
    return err("num_cores " + std::to_string(cfg.num_cores) +
               " exceeds the supported maximum of 1024");
  }
  if (cfg.num_cores > topo.max_cores()) {
    return err("num_cores " + std::to_string(cfg.num_cores) +
               " exceeds the configured topology's " +
               std::to_string(topo.max_cores()) +
               " cores; use configure_cores() or enlarge the chip grid");
  }
  if (cfg.line_bytes == 0 || cfg.line_bytes > 64) {
    return err("line_bytes must be in [1, 64]");
  }
  if (cfg.page_bytes == 0 || cfg.page_bytes % 4096 != 0) {
    return err("page_bytes must be a non-zero multiple of 4096");
  }
  if (cfg.sched_lanes < 1 || cfg.sched_lanes > 64) {
    return err("sched_lanes must be in [1, 64]");
  }
  if (cfg.mpb_bytes < min_mpb_bytes(topo.max_cores())) {
    return err("mpb_bytes " + std::to_string(cfg.mpb_bytes) +
               " too small for a " + std::to_string(topo.max_cores()) +
               "-core die (need " +
               std::to_string(min_mpb_bytes(topo.max_cores())) +
               "); use configure_cores()");
  }
  // The physical map gives each region a 4 GiB window (see addrmap.hpp).
  const u64 window = u64{1} << 32;
  if (cfg.shared_dram_bytes > window) {
    return err("shared_dram_bytes exceeds the 4 GiB shared window");
  }
  if (static_cast<u64>(cfg.num_cores) * cfg.private_dram_bytes > window) {
    return err("num_cores * private_dram_bytes exceeds the 4 GiB private "
               "window; shrink private_dram_bytes");
  }
  if (static_cast<u64>(cfg.num_cores) * cfg.mpb_bytes > window) {
    return err("num_cores * mpb_bytes exceeds the 4 GiB MPB window");
  }
  return {};
}

/// One-stop scaling knob: sizes the topology (growing a near-square grid
/// of SCC dies once past 48 cores), sets `num_cores`, enlarges the
/// per-core MPB when the die needs more than the SCC's 8 KiB, and shrinks
/// the per-core private region when the full count would overflow its
/// 4 GiB physical window. At `cores` <= 48 this leaves every default
/// untouched, so default runs stay byte-identical.
inline void configure_cores(ChipConfig& cfg, int cores) {
  cfg.topology = TopologySpec::for_cores(cores);
  cfg.num_cores = cores;
  const Topology topo(cfg.topology);
  const u64 need = min_mpb_bytes(topo.max_cores());
  const u64 rounded = (need + 4095) / 4096 * 4096;
  if (rounded > cfg.mpb_bytes) cfg.mpb_bytes = static_cast<u32>(rounded);
  const u64 max_priv = (u64{1} << 32) / static_cast<u64>(cores);
  if (cfg.private_dram_bytes > max_priv) {
    cfg.private_dram_bytes = max_priv / cfg.page_bytes * cfg.page_bytes;
  }
}

}  // namespace msvm::scc
