// Functional set-associative cache with LRU replacement.
//
// "Functional" means every line carries a real 32-byte data copy. The SCC
// provides no coherence between cores, so a line can go stale the moment
// another core writes the backing memory — and because the data here is
// real, a missing flush or invalidate in the SVM protocol produces a wrong
// computation result, exactly as on hardware. Several tests rely on this
// (they break the protocol on purpose and assert the corruption appears).
//
// Policy notes (P54C as modelled in the paper):
//   - write-through: stores never dirty a line; they update a present line
//     and always propagate downstream.
//   - read-allocate only: a store to an absent line does NOT allocate
//     ("the P54C cores are not able to update the cache entries on a write
//     miss", Section 7.2.2).
//   - each line carries the MPBT tag bit; CL1INVMB invalidates exactly the
//     tagged lines (invalidate_mpbt()).
#pragma once

#include <cassert>
#include <cstring>
#include <vector>

#include "sim/types.hpp"

namespace msvm::scc {

class Cache {
 public:
  Cache(u32 total_bytes, u32 assoc, u32 line_bytes)
      : line_bytes_(line_bytes),
        assoc_(assoc),
        num_sets_(total_bytes / line_bytes / assoc),
        lines_(static_cast<std::size_t>(num_sets_) * assoc) {
    assert(num_sets_ > 0 && (num_sets_ & (num_sets_ - 1)) == 0 &&
           "set count must be a power of two");
    for (auto& line : lines_) line.data.resize(line_bytes_, 0);
  }

  u32 line_bytes() const { return line_bytes_; }
  u32 num_sets() const { return num_sets_; }
  u32 assoc() const { return assoc_; }

  u64 line_addr(u64 paddr) const { return paddr & ~u64{line_bytes_ - 1}; }

  /// True if the line containing `paddr` is present (no LRU update).
  bool probe(u64 paddr) const { return find(paddr) != nullptr; }

  /// Reads `size` bytes if present; returns false on miss. Hit updates
  /// LRU. The access must not straddle a line boundary.
  bool read(u64 paddr, void* out, u32 size) {
    Line* line = find(paddr);
    if (line == nullptr) return false;
    line->stamp = ++tick_;
    std::memcpy(out, line->data.data() + offset_in_line(paddr), size);
    return true;
  }

  /// Write-through update: writes into the line if present (returns true),
  /// no allocation on miss.
  bool write(u64 paddr, const void* data, u32 size) {
    Line* line = find(paddr);
    if (line == nullptr) return false;
    line->stamp = ++tick_;
    std::memcpy(line->data.data() + offset_in_line(paddr), data, size);
    return true;
  }

  /// Allocates (fills) the line containing `paddr` with `line_data`
  /// (exactly line_bytes() bytes), evicting the set's LRU way. Clean
  /// write-through caches never need writeback on eviction.
  void fill(u64 paddr, const void* line_data, bool mpbt) {
    const u64 tag = line_addr(paddr);
    Line* victim = find(paddr);
    if (victim == nullptr) {
      const u32 set = set_index(paddr);
      victim = &lines_[static_cast<std::size_t>(set) * assoc_];
      for (u32 w = 1; w < assoc_; ++w) {
        Line& cand = lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (!victim->valid) break;
        if (!cand.valid || cand.stamp < victim->stamp) victim = &cand;
      }
    }
    victim->valid = true;
    victim->mpbt = mpbt;
    victim->tag = tag;
    victim->stamp = ++tick_;
    std::memcpy(victim->data.data(), line_data, line_bytes_);
  }

  void invalidate_line(u64 paddr) {
    if (Line* line = find(paddr)) line->valid = false;
  }

  /// CL1INVMB: invalidate every line tagged as MPBT memory type.
  void invalidate_mpbt() {
    for (auto& line : lines_) {
      if (line.valid && line.mpbt) line.valid = false;
    }
  }

  void invalidate_all() {
    for (auto& line : lines_) line.valid = false;
  }

  std::size_t valid_line_count() const {
    std::size_t n = 0;
    for (const auto& line : lines_) n += line.valid ? 1 : 0;
    return n;
  }

  /// Test hook: directly inspect a cached line's bytes (nullptr if absent).
  const u8* peek_line(u64 paddr) const {
    const Line* line = find(paddr);
    return line ? line->data.data() : nullptr;
  }

 private:
  struct Line {
    u64 tag = 0;
    u64 stamp = 0;
    bool valid = false;
    bool mpbt = false;
    std::vector<u8> data;
  };

  u32 set_index(u64 paddr) const {
    return static_cast<u32>((paddr / line_bytes_) & (num_sets_ - 1));
  }

  u32 offset_in_line(u64 paddr) const {
    return static_cast<u32>(paddr & (line_bytes_ - 1));
  }

  const Line* find(u64 paddr) const {
    const u64 tag = line_addr(paddr);
    const u32 set = set_index(paddr);
    for (u32 w = 0; w < assoc_; ++w) {
      const Line& line = lines_[static_cast<std::size_t>(set) * assoc_ + w];
      if (line.valid && line.tag == tag) return &line;
    }
    return nullptr;
  }

  Line* find(u64 paddr) {
    return const_cast<Line*>(
        static_cast<const Cache*>(this)->find(paddr));
  }

  u32 line_bytes_;
  u32 assoc_;
  u32 num_sets_;
  u64 tick_ = 0;
  std::vector<Line> lines_;
};

}  // namespace msvm::scc
