// Functional set-associative cache with LRU replacement.
//
// "Functional" means every line carries a real 32-byte data copy. The SCC
// provides no coherence between cores, so a line can go stale the moment
// another core writes the backing memory — and because the data here is
// real, a missing flush or invalidate in the SVM protocol produces a wrong
// computation result, exactly as on hardware. Several tests rely on this
// (they break the protocol on purpose and assert the corruption appears).
//
// Policy notes (P54C as modelled in the paper):
//   - write-through: stores never dirty a line; they update a present line
//     and always propagate downstream.
//   - read-allocate only: a store to an absent line does NOT allocate
//     ("the P54C cores are not able to update the cache entries on a write
//     miss", Section 7.2.2).
//   - each line carries the MPBT tag bit; CL1INVMB invalidates exactly the
//     tagged lines (invalidate_mpbt()).
#pragma once

#include <cassert>
#include <cstring>
#include <vector>

#include "sim/types.hpp"

namespace msvm::scc {

class Cache {
 public:
  Cache(u32 total_bytes, u32 assoc, u32 line_bytes)
      : line_bytes_(line_bytes),
        assoc_(assoc),
        num_sets_(total_bytes / line_bytes / assoc),
        lines_(static_cast<std::size_t>(num_sets_) * assoc),
        data_(static_cast<std::size_t>(num_sets_) * assoc * line_bytes, 0) {
    assert(num_sets_ > 0 && (num_sets_ & (num_sets_ - 1)) == 0 &&
           "set count must be a power of two");
    assert((line_bytes & (line_bytes - 1)) == 0 &&
           "line size must be a power of two");
    while ((u32{1} << line_shift_) < line_bytes) ++line_shift_;
    // Wire each line header to its slice of the flat payload slab. Both
    // vectors are sized once here and never reallocated, so the interior
    // pointers stay valid for the cache's lifetime (copying is deleted).
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      lines_[i].data = data_.data() + i * line_bytes_;
    }
  }

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  u32 line_bytes() const { return line_bytes_; }
  u32 num_sets() const { return num_sets_; }
  u32 assoc() const { return assoc_; }

  u64 line_addr(u64 paddr) const { return paddr & ~u64{line_bytes_ - 1}; }

  /// True if the line containing `paddr` is present (no LRU update).
  bool probe(u64 paddr) const { return find(paddr) != nullptr; }

  /// Reads `size` bytes if present; returns false on miss. Hit updates
  /// LRU. The access must not straddle a line boundary.
  bool read(u64 paddr, void* out, u32 size) {
    const u8* bytes = hit_bytes(paddr);
    if (bytes == nullptr) return false;
    std::memcpy(out, bytes + offset_in_line(paddr), size);
    return true;
  }

  /// Write-through update: writes into the line if present (returns true),
  /// no allocation on miss.
  bool write(u64 paddr, const void* data, u32 size) {
    u8* bytes = hit_bytes(paddr);
    if (bytes == nullptr) return false;
    std::memcpy(bytes + offset_in_line(paddr), data, size);
    return true;
  }

  /// Hot-path hit probe: on a hit, bumps the LRU stamp and returns the
  /// line's byte storage (the caller indexes with the in-line offset and
  /// performs the copy itself); nullptr on a miss, with no state change.
  /// This is the single lookup the Core's inlined L1-hit fast path does.
  u8* hit_bytes(u64 paddr) {
    Line* line = find(paddr);
    if (line == nullptr) return nullptr;
    line->stamp = ++tick_;
    return line_data(line);
  }

  /// Allocates (fills) the line containing `paddr` with `line_data`
  /// (exactly line_bytes() bytes), evicting the set's LRU way. Clean
  /// write-through caches never need writeback on eviction.
  void fill(u64 paddr, const void* line_data, bool mpbt) {
    const u64 tag = line_addr(paddr);
    Line* victim = find(paddr);
    if (victim == nullptr) {
      const u32 set = set_index(paddr);
      victim = &lines_[static_cast<std::size_t>(set) * assoc_];
      for (u32 w = 1; w < assoc_; ++w) {
        Line& cand = lines_[static_cast<std::size_t>(set) * assoc_ + w];
        if (!victim->valid) break;
        if (!cand.valid || cand.stamp < victim->stamp) victim = &cand;
      }
    }
    victim->valid = true;
    victim->mpbt = mpbt;
    victim->tag = tag;
    victim->stamp = ++tick_;
    std::memcpy(this->line_data(victim), line_data, line_bytes_);
  }

  void invalidate_line(u64 paddr) {
    if (Line* line = find(paddr)) line->valid = false;
  }

  /// CL1INVMB: invalidate every line tagged as MPBT memory type.
  void invalidate_mpbt() {
    for (auto& line : lines_) {
      if (line.valid && line.mpbt) line.valid = false;
    }
  }

  void invalidate_all() {
    for (auto& line : lines_) line.valid = false;
  }

  std::size_t valid_line_count() const {
    std::size_t n = 0;
    for (const auto& line : lines_) n += line.valid ? 1 : 0;
    return n;
  }

  /// Test hook: directly inspect a cached line's bytes (nullptr if absent).
  const u8* peek_line(u64 paddr) const {
    const Line* line = find(paddr);
    return line ? line_data(line) : nullptr;
  }

 private:
  // Line header: metadata plus a pointer to the line's slice of the flat
  // payload slab (data_), so a hit finds header and payload address in
  // one contiguous 32-byte record instead of chasing a per-line heap
  // allocation or dividing pointer offsets.
  struct Line {
    u64 tag = 0;
    u64 stamp = 0;
    u8* data = nullptr;
    bool valid = false;
    bool mpbt = false;
  };

  static u8* line_data(Line* line) { return line->data; }
  static const u8* line_data(const Line* line) { return line->data; }

  u32 set_index(u64 paddr) const {
    return static_cast<u32>((paddr >> line_shift_) & (num_sets_ - 1));
  }

  u32 offset_in_line(u64 paddr) const {
    return static_cast<u32>(paddr & (line_bytes_ - 1));
  }

  const Line* find(u64 paddr) const {
    const u64 tag = line_addr(paddr);
    const u32 set = set_index(paddr);
    for (u32 w = 0; w < assoc_; ++w) {
      const Line& line = lines_[static_cast<std::size_t>(set) * assoc_ + w];
      if (line.valid && line.tag == tag) return &line;
    }
    return nullptr;
  }

  Line* find(u64 paddr) {
    return const_cast<Line*>(
        static_cast<const Cache*>(this)->find(paddr));
  }

  u32 line_bytes_;
  u32 line_shift_ = 0;  // log2(line_bytes_)
  u32 assoc_;
  u32 num_sets_;
  u64 tick_ = 0;
  std::vector<Line> lines_;
  std::vector<u8> data_;  // flat payload slab, line_bytes_ per line
};

}  // namespace msvm::scc
