// Per-core performance counters. Incremented on the simulator's hot paths
// and reported by the benchmark harnesses (e.g. the "two page faults per
// iteration" claim of Section 7.2.2 is validated from these).
#pragma once

#include "sim/types.hpp"

namespace msvm::scc {

struct CoreCounters {
  // memory traffic
  u64 loads = 0;
  u64 stores = 0;
  u64 l1_hits = 0;
  u64 l1_misses = 0;
  u64 l2_hits = 0;
  u64 l2_misses = 0;
  u64 wcb_merges = 0;
  u64 wcb_flushes = 0;
  u64 dram_reads = 0;
  u64 dram_writes = 0;
  u64 mpb_reads = 0;
  u64 mpb_writes = 0;
  u64 uncached_ops = 0;
  u64 cl1invmb_count = 0;
  u64 tlb_hits = 0;
  u64 tlb_misses = 0;

  // synchronisation
  u64 tas_acquires = 0;
  u64 tas_spins = 0;

  // faults & interrupts
  u64 page_faults = 0;
  u64 timer_irqs = 0;
  u64 ipi_irqs = 0;
  u64 ipis_sent = 0;

  // SVM fault path (maintained by the SVM layer, not the core itself;
  // kept here so they aggregate and difference with everything else)
  u64 svm_read_faults = 0;
  u64 svm_write_faults = 0;
  u64 svm_inval_sent = 0;
  u64 svm_inval_recv = 0;
  u64 svm_mail_roundtrips = 0;
  TimePs svm_fault_stall_ps = 0;

  // virtual-time breakdown (picoseconds)
  TimePs busy_ps = 0;

  /// Applies `op` to every field pair by walking the field table below;
  /// single source of truth for the field list used by aggregation,
  /// differencing, and the metrics registry.
  template <typename Op>
  void combine(const CoreCounters& o, Op op);

  CoreCounters& operator+=(const CoreCounters& o) {
    combine(o, [](u64& a, const u64& b) { a += b; });
    return *this;
  }

  CoreCounters operator-(const CoreCounters& o) const {
    CoreCounters d = *this;
    d.combine(o, [](u64& a, const u64& b) { a -= b; });
    return d;
  }
};

/// Self-description of CoreCounters: one entry per field, in declaration
/// order. The observability metrics registry folds counters through this
/// table ("core.loads", ...), and combine() walks it, so adding a field
/// here is the only step needed to aggregate, difference, and export it.
struct CoreCounterField {
  const char* name;
  u64 CoreCounters::*member;
};

inline constexpr CoreCounterField kCoreCounterFields[] = {
    {"loads", &CoreCounters::loads},
    {"stores", &CoreCounters::stores},
    {"l1_hits", &CoreCounters::l1_hits},
    {"l1_misses", &CoreCounters::l1_misses},
    {"l2_hits", &CoreCounters::l2_hits},
    {"l2_misses", &CoreCounters::l2_misses},
    {"wcb_merges", &CoreCounters::wcb_merges},
    {"wcb_flushes", &CoreCounters::wcb_flushes},
    {"dram_reads", &CoreCounters::dram_reads},
    {"dram_writes", &CoreCounters::dram_writes},
    {"mpb_reads", &CoreCounters::mpb_reads},
    {"mpb_writes", &CoreCounters::mpb_writes},
    {"uncached_ops", &CoreCounters::uncached_ops},
    {"cl1invmb_count", &CoreCounters::cl1invmb_count},
    {"tlb_hits", &CoreCounters::tlb_hits},
    {"tlb_misses", &CoreCounters::tlb_misses},
    {"tas_acquires", &CoreCounters::tas_acquires},
    {"tas_spins", &CoreCounters::tas_spins},
    {"page_faults", &CoreCounters::page_faults},
    {"timer_irqs", &CoreCounters::timer_irqs},
    {"ipi_irqs", &CoreCounters::ipi_irqs},
    {"ipis_sent", &CoreCounters::ipis_sent},
    {"svm_read_faults", &CoreCounters::svm_read_faults},
    {"svm_write_faults", &CoreCounters::svm_write_faults},
    {"svm_inval_sent", &CoreCounters::svm_inval_sent},
    {"svm_inval_recv", &CoreCounters::svm_inval_recv},
    {"svm_mail_roundtrips", &CoreCounters::svm_mail_roundtrips},
    {"svm_fault_stall_ps", &CoreCounters::svm_fault_stall_ps},
    {"busy_ps", &CoreCounters::busy_ps},
};

template <typename Op>
void CoreCounters::combine(const CoreCounters& o, Op op) {
  for (const CoreCounterField& f : kCoreCounterFields) {
    op(this->*(f.member), o.*(f.member));
  }
}

}  // namespace msvm::scc
