// Per-core performance counters. Incremented on the simulator's hot paths
// and reported by the benchmark harnesses (e.g. the "two page faults per
// iteration" claim of Section 7.2.2 is validated from these).
#pragma once

#include "sim/types.hpp"

namespace msvm::scc {

struct CoreCounters {
  // memory traffic
  u64 loads = 0;
  u64 stores = 0;
  u64 l1_hits = 0;
  u64 l1_misses = 0;
  u64 l2_hits = 0;
  u64 l2_misses = 0;
  u64 wcb_merges = 0;
  u64 wcb_flushes = 0;
  u64 dram_reads = 0;
  u64 dram_writes = 0;
  u64 mpb_reads = 0;
  u64 mpb_writes = 0;
  u64 uncached_ops = 0;
  u64 cl1invmb_count = 0;
  u64 tlb_hits = 0;
  u64 tlb_misses = 0;

  // synchronisation
  u64 tas_acquires = 0;
  u64 tas_spins = 0;

  // faults & interrupts
  u64 page_faults = 0;
  u64 timer_irqs = 0;
  u64 ipi_irqs = 0;
  u64 ipis_sent = 0;

  // SVM fault path (maintained by the SVM layer, not the core itself;
  // kept here so they aggregate and difference with everything else)
  u64 svm_read_faults = 0;
  u64 svm_write_faults = 0;
  u64 svm_inval_sent = 0;
  u64 svm_inval_recv = 0;
  u64 svm_mail_roundtrips = 0;
  TimePs svm_fault_stall_ps = 0;

  // virtual-time breakdown (picoseconds)
  TimePs busy_ps = 0;

  /// Applies `op` to every field pair; single source of truth for the
  /// field list used by both aggregation and differencing.
  template <typename Op>
  void combine(const CoreCounters& o, Op op) {
    op(loads, o.loads);
    op(stores, o.stores);
    op(l1_hits, o.l1_hits);
    op(l1_misses, o.l1_misses);
    op(l2_hits, o.l2_hits);
    op(l2_misses, o.l2_misses);
    op(wcb_merges, o.wcb_merges);
    op(wcb_flushes, o.wcb_flushes);
    op(dram_reads, o.dram_reads);
    op(dram_writes, o.dram_writes);
    op(mpb_reads, o.mpb_reads);
    op(mpb_writes, o.mpb_writes);
    op(uncached_ops, o.uncached_ops);
    op(cl1invmb_count, o.cl1invmb_count);
    op(tlb_hits, o.tlb_hits);
    op(tlb_misses, o.tlb_misses);
    op(tas_acquires, o.tas_acquires);
    op(tas_spins, o.tas_spins);
    op(page_faults, o.page_faults);
    op(timer_irqs, o.timer_irqs);
    op(ipi_irqs, o.ipi_irqs);
    op(ipis_sent, o.ipis_sent);
    op(svm_read_faults, o.svm_read_faults);
    op(svm_write_faults, o.svm_write_faults);
    op(svm_inval_sent, o.svm_inval_sent);
    op(svm_inval_recv, o.svm_inval_recv);
    op(svm_mail_roundtrips, o.svm_mail_roundtrips);
    op(svm_fault_stall_ps, o.svm_fault_stall_ps);
    op(busy_ps, o.busy_ps);
  }

  CoreCounters& operator+=(const CoreCounters& o) {
    combine(o, [](u64& a, const u64& b) { a += b; });
    return *this;
  }

  CoreCounters operator-(const CoreCounters& o) const {
    CoreCounters d = *this;
    d.combine(o, [](u64& a, const u64& b) { a -= b; });
    return d;
  }
};

}  // namespace msvm::scc
