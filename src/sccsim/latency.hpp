// Latency model for the simulated SCC. All functions return picoseconds
// and compose the three clock domains (core, mesh, DRAM).
//
// The constants (in ChipConfig) approximate the figures published in the
// SCC External Architecture Specification and Programmer's Guide: an L2
// hit costs ~18 core cycles; an MPB access costs ~15 core cycles plus
// 4 mesh cycles per hop in each direction; a DDR3 access costs ~40 core
// cycles plus the mesh round trip plus ~46 DRAM cycles. Absolute fidelity
// is not the goal — the reproduction targets the *shape* of the paper's
// curves — but the relative ordering (L1 << L2 << MPB < DRAM, with a
// per-hop mesh gradient) is what produces those shapes.
#pragma once

#include "sccsim/config.hpp"
#include "sccsim/mesh.hpp"
#include "sim/types.hpp"

namespace msvm::scc {

class LatencyModel {
 public:
  explicit LatencyModel(const ChipConfig& cfg) : cfg_(cfg) {}

  TimePs core_cycles(u64 n) const { return n * cfg_.core_cycle_ps(); }
  TimePs mesh_cycles(u64 n) const { return n * cfg_.mesh_cycle_ps(); }
  TimePs dram_cycles(u64 n) const { return n * cfg_.dram_cycle_ps(); }

  TimePs l1_hit() const { return core_cycles(cfg_.l1_hit_cycles); }
  TimePs l2_hit() const { return core_cycles(cfg_.l2_hit_cycles); }
  TimePs store_hit() const { return core_cycles(cfg_.store_hit_cycles); }
  TimePs wcb_merge() const { return core_cycles(cfg_.wcb_merge_cycles); }
  TimePs cl1invmb() const { return core_cycles(cfg_.cl1invmb_cycles); }

  /// Round trip over the mesh for `hops` hops (request + response).
  TimePs mesh_round_trip(int hops) const {
    return mesh_cycles(2ull * static_cast<u64>(hops) * cfg_.mesh_hop_cycles);
  }

  /// One-way trip over the mesh for `hops` hops (posted writes).
  TimePs mesh_one_way(int hops) const {
    return mesh_cycles(static_cast<u64>(hops) * cfg_.mesh_hop_cycles);
  }

  /// MPB *read* on the tile `hops` hops away (0 = own tile): full round
  /// trip, the load stalls for the data.
  TimePs mpb_access(int hops) const {
    return core_cycles(cfg_.mpb_base_cycles) + mesh_round_trip(hops);
  }

  /// MPB *write*: posted, one-way.
  TimePs mpb_write(int hops) const {
    return core_cycles(cfg_.mpb_base_cycles) + mesh_one_way(hops);
  }

  /// One DDR3 *read* transaction (<= 32 bytes) through the MC `hops`
  /// away: full load-to-use round trip.
  TimePs dram_access(int hops) const {
    return core_cycles(cfg_.dram_core_cycles) + mesh_round_trip(hops) +
           dram_cycles(cfg_.dram_mem_cycles);
  }

  /// One DDR3 *write* transaction: posted, the core pays issue occupancy
  /// plus the one-way trip only.
  TimePs dram_write(int hops) const {
    return core_cycles(cfg_.dram_store_core_cycles) + mesh_one_way(hops) +
           dram_cycles(cfg_.dram_store_mem_cycles);
  }

  /// Test-and-Set register access on the tile `hops` hops away.
  TimePs tas_access(int hops) const {
    return core_cycles(cfg_.tas_base_cycles) + mesh_round_trip(hops);
  }

  /// Register access to the system FPGA (Global Interrupt Controller).
  TimePs gic_access(int hops) const {
    return core_cycles(cfg_.gic_base_cycles) + mesh_round_trip(hops);
  }

  TimePs irq_entry() const { return core_cycles(cfg_.irq_entry_cycles); }
  TimePs irq_exit() const { return core_cycles(cfg_.irq_exit_cycles); }

  /// Service (occupancy) time a memory controller is busy per transaction;
  /// used by the optional contention model.
  TimePs mc_service() const {
    return mesh_cycles(cfg_.mc_service_mesh_cycles);
  }

 private:
  const ChipConfig& cfg_;
};

}  // namespace msvm::scc
