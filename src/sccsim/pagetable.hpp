// Per-core page tables.
//
// Each simulated core owns a private page table, mirroring MetalSVM where
// "the page tables are located in the private memory and, consequently,
// each core possesses its own version of the page tables" (Section 6.3).
// The SVM layer manipulates PTE permission bits (present / writable) and
// memory-type bits (MPBT, L2-enable) to drive the consistency protocols.
#pragma once

#include <cassert>
#include <unordered_map>

#include "sim/types.hpp"

namespace msvm::scc {

inline constexpr u64 kInvalidFrame = ~u64{0};

struct Pte {
  /// Simulated physical address of the frame base.
  u64 frame_paddr = kInvalidFrame;
  bool present = false;
  bool writable = false;
  /// MPBT memory type: L1-only write-through with the write-combine
  /// buffer; lines are tagged so CL1INVMB can invalidate them selectively.
  bool mpbt = false;
  /// When clear together with mpbt, the page may use the L2 cache (the
  /// read-only-region optimisation of Section 6.4 sets present=1,
  /// writable=0, mpbt=0, l2_enable=1).
  bool l2_enable = false;
};

class PageTable {
 public:
  explicit PageTable(u32 page_bytes) : page_bytes_(page_bytes) {
    assert((page_bytes & (page_bytes - 1)) == 0);
    while ((u32{1} << page_shift_) < page_bytes) ++page_shift_;
  }

  u32 page_bytes() const { return page_bytes_; }
  /// log2(page_bytes): hot paths shift instead of dividing.
  u32 page_shift() const { return page_shift_; }
  u64 vpage_of(u64 vaddr) const { return vaddr >> page_shift_; }
  u64 page_offset(u64 vaddr) const { return vaddr & (page_bytes_ - 1); }

  /// Epoch increments on every mutation; consumers (the core's host-side
  /// translation cache) use it to invalidate stale snapshots.
  u64 epoch() const { return epoch_; }

  /// Looks up the PTE for the page containing `vaddr` (nullptr if the
  /// page was never mapped).
  const Pte* find(u64 vaddr) const {
    const auto it = entries_.find(vpage_of(vaddr));
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Installs or replaces the PTE for the page containing `vaddr`.
  void map(u64 vaddr, const Pte& pte) {
    entries_[vpage_of(vaddr)] = pte;
    ++epoch_;
  }

  /// Drops the mapping entirely.
  void unmap(u64 vaddr) {
    entries_.erase(vpage_of(vaddr));
    ++epoch_;
  }

  /// Mutates an existing PTE in place via `fn`; returns false when the
  /// page has no entry.
  template <typename Fn>
  bool update(u64 vaddr, Fn&& fn) {
    const auto it = entries_.find(vpage_of(vaddr));
    if (it == entries_.end()) return false;
    fn(it->second);
    ++epoch_;
    return true;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  u32 page_bytes_;
  u32 page_shift_ = 0;
  u64 epoch_ = 0;
  std::unordered_map<u64, Pte> entries_;
};

}  // namespace msvm::scc
