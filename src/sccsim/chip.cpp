#include "sccsim/chip.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "sim/log.hpp"

namespace msvm::scc {

namespace {

/// Validated pass-through used in the member initializer list, so a bad
/// config is rejected before any member sized off it is constructed.
ChipConfig checked(ChipConfig cfg) {
  const std::string err = validate_config(cfg);
  if (!err.empty()) {
    throw std::invalid_argument("msvm::scc::ChipConfig: " + err);
  }
  return cfg;
}

}  // namespace

Chip::Chip(ChipConfig cfg)
    : cfg_(checked(std::move(cfg))),
      memory_(cfg_),
      latency_(cfg_),
      gic_(cfg_.num_cores),
      faults_(cfg_.faults),
      watchdog_(sched_, cfg_.faults.watchdog_ps),
      bus_(cfg_.num_cores),
      mc_busy_until_(
          static_cast<std::size_t>(topology().num_mem_controllers()), 0) {
  // Shard the event core into per-quadrant lanes when asked. Lookahead is
  // the minimum cross-lane notification latency: one mesh hop, one way
  // (adjacent quadrants are at least one hop apart). See DESIGN.md §12.
  if (cfg_.sched_lanes > 1) {
    const TimePs hop = static_cast<TimePs>(cfg_.mesh_hop_cycles) *
                       cfg_.mesh_cycle_ps();
    sched_.configure_lanes(cfg_.sched_lanes, hop > 0 ? hop : 1);
  }
  // Apply the process-wide observability configuration (filled by the
  // bench --trace/--metrics flags; default all-off and side-effect-free).
  const obs::RuntimeConfig& ocfg = obs::runtime_config();
  if (ocfg.categories != 0) bus_.enable(ocfg.categories);
  if (ocfg.collect) {
    obs::global_collector().begin_session(cfg_.num_cores);
    bus_.attach(&obs::global_collector());
  }
  if (ocfg.heatmap) bus_.attach(&obs::global_heatmap());
  watchdog_.bind_bus(&bus_);
  // Size the fail-stop bookkeeping only when the plan schedules kills
  // (every accessor stays a branch on an empty vector otherwise).
  if (!cfg_.faults.kills.empty()) {
    kill_at_.assign(static_cast<std::size_t>(cfg_.num_cores), kTimeNever);
    for (const sim::KillSpec& k : cfg_.faults.kills) {
      if (k.core < 0 || k.core >= cfg_.num_cores) {
        throw std::invalid_argument(
            "msvm::scc::ChipConfig: kill targets core " +
            std::to_string(k.core) + " but the chip runs " +
            std::to_string(cfg_.num_cores) + " cores");
      }
      auto& at = kill_at_[static_cast<std::size_t>(k.core)];
      if (k.at_ps < at) at = k.at_ps;
    }
    dead_.assign(static_cast<std::size_t>(cfg_.num_cores), 0);
    dead_wcb_valid_.assign(static_cast<std::size_t>(cfg_.num_cores), 0);
    dead_wcb_line_.assign(static_cast<std::size_t>(cfg_.num_cores), 0);
    tas_owner_.assign(
        static_cast<std::size_t>(topology().max_cores()), -1);
  }
  if (cfg_.faults.lease_ps > 0) {
    heartbeat_.assign(static_cast<std::size_t>(cfg_.num_cores), 0);
  }
  cores_.reserve(static_cast<std::size_t>(cfg_.num_cores));
  for (int i = 0; i < cfg_.num_cores; ++i) {
    cores_.push_back(std::make_unique<Core>(*this, i));
  }
  // IPIs must pull a halted core out of its sleep: route GIC raises to the
  // scheduler wake of the target actor, delayed by the wire latency.
  gic_.wake_fn = [this](int target, TimePs at) {
    sim::Actor* actor = core(target).actor();
    if (actor != nullptr) {
      sched_.wake(*actor, at + cfg_.ipi_wire_ps);
    }
  };
}

Chip::~Chip() {
  if (!obs::runtime_config().metrics) return;
  // Fold this chip's lifetime counters into the process-wide registry
  // (the --metrics flag dumps it into BENCH_*.json at exit).
  obs::MetricsRegistry& m = obs::global_metrics();
  obs::fold_fields(m, "core", total_counters(), kCoreCounterFields);
  m.observe("chip.makespan_ms",
            static_cast<double>(makespan_) / 1e9);
  // Lane-utilization metrics of the sharded event core: per-lane dispatch
  // counts plus the lookahead windows opened (both 0-cost with one lane).
  if (sched_.num_lanes() > 1) {
    m.add("sched.windows_opened", sched_.windows_opened());
    for (int i = 0; i < sched_.num_lanes(); ++i) {
      m.add("sched.lane" + std::to_string(i) + ".dispatched",
            sched_.lane_dispatched(i));
    }
  }
}

void Chip::spawn_program(int core_id, std::function<void(Core&)> fn) {
  Core& c = core(core_id);
  assert(c.actor() == nullptr && "core already has a program");
  // Lane assignment shards cores by mesh quadrant so cross-lane traffic
  // crosses at least one mesh hop — the basis of the lookahead window.
  const Topology& topo = topology();
  const TileCoord at = topo.coord_of_core(core_id);
  const int quadrant = (at.y >= topo.rows() / 2 ? 2 : 0) +
                       (at.x >= topo.cols() / 2 ? 1 : 0);
  const int lane = sched_.num_lanes() > 1 ? quadrant % sched_.num_lanes() : 0;
  sim::Actor& actor = sched_.spawn(
      "core" + std::to_string(core_id),
      [this, core_id, fn = std::move(fn)] {
        Core& self = core(core_id);
        fn(self);
        if (self.now() > makespan_) makespan_ = self.now();
      },
      /*start=*/0, sim::Fiber::kDefaultStackBytes, lane);
  c.bind_actor(&actor);
}

void Chip::run() {
  try {
    sched_.run();
  } catch (const sim::DeadlockError& e) {
    // Unwind the blocked fibers NOW, while the caller's kernels,
    // mailboxes and SVM runtimes — which the parked stack frames
    // reference — are all still alive. Leaving the unwind to
    // ~Scheduler would run those frames' destructors against
    // already-destroyed objects (the chip typically outlives them in
    // declaration order).
    sched_.cancel_all();
    if (!watchdog_.enabled()) throw;
    // With the watchdog armed every failure is typed: even a hard
    // deadlock (all actors blocked before any wait-loop check fired)
    // surfaces as a HangError carrying the actor enumeration.
    throw sim::HangError("simulated hang (deadlock with watchdog armed)",
                         std::string(e.what()) + "\n");
  }
  if (dead_count_ > 0 && !watchdog_.tripped()) {
    // Killed fibers are parked mid-stack; unwind them now, from the main
    // context, while the kernels/mailboxes/SVM runtimes their frames
    // reference are still alive. Leaving this to ~Scheduler would
    // destruct those frames after the caller's objects are gone.
    sched_.cancel_all();
  }
  if (watchdog_.tripped()) {
    // The tripping actor recorded the report, requested a stop, and
    // parked itself; the scheduler returned early. Unwind every parked
    // fiber while the objects their frames reference are still alive
    // (see above), then surface the report here, from the main context,
    // where the exception can safely propagate.
    sched_.cancel_all();
    throw sim::HangError("simulated hang detected by watchdog",
                         watchdog_.report());
  }
}

void Chip::fail_stop(Core& c) {
  const int id = c.id();
  if (core_dead(id)) return;
  dead_[static_cast<std::size_t>(id)] = 1;
  ++dead_count_;
  if (c.wcb().valid()) {
    dead_wcb_valid_[static_cast<std::size_t>(id)] = 1;
    dead_wcb_line_[static_cast<std::size_t>(id)] = c.wcb().line_addr();
  }
  MSVM_LOG_INFO("chaos: core %d fail-stopped at %.3fms (wcb %s)", id,
                ps_to_ms(c.now()), c.wcb().valid() ? "dirty" : "clean");
  if (bus_.enabled(obs::kCatChaos)) {
    bus_.publish(obs::Event{
        static_cast<obs::u64>(c.now()),
        static_cast<obs::u64>(obs::InjectKind::kCoreKill), 0, 0,
        obs::EventKind::kFaultInject, id});
  }
  sched_.kill_self();
}

TimePs Chip::mc_queue_delay(int mc, TimePs t) {
  if (!cfg_.mc_contention) return 0;
  auto& busy = mc_busy_until_[static_cast<std::size_t>(mc)];
  const TimePs start = busy > t ? busy : t;
  busy = start + latency_.mc_service();
  return start - t;
}

CoreCounters Chip::total_counters() const {
  CoreCounters total;
  for (const auto& c : cores_) total += c->counters();
  return total;
}

}  // namespace msvm::scc
