// The SCC's write-combine buffer (WCB): one cache line of write-through
// data per core, enabled for pages tagged with the MPBT memory type.
//
// The WCB turns the P54C's byte-granular write-through stream into
// line-granular transactions: stores to the same line merge in the buffer;
// a store touching a different line (or an explicit flush) writes the
// buffered bytes downstream in a single transaction. Section 3 of the
// paper calls this "extremely useful to increase the bandwidth" for the
// SVM write path; bench/ablation_wcb quantifies it.
//
// Only the dirty bytes are written on flush (a byte mask is kept) so a
// partially-written line cannot clobber bytes another core produced — an
// invariant tests/sccsim/wcb_test.cpp checks explicitly.
#pragma once

#include <cassert>
#include <cstring>
#include <optional>
#include <vector>

#include "sim/types.hpp"

namespace msvm::scc {

class WriteCombineBuffer {
 public:
  explicit WriteCombineBuffer(u32 line_bytes)
      : line_bytes_(line_bytes), data_(line_bytes, 0) {
    assert(line_bytes <= 64 && "dirty mask is a u64 bitmap");
  }

  struct FlushRequest {
    u64 line_addr;
    const u8* data;
    u32 size;
    u64 dirty_mask;
  };

  bool valid() const { return valid_; }
  u64 line_addr() const { return line_addr_; }
  u64 dirty_mask() const { return dirty_mask_; }

  /// True when the buffered line overlaps [paddr, paddr+size).
  bool overlaps(u64 paddr, u32 size) const {
    if (!valid_) return false;
    const u64 lo = line_addr_;
    const u64 hi = line_addr_ + line_bytes_;
    return paddr < hi && paddr + size > lo;
  }

  /// Attempts to absorb a store. Returns std::nullopt when the store was
  /// merged; otherwise returns the flush the caller must perform *before*
  /// retrying (the buffer holds a different line and must drain first).
  std::optional<FlushRequest> store(u64 paddr, const void* src, u32 size) {
    const u64 line = paddr & ~u64{line_bytes_ - 1};
    assert((paddr & (line_bytes_ - 1)) + size <= line_bytes_ &&
           "store must not straddle a line");
    if (valid_ && line != line_addr_) {
      return take_flush();
    }
    if (!valid_) {
      valid_ = true;
      line_addr_ = line;
      dirty_mask_ = 0;
    }
    const u32 off = static_cast<u32>(paddr & (line_bytes_ - 1));
    std::memcpy(data_.data() + off, src, size);
    dirty_mask_ |= span_mask(off, size);
    return std::nullopt;
  }

  /// Hot-path merge for a store the caller has already proven mergeable
  /// (buffer empty or holding `line`): same effect as store(), minus the
  /// different-line branch and the FlushRequest plumbing.
  void merge(u64 line, u32 off, const void* src, u32 size) {
    assert(!valid_ || line == line_addr_);
    if (!valid_) {
      valid_ = true;
      line_addr_ = line;
      dirty_mask_ = 0;
    }
    std::memcpy(data_.data() + off, src, size);
    dirty_mask_ |= span_mask(off, size);
  }

  /// Reads buffered bytes into `out` where dirty; returns true only if
  /// *all* requested bytes are dirty (fully forwardable).
  bool forward(u64 paddr, void* out, u32 size) const {
    if (!overlaps(paddr, size)) return false;
    const u32 off = static_cast<u32>(paddr & (line_bytes_ - 1));
    const u64 want = span_mask(off, size);
    if ((dirty_mask_ & want) != want) return false;
    std::memcpy(out, data_.data() + off, size);
    return true;
  }

  /// Empties the buffer, handing the pending bytes to the caller.
  /// Returns std::nullopt when there is nothing to flush.
  std::optional<FlushRequest> flush() {
    if (!valid_) return std::nullopt;
    return take_flush();
  }

 private:
  /// Bitmap with bits [off, off+size) set. size <= 64 by the line-size
  /// assert, and a whole-line span must not shift by 64 (UB): split the
  /// expression so the full-width case is exact.
  static u64 span_mask(u32 off, u32 size) {
    const u64 width = size >= 64 ? ~u64{0} : (u64{1} << size) - 1;
    return width << off;
  }

  FlushRequest take_flush() {
    valid_ = false;
    return FlushRequest{line_addr_, data_.data(), line_bytes_, dirty_mask_};
  }

  u32 line_bytes_;
  bool valid_ = false;
  u64 line_addr_ = 0;
  u64 dirty_mask_ = 0;
  std::vector<u8> data_;
};

}  // namespace msvm::scc
