// Backing storage for every addressable resource on the simulated chip:
// off-die DRAM (shared + private), the per-core on-die MPBs, and the
// per-core Test-and-Set registers. This class is purely functional — all
// latency accounting happens in Core — but it is the single source of
// truth for data, which is what makes the simulated incoherence real:
// caches keep (possibly stale) copies, this is the memory they drift from.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "sccsim/addrmap.hpp"
#include "sccsim/config.hpp"
#include "sccsim/mesh.hpp"
#include "sim/types.hpp"

namespace msvm::scc {

class Memory {
 public:
  explicit Memory(const ChipConfig& cfg)
      : cfg_(cfg),
        map_(cfg),
        shared_(cfg.shared_dram_bytes, 0),
        private_(static_cast<std::size_t>(cfg.num_cores) *
                     cfg.private_dram_bytes,
                 0),
        mpb_(static_cast<std::size_t>(cfg.num_cores) * cfg.mpb_bytes, 0),
        // The Test-and-Set register file is a fixed hardware resource of
        // the full die(s), independent of how many cores run programs.
        tas_(static_cast<std::size_t>(map_.topology().max_cores()), 0) {}

  const AddrMap& map() const { return map_; }

  /// Raw read of up to an arbitrary number of bytes. The range must lie
  /// within a single device region.
  void read(u64 paddr, void* out, u32 size) const {
    const u8* src = locate(paddr, size);
    std::memcpy(out, src, size);
  }

  void write(u64 paddr, const void* data, u32 size) {
    u8* dst = locate(paddr, size);
    std::memcpy(dst, data, size);
  }

  /// Write only the bytes selected by `mask` (bit i covers byte i). Used
  /// by write-combine-buffer flushes so a partially-dirty line does not
  /// clobber bytes another core wrote meanwhile.
  void write_masked(u64 paddr, const void* data, u32 size, u64 mask) {
    u8* dst = locate(paddr, size);
    const u8* src = static_cast<const u8*>(data);
    for (u32 i = 0; i < size; ++i) {
      if (mask & (u64{1} << i)) dst[i] = src[i];
    }
  }

  /// Atomic Test-and-Set register, SCC semantics: reading the register
  /// returns its previous value and sets it to 1; writing clears it.
  /// Returns true if the lock was acquired (previous value was 0).
  bool tas_read_acquire(int core) {
    const u64 prev = tas_.at(static_cast<std::size_t>(core));
    tas_[static_cast<std::size_t>(core)] = 1;
    return prev == 0;
  }

  void tas_write_release(int core) {
    tas_.at(static_cast<std::size_t>(core)) = 0;
  }

  u64 tas_peek(int core) const {
    return tas_.at(static_cast<std::size_t>(core));
  }

 private:
  const u8* locate(u64 paddr, u32 size) const {
    return const_cast<Memory*>(this)->locate(paddr, size);
  }

  u8* locate(u64 paddr, u32 size) {
    const PhysTarget t = map_.decode(paddr);
    switch (t.kind) {
      case MemKind::kSharedDram:
        bounds_check(t.offset, size, shared_.size());
        return shared_.data() + t.offset;
      case MemKind::kPrivateDram:
        bounds_check(t.offset, size, private_.size());
        return private_.data() + t.offset;
      case MemKind::kMpb:
        bounds_check(static_cast<u64>(t.owner) * cfg_.mpb_bytes + t.offset,
                     size, mpb_.size());
        return mpb_.data() + static_cast<u64>(t.owner) * cfg_.mpb_bytes +
               t.offset;
      case MemKind::kTas:
      case MemKind::kInvalid:
        break;
    }
    std::fprintf(stderr,
                 "msvm::scc::Memory: invalid physical access at 0x%llx\n",
                 static_cast<unsigned long long>(paddr));
    std::abort();
  }

  static void bounds_check(u64 offset, u32 size, std::size_t limit) {
    if (offset + size > limit) {
      std::fprintf(stderr,
                   "msvm::scc::Memory: access beyond device bounds\n");
      std::abort();
    }
  }

  const ChipConfig& cfg_;
  AddrMap map_;
  std::vector<u8> shared_;
  std::vector<u8> private_;
  std::vector<u8> mpb_;
  std::vector<u64> tas_;
};

}  // namespace msvm::scc
