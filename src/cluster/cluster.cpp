#include "cluster/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "obs/metrics.hpp"
#include "svm/svm_runtime.hpp"

namespace msvm::cluster {

namespace {

std::vector<std::vector<int>> resolve_groups(const ClusterConfig& cfg) {
  if (!cfg.domains.empty()) return cfg.domains;
  if (!cfg.members.empty()) return {cfg.members};
  std::vector<int> all;
  for (int i = 0; i < cfg.chip.num_cores; ++i) all.push_back(i);
  return {all};
}

std::vector<int> union_of(const std::vector<std::vector<int>>& groups) {
  std::vector<int> all;
  for (const auto& g : groups) all.insert(all.end(), g.begin(), g.end());
  std::sort(all.begin(), all.end());
  assert(std::adjacent_find(all.begin(), all.end()) == all.end() &&
         "coherency domains must be disjoint");
  return all;
}

}  // namespace

Node::Node(scc::Core& core, const std::vector<int>& members, bool use_ipi,
           svm::SvmDomain& domain)
    : core_(core), members_(members) {
  kernel_ = std::make_unique<kernel::Kernel>(core_);
  kernel_->boot();
  // The mailbox resilience knobs ride on the chip's fault plan so one
  // spec string configures both the faults and the defences.
  const sim::FaultPlan& plan = core_.chip().faults().plan();
  mbox::MailboxConfig mcfg;
  mcfg.use_ipi = use_ipi;
  mcfg.sweep_period = plan.sweep_period;
  mcfg.degrade_after = plan.degrade_after;
  mbox_ = std::make_unique<mbox::MailboxSystem>(*kernel_, mcfg);
  mbox_->set_participants(members_);
  svm_ = std::make_unique<svm::Svm>(*kernel_, *mbox_, domain);
  rcce_ = std::make_unique<rcce::Rcce>(*kernel_, members_);

  sim::Watchdog& watchdog = core_.chip().watchdog();
  if (watchdog.enabled()) {
    // On a hang, contribute this core's SVM/protocol state and mailbox
    // tallies to the structured report (the closure outlives run():
    // nodes are owned by the Cluster, which outlives the chip run).
    watchdog.add_provider([this](std::string& out) {
      svm_->runtime().append_hang_report(out);
      const mbox::MailboxStats& ms = mbox_->stats();
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "core %d mbox: sent=%llu received=%llu inbox=%s "
                    "sweep_recoveries=%llu degraded=%d\n",
                    core_.id(), static_cast<unsigned long long>(ms.sent),
                    static_cast<unsigned long long>(ms.received),
                    mbox_->degraded() ? "poll-fallback" : "normal",
                    static_cast<unsigned long long>(ms.sweep_recoveries),
                    mbox_->degraded() ? 1 : 0);
      out += buf;
    });
  }
}

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(std::move(cfg)),
      groups_(resolve_groups(cfg_)),
      members_(union_of(groups_)),
      chip_(cfg_.chip) {
  const int num_slots = static_cast<int>(groups_.size());
  for (int slot = 0; slot < num_slots; ++slot) {
    domains_.push_back(std::make_unique<svm::SvmDomain>(
        chip_, cfg_.svm, groups_[static_cast<std::size_t>(slot)], slot,
        num_slots));
  }
  nodes_.resize(static_cast<std::size_t>(cfg_.chip.num_cores));
}

std::size_t Cluster::lost_members() const {
  if (chip_.dead_count() == 0) return 0;
  std::size_t n = 0;
  for (const int m : members_) {
    if (chip_.core_dead(m) && member_done_[static_cast<std::size_t>(m)] == 0)
      ++n;
  }
  return n;
}

void Cluster::run(Body body) {
  member_done_.assign(static_cast<std::size_t>(cfg_.chip.num_cores), 0);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (const int core_id : groups_[g]) {
      chip_.spawn_program(core_id, [this, g, body](scc::Core& core) {
        auto& slot = nodes_[static_cast<std::size_t>(core.id())];
        slot = std::make_unique<Node>(core, groups_[g], cfg_.use_ipi,
                                      *domains_[g]);
        try {
          body(*slot);
        } catch (const svm::SvmDataLossError& e) {
          // A fail-stopped owner took this member's data with it. The
          // loss is already typed and attributed; record it and keep the
          // kernel alive to serve the survivors' protocol traffic. Any
          // other exception (including the scheduler's cancellation)
          // propagates untouched.
          failures_.push_back(MemberFailure{core.id(), e.page(), e.what()});
        }
        // The program is done, but this kernel must stay alive to serve
        // mailbox traffic (e.g. strong-model ownership requests from
        // cores still running) — exactly like the real MetalSVM kernel
        // idling in its interrupt loop. The last core wakes the idlers.
        // Members that fail-stopped mid-body never get here, so the
        // completion condition counts them via lost_members().
        member_done_[static_cast<std::size_t>(core.id())] = 1;
        ++done_count_;
        if (done_count_ + lost_members() >= members_.size()) {
          for (const int other : members_) {
            if (other != core.id() && !chip_.core_dead(other))
              core.raise_ipi(other);
          }
          return;
        }
        Node& node = *slot;
        sim::BlockScope scope(chip_.scheduler().current(), "cluster.idle",
                              static_cast<u64>(core.id()));
        std::size_t last_done = done_count_;
        std::size_t last_lost = lost_members();
        TimePs since = core.now();
        while (done_count_ + lost_members() < members_.size()) {
          if (done_count_ != last_done || lost_members() != last_lost) {
            // Progress elsewhere resets the idler's hang clock: idling
            // is only a hang when no member finishes (and no member
            // dies) for a whole limit.
            last_done = done_count_;
            last_lost = lost_members();
            since = core.now();
          }
          if (chip_.watchdog().check(core.now(), since, "cluster.idle",
                                     core.id())) {
            chip_.scheduler().block();  // parked until teardown
          }
          if (cfg_.use_ipi) {
            node.kernel().idle_once();
          } else {
            node.mbox().poll_all();
            core.yield();
          }
        }
      });
    }
  }
  chip_.run();

  if (obs::runtime_config().metrics) {
    // Fold the run's SVM/mailbox tallies into the process-wide registry
    // (named counters; the --metrics flag dumps them into BENCH_*.json).
    obs::MetricsRegistry& m = obs::global_metrics();
    for (const int c : members_) {
      // A member killed during boot never finished constructing its node.
      if (!nodes_[static_cast<std::size_t>(c)]) continue;
      obs::fold_fields(m, "svm", node(c).svm().stats(),
                       svm::proto::kSvmStatsFields);
      obs::fold_fields(m, "mailbox", node(c).mbox().stats(),
                       mbox::kMailboxStatsFields);
    }
  }
}

Node& Cluster::node(int core_id) {
  auto& n = nodes_.at(static_cast<std::size_t>(core_id));
  assert(n != nullptr && "node not booted (core is not a member?)");
  return *n;
}

}  // namespace msvm::cluster
