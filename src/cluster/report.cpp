#include "cluster/report.hpp"

#include <cstdarg>
#include <cstdio>

#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"

namespace msvm::cluster {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void append_core_row(std::string& out, const char* label,
                     const scc::CoreCounters& c,
                     const ReportOptions& options) {
  appendf(out, "%-8s", label);
  appendf(out, " busy %10.3f ms", ps_to_ms(c.busy_ps));
  if (options.memory) {
    appendf(out, " | ld %10llu st %10llu",
            static_cast<unsigned long long>(c.loads),
            static_cast<unsigned long long>(c.stores));
    const u64 l1 = c.l1_hits + c.l1_misses;
    appendf(out, " | L1 %5.1f%%",
            l1 ? 100.0 * static_cast<double>(c.l1_hits) /
                     static_cast<double>(l1)
               : 0.0);
    appendf(out, " L2hit %8llu",
            static_cast<unsigned long long>(c.l2_hits));
    appendf(out, " | DRAM r %8llu w %8llu wcb %7llu",
            static_cast<unsigned long long>(c.dram_reads),
            static_cast<unsigned long long>(c.dram_writes),
            static_cast<unsigned long long>(c.wcb_flushes));
  }
  appendf(out, " | flt %6llu ipi %5llu",
          static_cast<unsigned long long>(c.page_faults),
          static_cast<unsigned long long>(c.ipis_sent));
  out += '\n';
}

}  // namespace

std::string format_report(Cluster& cluster, const ReportOptions& options) {
  std::string out;
  appendf(out, "=== run report: %d member core(s), makespan %.3f ms ===\n",
          static_cast<int>(cluster.members().size()),
          ps_to_ms(cluster.makespan()));

  if (options.per_core) {
    for (const int c : cluster.members()) {
      char label[16];
      std::snprintf(label, sizeof(label), "core %2d", c);
      append_core_row(out, label, cluster.node(c).core().counters(),
                      options);
    }
  }
  append_core_row(out, "total", cluster.chip().total_counters(), options);

  if (options.svm) {
    // Table-driven aggregation: every SvmStats field sums, no hand-kept
    // field list to fall out of date.
    svm::SvmStats svm_total;
    scc::CoreCounters fault_total;
    for (const int c : cluster.members()) {
      const svm::SvmStats& s = cluster.node(c).svm().stats();
      for (const auto& f : svm::proto::kSvmStatsFields) {
        svm_total.*(f.member) += s.*(f.member);
      }
      fault_total += cluster.node(c).core().counters();
    }
    appendf(out,
            "svm: first-touch %llu, map %llu, own-acq %llu, own-serve "
            "%llu, fwd %llu, migrate %llu, barriers %llu, locks %llu\n",
            static_cast<unsigned long long>(svm_total.first_touch_allocs),
            static_cast<unsigned long long>(svm_total.map_faults),
            static_cast<unsigned long long>(svm_total.ownership_acquires),
            static_cast<unsigned long long>(svm_total.ownership_serves),
            static_cast<unsigned long long>(svm_total.ownership_forwards),
            static_cast<unsigned long long>(svm_total.migrations),
            static_cast<unsigned long long>(svm_total.barriers),
            static_cast<unsigned long long>(svm_total.lock_acquires));
    appendf(out,
            "svm-fault: rd %llu, wr %llu, mail-rtt %llu, inval tx %llu "
            "rx %llu, replicas %llu, grants %llu, stall %.3f ms\n",
            static_cast<unsigned long long>(fault_total.svm_read_faults),
            static_cast<unsigned long long>(fault_total.svm_write_faults),
            static_cast<unsigned long long>(
                fault_total.svm_mail_roundtrips),
            static_cast<unsigned long long>(fault_total.svm_inval_sent),
            static_cast<unsigned long long>(fault_total.svm_inval_recv),
            static_cast<unsigned long long>(svm_total.replica_installs),
            static_cast<unsigned long long>(svm_total.replica_grants),
            ps_to_ms(fault_total.svm_fault_stall_ps));
    if (svm_total.retransmits != 0 || svm_total.dup_acks_dropped != 0) {
      appendf(out, "svm-resilience: retransmits %llu, dup-acks dropped "
                   "%llu\n",
              static_cast<unsigned long long>(svm_total.retransmits),
              static_cast<unsigned long long>(svm_total.dup_acks_dropped));
    }
  }

  if (options.svm_trace) {
    for (const int c : cluster.members()) {
      const obs::EventRing& ring = cluster.node(c).svm().trace();
      if (ring.recorded() == 0) continue;
      appendf(out, "svm-trace core %d (%llu event(s), newest last):\n", c,
              static_cast<unsigned long long>(ring.recorded()));
      out += svm::proto_trace_dump(ring, "  ", options.svm_trace_events);
    }
  }

  if (options.mailbox) {
    mbox::MailboxStats total;
    for (const int c : cluster.members()) {
      const mbox::MailboxStats& m = cluster.node(c).mbox().stats();
      for (const auto& f : mbox::kMailboxStatsFields) {
        total.*(f.member) += m.*(f.member);
      }
    }
    appendf(out, "mailbox: sent %llu, received %llu, slot checks %llu\n",
            static_cast<unsigned long long>(total.sent),
            static_cast<unsigned long long>(total.received),
            static_cast<unsigned long long>(total.slot_checks));
    appendf(out,
            "mailbox-stall: send stalls %llu (%.3f ms), recv wait "
            "%.3f ms, sweep recoveries %llu, degraded %llu\n",
            static_cast<unsigned long long>(total.send_stalls),
            ps_to_ms(total.send_stall_ps), ps_to_ms(total.recv_wait_ps),
            static_cast<unsigned long long>(total.sweep_recoveries),
            static_cast<unsigned long long>(total.degradations));
  }

  if (options.heatmap && !obs::global_heatmap().empty()) {
    appendf(out, "svm-heatmap (top %zu page(s) by activity):\n",
            options.heatmap_top);
    out += obs::global_heatmap().table(options.heatmap_top, "  ");
  }

  if (options.metrics && !obs::global_metrics().empty()) {
    out += "metrics:\n";
    for (const auto& [name, value] : obs::global_metrics().counters()) {
      appendf(out, "  %-32s %llu\n", name.c_str(),
              static_cast<unsigned long long>(value));
    }
    for (const auto& [name, summary] : obs::global_metrics().histograms()) {
      (void)summary;
      const auto s = obs::global_metrics().summarize(name);
      appendf(out, "  %-32s n=%zu mean=%g p50=%g p95=%g\n", name.c_str(),
              s.count, s.mean, s.p50, s.p95);
    }
  }
  return out;
}

}  // namespace msvm::cluster
