#include "cluster/report.hpp"

#include <cstdarg>
#include <cstdio>

namespace msvm::cluster {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void append_core_row(std::string& out, const char* label,
                     const scc::CoreCounters& c,
                     const ReportOptions& options) {
  appendf(out, "%-8s", label);
  appendf(out, " busy %10.3f ms", ps_to_ms(c.busy_ps));
  if (options.memory) {
    appendf(out, " | ld %10llu st %10llu",
            static_cast<unsigned long long>(c.loads),
            static_cast<unsigned long long>(c.stores));
    const u64 l1 = c.l1_hits + c.l1_misses;
    appendf(out, " | L1 %5.1f%%",
            l1 ? 100.0 * static_cast<double>(c.l1_hits) /
                     static_cast<double>(l1)
               : 0.0);
    appendf(out, " L2hit %8llu",
            static_cast<unsigned long long>(c.l2_hits));
    appendf(out, " | DRAM r %8llu w %8llu wcb %7llu",
            static_cast<unsigned long long>(c.dram_reads),
            static_cast<unsigned long long>(c.dram_writes),
            static_cast<unsigned long long>(c.wcb_flushes));
  }
  appendf(out, " | flt %6llu ipi %5llu",
          static_cast<unsigned long long>(c.page_faults),
          static_cast<unsigned long long>(c.ipis_sent));
  out += '\n';
}

}  // namespace

std::string format_report(Cluster& cluster, const ReportOptions& options) {
  std::string out;
  appendf(out, "=== run report: %d member core(s), makespan %.3f ms ===\n",
          static_cast<int>(cluster.members().size()),
          ps_to_ms(cluster.makespan()));

  if (options.per_core) {
    for (const int c : cluster.members()) {
      char label[16];
      std::snprintf(label, sizeof(label), "core %2d", c);
      append_core_row(out, label, cluster.node(c).core().counters(),
                      options);
    }
  }
  append_core_row(out, "total", cluster.chip().total_counters(), options);

  if (options.svm) {
    svm::SvmStats svm_total;
    for (const int c : cluster.members()) {
      const svm::SvmStats& s = cluster.node(c).svm().stats();
      svm_total.map_faults += s.map_faults;
      svm_total.first_touch_allocs += s.first_touch_allocs;
      svm_total.ownership_acquires += s.ownership_acquires;
      svm_total.ownership_serves += s.ownership_serves;
      svm_total.ownership_forwards += s.ownership_forwards;
      svm_total.migrations += s.migrations;
      svm_total.barriers += s.barriers;
      svm_total.lock_acquires += s.lock_acquires;
      svm_total.retransmits += s.retransmits;
      svm_total.dup_acks_dropped += s.dup_acks_dropped;
    }
    scc::CoreCounters fault_total;
    for (const int c : cluster.members()) {
      const svm::SvmStats& s = cluster.node(c).svm().stats();
      svm_total.replica_installs += s.replica_installs;
      svm_total.replica_grants += s.replica_grants;
      svm_total.invalidations_sent += s.invalidations_sent;
      svm_total.invalidations_received += s.invalidations_received;
      fault_total += cluster.node(c).core().counters();
    }
    appendf(out,
            "svm: first-touch %llu, map %llu, own-acq %llu, own-serve "
            "%llu, fwd %llu, migrate %llu, barriers %llu, locks %llu\n",
            static_cast<unsigned long long>(svm_total.first_touch_allocs),
            static_cast<unsigned long long>(svm_total.map_faults),
            static_cast<unsigned long long>(svm_total.ownership_acquires),
            static_cast<unsigned long long>(svm_total.ownership_serves),
            static_cast<unsigned long long>(svm_total.ownership_forwards),
            static_cast<unsigned long long>(svm_total.migrations),
            static_cast<unsigned long long>(svm_total.barriers),
            static_cast<unsigned long long>(svm_total.lock_acquires));
    appendf(out,
            "svm-fault: rd %llu, wr %llu, mail-rtt %llu, inval tx %llu "
            "rx %llu, replicas %llu, grants %llu, stall %.3f ms\n",
            static_cast<unsigned long long>(fault_total.svm_read_faults),
            static_cast<unsigned long long>(fault_total.svm_write_faults),
            static_cast<unsigned long long>(
                fault_total.svm_mail_roundtrips),
            static_cast<unsigned long long>(fault_total.svm_inval_sent),
            static_cast<unsigned long long>(fault_total.svm_inval_recv),
            static_cast<unsigned long long>(svm_total.replica_installs),
            static_cast<unsigned long long>(svm_total.replica_grants),
            ps_to_ms(fault_total.svm_fault_stall_ps));
    if (svm_total.retransmits != 0 || svm_total.dup_acks_dropped != 0) {
      appendf(out, "svm-resilience: retransmits %llu, dup-acks dropped "
                   "%llu\n",
              static_cast<unsigned long long>(svm_total.retransmits),
              static_cast<unsigned long long>(svm_total.dup_acks_dropped));
    }
  }

  if (options.svm_trace) {
    for (const int c : cluster.members()) {
      const svm::proto::TraceRing& ring = cluster.node(c).svm().trace();
      if (ring.recorded() == 0) continue;
      appendf(out, "svm-trace core %d (%llu event(s), newest last):\n", c,
              static_cast<unsigned long long>(ring.recorded()));
      out += ring.dump("  ", options.svm_trace_events);
    }
  }

  if (options.mailbox) {
    u64 sent = 0;
    u64 received = 0;
    u64 checks = 0;
    u64 send_stalls = 0;
    u64 sweep_recoveries = 0;
    u64 degradations = 0;
    TimePs send_stall_ps = 0;
    TimePs recv_wait_ps = 0;
    for (const int c : cluster.members()) {
      const mbox::MailboxStats& m = cluster.node(c).mbox().stats();
      sent += m.sent;
      received += m.received;
      checks += m.slot_checks;
      send_stalls += m.send_stalls;
      send_stall_ps += m.send_stall_ps;
      recv_wait_ps += m.recv_wait_ps;
      sweep_recoveries += m.sweep_recoveries;
      degradations += m.degradations;
    }
    appendf(out, "mailbox: sent %llu, received %llu, slot checks %llu\n",
            static_cast<unsigned long long>(sent),
            static_cast<unsigned long long>(received),
            static_cast<unsigned long long>(checks));
    appendf(out,
            "mailbox-stall: send stalls %llu (%.3f ms), recv wait "
            "%.3f ms, sweep recoveries %llu, degraded %llu\n",
            static_cast<unsigned long long>(send_stalls),
            ps_to_ms(send_stall_ps), ps_to_ms(recv_wait_ps),
            static_cast<unsigned long long>(sweep_recoveries),
            static_cast<unsigned long long>(degradations));
  }
  return out;
}

}  // namespace msvm::cluster
