// Human-readable run reports: formats the per-core hardware counters and
// the SVM/mailbox statistics of a completed Cluster run into a compact
// table. Examples and ad-hoc experiments use this instead of hand-rolled
// printf blocks; benches print paper-style tables of their own.
#pragma once

#include <cstddef>
#include <string>

#include "cluster/cluster.hpp"

namespace msvm::cluster {

struct ReportOptions {
  bool per_core = false;  // one row per member instead of totals only
  bool memory = true;     // cache/DRAM/WCB counters
  bool svm = true;        // fault and ownership statistics
  bool mailbox = true;    // mail traffic
  bool svm_trace = false;      // per-core protocol-event ring dump
  std::size_t svm_trace_events = 8;  // newest events per core to render
  /// Render the per-page SVM heatmap collected on the observability bus
  /// (requires a run with the heatmap sink attached, e.g. --heatmap).
  bool heatmap = false;
  std::size_t heatmap_top = 8;  // hottest pages to render
  /// Render the process-wide metrics registry (named counters folded by
  /// the chip and cluster teardown under --metrics).
  bool metrics = false;
};

/// Renders the statistics of a finished run. Call after Cluster::run().
std::string format_report(Cluster& cluster,
                          const ReportOptions& options = {});

}  // namespace msvm::cluster
