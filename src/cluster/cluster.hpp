// Convenience aggregation: one Cluster builds the simulated chip and, on
// every member core, boots the MetalSVM software stack (kernel, mailbox
// system, SVM endpoint, RCCE endpoint) and runs an SPMD program against
// it. This is the layer examples and benchmarks program against; each
// sub-library remains usable on its own.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "mailbox/mailbox.hpp"
#include "rcce/rcce.hpp"
#include "sccsim/chip.hpp"
#include "svm/svm.hpp"

namespace msvm::cluster {

struct ClusterConfig {
  scc::ChipConfig chip;
  svm::SvmConfig svm;
  /// Mailbox delivery mode (Figures 6/7: IPI-driven vs. polling).
  bool use_ipi = true;
  /// Cores that run the SPMD program; empty means all cores on the chip.
  std::vector<int> members;
  /// Coherency domains (paper Section 1: "a dynamic partitioning of the
  /// SCC's computing resources into several coherency domains"): when
  /// non-empty, each disjoint group gets its own independent SVM domain
  /// and RCCE communicator; `members` is ignored. A node's rank() is its
  /// rank within its group.
  std::vector<std::vector<int>> domains;
};

/// Everything a program running on one core can reach.
class Node {
 public:
  Node(scc::Core& core, const std::vector<int>& members, bool use_ipi,
       svm::SvmDomain& domain);

  int core_id() const { return core_.id(); }
  int rank() const { return svm_->rank(); }
  int size() const { return static_cast<int>(members_.size()); }

  scc::Core& core() { return core_; }
  kernel::Kernel& kernel() { return *kernel_; }
  mbox::MailboxSystem& mbox() { return *mbox_; }
  svm::Svm& svm() { return *svm_; }
  rcce::Rcce& rcce() { return *rcce_; }

 private:
  scc::Core& core_;
  const std::vector<int>& members_;
  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<mbox::MailboxSystem> mbox_;
  std::unique_ptr<svm::Svm> svm_;
  std::unique_ptr<rcce::Rcce> rcce_;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);

  scc::Chip& chip() { return chip_; }
  /// The (first) SVM domain; with coherency domains configured, use
  /// domain(g) for group g.
  svm::SvmDomain& domain(std::size_t group = 0) {
    return *domains_.at(group);
  }
  std::size_t num_domains() const { return domains_.size(); }
  const std::vector<int>& members() const { return members_; }

  /// Runs `body` as an SPMD program on every member core and simulates
  /// to completion. May be called once per Cluster.
  using Body = std::function<void(Node&)>;
  void run(Body body);

  /// One member whose program body aborted on a typed data-loss error
  /// (a page poisoned by a fail-stopped owner). The member's kernel
  /// keeps serving protocol traffic afterwards; the loss is surfaced
  /// here instead of crashing the SPMD run.
  struct MemberFailure {
    int core_id;
    u64 page;
    std::string what;
  };
  /// Data-loss aborts recorded during run(); empty on a clean run.
  const std::vector<MemberFailure>& failures() const { return failures_; }

  /// Node for a member core; valid after run() for stats collection.
  Node& node(int core_id);

  /// Wall-clock (virtual) completion time of the slowest member.
  TimePs makespan() const { return chip_.makespan(); }

 private:
  /// Members that fail-stopped before their body returned: they can
  /// never bump done_count_, so completion counts them as finished.
  /// Members that died *after* finishing stay on the done side only.
  std::size_t lost_members() const;

  ClusterConfig cfg_;
  std::vector<std::vector<int>> groups_;  // at least one
  std::vector<int> members_;              // union of the groups
  scc::Chip chip_;
  std::vector<std::unique_ptr<svm::SvmDomain>> domains_;  // per group
  std::vector<std::unique_ptr<Node>> nodes_;  // indexed by core id
  std::size_t done_count_ = 0;  // members whose program body returned
  std::vector<char> member_done_;  // indexed by core id
  std::vector<MemberFailure> failures_;
};

}  // namespace msvm::cluster
