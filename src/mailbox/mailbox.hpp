// MetalSVM's asynchronous mailbox system (paper, Section 5).
//
// Topology: the receiver's MPB holds one cache-line mailbox per potential
// sender (a single-reader / single-writer pair per channel, which is what
// makes the synchronisation trivially safe). A mailbox carries a `flag`
// byte owned by the protocol: the sender sets it after depositing payload,
// the receiver clears it after consuming. A sender finding the flag still
// set busy-waits "until the receiver has consumed the mail".
//
// Two delivery modes, the subject of Figures 6 and 7:
//   - poll mode (use_ipi = false): the kernel checks every participating
//     sender's slot on each timer interrupt and in the idle/wait loops.
//     Each check costs ~100 core cycles (paper footnote 2), so the cost
//     grows linearly with the number of activated cores.
//   - IPI mode (use_ipi = true): after depositing a mail the sender raises
//     an inter-processor interrupt through the Global Interrupt
//     Controller; the receiver's handler checks *only the raiser's slot*,
//     making the latency independent of the core count.
//
// Incoming mail is dispatched to a registered per-type handler (the SVM
// ownership protocol installs one) or, when no handler matches, queued in
// a software inbox that recv_match() consumes.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "kernel/kernel.hpp"
#include "mailbox/layout.hpp"
#include "sim/types.hpp"

namespace msvm::mbox {

struct Mail {
  u8 type = 0;
  u16 arg16 = 0;
  u64 p0 = 0;
  u64 p1 = 0;
  u64 p2 = 0;
  /// Filled in by the receiving side.
  int sender = -1;
};

struct MailboxStats {
  u64 sent = 0;
  u64 received = 0;
  u64 slot_checks = 0;      // individual mailbox flag checks
  u64 send_stalls = 0;      // send attempts that found the slot full
  u64 handler_dispatch = 0;
  u64 inbox_enqueued = 0;
  u64 multicasts = 0;       // multicast() calls (fan-out counted in sent)
};

class MailboxSystem {
 public:
  /// `use_ipi` selects the delivery mode (see file comment). The mailbox
  /// registers itself with the kernel's interrupt fabric at construction.
  MailboxSystem(kernel::Kernel& kernel, bool use_ipi);

  MailboxSystem(const MailboxSystem&) = delete;
  MailboxSystem& operator=(const MailboxSystem&) = delete;

  bool use_ipi() const { return use_ipi_; }
  int core_id() const { return kernel_.core_id(); }

  /// Declares which cores participate in the communication domain; in
  /// poll mode only their slots are scanned ("the benchmark activates
  /// only two cores. Therefore, only one receive buffer per core has to
  /// be checked", Section 7.1). Defaults to every core on the chip.
  void set_participants(std::vector<int> cores);

  /// Sends a mail to `dest`, busy-waiting while dest's slot for this
  /// sender is still full. Incoming mail continues to be drained while
  /// stalled, so mutual sends cannot deadlock. In IPI mode an IPI is
  /// raised after the deposit.
  void send(int dest, const Mail& mail);

  /// Non-blocking send: returns false (without waiting) when dest's slot
  /// for this sender is still full.
  bool try_send(int dest, const Mail& mail);

  /// Sends `mail` to every core whose bit is set in `dest_mask` (bit i =
  /// core i), always excluding the calling core. There is no hardware
  /// broadcast on the chip: the fan-out is a software loop of ordinary
  /// sends, each paying the full deposit cost (the SVM invalidation
  /// protocol amortises the latency by overlapping the ACK waits).
  /// Returns the number of mails sent.
  int multicast(u64 dest_mask, const Mail& mail);

  /// Registers a handler for a mail type. Handled types never reach the
  /// inbox; the handler runs in whatever context noticed the mail
  /// (interrupt, idle loop, or a wait loop).
  using Handler = std::function<void(const Mail&)>;
  void set_handler(u8 type, Handler handler);

  /// Scans every participating sender's slot once; returns mails seen.
  int poll_all();

  /// Scans one sender's slot; returns mails seen (0 or 1).
  int poll_from(int sender);

  /// Blocks until a mail satisfying `pred` arrives (via inbox), draining
  /// and dispatching other traffic meanwhile. Poll mode spins over
  /// poll_all(); IPI mode halts between interrupts.
  using Predicate = std::function<bool(const Mail&)>;
  Mail recv_match(const Predicate& pred);

  /// Convenience: waits for the next mail of `type`.
  Mail recv_type(u8 type) {
    return recv_match([type](const Mail& m) { return m.type == type; });
  }

  /// Non-blocking inbox take.
  std::optional<Mail> try_take(const Predicate& pred);

  const MailboxStats& stats() const { return stats_; }

 private:
  /// Physical address of the slot written by `sender` in `receiver`'s MPB.
  u64 slot_paddr(int receiver, int sender) const;

  /// Writes payload + flag into an empty slot and raises the IPI.
  void deposit(u64 slot, const Mail& mail, int dest);

  /// Reads one slot; on full: consumes, dispatches/queues, clears flag.
  bool check_slot(int sender);

  void dispatch(Mail mail);

  kernel::Kernel& kernel_;
  scc::Core& core_;
  bool use_ipi_;
  std::vector<int> participants_;
  std::vector<Handler> handlers_;  // indexed by type
  std::deque<Mail> inbox_;
  MailboxStats stats_;
  int dispatch_depth_ = 0;
  u32 poll_jitter_ = 0x12345u;
};

}  // namespace msvm::mbox
