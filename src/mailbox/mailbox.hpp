// MetalSVM's asynchronous mailbox system (paper, Section 5).
//
// Topology: the receiver's MPB holds one cache-line mailbox per potential
// sender (a single-reader / single-writer pair per channel, which is what
// makes the synchronisation trivially safe). A mailbox carries a `flag`
// byte owned by the protocol: the sender sets it after depositing payload,
// the receiver clears it after consuming. A sender finding the flag still
// set busy-waits "until the receiver has consumed the mail".
//
// Two delivery modes, the subject of Figures 6 and 7:
//   - poll mode (use_ipi = false): the kernel checks every participating
//     sender's slot on each timer interrupt and in the idle/wait loops.
//     Each check costs ~100 core cycles (paper footnote 2), so the cost
//     grows linearly with the number of activated cores.
//   - IPI mode (use_ipi = true): after depositing a mail the sender raises
//     an inter-processor interrupt through the Global Interrupt
//     Controller; the receiver's handler checks *only the raiser's slot*,
//     making the latency independent of the core count.
//
// Incoming mail is dispatched to a registered per-type handler (the SVM
// ownership protocol installs one) or, when no handler matches, queued in
// a software inbox that recv_match() consumes.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "kernel/kernel.hpp"
#include "mailbox/layout.hpp"
#include "mailbox/mail_ring.hpp"
#include "sim/fnref.hpp"
#include "sim/types.hpp"

namespace msvm::mbox {

struct Mail {
  u8 type = 0;
  u16 arg16 = 0;
  u64 p0 = 0;
  u64 p1 = 0;
  u64 p2 = 0;
  /// Filled in by the receiving side.
  int sender = -1;
};

struct MailboxStats {
  u64 sent = 0;
  u64 received = 0;
  u64 slot_checks = 0;      // individual mailbox flag checks
  u64 send_stalls = 0;      // send attempts that found the slot full
  u64 handler_dispatch = 0;
  u64 inbox_enqueued = 0;
  u64 multicasts = 0;       // multicast() calls (fan-out counted in sent)
  TimePs send_stall_ps = 0; // virtual time spent stalled in send()
  TimePs recv_wait_ps = 0;  // virtual time spent blocked in recv_match*
  u64 sweep_recoveries = 0; // mails found by the IPI-mode poll sweep
  u64 degradations = 0;     // 1 once the mailbox fell back to poll mode
  u64 dispatches_deferred = 0;  // handler runs queued past the depth cap
  u64 dead_drops = 0;       // sends dropped: destination presumed dead
  u64 corrupt_drops = 0;    // deliveries dropped on a CRC mismatch
};

/// Self-description of MailboxStats, in declaration order, for
/// table-driven aggregation and metrics export.
struct MailboxStatsField {
  const char* name;
  u64 MailboxStats::*member;
};

inline constexpr MailboxStatsField kMailboxStatsFields[] = {
    {"sent", &MailboxStats::sent},
    {"received", &MailboxStats::received},
    {"slot_checks", &MailboxStats::slot_checks},
    {"send_stalls", &MailboxStats::send_stalls},
    {"handler_dispatch", &MailboxStats::handler_dispatch},
    {"inbox_enqueued", &MailboxStats::inbox_enqueued},
    {"multicasts", &MailboxStats::multicasts},
    {"send_stall_ps", &MailboxStats::send_stall_ps},
    {"recv_wait_ps", &MailboxStats::recv_wait_ps},
    {"sweep_recoveries", &MailboxStats::sweep_recoveries},
    {"degradations", &MailboxStats::degradations},
    {"dispatches_deferred", &MailboxStats::dispatches_deferred},
    {"dead_drops", &MailboxStats::dead_drops},
    {"corrupt_drops", &MailboxStats::corrupt_drops},
};

/// Delivery-mode + resilience knobs for one MailboxSystem. The sweep
/// fields only matter in IPI mode and default to off (bit-identical):
/// a missed IPI then wedges the receiver exactly like the real part.
struct MailboxConfig {
  bool use_ipi = false;
  /// Poll-sweep period in timer ticks: every N-th timer interrupt the
  /// receiver scans all participating slots even in IPI mode, catching
  /// mails whose interrupt was lost. 0 disables the sweep.
  u32 sweep_period = 0;
  /// After this many sweep-recovered mails the mailbox stops trusting
  /// IPIs and degrades to polling on every timer tick. 0 disables.
  u32 degrade_after = 0;
};

class MailboxSystem {
 public:
  /// `use_ipi` selects the delivery mode (see file comment). The mailbox
  /// registers itself with the kernel's interrupt fabric at construction.
  MailboxSystem(kernel::Kernel& kernel, bool use_ipi)
      : MailboxSystem(kernel, MailboxConfig{use_ipi, 0, 0}) {}

  MailboxSystem(kernel::Kernel& kernel, const MailboxConfig& cfg);

  MailboxSystem(const MailboxSystem&) = delete;
  MailboxSystem& operator=(const MailboxSystem&) = delete;

  bool use_ipi() const { return use_ipi_; }
  int core_id() const { return kernel_.core_id(); }

  /// Declares which cores participate in the communication domain; in
  /// poll mode only their slots are scanned ("the benchmark activates
  /// only two cores. Therefore, only one receive buffer per core has to
  /// be checked", Section 7.1). Defaults to every core on the chip.
  void set_participants(std::vector<int> cores);

  /// Sends a mail to `dest`, busy-waiting while dest's slot for this
  /// sender is still full. Incoming mail continues to be drained while
  /// stalled, so mutual sends cannot deadlock. In IPI mode an IPI is
  /// raised after the deposit.
  void send(int dest, const Mail& mail);

  /// Non-blocking send: returns false (without waiting) when dest's slot
  /// for this sender is still full.
  bool try_send(int dest, const Mail& mail);

  /// Sends `mail` to every core whose bit is set in `dest_mask` (bit i =
  /// core i), always excluding the calling core. There is no hardware
  /// broadcast on the chip: the fan-out is a software loop of ordinary
  /// sends, each paying the full deposit cost (the SVM invalidation
  /// protocol amortises the latency by overlapping the ACK waits).
  /// Returns the number of mails sent.
  int multicast(u64 dest_mask, const Mail& mail);

  /// List-typed fan-out for chips wider than 64 cores (the SVM layer
  /// materialises its SharerSet into a destination list). Same semantics
  /// as the mask overload: the calling core is skipped.
  int multicast(const std::vector<int>& dests, const Mail& mail);

  /// Registers a handler for a mail type. Handled types never reach the
  /// inbox; the handler runs in whatever context noticed the mail
  /// (interrupt, idle loop, or a wait loop).
  using Handler = std::function<void(const Mail&)>;
  void set_handler(u8 type, Handler handler);

  /// Scans every participating sender's slot once; returns mails seen.
  int poll_all();

  /// Scans one sender's slot; returns mails seen (0 or 1).
  int poll_from(int sender);

  /// Blocks until a mail satisfying `pred` arrives (via inbox), draining
  /// and dispatching other traffic meanwhile. Poll mode spins over
  /// poll_all(); IPI mode halts between interrupts.
  ///
  /// The predicate is a non-owning reference (sim::FnRef): constructing
  /// one never allocates — the SVM fault path builds a fresh predicate
  /// per protocol wait, which as a std::function heap-allocated every
  /// time the capture outgrew the small-buffer limit. A lambda passed
  /// directly to these calls outlives the wait (full-expression
  /// lifetime); see fnref.hpp for the storage rule.
  using Predicate = sim::FnRef<bool(const Mail&)>;
  Mail recv_match(Predicate pred);

  /// Like recv_match but gives up (returns nullopt) once the core's
  /// virtual clock reaches `deadline`. The deadline check is host-side
  /// only: a wait that succeeds before the deadline is cycle-identical
  /// to recv_match. This is the primitive under the SVM layer's bounded
  /// protocol waits and retransmission.
  std::optional<Mail> recv_match_until(Predicate pred, TimePs deadline);

  /// Convenience: waits for the next mail of `type`.
  Mail recv_type(u8 type) {
    return recv_match([type](const Mail& m) { return m.type == type; });
  }

  /// Non-blocking inbox take.
  std::optional<Mail> try_take(Predicate pred);

  /// Queues a mail into the software inbox as if it had arrived without
  /// a registered handler. Used by handlers that filter traffic (e.g.
  /// the SVM ack dedup) and then hand the survivors to waiting
  /// recv_match callers.
  void enqueue_inbox(const Mail& mail);

  /// True once the IPI-mode mailbox has degraded to poll-every-tick
  /// after repeated interrupt loss (see MailboxConfig::degrade_after).
  bool degraded() const { return degraded_; }

  const MailboxStats& stats() const { return stats_; }

 private:
  /// Physical address of the slot written by `sender` in `receiver`'s MPB.
  u64 slot_paddr(int receiver, int sender) const;

  /// Writes payload + flag into an empty slot and raises the IPI.
  void deposit(u64 slot, const Mail& mail, int dest);

  /// Reads one slot; on full: consumes, dispatches/queues, clears flag.
  bool check_slot(int sender);

  void dispatch(Mail mail);

  /// Shared wait loop of recv_match / recv_match_until; `deadline` is
  /// kTimeNever for an unbounded wait.
  std::optional<Mail> recv_loop(Predicate pred, TimePs deadline);

  /// Timer callback in IPI mode when the sweep is configured.
  void sweep_tick();

  kernel::Kernel& kernel_;
  scc::Core& core_;
  bool use_ipi_;
  MailboxConfig cfg_;
  std::vector<int> participants_;
  std::vector<Handler> handlers_;  // indexed by type
  MailRing<Mail> inbox_;
  /// Handler runs deferred past kMaxDispatchDepth, drained iteratively
  /// by the outermost dispatch (see MailboxSystem::dispatch).
  MailRing<Mail> deferred_;
  MailboxStats stats_;
  /// True when the fault plan arms the integrity layer: mails are sealed
  /// with a CRC32C on deposit and verified (drop on mismatch) on
  /// delivery. Latched at construction — the plan is fixed per chip.
  bool integrity_ = false;
  static constexpr int kMaxDispatchDepth = 16;
  int dispatch_depth_ = 0;
  u32 poll_jitter_ = 0x12345u;
  u32 sweep_countdown_ = 0;
  bool degraded_ = false;
};

}  // namespace msvm::mbox
