#include "mailbox/mailbox.hpp"

#include <cassert>
#include <cstring>

#include "sccsim/addrmap.hpp"
#include "sim/log.hpp"

namespace msvm::mbox {

namespace {

// Byte layout of a 32-byte mailbox line.
constexpr u32 kFlagOff = 0;
constexpr u32 kTypeOff = 1;
constexpr u32 kArgOff = 2;
constexpr u32 kP0Off = 4;
constexpr u32 kP1Off = 12;
constexpr u32 kP2Off = 20;

// Modelled software cost of checking one receive buffer: "Currently, the
// mailbox system requires 100 processor cycles to check one receive
// buffer" (paper footnote 2). The uncached MPB flag read is charged on
// top by the memory model.
constexpr u64 kSlotCheckCycles = 100;

// Software cost of composing/consuming a mail (copies, bookkeeping).
constexpr u64 kMailSoftwareCycles = 60;

}  // namespace

MailboxSystem::MailboxSystem(kernel::Kernel& kernel, bool use_ipi)
    : kernel_(kernel),
      core_(kernel.core()),
      use_ipi_(use_ipi),
      handlers_(256) {
  const int n = core_.chip().num_cores();
  participants_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) participants_.push_back(i);

  if (use_ipi_) {
    // Event-driven path: check exactly the slots of the cores that raised
    // the interrupt.
    kernel_.add_ipi_handler([this](u64 source_mask) {
      for (int src = 0; source_mask != 0; ++src, source_mask >>= 1) {
        if (source_mask & 1) poll_from(src);
      }
    });
  } else {
    // Poll path: scan everything on every timer interrupt; idle and wait
    // loops scan explicitly.
    kernel_.add_timer_handler([this] { poll_all(); });
  }
}

void MailboxSystem::set_participants(std::vector<int> cores) {
  participants_ = std::move(cores);
}

u64 MailboxSystem::slot_paddr(int receiver, int sender) const {
  return core_.chip().map().mpb_base(receiver) + mail_slot_offset(sender);
}

void MailboxSystem::deposit(u64 slot, const Mail& mail, int dest) {
  // Deposit payload, then set the flag — the flag write is the release
  // point of the SRSW channel.
  core_.compute_cycles(kMailSoftwareCycles);
  u8 line[kMailBytes] = {0};
  line[kTypeOff] = mail.type;
  std::memcpy(line + kArgOff, &mail.arg16, sizeof(mail.arg16));
  std::memcpy(line + kP0Off, &mail.p0, sizeof(mail.p0));
  std::memcpy(line + kP1Off, &mail.p1, sizeof(mail.p1));
  std::memcpy(line + kP2Off, &mail.p2, sizeof(mail.p2));
  core_.pwrite(slot + 1, line + 1, kMailBytes - 1,
               scc::MemPolicy::kUncached);
  core_.pstore<u8>(slot + kFlagOff, 1, scc::MemPolicy::kUncached);
  ++stats_.sent;
  MSVM_LOG_DEBUG("core %d: DEPOSIT type=%u p0=%llu -> %d", core_.id(),
                 mail.type, static_cast<unsigned long long>(mail.p0), dest);
  if (use_ipi_) core_.raise_ipi(dest);
}

bool MailboxSystem::try_send(int dest, const Mail& mail) {
  const u64 slot = slot_paddr(dest, core_.id());
  // The flag check and the deposit must be atomic against our own
  // interrupt handlers: a handler interrupting between them could itself
  // deposit into this very slot (e.g. an ownership ACK), which the
  // resumed send would silently overwrite.
  core_.irq_disable();
  const u8 flag =
      core_.pload<u8>(slot + kFlagOff, scc::MemPolicy::kUncached);
  if (flag != 0) {
    core_.irq_enable();
    return false;
  }
  deposit(slot, mail, dest);
  core_.irq_enable();
  return true;
}

void MailboxSystem::send(int dest, const Mail& mail) {
  const u64 slot = slot_paddr(dest, core_.id());
  // Wait for the destination slot to drain. Keep consuming our own
  // incoming traffic meanwhile: the peer may be blocked sending to *us*.
  for (;;) {
    // Check-and-claim atomically w.r.t. our own handlers (see try_send).
    core_.irq_disable();
    const u8 flag = core_.pload<u8>(slot + kFlagOff,
                                    scc::MemPolicy::kUncached);
    if (flag == 0) {
      deposit(slot, mail, dest);
      core_.irq_enable();
      return;
    }
    core_.irq_enable();
    ++stats_.send_stalls;
    if (!use_ipi_) {
      poll_all();
    } else if (core_.in_interrupt() || core_.irqs_masked()) {
      // Nested interrupt delivery is masked while a handler runs. Drain
      // pending IPIs by hand, otherwise two cores replying to each other
      // from handler context would deadlock on full slots.
      scc::Gic& gic = core_.chip().gic();
      if (gic.has_pending(core_.id())) {
        u64 mask = gic.take_pending(core_.id());
        for (int src = 0; mask != 0; ++src, mask >>= 1) {
          if (mask & 1) poll_from(src);
        }
      }
    }
    // In IPI mode (outside handlers) incoming mail is consumed by the
    // interrupt handler, which the re-reads above let run at boundaries.
    core_.yield();
  }
}

int MailboxSystem::multicast(u64 dest_mask, const Mail& mail) {
  ++stats_.multicasts;
  int sent = 0;
  dest_mask &= ~(u64{1} << core_.id());  // never self: poll skips our slot
  const int n = core_.chip().num_cores();
  for (int dest = 0; dest < n && dest_mask != 0; ++dest, dest_mask >>= 1) {
    if (dest_mask & 1) {
      send(dest, mail);
      ++sent;
    }
  }
  assert(dest_mask == 0 && "multicast mask names a core beyond num_cores");
  return sent;
}

void MailboxSystem::set_handler(u8 type, Handler handler) {
  handlers_[type] = std::move(handler);
}

int MailboxSystem::poll_all() {
  int seen = 0;
  for (const int sender : participants_) {
    if (sender == core_.id()) continue;
    if (check_slot(sender)) ++seen;
  }
  return seen;
}

int MailboxSystem::poll_from(int sender) {
  if (sender == core_.id()) return 0;
  return check_slot(sender) ? 1 : 0;
}

bool MailboxSystem::check_slot(int sender) {
  ++stats_.slot_checks;
  core_.compute_cycles(kSlotCheckCycles);
  const u64 slot = slot_paddr(core_.id(), sender);
  // The flag read, payload read and flag clear must be atomic against
  // our own interrupt handlers: an IPI/timer handler landing mid-consume
  // would re-poll this very slot, find the flag still set, and dispatch
  // the same mail twice. Dispatch happens after unmasking so handler
  // code runs with normal interrupt delivery.
  core_.irq_disable();
  const u8 flag =
      core_.pload<u8>(slot + kFlagOff, scc::MemPolicy::kUncached);
  if (flag == 0) {
    core_.irq_enable();
    return false;
  }

  Mail mail;
  u8 line[kMailBytes];
  core_.pread(slot, line, kMailBytes, scc::MemPolicy::kUncached);
  mail.type = line[kTypeOff];
  std::memcpy(&mail.arg16, line + kArgOff, sizeof(mail.arg16));
  std::memcpy(&mail.p0, line + kP0Off, sizeof(mail.p0));
  std::memcpy(&mail.p1, line + kP1Off, sizeof(mail.p1));
  std::memcpy(&mail.p2, line + kP2Off, sizeof(mail.p2));
  mail.sender = sender;
  MSVM_LOG_DEBUG("core %d: CONSUME type=%u p0=%llu from %d", core_.id(),
                 mail.type, static_cast<unsigned long long>(mail.p0),
                 sender);
  // Consuming the mail: clear the flag so the sender may reuse the slot.
  core_.pstore<u8>(slot + kFlagOff, 0, scc::MemPolicy::kUncached);
  core_.irq_enable();
  ++stats_.received;
  core_.compute_cycles(kMailSoftwareCycles);
  dispatch(mail);
  return true;
}

void MailboxSystem::dispatch(Mail mail) {
  if (handlers_[mail.type]) {
    // Handlers may send replies, which may stall and drain more traffic;
    // the guard catches runaway protocol recursion.
    assert(dispatch_depth_ < 16 && "mailbox handler recursion");
    ++dispatch_depth_;
    ++stats_.handler_dispatch;
    handlers_[mail.type](mail);
    --dispatch_depth_;
    return;
  }
  ++stats_.inbox_enqueued;
  inbox_.push_back(mail);
}

std::optional<Mail> MailboxSystem::try_take(const Predicate& pred) {
  for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
    if (pred(*it)) {
      Mail m = *it;
      inbox_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

Mail MailboxSystem::recv_match(const Predicate& pred) {
  u64 rounds = 0;
  for (;;) {
    if (auto m = try_take(pred)) return *m;
    if (++rounds % 5000 == 0) {
      MSVM_LOG_ERROR("core %d: recv_match starving (round %llu, inbox=%zu)",
                     core_.id(), static_cast<unsigned long long>(rounds),
                     inbox_.size());
    }
    if (use_ipi_) {
      // Sleep until an interrupt (the IPI handler fills the inbox).
      kernel_.idle_once();
    } else {
      poll_all();
      // A short jittered pause between scans decouples this poll loop
      // from lock-step coupling with the peer (and keeps the host
      // scheduler out of per-iteration churn). The jitter (~90-150 core
      // cycles, well below one slot check) models the pipeline noise a
      // real poll loop has; without it the deterministic simulation
      // aliases poll phases against the sender.
      poll_jitter_ = poll_jitter_ * 1103515245u + 12345u;
      const u64 pause = 90 + (poll_jitter_ >> 16) % 64;
      core_.relax(pause * core_.chip().config().core_cycle_ps());
    }
  }
}

}  // namespace msvm::mbox
