#include "mailbox/mailbox.hpp"

#include <cassert>
#include <cstring>

#include "sccsim/addrmap.hpp"
#include "sim/crc32c.hpp"
#include "sim/log.hpp"

namespace msvm::mbox {

namespace {

// Byte layout of a 32-byte mailbox line.
constexpr u32 kFlagOff = 0;
constexpr u32 kTypeOff = 1;
constexpr u32 kArgOff = 2;
constexpr u32 kP0Off = 4;
constexpr u32 kP1Off = 12;
constexpr u32 kP2Off = 20;
// Bytes 28..31 were unused padding; the integrity layer stores a CRC32C
// of bytes [1, 28) there when armed. The flag byte stays outside the
// checksum: it is flow control, and a flipped flag manifests as a lost
// or spurious delivery, both already covered by the retransmit layer.
constexpr u32 kCrcOff = 28;
constexpr u32 kCrcSpanOff = kTypeOff;
constexpr u32 kCrcSpanBytes = kCrcOff - kCrcSpanOff;

// Modelled software cost of checking one receive buffer: "Currently, the
// mailbox system requires 100 processor cycles to check one receive
// buffer" (paper footnote 2). The uncached MPB flag read is charged on
// top by the memory model.
constexpr u64 kSlotCheckCycles = 100;

// Software cost of composing/consuming a mail (copies, bookkeeping).
constexpr u64 kMailSoftwareCycles = 60;

// Modelled cost of checksumming one 27-byte mail span (table-driven
// software CRC32C, ~1 cycle/byte plus setup). Charged only when the
// integrity layer is armed, so flags-off runs stay cycle-identical.
constexpr u64 kMailCrcCycles = 40;

}  // namespace

MailboxSystem::MailboxSystem(kernel::Kernel& kernel,
                             const MailboxConfig& cfg)
    : kernel_(kernel),
      core_(kernel.core()),
      use_ipi_(cfg.use_ipi),
      cfg_(cfg),
      handlers_(256),
      integrity_(kernel.core().chip().faults().plan().integrity_armed()),
      sweep_countdown_(cfg.sweep_period) {
  const int n = core_.chip().num_cores();
  participants_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) participants_.push_back(i);

  if (use_ipi_) {
    // Event-driven path: check exactly the slots of the cores that raised
    // the interrupt.
    kernel_.add_ipi_handler([this](const scc::IpiSourceSet& sources) {
      sources.for_each([this](int src) { poll_from(src); });
    });
    if (cfg_.sweep_period > 0) {
      // Low-rate safety net against lost interrupts: every Nth timer
      // tick, scan all slots anyway. Off by default — a sweep costs
      // slot-check cycles even when every IPI arrives.
      kernel_.add_timer_handler([this] { sweep_tick(); });
    }
  } else {
    // Poll path: scan everything on every timer interrupt; idle and wait
    // loops scan explicitly.
    kernel_.add_timer_handler([this] { poll_all(); });
  }
}

void MailboxSystem::sweep_tick() {
  if (!degraded_) {
    if (--sweep_countdown_ != 0) return;
    sweep_countdown_ = cfg_.sweep_period;
  }
  const int seen = poll_all();
  if (seen <= 0 || degraded_) return;
  // Every mail found here is one whose IPI never got us to check the
  // slot — interrupt loss evidence.
  stats_.sweep_recoveries += static_cast<u64>(seen);
  obs::EventBus& bus = core_.chip().bus();
  if (bus.enabled(obs::kCatMail)) {
    bus.publish(obs::Event{core_.now(), static_cast<u64>(seen), 0, 0,
                           obs::EventKind::kMailSweep, core_.id()});
  }
  MSVM_LOG_INFO("core %d: poll sweep recovered %d mail(s) missed by IPI",
                core_.id(), seen);
  if (cfg_.degrade_after > 0 &&
      stats_.sweep_recoveries >= cfg_.degrade_after) {
    degraded_ = true;
    ++stats_.degradations;
    MSVM_LOG_ERROR(
        "core %d: %llu mails missed by IPI delivery; degrading mailbox "
        "to poll-every-tick mode",
        core_.id(),
        static_cast<unsigned long long>(stats_.sweep_recoveries));
  }
}

void MailboxSystem::set_participants(std::vector<int> cores) {
  participants_ = std::move(cores);
}

u64 MailboxSystem::slot_paddr(int receiver, int sender) const {
  return core_.chip().map().mpb_base(receiver) + mail_slot_offset(sender);
}

void MailboxSystem::deposit(u64 slot, const Mail& mail, int dest) {
  // Deposit payload, then set the flag — the flag write is the release
  // point of the SRSW channel.
  core_.compute_cycles(kMailSoftwareCycles);
  u8 line[kMailBytes] = {0};
  line[kTypeOff] = mail.type;
  std::memcpy(line + kArgOff, &mail.arg16, sizeof(mail.arg16));
  std::memcpy(line + kP0Off, &mail.p0, sizeof(mail.p0));
  std::memcpy(line + kP1Off, &mail.p1, sizeof(mail.p1));
  std::memcpy(line + kP2Off, &mail.p2, sizeof(mail.p2));
  if (integrity_) {
    // Seal the payload span; the receiver verifies before dispatching.
    const u32 crc = sim::crc32c(line + kCrcSpanOff, kCrcSpanBytes);
    std::memcpy(line + kCrcOff, &crc, sizeof(crc));
    core_.compute_cycles(kMailCrcCycles);
  }
  core_.pwrite(slot + 1, line + 1, kMailBytes - 1,
               scc::MemPolicy::kUncached);
  core_.pstore<u8>(slot + kFlagOff, 1, scc::MemPolicy::kUncached);
  ++stats_.sent;
  MSVM_LOG_DEBUG("core %d: DEPOSIT type=%u p0=%llu -> %d", core_.id(),
                 mail.type, static_cast<unsigned long long>(mail.p0), dest);
  obs::EventBus& bus = core_.chip().bus();
  if (bus.enabled(obs::kCatMail)) {
    // p1 carries the requester rank on protocol mails; the packed word
    // lets the trace exporter reconstruct request/ACK flow chains.
    bus.publish(obs::Event{
        core_.now(), static_cast<u64>(dest),
        obs::pack_mail(mail.type, mail.arg16, static_cast<obs::u8>(mail.p1)),
        mail.p0, obs::EventKind::kMailSend, core_.id()});
  }
  if (use_ipi_) core_.raise_ipi(dest);
}

bool MailboxSystem::try_send(int dest, const Mail& mail) {
  const u64 slot = slot_paddr(dest, core_.id());
  // The flag check and the deposit must be atomic against our own
  // interrupt handlers: a handler interrupting between them could itself
  // deposit into this very slot (e.g. an ownership ACK), which the
  // resumed send would silently overwrite.
  core_.irq_disable();
  const u8 flag =
      core_.pload<u8>(slot + kFlagOff, scc::MemPolicy::kUncached);
  if (flag != 0) {
    core_.irq_enable();
    return false;
  }
  deposit(slot, mail, dest);
  core_.irq_enable();
  return true;
}

void MailboxSystem::send(int dest, const Mail& mail) {
  const u64 slot = slot_paddr(dest, core_.id());
  sim::BlockScope scope(core_.chip().scheduler().current(), "mbox.send",
                        static_cast<u64>(dest), mail.type);
  TimePs stall_t0 = 0;  // clock at the first full-slot observation
  u64 stall_spins = 0;
  // Wait for the destination slot to drain. Keep consuming our own
  // incoming traffic meanwhile: the peer may be blocked sending to *us*.
  for (;;) {
    // Check-and-claim atomically w.r.t. our own handlers (see try_send).
    core_.irq_disable();
    const u8 flag = core_.pload<u8>(slot + kFlagOff,
                                    scc::MemPolicy::kUncached);
    if (flag == 0) {
      deposit(slot, mail, dest);
      core_.irq_enable();
      if (stall_t0 != 0) stats_.send_stall_ps += core_.now() - stall_t0;
      return;
    }
    core_.irq_enable();
    // Fail fast on a dead destination: its inbound slot will never drain
    // again, so stalling here would hang until the watchdog. The mail is
    // dropped — exactly what the wire does to a dead receiver — and the
    // sender recovers through the protocol retransmission/recovery layer.
    // (A deposit into an *empty* dead slot above is harmless: the MPB is
    // just memory, and nobody will read it.)
    if (core_.chip().peer_presumed_dead(dest, core_.now())) {
      ++stats_.dead_drops;
      if (stall_t0 != 0) stats_.send_stall_ps += core_.now() - stall_t0;
      return;
    }
    ++stats_.send_stalls;
    if (stall_t0 == 0) stall_t0 = core_.now();
    if (core_.chip().watchdog().check(core_.now(), stall_t0, "mbox.send",
                                      core_.id())) {
      core_.chip().scheduler().block();  // parked until teardown
    }
    if (!use_ipi_) {
      poll_all();
    } else if (core_.in_interrupt() || core_.irqs_masked()) {
      // Nested interrupt delivery is masked while a handler runs. Drain
      // pending IPIs by hand, otherwise two cores replying to each other
      // from handler context would deadlock on full slots.
      scc::Gic& gic = core_.chip().gic();
      if (gic.has_pending(core_.id())) {
        const scc::IpiSourceSet sources = gic.take_pending(core_.id());
        sources.for_each([this](int src) { poll_from(src); });
      } else if (cfg_.sweep_period > 0 && ++stall_spins % 16 == 0) {
        // A deposit whose IPI was lost is invisible to the GIC drain,
        // and the timer-driven sweep cannot nest into handler context:
        // two handlers stalled sending ACKs to each other, both wake
        // IPIs dropped, would deadlock. When the sweep is configured
        // (the same recovery knob — off on clean runs), scan all slots
        // at a low rate from the stall loop itself.
        poll_all();
      }
    }
    // In IPI mode (outside handlers) incoming mail is consumed by the
    // interrupt handler, which the re-reads above let run at boundaries.
    core_.yield();
  }
}

int MailboxSystem::multicast(u64 dest_mask, const Mail& mail) {
  ++stats_.multicasts;
  int sent = 0;
  dest_mask &= ~(u64{1} << core_.id());  // never self: poll skips our slot
  const int n = core_.chip().num_cores();
  for (int dest = 0; dest < n && dest_mask != 0; ++dest, dest_mask >>= 1) {
    if (dest_mask & 1) {
      send(dest, mail);
      ++sent;
    }
  }
  assert(dest_mask == 0 && "multicast mask names a core beyond num_cores");
  return sent;
}

int MailboxSystem::multicast(const std::vector<int>& dests,
                             const Mail& mail) {
  ++stats_.multicasts;
  int sent = 0;
  for (const int dest : dests) {
    if (dest == core_.id()) continue;  // never self: poll skips our slot
    assert(dest >= 0 && dest < core_.chip().num_cores());
    send(dest, mail);
    ++sent;
  }
  return sent;
}

void MailboxSystem::set_handler(u8 type, Handler handler) {
  handlers_[type] = std::move(handler);
}

int MailboxSystem::poll_all() {
  int seen = 0;
  for (const int sender : participants_) {
    if (sender == core_.id()) continue;
    if (check_slot(sender)) ++seen;
  }
  return seen;
}

int MailboxSystem::poll_from(int sender) {
  if (sender == core_.id()) return 0;
  return check_slot(sender) ? 1 : 0;
}

bool MailboxSystem::check_slot(int sender) {
  ++stats_.slot_checks;
  core_.compute_cycles(kSlotCheckCycles);
  const u64 slot = slot_paddr(core_.id(), sender);
  // The flag read, payload read and flag clear must be atomic against
  // our own interrupt handlers: an IPI/timer handler landing mid-consume
  // would re-poll this very slot, find the flag still set, and dispatch
  // the same mail twice. Dispatch happens after unmasking so handler
  // code runs with normal interrupt delivery.
  core_.irq_disable();
  const u8 flag =
      core_.pload<u8>(slot + kFlagOff, scc::MemPolicy::kUncached);
  if (flag == 0) {
    core_.irq_enable();
    return false;
  }
  if (core_.chip().faults().enabled() &&
      core_.chip().faults().delay_flag()) {
    // Injected visibility delay: the flag byte is set but this check
    // pretends it is not — the mail stays deposited and a later check
    // (poll, sweep, or retransmission-triggered) will see it.
    core_.irq_enable();
    obs::EventBus& bus = core_.chip().bus();
    if (bus.enabled(obs::kCatChaos)) {
      bus.publish(obs::Event{
          core_.now(), static_cast<u64>(obs::InjectKind::kMailDelay), 0, 0,
          obs::EventKind::kFaultInject, core_.id()});
    }
    return false;
  }

  Mail mail;
  u8 line[kMailBytes];
  core_.pread(slot, line, kMailBytes, scc::MemPolicy::kUncached);
  if (core_.chip().faults().enabled()) {
    // Injected MPB corruption: one bit of the line as read — payload or
    // CRC, never the flag byte (a flipped flag is a lost/spurious
    // delivery, the omission fault domain).
    const int bit = core_.chip().faults().mail_flip_bit(
        core_.id(), (kMailBytes - 1) * 8);
    if (bit >= 0) {
      line[1 + static_cast<u32>(bit) / 8] ^=
          static_cast<u8>(1u << (static_cast<u32>(bit) % 8));
      obs::EventBus& cbus = core_.chip().bus();
      if (cbus.enabled(obs::kCatChaos)) {
        cbus.publish(obs::Event{
            core_.now(), static_cast<u64>(obs::InjectKind::kMailFlip),
            static_cast<u64>(bit), 0, obs::EventKind::kFaultInject,
            core_.id()});
      }
    }
  }
  if (integrity_) {
    core_.compute_cycles(kMailCrcCycles);
    u32 stored = 0;
    std::memcpy(&stored, line + kCrcOff, sizeof(stored));
    const u32 computed = sim::crc32c(line + kCrcSpanOff, kCrcSpanBytes);
    if (stored != computed) {
      // Corrupt mail: consume the slot — the sender must not stay
      // blocked on it — but never dispatch. Requests and ACKs are both
      // recovered by the seq/retransmit layer above; counting the drop
      // is what lets the campaign ledger reconcile every injected flip.
      core_.pstore<u8>(slot + kFlagOff, 0, scc::MemPolicy::kUncached);
      core_.irq_enable();
      ++stats_.corrupt_drops;
      MSVM_LOG_INFO("core %d: dropped corrupt mail from %d (crc %08x != %08x)",
                    core_.id(), sender, stored, computed);
      obs::EventBus& cbus = core_.chip().bus();
      if (cbus.enabled(obs::kCatIntegrity)) {
        cbus.publish(obs::Event{core_.now(), static_cast<u64>(sender),
                                obs::pack_mail(line[kTypeOff], 0, 0),
                                computed, obs::EventKind::kMailCorruptDrop,
                                core_.id()});
      }
      return true;
    }
  }
  mail.type = line[kTypeOff];
  std::memcpy(&mail.arg16, line + kArgOff, sizeof(mail.arg16));
  std::memcpy(&mail.p0, line + kP0Off, sizeof(mail.p0));
  std::memcpy(&mail.p1, line + kP1Off, sizeof(mail.p1));
  std::memcpy(&mail.p2, line + kP2Off, sizeof(mail.p2));
  mail.sender = sender;
  MSVM_LOG_DEBUG("core %d: CONSUME type=%u p0=%llu from %d", core_.id(),
                 mail.type, static_cast<unsigned long long>(mail.p0),
                 sender);
  // Consuming the mail: clear the flag so the sender may reuse the slot.
  core_.pstore<u8>(slot + kFlagOff, 0, scc::MemPolicy::kUncached);
  core_.irq_enable();
  ++stats_.received;
  obs::EventBus& bus = core_.chip().bus();
  if (bus.enabled(obs::kCatMail)) {
    bus.publish(obs::Event{
        core_.now(), static_cast<u64>(sender),
        obs::pack_mail(mail.type, mail.arg16, static_cast<obs::u8>(mail.p1)),
        mail.p0, obs::EventKind::kMailDeliver, core_.id()});
  }
  core_.compute_cycles(kMailSoftwareCycles);
  dispatch(mail);
  if (core_.chip().faults().enabled() &&
      core_.chip().faults().duplicate_mail()) {
    // Injected duplicate delivery: the same consumed mail is handed to
    // dispatch a second time, probing the receiver-side dedup.
    if (bus.enabled(obs::kCatChaos)) {
      bus.publish(obs::Event{
          core_.now(), static_cast<u64>(obs::InjectKind::kMailDup), 0, 0,
          obs::EventKind::kFaultInject, core_.id()});
    }
    dispatch(mail);
  }
  return true;
}

void MailboxSystem::dispatch(Mail mail) {
  if (!handlers_[mail.type]) {
    ++stats_.inbox_enqueued;
    inbox_.push_back(mail);
    return;
  }
  // Handlers may send replies, which may stall and drain more traffic,
  // dispatching nested mails. Under retransmission storms that mutual
  // recursion is unbounded (every retransmitted request served from
  // within the previous serve adds a stack level until the fiber's guard
  // page faults), so past a fixed depth the handler run is deferred: the
  // mail was already consumed (its slot flag cleared — that is what
  // unblocks the sender), only the handler body waits for the outermost
  // dispatcher to drain the queue iteratively. Clean runs never nest
  // anywhere near the cap, so the fast path is byte-for-byte the
  // historical recursive dispatch.
  if (dispatch_depth_ >= kMaxDispatchDepth) {
    ++stats_.dispatches_deferred;
    deferred_.push_back(mail);
    return;
  }
  ++dispatch_depth_;
  ++stats_.handler_dispatch;
  handlers_[mail.type](mail);
  --dispatch_depth_;
  while (dispatch_depth_ == 0 && !deferred_.empty()) {
    const Mail m = deferred_.front();
    deferred_.pop_front();
    ++dispatch_depth_;
    ++stats_.handler_dispatch;
    handlers_[m.type](m);
    --dispatch_depth_;
  }
}

std::optional<Mail> MailboxSystem::try_take(Predicate pred) {
  for (std::size_t i = 0; i < inbox_.size(); ++i) {
    if (pred(inbox_.at(i))) {
      const Mail m = inbox_.at(i);
      inbox_.erase_at(i);
      return m;
    }
  }
  return std::nullopt;
}

void MailboxSystem::enqueue_inbox(const Mail& mail) {
  ++stats_.inbox_enqueued;
  inbox_.push_back(mail);
}

std::optional<Mail> MailboxSystem::recv_loop(Predicate pred,
                                             TimePs deadline) {
  sim::BlockScope scope(core_.chip().scheduler().current(), "mbox.recv");
  const TimePs t0 = core_.now();
  u64 rounds = 0;
  for (;;) {
    if (auto m = try_take(pred)) {
      stats_.recv_wait_ps += core_.now() - t0;
      return m;
    }
    if (core_.now() >= deadline) {
      // Host-side bound only: a wait that succeeds before the deadline
      // never observes it and is cycle-identical to the unbounded wait.
      stats_.recv_wait_ps += core_.now() - t0;
      return std::nullopt;
    }
    if (++rounds % 5000 == 0) {
      MSVM_LOG_ERROR("core %d: recv_match starving (round %llu, inbox=%zu)",
                     core_.id(), static_cast<unsigned long long>(rounds),
                     inbox_.size());
    }
    if (core_.chip().watchdog().check(core_.now(), t0, "mbox.recv",
                                      core_.id())) {
      core_.chip().scheduler().block();  // parked until teardown
    }
    if (use_ipi_) {
      // Sleep until an interrupt (the IPI handler fills the inbox).
      kernel_.idle_once();
    } else {
      poll_all();
      // A short jittered pause between scans decouples this poll loop
      // from lock-step coupling with the peer (and keeps the host
      // scheduler out of per-iteration churn). The jitter (~90-150 core
      // cycles, well below one slot check) models the pipeline noise a
      // real poll loop has; without it the deterministic simulation
      // aliases poll phases against the sender.
      poll_jitter_ = poll_jitter_ * 1103515245u + 12345u;
      const u64 pause = 90 + (poll_jitter_ >> 16) % 64;
      core_.relax(pause * core_.chip().config().core_cycle_ps());
    }
  }
}

Mail MailboxSystem::recv_match(Predicate pred) {
  return *recv_loop(pred, kTimeNever);
}

std::optional<Mail> MailboxSystem::recv_match_until(Predicate pred,
                                                    TimePs deadline) {
  return recv_loop(pred, deadline);
}

}  // namespace msvm::mbox
