// On-die MPB space carving, shared by the mailbox system, the SVM
// scratchpad and the RCCE allocator.
//
// Paper, Section 5: "For each communication path between two cores a
// mailbox of one cache-line size is reserved at each local MPB. Thus, the
// mailbox system takes 48 * 32 Bytes = 1.5 kByte of MPB space per core
// ... RCCE provides a memory allocation scheme to manage the remaining
// 6.5 kByte". Section 6.3 additionally parks the first-touch scratchpad
// in on-die memory; we carve it out of the RCCE share.
//
// With a parameterized topology the carve is computed at runtime from the
// die's maximum core count (Layout::make); at the SCC's 48 cores it
// reproduces the historical constants below byte for byte. Chips past 48
// cores need a larger MPB (scc::min_mpb_bytes / configure_cores size it).
#pragma once

#include <cstdio>
#include <cstdlib>

#include "sim/types.hpp"

namespace msvm::mbox {

inline constexpr u32 kMailBytes = 32;  // one cache line per mailbox
inline constexpr u32 kMaxCores = 48;   // the physical SCC part

/// [0, 1536): mailbox slots, one per potential sender (48-core part).
inline constexpr u32 kMailboxRegionBytes = kMaxCores * kMailBytes;

/// [1536, 3584): SVM first-touch scratchpad (16-bit entries, Section 6.3).
inline constexpr u32 kScratchpadOffset = kMailboxRegionBytes;
inline constexpr u32 kScratchpadBytes = 2048;

/// [3584, 8192): RCCE-managed space (flags + communication buffers).
inline constexpr u32 kRcceOffset = kScratchpadOffset + kScratchpadBytes;

/// Offset of the mailbox written by `sender` within the receiver's MPB.
constexpr u32 mail_slot_offset(int sender) {
  return static_cast<u32>(sender) * kMailBytes;
}

/// Runtime MPB carve for a die of `max_cores` potential senders. All
/// region consumers (mailbox slots, SVM scratchpad + barrier, RCCE flags
/// and comm buffer) derive their offsets from one Layout so the regions
/// can never overlap. Equal to the constants above at 48 cores.
struct Layout {
  int max_cores = kMaxCores;
  u32 mpb_bytes = 0;

  u32 mailbox_region_bytes = kMailboxRegionBytes;
  u32 scratchpad_offset = kScratchpadOffset;  // == mailbox_region_bytes
  u32 scratchpad_bytes = kScratchpadBytes;
  u32 rcce_offset = kRcceOffset;

  /// Dissemination-barrier geometry inside the scratchpad header (see
  /// svm.cpp): arrive bytes (one per core) + 1 release byte + 2 bytes per
  /// round, rounded up to a cache line. 64 bytes at 48 cores.
  int diss_rounds = 6;
  u32 barrier_header_bytes = 64;

  static int ceil_log2(int n) {
    int r = 0;
    while ((1 << r) < n) ++r;
    return r;
  }

  static Layout make(int max_cores, u32 mpb_bytes) {
    Layout l;
    l.max_cores = max_cores;
    l.mpb_bytes = mpb_bytes;
    l.mailbox_region_bytes = static_cast<u32>(max_cores) * kMailBytes;
    l.scratchpad_offset = l.mailbox_region_bytes;
    l.scratchpad_bytes = kScratchpadBytes;
    l.rcce_offset = l.scratchpad_offset + l.scratchpad_bytes;
    l.diss_rounds = ceil_log2(max_cores) > 6 ? ceil_log2(max_cores) : 6;
    const u32 header = static_cast<u32>(max_cores) + 1 +
                       2 * static_cast<u32>(l.diss_rounds);
    l.barrier_header_bytes = (header + 63) / 64 * 64;
    // RCCE share: 4 KiB comm buffer + 3 flag bytes per core + 1 release.
    const u32 need = l.rcce_offset + 4096 +
                     3 * static_cast<u32>(max_cores) + 1;
    if (mpb_bytes != 0 && mpb_bytes < need) {
      std::fprintf(stderr,
                   "msvm::mbox::Layout: mpb_bytes=%u too small for a "
                   "%d-core die (need %u; see scc::configure_cores)\n",
                   mpb_bytes, max_cores, need);
      std::abort();
    }
    return l;
  }
};

}  // namespace msvm::mbox
