// On-die MPB space carving, shared by the mailbox system, the SVM
// scratchpad and the RCCE allocator.
//
// Paper, Section 5: "For each communication path between two cores a
// mailbox of one cache-line size is reserved at each local MPB. Thus, the
// mailbox system takes 48 * 32 Bytes = 1.5 kByte of MPB space per core
// ... RCCE provides a memory allocation scheme to manage the remaining
// 6.5 kByte". Section 6.3 additionally parks the first-touch scratchpad
// in on-die memory; we carve it out of the RCCE share.
#pragma once

#include "sim/types.hpp"

namespace msvm::mbox {

inline constexpr u32 kMailBytes = 32;  // one cache line per mailbox
inline constexpr u32 kMaxCores = 48;

/// [0, 1536): mailbox slots, one per potential sender.
inline constexpr u32 kMailboxRegionBytes = kMaxCores * kMailBytes;

/// [1536, 3584): SVM first-touch scratchpad (16-bit entries, Section 6.3).
inline constexpr u32 kScratchpadOffset = kMailboxRegionBytes;
inline constexpr u32 kScratchpadBytes = 2048;

/// [3584, 8192): RCCE-managed space (flags + communication buffers).
inline constexpr u32 kRcceOffset = kScratchpadOffset + kScratchpadBytes;

/// Offset of the mailbox written by `sender` within the receiver's MPB.
constexpr u32 mail_slot_offset(int sender) {
  return static_cast<u32>(sender) * kMailBytes;
}

}  // namespace msvm::mbox
