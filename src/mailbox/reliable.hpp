// Reliable request/ACK delivery over the unreliable mailbox: the
// sequence-tag generator, the bounded receiver-side ACK dedup ring, and
// the idempotent try_send retransmission — extracted here because the
// SVM runtime and the KV serving tier each grew their own copy, and the
// integrity layer's corrupt-drop path (a CRC-failed mail is consumed
// but never dispatched) must be recovered identically in both: the
// dropped mail times out at the originator and is retransmitted under
// the same identity, and the dedup side absorbs the double delivery
// when the original was merely delayed rather than corrupt.
//
// AckRing remembers the last 64 ACK identity keys (sender, type, page,
// seq packed by ack_key). A key already present is a duplicate — a
// retransmitted or fault-duplicated ACK that must not be counted twice
// against a multicast wait. The ring is deliberately small: an identity
// only needs to be remembered for the window in which its duplicate can
// still arrive (one retransmission timeout), and 64 outstanding ACK
// identities comfortably cover one core's in-flight protocol state.
// Evicting a live entry is therefore harmless for correctness (a
// duplicate of an evicted ACK is re-admitted and retires an already-
// satisfied wait, which the wait loops tolerate) but worth counting:
// a hot `acks_evicted` tally means the window assumption is under
// pressure and the ring should grow.
//
// Sequence wraparound: seq numbers are u16 and 0 is reserved (the
// unbounded-path placeholder). When the counter wraps, keys remembered
// from the previous sequence epoch could collide with fresh identities
// and silently swallow a legitimate ACK — so the ring is cleared at the
// wrap point, trading at worst one redundant retransmission for the
// collision hazard.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "mailbox/mailbox.hpp"

namespace msvm::mbox {

class AckRing {
 public:
  using u16 = std::uint16_t;
  using u64 = std::uint64_t;

  static constexpr std::size_t kEntries = 64;

  enum class Admit : std::uint8_t {
    kDuplicate,      // key already remembered: drop the ACK
    kFresh,          // new key, stored in a free slot
    kFreshEvicting,  // new key, displaced a live entry (capacity hit)
  };

  /// Stamps the next request sequence number (1..65535; 0 is skipped).
  /// Clears the ring when the counter wraps — see the header comment.
  u16 next_seq() {
    if (++seq_ == 0) {
      seen_.fill(0);
      next_slot_ = 0;
      seq_ = 1;
      ++wraps_;
    }
    return seq_;
  }

  /// Admits an ACK identity key. Key 0 is never remembered (it is the
  /// cleared-slot sentinel), so callers must pack a non-zero key.
  Admit admit(u64 key) {
    for (const u64 seen : seen_) {
      if (seen == key) return Admit::kDuplicate;
    }
    const std::size_t slot = next_slot_++ % seen_.size();
    const Admit verdict =
        seen_[slot] != 0 ? Admit::kFreshEvicting : Admit::kFresh;
    seen_[slot] = key;
    return verdict;
  }

  u16 seq() const { return seq_; }
  u64 wraps() const { return wraps_; }
  /// True when `key` is currently remembered (test introspection).
  bool remembers(u64 key) const {
    for (const u64 seen : seen_) {
      if (seen == key) return true;
    }
    return false;
  }

 private:
  std::array<u64, kEntries> seen_{};
  std::size_t next_slot_ = 0;
  u16 seq_ = 0;
  u64 wraps_ = 0;
};

/// SplitMix64 finaliser: mixes one delivered ACK's identity (sender,
/// type, page/key, seq) into a dedup-ring key. Never returns 0 (the
/// ring's empty-slot sentinel).
inline AckRing::u64 ack_key(const Mail& m) {
  u64 x = (static_cast<u64>(static_cast<u32>(m.sender)) << 32) ^
          (static_cast<u64>(m.type) << 24) ^ (m.p0 << 16) ^ m.arg16;
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;  // 0 means "empty ring entry"
}

/// One core's reliable-delivery endpoint: identity stamping on the
/// request side, dedup on the ACK side, idempotent retransmission in
/// between. Holds no per-request state — the callers own their pending
/// sets (the SVM runtime's PendingRequest, the serving tier's Slot
/// table) because *what* to resend is protocol-specific; this class
/// owns the parts that were duplicated.
class ReliableChannel {
 public:
  explicit ReliableChannel(MailboxSystem& mbox) : mbox_(mbox) {}

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// 16-bit protocol sequence numbers (wraps through the dedup ring —
  /// the SVM runtime's request tagging).
  AckRing::u16 next_seq() { return ring_.next_seq(); }

  /// 64-bit request ids for high-volume tiers that must never wrap
  /// within a run: monotonic from 1, OR-ed under the caller's tag bits
  /// (the serving tier uses rank << 32). Peek/advance are split so a
  /// send that finds the destination slot full does not burn an id —
  /// the retry goes out under the same identity.
  u64 reqid(u64 tag) const { return tag | next_reqid_; }
  void advance_reqid() { ++next_reqid_; }

  /// ACK-side dedup; mirrors AckRing::admit and tallies the outcome.
  AckRing::Admit admit(u64 key) {
    const AckRing::Admit verdict = ring_.admit(key);
    if (verdict == AckRing::Admit::kDuplicate) ++dup_acks_dropped_;
    if (verdict == AckRing::Admit::kFreshEvicting) ++acks_evicted_;
    return verdict;
  }

  /// Idempotent retransmission: try_send only — a still-full slot means
  /// the original mail is still deliverable, and a blocking send here
  /// could clobber unrelated traffic or deadlock a serve path. Returns
  /// whether the mail was deposited (and counted).
  bool retransmit(int dest, const Mail& mail) {
    if (!mbox_.try_send(dest, mail)) return false;
    ++retransmits_;
    return true;
  }

  const AckRing& ring() const { return ring_; }
  u64 retransmits() const { return retransmits_; }
  u64 dup_acks_dropped() const { return dup_acks_dropped_; }
  u64 acks_evicted() const { return acks_evicted_; }

 private:
  MailboxSystem& mbox_;
  AckRing ring_;
  u64 next_reqid_ = 1;
  u64 retransmits_ = 0;
  u64 dup_acks_dropped_ = 0;
  u64 acks_evicted_ = 0;
};

}  // namespace msvm::mbox
