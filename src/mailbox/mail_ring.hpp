// MailRing — the mailbox system's software-queue arena.
//
// The inbox and the deferred-dispatch queue used to be std::deque<Mail>:
// correct, but every growth step allocates a fresh block and the deque's
// segmented layout costs an extra indirection per access — visible on the
// SVM fault path, where every protocol wait drains mails through these
// queues. MailRing stores mails in one flat power-of-two slab indexed by
// monotonically increasing head/tail counters. Once warmed up it never
// allocates again; the common case (queue depth 0–2) touches a single
// cache line.
//
// Order-preserving middle erase is provided for predicate-based takes
// (recv_match consumes the first matching mail, not necessarily the
// oldest one); mails behind the erased slot shift forward by one, which
// for the tiny depths seen in practice is cheaper than any bookkeeping
// that would avoid it.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace msvm::mbox {

template <typename T>
class MailRing {
 public:
  bool empty() const { return head_ == tail_; }
  std::size_t size() const { return tail_ - head_; }

  /// i-th queued element, 0 = oldest.
  T& at(std::size_t i) {
    assert(i < size());
    return slab_[(head_ + i) & mask_];
  }
  const T& at(std::size_t i) const {
    assert(i < size());
    return slab_[(head_ + i) & mask_];
  }

  T& front() { return at(0); }

  void push_back(const T& v) {
    if (size() == slab_.size()) grow();
    slab_[tail_++ & mask_] = v;
  }

  void pop_front() {
    assert(!empty());
    ++head_;
  }

  /// Removes the i-th element, preserving the order of the rest.
  void erase_at(std::size_t i) {
    assert(i < size());
    for (std::size_t k = i; k + 1 < size(); ++k) {
      slab_[(head_ + k) & mask_] = slab_[(head_ + k + 1) & mask_];
    }
    --tail_;
  }

 private:
  void grow() {
    const std::size_t n = size();
    const std::size_t cap = slab_.empty() ? kInitialCapacity : 2 * n;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < n; ++i) next[i] = at(i);
    slab_.swap(next);
    mask_ = cap - 1;
    head_ = 0;
    tail_ = n;
  }

  static constexpr std::size_t kInitialCapacity = 16;

  std::vector<T> slab_;
  std::size_t mask_ = 0;   // slab_.size() - 1 (power of two)
  std::size_t head_ = 0;   // monotonically increasing; index via & mask_
  std::size_t tail_ = 0;
};

}  // namespace msvm::mbox
