// SvmDomain — chip-wide SVM bookkeeping: the simulated-memory layout of
// the owner vector, scratchpad, directory and per-MC frame allocators,
// plus the host-side collective/allocation records. Pure layout and
// bookkeeping; no protocol logic lives here.
#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "sccsim/addrmap.hpp"
#include "svm/svm.hpp"

namespace msvm::svm {

namespace {

using proto::kFrameMask;

[[noreturn]] void panic(const char* msg) {
  std::fprintf(stderr, "msvm::svm panic: %s\n", msg);
  std::abort();
}

u64 round_up(u64 v, u64 to) { return (v + to - 1) / to * to; }

}  // namespace

SvmDomain::SvmDomain(scc::Chip& chip, SvmConfig cfg,
                     std::vector<int> members, int slot, int num_slots)
    : chip_(chip),
      cfg_(cfg),
      members_(std::move(members)),
      layout_(mbox::Layout::make(chip.topology().max_cores(),
                                 chip.config().mpb_bytes)),
      free_frames_(
          static_cast<std::size_t>(chip.topology().num_mem_controllers())),
      next_alloc_seq_(members_.size(), 0) {
  assert(num_slots >= 1 && slot >= 0 && slot < num_slots);
  const scc::Topology& topo = chip_.topology();
  // Directory encoding: the historical single word carries the sharer
  // bits below the state bit, which caps it at 63 cores; wider chips
  // spill into a flags word plus ceil(n/64) sharer words.
  dir_words_ = topo.max_cores() > 63 ? (topo.max_cores() + 63) / 64 : 0;
  const std::size_t nlocks =
      static_cast<std::size_t>(std::max(64, topo.max_cores()));
  debug_lock_holder_.assign(nlocks, -1);
  debug_lock_page_.assign(nlocks, 0);
  const scc::ChipConfig& ccfg = chip_.config();
  const u64 page = ccfg.page_bytes;

  entries_per_mpb_ =
      (layout_.scratchpad_bytes - layout_.barrier_header_bytes) / 2;
  page_capacity_total_ =
      static_cast<u64>(ccfg.num_cores) * entries_per_mpb_;
  // Wide chips: the scratchpad-addressable capacity grows with the core
  // count, but the DRAM metadata below is sized off it — at 1024 cores
  // the uncapped owner vector plus directory would outgrow shared DRAM
  // itself. Past the SCC die, cap capacity at 4x the physical frame
  // count (overcommit for sparse allocations); at <= 48 cores the
  // historical layout is kept bit for bit.
  if (topo.max_cores() > 48) {
    page_capacity_total_ =
        std::min(page_capacity_total_, 4 * (ccfg.shared_dram_bytes / page));
  }
  // Coherency-domain partitioning: each slot owns a disjoint share of
  // the page-index space (and therefore of the scratchpad/owner-vector
  // entries and the virtual address range).
  svm_page_capacity_ = page_capacity_total_ / static_cast<u64>(num_slots);
  page_index_base_ = static_cast<u64>(slot) * svm_page_capacity_;

  // Metadata at the tail of shared DRAM: the per-MC frame counters
  // (8 bytes each, padded to 64 — exactly 64 bytes on the four-MC SCC),
  // then the owner vector, then the off-die scratchpad area (always
  // reserved so the ablation flag does not change frame numbers), then —
  // only in read-replication mode, so that flag-off runs keep the
  // paper's exact layout — one directory entry per page. Sized for the
  // whole chip so every slot sees the same layout.
  mc_area_bytes_ =
      round_up(8 * static_cast<u64>(topo.num_mem_controllers()), 64);
  const u64 meta_bytes =
      mc_area_bytes_ + 4 * page_capacity_total_ +
      (cfg_.read_replication ? dir_entry_stride() * page_capacity_total_
                             : 0);
  if (round_up(meta_bytes, page) + page >= ccfg.shared_dram_bytes) {
    panic("shared DRAM too small for SVM metadata");
  }
  meta_base_ = ccfg.shared_dram_bytes - round_up(meta_bytes, page);

  // Seed the per-MC frame allocator counters in *simulated* memory (the
  // kernel would write these at boot). Slot 0 does it; later slots must
  // not reset the chip-level allocators.
  if (slot == 0) {
    for (int mc = 0; mc < topo.num_mem_controllers(); ++mc) {
      const auto [lo, hi] = frame_range_of_mc(mc);
      (void)hi;
      const u64 v = lo;
      chip_.memory().write(mc_counter_paddr(mc), &v, sizeof(v));
    }
  }

  // Integrity layer storage exists only when armed: a flag-off run must
  // not even size the vectors (byte-identical baselines).
  if (chip_.faults().plan().integrity_armed()) {
    seals.resize(svm_page_capacity_);
  }
}

u64 SvmDomain::vbase() const {
  return scc::kSvmVBase + page_index_base_ * chip_.config().page_bytes;
}

std::pair<u16, u16> SvmDomain::frame_range_of_mc(int mc) const {
  const scc::ChipConfig& ccfg = chip_.config();
  const u64 page = ccfg.page_bytes;
  const u64 quarter = ccfg.shared_dram_bytes /
                      static_cast<u64>(chip_.topology().num_mem_controllers());
  const u64 frames_limit = meta_base_ / page;  // metadata is off-limits
  u64 lo = static_cast<u64>(mc) * quarter / page;
  u64 hi = (static_cast<u64>(mc) + 1) * quarter / page;
  if (lo == 0) lo = 1;  // frame 0 is the "unallocated" sentinel
  hi = std::min(hi, frames_limit);
  lo = std::min(lo, hi);
  if (hi > kFrameMask) panic("shared DRAM exceeds 15-bit frame space");
  return {static_cast<u16>(lo), static_cast<u16>(hi)};
}

u64 SvmDomain::owner_entry_paddr(u64 page_idx) const {
  assert(page_idx >= page_index_base_ &&
         page_idx < page_index_base_ + svm_page_capacity_);
  return scc::kSharedBase + meta_base_ + mc_area_bytes_ + 2 * page_idx;
}

u64 SvmDomain::scratchpad_entry_paddr(u64 page_idx) const {
  assert(page_idx >= page_index_base_ &&
         page_idx < page_index_base_ + svm_page_capacity_);
  if (cfg_.scratchpad_offdie) {
    return scc::kSharedBase + meta_base_ + mc_area_bytes_ +
           2 * svm_page_capacity_ + 2 * page_idx;
  }
  const int core = static_cast<int>(page_idx / entries_per_mpb_);
  const u32 off = static_cast<u32>(page_idx % entries_per_mpb_) * 2;
  return chip_.map().mpb_base(core) + entries_off() + off;
}

u64 SvmDomain::sharer_entry_paddr(u64 page_idx) const {
  assert(cfg_.read_replication &&
         "directory sharer words exist only in read-replication mode");
  assert(page_idx >= page_index_base_ &&
         page_idx < page_index_base_ + svm_page_capacity_);
  return scc::kSharedBase + meta_base_ + mc_area_bytes_ +
         4 * page_capacity_total_ + dir_entry_stride() * page_idx;
}

u64 SvmDomain::total_frames() const {
  return meta_base_ / chip_.config().page_bytes;
}

u64 SvmDomain::mc_counter_paddr(int mc) const {
  return scc::kSharedBase + meta_base_ + 8 * static_cast<u64>(mc);
}

u64 SvmDomain::frame_paddr(u16 frame_no) const {
  return scc::kSharedBase +
         static_cast<u64>(frame_no) * chip_.config().page_bytes;
}

// The TAS file (one register per core the die provides) is partitioned
// statically: scratchpad stripes and transfer locks share the lower
// half, application locks take the upper half. SVM fault handling can
// therefore never self-deadlock on a register aliased with an
// application lock the faulting code holds.
int SvmDomain::scratchpad_lock_reg(u64 page_idx) const {
  const u32 half = static_cast<u32>(chip_.topology().max_cores()) / 2;
  const u32 stripes =
      std::max(1u, std::min(cfg_.scratchpad_lock_stripes, half));
  return static_cast<int>(page_idx % stripes);
}

int SvmDomain::transfer_lock_reg(u64 page_idx) const {
  // Shares the lower half with the scratchpad stripes; the two are never
  // held simultaneously, so aliasing only costs contention, not deadlock.
  return static_cast<int>(
      page_idx % static_cast<u64>(chip_.topology().max_cores() / 2));
}

int SvmDomain::app_lock_reg(int lock_id) const {
  const int half = chip_.topology().max_cores() / 2;
  return half + lock_id % half;
}

void SvmDomain::free_frame(int mc, u16 frame_no) {
  free_frames_[static_cast<std::size_t>(mc)].push_back(frame_no);
}

u16 SvmDomain::take_free_frame(int mc) {
  auto& list = free_frames_[static_cast<std::size_t>(mc)];
  if (list.empty()) return 0;
  const u16 f = list.back();
  list.pop_back();
  return f;
}

u64 SvmDomain::register_alloc(int rank, u64 bytes) {
  const u64 page = chip_.config().page_bytes;
  const u64 seq = next_alloc_seq_[static_cast<std::size_t>(rank)]++;
  if (seq == allocs_.size()) {
    // First member to reach this collective call defines the region.
    const u64 prev_end =
        allocs_.empty()
            ? vbase()
            : allocs_.back().base +
                  round_up(allocs_.back().bytes, page);
    if ((prev_end - vbase()) / page + round_up(bytes, page) / page >
        svm_page_capacity_) {
      panic("svm_alloc exceeds scratchpad capacity");
    }
    allocs_.push_back(AllocRecord{bytes, prev_end, 0});
  }
  AllocRecord& rec = allocs_.at(seq);
  if (rec.bytes != bytes) {
    panic("svm_alloc called with mismatched sizes across cores");
  }
  ++rec.seen;
  return rec.base;
}

}  // namespace msvm::svm
