// SvmDomain — chip-wide SVM bookkeeping: the simulated-memory layout of
// the owner vector, scratchpad, directory and per-MC frame allocators,
// plus the host-side collective/allocation records. Pure layout and
// bookkeeping; no protocol logic lives here.
#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "sccsim/addrmap.hpp"
#include "svm/svm.hpp"

namespace msvm::svm {

namespace {

using proto::kFrameMask;

[[noreturn]] void panic(const char* msg) {
  std::fprintf(stderr, "msvm::svm panic: %s\n", msg);
  std::abort();
}

u64 round_up(u64 v, u64 to) { return (v + to - 1) / to * to; }

}  // namespace

SvmDomain::SvmDomain(scc::Chip& chip, SvmConfig cfg,
                     std::vector<int> members, int slot, int num_slots)
    : chip_(chip),
      cfg_(cfg),
      members_(std::move(members)),
      free_frames_(scc::Mesh::kNumMemControllers),
      next_alloc_seq_(members_.size(), 0) {
  assert(num_slots >= 1 && slot >= 0 && slot < num_slots);
  debug_lock_holder_.assign(64, -1);
  debug_lock_page_.assign(64, 0);
  const scc::ChipConfig& ccfg = chip_.config();
  const u64 page = ccfg.page_bytes;

  entries_per_mpb_ = (mbox::kScratchpadBytes - 64) / 2;
  const u64 total_capacity =
      static_cast<u64>(ccfg.num_cores) * entries_per_mpb_;
  // Coherency-domain partitioning: each slot owns a disjoint share of
  // the page-index space (and therefore of the scratchpad/owner-vector
  // entries and the virtual address range).
  svm_page_capacity_ = total_capacity / static_cast<u64>(num_slots);
  page_index_base_ = static_cast<u64>(slot) * svm_page_capacity_;

  // Metadata at the tail of shared DRAM: 64 bytes of per-MC frame
  // counters, then the owner vector, then the off-die scratchpad area
  // (always reserved so the ablation flag does not change frame
  // numbers), then — only in read-replication mode, so that flag-off
  // runs keep the paper's exact layout — one 8-byte directory sharer
  // word per page. Sized for the whole chip so every slot sees the same
  // layout.
  const u64 meta_bytes =
      64 + 4 * total_capacity +
      (cfg_.read_replication ? 8 * total_capacity : 0);
  if (round_up(meta_bytes, page) + page >= ccfg.shared_dram_bytes) {
    panic("shared DRAM too small for SVM metadata");
  }
  meta_base_ = ccfg.shared_dram_bytes - round_up(meta_bytes, page);

  // Seed the per-MC frame allocator counters in *simulated* memory (the
  // kernel would write these at boot). Slot 0 does it; later slots must
  // not reset the chip-level allocators.
  if (slot == 0) {
    for (int mc = 0; mc < scc::Mesh::kNumMemControllers; ++mc) {
      const auto [lo, hi] = frame_range_of_mc(mc);
      (void)hi;
      const u64 v = lo;
      chip_.memory().write(mc_counter_paddr(mc), &v, sizeof(v));
    }
  }
}

u64 SvmDomain::vbase() const {
  return scc::kSvmVBase + page_index_base_ * chip_.config().page_bytes;
}

std::pair<u16, u16> SvmDomain::frame_range_of_mc(int mc) const {
  const scc::ChipConfig& ccfg = chip_.config();
  const u64 page = ccfg.page_bytes;
  const u64 quarter = ccfg.shared_dram_bytes / scc::Mesh::kNumMemControllers;
  const u64 frames_limit = meta_base_ / page;  // metadata is off-limits
  u64 lo = static_cast<u64>(mc) * quarter / page;
  u64 hi = (static_cast<u64>(mc) + 1) * quarter / page;
  if (lo == 0) lo = 1;  // frame 0 is the "unallocated" sentinel
  hi = std::min(hi, frames_limit);
  lo = std::min(lo, hi);
  if (hi > kFrameMask) panic("shared DRAM exceeds 15-bit frame space");
  return {static_cast<u16>(lo), static_cast<u16>(hi)};
}

u64 SvmDomain::owner_entry_paddr(u64 page_idx) const {
  assert(page_idx >= page_index_base_ &&
         page_idx < page_index_base_ + svm_page_capacity_);
  return scc::kSharedBase + meta_base_ + 64 + 2 * page_idx;
}

u64 SvmDomain::scratchpad_entry_paddr(u64 page_idx) const {
  assert(page_idx >= page_index_base_ &&
         page_idx < page_index_base_ + svm_page_capacity_);
  if (cfg_.scratchpad_offdie) {
    return scc::kSharedBase + meta_base_ + 64 + 2 * svm_page_capacity_ +
           2 * page_idx;
  }
  const int core = static_cast<int>(page_idx / entries_per_mpb_);
  const u32 off = static_cast<u32>(page_idx % entries_per_mpb_) * 2;
  return chip_.map().mpb_base(core) + kEntriesOff + off;
}

u64 SvmDomain::sharer_entry_paddr(u64 page_idx) const {
  assert(cfg_.read_replication &&
         "directory sharer words exist only in read-replication mode");
  assert(page_idx >= page_index_base_ &&
         page_idx < page_index_base_ + svm_page_capacity_);
  const u64 total_capacity =
      static_cast<u64>(chip_.config().num_cores) * entries_per_mpb_;
  return scc::kSharedBase + meta_base_ + 64 + 4 * total_capacity +
         8 * page_idx;
}

u64 SvmDomain::mc_counter_paddr(int mc) const {
  return scc::kSharedBase + meta_base_ + 8 * static_cast<u64>(mc);
}

u64 SvmDomain::frame_paddr(u16 frame_no) const {
  return scc::kSharedBase +
         static_cast<u64>(frame_no) * chip_.config().page_bytes;
}

// The 48-register TAS file is partitioned statically: scratchpad stripes
// and transfer locks share the lower half, application locks take the
// upper half. SVM fault handling can therefore never self-deadlock on a
// register aliased with an application lock the faulting code holds.
int SvmDomain::scratchpad_lock_reg(u64 page_idx) const {
  const u32 half = scc::Mesh::kMaxCores / 2;
  const u32 stripes =
      std::max(1u, std::min(cfg_.scratchpad_lock_stripes, half));
  return static_cast<int>(page_idx % stripes);
}

int SvmDomain::transfer_lock_reg(u64 page_idx) const {
  // Shares the lower half with the scratchpad stripes; the two are never
  // held simultaneously, so aliasing only costs contention, not deadlock.
  return static_cast<int>(page_idx % (scc::Mesh::kMaxCores / 2));
}

int SvmDomain::app_lock_reg(int lock_id) const {
  constexpr int kHalf = scc::Mesh::kMaxCores / 2;
  return kHalf + lock_id % kHalf;
}

void SvmDomain::free_frame(int mc, u16 frame_no) {
  free_frames_[static_cast<std::size_t>(mc)].push_back(frame_no);
}

u16 SvmDomain::take_free_frame(int mc) {
  auto& list = free_frames_[static_cast<std::size_t>(mc)];
  if (list.empty()) return 0;
  const u16 f = list.back();
  list.pop_back();
  return f;
}

u64 SvmDomain::register_alloc(int rank, u64 bytes) {
  const u64 page = chip_.config().page_bytes;
  const u64 seq = next_alloc_seq_[static_cast<std::size_t>(rank)]++;
  if (seq == allocs_.size()) {
    // First member to reach this collective call defines the region.
    const u64 prev_end =
        allocs_.empty()
            ? vbase()
            : allocs_.back().base +
                  round_up(allocs_.back().bytes, page);
    if ((prev_end - vbase()) / page + round_up(bytes, page) / page >
        svm_page_capacity_) {
      panic("svm_alloc exceeds scratchpad capacity");
    }
    allocs_.push_back(AllocRecord{bytes, prev_end, 0});
  }
  AllocRecord& rec = allocs_.at(seq);
  if (rec.bytes != bytes) {
    panic("svm_alloc called with mismatched sizes across cores");
  }
  rec.seen_mask |= u64{1} << rank;
  return rec.base;
}

}  // namespace msvm::svm
