// SharerSet — a width-parameterized set of core ids, the value type the
// read-replication directory speaks once chips scale past the physical
// SCC. For widths up to 64 cores the set is a single inline word (the
// historical u64 sharer bitmask); wider chips spill into a word vector.
// The width is fixed at construction (it is a property of the directory
// encoding, not of the set's population).
//
// Protocol layer: no sccsim/sim/mailbox/kernel includes (CI-enforced).
#pragma once

#include <cassert>
#include <vector>

#include "svm/protocol/types.hpp"

namespace msvm::svm::proto {

class SharerSet {
 public:
  SharerSet() : SharerSet(64) {}

  explicit SharerSet(int width) : width_(width) {
    assert(width >= 1);
    if (width > 64) {
      spill_.assign(static_cast<std::size_t>(num_words()), 0);
    }
  }

  int width() const { return width_; }
  int num_words() const { return (width_ + 63) / 64; }

  void set(int id) {
    if (id < 0 || id >= width_) return;
    word_ref(id / 64) |= u64{1} << (id % 64);
  }

  void clear(int id) {
    if (id < 0 || id >= width_) return;
    word_ref(id / 64) &= ~(u64{1} << (id % 64));
  }

  bool test(int id) const {
    if (id < 0 || id >= width_) return false;
    return (word(id / 64) >> (id % 64)) & 1;
  }

  bool any() const {
    for (int w = 0; w < num_words(); ++w) {
      if (word(w) != 0) return true;
    }
    return false;
  }

  bool none() const { return !any(); }

  int count() const {
    int n = 0;
    for (int w = 0; w < num_words(); ++w) {
      n += __builtin_popcountll(word(w));
    }
    return n;
  }

  void reset() {
    inline_ = 0;
    for (auto& w : spill_) w = 0;
  }

  /// Raw word access for (de)serialisation by MetaStore implementations.
  u64 word(int i) const {
    assert(i >= 0 && i < num_words());
    return width_ <= 64 ? inline_ : spill_[static_cast<std::size_t>(i)];
  }

  void set_word(int i, u64 v) { word_ref(i) = v; }

  /// Calls `fn(core_id)` for every member, in ascending order.
  template <typename F>
  void for_each(F&& fn) const {
    for (int w = 0; w < num_words(); ++w) {
      u64 bits = word(w);
      while (bits != 0) {
        const int bit = __builtin_ctzll(bits);
        fn(w * 64 + bit);
        bits &= bits - 1;
      }
    }
  }

 private:
  u64& word_ref(int i) {
    assert(i >= 0 && i < num_words());
    return width_ <= 64 ? inline_ : spill_[static_cast<std::size_t>(i)];
  }

  int width_;
  u64 inline_ = 0;         // storage for width_ <= 64
  std::vector<u64> spill_; // storage above (empty otherwise)
};

}  // namespace msvm::svm::proto
