// ProtocolEnv — the seam between the coherence-protocol core and the
// world. Policies (policy.hpp) are written as linear, blocking protocol
// code, but every effect — a metadata word, a message, a page-table or
// cache action, a lock, a modelled cost — goes through this interface.
//
// Two implementations exist:
//   * SvmRuntime (svm/svm_runtime.hpp): binds the env to the simulated
//     SCC — uncached ploads/pstores for metadata, mailbox mails for
//     messages, CL1INVMB/WCB/page-table callbacks, TAS transfer locks.
//   * the deterministic protocol harness (tests/svm/protocol_harness.hpp):
//     scripted message queues and plain arrays, so protocol interleavings
//     become table-driven unit tests with no fibers and no chip.
#pragma once

#include "svm/protocol/meta.hpp"
#include "svm/protocol/types.hpp"

namespace msvm::svm::proto {

class ProtocolEnv : public TraceSink {
 public:
  ~ProtocolEnv() override = default;

  /// This core's chip-wide id (the id protocol metadata speaks).
  virtual int self() const = 0;

  /// Typed metadata accessor (owner vector / scratchpad / directory).
  virtual MetaWord& meta() = 0;

  /// Per-core protocol statistics to update.
  virtual SvmStats& stats() = 0;

  /// Protocol-event sink (inherited from TraceSink): the binding layer
  /// forwards records to the observability event bus (which keeps the
  /// per-core ring dumped on errors), the harness to a plain log.
  ///   virtual void trace(const TraceEvent& e) = 0;

  // ---- transport ----

  /// Sends a protocol message to `dest` (blocking until deposited).
  virtual void send(int dest, const Msg& m) = 0;

  /// Sends `m` to every core in `dests`, excluding this core. Returns
  /// the number of messages sent. Set-typed (not a u64 mask) so the
  /// invalidation fan-out works on directories wider than 64 cores.
  virtual int multicast(const SharerSet& dests, const Msg& m) = 0;

  /// Blocks until a message of `type` for `page` arrives, draining and
  /// dispatching unrelated protocol traffic meanwhile.
  virtual Msg wait_match(MsgType type, u64 page) = 0;

  /// One cooperative scheduling step (the owner-vector polling fallback
  /// spins on metadata and must let other cores run in between).
  virtual void yield() = 0;

  // ---- local page / cache actions ----

  /// Flushes the write-combine buffer (release semantics).
  virtual void flush_wcb() = 0;

  /// Invalidates the MPBT-tagged L1 lines (acquire semantics).
  virtual void cl1invmb() = 0;

  /// Installs a mapping for `page` backed by `frame` (MPBT-typed).
  virtual void map_page(u64 page, u16 frame, bool writable) = 0;

  /// Revokes the mapping of `page` (present := false).
  virtual void unmap_page(u64 page) = 0;

  /// Downgrades the mapping of `page` to read-only (stays present).
  virtual void downgrade_page(u64 page) = 0;

  // ---- frame integrity (default no-op: the plain env has no seals) ----

  /// Seals `page`'s frame: records a generation-stamped checksum of the
  /// frame contents at a point where they are quiescent — ownership
  /// handoff after the WCB flush, or an Exclusive -> Shared downgrade.
  /// `exclusive` says nobody holds a mapping at the seal point (the
  /// handoff case: owner unmapped, sharers already invalidated), i.e.
  /// the next toucher is guaranteed to verify before reading — the only
  /// window where the chaos layer may inject frame corruption without
  /// risking a silent wrong read. The protocol core marks the *where*;
  /// the binding layer owns the how (and whether: seals only exist when
  /// the integrity layer is armed).
  virtual void page_seal([[maybe_unused]] u64 page,
                         [[maybe_unused]] bool exclusive) {}

  /// Verifies `page`'s frame against its seal before this core starts
  /// trusting the data (ownership acquired, replica granted). On a
  /// mismatch the binding layer repairs from a clean copy when one
  /// exists, else poisons the page and throws SvmIntegrityError — a
  /// verify never returns with bad data mapped.
  virtual void page_verify([[maybe_unused]] u64 page) {}

  // ---- serialisation ----

  /// Acquires/releases the per-page transfer lock that serialises
  /// ownership transfers and directory transitions of `page`.
  virtual void transfer_lock(u64 page) = 0;
  virtual void transfer_unlock(u64 page) = 0;

  /// Masks/unmasks interrupts around check-then-map windows (an incoming
  /// request served in between would unmap the page again).
  virtual void irq_off() = 0;
  virtual void irq_on() = 0;

  // ---- modelled cost and diagnostics ----

  /// Charges `cycles` of modelled software cost to this core.
  virtual void cost_cycles(u32 cycles) = 0;

  /// Raises a hardware-counter event (mapped onto scc::CoreCounters by
  /// the binding layer, onto plain tallies by the harness).
  virtual void hw_count(HwEvent event, u64 delta) = 0;

  /// Rate-limited progress diagnostics (non-converging acquire loops).
  virtual void warn(const char* message) = 0;
};

}  // namespace msvm::svm::proto
