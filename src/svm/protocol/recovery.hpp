// Fail-stop recovery (the robustness PR): when a core dies mid-protocol
// the pages it owned, the directory bits it held, and the ACKs it owed
// must all be repaired before the survivors can make progress.
//
// The coordinator is deliberately *per page and lazy*: the core that
// detects the death — always a core blocked in a bounded protocol wait,
// which therefore already holds the page's transfer lock — repairs
// exactly the page it is waiting on. Pages owned by a dead core that
// nobody touches stay broken until someone faults on them, at which
// point that faulting core (again under the transfer lock) repairs them.
// Because every directory transition in the live protocol happens under
// the same per-page transfer lock, recovery can never race a live
// transition; a global stop-the-world walk would have had to, or to
// fence every lock holder.
//
// Repair rules per page (write-through L1 + single-line WCB make these
// exact, see DESIGN.md §13):
//   * dead cores are pruned from the sharer set (their replicas died
//     with them);
//   * a dead owner's page is re-homed to the lowest-id surviving sharer
//     (its read-only replica plus the clean DRAM frame are the page),
//     or to the recovering core itself when no sharer survives — the
//     DRAM frame holds every write the dead owner ever published;
//   * unless the owner died with an unflushed write-combine line inside
//     this page's frame: then the frame may be torn (earlier lines of
//     the same burst already evicted, the last line gone forever), the
//     owner word is poisoned with kOwnerLost, and every later access
//     surfaces SvmDataLossError instead of silent garbage.
//
// Protocol layer: no sccsim/sim/mailbox/kernel includes (CI-enforced).
// Who is dead, and whether the owner died dirty, are facts about the
// chip; the binding layer passes them in as plain values.
#pragma once

#include <stdexcept>
#include <string>

#include "svm/protocol/env.hpp"
#include "svm/protocol/meta.hpp"
#include "svm/protocol/sharer_set.hpp"
#include "svm/protocol/types.hpp"

namespace msvm::svm::proto {

/// Owner-word sentinel for a page whose last owner died with unflushed
/// writes: the frame in DRAM may be torn, so the page is poisoned. Core
/// ids are bounded by the chip's core count (<= 1024), far below this.
inline constexpr u16 kOwnerLost = 0xffff;

/// Owner-word sentinel for a page whose frame failed its integrity
/// check (checksum mismatch against the seal taken at the last
/// ownership handoff) with no clean copy left to repair from. Distinct
/// from kOwnerLost so reports can tell "owner died dirty" from "bits
/// rotted in DRAM".
inline constexpr u16 kOwnerCorrupt = 0xfffe;

/// Typed, never-silent result of touching a poisoned page. Thrown out
/// of the faulting access; the cluster layer records it per member.
class SvmDataLossError : public std::runtime_error {
 public:
  SvmDataLossError(u64 page, int dead_owner)
      : std::runtime_error("SVM data loss: page " + std::to_string(page) +
                           " owned by fail-stopped core " +
                           std::to_string(dead_owner) +
                           " with unflushed writes"),
        page_(page),
        dead_owner_(dead_owner) {}

  u64 page() const { return page_; }
  int dead_owner() const { return dead_owner_; }

 private:
  u64 page_;
  int dead_owner_;

 protected:
  SvmDataLossError(const std::string& what, u64 page, int dead_owner)
      : std::runtime_error(what), page_(page), dead_owner_(dead_owner) {}
};

/// Typed, never-silent result of touching a corruption-poisoned page:
/// the frame's checksum failed verification and no clean copy (owner
/// cache, surviving replica) existed to rebuild it from. Derives from
/// SvmDataLossError so every existing unwind path (transfer-lock
/// release, cluster per-member accounting) treats it as data loss.
class SvmIntegrityError : public SvmDataLossError {
 public:
  explicit SvmIntegrityError(u64 page)
      : SvmDataLossError("SVM data integrity: page " +
                             std::to_string(page) +
                             " failed checksum verification with no "
                             "clean copy to recover from",
                         page, /*dead_owner=*/-1) {}
};

/// What recover_page did to the page.
enum class RecoveryAction : u8 {
  kNone = 0,      // nothing dead touched this page
  kPruned = 1,    // dead sharers removed; the (live) owner kept the page
  kRehomed = 2,   // dead owner; a surviving sharer was elected owner
  kRefetched = 3, // dead owner, no sharer; recovering core became owner
  kLost = 4,      // dead owner died dirty; owner word poisoned
};

inline const char* to_string(RecoveryAction a) {
  switch (a) {
    case RecoveryAction::kNone: return "none";
    case RecoveryAction::kPruned: return "pruned";
    case RecoveryAction::kRehomed: return "rehomed";
    case RecoveryAction::kRefetched: return "refetched";
    case RecoveryAction::kLost: return "lost";
  }
  return "?";
}

/// Repairs one page after fail-stop deaths. MUST be called holding the
/// page's transfer lock (the caller is the blocked requester, which
/// already does). `dead` is the full set of fail-stopped cores;
/// `owner_died_dirty` says whether the page's (dead) owner died with an
/// unflushed write-combine line inside this page's frame;
/// `has_directory` gates the sharer-set repair (false under the plain
/// Strong model, whose metadata has no directory words to read).
/// Idempotent: a second call after repair returns kNone/kPruned without
/// further writes.
RecoveryAction recover_page(ProtocolEnv& env, u64 page,
                            const SharerSet& dead, bool owner_died_dirty,
                            bool has_directory);

}  // namespace msvm::svm::proto
