// ReadReplicationPolicy — the read-replication directory protocol
// (SvmConfig::read_replication).
//
// The owner vector is extended by a per-page directory word holding the
// sharer bitmask and the Exclusive/Shared state (see kDirSharedBit). All
// directory transitions happen under the page's transfer lock, except the
// Exclusive->Shared downgrade the owner performs on behalf of the lock
// holder while serving its read request.
#include "svm/protocol/policy.hpp"
#include "svm/protocol/recovery.hpp"

namespace msvm::svm::proto {

void ReadReplicationPolicy::fault(u64 page, u16 frame, bool is_write,
                                  ProtocolEnv& env) {
  if (!is_write) {
    // Read-replication fast path: a read fault joins the sharer set
    // (one grant round-trip at most) instead of moving ownership.
    acquire_read_replica(page, frame, env);
    return;
  }
  acquire_ownership(page, env);
}

void ReadReplicationPolicy::on_message(const Msg& m, ProtocolEnv& env) {
  switch (m.type) {
    case MsgType::kOwnershipReq:
      serve_ownership_request(m, env);
      return;
    case MsgType::kReadReq:
      serve_read_request(m, env);
      return;
    case MsgType::kInval:
      serve_invalidation(m, env);
      return;
    default:
      // ACK types are consumed by wait_match() inside the acquire flows.
      return;
  }
}

void ReadReplicationPolicy::acquire_read_replica(u64 page, u16 frame,
                                                 ProtocolEnv& env) {
  env.cost_cycles(cfg_.ownership_software_cycles);

  // Fast path: we are the exclusive owner — remap writable without any
  // protocol traffic (mirrors the ownership fast path).
  env.irq_off();
  if (env.meta().owner(page) == env.self() &&
      env.meta().dir_entry(page).none()) {
    env.map_page(page, frame, /*writable=*/true);
    transition(page, PageState::kOwnedRW, env);
    env.irq_on();
    return;
  }
  env.irq_on();

  // The transfer lock serialises directory transitions of this page:
  // while we hold it no write upgrade can invalidate the replica we are
  // about to install, and no other reader can race our sharer update.
  env.transfer_lock(page);

  for (;;) {
    const u16 owner = env.meta().owner(page);
    if (owner == kOwnerLost) {
      // Poisoned by fail-stop recovery: typed loss, never silent garbage.
      env.transfer_unlock(page);
      throw SvmDataLossError(page, kOwnerLost);
    }
    if (owner == kOwnerCorrupt) {
      // Poisoned by a failed integrity check: same contract.
      env.transfer_unlock(page);
      throw SvmIntegrityError(page);
    }
    if (owner == env.self()) {
      // We own the page after all (a transfer raced ahead of the
      // fault). Shared: our mapping was downgraded — stay read-only so
      // the sharer invariants hold; Exclusive: map writable.
      env.irq_off();
      if (env.meta().owner(page) == env.self()) {
        const bool shared = env.meta().dir_entry(page).shared;
        env.map_page(page, frame, /*writable=*/!shared);
        transition(page,
                   shared ? PageState::kSharedRO : PageState::kOwnedRW,
                   env);
        env.irq_on();
        env.transfer_unlock(page);
        return;
      }
      env.irq_on();
      continue;
    }
    DirEntry entry = env.meta().dir_entry(page);
    if (entry.shared) {
      // Already Shared: the owner flushed its WCB when the state was
      // entered and cannot have written since (its mapping is read-only),
      // so the frame is clean in DRAM — join the sharer set without
      // contacting anyone. Verify the frame against the downgrade seal
      // before trusting it (may repair from the owner's cache, or
      // poison and throw). Stale MPBT lines from an earlier ownership
      // of this page must not shadow the fresh data.
      env.page_verify(page);
      entry.sharers.set(env.self());
      env.meta().store_dir_entry(page, entry);
      env.cl1invmb();
      env.map_page(page, frame, /*writable=*/false);
      transition(page, PageState::kSharedRO, env);
      ++env.stats().replica_installs;
      env.transfer_unlock(page);
      return;
    }
    // Exclusive at a remote owner: one grant round-trip downgrades the
    // owner to Shared. No ownership transfer, no CL1INVMB on the owner.
    env.send(owner, Msg{MsgType::kReadReq, page, env.self()});
    (void)env.wait_match(MsgType::kReadAck, page);
    env.hw_count(HwEvent::kMailRoundtrip, 1);
    // Loop: the ACK normally means the Shared bit is now set; re-check
    // in case the request chased a stale owner.
  }
}

void ReadReplicationPolicy::serve_read_request(const Msg& m,
                                               ProtocolEnv& env) {
  const u64 page = m.page;
  const int requester = m.requester;
  env.cost_cycles(cfg_.ownership_software_cycles);
  const u16 owner = env.meta().owner(page);
  if (owner == requester) {
    // A forward raced with an ownership transfer to the requester
    // itself; just confirm so its wait terminates.
    env.send(requester, Msg{MsgType::kReadAck, page, 0});
    return;
  }
  if (owner == kOwnerLost || owner == kOwnerCorrupt) {
    // Poisoned page (fail-stop recovery or a failed integrity check):
    // no ACK — the requester's own path discovers the poison sentinel
    // and throws the typed error.
    return;
  }
  if (owner != env.self()) {
    // We gave the page away before this request arrived: chase the
    // current owner.
    ++env.stats().ownership_forwards;
    env.send(owner, m);
    return;
  }
  // Exclusive -> Shared: publish our writes and downgrade our own
  // mapping so a later local write takes the upgrade path. Our L1 is
  // write-through — it holds nothing newer than the WCB flush, so no
  // CL1INVMB is needed (the saving over a full ownership transfer).
  ++env.stats().replica_grants;
  env.flush_wcb();
  // Frame now clean in DRAM; seal it for the replicas about to read it.
  // Our write-through L1 keeps clean copies of the sealed lines (no
  // CL1INVMB on this path), which is the repair source if DRAM rots.
  // Not exclusive: we stay mapped read-only, so this seal is verify-
  // only — the injector must not target it.
  env.page_seal(page, /*exclusive=*/false);
  env.downgrade_page(page);
  transition(page, PageState::kSharedRO, env);
  DirEntry entry = env.meta().dir_entry(page);
  entry.shared = true;
  env.meta().store_dir_entry(page, entry);
  env.send(requester, Msg{MsgType::kReadAck, page, 0});
}

void ReadReplicationPolicy::serve_invalidation(const Msg& m,
                                               ProtocolEnv& env) {
  const u64 page = m.page;
  const int requester = m.requester;
  env.cost_cycles(cfg_.ownership_software_cycles);
  ++env.stats().invalidations_received;
  env.hw_count(HwEvent::kInvalRecv, 1);
  // Drop the replica mapping and its cached lines: the replica is
  // read-only and MPBT-typed, so CL1INVMB discards exactly the lines a
  // future re-read must fetch fresh.
  env.unmap_page(page);
  transition(page, PageState::kInvalid, env);
  env.cl1invmb();
  env.send(requester, Msg{MsgType::kInvalAck, page, 0});
}

}  // namespace msvm::svm::proto
