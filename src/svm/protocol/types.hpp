// Transport-agnostic vocabulary of the SVM coherence-protocol core.
//
// Everything under src/svm/protocol/ is the *protocol layer*: the
// per-page state machine, the policy classes that drive it, and the data
// types they exchange. The layer deliberately has no idea what a chip,
// fiber, or mailbox is — it consumes protocol messages and fault events
// and emits messages and metadata operations through the ProtocolEnv
// interface (env.hpp). The binding layer (svm/svm_runtime.hpp) adapts it
// to the simulated SCC; the test harness (tests/svm/protocol_harness.hpp)
// adapts it to scripted message sequences. An include-layering CI check
// keeps sccsim/sim/mailbox/kernel headers out of this directory.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace msvm::svm::proto {

// Local fixed-width aliases: the protocol layer cannot include
// sim/types.hpp (layering), and these are identical to the msvm-wide
// aliases, so the two sets interconvert freely at the binding layer.
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// The explicit per-page state machine. Under the Strong model a page is
/// OwnedRW on exactly one core and Invalid everywhere else; the
/// read-replication extension adds SharedRO replicas (owner downgraded,
/// sharers read-only). Under Lazy Release every mapped page is OwnedRW
/// on every core — writes meet at synchronisation points only, and the
/// diff-free write-combine buffer (dirty-byte flushes) is what makes
/// concurrent writers to disjoint bytes of one page safe.
enum class PageState : u8 {
  kInvalid = 0,   // no mapping (or mapping revoked by the protocol)
  kSharedRO = 1,  // read-only replica / downgraded owner copy
  kOwnedRW = 2,   // writable mapping
};

inline const char* to_string(PageState s) {
  switch (s) {
    case PageState::kInvalid: return "Invalid";
    case PageState::kSharedRO: return "SharedRO";
    case PageState::kOwnedRW: return "OwnedRW";
  }
  return "?";
}

/// Protocol message types. Values match the on-wire mailbox mail types
/// (svm.hpp's kMailOwnershipReq etc.) so the binding layer converts by
/// cast; the protocol core never sees a mailbox header.
enum class MsgType : u8 {
  kOwnershipReq = 0x20,  // Strong: move ownership to `requester`
  kOwnershipAck = 0x21,  // transfer complete (or confirmed already done)
  kReadReq = 0x22,       // read replication: grant a read-only replica
  kReadAck = 0x23,       // Exclusive -> Shared downgrade done
  kInval = 0x24,         // write upgrade: drop your replica
  kInvalAck = 0x25,      // replica dropped
};

inline const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kOwnershipReq: return "OwnershipReq";
    case MsgType::kOwnershipAck: return "OwnershipAck";
    case MsgType::kReadReq: return "ReadReq";
    case MsgType::kReadAck: return "ReadAck";
    case MsgType::kInval: return "Inval";
    case MsgType::kInvalAck: return "InvalAck";
  }
  return "?";
}

/// A protocol message. `requester` survives forwarding: when a stale
/// owner forwards an OwnershipReq along the ownership chain, the
/// original faulting core's id rides in the payload.
struct Msg {
  MsgType type = MsgType::kOwnershipReq;
  u64 page = 0;       // global SVM page index
  int requester = 0;  // payload core id (requester / upgrader)
};

/// Directory word layout (read-replication mode; one u64 per page).
/// Bits [0, 48): sharer bitmask — cores holding a read-only replica,
/// never including the owner. Bit 63: the page is in the Shared state,
/// i.e. the owner downgraded its own mapping to read-only and the frame
/// in DRAM is clean.
inline constexpr u64 kDirSharedBit = u64{1} << 63;
inline constexpr u64 kDirSharerMask = (u64{1} << 48) - 1;
inline constexpr u64 dir_bit(int core_id) { return u64{1} << core_id; }

/// Fault-injection switches (testing only): each one removes a single
/// step of the consistency protocols. Because the simulated caches
/// carry real data, enabling any of these must produce *wrong results*
/// in the protocol tests — evidence that the simulator's incoherence
/// is real and the protocol steps are all load-bearing.
struct Sabotage {
  bool skip_serve_wcb_flush = false;   // Strong step 3a (Section 6.1)
  bool skip_serve_cl1invmb = false;    // Strong step 3b
  bool skip_serve_unmap = false;       // Strong "clears its access
                                       // permission"
  bool skip_release_flush = false;     // LRC release (Section 6.2)
  bool skip_acquire_invalidate = false;  // LRC acquire
};

/// The slice of SvmConfig the protocol core needs. The binding layer
/// fills it from SvmConfig; the harness constructs it directly.
struct PolicyConfig {
  /// Requester waits for the ACK mail (paper's design). When false, the
  /// requester instead polls the off-die owner vector, reproducing the
  /// authors' earlier prototype [14] that "runs against the memory wall".
  bool ack_via_mail = true;
  /// Modelled software cost charged per protocol step (core cycles).
  u32 ownership_software_cycles = 400;
  Sabotage sabotage;
};

/// Protocol/runtime statistics of one core's SVM endpoint. Plain data;
/// defined here (not in svm.hpp) so policies can update their slice
/// through ProtocolEnv::stats() without seeing any runtime header.
struct SvmStats {
  u64 map_faults = 0;          // frame existed, mapping installed
  u64 first_touch_allocs = 0;  // this core allocated the frame
  u64 ownership_acquires = 0;  // strong-model permission retrievals
  u64 ownership_serves = 0;    // requests this core answered as owner
  u64 ownership_forwards = 0;  // stale requests forwarded onward
  u64 migrations = 0;          // next-touch frame moves
  u64 barriers = 0;
  u64 lock_acquires = 0;
  u64 protect_calls = 0;
  // Read-replication directory protocol (all zero with the flag off).
  u64 replica_installs = 0;    // read-only replica mappings installed
  u64 replica_grants = 0;      // Exclusive->Shared downgrades served
  u64 invalidations_sent = 0;  // per-sharer invalidation mails sent
  u64 invalidations_received = 0;  // replicas this core dropped on demand
  // Resilience machinery (all zero on a fault-free run).
  u64 retransmits = 0;         // protocol requests re-sent after timeout
  u64 dup_acks_dropped = 0;    // duplicate ACK mails discarded by dedup
  u64 acks_evicted = 0;        // live keys overwritten in the dedup ring
  // Fail-stop recovery (all zero unless a core was killed).
  u64 recoveries = 0;          // recover_page invocations
  u64 sharers_pruned = 0;      // dead cores removed from sharer sets
  u64 pages_rehomed = 0;       // dead-owner pages moved to a live sharer
  u64 pages_refetched = 0;     // dead-owner pages re-homed to the detector
  u64 pages_lost = 0;          // pages poisoned (owner died dirty)
  u64 locks_broken = 0;        // TAS locks force-released from the dead
  // Data integrity (all zero unless the integrity layer is armed).
  u64 pages_sealed = 0;        // frame checksums recorded at handoff
  u64 seal_verifies = 0;       // frame checksums checked before trusting
  u64 seal_repairs = 0;        // corrupt frames rebuilt from a clean cache
  u64 seal_refetches = 0;      // corrupt frames re-read from a clean copy
  u64 pages_poisoned = 0;      // corrupt frames with no clean copy left
  u64 meta_corrections = 0;    // metadata words caught and corrected
};

/// Self-description of SvmStats: one entry per field, in declaration
/// order. Aggregation (cluster report) and metrics export walk this
/// table instead of hand-listing fields.
struct SvmStatsField {
  const char* name;
  u64 SvmStats::*member;
};

inline constexpr SvmStatsField kSvmStatsFields[] = {
    {"map_faults", &SvmStats::map_faults},
    {"first_touch_allocs", &SvmStats::first_touch_allocs},
    {"ownership_acquires", &SvmStats::ownership_acquires},
    {"ownership_serves", &SvmStats::ownership_serves},
    {"ownership_forwards", &SvmStats::ownership_forwards},
    {"migrations", &SvmStats::migrations},
    {"barriers", &SvmStats::barriers},
    {"lock_acquires", &SvmStats::lock_acquires},
    {"protect_calls", &SvmStats::protect_calls},
    {"replica_installs", &SvmStats::replica_installs},
    {"replica_grants", &SvmStats::replica_grants},
    {"invalidations_sent", &SvmStats::invalidations_sent},
    {"invalidations_received", &SvmStats::invalidations_received},
    {"retransmits", &SvmStats::retransmits},
    {"dup_acks_dropped", &SvmStats::dup_acks_dropped},
    {"acks_evicted", &SvmStats::acks_evicted},
    {"recoveries", &SvmStats::recoveries},
    {"sharers_pruned", &SvmStats::sharers_pruned},
    {"pages_rehomed", &SvmStats::pages_rehomed},
    {"pages_refetched", &SvmStats::pages_refetched},
    {"pages_lost", &SvmStats::pages_lost},
    {"locks_broken", &SvmStats::locks_broken},
    {"pages_sealed", &SvmStats::pages_sealed},
    {"seal_verifies", &SvmStats::seal_verifies},
    {"seal_repairs", &SvmStats::seal_repairs},
    {"seal_refetches", &SvmStats::seal_refetches},
    {"pages_poisoned", &SvmStats::pages_poisoned},
    {"meta_corrections", &SvmStats::meta_corrections},
};

/// Hardware-counter events the protocol raises; the binding layer maps
/// them onto scc::CoreCounters, the harness onto plain tallies.
enum class HwEvent : u8 {
  kMailRoundtrip,  // one request/ACK (or multicast/ACK-set) round-trip
  kInvalSent,      // invalidation mails fanned out
  kInvalRecv,      // invalidation served (replica dropped)
};

/// Which metadata word a MetaStore access targets (see meta.hpp).
/// Lives here so trace formatting can name metadata writes.
enum class MetaKind : u8 {
  kOwner = 0,       // u16: owning core id
  kScratchpad = 1,  // u16: frame number | kMigrateBit
  kDirectory = 2,   // u64: sharer bitmask | kDirSharedBit
};

inline const char* to_string(MetaKind k) {
  switch (k) {
    case MetaKind::kOwner: return "owner";
    case MetaKind::kScratchpad: return "scratchpad";
    case MetaKind::kDirectory: return "dir";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Protocol-event tracing. The protocol core describes what happened
// (state transitions, message send/receive, metadata writes, fault
// entries, in program order) and hands each record to a TraceSink; where
// the records go — the observability event bus under the simulator, a
// plain vector under the test harness — is the consumer's business.
// (This seam replaced the bespoke per-core TraceRing that used to live
// in protocol/trace.hpp.)

enum class TraceKind : u8 {
  kTransition = 0,  // a: old PageState, b: new PageState
  kMsgSend = 1,     // a: MsgType, b: destination core (or multicast mask)
  kMsgRecv = 2,     // a: MsgType, b: requester id
  kMetaWrite = 3,   // a: MetaKind, b: value written
  kFault = 4,       // a: 1 = write fault, b: fault-path tag
};

struct TraceEvent {
  TraceKind kind = TraceKind::kTransition;
  u64 page = 0;
  u64 a = 0;
  u64 b = 0;
};

/// Consumer seam for protocol-event records. ProtocolEnv derives from
/// it, so policies call env.trace(...) and MetaWord can be handed the
/// env as its sink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void trace(const TraceEvent& e) = 0;
};

/// Renders one event ("page 12 Invalid -> OwnedRW", "page 3 send
/// OwnershipReq -> core 5", ...). Kept in the protocol layer so every
/// consumer (hang reports, the svm-trace section, test failures) prints
/// the same text.
inline std::string to_string(const TraceEvent& e) {
  char buf[128];
  switch (e.kind) {
    case TraceKind::kTransition:
      std::snprintf(buf, sizeof(buf), "page %llu %s -> %s",
                    static_cast<unsigned long long>(e.page),
                    to_string(static_cast<PageState>(e.a)),
                    to_string(static_cast<PageState>(e.b)));
      break;
    case TraceKind::kMsgSend:
      std::snprintf(buf, sizeof(buf), "page %llu send %s -> core %llu",
                    static_cast<unsigned long long>(e.page),
                    to_string(static_cast<MsgType>(e.a)),
                    static_cast<unsigned long long>(e.b));
      break;
    case TraceKind::kMsgRecv:
      std::snprintf(buf, sizeof(buf), "page %llu recv %s (req by %llu)",
                    static_cast<unsigned long long>(e.page),
                    to_string(static_cast<MsgType>(e.a)),
                    static_cast<unsigned long long>(e.b));
      break;
    case TraceKind::kMetaWrite:
      std::snprintf(buf, sizeof(buf), "page %llu %s := 0x%llx",
                    static_cast<unsigned long long>(e.page),
                    to_string(static_cast<MetaKind>(e.a)),
                    static_cast<unsigned long long>(e.b));
      break;
    case TraceKind::kFault:
      std::snprintf(buf, sizeof(buf), "page %llu %s fault",
                    static_cast<unsigned long long>(e.page),
                    e.a != 0 ? "write" : "read");
      break;
    default:
      std::snprintf(buf, sizeof(buf), "page %llu ?",
                    static_cast<unsigned long long>(e.page));
      break;
  }
  return buf;
}

}  // namespace msvm::svm::proto
