// StrongOwnerPolicy — the paper's Strong Memory Model (Section 6.1):
// "the Strong Memory Model has to retrieve the access permissions from
// the page owner" — for reads as much as writes, since at each point in
// time only one owner may access the page.
#include <cstdio>

#include "svm/protocol/policy.hpp"
#include "svm/protocol/recovery.hpp"

namespace msvm::svm::proto {

void StrongOwnerPolicy::fault(u64 page, u16 frame, bool is_write,
                              ProtocolEnv& env) {
  // Under single ownership every fault — read or write, mapping or
  // upgrade — resolves the same way: become the owner.
  (void)frame;
  (void)is_write;
  acquire_ownership(page, env);
}

void StrongOwnerPolicy::on_message(const Msg& m, ProtocolEnv& env) {
  if (m.type == MsgType::kOwnershipReq) {
    serve_ownership_request(m, env);
  }
  // OwnershipAck is consumed by wait_match() inside acquire_ownership;
  // one arriving here (poll-mode fallback race) is simply dropped.
}

void StrongOwnerPolicy::acquire_ownership(u64 page, ProtocolEnv& env) {
  ++env.stats().ownership_acquires;
  env.cost_cycles(cfg_.ownership_software_cycles);
  const u16 frame = env.meta().frame_of(page);

  // Fast path: we already own the page (e.g. a mapping dropped by
  // unprotect or next_touch on a page we kept owning). Under read
  // replication the directory word must also be clear — a Shared page
  // (even with an empty sharer set) needs the locked path below to
  // invalidate replicas and reset the state to Exclusive.
  env.irq_off();
  if (env.meta().owner(page) == env.self() &&
      (!read_replication_ || env.meta().dir_entry(page).none())) {
    env.map_page(page, frame, /*writable=*/true);
    transition(page, PageState::kOwnedRW, env);
    env.irq_on();
    return;
  }
  env.irq_on();

  // Serialise transfers of this page: with a free-for-all, a request can
  // chase an owner that keeps moving (three or more contenders forward
  // the mail around forever). While spinning — and while waiting for the
  // ACK below — incoming ownership requests keep being served through the
  // interrupt path, so the lock cannot deadlock the protocol.
  env.transfer_lock(page);

  // Write upgrade, step 1 (read replication): multicast invalidations to
  // every read replica and reset the directory to Exclusive. The sharer
  // set is frozen while we hold the transfer lock — joining it requires
  // the same lock.
  if (read_replication_) invalidate_sharers(page, env);

  u64 rounds = 0;
  for (;;) {
    if (++rounds % 1000 == 0) {
      char msg[128];
      std::snprintf(msg, sizeof(msg),
                    "acquire of page %llu not converging (round %llu, "
                    "owner=%u)",
                    static_cast<unsigned long long>(page),
                    static_cast<unsigned long long>(rounds),
                    env.meta().owner(page));
      env.warn(msg);
    }
    const u16 owner = env.meta().owner(page);
    if (owner == kOwnerLost) {
      // The page was poisoned by fail-stop recovery (its last owner died
      // with unflushed writes). Never silent garbage: surface the typed
      // loss to the faulting access.
      env.transfer_unlock(page);
      throw SvmDataLossError(page, kOwnerLost);
    }
    if (owner == kOwnerCorrupt) {
      // Poisoned by a failed integrity check (frame checksum mismatch
      // with no clean copy left). Same contract: typed, never silent.
      env.transfer_unlock(page);
      throw SvmIntegrityError(page);
    }
    if (owner == env.self()) {
      // The frame just changed hands: check it against the seal the
      // previous owner took at the handoff before trusting the data.
      // May repair, or poison and throw (lock released by the unwind).
      env.page_verify(page);
      // Close the window between learning we own the page and mapping
      // it: an incoming request handled in between would unmap it again.
      env.irq_off();
      if (env.meta().owner(page) == env.self()) {
        env.map_page(page, frame, /*writable=*/true);
        transition(page, PageState::kOwnedRW, env);
        env.irq_on();
        env.transfer_unlock(page);
        return;
      }
      env.irq_on();
      continue;
    }
    env.send(owner,
             Msg{MsgType::kOwnershipReq, page, env.self()});
    if (cfg_.ack_via_mail) {
      (void)env.wait_match(MsgType::kOwnershipAck, page);
      env.hw_count(HwEvent::kMailRoundtrip, 1);
    } else {
      // Prior-prototype scheme [14]: poll the off-die owner vector. This
      // is the "memory wall" behaviour the mailbox+ACK design removes.
      while (env.meta().owner(page) != static_cast<u16>(env.self())) {
        env.yield();
      }
    }
    // Loop re-verifies ownership and maps under masked interrupts.
  }
}

void StrongOwnerPolicy::serve_ownership_request(const Msg& m,
                                                ProtocolEnv& env) {
  const u64 page = m.page;
  const int requester = m.requester;
  env.cost_cycles(cfg_.ownership_software_cycles);
  const u16 owner = env.meta().owner(page);
  if (owner == requester) {
    // Transfer already happened (raced with a forward); just confirm.
    if (cfg_.ack_via_mail) {
      env.send(requester, Msg{MsgType::kOwnershipAck, page, 0});
    }
    return;
  }
  if (owner == kOwnerLost || owner == kOwnerCorrupt) {
    // Poisoned page (fail-stop recovery or a failed integrity check):
    // no ACK — the requester's own path discovers the poison sentinel
    // and throws the typed error.
    return;
  }
  if (owner != env.self()) {
    // We gave the page away before this request arrived: forward it to
    // the core we handed it to.
    ++env.stats().ownership_forwards;
    env.send(owner, m);
    return;
  }

  // The paper's transfer sequence (Section 6.1, steps 3-5): flush the
  // write-combine buffer, invalidate the tagged L1 entries, drop our
  // access permission, publish the new owner, send the acknowledgment.
  ++env.stats().ownership_serves;
  const Sabotage& sabotage = cfg_.sabotage;
  if (!sabotage.skip_serve_wcb_flush) env.flush_wcb();
  if (!sabotage.skip_serve_cl1invmb) env.cl1invmb();
  if (!sabotage.skip_serve_unmap) env.unmap_page(page);
  transition(page, PageState::kInvalid, env);
  // The WCB flush published our last writes: the frame in DRAM is now
  // the page. Seal it so the new owner can verify what it receives —
  // exclusive: we just unmapped and any sharers were invalidated before
  // the transfer, so nobody can read the frame before a verify.
  env.page_seal(page, /*exclusive=*/true);
  env.meta().set_owner(page, static_cast<u16>(requester));
  if (cfg_.ack_via_mail) {
    env.send(requester, Msg{MsgType::kOwnershipAck, page, 0});
  }
}

void StrongOwnerPolicy::invalidate_sharers(u64 page, ProtocolEnv& env) {
  const DirEntry entry = env.meta().dir_entry(page);
  if (entry.none()) return;
  SharerSet dests = entry.sharers;
  dests.clear(env.self());
  const int nshare = dests.count();
  if (nshare > 0) {
    env.multicast(dests, Msg{MsgType::kInval, page, env.self()});
    env.stats().invalidations_sent += static_cast<u64>(nshare);
    env.hw_count(HwEvent::kInvalSent, static_cast<u64>(nshare));
    for (int i = 0; i < nshare; ++i) {
      (void)env.wait_match(MsgType::kInvalAck, page);
    }
    env.hw_count(HwEvent::kMailRoundtrip, 1);  // one multicast round
  }
  env.meta().clear_dir(page);  // Exclusive again
}

}  // namespace msvm::svm::proto
