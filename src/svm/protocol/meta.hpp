// The metadata-ops layer: every piece of protocol metadata the paper
// spreads over simulated physical memory — the off-die owner vector, the
// on-die first-touch scratchpad, and the read-replication directory —
// is, to the protocol core, just a typed word keyed by (kind, page).
//
// MetaStore is the raw transport: one load and one store, implemented by
// the binding layer as uncached ploads/pstores at the SvmDomain's
// physical addresses and by the test harness as plain arrays. MetaWord
// is the typed accessor on top that replaces the former
// owner_read/owner_write/dir_read/dir_write/scratchpad_read/
// scratchpad_write boilerplate sextet, and gives every metadata write a
// single choke point for transition tracing.
#pragma once

#include "svm/protocol/types.hpp"

namespace msvm::svm::proto {

/// Raw word transport for protocol metadata. Values are passed as u64;
/// 16-bit kinds use the low half (the store side truncates).
class MetaStore {
 public:
  virtual ~MetaStore() = default;
  virtual u64 load(MetaKind kind, u64 page) = 0;
  virtual void store(MetaKind kind, u64 page, u64 value) = 0;
};

/// Scratchpad entry bit 15 marks a page for next-touch migration, which
/// is why allocatable frame numbers are 15-bit (the paper's plain 16-bit
/// representation caps shared memory at 256 MiB; the migration extension
/// halves that to 128 MiB — still far beyond what we simulate).
inline constexpr u16 kMigrateBit = 0x8000;
inline constexpr u16 kFrameMask = 0x7fff;

/// Typed facade over a MetaStore. Reads are free of side effects; every
/// write is recorded through the (optional) trace sink.
class MetaWord {
 public:
  explicit MetaWord(MetaStore& store, TraceSink* trace = nullptr)
      : store_(store), trace_(trace) {}

  // ---- owner vector ----
  u16 owner(u64 page) {
    return static_cast<u16>(store_.load(MetaKind::kOwner, page));
  }
  void set_owner(u64 page, u16 core) {
    write(MetaKind::kOwner, page, core);
  }

  // ---- first-touch scratchpad ----
  u16 scratchpad(u64 page) {
    return static_cast<u16>(store_.load(MetaKind::kScratchpad, page));
  }
  void set_scratchpad(u64 page, u16 entry) {
    write(MetaKind::kScratchpad, page, entry);
  }
  u16 frame_of(u64 page) { return scratchpad(page) & kFrameMask; }

  // ---- read-replication directory ----
  u64 dir(u64 page) { return store_.load(MetaKind::kDirectory, page); }
  void set_dir(u64 page, u64 word) {
    write(MetaKind::kDirectory, page, word);
  }

  MetaStore& store() { return store_; }

 private:
  void write(MetaKind kind, u64 page, u64 value) {
    store_.store(kind, page, value);
    if (trace_ != nullptr) {
      trace_->trace(TraceEvent{TraceKind::kMetaWrite, page,
                               static_cast<u64>(kind), value});
    }
  }

  MetaStore& store_;
  TraceSink* trace_;
};

}  // namespace msvm::svm::proto
