// The metadata-ops layer: every piece of protocol metadata the paper
// spreads over simulated physical memory — the off-die owner vector, the
// on-die first-touch scratchpad, and the read-replication directory —
// is, to the protocol core, just a typed word keyed by (kind, page).
//
// MetaStore is the raw transport: one load and one store, implemented by
// the binding layer as uncached ploads/pstores at the SvmDomain's
// physical addresses and by the test harness as plain arrays. MetaWord
// is the typed accessor on top that replaces the former
// owner_read/owner_write/dir_read/dir_write/scratchpad_read/
// scratchpad_write boilerplate sextet, and gives every metadata write a
// single choke point for transition tracing.
#pragma once

#include "svm/protocol/sharer_set.hpp"
#include "svm/protocol/types.hpp"

namespace msvm::svm::proto {

/// One page's read-replication directory entry: the set of cores holding
/// a read-only replica (never including the owner) plus the
/// Exclusive/Shared state bit. The width of `sharers` is the store's
/// sharer_width(), fixed by the directory encoding.
struct DirEntry {
  SharerSet sharers;
  bool shared = false;

  DirEntry() = default;
  explicit DirEntry(int width) : sharers(width) {}

  /// True for the pristine Exclusive entry (the historical word == 0).
  bool none() const { return !shared && sharers.none(); }
};

/// Raw word transport for protocol metadata. Values are passed as u64;
/// 16-bit kinds use the low half (the store side truncates).
///
/// The directory row is wider than one word past 64 cores, so it gets
/// typed accessors with a width: the defaults below pack a DirEntry into
/// the historical single u64 (bit 63 = Shared, bits [0, 48) = sharers)
/// through load/store(kDirectory), which keeps every narrow MetaStore —
/// including the scripted test harness — working unchanged. Stores
/// serving chips wider than 64 cores override all three.
class MetaStore {
 public:
  virtual ~MetaStore() = default;
  virtual u64 load(MetaKind kind, u64 page) = 0;
  virtual void store(MetaKind kind, u64 page, u64 value) = 0;

  /// Width (in core ids) of the directory's sharer set.
  virtual int sharer_width() const { return 48; }

  virtual DirEntry load_dir(u64 page) {
    DirEntry e(sharer_width());
    const u64 word = load(MetaKind::kDirectory, page);
    e.shared = (word & kDirSharedBit) != 0;
    // Sharer bits occupy everything below the state bit; masking with
    // ~kDirSharedBit (rather than the historical 48-bit mask) keeps the
    // single-word encoding exact for dies of up to 63 cores.
    e.sharers.set_word(0, word & ~kDirSharedBit);
    return e;
  }

  virtual void store_dir(u64 page, const DirEntry& e) {
    const u64 word = (e.shared ? kDirSharedBit : 0) |
                     (e.sharers.word(0) & ~kDirSharedBit);
    store(MetaKind::kDirectory, page, word);
  }
};

/// Scratchpad entry bit 15 marks a page for next-touch migration, which
/// is why allocatable frame numbers are 15-bit (the paper's plain 16-bit
/// representation caps shared memory at 256 MiB; the migration extension
/// halves that to 128 MiB — still far beyond what we simulate).
inline constexpr u16 kMigrateBit = 0x8000;
inline constexpr u16 kFrameMask = 0x7fff;

/// Typed facade over a MetaStore. Reads are free of side effects; every
/// write is recorded through the (optional) trace sink.
class MetaWord {
 public:
  explicit MetaWord(MetaStore& store, TraceSink* trace = nullptr)
      : store_(store), trace_(trace) {}

  // ---- owner vector ----
  u16 owner(u64 page) {
    return static_cast<u16>(store_.load(MetaKind::kOwner, page));
  }
  void set_owner(u64 page, u16 core) {
    write(MetaKind::kOwner, page, core);
  }

  // ---- first-touch scratchpad ----
  u16 scratchpad(u64 page) {
    return static_cast<u16>(store_.load(MetaKind::kScratchpad, page));
  }
  void set_scratchpad(u64 page, u16 entry) {
    write(MetaKind::kScratchpad, page, entry);
  }
  u16 frame_of(u64 page) { return scratchpad(page) & kFrameMask; }

  // ---- read-replication directory ----
  DirEntry dir_entry(u64 page) { return store_.load_dir(page); }
  void store_dir_entry(u64 page, const DirEntry& e) {
    store_.store_dir(page, e);
    if (trace_ != nullptr) {
      // Trace the legacy packed view (exact for <= 64-wide directories;
      // word 0 plus the state bit for wider ones).
      const u64 value =
          (e.shared ? kDirSharedBit : 0) | e.sharers.word(0);
      trace_->trace(TraceEvent{TraceKind::kMetaWrite, page,
                               static_cast<u64>(MetaKind::kDirectory),
                               value});
    }
  }
  void clear_dir(u64 page) {
    store_dir_entry(page, DirEntry(store_.sharer_width()));
  }

  MetaStore& store() { return store_; }

 private:
  void write(MetaKind kind, u64 page, u64 value) {
    store_.store(kind, page, value);
    if (trace_ != nullptr) {
      trace_->trace(TraceEvent{TraceKind::kMetaWrite, page,
                               static_cast<u64>(kind), value});
    }
  }

  MetaStore& store_;
  TraceSink* trace_;
};

}  // namespace msvm::svm::proto
