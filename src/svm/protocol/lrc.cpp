// LrcPolicy — Lazy Release Consistency (paper Section 6.2): every core
// maps pages writable; data moves at synchronisation points only. Lock
// acquire invalidates the SVM-tagged L1 lines; lock release (and the
// collective barrier) flushes the write-combine buffer. Because WCB
// flushes write only *dirty bytes* (diff-free LRC), two cores may safely
// write disjoint parts of one page between barriers — no twin pages or
// diffs as in classic software DSM.
#include "svm/protocol/policy.hpp"

namespace msvm::svm::proto {

void LrcPolicy::fault(u64 page, u16 frame, bool is_write,
                      ProtocolEnv& env) {
  // Any fault on an existing frame simply (re)installs a writable
  // mapping: under LRC there is no per-access permission to retrieve.
  (void)is_write;
  env.map_page(page, frame, /*writable=*/true);
  transition(page, PageState::kOwnedRW, env);
}

void LrcPolicy::on_message(const Msg& m, ProtocolEnv& env) {
  // LRC exchanges no protocol messages — consistency lives entirely in
  // the synchronisation hooks. Stray mail is dropped.
  (void)m;
  (void)env;
}

void LrcPolicy::on_acquire(ProtocolEnv& env) {
  // Entering a critical section (or leaving a barrier): the data written
  // by others before the synchronisation point must not be shadowed by
  // stale cache lines.
  if (!cfg_.sabotage.skip_acquire_invalidate) env.cl1invmb();
}

}  // namespace msvm::svm::proto
