// Per-core protocol-event ring buffer: state transitions, message
// send/receive, metadata writes, and fault entries, in program order.
// Recording is host-side only (no simulated cost), bounded, and always
// on — the ring is what gets dumped when an SvmProtectionError fires or
// a protocol test fails, and what the cluster report's `svm-trace`
// section renders.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "svm/protocol/types.hpp"

namespace msvm::svm::proto {

enum class TraceKind : u8 {
  kTransition = 0,  // a: old PageState, b: new PageState
  kMsgSend = 1,     // a: MsgType, b: destination core (or multicast mask)
  kMsgRecv = 2,     // a: MsgType, b: requester id
  kMetaWrite = 3,   // a: MetaKind, b: value written
  kFault = 4,       // a: 1 = write fault, b: fault-path tag
};

struct TraceEvent {
  TraceKind kind = TraceKind::kTransition;
  u64 page = 0;
  u64 a = 0;
  u64 b = 0;
};

/// Fixed-capacity ring of the most recent protocol events on one core.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 256) : events_(capacity) {}

  void record(const TraceEvent& e) {
    if (events_.empty()) return;
    events_[next_ % events_.size()] = e;
    ++next_;
  }

  void clear() { next_ = 0; }

  /// Total events ever recorded (>= size(); the excess was overwritten).
  u64 recorded() const { return next_; }
  std::size_t size() const {
    return next_ < events_.size() ? static_cast<std::size_t>(next_)
                                  : events_.size();
  }

  /// Oldest-to-newest snapshot of the surviving events.
  std::vector<TraceEvent> snapshot() const;

  /// Renders one event ("page 12 Invalid->OwnedRW", "page 3 send
  /// OwnershipReq -> core 5", ...).
  static std::string format(const TraceEvent& e);

  /// Renders the newest `max_events` surviving events, one per line,
  /// each prefixed with `prefix`.
  std::string dump(const char* prefix = "  ",
                   std::size_t max_events = 32) const;

 private:
  std::vector<TraceEvent> events_;
  u64 next_ = 0;
};

}  // namespace msvm::svm::proto
