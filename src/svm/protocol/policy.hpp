// CoherencePolicy — the protocol core proper. One policy instance per
// core drives the explicit per-page state machine (PageState) for one of
// the paper's consistency models:
//
//   * StrongOwnerPolicy — Section 6.1's single-owner model: at any time
//     a page is OwnedRW on exactly one core and Invalid everywhere else;
//     any fault moves ownership via an OwnershipReq/Ack round-trip.
//   * ReadReplicationPolicy — the MSI-style directory extension (PR 1):
//     read faults install SharedRO replicas after a ReadReq/Ack grant;
//     write faults multicast Inval to the sharer set first.
//   * LrcPolicy — Section 6.2's Lazy Release Consistency: every core
//     maps pages OwnedRW; data moves at synchronisation points only
//     (release flushes the diff-free WCB, acquire invalidates the
//     SVM-tagged L1 lines), which is what makes concurrent writers to
//     disjoint bytes of one page safe.
//
// Policies are written against ProtocolEnv only: no sccsim, fiber,
// kernel, or mailbox headers (CI enforces this), so the same code runs
// under the simulated chip and under the scripted test harness.
#pragma once

#include <unordered_map>

#include "svm/protocol/env.hpp"
#include "svm/protocol/types.hpp"

namespace msvm::svm::proto {

class CoherencePolicy {
 public:
  explicit CoherencePolicy(PolicyConfig cfg) : cfg_(cfg) {}
  virtual ~CoherencePolicy() = default;

  CoherencePolicy(const CoherencePolicy&) = delete;
  CoherencePolicy& operator=(const CoherencePolicy&) = delete;

  virtual const char* name() const = 0;

  /// Resolves a fault on a page whose frame already exists — either a
  /// mapping fault (first access after a revocation) or a permission
  /// upgrade (present but read-only). `frame` is the 15-bit frame number
  /// the fault path read from the scratchpad; flows that must re-read it
  /// under their own serialisation do so through env.meta().
  virtual void fault(u64 page, u16 frame, bool is_write,
                     ProtocolEnv& env) = 0;

  /// Handles an incoming protocol message addressed to this core.
  virtual void on_message(const Msg& m, ProtocolEnv& env) = 0;

  /// Release-side synchronisation hook (lock release, barrier entry):
  /// our writes must be in memory before anyone can observe the
  /// synchronisation. Common to both models.
  virtual void on_release(ProtocolEnv& env) {
    if (!cfg_.sabotage.skip_release_flush) env.flush_wcb();
  }

  /// Acquire-side synchronisation hook (lock acquire, barrier exit).
  /// A no-op under the Strong model — ownership transfer already moved
  /// the data; LRC overrides it with the L1 invalidation.
  virtual void on_acquire(ProtocolEnv& env) { (void)env; }

  /// The binding layer installs mappings outside the protocol (first
  /// touch, migration, read-only regions); this keeps the state machine
  /// and the trace in step with those installs.
  void note_mapped(u64 page, bool writable, ProtocolEnv& env) {
    transition(page, writable ? PageState::kOwnedRW : PageState::kSharedRO,
               env);
  }

  /// Current state-machine view of `page` on this core.
  PageState state_of(u64 page) const {
    const auto it = state_.find(page);
    return it == state_.end() ? PageState::kInvalid : it->second;
  }

  const PolicyConfig& config() const { return cfg_; }

 protected:
  /// Moves `page` to `next` in the local state machine, recording the
  /// transition through the trace sink (host-side only, no simulated
  /// cost).
  void transition(u64 page, PageState next, ProtocolEnv& env) {
    PageState& slot = state_[page];
    if (slot == next) return;
    env.trace(TraceEvent{TraceKind::kTransition, page,
                         static_cast<u64>(slot),
                         static_cast<u64>(next)});
    slot = next;
  }

  PolicyConfig cfg_;

 private:
  std::unordered_map<u64, PageState> state_;
};

/// Strong single-owner model (paper Section 6.1).
class StrongOwnerPolicy : public CoherencePolicy {
 public:
  explicit StrongOwnerPolicy(PolicyConfig cfg)
      : StrongOwnerPolicy(cfg, /*read_replication=*/false) {}

  const char* name() const override { return "strong-owner"; }
  void fault(u64 page, u16 frame, bool is_write,
             ProtocolEnv& env) override;
  void on_message(const Msg& m, ProtocolEnv& env) override;

 protected:
  StrongOwnerPolicy(PolicyConfig cfg, bool read_replication)
      : CoherencePolicy(cfg), read_replication_(read_replication) {}

  /// The ownership-transfer flow shared with the read-replication
  /// subclass (which prepends sharer invalidation and a directory check
  /// on the fast path).
  void acquire_ownership(u64 page, ProtocolEnv& env);
  void serve_ownership_request(const Msg& m, ProtocolEnv& env);

  /// Multicasts invalidations to every sharer of `page` (except this
  /// core), waits for all ACKs, and resets the directory word to
  /// Exclusive. Must be called holding the page's transfer lock.
  void invalidate_sharers(u64 page, ProtocolEnv& env);

  const bool read_replication_;
};

/// Strong model + MSI-style read replication (directory of SharedRO
/// replicas; the PR 1 extension beyond the paper).
class ReadReplicationPolicy : public StrongOwnerPolicy {
 public:
  explicit ReadReplicationPolicy(PolicyConfig cfg)
      : StrongOwnerPolicy(cfg, /*read_replication=*/true) {}

  const char* name() const override { return "read-replication"; }
  void fault(u64 page, u16 frame, bool is_write,
             ProtocolEnv& env) override;
  void on_message(const Msg& m, ProtocolEnv& env) override;

 private:
  void acquire_read_replica(u64 page, u16 frame, ProtocolEnv& env);
  void serve_read_request(const Msg& m, ProtocolEnv& env);
  void serve_invalidation(const Msg& m, ProtocolEnv& env);
};

/// Lazy Release Consistency (paper Section 6.2).
class LrcPolicy : public CoherencePolicy {
 public:
  explicit LrcPolicy(PolicyConfig cfg) : CoherencePolicy(cfg) {}

  const char* name() const override { return "lazy-release"; }
  void fault(u64 page, u16 frame, bool is_write,
             ProtocolEnv& env) override;
  void on_message(const Msg& m, ProtocolEnv& env) override;
  void on_acquire(ProtocolEnv& env) override;
};

}  // namespace msvm::svm::proto
