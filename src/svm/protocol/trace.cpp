#include "svm/protocol/trace.hpp"

#include <cstdio>

#include "svm/protocol/meta.hpp"

namespace msvm::svm::proto {

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const u64 idx = (next_ - n + i) % events_.size();
    out.push_back(events_[static_cast<std::size_t>(idx)]);
  }
  return out;
}

std::string TraceRing::format(const TraceEvent& e) {
  char buf[128];
  switch (e.kind) {
    case TraceKind::kTransition:
      std::snprintf(buf, sizeof(buf), "page %llu %s -> %s",
                    static_cast<unsigned long long>(e.page),
                    to_string(static_cast<PageState>(e.a)),
                    to_string(static_cast<PageState>(e.b)));
      break;
    case TraceKind::kMsgSend:
      std::snprintf(buf, sizeof(buf), "page %llu send %s -> core %llu",
                    static_cast<unsigned long long>(e.page),
                    to_string(static_cast<MsgType>(e.a)),
                    static_cast<unsigned long long>(e.b));
      break;
    case TraceKind::kMsgRecv:
      std::snprintf(buf, sizeof(buf), "page %llu recv %s (req by %llu)",
                    static_cast<unsigned long long>(e.page),
                    to_string(static_cast<MsgType>(e.a)),
                    static_cast<unsigned long long>(e.b));
      break;
    case TraceKind::kMetaWrite:
      std::snprintf(buf, sizeof(buf), "page %llu %s := 0x%llx",
                    static_cast<unsigned long long>(e.page),
                    to_string(static_cast<MetaKind>(e.a)),
                    static_cast<unsigned long long>(e.b));
      break;
    case TraceKind::kFault:
      std::snprintf(buf, sizeof(buf), "page %llu %s fault",
                    static_cast<unsigned long long>(e.page),
                    e.a != 0 ? "write" : "read");
      break;
    default:
      std::snprintf(buf, sizeof(buf), "page %llu ?",
                    static_cast<unsigned long long>(e.page));
      break;
  }
  return buf;
}

std::string TraceRing::dump(const char* prefix,
                            std::size_t max_events) const {
  std::string out;
  const std::vector<TraceEvent> events = snapshot();
  const std::size_t n = events.size();
  const std::size_t first = n > max_events ? n - max_events : 0;
  if (recorded() > n || first > 0) {
    char hdr[64];
    std::snprintf(hdr, sizeof(hdr), "%s... %llu earlier event(s)\n",
                  prefix,
                  static_cast<unsigned long long>(
                      recorded() - (n - first)));
    out += hdr;
  }
  for (std::size_t i = first; i < n; ++i) {
    out += prefix;
    out += format(events[i]);
    out += '\n';
  }
  return out;
}

}  // namespace msvm::svm::proto
