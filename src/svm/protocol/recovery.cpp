#include "svm/protocol/recovery.hpp"

namespace msvm::svm::proto {

RecoveryAction recover_page(ProtocolEnv& env, u64 page,
                            const SharerSet& dead, bool owner_died_dirty,
                            bool has_directory) {
  MetaWord& meta = env.meta();
  ++env.stats().recoveries;
  // Modelled cost of the repair walk itself; the metadata loads and
  // stores below additionally pay their real simulated latencies.
  env.cost_cycles(400);

  // Prune dead sharers: their read-only replicas died with them, and a
  // later write upgrade must not wait for an InvalAck no one will send.
  DirEntry entry(meta.store().sharer_width());
  bool entry_changed = false;
  if (has_directory) {
    entry = meta.dir_entry(page);
    dead.for_each([&](int d) {
      if (entry.sharers.test(d)) {
        entry.sharers.clear(d);
        entry_changed = true;
        ++env.stats().sharers_pruned;
      }
    });
  }

  const u16 owner = meta.owner(page);
  RecoveryAction action =
      entry_changed ? RecoveryAction::kPruned : RecoveryAction::kNone;
  if (owner != kOwnerLost && dead.test(static_cast<int>(owner))) {
    if (owner_died_dirty) {
      // The owner's write-combine buffer died holding a line of this
      // frame: earlier lines of the same burst may already be in DRAM,
      // the last one is gone — the frame must be presumed torn. Poison
      // the owner word; every later access throws SvmDataLossError.
      meta.set_owner(page, kOwnerLost);
      if (has_directory && !entry.none()) {
        entry = DirEntry(meta.store().sharer_width());
        entry_changed = true;
      }
      ++env.stats().pages_lost;
      action = RecoveryAction::kLost;
    } else {
      // Clean death: the write-through L1 published every write the
      // owner ever made except the (empty) WCB, so the DRAM frame is
      // exactly the owner's last released state. Elect the lowest-id
      // surviving sharer — its replica already mirrors that frame — or
      // fall back to the recovering core, which re-reads from DRAM.
      int elected = -1;
      entry.sharers.for_each([&](int s) {
        if (elected < 0) elected = s;
      });
      if (elected >= 0) {
        // The directory never lists the owner; the elected core keeps
        // its read-only mapping (the entry stays Shared), so its next
        // write takes the ordinary upgrade path.
        entry.sharers.clear(elected);
        entry_changed = true;
        ++env.stats().pages_rehomed;
        action = RecoveryAction::kRehomed;
      } else {
        elected = env.self();
        ++env.stats().pages_refetched;
        action = RecoveryAction::kRefetched;
      }
      meta.set_owner(page, static_cast<u16>(elected));
    }
  }
  if (entry_changed) meta.store_dir_entry(page, entry);
  return action;
}

}  // namespace msvm::svm::proto
