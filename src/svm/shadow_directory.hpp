// ShadowDirectory — the always-on (debug-mode) coherence auditor.
//
// A host-side mirror of every protocol transition, fed off the
// observability event bus (zero simulated cost, like every sink). It
// replays the per-page ownership state machine from the kProto* events
// and asserts the protocol's global invariants the per-core state
// machines cannot check locally:
//
//   * writer exclusivity — at most one core in OwnedRW per page at any
//     causal instant (Strong and read-replication; LRC is exempt by
//     design: every core maps pages writable);
//   * sharer subset — a core entering SharedRO is either the page's
//     recorded owner (downgrade) or a member of the directory word it
//     just joined (single-word directories, i.e. cores below 64 — the
//     traced view of wider entries is word 0 only);
//   * recovery-epoch monotonicity — kRecoveryBegin events carry a
//     strictly increasing epoch (each per-page repair runs under that
//     page's transfer lock);
//   * dead-core silence — a fail-stopped core publishes no protocol
//     events after its kCoreKill injection record;
//   * poison finality — a page the integrity layer poisoned (kPageCorrupt
//     with IntegrityAction::kPoisoned) never re-enters OwnedRW or
//     SharedRO: there is no un-poison transition, so any later mapping
//     of that page means some core trusted known-bad data. Needs
//     obs::kCatIntegrity enabled alongside kCatProto (the corruption
//     campaign's --audit flag does).
//
// Events are processed in bus-arrival order, NOT timestamp order:
// arrival order respects simulator causality (a mail cannot be received
// before its deposit, a metadata word cannot be read before the store
// that produced it — all host-ordered), while per-core timestamps are
// mutually unordered across cores. Causal order is exactly what the
// invariants constrain.
//
// The dead-core bookkeeping needs the kCoreKill injection records:
// enable obs::kCatChaos alongside the default kCatProto when auditing a
// run with kill faults (the chaos campaign's --audit flag does).
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/bus.hpp"

namespace msvm::svm {

using u64 = obs::u64;

class ShadowDirectory final : public obs::EventSink {
 public:
  struct Config {
    /// Writer-exclusivity and sharer-subset checks; disable under LRC,
    /// where every core legitimately maps pages writable.
    bool single_writer = true;
    /// Sharer-subset check; disable on chips wider than 64 cores, whose
    /// directory entries spill across words — the traced single-word
    /// view is no longer the whole sharer set.
    bool subset_check = true;
  };

  ShadowDirectory() = default;
  explicit ShadowDirectory(Config cfg) : cfg_(cfg) {}

  void on_event(const obs::Event& e) override;

  u64 events_audited() const { return events_audited_; }
  const std::vector<std::string>& violations() const { return violations_; }
  u64 violation_count() const { return violation_count_; }
  bool clean() const { return violation_count_ == 0; }

  // Integrity bookkeeping replayed off kCatIntegrity events (all zero
  // when the integrity layer is off or the category is not enabled).
  u64 mail_corrupt_drops() const { return mail_corrupt_drops_; }
  u64 page_corruptions() const { return page_corruptions_; }
  u64 pages_poisoned() const { return poisoned_.size(); }
  u64 meta_corruptions() const { return meta_corruptions_; }
  u64 scrub_passes() const { return scrub_passes_; }

  /// Human-readable summary (event count, each violation on a line).
  std::string report() const;

 private:
  struct PageShadow {
    int writer = -1;        // core currently in OwnedRW, -1 when none
    u64 owner_word = 0;     // last written owner-vector value
    bool owner_known = false;
    u64 dir_word = 0;       // last written directory word (word 0 view)
    bool dir_known = false;
  };

  void record_violation(const obs::Event& e, const char* invariant,
                        const std::string& detail);

  Config cfg_;
  std::unordered_map<u64, PageShadow> pages_;
  std::unordered_set<int> dead_;
  std::unordered_set<u64> poisoned_;  // integrity-poisoned pages
  u64 mail_corrupt_drops_ = 0;
  u64 page_corruptions_ = 0;
  u64 meta_corruptions_ = 0;
  u64 scrub_passes_ = 0;
  u64 last_epoch_ = 0;
  u64 events_audited_ = 0;
  u64 violation_count_ = 0;
  std::vector<std::string> violations_;  // capped; the count is exact
  static constexpr std::size_t kMaxStoredViolations = 64;
};

}  // namespace msvm::svm
