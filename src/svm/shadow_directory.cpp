#include "svm/shadow_directory.hpp"

#include <string>

#include "svm/protocol/recovery.hpp"
#include "svm/protocol/types.hpp"

namespace msvm::svm {
namespace {

using obs::Event;
using obs::EventKind;

std::string page_str(u64 page) { return "page " + std::to_string(page); }

}  // namespace

void ShadowDirectory::record_violation(const Event& e, const char* invariant,
                                       const std::string& detail) {
  ++violation_count_;
  if (violations_.size() < kMaxStoredViolations) {
    violations_.push_back("t=" + std::to_string(e.t_ps) +
                          "ps core=" + std::to_string(e.core) + " [" +
                          invariant + "] " + detail);
  }
}

void ShadowDirectory::on_event(const Event& e) {
  ++events_audited_;

  // Dead-core silence. The kill record itself is published by the dying
  // core at its fail-stop instant, so it is checked-then-inserted here
  // rather than flagged.
  if (e.kind == EventKind::kFaultInject &&
      static_cast<obs::InjectKind>(e.a) == obs::InjectKind::kCoreKill) {
    dead_.insert(e.core);
    // A core that died holding OwnedRW never publishes the Invalid
    // transition; release its shadow writer slot so the page's next
    // legitimate owner (elected by recovery) is not a false positive.
    for (auto& [page, shadow] : pages_) {
      if (shadow.writer == e.core) shadow.writer = -1;
    }
    return;
  }
  if (e.core >= 0 && dead_.count(e.core) != 0) {
    record_violation(e, "dead-silence",
                     std::string(obs::to_string(e.kind)) +
                         " published after this core's fail-stop");
    return;
  }

  switch (e.kind) {
    case EventKind::kProtoTransition: {
      if (!cfg_.single_writer) break;
      const u64 page = e.a;
      const auto from = static_cast<proto::PageState>(e.b);
      const auto to = static_cast<proto::PageState>(e.c);
      PageShadow& shadow = pages_[page];
      if (to != proto::PageState::kInvalid && poisoned_.count(page) != 0) {
        record_violation(e, "poison-finality",
                         page_str(page) + ": entering " +
                             proto::to_string(to) +
                             " after the integrity layer poisoned it");
      }
      if (from == proto::PageState::kOwnedRW && shadow.writer == e.core) {
        shadow.writer = -1;
      }
      if (to == proto::PageState::kOwnedRW) {
        if (shadow.writer != -1 && shadow.writer != e.core) {
          record_violation(
              e, "writer-exclusivity",
              page_str(page) + ": entering OwnedRW while core " +
                  std::to_string(shadow.writer) + " still owns it");
        }
        shadow.writer = e.core;
      } else if (to == proto::PageState::kSharedRO) {
        // Subset check needs the single-word directory view: owner
        // exemption covers downgrades and first touches; chips wider
        // than 64 cores spill the entry across words (cfg_.subset_check
        // off), so only single-word directories are checked.
        if (cfg_.subset_check && shadow.dir_known && shadow.owner_known &&
            e.core >= 0 && e.core < 64) {
          const bool is_owner =
              shadow.owner_word == static_cast<u64>(e.core);
          const bool in_dir = (shadow.dir_word >> e.core) & 1;
          if (!is_owner && !in_dir) {
            record_violation(
                e, "sharer-subset",
                page_str(page) + ": entering SharedRO while neither owner (" +
                    std::to_string(shadow.owner_word) +
                    ") nor in directory word " +
                    std::to_string(shadow.dir_word));
          }
        }
      }
      break;
    }

    case EventKind::kProtoMetaWrite: {
      const u64 page = e.a;
      const auto kind = static_cast<proto::MetaKind>(e.b);
      PageShadow& shadow = pages_[page];
      if (kind == proto::MetaKind::kOwner) {
        shadow.owner_word = e.c;
        shadow.owner_known = true;
      } else if (kind == proto::MetaKind::kDirectory) {
        shadow.dir_word = e.c & ~proto::kDirSharedBit;
        shadow.dir_known = true;
      }
      break;
    }

    case EventKind::kMailCorruptDrop:
      ++mail_corrupt_drops_;
      break;

    case EventKind::kPageCorrupt: {
      ++page_corruptions_;
      if (static_cast<obs::IntegrityAction>(e.c) ==
          obs::IntegrityAction::kPoisoned) {
        poisoned_.insert(e.a);
      }
      break;
    }

    case EventKind::kMetaCorrupt:
      ++meta_corruptions_;
      break;

    case EventKind::kScrubPass:
      ++scrub_passes_;
      break;

    case EventKind::kRecoveryBegin: {
      if (e.a <= last_epoch_) {
        record_violation(e, "epoch-monotonicity",
                         "recovery epoch " + std::to_string(e.a) +
                             " after epoch " + std::to_string(last_epoch_) +
                             " (" + page_str(e.c) + ")");
      }
      last_epoch_ = e.a;
      break;
    }

    default:
      break;
  }
}

std::string ShadowDirectory::report() const {
  std::string out = "coherence audit: " + std::to_string(events_audited_) +
                    " events, " + std::to_string(violation_count_) +
                    " violations";
  if (mail_corrupt_drops_ + page_corruptions_ + meta_corruptions_ > 0) {
    out += " (integrity: " + std::to_string(mail_corrupt_drops_) +
           " mail drops, " + std::to_string(page_corruptions_) +
           " page corruptions, " + std::to_string(poisoned_.size()) +
           " poisoned, " + std::to_string(meta_corruptions_) +
           " meta corrections)";
  }
  if (violation_count_ == 0) {
    out += " (clean)\n";
    return out;
  }
  out += "\n";
  for (const std::string& v : violations_) {
    out += "  " + v + "\n";
  }
  if (violation_count_ > violations_.size()) {
    out += "  ... " +
           std::to_string(violation_count_ - violations_.size()) +
           " more (storage capped)\n";
  }
  return out;
}

}  // namespace msvm::svm
