#include "svm/svm_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "sccsim/addrmap.hpp"
#include "sim/crc32c.hpp"
#include "sim/log.hpp"

namespace msvm::svm {

namespace {

using proto::kFrameMask;
using proto::kMigrateBit;

[[noreturn]] void panic(const char* msg) {
  std::fprintf(stderr, "msvm::svm panic: %s\n", msg);
  std::abort();
}

// The bridge converts protocol TraceKind values to obs::EventKind by
// cast; the enumerators are defined to line up.
static_assert(static_cast<int>(proto::TraceKind::kTransition) ==
              static_cast<int>(obs::EventKind::kProtoTransition));
static_assert(static_cast<int>(proto::TraceKind::kMsgSend) ==
              static_cast<int>(obs::EventKind::kProtoMsgSend));
static_assert(static_cast<int>(proto::TraceKind::kMsgRecv) ==
              static_cast<int>(obs::EventKind::kProtoMsgRecv));
static_assert(static_cast<int>(proto::TraceKind::kMetaWrite) ==
              static_cast<int>(obs::EventKind::kProtoMetaWrite));
static_assert(static_cast<int>(proto::TraceKind::kFault) ==
              static_cast<int>(obs::EventKind::kProtoFault));

std::unique_ptr<proto::CoherencePolicy> make_policy(const SvmConfig& cfg) {
  proto::PolicyConfig pcfg;
  pcfg.ack_via_mail = cfg.ack_via_mail;
  pcfg.ownership_software_cycles = cfg.ownership_software_cycles;
  pcfg.sabotage = cfg.sabotage;
  if (cfg.model == Model::kStrong) {
    if (cfg.read_replication) {
      return std::make_unique<proto::ReadReplicationPolicy>(pcfg);
    }
    return std::make_unique<proto::StrongOwnerPolicy>(pcfg);
  }
  return std::make_unique<proto::LrcPolicy>(pcfg);
}

/// Accumulates the virtual time spent inside the fault handler (protocol
/// waits included) into the faulting core's stall telemetry; the RAII
/// form also covers the SvmProtectionError throw.
class FaultStallScope {
 public:
  explicit FaultStallScope(scc::Core& core)
      : core_(core), t0_(core.now()) {}
  ~FaultStallScope() {
    core_.counters().svm_fault_stall_ps += core_.now() - t0_;
  }
  FaultStallScope(const FaultStallScope&) = delete;
  FaultStallScope& operator=(const FaultStallScope&) = delete;

 private:
  scc::Core& core_;
  TimePs t0_;
};

/// Publishes a begin/end event pair around a scope; the RAII end also
/// covers exceptional exits (SvmProtectionError, watchdog-park unwind),
/// so a Chrome-trace slice is always closed. Constructed only when the
/// relevant category is enabled.
class SpanScope {
 public:
  SpanScope(scc::Core& core, obs::EventKind begin, obs::EventKind end,
            u64 a, u64 b, u64 c)
      : core_(core), end_(end), a_(a), b_(b), c_(c) {
    core_.chip().bus().publish(
        obs::Event{core_.now(), a_, b_, c_, begin, core_.id()});
  }
  ~SpanScope() {
    core_.chip().bus().publish(
        obs::Event{core_.now(), a_, b_, c_, end_, core_.id()});
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  scc::Core& core_;
  obs::EventKind end_;
  u64 a_, b_, c_;
};

}  // namespace

SvmRuntime::SvmRuntime(kernel::Kernel& kernel, mbox::MailboxSystem& mbox,
                       SvmDomain& domain)
    : kernel_(kernel),
      mbox_(mbox),
      domain_(domain),
      core_(kernel.core()),
      dir_width_(domain.chip().topology().max_cores()),
      meta_word_(*this, this),
      policy_(make_policy(domain.config())),
      channel_(mbox) {
  // Flat per-page lookup tables: precompute the simulated-memory address
  // of every metadata word this domain can touch, so the MetaStore hot
  // path is one vector index instead of layout arithmetic per access.
  const u32 page_bytes = core_.chip().config().page_bytes;
  while ((u32{1} << page_shift_) < page_bytes) ++page_shift_;
  page_index_base_ = domain_.page_index_base();
  const u64 n = domain_.num_svm_pages();
  owner_paddr_.resize(n);
  scratch_paddr_.resize(n);
  if (domain_.config().read_replication) sharer_paddr_.resize(n);
  for (u64 i = 0; i < n; ++i) {
    const u64 page = page_index_base_ + i;
    owner_paddr_[i] = domain_.owner_entry_paddr(page);
    scratch_paddr_[i] = domain_.scratchpad_entry_paddr(page);
    if (!sharer_paddr_.empty()) {
      sharer_paddr_[i] = domain_.sharer_entry_paddr(page);
    }
  }
  region_id_by_page_.assign(n, kNoRegion);

  kernel_.set_svm_fault_handler(
      [this](u64 vaddr, bool is_write) { handle_fault(vaddr, is_write); });
  mbox_.set_handler(kMailOwnershipReq,
                    [this](const mbox::Mail& m) { dispatch_mail(m); });
  mbox_.set_handler(kMailReadReq,
                    [this](const mbox::Mail& m) { dispatch_mail(m); });
  mbox_.set_handler(kMailInval,
                    [this](const mbox::Mail& m) { dispatch_mail(m); });
  // ACKs pass through the dedup filter before reaching the inbox that
  // wait_match consumes. Requests are deliberately NOT deduplicated: the
  // serve paths are idempotent (a stale or duplicated request is simply
  // re-answered), whereas a duplicated InvalAck would falsely satisfy
  // one of the N outstanding multicast waits.
  mbox_.set_handler(kMailOwnershipAck,
                    [this](const mbox::Mail& m) { on_ack_mail(m); });
  mbox_.set_handler(kMailReadAck,
                    [this](const mbox::Mail& m) { on_ack_mail(m); });
  mbox_.set_handler(kMailInvalAck,
                    [this](const mbox::Mail& m) { on_ack_mail(m); });

  // Integrity layer: latched once — the plan is immutable for the run,
  // and a latched bool keeps the flag-off fast paths branch-predictable.
  const sim::FaultPlan& plan = core_.chip().faults().plan();
  integrity_ = plan.integrity_armed();
  if (plan.scrub_ps > 0) {
    // Background scrubber: each member walks its own slice of the seal
    // vector (interleaved cursors), so the domain is covered without any
    // cross-core coordination and without double-verifying pages.
    scrub_period_ps_ = plan.scrub_ps;
    next_scrub_ps_ = plan.scrub_ps;
    const std::vector<int>& members = domain_.members();
    scrub_stride_ = std::max<int>(1, static_cast<int>(members.size()));
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i] == core_.id()) scrub_rank_ = static_cast<int>(i);
    }
    scrub_cursor_ = static_cast<u64>(scrub_rank_);
    kernel_.add_timer_handler([this] { scrub_tick(); });
  }
}

void SvmRuntime::trace(const proto::TraceEvent& e) {
  // Stamp with this core's virtual clock and publish; the bus keeps the
  // event in this core's always-on ring and fans it out to any attached
  // sinks (trace collector, heatmap).
  core_.chip().bus().publish(obs::Event{
      core_.now(), e.page, static_cast<u64>(e.a), static_cast<u64>(e.b),
      static_cast<obs::EventKind>(e.kind), core_.id()});
}

const obs::EventRing& SvmRuntime::trace_ring() const {
  return core_.chip().bus().ring(core_.id());
}

std::string proto_trace_dump(const obs::EventRing& ring,
                             const char* prefix, std::size_t max_events) {
  const std::vector<obs::Event> events = ring.snapshot();
  const std::size_t n = events.size();
  const std::size_t first = n > max_events ? n - max_events : 0;
  std::string out;
  if (ring.recorded() > n || first > 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "... %llu earlier event(s)\n",
                  static_cast<unsigned long long>(ring.recorded() -
                                                  (n - first)));
    out += prefix;
    out += buf;
  }
  for (std::size_t i = first; i < n; ++i) {
    const obs::Event& e = events[i];
    const proto::TraceEvent te{static_cast<proto::TraceKind>(e.kind),
                               e.a, e.b, e.c};
    out += prefix;
    out += proto::to_string(te);
    out += '\n';
  }
  return out;
}

u64 SvmRuntime::page_index_of(u64 vaddr) const {
  return (vaddr - scc::kSvmVBase) >> page_shift_;
}

u64 SvmRuntime::page_vaddr_of(u64 page_idx) const {
  return scc::kSvmVBase + (page_idx << page_shift_);
}

void SvmRuntime::add_region(u64 base, u64 pages) {
  assert(regions_.size() < kNoRegion && "region id space exhausted");
  const u16 id = static_cast<u16>(regions_.size());
  regions_.push_back(RegionAttrs{base, pages, false});
  const u64 first = page_index_of(base) - page_index_base_;
  assert(first + pages <= region_id_by_page_.size() &&
         "region outside this domain's page share");
  for (u64 i = 0; i < pages; ++i) region_id_by_page_[first + i] = id;
}

SvmRuntime::RegionAttrs* SvmRuntime::region_of(u64 vaddr) {
  if (vaddr < scc::kSvmVBase) return nullptr;
  const u64 rel = page_index_of(vaddr) - page_index_base_;
  if (rel >= region_id_by_page_.size()) return nullptr;
  const u16 id = region_id_by_page_[rel];
  return id == kNoRegion ? nullptr : &regions_[id];
}

void SvmRuntime::append_hang_report(std::string& out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "core %d svm: acquires=%llu serves=%llu forwards=%llu "
                "retransmits=%llu dup_acks_dropped=%llu\n",
                core_.id(),
                static_cast<unsigned long long>(stats_.ownership_acquires),
                static_cast<unsigned long long>(stats_.ownership_serves),
                static_cast<unsigned long long>(stats_.ownership_forwards),
                static_cast<unsigned long long>(stats_.retransmits),
                static_cast<unsigned long long>(stats_.dup_acks_dropped));
  out += buf;
  if (pending_) {
    // The owner word is read host-side (no simulated cost; the sim is
    // already declared hung) so the report can say who the directory
    // thinks owns the contended page.
    u16 owner_word = 0;
    core_.chip().memory().read(domain_.owner_entry_paddr(pending_->page),
                               &owner_word, sizeof(owner_word));
    std::snprintf(
        buf, sizeof(buf),
        "core %d svm: in-flight request type=0x%x page=%llu seq=%u "
        "awaiting=%d (word0=0x%llx) owner_word=%u\n",
        core_.id(), pending_->mail.type,
        static_cast<unsigned long long>(pending_->page), pending_->seq,
        pending_->awaiting.count(),
        static_cast<unsigned long long>(pending_->awaiting.word(0)),
        owner_word);
    out += buf;
  }
  out += proto_trace_dump(trace_ring(), "  svm-trace: ");
}

// ---------------------------------------------------------------------------
// mail dispatch

void SvmRuntime::dispatch_mail(const mbox::Mail& mail) {
  const proto::Msg msg{static_cast<proto::MsgType>(mail.type), mail.p0,
                       static_cast<int>(mail.p1)};
  trace(proto::TraceEvent{proto::TraceKind::kMsgRecv, msg.page,
                          static_cast<u64>(msg.type),
                          static_cast<u64>(msg.requester)});
  std::optional<SpanScope> serve_span;
  if (core_.chip().bus().enabled(obs::kCatSvm)) {
    serve_span.emplace(core_, obs::EventKind::kServeBegin,
                       obs::EventKind::kServeEnd, msg.page,
                       static_cast<u64>(mail.type), mail.arg16);
  }
  // While serving this request, every mail we emit for it — the ACK, or
  // a forward along the ownership chain — echoes its sequence number, so
  // the originator's bounded wait matches the eventual ACK no matter how
  // many hops served it. Save/restore keeps nesting safe (a serve may
  // stall in send() and drain further requests).
  struct SeqScope {
    u16& slot;
    u16 saved;
    ~SeqScope() { slot = saved; }
  } seq_scope{serving_seq_, serving_seq_};
  serving_seq_ = mail.arg16;
  policy_->on_message(msg, *this);
}

// ---------------------------------------------------------------------------
// fault path

void SvmRuntime::handle_fault(u64 vaddr, bool is_write) {
  if (is_write) {
    ++core_.counters().svm_write_faults;
  } else {
    ++core_.counters().svm_read_faults;
  }
  FaultStallScope stall(core_);
  const u64 page_idx = page_index_of(vaddr);
  trace(proto::TraceEvent{proto::TraceKind::kFault, page_idx,
                          is_write ? u64{1} : u64{0}, 0});
  std::optional<SpanScope> fault_span;
  if (core_.chip().bus().enabled(obs::kCatSvm)) {
    fault_span.emplace(core_, obs::EventKind::kFaultBegin,
                       obs::EventKind::kFaultEnd, page_idx,
                       is_write ? u64{1} : u64{0}, 0);
  }
  RegionAttrs* region = region_of(vaddr);
  if (region == nullptr) {
    std::fprintf(stderr,
                 "svm (core %d): fault at 0x%llx outside any region\n",
                 core_.id(), static_cast<unsigned long long>(vaddr));
    std::abort();
  }
  if (region->readonly && is_write) {
    // The debugging aid of Section 6.4: surface the faulting core's
    // recent protocol history alongside the error.
    std::fprintf(stderr,
                 "svm (core %d): write to read-only region at 0x%llx; "
                 "last protocol events:\n%s",
                 core_.id(), static_cast<unsigned long long>(vaddr),
                 proto_trace_dump(trace_ring(), "  svm-trace: ").c_str());
    throw SvmProtectionError(vaddr);
  }

  const scc::Pte* pte = core_.pagetable().find(vaddr);
  try {
    if (pte == nullptr || !pte->present) {
      mapping_fault(vaddr, page_idx, is_write);
      return;
    }
    // Present but insufficient permission: a strong-model write to a page
    // currently owned elsewhere would have been unmapped by the transfer
    // (or, under read replication, to a page this core only holds a
    // read-only replica of — the write upgrade). The policy re-reads the
    // frame number under its own serialisation.
    if (is_write && !pte->writable &&
        domain_.config().model == Model::kStrong) {
      policy_->fault(page_idx, /*frame=*/0, /*is_write=*/true, *this);
      return;
    }
  } catch (const proto::SvmDataLossError&) {
    // The typed loss unwinds through protocol flows that are not
    // exception-aware; a transfer lock still held here would wedge every
    // other core contending for its stripe.
    release_held_transfer_locks();
    throw;
  }
  panic("unresolvable SVM fault");
}

void SvmRuntime::mapping_fault(u64 vaddr, u64 page_idx, bool is_write) {
  core_.compute_cycles(domain_.config().map_software_cycles);
  const u64 page_base =
      vaddr & ~(u64{core_.chip().config().page_bytes} - 1);
  RegionAttrs* region = region_of(vaddr);

  const int lock_reg = domain_.scratchpad_lock_reg(page_idx);
  kernel::SpinWaitOpts lock_opts;
  lock_opts.site = "svm.scratchpad_lock";
  lock_opts.site_arg = page_idx;
  kernel::spin_wait(
      core_,
      [&] {
        if (core_.tas_try_acquire(lock_reg)) return true;
        maybe_break_dead_lock(lock_reg);
        return false;
      },
      lock_opts);
  u16 entry = meta_word_.scratchpad(page_idx);

  if ((entry & kFrameMask) == 0) {
    // First touch chip-wide: allocate near our memory controller, zero it
    // and publish the 16-bit representation.
    ++stats_.first_touch_allocs;
    core_.compute_cycles(domain_.config().first_touch_software_cycles);
    const u16 frame =
        alloc_frame_near(core_.chip().topology().nearest_mc(core_.id()));
    zero_frame(frame);
    meta_word_.set_scratchpad(page_idx, frame);
    meta_word_.set_owner(page_idx, static_cast<u16>(core_.id()));
    core_.tas_release(lock_reg);
    if (region->readonly) {
      map_readonly(page_base, frame);
    } else {
      install_mapping(page_base, frame, /*writable=*/true);
    }
    policy_->note_mapped(page_idx, !region->readonly, *this);
    return;
  }

  if ((entry & kMigrateBit) != 0) {
    // Affinity-on-next-touch: we are the first toucher after the mark —
    // move the frame next to our own controller.
    ++stats_.migrations;
    if (integrity_) {
      // The old frame may carry a sealed-and-flipped image; copying it
      // into a writable mapping without a check would be the one silent-
      // wrong path left. Verify while the scratchpad lock is held — and
      // release it on the typed throw, or the poison wedges every later
      // toucher in the TAS spin instead of faulting them.
      try {
        page_verify(page_idx);
      } catch (...) {
        core_.tas_release(lock_reg);
        throw;
      }
    }
    const u16 old_frame = entry & kFrameMask;
    const int my_mc = core_.chip().topology().nearest_mc(core_.id());
    const u16 new_frame = alloc_frame_near(my_mc);
    const u32 line = core_.chip().config().line_bytes;
    const u32 page = core_.chip().config().page_bytes;
    u8 buf[64];
    for (u32 off = 0; off < page; off += line) {
      core_.pread(domain_.frame_paddr(old_frame) + off, buf, line,
                  scc::MemPolicy::kUncached);
      core_.pwrite(domain_.frame_paddr(new_frame) + off, buf, line,
                   scc::MemPolicy::kUncached);
    }
    const scc::PhysTarget old_target =
        core_.chip().map().decode(domain_.frame_paddr(old_frame));
    domain_.free_frame(old_target.owner, old_frame);
    meta_word_.set_scratchpad(page_idx, new_frame);
    meta_word_.set_owner(page_idx, static_cast<u16>(core_.id()));
    core_.tas_release(lock_reg);
    install_mapping(page_base, new_frame, /*writable=*/true);
    policy_->note_mapped(page_idx, /*writable=*/true, *this);
    return;
  }

  // Frame already exists: plain (re)mapping.
  ++stats_.map_faults;
  const u16 frame = entry & kFrameMask;
  core_.tas_release(lock_reg);
  if (region->readonly) {
    map_readonly(page_base, frame);
    policy_->note_mapped(page_idx, /*writable=*/false, *this);
    return;
  }
  // Model-dependent tail: Strong retrieves the access permission from
  // the page owner, read replication joins the sharer set on reads, LRC
  // simply remaps writable.
  policy_->fault(page_idx, frame, is_write, *this);
}

// ---------------------------------------------------------------------------
// frame allocation

u16 SvmRuntime::alloc_frame_near(int preferred_mc) {
  // Each core draws from a private *batch* of contiguous frames and only
  // refills the batch from the shared per-MC counter. Besides cutting
  // counter traffic, this keeps one core's consecutively-touched pages
  // physically contiguous: interleaving allocations from several cores
  // would give every core's data an 8+ KiB physical stride, which maps
  // whole row-streams onto the same L1 sets (the page-coloring problem).
  const u16 freed = domain_.take_free_frame(preferred_mc);
  if (freed != 0) return freed;
  if (frame_batch_next_ < frame_batch_end_) {
    core_.compute_cycles(20);
    return frame_batch_next_++;
  }
  constexpr u16 kBatchFrames = 32;  // 128 KiB of contiguity
  // Past the SCC die the fixed 32-frame batch over-reserves: N cores
  // stranding 31 frames each can exhaust the pools outright. Fair-share
  // the batch against the total frame budget instead; at <= 48 cores the
  // historical batch (and thus frame placement) is kept exactly.
  u64 batch = kBatchFrames;
  const int ncores = core_.chip().config().num_cores;
  if (ncores > 48) {
    const u64 fair = domain_.total_frames() / (2 * static_cast<u64>(ncores));
    batch = std::clamp<u64>(fair, 1, kBatchFrames);
  }
  const int nmc = core_.chip().topology().num_mem_controllers();
  for (int k = 0; k < nmc; ++k) {
    const int mc = (preferred_mc + k) % nmc;
    const auto [lo, hi] = domain_.frame_range_of_mc(mc);
    (void)lo;
    const u64 next = core_.pload<u64>(domain_.mc_counter_paddr(mc),
                                      scc::MemPolicy::kUncached);
    if (next < hi) {
      const u64 take = std::min<u64>(batch, hi - next);
      core_.pstore<u64>(domain_.mc_counter_paddr(mc), next + take,
                        scc::MemPolicy::kUncached);
      frame_batch_next_ = static_cast<u16>(next);
      frame_batch_end_ = static_cast<u16>(next + take);
      return frame_batch_next_++;
    }
    const u16 fallback = domain_.take_free_frame(mc);
    if (fallback != 0) return fallback;
  }
  panic("out of shared SVM memory (all frame pools exhausted)");
}

void SvmRuntime::zero_frame(u16 frame_no) {
  const u64 base = domain_.frame_paddr(frame_no);
  const u32 line = core_.chip().config().line_bytes;
  const u32 page = core_.chip().config().page_bytes;
  const u8 zeros[64] = {0};
  for (u32 off = 0; off < page; off += line) {
    core_.pwrite(base + off, zeros, line, scc::MemPolicy::kMpbt);
  }
  core_.flush_wcb();
}

// ---------------------------------------------------------------------------
// mappings

void SvmRuntime::install_mapping(u64 page_vaddr, u16 frame_no,
                                 bool writable) {
  scc::Pte pte;
  pte.frame_paddr = domain_.frame_paddr(frame_no);
  pte.present = true;
  pte.writable = writable;
  pte.mpbt = true;  // SVM pages are MPBT-typed: L1 WT + WCB, no L2
  pte.l2_enable = false;
  core_.pagetable().map(page_vaddr, pte);
  core_.compute_cycles(80);
  if (integrity_ && writable) {
    // A writable mapping ends the frame's quiescence: the seal no longer
    // describes what DRAM will hold, so retire it (covers the ownership
    // fast paths, migration's frame swap, and LRC's free remaps alike).
    const u64 rel = page_index_of(page_vaddr) - page_index_base_;
    if (rel < domain_.seals.size()) domain_.seals[rel].valid = false;
  }
}

void SvmRuntime::map_readonly(u64 page_vaddr, u16 frame_no) {
  scc::Pte pte;
  pte.frame_paddr = domain_.frame_paddr(frame_no);
  pte.present = true;
  pte.writable = false;
  pte.mpbt = false;  // read-only regions may use the L2 (Section 6.4)
  pte.l2_enable = true;
  core_.pagetable().map(page_vaddr, pte);
  core_.compute_cycles(80);
}

// ---------------------------------------------------------------------------
// proto::ProtocolEnv — transport

namespace {

bool is_request_type(u8 type) {
  return type == kMailOwnershipReq || type == kMailReadReq ||
         type == kMailInval;
}

u8 ack_of(u8 request_type) {
  // Req/Ack pairs are adjacent values (0x20/0x21, 0x22/0x23, 0x24/0x25).
  return static_cast<u8>(request_type + 1);
}

// Default retransmission schedule: far above any fault-free protocol
// wait (which is bounded by the peers' interrupt/poll latency, well
// under a timer period), so the clean path never observes a timeout.
constexpr TimePs kRetryBasePs = 50 * kPsPerMs;
constexpr TimePs kRetryCapPs = 400 * kPsPerMs;

}  // namespace

void SvmRuntime::send(int dest, const proto::Msg& m) {
  trace(proto::TraceEvent{proto::TraceKind::kMsgSend, m.page,
                          static_cast<u64>(m.type),
                          static_cast<u64>(dest)});
  mbox::Mail mail;
  mail.type = static_cast<u8>(m.type);
  mail.p0 = m.page;
  mail.p1 = static_cast<u64>(m.requester);
  if (is_request_type(mail.type) && m.requester == self()) {
    // A fresh request this core originates: stamp a new sequence number
    // and remember it for bounded-wait retransmission.
    mail.arg16 = channel_.next_seq();
    proto::SharerSet awaiting(dir_width_);
    awaiting.set(dest);
    pending_ = PendingRequest{mail, awaiting, m.page, mail.arg16,
                              ack_of(mail.type)};
  } else {
    // Forward of someone else's request, or an ACK: echo the sequence
    // number of the request being served so the chain stays matched.
    mail.arg16 = serving_seq_;
  }
  mbox_.send(dest, mail);
}

int SvmRuntime::multicast(const proto::SharerSet& dests,
                          const proto::Msg& m) {
  trace(proto::TraceEvent{proto::TraceKind::kMsgSend, m.page,
                          static_cast<u64>(m.type), dests.word(0)});
  mbox::Mail mail;
  mail.type = static_cast<u8>(m.type);
  mail.p0 = m.page;
  mail.p1 = static_cast<u64>(m.requester);
  mail.arg16 = channel_.next_seq();
  proto::SharerSet awaiting = dests;
  awaiting.clear(self());
  std::vector<int> list;
  list.reserve(static_cast<std::size_t>(awaiting.count()));
  awaiting.for_each([&list](int dest) { list.push_back(dest); });
  pending_ = PendingRequest{mail, awaiting, m.page, mail.arg16,
                            ack_of(mail.type)};
  return mbox_.multicast(list, mail);
}

void SvmRuntime::retransmit_pending() {
  if (!pending_) return;
  pending_->awaiting.for_each([this](int dest) {
    if (channel_.retransmit(dest, pending_->mail)) {
      ++stats_.retransmits;
      trace(proto::TraceEvent{proto::TraceKind::kMsgSend, pending_->page,
                              static_cast<u64>(pending_->mail.type),
                              static_cast<u64>(dest)});
      obs::EventBus& bus = core_.chip().bus();
      if (bus.enabled(obs::kCatMail)) {
        bus.publish(obs::Event{
            core_.now(), static_cast<u64>(dest),
            obs::pack_mail(pending_->mail.type, pending_->seq,
                           static_cast<obs::u8>(core_.id())),
            pending_->page, obs::EventKind::kMailRetransmit, core_.id()});
      }
      MSVM_LOG_INFO("core %d: retransmit type=0x%x page=%llu seq=%u -> %d",
                    core_.id(), pending_->mail.type,
                    static_cast<unsigned long long>(pending_->page),
                    pending_->seq, dest);
    }
  });
}

void SvmRuntime::on_ack_mail(const mbox::Mail& mail) {
  switch (channel_.admit(mbox::ack_key(mail))) {
    case AckRing::Admit::kDuplicate:
      ++stats_.dup_acks_dropped;
      MSVM_LOG_INFO("core %d: dropped duplicate ack type=0x%x page=%llu "
                    "seq=%u from %d",
                    core_.id(), mail.type,
                    static_cast<unsigned long long>(mail.p0), mail.arg16,
                    mail.sender);
      return;
    case AckRing::Admit::kFreshEvicting:
      ++stats_.acks_evicted;  // ring capacity hit
      break;
    case AckRing::Admit::kFresh:
      break;
  }
  mbox_.enqueue_inbox(mail);
}

proto::Msg SvmRuntime::wait_match(proto::MsgType type, u64 page) {
  const u8 mail_type = static_cast<u8>(type);
  sim::BlockScope scope(core_.chip().scheduler().current(),
                        "svm.wait_match", static_cast<u64>(mail_type),
                        page);
  mbox::Mail mail;
  const bool bounded = pending_ && pending_->ack_type == mail_type &&
                       pending_->page == page;
  if (!bounded) {
    // No matching in-flight request of our own (e.g. harness-driven or
    // legacy paths): the historical unbounded wait.
    mail = mbox_.recv_match([mail_type, page](const mbox::Mail& m) {
      return m.type == mail_type && m.p0 == page;
    });
  } else {
    // Bounded wait: only an ACK echoing our request's sequence number
    // counts, so stray ACKs from abandoned earlier rounds rot in the
    // inbox instead of satisfying this wait. On timeout, retransmit
    // idempotently with exponential backoff.
    const u16 seq = pending_->seq;
    const auto pred = [mail_type, page, seq](const mbox::Mail& m) {
      return m.type == mail_type && m.p0 == page && m.arg16 == seq;
    };
    const TimePs plan_retry = core_.chip().faults().plan().retry_ps;
    const TimePs base = plan_retry > 0 ? plan_retry : kRetryBasePs;
    const TimePs cap = plan_retry > 0 ? plan_retry * 8 : kRetryCapPs;
    TimePs timeout = base;
    const TimePs t0 = core_.now();
    for (;;) {
      const auto m = mbox_.recv_match_until(pred, core_.now() + timeout);
      if (m) {
        mail = *m;
        break;
      }
      if (core_.chip().watchdog().check(core_.now(), t0, "svm.wait_match",
                                        core_.id())) {
        core_.chip().scheduler().block();  // parked until teardown
      }
      // Failure detection: an ACK that will never come because the peer
      // fail-stopped. Repair the page (we hold its transfer lock) and
      // satisfy the wait with a synthesized ACK — the acquire loops all
      // re-verify owner/directory state after wait_match returns, so a
      // synthesized ACK is no stronger a claim than a real one.
      if (core_.chip().dead_count() > 0 && core_.chip().lease_enabled()) {
        const std::optional<mbox::Mail> synth = try_dead_peer_recovery();
        if (synth) {
          mail = *synth;
          break;
        }
      }
      retransmit_pending();
      timeout = std::min<TimePs>(timeout * 2, cap);
    }
    if (mail_type == kMailInvalAck) {
      // Multicast wait: retire this responder; keep the entry while
      // other sharers still owe their ACK.
      if (mail.sender >= 0) pending_->awaiting.clear(mail.sender);
      if (pending_->awaiting.none()) pending_.reset();
    } else {
      pending_.reset();
    }
  }
  const proto::Msg msg{type, mail.p0, static_cast<int>(mail.p1)};
  trace(proto::TraceEvent{proto::TraceKind::kMsgRecv, msg.page,
                          static_cast<u64>(msg.type),
                          static_cast<u64>(msg.requester)});
  return msg;
}

void SvmRuntime::yield() { core_.yield(); }

// ---------------------------------------------------------------------------
// proto::ProtocolEnv — local page / cache actions

void SvmRuntime::flush_wcb() { core_.flush_wcb(); }

void SvmRuntime::cl1invmb() { core_.cl1invmb(); }

void SvmRuntime::map_page(u64 page, u16 frame, bool writable) {
  install_mapping(page_vaddr_of(page), frame, writable);
}

void SvmRuntime::unmap_page(u64 page) {
  core_.pagetable().update(page_vaddr_of(page), [](scc::Pte& p) {
    p.present = false;
    p.writable = false;
  });
}

void SvmRuntime::downgrade_page(u64 page) {
  core_.pagetable().update(page_vaddr_of(page),
                           [](scc::Pte& p) { p.writable = false; });
}

// ---------------------------------------------------------------------------
// proto::ProtocolEnv — serialisation, cost, diagnostics

void SvmRuntime::transfer_lock(u64 page) {
  const int treg = domain_.transfer_lock_reg(page);
  kernel::SpinWaitOpts opts;
  opts.site = "svm.transfer_lock";
  opts.site_arg = page;
  opts.warn_every = 100000;
  // Named local: opts.on_stuck is a non-owning FnRef (see fnref.hpp).
  const auto on_stuck = [this, treg, page](u64 /*spins*/) {
    MSVM_LOG_ERROR(
        "core %d: stuck spinning on transfer lock %d for page %llu "
        "(holder=core %d, holder_page=%llu) t=%.3fms",
        core_.id(), treg, static_cast<unsigned long long>(page),
        domain_.debug_lock_holder_[static_cast<std::size_t>(treg)],
        static_cast<unsigned long long>(
            domain_.debug_lock_page_[static_cast<std::size_t>(treg)]),
        ps_to_ms(core_.now()));
  };
  opts.on_stuck = on_stuck;
  kernel::spin_wait(core_,
                    [&] {
                      if (core_.tas_try_acquire(treg)) return true;
                      maybe_break_dead_lock(treg);
                      return false;
                    },
                    opts);
  domain_.debug_lock_holder_[static_cast<std::size_t>(treg)] = core_.id();
  domain_.debug_lock_page_[static_cast<std::size_t>(treg)] = page;
}

void SvmRuntime::transfer_unlock(u64 page) {
  const int treg = domain_.transfer_lock_reg(page);
  domain_.debug_lock_holder_[static_cast<std::size_t>(treg)] = -1;
  core_.tas_release(treg);
}

// ---------------------------------------------------------------------------
// fail-stop recovery (repair rules in svm/protocol/recovery.hpp)

bool SvmRuntime::dead_owner_died_dirty(u64 page) {
  scc::Chip& chip = core_.chip();
  const u16 owner = meta_word_.owner(page);
  if (owner >= static_cast<u16>(chip.config().num_cores)) return false;
  if (!chip.core_dead(owner) || !chip.dead_wcb_valid(owner)) return false;
  // The write-through L1 publishes every store except the single-line
  // WCB, so the only possible unflushed data is the line the owner's WCB
  // held at death — the page is dirty iff that line is in its frame.
  const u64 base = domain_.frame_paddr(meta_word_.frame_of(page));
  const u64 line = chip.dead_wcb_line(owner);
  return line >= base && line < base + chip.config().page_bytes;
}

proto::RecoveryAction SvmRuntime::run_page_recovery(u64 page,
                                                    int dead_core) {
  scc::Chip& chip = core_.chip();
  // Ground truth for *who* is dead comes from the chip; the lease only
  // gated *when* the survivors were allowed to act on it.
  proto::SharerSet dead(dir_width_);
  for (int i = 0; i < chip.config().num_cores; ++i) {
    if (chip.core_dead(i)) dead.set(i);
  }
  const bool dirty = dead_owner_died_dirty(page);
  const u64 epoch = ++domain_.recovery_epoch;
  obs::EventBus& bus = chip.bus();
  bus.publish(obs::Event{core_.now(), epoch, dead.word(0), page,
                         obs::EventKind::kRecoveryBegin, core_.id()});
  const proto::RecoveryAction action = proto::recover_page(
      *this, page, dead, dirty, domain_.config().read_replication);
  bus.publish(obs::Event{core_.now(), epoch, static_cast<u64>(action),
                         page, obs::EventKind::kRecoveryEnd, core_.id()});
  MSVM_LOG_INFO(
      "core %d: recovered page %llu after death of core %d: %s "
      "(epoch %llu) t=%.3fms",
      core_.id(), static_cast<unsigned long long>(page), dead_core,
      proto::to_string(action), static_cast<unsigned long long>(epoch),
      ps_to_ms(core_.now()));
  return action;
}

std::optional<mbox::Mail> SvmRuntime::try_dead_peer_recovery() {
  scc::Chip& chip = core_.chip();
  const TimePs now = core_.now();
  const u64 page = pending_->page;
  int dead = -1;
  pending_->awaiting.for_each([&](int p) {
    if (dead < 0 && chip.core_dead(p) && chip.peer_presumed_dead(p, now)) {
      dead = p;
    }
  });
  if (dead < 0) {
    // The peer we mailed is alive, but it may have forwarded our request
    // along an ownership chain whose recorded tail died.
    const u16 owner = meta_word_.owner(page);
    if (owner == kOwnerLost) {
      // Someone else already repaired this page and declared it lost.
      pending_.reset();
      throw SvmDataLossError(page, kOwnerLost);
    }
    if (owner < static_cast<u16>(chip.config().num_cores) &&
        chip.core_dead(owner) && chip.peer_presumed_dead(owner, now)) {
      dead = static_cast<int>(owner);
    }
    if (dead < 0) return std::nullopt;
  }
  if (run_page_recovery(page, dead) == proto::RecoveryAction::kLost) {
    pending_.reset();
    throw SvmDataLossError(page, dead);
  }
  // Synthesize the dead peer's ACK. wait_match's caller re-verifies the
  // repaired metadata, exactly as it would after a real ACK, and the
  // multicast retire logic in wait_match sees `sender` = the dead core.
  mbox::Mail synth = pending_->mail;
  synth.type = pending_->ack_type;
  synth.arg16 = pending_->seq;
  synth.p0 = page;
  synth.p1 = 0;
  synth.sender = dead;
  return synth;
}

void SvmRuntime::maybe_break_dead_lock(int reg) {
  scc::Chip& chip = core_.chip();
  if (chip.dead_count() == 0 || !chip.lease_enabled()) return;
  const int holder = chip.tas_owner(reg);
  if (holder < 0 || !chip.core_dead(holder) ||
      !chip.peer_presumed_dead(holder, core_.now())) {
    return;
  }
  // The holder fail-stopped inside its critical section: force the
  // register open. Several survivors may race here — the release is
  // idempotent and the next tas_try_acquire picks a single winner.
  MSVM_LOG_INFO("core %d: breaking TAS lock %d held by dead core %d "
                "t=%.3fms",
                core_.id(), reg, holder, ps_to_ms(core_.now()));
  chip.clear_tas_owner(reg);
  chip.memory().tas_write_release(reg);
  const auto r = static_cast<std::size_t>(reg);
  if (r < domain_.debug_lock_holder_.size() &&
      domain_.debug_lock_holder_[r] == holder) {
    domain_.debug_lock_holder_[r] = -1;
  }
  ++stats_.locks_broken;
  core_.compute_cycles(200);  // modelled detection/repair cost
}

void SvmRuntime::release_held_transfer_locks() {
  for (std::size_t r = 0; r < domain_.debug_lock_holder_.size(); ++r) {
    if (domain_.debug_lock_holder_[r] == core_.id()) {
      domain_.debug_lock_holder_[r] = -1;
      core_.tas_release(static_cast<int>(r));
    }
  }
}

void SvmRuntime::irq_off() { core_.irq_disable(); }

void SvmRuntime::irq_on() { core_.irq_enable(); }

void SvmRuntime::cost_cycles(u32 cycles) { core_.compute_cycles(cycles); }

void SvmRuntime::hw_count(proto::HwEvent event, u64 delta) {
  switch (event) {
    case proto::HwEvent::kMailRoundtrip:
      core_.counters().svm_mail_roundtrips += delta;
      break;
    case proto::HwEvent::kInvalSent:
      core_.counters().svm_inval_sent += delta;
      break;
    case proto::HwEvent::kInvalRecv:
      core_.counters().svm_inval_recv += delta;
      break;
  }
}

void SvmRuntime::warn(const char* message) {
  MSVM_LOG_ERROR("core %d: %s t=%.3fms", core_.id(), message,
                 ps_to_ms(core_.now()));
}

// ---------------------------------------------------------------------------
// integrity layer — generation-stamped frame seals, snoop repair,
// detect-or-die poisoning, and the background scrubber. Every function
// here returns immediately unless the fault plan armed the layer, so a
// flag-off run is byte-identical to one built before this code existed.

namespace {

// Modelled software costs (core cycles). The CRC is a table-driven
// byte-at-a-time loop (~1 cycle/byte on the P54C-class core); a repair
// line costs an MPB-order round-trip.
constexpr u32 kCrcCyclesPerByte = 1;
constexpr u32 kRepairCyclesPerLine = 100;
constexpr u32 kMetaEccCycles = 200;

}  // namespace

u32 SvmRuntime::frame_crc(u64 frame_base) {
  // Host-side read of the whole frame (the simulated cost is charged by
  // the callers, who know whether the pass is a seal, verify or scrub).
  scc::Memory& mem = core_.chip().memory();
  const u32 page_bytes = core_.chip().config().page_bytes;
  u8 buf[256];
  u32 crc = 0;
  for (u32 off = 0; off < page_bytes; off += sizeof(buf)) {
    const u32 chunk =
        std::min<u32>(sizeof(buf), page_bytes - off);
    mem.read(frame_base + off, buf, chunk);
    crc = off == 0 ? sim::crc32c(buf, chunk)
                   : sim::crc32c_extend(crc, buf, chunk);
  }
  return crc;
}

void SvmRuntime::page_seal(u64 page, bool exclusive) {
  if (!integrity_) return;
  const u64 rel = page - page_index_base_;
  assert(rel < domain_.seals.size() && "sealed page outside the domain");
  const u32 page_bytes = core_.chip().config().page_bytes;
  const u16 frame = meta_word_.frame_of(page);
  const u64 base = domain_.frame_paddr(frame);

  SvmDomain::PageSeal& seal = domain_.seals[rel];
  seal.crc = frame_crc(base);
  ++seal.gen;
  seal.sealer = core_.id();
  seal.valid = true;
  seal.exclusive = exclusive;
  ++stats_.pages_sealed;
  core_.compute_cycles(page_bytes * kCrcCyclesPerByte);

  obs::EventBus& bus = core_.chip().bus();
  if (bus.enabled(obs::kCatIntegrity)) {
    bus.publish(obs::Event{core_.now(), page, seal.gen, seal.crc,
                           obs::EventKind::kPageSeal, core_.id()});
  }

  if (!exclusive) return;
  // Chaos injection point: the injector corrupts frames only behind
  // exclusive seals — the frame is unmapped everywhere and any sharer
  // was invalidated before the handoff, so the next core to touch the
  // page provably verifies before reading. Corrupting a non-exclusive
  // (downgrade) seal could be read through a surviving read-only mapping
  // without a verify: exactly the silent-wrong outcome this layer
  // exists to kill, so those seals are verify-only.
  const i64 bit =
      core_.chip().faults().page_flip_bit(u64{page_bytes} * 8);
  if (bit < 0) return;
  scc::Memory& mem = core_.chip().memory();
  const u64 paddr = base + static_cast<u64>(bit >> 3);
  u8 byte = 0;
  mem.read(paddr, &byte, 1);
  byte ^= static_cast<u8>(1u << (bit & 7));
  mem.write(paddr, &byte, 1);
  if (bus.enabled(obs::kCatChaos)) {
    bus.publish(obs::Event{
        core_.now(), static_cast<u64>(obs::InjectKind::kPageFlip), page,
        static_cast<u64>(bit), obs::EventKind::kFaultInject, core_.id()});
  }
}

bool SvmRuntime::snoop_repair(u64 frame_base,
                              const SvmDomain::PageSeal& seal,
                              bool& used_remote) {
  scc::Chip& chip = core_.chip();
  const u32 line = chip.config().line_bytes;
  const u32 page_bytes = chip.config().page_bytes;
  const int ncores = chip.config().num_cores;
  used_remote = false;
  u32 copied = 0;
  for (u32 off = 0; off < page_bytes; off += line) {
    const u64 paddr = frame_base + off;
    const u8* src = nullptr;
    int src_core = -1;
    // Prefer the sealer's L1 (write-through: anything it still caches is
    // exactly what it sealed), then any other live core holding the line
    // (a read replica installed before the corruption).
    if (seal.sealer >= 0 && seal.sealer < ncores &&
        !chip.core_dead(seal.sealer)) {
      src = chip.core(seal.sealer).l1().peek_line(paddr);
      if (src != nullptr) src_core = seal.sealer;
    }
    for (int i = 0; src == nullptr && i < ncores; ++i) {
      if (i == seal.sealer || chip.core_dead(i)) continue;
      src = chip.core(i).l1().peek_line(paddr);
      if (src != nullptr) src_core = i;
    }
    if (src == nullptr) continue;
    chip.memory().write(paddr, src, line);
    if (src_core != seal.sealer) used_remote = true;
    ++copied;
  }
  if (copied == 0) return false;
  core_.compute_cycles(copied * kRepairCyclesPerLine +
                       page_bytes * kCrcCyclesPerByte);
  return frame_crc(frame_base) == seal.crc;
}

void SvmRuntime::poison_page(u64 page, u32 gen) {
  // Traced metadata store: the coherence auditor sees the sentinel, and
  // the ECC shadow records it — so a later "correction" can never
  // resurrect the pre-poison owner word.
  meta_word_.set_owner(page, kOwnerCorrupt);
  const u64 rel = page - page_index_base_;
  if (rel < domain_.seals.size()) {
    // The page is dead; retire the seal so the scrubber reports (and the
    // ledger counts) each poisoning exactly once.
    domain_.seals[rel].valid = false;
  }
  ++stats_.pages_poisoned;
  obs::EventBus& bus = core_.chip().bus();
  if (bus.enabled(obs::kCatIntegrity)) {
    bus.publish(obs::Event{
        core_.now(), page, gen,
        static_cast<u64>(obs::IntegrityAction::kPoisoned),
        obs::EventKind::kPageCorrupt, core_.id()});
  }
}

void SvmRuntime::page_verify(u64 page) {
  if (!integrity_) return;
  const u64 rel = page - page_index_base_;
  assert(rel < domain_.seals.size() && "verified page outside the domain");
  SvmDomain::PageSeal& seal = domain_.seals[rel];
  if (!seal.valid) return;  // nothing to check against (e.g. first touch)
  ++stats_.seal_verifies;
  const u32 page_bytes = core_.chip().config().page_bytes;
  core_.compute_cycles(page_bytes * kCrcCyclesPerByte);
  const u64 base = domain_.frame_paddr(meta_word_.frame_of(page));
  if (frame_crc(base) == seal.crc) return;

  bool used_remote = false;
  if (snoop_repair(base, seal, used_remote)) {
    if (used_remote) {
      ++stats_.seal_refetches;
    } else {
      ++stats_.seal_repairs;
    }
    obs::EventBus& bus = core_.chip().bus();
    if (bus.enabled(obs::kCatIntegrity)) {
      bus.publish(obs::Event{
          core_.now(), page, seal.gen,
          static_cast<u64>(used_remote ? obs::IntegrityAction::kRefetched
                                       : obs::IntegrityAction::kRepaired),
          obs::EventKind::kPageCorrupt, core_.id()});
    }
    return;
  }
  // No clean copy anywhere: detect-or-die. The typed throw unwinds to
  // handle_fault, which releases any transfer lock this core holds.
  poison_page(page, seal.gen);
  throw proto::SvmIntegrityError(page);
}

void SvmRuntime::scrub_tick() {
  if (core_.now() < next_scrub_ps_) return;
  next_scrub_ps_ = core_.now() + scrub_period_ps_;
  const u64 n = domain_.seals.size();
  if (n == 0) return;
  const u32 page_bytes = core_.chip().config().page_bytes;
  // Bounded per-tick work: the scrubber runs in timer-interrupt context
  // and must not stall the interrupted computation for a whole share.
  constexpr u64 kPagesPerPass = 32;
  u64 walked = 0;
  u64 corrupt = 0;
  for (u64 steps = 0; steps < n && walked < kPagesPerPass; ++steps) {
    const u64 rel = scrub_cursor_ % n;
    scrub_cursor_ = rel + static_cast<u64>(scrub_stride_);
    SvmDomain::PageSeal& seal = domain_.seals[rel];
    if (!seal.valid) continue;
    ++walked;
    // Frame number from the ECC shadow (golden, host-side — a scrub must
    // not trust a possibly-flipped scratchpad word), raw memory as the
    // fallback for words never stored since boot.
    u64 entry = 0;
    const auto it = domain_.meta_shadow.find(scratch_paddr_[rel]);
    if (it != domain_.meta_shadow.end()) {
      entry = it->second;
    } else {
      u16 word = 0;
      core_.chip().memory().read(scratch_paddr_[rel], &word, sizeof(word));
      entry = word;
    }
    const u16 frame = static_cast<u16>(entry) & kFrameMask;
    if (frame == 0) continue;
    const u64 base = domain_.frame_paddr(frame);
    core_.compute_cycles(page_bytes * kCrcCyclesPerByte);
    if (frame_crc(base) == seal.crc) continue;
    ++corrupt;
    bool used_remote = false;
    if (snoop_repair(base, seal, used_remote)) {
      if (used_remote) {
        ++stats_.seal_refetches;
      } else {
        ++stats_.seal_repairs;
      }
      obs::EventBus& bus = core_.chip().bus();
      if (bus.enabled(obs::kCatIntegrity)) {
        bus.publish(obs::Event{
            core_.now(), page_index_base_ + rel, seal.gen,
            static_cast<u64>(used_remote
                                 ? obs::IntegrityAction::kRefetched
                                 : obs::IntegrityAction::kRepaired),
            obs::EventKind::kPageCorrupt, core_.id()});
      }
      continue;
    }
    // Unrepairable from interrupt context too: poison now (no throw — no
    // access is faulting), so the next toucher gets the typed error
    // instead of a stale verify.
    poison_page(page_index_base_ + rel, seal.gen);
  }
  if (walked == 0) return;
  obs::EventBus& bus = core_.chip().bus();
  if (bus.enabled(obs::kCatIntegrity)) {
    bus.publish(obs::Event{core_.now(), walked, corrupt, 0,
                           obs::EventKind::kScrubPass, core_.id()});
  }
}

// ---------------------------------------------------------------------------
// proto::MetaStore — one choke point for all metadata words (the former
// owner_read/owner_write/dir_read/dir_write/scratchpad_read/
// scratchpad_write boilerplate, deduplicated)

u64 SvmRuntime::meta_load_word(u64 paddr, u32 bits, proto::MetaKind kind,
                               u64 page) {
  // ECC model: the word is checked against the host-side shadow of the
  // last store and a divergence (an injected flipmeta bit) corrected in
  // place — the way ECC DRAM scrubs a single-bit error on read — before
  // any protocol decision can act on the flipped word. The check runs
  // host-side at load *issue*, before the simulated pload samples
  // memory: the pload's modelled latency yields the fiber, and a
  // concurrent legitimate store completing inside that window would make
  // a completion-time comparison flag good data as corrupt (shadow and
  // memory only move together at store issue, see meta_store_word).
  bool corrected = false;
  if (integrity_) {
    const auto it = domain_.meta_shadow.find(paddr);
    if (it != domain_.meta_shadow.end()) {
      scc::Memory& mem = core_.chip().memory();
      u64 raw = 0;
      if (bits == 16) {
        u16 word = 0;
        mem.read(paddr, &word, sizeof(word));
        raw = word;
      } else {
        mem.read(paddr, &raw, sizeof(raw));
      }
      if (raw != it->second) {
        // No yield may happen between this repair write and the pload's
        // sample below, or a concurrently injected flip could slip past
        // the check — the modelled ECC cost is charged after the load.
        const u64 good = it->second;
        if (bits == 16) {
          const u16 word = static_cast<u16>(good);
          mem.write(paddr, &word, sizeof(word));
        } else {
          mem.write(paddr, &good, sizeof(good));
        }
        ++stats_.meta_corrections;
        corrected = true;
        obs::EventBus& bus = core_.chip().bus();
        if (bus.enabled(obs::kCatIntegrity)) {
          bus.publish(obs::Event{core_.now(), page, static_cast<u64>(kind),
                                 good, obs::EventKind::kMetaCorrupt,
                                 core_.id()});
        }
      }
    }
  }
  const u64 value =
      bits == 16 ? core_.pload<u16>(paddr, scc::MemPolicy::kUncached)
                 : core_.pload<u64>(paddr, scc::MemPolicy::kUncached);
  if (corrected) core_.compute_cycles(kMetaEccCycles);
  return value;
}

void SvmRuntime::meta_store_word(u64 paddr, u64 value, u32 bits,
                                 u64 page) {
  if (bits == 16) {
    value &= 0xffff;  // shadow must compare equal to the zero-extended load
  }
  // Shadow first: the uncached pstore applies its device write at issue
  // but then yields for the modelled latency, and the shadow must move
  // in the same atomic step as memory — a load issued inside the latency
  // window would otherwise see new data against an old shadow and
  // "correct" a legitimate store away.
  if (integrity_) domain_.meta_shadow[paddr] = value;
  if (bits == 16) {
    core_.pstore<u16>(paddr, static_cast<u16>(value),
                      scc::MemPolicy::kUncached);
  } else {
    core_.pstore<u64>(paddr, value, scc::MemPolicy::kUncached);
  }
  if (!integrity_) return;
  // Chaos injection point: flip one bit of the word as stored. Sound at
  // any rate — the shadow comparison above catches the flip at the next
  // load, so a flipped owner/frame/directory word is never acted upon.
  const int bit = core_.chip().faults().meta_flip_bit(bits);
  if (bit < 0) return;
  const u64 flipped = value ^ (u64{1} << bit);
  scc::Memory& mem = core_.chip().memory();
  if (bits == 16) {
    const u16 word = static_cast<u16>(flipped);
    mem.write(paddr, &word, sizeof(word));
  } else {
    mem.write(paddr, &flipped, sizeof(flipped));
  }
  obs::EventBus& bus = core_.chip().bus();
  if (bus.enabled(obs::kCatChaos)) {
    bus.publish(obs::Event{
        core_.now(), static_cast<u64>(obs::InjectKind::kMetaFlip), page,
        static_cast<u64>(bit), obs::EventKind::kFaultInject, core_.id()});
  }
}

u64 SvmRuntime::load(proto::MetaKind kind, u64 page) {
  const u64 rel = page - page_index_base_;
  assert(rel < owner_paddr_.size() && "metadata page outside the domain");
  switch (kind) {
    case proto::MetaKind::kOwner:
      return meta_load_word(owner_paddr_[rel], 16, kind, page);
    case proto::MetaKind::kScratchpad:
      return meta_load_word(scratch_paddr_[rel], 16, kind, page);
    case proto::MetaKind::kDirectory:
      return meta_load_word(sharer_paddr_[rel], 64, kind, page);
  }
  panic("unknown MetaKind load");
}

proto::DirEntry SvmRuntime::load_dir(u64 page) {
  if (domain_.sharer_words() == 0) return proto::MetaStore::load_dir(page);
  // Wide entry: one flags word (bit 0 = Shared) then the sharer words,
  // each its own uncached simulated transaction.
  const u64 rel = page - page_index_base_;
  assert(rel < sharer_paddr_.size() && "metadata page outside the domain");
  const u64 base = sharer_paddr_[rel];
  proto::DirEntry e(dir_width_);
  e.shared =
      (meta_load_word(base, 64, proto::MetaKind::kDirectory, page) & 1) !=
      0;
  for (int w = 0; w < domain_.sharer_words(); ++w) {
    e.sharers.set_word(
        w, meta_load_word(base + 8 * static_cast<u64>(w + 1), 64,
                          proto::MetaKind::kDirectory, page));
  }
  return e;
}

void SvmRuntime::store_dir(u64 page, const proto::DirEntry& e) {
  if (domain_.sharer_words() == 0) {
    proto::MetaStore::store_dir(page, e);
    return;
  }
  const u64 rel = page - page_index_base_;
  assert(rel < sharer_paddr_.size() && "metadata page outside the domain");
  const u64 base = sharer_paddr_[rel];
  meta_store_word(base, e.shared ? u64{1} : u64{0}, 64, page);
  for (int w = 0; w < domain_.sharer_words(); ++w) {
    meta_store_word(base + 8 * static_cast<u64>(w + 1), e.sharers.word(w),
                    64, page);
  }
}

void SvmRuntime::store(proto::MetaKind kind, u64 page, u64 value) {
  const u64 rel = page - page_index_base_;
  assert(rel < owner_paddr_.size() && "metadata page outside the domain");
  switch (kind) {
    case proto::MetaKind::kOwner:
      meta_store_word(owner_paddr_[rel], value, 16, page);
      return;
    case proto::MetaKind::kScratchpad:
      meta_store_word(scratch_paddr_[rel], value, 16, page);
      return;
    case proto::MetaKind::kDirectory:
      meta_store_word(sharer_paddr_[rel], value, 64, page);
      return;
  }
  panic("unknown MetaKind store");
}

}  // namespace msvm::svm
