// MetalSVM's shared-virtual-memory subsystem (paper, Section 6) — the
// primary contribution of the reproduced paper.
//
// A collective svm_alloc() reserves virtual address space only; physical
// frames appear on first touch (Section 6.3): the faulting core consults a
// 16-bit per-page entry in the on-die *scratchpad* (carved out of the
// MPBs, guarded by a Test-and-Set lock) to learn whether any core already
// allocated a frame; if not, it allocates one from the region of its
// *nearest memory controller* and publishes the frame number. The 16-bit
// representation is what limits the paper's SVM to 256 MiB of shared
// memory (2^16 frames x 4 KiB).
//
// Two consistency models (Sections 6.1, 6.2):
//
//  * Strong Memory Model — at any time a page has exactly one owner, the
//    only core allowed to read or write it. Ownership lives in an off-die
//    *owner vector*. A permission fault sends an ownership request
//    through the mailbox system; the owner flushes its write-combine
//    buffer, invalidates its MPBT-tagged L1 lines (CL1INVMB), drops its
//    own mapping, publishes the new owner and replies by mail. The
//    requester never polls the off-die owner vector while waiting — that
//    is precisely the improvement over the authors' earlier prototype
//    [14] (and our ablation bench can re-enable the old polling scheme).
//
//  * Lazy Release Consistency — every core maps pages writable; data
//    moves at synchronisation points only. Lock acquire invalidates the
//    SVM-tagged L1 lines; lock release (and the collective barrier)
//    flushes the write-combine buffer. Because WCB flushes write only
//    *dirty bytes*, two cores may safely write disjoint parts of one page
//    between barriers.
//
// Read-only regions (Section 6.4): a collective protect_readonly() clears
// the R/W and MPBT bits, which both traps stray writes and lets the
// otherwise-unusable L2 cache serve the region.
//
// Affinity-on-Next-Touch (Section 8, outlook; implemented here as the
// paper's proposed extension): a collective next_touch() marks pages for
// migration; the next toucher copies the frame next to its own memory
// controller.
#pragma once

#include <functional>
#include <stdexcept>
#include <vector>

#include "kernel/kernel.hpp"
#include "mailbox/mailbox.hpp"
#include "sccsim/chip.hpp"

namespace msvm::svm {

enum class Model : u8 { kStrong, kLazyRelease };

/// Mail types used by the ownership protocol.
inline constexpr u8 kMailOwnershipReq = 0x20;
inline constexpr u8 kMailOwnershipAck = 0x21;
/// Mail types used by the read-replication extension (see
/// SvmConfig::read_replication): a read-fault grant round-trip and the
/// multicast invalidation that precedes an exclusive (write) upgrade.
inline constexpr u8 kMailReadReq = 0x22;
inline constexpr u8 kMailReadAck = 0x23;
inline constexpr u8 kMailInval = 0x24;
inline constexpr u8 kMailInvalAck = 0x25;

/// Directory word layout (read-replication mode; one u64 per page in the
/// off-die metadata area). Bits [0, 48): sharer bitmask — cores holding a
/// read-only replica, never including the owner. Bit 63: the page is in
/// the Shared state, i.e. the owner downgraded its own mapping to
/// read-only and the frame in DRAM is clean.
inline constexpr u64 kDirSharedBit = u64{1} << 63;
inline constexpr u64 kDirSharerMask = (u64{1} << 48) - 1;
inline constexpr u64 dir_bit(int core_id) { return u64{1} << core_id; }

/// Thrown (into the faulting simulated program) on a write to a page
/// protected with protect_readonly() — the debugging aid of Section 6.4.
class SvmProtectionError : public std::runtime_error {
 public:
  explicit SvmProtectionError(u64 vaddr)
      : std::runtime_error("write to read-only SVM region"),
        vaddr_(vaddr) {}
  u64 vaddr() const { return vaddr_; }

 private:
  u64 vaddr_;
};

/// Barrier algorithm for Svm::barrier().
enum class BarrierAlgo : u8 {
  kMasterGather,    // the simple O(n)-at-master flag barrier
  kDissemination,   // O(log n) rounds, parity-buffered flags
};

struct SvmConfig {
  Model model = Model::kLazyRelease;
  BarrierAlgo barrier_algo = BarrierAlgo::kMasterGather;
  /// Relocate the first-touch scratchpad into off-die DRAM — the paper's
  /// "increase the memory size" trade-off, quantified by an ablation.
  bool scratchpad_offdie = false;
  /// Requester waits for the ACK mail (paper's design). When false, the
  /// requester instead *polls the off-die owner vector*, reproducing the
  /// authors' earlier prototype [14] that "runs against the memory wall".
  bool ack_via_mail = true;
  /// Number of TAS-striped scratchpad locks (1 = the paper's single lock).
  u32 scratchpad_lock_stripes = 1;
  /// MSI-style read replication for the Strong model (an extension beyond
  /// the paper, like Affinity-on-Next-Touch): the off-die owner vector is
  /// upgraded to a directory entry {owner, sharer bitmask, Exclusive |
  /// Shared}. A read fault installs a read-only replica after a single
  /// grant from the owner (no ownership transfer, no CL1INVMB on the
  /// owner — its write-through L1 is not stale); a write fault multicasts
  /// invalidations to all sharers before taking exclusive ownership.
  /// Off by default so every paper-reproduction figure stays bit-identical.
  bool read_replication = false;
  /// Modelled software path costs (core cycles). The two bigger ones are
  /// calibrated against the paper's Table 1 (row 1: 741 us per 4 MiB
  /// reservation; row 2: ~112 us per physically allocated frame, which
  /// on the original kernel includes the allocator walk and page-table
  /// bookkeeping beyond the 4 KiB zeroing our memory model charges).
  u32 alloc_region_cycles_per_page = 385;
  u32 map_software_cycles = 600;
  u32 first_touch_software_cycles = 54500;
  u32 ownership_software_cycles = 400;

  /// Fault-injection switches (testing only): each one removes a single
  /// step of the consistency protocols. Because the simulated caches
  /// carry real data, enabling any of these must produce *wrong results*
  /// in the protocol tests — evidence that the simulator's incoherence
  /// is real and the protocol steps are all load-bearing.
  struct Sabotage {
    bool skip_serve_wcb_flush = false;   // Strong step 3a (Section 6.1)
    bool skip_serve_cl1invmb = false;    // Strong step 3b
    bool skip_serve_unmap = false;       // Strong "clears its access
                                         // permission"
    bool skip_release_flush = false;     // LRC release (Section 6.2)
    bool skip_acquire_invalidate = false;  // LRC acquire
  } sabotage;
};

/// Chip-wide SVM bookkeeping shared by all per-core Svm endpoints:
/// the simulated-memory layout of the owner vector, the scratchpad, the
/// per-MC frame allocators, and the (host-side) free lists used by page
/// migration.
///
/// Several *coherency domains* may coexist on one chip (the paper's
/// Section 1 goal: "a dynamic partitioning of the SCC's computing
/// resources into several coherency domains"): construct one SvmDomain
/// per group with a distinct `slot` out of `num_slots`. Each slot owns a
/// disjoint share of the virtual SVM space (and thus of the scratchpad
/// and owner-vector index ranges); the frame allocators and TAS
/// registers are chip-level resources the domains share.
class SvmDomain {
 public:
  SvmDomain(scc::Chip& chip, SvmConfig cfg, std::vector<int> members,
            int slot = 0, int num_slots = 1);

  const SvmConfig& config() const { return cfg_; }
  const std::vector<int>& members() const { return members_; }
  scc::Chip& chip() { return chip_; }

  // ---- layout queries (simulated physical addresses) ----

  u64 num_svm_pages() const { return svm_page_capacity_; }

  /// First global SVM page index (and thus virtual-address offset) of
  /// this domain's share.
  u64 page_index_base() const { return page_index_base_; }
  u64 vbase() const;
  u64 owner_entry_paddr(u64 page_idx) const;
  u64 scratchpad_entry_paddr(u64 page_idx) const;
  /// Directory sharer word of `page_idx` (read-replication mode only; the
  /// area exists only when the mode is configured, keeping the metadata
  /// layout — and thus every flag-off run — bit-identical to the paper's).
  u64 sharer_entry_paddr(u64 page_idx) const;
  u64 mc_counter_paddr(int mc) const;
  u64 frame_paddr(u16 frame_no) const;

  /// First/last+1 allocatable frame numbers for a memory controller.
  std::pair<u16, u16> frame_range_of_mc(int mc) const;

  /// TAS register guarding the scratchpad stripe of `page_idx`.
  int scratchpad_lock_reg(u64 page_idx) const;

  /// TAS register serialising ownership transfers of `page_idx`. Without
  /// it, three or more cores thrashing one page can chase a moving owner
  /// through request forwards indefinitely (a livelock the paper's
  /// two-core experiments never exposed).
  int transfer_lock_reg(u64 page_idx) const;

  /// TAS register for application-level SVM locks.
  int app_lock_reg(int lock_id) const;

  /// Offsets of the SVM barrier flags within the scratchpad MPB carve.
  static constexpr u32 kBarrierArriveOff = mbox::kScratchpadOffset;
  static constexpr u32 kBarrierReleaseOff = mbox::kScratchpadOffset + 48;
  /// Dissemination flags: two parity sets of kBarrierDissRounds rounds
  /// (49..60). The round count bounds the member count to 2^6 = 64;
  /// Svm::barrier_dissemination() checks this instead of silently letting
  /// round offsets spill into the scratchpad entries.
  static constexpr u32 kBarrierDissRounds = 6;
  static constexpr u32 kBarrierDissOff = mbox::kScratchpadOffset + 49;
  static constexpr u32 kEntriesOff = mbox::kScratchpadOffset + 64;

  // ---- host-side migration free lists (guarded by the scratchpad
  // lock while simulated) ----
  void free_frame(int mc, u16 frame_no);
  /// Returns 0 when the free list for `mc` is empty.
  u16 take_free_frame(int mc);

  /// Collective-call symmetry check: every member must allocate the same
  /// region sequence. Returns the canonical base for allocation number
  /// `seq` of `bytes`, recording it on first sight.
  u64 register_alloc(int rank, u64 bytes);

 private:
  scc::Chip& chip_;
  SvmConfig cfg_;
  std::vector<int> members_;

  u64 meta_base_ = 0;        // shared-DRAM offset of the metadata area
  u64 svm_page_capacity_ = 0;   // this domain's share
  u64 page_index_base_ = 0;     // first global page index of the share
  u32 entries_per_mpb_ = 0;

  std::vector<std::vector<u16>> free_frames_;  // per MC

 public:
  // Host-side diagnostics (no simulated cost): who holds each transfer
  // lock and for which page; written by Svm::acquire_ownership.
  std::vector<int> debug_lock_holder_;
  std::vector<u64> debug_lock_page_;

 private:
  struct AllocRecord {
    u64 bytes;
    u64 base;
    u64 seen_mask;
  };
  std::vector<AllocRecord> allocs_;
  std::vector<u64> next_alloc_seq_;  // per rank
};

struct SvmStats {
  u64 map_faults = 0;          // frame existed, mapping installed
  u64 first_touch_allocs = 0;  // this core allocated the frame
  u64 ownership_acquires = 0;  // strong-model permission retrievals
  u64 ownership_serves = 0;    // requests this core answered as owner
  u64 ownership_forwards = 0;  // stale requests forwarded onward
  u64 migrations = 0;          // next-touch frame moves
  u64 barriers = 0;
  u64 lock_acquires = 0;
  u64 protect_calls = 0;
  // Read-replication directory protocol (all zero with the flag off).
  u64 replica_installs = 0;    // read-only replica mappings installed
  u64 replica_grants = 0;      // Exclusive->Shared downgrades served
  u64 invalidations_sent = 0;  // per-sharer invalidation mails sent
  u64 invalidations_received = 0;  // replicas this core dropped on demand
};

/// Per-core SVM endpoint. Installs itself as the kernel's SVM fault
/// handler and as the mailbox handler for ownership requests.
class Svm {
 public:
  Svm(kernel::Kernel& kernel, mbox::MailboxSystem& mbox, SvmDomain& domain);

  int rank() const { return rank_; }
  Model model() const { return domain_.config().model; }
  const SvmStats& stats() const { return stats_; }

  // ---- collective operations (every member must call, same args) ----

  /// Reserves `bytes` of shared virtual address space; returns its base
  /// (identical on every member). No physical memory is allocated yet.
  u64 alloc(u64 bytes);

  /// Barrier with consistency semantics: WCB flush before arrival and —
  /// under Lazy Release — CL1INVMB after release.
  void barrier();

  /// Marks [vaddr, vaddr+bytes) read-only and L2-cacheable (Section 6.4).
  void protect_readonly(u64 vaddr, u64 bytes);

  /// Reverts protect_readonly(): pages become writable SVM pages again.
  void unprotect(u64 vaddr, u64 bytes);

  /// Affinity-on-Next-Touch: unmaps the range everywhere and marks each
  /// page so its next toucher migrates the frame near itself.
  void next_touch(u64 vaddr, u64 bytes);

  // ---- locks (Lazy Release acquire/release points) ----

  void lock_acquire(int lock_id);
  void lock_release(int lock_id);

  // ---- typed accessors (thin sugar over the core's virtual plane) ----

  template <typename T>
  T read(u64 vaddr) {
    return core_.vload<T>(vaddr);
  }
  template <typename T>
  void write(u64 vaddr, T value) {
    core_.vstore<T>(vaddr, value);
  }

  scc::Core& core() { return core_; }

 private:
  // Barrier algorithm bodies.
  void barrier_master_gather();
  void barrier_dissemination();

  // Fault-path pieces.
  void handle_fault(u64 vaddr, bool is_write);
  void mapping_fault(u64 vaddr, u64 page_idx, bool is_write);
  void acquire_ownership(u64 vaddr, u64 page_idx);
  void serve_ownership_request(const mbox::Mail& mail);
  void install_mapping(u64 vaddr, u16 frame_no, bool writable);
  void map_readonly(u64 vaddr, u16 frame_no);

  // Read-replication pieces (active only with cfg.read_replication).
  bool read_replication() const {
    return domain_.config().read_replication && model() == Model::kStrong;
  }
  void acquire_read_replica(u64 vaddr, u64 page_idx, u16 frame_no);
  void serve_read_request(const mbox::Mail& mail);
  void serve_invalidation(const mbox::Mail& mail);
  /// Multicasts invalidations to every sharer of `page_idx` (except this
  /// core), waits for all ACKs, and resets the directory word to
  /// Exclusive. Must be called holding the page's transfer lock.
  void invalidate_sharers(u64 page_idx);

  // Simulated metadata accessors (all uncached).
  u16 owner_read(u64 page_idx);
  void owner_write(u64 page_idx, u16 owner_core);
  u64 dir_read(u64 page_idx);
  void dir_write(u64 page_idx, u64 word);
  u16 scratchpad_read(u64 page_idx);
  void scratchpad_write(u64 page_idx, u16 value);
  u16 alloc_frame_near(int mc);
  void zero_frame(u16 frame_no);

  u64 page_index_of(u64 vaddr) const;

  kernel::Kernel& kernel_;
  mbox::MailboxSystem& mbox_;
  SvmDomain& domain_;
  scc::Core& core_;
  int rank_ = -1;
  SvmStats stats_;
  u64 next_vaddr_ = 0;  // per-core bump, kept symmetric by collectives
  u8 barrier_sense_ = 1;
  u64 diss_seq_ = 0;  // dissemination-barrier instance counter
  // Private batch of contiguous frames (see alloc_frame_near).
  u16 frame_batch_next_ = 0;
  u16 frame_batch_end_ = 0;

  struct RegionAttrs {
    u64 base;
    u64 pages;
    bool readonly = false;
    bool migrate_pending = false;  // set by next_touch until first touch
  };
  std::vector<RegionAttrs> regions_;
  RegionAttrs* region_of(u64 vaddr);
};

}  // namespace msvm::svm
