// MetalSVM's shared-virtual-memory subsystem (paper, Section 6) — the
// primary contribution of the reproduced paper.
//
// A collective svm_alloc() reserves virtual address space only; physical
// frames appear on first touch (Section 6.3): the faulting core consults a
// 16-bit per-page entry in the on-die *scratchpad* (carved out of the
// MPBs, guarded by a Test-and-Set lock) to learn whether any core already
// allocated a frame; if not, it allocates one from the region of its
// *nearest memory controller* and publishes the frame number. The 16-bit
// representation is what limits the paper's SVM to 256 MiB of shared
// memory (2^16 frames x 4 KiB).
//
// Two consistency models (Sections 6.1, 6.2):
//
//  * Strong Memory Model — at any time a page has exactly one owner, the
//    only core allowed to read or write it. Ownership lives in an off-die
//    *owner vector*. A permission fault sends an ownership request
//    through the mailbox system; the owner flushes its write-combine
//    buffer, invalidates its MPBT-tagged L1 lines (CL1INVMB), drops its
//    own mapping, publishes the new owner and replies by mail.
//
//  * Lazy Release Consistency — every core maps pages writable; data
//    moves at synchronisation points only (diff-free WCB flushes).
//
// Since the protocol-engine refactor the subsystem is layered:
//
//   svm/protocol/   the transport-agnostic protocol core: the per-page
//                   state machine, CoherencePolicy implementations
//                   (StrongOwnerPolicy / ReadReplicationPolicy /
//                   LrcPolicy), typed metadata ops (MetaWord) and the
//                   TraceSink event seam. No sccsim/sim/mailbox
//                   includes (CI-enforced).
//   svm_runtime.*   the binding layer: adapts page faults, mbox::Mail
//                   traffic, CL1INVMB/WCB callbacks and the simulated
//                   owner-vector/directory/scratchpad words to the core.
//   svm.* (this)    the thin per-core endpoint: collectives (alloc,
//                   barrier, protect), locks, and the SvmDomain layout.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/kernel.hpp"
#include "mailbox/mailbox.hpp"
#include "sccsim/chip.hpp"
#include "svm/protocol/policy.hpp"
#include "svm/protocol/recovery.hpp"

namespace msvm::svm {

enum class Model : u8 { kStrong, kLazyRelease };

/// Mail types used by the ownership protocol (the on-wire values of
/// proto::MsgType; the binding layer converts by cast).
inline constexpr u8 kMailOwnershipReq = 0x20;
inline constexpr u8 kMailOwnershipAck = 0x21;
/// Mail types used by the read-replication extension (see
/// SvmConfig::read_replication): a read-fault grant round-trip and the
/// multicast invalidation that precedes an exclusive (write) upgrade.
inline constexpr u8 kMailReadReq = 0x22;
inline constexpr u8 kMailReadAck = 0x23;
inline constexpr u8 kMailInval = 0x24;
inline constexpr u8 kMailInvalAck = 0x25;

/// Directory word layout (read-replication mode) — canonical definitions
/// live in the protocol core; re-exported here for the full-stack tests.
using proto::dir_bit;
using proto::kDirSharedBit;
using proto::kDirSharerMask;

/// Per-core protocol/runtime statistics (defined in the protocol core so
/// policies can update their slice without seeing runtime headers).
using SvmStats = proto::SvmStats;

/// Fail-stop recovery vocabulary (defined in the protocol core, see
/// svm/protocol/recovery.hpp): the typed data-loss error thrown on any
/// access to a page whose owner died with unflushed writes, and the
/// owner-word sentinel that marks such a page.
using proto::kOwnerLost;
using proto::SvmDataLossError;

/// Data-integrity vocabulary (svm/protocol/recovery.hpp): the typed error
/// thrown on any access to a page that failed checksum verification with
/// no clean copy left, and its owner-word poison sentinel.
using proto::kOwnerCorrupt;
using proto::SvmIntegrityError;

/// Thrown (into the faulting simulated program) on a write to a page
/// protected with protect_readonly() — the debugging aid of Section 6.4.
/// The faulting core's protocol-event trace is dumped to stderr first.
class SvmProtectionError : public std::runtime_error {
 public:
  explicit SvmProtectionError(u64 vaddr)
      : std::runtime_error("write to read-only SVM region"),
        vaddr_(vaddr) {}
  u64 vaddr() const { return vaddr_; }

 private:
  u64 vaddr_;
};

/// Barrier algorithm for Svm::barrier().
enum class BarrierAlgo : u8 {
  kMasterGather,    // the simple O(n)-at-master flag barrier
  kDissemination,   // O(log n) rounds, parity-buffered flags
};

struct SvmConfig {
  Model model = Model::kLazyRelease;
  BarrierAlgo barrier_algo = BarrierAlgo::kMasterGather;
  /// Relocate the first-touch scratchpad into off-die DRAM — the paper's
  /// "increase the memory size" trade-off, quantified by an ablation.
  bool scratchpad_offdie = false;
  /// Requester waits for the ACK mail (paper's design). When false, the
  /// requester instead *polls the off-die owner vector*, reproducing the
  /// authors' earlier prototype [14] that "runs against the memory wall".
  bool ack_via_mail = true;
  /// Number of TAS-striped scratchpad locks (1 = the paper's single lock).
  u32 scratchpad_lock_stripes = 1;
  /// MSI-style read replication for the Strong model (an extension beyond
  /// the paper, like Affinity-on-Next-Touch): the off-die owner vector is
  /// upgraded to a directory entry {owner, sharer bitmask, Exclusive |
  /// Shared}. A read fault installs a read-only replica after a single
  /// grant from the owner (no ownership transfer, no CL1INVMB on the
  /// owner — its write-through L1 is not stale); a write fault multicasts
  /// invalidations to all sharers before taking exclusive ownership.
  /// Off by default so every paper-reproduction figure stays bit-identical.
  bool read_replication = false;
  /// Modelled software path costs (core cycles). The two bigger ones are
  /// calibrated against the paper's Table 1 (row 1: 741 us per 4 MiB
  /// reservation; row 2: ~112 us per physically allocated frame, which
  /// on the original kernel includes the allocator walk and page-table
  /// bookkeeping beyond the 4 KiB zeroing our memory model charges).
  u32 alloc_region_cycles_per_page = 385;
  u32 map_software_cycles = 600;
  u32 first_touch_software_cycles = 54500;
  u32 ownership_software_cycles = 400;

  /// Fault-injection switches (testing only) — see proto::Sabotage.
  using Sabotage = proto::Sabotage;
  Sabotage sabotage;
};

/// Chip-wide SVM bookkeeping shared by all per-core Svm endpoints:
/// the simulated-memory layout of the owner vector, the scratchpad, the
/// per-MC frame allocators, and the (host-side) free lists used by page
/// migration.
///
/// Several *coherency domains* may coexist on one chip (the paper's
/// Section 1 goal: "a dynamic partitioning of the SCC's computing
/// resources into several coherency domains"): construct one SvmDomain
/// per group with a distinct `slot` out of `num_slots`. Each slot owns a
/// disjoint share of the virtual SVM space (and thus of the scratchpad
/// and owner-vector index ranges); the frame allocators and TAS
/// registers are chip-level resources the domains share.
class SvmDomain {
 public:
  SvmDomain(scc::Chip& chip, SvmConfig cfg, std::vector<int> members,
            int slot = 0, int num_slots = 1);

  const SvmConfig& config() const { return cfg_; }
  const std::vector<int>& members() const { return members_; }
  scc::Chip& chip() { return chip_; }

  // ---- layout queries (simulated physical addresses) ----

  u64 num_svm_pages() const { return svm_page_capacity_; }

  /// First global SVM page index (and thus virtual-address offset) of
  /// this domain's share.
  u64 page_index_base() const { return page_index_base_; }
  u64 vbase() const;
  u64 owner_entry_paddr(u64 page_idx) const;
  u64 scratchpad_entry_paddr(u64 page_idx) const;
  /// Directory sharer word of `page_idx` (read-replication mode only; the
  /// area exists only when the mode is configured, keeping the metadata
  /// layout — and thus every flag-off run — bit-identical to the paper's).
  u64 sharer_entry_paddr(u64 page_idx) const;
  u64 mc_counter_paddr(int mc) const;
  u64 frame_paddr(u16 frame_no) const;

  /// First/last+1 allocatable frame numbers for a memory controller.
  std::pair<u16, u16> frame_range_of_mc(int mc) const;

  /// Frames below the metadata area, across all MCs (the allocatable
  /// total; frame 0 is the sentinel and never handed out).
  u64 total_frames() const;

  /// TAS register guarding the scratchpad stripe of `page_idx`.
  int scratchpad_lock_reg(u64 page_idx) const;

  /// TAS register serialising ownership transfers of `page_idx`. Without
  /// it, three or more cores thrashing one page can chase a moving owner
  /// through request forwards indefinitely (a livelock the paper's
  /// two-core experiments never exposed).
  int transfer_lock_reg(u64 page_idx) const;

  /// TAS register for application-level SVM locks.
  int app_lock_reg(int lock_id) const;

  /// The runtime MPB layout this domain's barrier flags and scratchpad
  /// entries live in (derived from the chip topology; equal to the
  /// historical constants on the 48-core SCC).
  const mbox::Layout& layout() const { return layout_; }

  /// Offsets of the SVM barrier flags within the scratchpad MPB carve.
  /// At 48 cores these are the historical 1536 / 1584 / 1585 / 1600.
  u32 barrier_arrive_off() const { return layout_.scratchpad_offset; }
  u32 barrier_release_off() const {
    return layout_.scratchpad_offset + static_cast<u32>(layout_.max_cores);
  }
  /// Dissemination flags: two parity sets of barrier_diss_rounds() rounds
  /// each. The round count bounds the member count to 2^rounds;
  /// Svm::barrier_dissemination() checks this instead of silently letting
  /// round offsets spill into the scratchpad entries.
  u32 barrier_diss_rounds() const {
    return static_cast<u32>(layout_.diss_rounds);
  }
  u32 barrier_diss_off() const { return barrier_release_off() + 1; }
  u32 entries_off() const {
    return layout_.scratchpad_offset + layout_.barrier_header_bytes;
  }

  /// Read-replication directory encoding: 0 = the historical single-word
  /// entry (sharer bits below the state bit, chips up to 63 cores);
  /// otherwise the number of 64-bit sharer words in a wide entry, which
  /// is then laid out as one flags word (bit 0 = Shared) followed by the
  /// sharer words.
  int sharer_words() const { return dir_words_; }
  u32 dir_entry_stride() const {
    return dir_words_ == 0 ? 8u : 8u * static_cast<u32>(1 + dir_words_);
  }

  // ---- host-side migration free lists (guarded by the scratchpad
  // lock while simulated) ----
  void free_frame(int mc, u16 frame_no);
  /// Returns 0 when the free list for `mc` is empty.
  u16 take_free_frame(int mc);

  /// Collective-call symmetry check: every member must allocate the same
  /// region sequence. Returns the canonical base for allocation number
  /// `seq` of `bytes`, recording it on first sight.
  u64 register_alloc(int rank, u64 bytes);

 private:
  scc::Chip& chip_;
  SvmConfig cfg_;
  std::vector<int> members_;

  mbox::Layout layout_;      // runtime MPB layout for the chip topology
  int dir_words_ = 0;        // wide-directory sharer words (0 = legacy)
  u64 mc_area_bytes_ = 64;   // per-MC frame counters (64 on the SCC)
  u64 meta_base_ = 0;        // shared-DRAM offset of the metadata area
  u64 page_capacity_total_ = 0;  // chip-wide SVM page capacity
  u64 svm_page_capacity_ = 0;   // this domain's share
  u64 page_index_base_ = 0;     // first global page index of the share
  u32 entries_per_mpb_ = 0;

  std::vector<std::vector<u16>> free_frames_;  // per MC

 public:
  // Host-side diagnostics (no simulated cost): who holds each transfer
  // lock and for which page; written by SvmRuntime::transfer_lock.
  std::vector<int> debug_lock_holder_;
  std::vector<u64> debug_lock_page_;

  // Fail-stop recovery epoch: bumped once per page repaired, host-side.
  // Each per-page repair runs under that page's transfer lock, so the
  // sequence is strictly increasing — the coherence auditor asserts
  // exactly that off the kRecoveryBegin events.
  u64 recovery_epoch = 0;

  // ---- integrity layer (host-side; sized only when the fault plan arms
  // it, so flag-off runs carry no state and stay byte-identical) ----

  /// One page's frame seal: the generation-stamped CRC32C taken at the
  /// last point the frame was provably quiescent (ownership handoff, or
  /// an Exclusive -> Shared downgrade). `exclusive` records whether
  /// nobody held a mapping at the seal point — the only seals the chaos
  /// layer may corrupt without risking a silent wrong read. A writable
  /// mapping invalidates the seal (the frame is no longer quiescent).
  struct PageSeal {
    u32 crc = 0;
    u32 gen = 0;        // bumped per reseal; echoed in kPageSeal/kPageCorrupt
    int sealer = -1;    // core that took the seal (preferred repair source)
    bool valid = false;
    bool exclusive = false;
  };
  /// Indexed by (page - page_index_base()); empty unless integrity_armed.
  std::vector<PageSeal> seals;

  /// ECC-model shadow of the SVM metadata words, keyed by simulated
  /// physical address: every metadata store records its true value here,
  /// and every load compares — a divergence (an injected flipmeta bit)
  /// is corrected back from the shadow, the way ECC scrubs a single-bit
  /// DRAM error. Empty unless integrity_armed.
  std::unordered_map<u64, u64> meta_shadow;

 private:
  struct AllocRecord {
    u64 bytes;
    u64 base;
    u32 seen;  // members that have reached this collective call
  };
  std::vector<AllocRecord> allocs_;
  std::vector<u64> next_alloc_seq_;  // per rank
};

class SvmRuntime;

/// Renders the protocol events of one per-core observability ring in the
/// classic `svm-trace` text format: the newest `max_events` entries, one
/// per line prefixed with `prefix`, preceded by a "... N earlier
/// event(s)" line when the ring overflowed or was truncated.
std::string proto_trace_dump(const obs::EventRing& ring,
                             const char* prefix = "  ",
                             std::size_t max_events = 32);

/// Per-core SVM endpoint. Owns the binding layer (SvmRuntime) that
/// installs itself as the kernel's SVM fault handler and as the mailbox
/// handler for the protocol mail types, and the CoherencePolicy instance
/// the runtime drives.
class Svm {
 public:
  Svm(kernel::Kernel& kernel, mbox::MailboxSystem& mbox, SvmDomain& domain);
  ~Svm();

  int rank() const { return rank_; }
  Model model() const { return domain_.config().model; }
  const SvmStats& stats() const;

  /// The per-core protocol-event ring (state transitions, messages,
  /// metadata writes) on the chip's observability bus — rendered by the
  /// cluster report's `svm-trace` section and dumped on
  /// SvmProtectionError. Format with proto_trace_dump().
  const obs::EventRing& trace() const;

  /// The coherence policy driving this endpoint's page state machine.
  const proto::CoherencePolicy& policy() const;

  /// The binding layer (for diagnostics: the cluster registers its
  /// append_hang_report with the chip watchdog).
  SvmRuntime& runtime() { return *runtime_; }

  // ---- collective operations (every member must call, same args) ----

  /// Reserves `bytes` of shared virtual address space; returns its base
  /// (identical on every member). No physical memory is allocated yet.
  u64 alloc(u64 bytes);

  /// Barrier with consistency semantics: the policy's release hook (WCB
  /// flush) before arrival and its acquire hook (CL1INVMB under Lazy
  /// Release) after release.
  void barrier();

  /// Marks [vaddr, vaddr+bytes) read-only and L2-cacheable (Section 6.4).
  void protect_readonly(u64 vaddr, u64 bytes);

  /// Reverts protect_readonly(): pages become writable SVM pages again.
  void unprotect(u64 vaddr, u64 bytes);

  /// Affinity-on-Next-Touch: unmaps the range everywhere and marks each
  /// page so its next toucher migrates the frame near itself.
  void next_touch(u64 vaddr, u64 bytes);

  // ---- locks (Lazy Release acquire/release points) ----

  void lock_acquire(int lock_id);
  void lock_release(int lock_id);

  // ---- typed accessors (thin sugar over the core's virtual plane) ----

  template <typename T>
  T read(u64 vaddr) {
    return core_.vload<T>(vaddr);
  }
  template <typename T>
  void write(u64 vaddr, T value) {
    core_.vstore<T>(vaddr, value);
  }

  scc::Core& core() { return core_; }

 private:
  // Barrier algorithm bodies.
  void barrier_master_gather();
  void barrier_dissemination();

  u64 page_index_of(u64 vaddr) const;

  kernel::Kernel& kernel_;
  mbox::MailboxSystem& mbox_;
  SvmDomain& domain_;
  scc::Core& core_;
  std::unique_ptr<SvmRuntime> runtime_;
  int rank_ = -1;
  u64 next_vaddr_ = 0;  // per-core bump, kept symmetric by collectives
  u8 barrier_sense_ = 1;
  u64 diss_seq_ = 0;  // dissemination-barrier instance counter
};

}  // namespace msvm::svm
