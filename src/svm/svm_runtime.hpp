// SvmRuntime — the binding layer between the transport-agnostic protocol
// core (svm/protocol/) and the simulated SCC. One instance per core; it
//
//   * implements proto::MetaStore by issuing uncached ploads/pstores at
//     the SvmDomain's owner-vector / scratchpad / directory addresses,
//   * implements proto::ProtocolEnv by binding message sends/waits to
//     mbox::Mail traffic, page actions to the page table and the
//     CL1INVMB/WCB callbacks, the transfer lock to its TAS register, and
//     modelled costs to Core::compute_cycles,
//   * owns the fault path: the kernel's SVM fault handler enters here,
//     the model-independent first-touch / migration / remap machinery
//     runs here, and everything protocol-shaped is delegated to the
//     CoherencePolicy instance selected from SvmConfig.
//
// The Svm endpoint (svm.hpp) keeps only collectives, barriers and locks.
#pragma once

#include <optional>

#include "svm/ack_ring.hpp"
#include "svm/svm.hpp"

namespace msvm::svm {

class SvmRuntime final : public proto::ProtocolEnv,
                         public proto::MetaStore {
 public:
  SvmRuntime(kernel::Kernel& kernel, mbox::MailboxSystem& mbox,
             SvmDomain& domain);

  SvmRuntime(const SvmRuntime&) = delete;
  SvmRuntime& operator=(const SvmRuntime&) = delete;

  proto::CoherencePolicy& policy() { return *policy_; }
  const proto::CoherencePolicy& policy() const { return *policy_; }

  // ---- region registry (SVM virtual-address ranges from Svm::alloc) ----

  struct RegionAttrs {
    u64 base;
    u64 pages;
    bool readonly = false;
  };
  void add_region(u64 base, u64 pages);
  /// O(1): page index -> region id via the flat per-page table (the old
  /// linear region scan ran on every fault).
  RegionAttrs* region_of(u64 vaddr);

  // ---- fault path (installed as the kernel's SVM fault handler) ----

  void handle_fault(u64 vaddr, bool is_write);

  /// Appends this core's SVM diagnostics (stats, in-flight request,
  /// owner-vector word of the contended page, protocol event ring) to a
  /// watchdog hang report. Reads simulated memory host-side, cost-free.
  void append_hang_report(std::string& out);

  /// This core's protocol-event ring on the chip's observability bus.
  const obs::EventRing& trace_ring() const;

  // ---- helpers shared with the Svm collectives ----

  u64 page_index_of(u64 vaddr) const;
  /// Installs the read-only-region mapping (L2-cacheable, Section 6.4).
  void map_readonly(u64 page_vaddr, u16 frame_no);

  // ---- proto::ProtocolEnv ----

  int self() const override { return core_.id(); }
  proto::MetaWord& meta() override { return meta_word_; }
  proto::SvmStats& stats() override { return stats_; }
  /// TraceSink: stamps the record with this core's virtual clock and
  /// publishes it on the chip's observability bus (which keeps it in
  /// this core's ring and fans it out to any attached sinks).
  void trace(const proto::TraceEvent& e) override;
  void send(int dest, const proto::Msg& m) override;
  int multicast(const proto::SharerSet& dests, const proto::Msg& m) override;
  proto::Msg wait_match(proto::MsgType type, u64 page) override;
  void yield() override;
  void flush_wcb() override;
  void cl1invmb() override;
  void map_page(u64 page, u16 frame, bool writable) override;
  void unmap_page(u64 page) override;
  void downgrade_page(u64 page) override;
  void transfer_lock(u64 page) override;
  void transfer_unlock(u64 page) override;
  void page_seal(u64 page, bool exclusive) override;
  void page_verify(u64 page) override;
  void irq_off() override;
  void irq_on() override;
  void cost_cycles(u32 cycles) override;
  void hw_count(proto::HwEvent event, u64 delta) override;
  void warn(const char* message) override;

  // ---- proto::MetaStore (uncached simulated-memory words) ----

  u64 load(proto::MetaKind kind, u64 page) override;
  void store(proto::MetaKind kind, u64 page, u64 value) override;
  /// Directory width = the die's core count. Up to 63 cores the entry is
  /// the historical single word (handled by the MetaStore defaults via
  /// load/store above); wider chips use the spilled multi-word entry, so
  /// the typed accessors are overridden to issue one simulated
  /// transaction per entry word.
  int sharer_width() const override { return dir_width_; }
  proto::DirEntry load_dir(u64 page) override;
  void store_dir(u64 page, const proto::DirEntry& e) override;

  /// Spin-site breaker: when the TAS register's holder fail-stopped,
  /// force the register open so the spinning survivors can proceed.
  /// Public because Svm::lock_acquire's stuck path calls it too — an
  /// app lock orphaned by a dead holder must break exactly like a
  /// protocol transfer lock.
  void maybe_break_dead_lock(int reg);

 private:
  /// Converts an incoming protocol mail and hands it to the policy.
  void dispatch_mail(const mbox::Mail& mail);

  /// One request this core originated and has not been fully acked:
  /// the stamped mail for idempotent retransmission, plus the set of
  /// destinations still owing an ACK (a single member for unicast
  /// requests, the sharer set for an invalidation multicast).
  struct PendingRequest {
    mbox::Mail mail;        // exactly as first sent (arg16 = seq)
    proto::SharerSet awaiting;
    u64 page = 0;
    u16 seq = 0;
    u8 ack_type = 0;
  };

  /// Receiver-side ACK filter: drops duplicates (same sender, type,
  /// page, seq) so a retransmitted or fault-duplicated ACK can never be
  /// counted twice against a multicast wait; survivors go to the inbox.
  void on_ack_mail(const mbox::Mail& mail);

  /// Re-sends the pending request to every destination still owing an
  /// ACK. try_send only: when the original mail still sits in the slot
  /// it is still deliverable and a duplicate deposit must not clobber
  /// unrelated traffic.
  void retransmit_pending();

  // ---- fail-stop recovery (the robustness PR; see protocol/recovery.hpp)

  /// Called from the bounded wait's timeout path: if a peer still owing
  /// an ACK — or the recorded owner of the awaited page — is dead past
  /// its lease, repairs the page under the transfer lock we already hold
  /// and returns the dead peer's ACK, synthesized. Returns nullopt when
  /// no relevant core is dead; throws SvmDataLossError when the repair
  /// (or an earlier one) poisoned the page.
  std::optional<mbox::Mail> try_dead_peer_recovery();

  /// Binding wrapper around proto::recover_page: computes the dead set
  /// and the dead owner's dirty-WCB verdict from the chip, fences the
  /// domain's recovery epoch, and publishes kRecoveryBegin/End.
  proto::RecoveryAction run_page_recovery(u64 page, int dead_core);

  /// True when `page`'s recorded owner is dead and its write-combine
  /// buffer died holding a line inside this page's frame.
  bool dead_owner_died_dirty(u64 page);

  /// Releases any transfer locks this core still holds (data-loss throw
  /// unwinding out of a protocol flow that is not exception-aware).
  void release_held_transfer_locks();

  /// Mapping fault: first touch, migration, or plain (re)mapping; the
  /// model-dependent tail is delegated to the policy.
  void mapping_fault(u64 vaddr, u64 page_idx, bool is_write);

  /// Frames come from the preferred controller's quarter while it lasts,
  /// then fall back round-robin — the NUMA-style placement of Sec. 6.3.
  u16 alloc_frame_near(int preferred_mc);
  void zero_frame(u16 frame_no);
  void install_mapping(u64 page_vaddr, u16 frame_no, bool writable);
  u64 page_vaddr_of(u64 page_idx) const;

  // ---- integrity layer (armed only; see DESIGN.md §15) ----

  /// Host-side CRC32C of the frame at simulated physical `frame_base`.
  u32 frame_crc(u64 frame_base);
  /// Tries to rebuild a corrupted frame from clean cached copies in live
  /// cores' L1s (write-through: any MPBT line still cached is clean).
  /// Returns true when the rebuilt frame matches the seal; `used_remote`
  /// reports whether any repair line came from a core other than the
  /// sealer. Host-side writes; modelled cost charged per copied line.
  bool snoop_repair(u64 frame_base, const SvmDomain::PageSeal& seal,
                    bool& used_remote);
  /// Marks `page` permanently lost: owner word := kOwnerCorrupt (a
  /// traced metadata store, so the auditor and the ECC shadow both see
  /// the poison), publishes kPageCorrupt/kPoisoned.
  void poison_page(u64 page, u32 gen);
  /// One metadata word through the flipmeta + ECC-shadow pipeline.
  u64 meta_load_word(u64 paddr, u32 bits, proto::MetaKind kind, u64 page);
  void meta_store_word(u64 paddr, u64 value, u32 bits, u64 page);
  /// Timer hook (registered only when the plan sets scrub_ps): walks a
  /// bounded slice of this core's sealed pages per period, repairing or
  /// poisoning any frame that no longer matches its seal.
  void scrub_tick();

  kernel::Kernel& kernel_;
  mbox::MailboxSystem& mbox_;
  SvmDomain& domain_;
  scc::Core& core_;
  int dir_width_ = 48;  // directory sharer width = the die's core count

  proto::MetaWord meta_word_;
  proto::SvmStats stats_;
  std::unique_ptr<proto::CoherencePolicy> policy_;

  // Private batch of contiguous frames (see alloc_frame_near).
  u16 frame_batch_next_ = 0;
  u16 frame_batch_end_ = 0;

  std::vector<RegionAttrs> regions_;

  // ---- flat per-page lookup tables (host-side, built in the ctor) ----
  //
  // The metadata words live in *simulated* memory; what these tables
  // flatten is the host-side address arithmetic for reaching them. The
  // old path recomputed base + stride * page (with an off-die/MPB branch
  // and divisions for the scratchpad) on every MetaStore access — several
  // per protocol transition. Here every per-page physical address is
  // precomputed once, indexed by (page - page_index_base_).
  u32 page_shift_ = 0;          // log2(page_bytes)
  u64 page_index_base_ = 0;     // this domain's first global page index
  std::vector<u64> owner_paddr_;
  std::vector<u64> scratch_paddr_;
  std::vector<u64> sharer_paddr_;  // empty unless read replication
  /// Page index (domain-relative) -> region id, kNoRegion where unmapped.
  static constexpr u16 kNoRegion = 0xffff;
  std::vector<u16> region_id_by_page_;

  // ---- protocol-mail resilience (all host-side bookkeeping) ----

  u16 serving_seq_ = 0;  // seq of the request currently being served;
                         // forwards and ACKs echo it so the chain keeps
                         // the originator's sequence number end to end
  std::optional<PendingRequest> pending_;
  /// Request sequence stamping + bounded recent-ACK dedup + idempotent
  /// retransmission (wrap and eviction semantics live in
  /// mailbox/reliable.hpp, where they are unit-tested directly).
  mbox::ReliableChannel channel_;

  // ---- integrity layer state (all inert unless integrity_) ----

  bool integrity_ = false;  // latched from FaultPlan::integrity_armed()
  TimePs scrub_period_ps_ = 0;
  TimePs next_scrub_ps_ = 0;
  u64 scrub_cursor_ = 0;   // resumes the bounded walk across passes
  int scrub_rank_ = 0;     // this core's index among the domain members
  int scrub_stride_ = 1;   // member count (each core scrubs its slice)
};

}  // namespace msvm::svm
