// AckRing moved to mailbox/reliable.hpp: the dedup ring and sequence
// counter turned out to be transport-level machinery shared between the
// SVM runtime and the KV serving tier (both sit on the same unreliable
// mailbox and recover corrupt-dropped mail the same way). This header
// keeps the historical svm::AckRing name alive for existing includes
// and the unit tests.
#pragma once

#include "mailbox/reliable.hpp"

namespace msvm::svm {

using AckRing = mbox::AckRing;

}  // namespace msvm::svm
