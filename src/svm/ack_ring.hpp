// AckRing — the bounded receiver-side ACK dedup ring plus the 16-bit
// request sequence counter, extracted as a standalone class so its
// boundary behaviour (capacity eviction, sequence wraparound) is unit-
// testable without driving 65k simulated protocol round-trips.
//
// The ring remembers the last 64 ACK identity keys (sender, type, page,
// seq packed by the caller). A key already present is a duplicate — a
// retransmitted or fault-duplicated ACK that must not be counted twice
// against a multicast wait. The ring is deliberately small: an identity
// only needs to be remembered for the window in which its duplicate can
// still arrive (one retransmission timeout), and 64 outstanding ACK
// identities comfortably cover one core's in-flight protocol state.
// Evicting a live entry is therefore harmless for correctness (a
// duplicate of an evicted ACK is re-admitted and retires an already-
// satisfied wait, which the wait loops tolerate) but worth counting:
// a hot `acks_evicted` tally means the window assumption is under
// pressure and the ring should grow.
//
// Sequence wraparound: seq numbers are u16 and 0 is reserved (the
// unbounded-path placeholder). When the counter wraps, keys remembered
// from the previous sequence epoch could collide with fresh identities
// and silently swallow a legitimate ACK — so the ring is cleared at the
// wrap point, trading at worst one redundant retransmission for the
// collision hazard.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace msvm::svm {

class AckRing {
 public:
  using u16 = std::uint16_t;
  using u64 = std::uint64_t;

  static constexpr std::size_t kEntries = 64;

  enum class Admit : std::uint8_t {
    kDuplicate,      // key already remembered: drop the ACK
    kFresh,          // new key, stored in a free slot
    kFreshEvicting,  // new key, displaced a live entry (capacity hit)
  };

  /// Stamps the next request sequence number (1..65535; 0 is skipped).
  /// Clears the ring when the counter wraps — see the header comment.
  u16 next_seq() {
    if (++seq_ == 0) {
      seen_.fill(0);
      next_slot_ = 0;
      seq_ = 1;
      ++wraps_;
    }
    return seq_;
  }

  /// Admits an ACK identity key. Key 0 is never remembered (it is the
  /// cleared-slot sentinel), so callers must pack a non-zero key.
  Admit admit(u64 key) {
    for (const u64 seen : seen_) {
      if (seen == key) return Admit::kDuplicate;
    }
    const std::size_t slot = next_slot_++ % seen_.size();
    const Admit verdict =
        seen_[slot] != 0 ? Admit::kFreshEvicting : Admit::kFresh;
    seen_[slot] = key;
    return verdict;
  }

  u16 seq() const { return seq_; }
  u64 wraps() const { return wraps_; }
  /// True when `key` is currently remembered (test introspection).
  bool remembers(u64 key) const {
    for (const u64 seen : seen_) {
      if (seen == key) return true;
    }
    return false;
  }

 private:
  std::array<u64, kEntries> seen_{};
  std::size_t next_slot_ = 0;
  u16 seq_ = 0;
  u64 wraps_ = 0;
};

}  // namespace msvm::svm
