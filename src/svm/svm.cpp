// Svm — the thin per-core endpoint. Everything protocol-shaped lives in
// the protocol core (svm/protocol/) and the binding layer (svm_runtime);
// this file keeps only what the application calls directly: collectives
// (alloc / barrier / protect / next_touch), locks, and the glue that
// routes their consistency semantics through the CoherencePolicy hooks.
#include "svm/svm.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "sccsim/addrmap.hpp"
#include "svm/svm_runtime.hpp"

namespace msvm::svm {

namespace {

using proto::kFrameMask;
using proto::kMigrateBit;

[[noreturn]] void panic(const char* msg) {
  std::fprintf(stderr, "msvm::svm panic: %s\n", msg);
  std::abort();
}

}  // namespace

Svm::Svm(kernel::Kernel& kernel, mbox::MailboxSystem& mbox,
         SvmDomain& domain)
    : kernel_(kernel),
      mbox_(mbox),
      domain_(domain),
      core_(kernel.core()),
      runtime_(std::make_unique<SvmRuntime>(kernel, mbox, domain)) {
  const auto& members = domain_.members();
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == core_.id()) rank_ = static_cast<int>(i);
  }
  assert(rank_ >= 0 && "core is not a member of the SVM domain");
  next_vaddr_ = domain_.vbase();
}

Svm::~Svm() = default;

const SvmStats& Svm::stats() const { return runtime_->stats(); }

const obs::EventRing& Svm::trace() const { return runtime_->trace_ring(); }

const proto::CoherencePolicy& Svm::policy() const {
  return runtime_->policy();
}

u64 Svm::page_index_of(u64 vaddr) const {
  return runtime_->page_index_of(vaddr);
}

// ---------------------------------------------------------------------------
// collectives

u64 Svm::alloc(u64 bytes) {
  const u64 page = core_.chip().config().page_bytes;
  const u64 pages = (bytes + page - 1) / page;
  const u64 base = domain_.register_alloc(rank_, bytes);
  // Region bookkeeping cost scales with the page count (the paper's
  // Table 1 row 1: reserving 4 MiB costs ~741 us in total).
  core_.compute_cycles(
      pages * domain_.config().alloc_region_cycles_per_page);
  runtime_->add_region(base, pages);
  next_vaddr_ = base + pages * page;
  barrier();
  return base;
}

void Svm::barrier() {
  ++runtime_->stats().barriers;
  // Release semantics: our writes must be in memory before we signal
  // arrival.
  runtime_->policy().on_release(*runtime_);

  if (domain_.config().barrier_algo == BarrierAlgo::kDissemination) {
    barrier_dissemination();
  } else {
    barrier_master_gather();
  }

  // Acquire semantics: under Lazy Release the data written by others
  // before the barrier must not be shadowed by stale cache lines.
  runtime_->policy().on_acquire(*runtime_);
}

void Svm::barrier_master_gather() {
  const u8 sense = barrier_sense_;
  barrier_sense_ = sense == 1 ? 2 : 1;
  const auto& members = domain_.members();
  const int master_core = members.front();
  const scc::AddrMap& map = core_.chip().map();
  if (rank_ == 0) {
    for (std::size_t i = 1; i < members.size(); ++i) {
      const u64 flag = map.mpb_base(master_core) +
                       domain_.barrier_arrive_off() +
                       static_cast<u32>(members[i]);
      sim::BlockScope scope(core_.chip().scheduler().current(),
                            "svm.barrier_gather",
                            static_cast<u64>(members[i]));
      const TimePs t0 = core_.now();
      TimePs gap = 200 * kPsPerNs;
      while (core_.pload<u8>(flag, scc::MemPolicy::kUncached) != sense) {
        if (core_.chip().watchdog().check(core_.now(), t0,
                                          "svm.barrier_gather",
                                          core_.id())) {
          core_.chip().scheduler().block();  // parked until teardown
        }
        core_.relax(gap);
        gap = std::min<TimePs>(gap * 2, 50 * kPsPerUs);
      }
    }
    for (std::size_t i = 1; i < members.size(); ++i) {
      core_.pstore<u8>(
          map.mpb_base(members[i]) + domain_.barrier_release_off(), sense,
          scc::MemPolicy::kUncached);
    }
  } else {
    core_.pstore<u8>(map.mpb_base(master_core) +
                         domain_.barrier_arrive_off() +
                         static_cast<u32>(core_.id()),
                     sense, scc::MemPolicy::kUncached);
    const u64 flag =
        map.mpb_base(core_.id()) + domain_.barrier_release_off();
    sim::BlockScope scope(core_.chip().scheduler().current(),
                          "svm.barrier_release",
                          static_cast<u64>(master_core));
    const TimePs t0 = core_.now();
    TimePs gap = 200 * kPsPerNs;
    while (core_.pload<u8>(flag, scc::MemPolicy::kUncached) != sense) {
      if (core_.chip().watchdog().check(core_.now(), t0,
                                        "svm.barrier_release",
                                        core_.id())) {
        core_.chip().scheduler().block();  // parked until teardown
      }
      core_.relax(gap);
      gap = std::min<TimePs>(gap * 2, 50 * kPsPerUs);
    }
  }
}

void Svm::barrier_dissemination() {
  // Classic dissemination barrier: in round r every rank signals the
  // rank 2^r ahead and waits for the rank 2^r behind; after ceil(log2 n)
  // rounds everyone has (transitively) heard from everyone. Flags are
  // double-buffered by barrier parity so a neighbour one full barrier
  // ahead writes the *other* set — and no core can ever be two barriers
  // ahead, because that would require passing a barrier this core has
  // not entered.
  const auto& members = domain_.members();
  const int n = static_cast<int>(members.size());
  // The algorithm is exact for any n (power of two or not): ceil(log2 n)
  // rounds of signal/wait at distances 1, 2, 4, ... — but each round
  // needs its own flag byte, and the MPB layout reserves exactly
  // barrier_diss_rounds() per parity. Fail loudly rather than silently
  // corrupting a neighbouring flag if a domain ever exceeds 2^rounds
  // members.
  u32 rounds = 0;
  while ((1 << rounds) < n) ++rounds;
  if (rounds > domain_.barrier_diss_rounds()) {
    panic("dissemination barrier: domain has more members than the MPB "
          "flag layout supports (barrier_diss_rounds() rounds)");
  }
  const u64 seq = diss_seq_++;
  const u32 parity = static_cast<u32>(seq % 2);
  const u8 sense = static_cast<u8>((seq / 2) % 2 + 1);
  const scc::AddrMap& map = core_.chip().map();
  int distance = 1;
  for (u32 round = 0; distance < n; ++round, distance *= 2) {
    const int to =
        members[static_cast<std::size_t>((rank_ + distance) % n)];
    core_.pstore<u8>(map.mpb_base(to) + domain_.barrier_diss_off() +
                         parity * domain_.barrier_diss_rounds() + round,
                     sense, scc::MemPolicy::kUncached);
    const u64 own = map.mpb_base(core_.id()) + domain_.barrier_diss_off() +
                    parity * domain_.barrier_diss_rounds() + round;
    // Rounds are short (one flag write away); a large backoff cap would
    // compound oversleeps across the log2(n) rounds.
    sim::BlockScope scope(core_.chip().scheduler().current(),
                          "svm.barrier_diss", round,
                          static_cast<u64>(to));
    const TimePs t0 = core_.now();
    TimePs gap = 100 * kPsPerNs;
    while (core_.pload<u8>(own, scc::MemPolicy::kUncached) != sense) {
      if (core_.chip().watchdog().check(core_.now(), t0,
                                        "svm.barrier_diss", core_.id())) {
        core_.chip().scheduler().block();  // parked until teardown
      }
      core_.relax(gap);
      gap = std::min<TimePs>(gap * 2, 800 * kPsPerNs);
    }
  }
}

void Svm::protect_readonly(u64 vaddr, u64 bytes) {
  ++runtime_->stats().protect_calls;
  SvmRuntime::RegionAttrs* region = runtime_->region_of(vaddr);
  if (region == nullptr) panic("protect_readonly outside any SVM region");
  const u64 page = core_.chip().config().page_bytes;
  // Make our writes visible and drop our MPBT lines: the region's lines
  // will re-enter the caches as plain (L2-capable) lines.
  core_.flush_wcb();
  core_.cl1invmb();
  for (u64 off = 0; off < bytes; off += page) {
    core_.pagetable().update(vaddr + off, [](scc::Pte& p) {
      p.writable = false;
      p.mpbt = false;
      p.l2_enable = true;
    });
    core_.compute_cycles(40);
  }
  region->readonly = true;
  barrier();
}

void Svm::unprotect(u64 vaddr, u64 bytes) {
  SvmRuntime::RegionAttrs* region = runtime_->region_of(vaddr);
  if (region == nullptr) panic("unprotect outside any SVM region");
  const u64 page = core_.chip().config().page_bytes;
  // Drop all mappings: the next access re-faults through the normal
  // (model-aware) path, which restores MPBT attributes and — under the
  // strong model — re-establishes single ownership.
  for (u64 off = 0; off < bytes; off += page) {
    core_.pagetable().update(vaddr + off,
                             [](scc::Pte& p) { p.present = false; });
    core_.compute_cycles(40);
  }
  // Stale L2/L1 copies of the region must not survive into the writable
  // regime.
  core_.l2().invalidate_all();
  core_.l1().invalidate_all();
  core_.compute_cycles(2000);  // software L2 flush is expensive (Sec. 3)
  if (domain_.config().read_replication && model() == Model::kStrong &&
      rank_ == 0) {
    // Every core just dropped its mappings, so no replica survives; a
    // stale Shared bit would let a future reader join the sharer set
    // without a grant while the owner re-faults a writable mapping.
    for (u64 off = 0; off < bytes; off += page) {
      runtime_->meta().clear_dir(page_index_of(vaddr + off));
    }
  }
  region->readonly = false;
  barrier();
}

void Svm::next_touch(u64 vaddr, u64 bytes) {
  SvmRuntime::RegionAttrs* region = runtime_->region_of(vaddr);
  if (region == nullptr) panic("next_touch outside any SVM region");
  const u64 page = core_.chip().config().page_bytes;
  core_.flush_wcb();
  core_.cl1invmb();
  for (u64 off = 0; off < bytes; off += page) {
    core_.pagetable().update(vaddr + off,
                             [](scc::Pte& p) { p.present = false; });
  }
  barrier();  // everyone unmapped
  if (rank_ == 0) {
    proto::MetaWord& meta = runtime_->meta();
    for (u64 off = 0; off < bytes; off += page) {
      const u64 idx = page_index_of(vaddr + off);
      const u16 entry = meta.scratchpad(idx);
      if ((entry & kFrameMask) != 0) {
        meta.set_scratchpad(idx, entry | kMigrateBit);
      }
      // Migration installs a writable mapping without a directory
      // transition; reset the entry to Exclusive so no reader trusts a
      // stale Shared bit.
      if (domain_.config().read_replication &&
          model() == Model::kStrong) {
        meta.clear_dir(idx);
      }
    }
  }
  barrier();  // marks visible before anyone touches
}

// ---------------------------------------------------------------------------
// locks

void Svm::lock_acquire(int lock_id) {
  ++runtime_->stats().lock_acquires;
  const int reg = domain_.app_lock_reg(lock_id);
  kernel::SpinWaitOpts opts;
  opts.site = "svm.lock_acquire";
  opts.site_arg = static_cast<u64>(lock_id);
  // A holder that fail-stops leaves the TAS register set forever; after a
  // stretch of failed tries, check for that and break the orphaned lock
  // (no-op unless lease detection is on and a core is actually dead, so
  // clean runs stay bit-identical).
  auto break_dead = [&](u64) { runtime_->maybe_break_dead_lock(reg); };
  opts.warn_every = 64;
  opts.on_stuck = break_dead;
  kernel::spin_wait(core_, [&] { return core_.tas_try_acquire(reg); },
                    opts);
  obs::EventBus& bus = core_.chip().bus();
  if (bus.enabled(obs::kCatSync)) {
    bus.publish(obs::Event{core_.now(), static_cast<u64>(lock_id), 0, 0,
                           obs::EventKind::kLockAcquire, core_.id()});
  }
  // Entering the critical section: see the lock holder's released data.
  runtime_->policy().on_acquire(*runtime_);
}

void Svm::lock_release(int lock_id) {
  // Leaving: push our modifications down to memory.
  runtime_->policy().on_release(*runtime_);
  core_.tas_release(domain_.app_lock_reg(lock_id));
  obs::EventBus& bus = core_.chip().bus();
  if (bus.enabled(obs::kCatSync)) {
    bus.publish(obs::Event{core_.now(), static_cast<u64>(lock_id), 0, 0,
                           obs::EventKind::kLockRelease, core_.id()});
  }
}

}  // namespace msvm::svm
