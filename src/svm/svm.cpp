#include "svm/svm.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "sccsim/addrmap.hpp"
#include "sim/log.hpp"

namespace msvm::svm {

namespace {

/// Scratchpad entry bit 15 marks a page for next-touch migration, which
/// is why allocatable frame numbers are 15-bit (the paper's plain 16-bit
/// representation caps shared memory at 256 MiB; the migration extension
/// halves that to 128 MiB — still far beyond what we simulate).
constexpr u16 kMigrateBit = 0x8000;
constexpr u16 kFrameMask = 0x7fff;

[[noreturn]] void panic(const char* msg) {
  std::fprintf(stderr, "msvm::svm panic: %s\n", msg);
  std::abort();
}

u64 round_up(u64 v, u64 to) { return (v + to - 1) / to * to; }

}  // namespace

// ===========================================================================
// SvmDomain

SvmDomain::SvmDomain(scc::Chip& chip, SvmConfig cfg,
                     std::vector<int> members, int slot, int num_slots)
    : chip_(chip),
      cfg_(cfg),
      members_(std::move(members)),
      free_frames_(scc::Mesh::kNumMemControllers),
      next_alloc_seq_(members_.size(), 0) {
  assert(num_slots >= 1 && slot >= 0 && slot < num_slots);
  debug_lock_holder_.assign(64, -1);
  debug_lock_page_.assign(64, 0);
  const scc::ChipConfig& ccfg = chip_.config();
  const u64 page = ccfg.page_bytes;

  entries_per_mpb_ = (mbox::kScratchpadBytes - 64) / 2;
  const u64 total_capacity =
      static_cast<u64>(ccfg.num_cores) * entries_per_mpb_;
  // Coherency-domain partitioning: each slot owns a disjoint share of
  // the page-index space (and therefore of the scratchpad/owner-vector
  // entries and the virtual address range).
  svm_page_capacity_ = total_capacity / static_cast<u64>(num_slots);
  page_index_base_ = static_cast<u64>(slot) * svm_page_capacity_;

  // Metadata at the tail of shared DRAM: 64 bytes of per-MC frame
  // counters, then the owner vector, then the off-die scratchpad area
  // (always reserved so the ablation flag does not change frame
  // numbers), then — only in read-replication mode, so that flag-off
  // runs keep the paper's exact layout — one 8-byte directory sharer
  // word per page. Sized for the whole chip so every slot sees the same
  // layout.
  const u64 meta_bytes =
      64 + 4 * total_capacity +
      (cfg_.read_replication ? 8 * total_capacity : 0);
  if (round_up(meta_bytes, page) + page >= ccfg.shared_dram_bytes) {
    panic("shared DRAM too small for SVM metadata");
  }
  meta_base_ = ccfg.shared_dram_bytes - round_up(meta_bytes, page);

  // Seed the per-MC frame allocator counters in *simulated* memory (the
  // kernel would write these at boot). Slot 0 does it; later slots must
  // not reset the chip-level allocators.
  if (slot == 0) {
    for (int mc = 0; mc < scc::Mesh::kNumMemControllers; ++mc) {
      const auto [lo, hi] = frame_range_of_mc(mc);
      (void)hi;
      const u64 v = lo;
      chip_.memory().write(mc_counter_paddr(mc), &v, sizeof(v));
    }
  }
}

u64 SvmDomain::vbase() const {
  return scc::kSvmVBase + page_index_base_ * chip_.config().page_bytes;
}

std::pair<u16, u16> SvmDomain::frame_range_of_mc(int mc) const {
  const scc::ChipConfig& ccfg = chip_.config();
  const u64 page = ccfg.page_bytes;
  const u64 quarter = ccfg.shared_dram_bytes / scc::Mesh::kNumMemControllers;
  const u64 frames_limit = meta_base_ / page;  // metadata is off-limits
  u64 lo = static_cast<u64>(mc) * quarter / page;
  u64 hi = (static_cast<u64>(mc) + 1) * quarter / page;
  if (lo == 0) lo = 1;  // frame 0 is the "unallocated" sentinel
  hi = std::min(hi, frames_limit);
  lo = std::min(lo, hi);
  if (hi > kFrameMask) panic("shared DRAM exceeds 15-bit frame space");
  return {static_cast<u16>(lo), static_cast<u16>(hi)};
}

u64 SvmDomain::owner_entry_paddr(u64 page_idx) const {
  assert(page_idx >= page_index_base_ &&
         page_idx < page_index_base_ + svm_page_capacity_);
  return scc::kSharedBase + meta_base_ + 64 + 2 * page_idx;
}

u64 SvmDomain::scratchpad_entry_paddr(u64 page_idx) const {
  assert(page_idx >= page_index_base_ &&
         page_idx < page_index_base_ + svm_page_capacity_);
  if (cfg_.scratchpad_offdie) {
    return scc::kSharedBase + meta_base_ + 64 + 2 * svm_page_capacity_ +
           2 * page_idx;
  }
  const int core = static_cast<int>(page_idx / entries_per_mpb_);
  const u32 off = static_cast<u32>(page_idx % entries_per_mpb_) * 2;
  return chip_.map().mpb_base(core) + kEntriesOff + off;
}

u64 SvmDomain::sharer_entry_paddr(u64 page_idx) const {
  assert(cfg_.read_replication &&
         "directory sharer words exist only in read-replication mode");
  assert(page_idx >= page_index_base_ &&
         page_idx < page_index_base_ + svm_page_capacity_);
  const u64 total_capacity =
      static_cast<u64>(chip_.config().num_cores) * entries_per_mpb_;
  return scc::kSharedBase + meta_base_ + 64 + 4 * total_capacity +
         8 * page_idx;
}

u64 SvmDomain::mc_counter_paddr(int mc) const {
  return scc::kSharedBase + meta_base_ + 8 * static_cast<u64>(mc);
}

u64 SvmDomain::frame_paddr(u16 frame_no) const {
  return scc::kSharedBase +
         static_cast<u64>(frame_no) * chip_.config().page_bytes;
}

// The 48-register TAS file is partitioned statically: scratchpad stripes
// and transfer locks share the lower half, application locks take the
// upper half. SVM fault handling can therefore never self-deadlock on a
// register aliased with an application lock the faulting code holds.
int SvmDomain::scratchpad_lock_reg(u64 page_idx) const {
  const u32 half = scc::Mesh::kMaxCores / 2;
  const u32 stripes =
      std::max(1u, std::min(cfg_.scratchpad_lock_stripes, half));
  return static_cast<int>(page_idx % stripes);
}

int SvmDomain::transfer_lock_reg(u64 page_idx) const {
  // Shares the lower half with the scratchpad stripes; the two are never
  // held simultaneously, so aliasing only costs contention, not deadlock.
  return static_cast<int>(page_idx % (scc::Mesh::kMaxCores / 2));
}

int SvmDomain::app_lock_reg(int lock_id) const {
  constexpr int kHalf = scc::Mesh::kMaxCores / 2;
  return kHalf + lock_id % kHalf;
}

void SvmDomain::free_frame(int mc, u16 frame_no) {
  free_frames_[static_cast<std::size_t>(mc)].push_back(frame_no);
}

u16 SvmDomain::take_free_frame(int mc) {
  auto& list = free_frames_[static_cast<std::size_t>(mc)];
  if (list.empty()) return 0;
  const u16 f = list.back();
  list.pop_back();
  return f;
}

u64 SvmDomain::register_alloc(int rank, u64 bytes) {
  const u64 page = chip_.config().page_bytes;
  const u64 seq = next_alloc_seq_[static_cast<std::size_t>(rank)]++;
  if (seq == allocs_.size()) {
    // First member to reach this collective call defines the region.
    const u64 prev_end =
        allocs_.empty()
            ? vbase()
            : allocs_.back().base +
                  round_up(allocs_.back().bytes, page);
    if ((prev_end - vbase()) / page + round_up(bytes, page) / page >
        svm_page_capacity_) {
      panic("svm_alloc exceeds scratchpad capacity");
    }
    allocs_.push_back(AllocRecord{bytes, prev_end, 0});
  }
  AllocRecord& rec = allocs_.at(seq);
  if (rec.bytes != bytes) {
    panic("svm_alloc called with mismatched sizes across cores");
  }
  rec.seen_mask |= u64{1} << rank;
  return rec.base;
}

// ===========================================================================
// Svm (per-core endpoint)

Svm::Svm(kernel::Kernel& kernel, mbox::MailboxSystem& mbox,
         SvmDomain& domain)
    : kernel_(kernel), mbox_(mbox), domain_(domain), core_(kernel.core()) {
  const auto& members = domain_.members();
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == core_.id()) rank_ = static_cast<int>(i);
  }
  assert(rank_ >= 0 && "core is not a member of the SVM domain");
  next_vaddr_ = domain_.vbase();

  kernel_.set_svm_fault_handler(
      [this](u64 vaddr, bool is_write) { handle_fault(vaddr, is_write); });
  mbox_.set_handler(kMailOwnershipReq, [this](const mbox::Mail& m) {
    serve_ownership_request(m);
  });
  mbox_.set_handler(kMailReadReq, [this](const mbox::Mail& m) {
    serve_read_request(m);
  });
  mbox_.set_handler(kMailInval, [this](const mbox::Mail& m) {
    serve_invalidation(m);
  });
}

u64 Svm::page_index_of(u64 vaddr) const {
  return (vaddr - scc::kSvmVBase) / core_.chip().config().page_bytes;
}

Svm::RegionAttrs* Svm::region_of(u64 vaddr) {
  const u64 page = core_.chip().config().page_bytes;
  for (auto& r : regions_) {
    if (vaddr >= r.base && vaddr < r.base + r.pages * page) return &r;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// collectives

u64 Svm::alloc(u64 bytes) {
  const u64 page = core_.chip().config().page_bytes;
  const u64 pages = (bytes + page - 1) / page;
  const u64 base = domain_.register_alloc(rank_, bytes);
  // Region bookkeeping cost scales with the page count (the paper's
  // Table 1 row 1: reserving 4 MiB costs ~741 us in total).
  core_.compute_cycles(
      pages * domain_.config().alloc_region_cycles_per_page);
  regions_.push_back(RegionAttrs{base, pages, false, false});
  next_vaddr_ = base + pages * page;
  barrier();
  return base;
}

void Svm::barrier() {
  ++stats_.barriers;
  // Release semantics: our writes must be in memory before we signal
  // arrival.
  if (!domain_.config().sabotage.skip_release_flush) core_.flush_wcb();

  if (domain_.config().barrier_algo == BarrierAlgo::kDissemination) {
    barrier_dissemination();
  } else {
    barrier_master_gather();
  }

  // Acquire semantics: under Lazy Release the data written by others
  // before the barrier must not be shadowed by stale cache lines.
  if (model() == Model::kLazyRelease &&
      !domain_.config().sabotage.skip_acquire_invalidate) {
    core_.cl1invmb();
  }
}

void Svm::barrier_master_gather() {
  const u8 sense = barrier_sense_;
  barrier_sense_ = sense == 1 ? 2 : 1;
  const auto& members = domain_.members();
  const int master_core = members.front();
  const scc::AddrMap& map = core_.chip().map();
  if (rank_ == 0) {
    for (std::size_t i = 1; i < members.size(); ++i) {
      const u64 flag = map.mpb_base(master_core) +
                       SvmDomain::kBarrierArriveOff +
                       static_cast<u32>(members[i]);
      TimePs gap = 200 * kPsPerNs;
      while (core_.pload<u8>(flag, scc::MemPolicy::kUncached) != sense) {
        core_.relax(gap);
        gap = std::min<TimePs>(gap * 2, 50 * kPsPerUs);
      }
    }
    for (std::size_t i = 1; i < members.size(); ++i) {
      core_.pstore<u8>(
          map.mpb_base(members[i]) + SvmDomain::kBarrierReleaseOff, sense,
          scc::MemPolicy::kUncached);
    }
  } else {
    core_.pstore<u8>(map.mpb_base(master_core) +
                         SvmDomain::kBarrierArriveOff +
                         static_cast<u32>(core_.id()),
                     sense, scc::MemPolicy::kUncached);
    const u64 flag =
        map.mpb_base(core_.id()) + SvmDomain::kBarrierReleaseOff;
    TimePs gap = 200 * kPsPerNs;
    while (core_.pload<u8>(flag, scc::MemPolicy::kUncached) != sense) {
      core_.relax(gap);
      gap = std::min<TimePs>(gap * 2, 50 * kPsPerUs);
    }
  }
}

void Svm::barrier_dissemination() {
  // Classic dissemination barrier: in round r every rank signals the
  // rank 2^r ahead and waits for the rank 2^r behind; after ceil(log2 n)
  // rounds everyone has (transitively) heard from everyone. Flags are
  // double-buffered by barrier parity so a neighbour one full barrier
  // ahead writes the *other* set — and no core can ever be two barriers
  // ahead, because that would require passing a barrier this core has
  // not entered.
  const auto& members = domain_.members();
  const int n = static_cast<int>(members.size());
  // The algorithm is exact for any n (power of two or not): ceil(log2 n)
  // rounds of signal/wait at distances 1, 2, 4, ... — but each round
  // needs its own flag byte, and the MPB layout reserves exactly
  // kBarrierDissRounds per parity. Fail loudly rather than silently
  // corrupting a neighbouring flag if a domain ever exceeds 2^rounds
  // members.
  u32 rounds = 0;
  while ((1 << rounds) < n) ++rounds;
  if (rounds > SvmDomain::kBarrierDissRounds) {
    panic("dissemination barrier: domain has more members than the MPB "
          "flag layout supports (kBarrierDissRounds rounds)");
  }
  const u64 seq = diss_seq_++;
  const u32 parity = static_cast<u32>(seq % 2);
  const u8 sense = static_cast<u8>((seq / 2) % 2 + 1);
  const scc::AddrMap& map = core_.chip().map();
  int distance = 1;
  for (u32 round = 0; distance < n; ++round, distance *= 2) {
    const int to =
        members[static_cast<std::size_t>((rank_ + distance) % n)];
    core_.pstore<u8>(map.mpb_base(to) + SvmDomain::kBarrierDissOff +
                         parity * SvmDomain::kBarrierDissRounds + round,
                     sense, scc::MemPolicy::kUncached);
    const u64 own = map.mpb_base(core_.id()) + SvmDomain::kBarrierDissOff +
                    parity * SvmDomain::kBarrierDissRounds + round;
    // Rounds are short (one flag write away); a large backoff cap would
    // compound oversleeps across the log2(n) rounds.
    TimePs gap = 100 * kPsPerNs;
    while (core_.pload<u8>(own, scc::MemPolicy::kUncached) != sense) {
      core_.relax(gap);
      gap = std::min<TimePs>(gap * 2, 800 * kPsPerNs);
    }
  }
}

void Svm::protect_readonly(u64 vaddr, u64 bytes) {
  ++stats_.protect_calls;
  RegionAttrs* region = region_of(vaddr);
  if (region == nullptr) panic("protect_readonly outside any SVM region");
  const u64 page = core_.chip().config().page_bytes;
  // Make our writes visible and drop our MPBT lines: the region's lines
  // will re-enter the caches as plain (L2-capable) lines.
  core_.flush_wcb();
  core_.cl1invmb();
  for (u64 off = 0; off < bytes; off += page) {
    core_.pagetable().update(vaddr + off, [](scc::Pte& p) {
      p.writable = false;
      p.mpbt = false;
      p.l2_enable = true;
    });
    core_.compute_cycles(40);
  }
  region->readonly = true;
  barrier();
}

void Svm::unprotect(u64 vaddr, u64 bytes) {
  RegionAttrs* region = region_of(vaddr);
  if (region == nullptr) panic("unprotect outside any SVM region");
  const u64 page = core_.chip().config().page_bytes;
  // Drop all mappings: the next access re-faults through the normal
  // (model-aware) path, which restores MPBT attributes and — under the
  // strong model — re-establishes single ownership.
  for (u64 off = 0; off < bytes; off += page) {
    core_.pagetable().update(vaddr + off,
                             [](scc::Pte& p) { p.present = false; });
    core_.compute_cycles(40);
  }
  // Stale L2/L1 copies of the region must not survive into the writable
  // regime.
  core_.l2().invalidate_all();
  core_.l1().invalidate_all();
  core_.compute_cycles(2000);  // software L2 flush is expensive (Sec. 3)
  if (read_replication() && rank_ == 0) {
    // Every core just dropped its mappings, so no replica survives; a
    // stale Shared bit would let a future reader join the sharer set
    // without a grant while the owner re-faults a writable mapping.
    for (u64 off = 0; off < bytes; off += page) {
      dir_write(page_index_of(vaddr + off), 0);
    }
  }
  region->readonly = false;
  barrier();
}

void Svm::next_touch(u64 vaddr, u64 bytes) {
  RegionAttrs* region = region_of(vaddr);
  if (region == nullptr) panic("next_touch outside any SVM region");
  const u64 page = core_.chip().config().page_bytes;
  core_.flush_wcb();
  core_.cl1invmb();
  for (u64 off = 0; off < bytes; off += page) {
    core_.pagetable().update(vaddr + off,
                             [](scc::Pte& p) { p.present = false; });
  }
  barrier();  // everyone unmapped
  if (rank_ == 0) {
    for (u64 off = 0; off < bytes; off += page) {
      const u64 idx = page_index_of(vaddr + off);
      const u16 entry = scratchpad_read(idx);
      if ((entry & kFrameMask) != 0) {
        scratchpad_write(idx, entry | kMigrateBit);
      }
      // Migration installs a writable mapping without a directory
      // transition; reset the entry to Exclusive so no reader trusts a
      // stale Shared bit.
      if (read_replication()) dir_write(idx, 0);
    }
  }
  barrier();  // marks visible before anyone touches
}

// ---------------------------------------------------------------------------
// locks

void Svm::lock_acquire(int lock_id) {
  ++stats_.lock_acquires;
  const int reg = domain_.app_lock_reg(lock_id);
  u64 backoff = 16;
  while (!core_.tas_try_acquire(reg)) {
    core_.relax(backoff * core_.chip().config().core_cycle_ps());
    backoff = std::min<u64>(backoff * 2, 4096);
  }
  // Entering the critical section: see the lock holder's released data.
  if (model() == Model::kLazyRelease &&
      !domain_.config().sabotage.skip_acquire_invalidate) {
    core_.cl1invmb();
  }
}

void Svm::lock_release(int lock_id) {
  // Leaving: push our modifications down to memory.
  if (!domain_.config().sabotage.skip_release_flush) core_.flush_wcb();
  core_.tas_release(domain_.app_lock_reg(lock_id));
}

// ---------------------------------------------------------------------------
// metadata accessors (simulated, uncached)

u16 Svm::owner_read(u64 page_idx) {
  return core_.pload<u16>(domain_.owner_entry_paddr(page_idx),
                          scc::MemPolicy::kUncached);
}

void Svm::owner_write(u64 page_idx, u16 owner_core) {
  core_.pstore<u16>(domain_.owner_entry_paddr(page_idx), owner_core,
                    scc::MemPolicy::kUncached);
}

u64 Svm::dir_read(u64 page_idx) {
  return core_.pload<u64>(domain_.sharer_entry_paddr(page_idx),
                          scc::MemPolicy::kUncached);
}

void Svm::dir_write(u64 page_idx, u64 word) {
  core_.pstore<u64>(domain_.sharer_entry_paddr(page_idx), word,
                    scc::MemPolicy::kUncached);
}

u16 Svm::scratchpad_read(u64 page_idx) {
  return core_.pload<u16>(domain_.scratchpad_entry_paddr(page_idx),
                          scc::MemPolicy::kUncached);
}

void Svm::scratchpad_write(u64 page_idx, u16 value) {
  core_.pstore<u16>(domain_.scratchpad_entry_paddr(page_idx), value,
                    scc::MemPolicy::kUncached);
}

u16 Svm::alloc_frame_near(int preferred_mc) {
  // Frames come from the preferred controller's quarter while it lasts,
  // then fall back round-robin — the NUMA-style placement of Section 6.3.
  //
  // Each core draws from a private *batch* of contiguous frames and only
  // refills the batch from the shared per-MC counter. Besides cutting
  // counter traffic, this keeps one core's consecutively-touched pages
  // physically contiguous: interleaving allocations from several cores
  // would give every core's data an 8+ KiB physical stride, which maps
  // whole row-streams onto the same L1 sets (the page-coloring problem).
  const u16 freed = domain_.take_free_frame(preferred_mc);
  if (freed != 0) return freed;
  if (frame_batch_next_ < frame_batch_end_) {
    core_.compute_cycles(20);
    return frame_batch_next_++;
  }
  constexpr u16 kBatchFrames = 32;  // 128 KiB of contiguity
  for (int k = 0; k < scc::Mesh::kNumMemControllers; ++k) {
    const int mc = (preferred_mc + k) % scc::Mesh::kNumMemControllers;
    const auto [lo, hi] = domain_.frame_range_of_mc(mc);
    (void)lo;
    const u64 next = core_.pload<u64>(domain_.mc_counter_paddr(mc),
                                      scc::MemPolicy::kUncached);
    if (next < hi) {
      const u64 take = std::min<u64>(kBatchFrames, hi - next);
      core_.pstore<u64>(domain_.mc_counter_paddr(mc), next + take,
                        scc::MemPolicy::kUncached);
      frame_batch_next_ = static_cast<u16>(next);
      frame_batch_end_ = static_cast<u16>(next + take);
      return frame_batch_next_++;
    }
    const u16 fallback = domain_.take_free_frame(mc);
    if (fallback != 0) return fallback;
  }
  panic("out of shared SVM memory (all frame pools exhausted)");
}

void Svm::zero_frame(u16 frame_no) {
  const u64 base = domain_.frame_paddr(frame_no);
  const u32 line = core_.chip().config().line_bytes;
  const u32 page = core_.chip().config().page_bytes;
  const u8 zeros[64] = {0};
  for (u32 off = 0; off < page; off += line) {
    core_.pwrite(base + off, zeros, line, scc::MemPolicy::kMpbt);
  }
  core_.flush_wcb();
}

// ---------------------------------------------------------------------------
// fault path

namespace {

/// Accumulates the virtual time spent inside the fault handler (protocol
/// waits included) into the faulting core's stall telemetry; the RAII
/// form also covers the SvmProtectionError throw.
class FaultStallScope {
 public:
  explicit FaultStallScope(scc::Core& core)
      : core_(core), t0_(core.now()) {}
  ~FaultStallScope() {
    core_.counters().svm_fault_stall_ps += core_.now() - t0_;
  }
  FaultStallScope(const FaultStallScope&) = delete;
  FaultStallScope& operator=(const FaultStallScope&) = delete;

 private:
  scc::Core& core_;
  TimePs t0_;
};

}  // namespace

void Svm::handle_fault(u64 vaddr, bool is_write) {
  if (is_write) {
    ++core_.counters().svm_write_faults;
  } else {
    ++core_.counters().svm_read_faults;
  }
  FaultStallScope stall(core_);
  RegionAttrs* region = region_of(vaddr);
  if (region == nullptr) {
    std::fprintf(stderr,
                 "svm (core %d): fault at 0x%llx outside any region\n",
                 core_.id(), static_cast<unsigned long long>(vaddr));
    std::abort();
  }
  if (region->readonly && is_write) throw SvmProtectionError(vaddr);

  const u64 page_idx = page_index_of(vaddr);
  const scc::Pte* pte = core_.pagetable().find(vaddr);
  if (pte == nullptr || !pte->present) {
    mapping_fault(vaddr, page_idx, is_write);
    return;
  }
  // Present but insufficient permission: a strong-model write to a page
  // currently owned elsewhere would have been unmapped by the transfer
  // (or, under read replication, to a page this core only holds a
  // read-only replica of — the write upgrade).
  if (is_write && !pte->writable && model() == Model::kStrong) {
    acquire_ownership(vaddr, page_idx);
    return;
  }
  panic("unresolvable SVM fault");
}

void Svm::mapping_fault(u64 vaddr, u64 page_idx, bool is_write) {
  core_.compute_cycles(domain_.config().map_software_cycles);
  const u64 page_base = vaddr & ~(u64{core_.chip().config().page_bytes} - 1);
  RegionAttrs* region = region_of(vaddr);

  const int lock_reg = domain_.scratchpad_lock_reg(page_idx);
  u64 backoff = 16;
  while (!core_.tas_try_acquire(lock_reg)) {
    core_.relax(backoff * core_.chip().config().core_cycle_ps());
    backoff = std::min<u64>(backoff * 2, 4096);
  }
  u16 entry = scratchpad_read(page_idx);

  if ((entry & kFrameMask) == 0) {
    // First touch chip-wide: allocate near our memory controller, zero it
    // and publish the 16-bit representation.
    ++stats_.first_touch_allocs;
    core_.compute_cycles(domain_.config().first_touch_software_cycles);
    const u16 frame = alloc_frame_near(scc::Mesh::nearest_mc(core_.id()));
    zero_frame(frame);
    scratchpad_write(page_idx, frame);
    owner_write(page_idx, static_cast<u16>(core_.id()));
    core_.tas_release(lock_reg);
    if (region->readonly) {
      map_readonly(page_base, frame);
    } else {
      install_mapping(page_base, frame, /*writable=*/true);
    }
    return;
  }

  if ((entry & kMigrateBit) != 0) {
    // Affinity-on-next-touch: we are the first toucher after the mark —
    // move the frame next to our own controller.
    ++stats_.migrations;
    const u16 old_frame = entry & kFrameMask;
    const int my_mc = scc::Mesh::nearest_mc(core_.id());
    const u16 new_frame = alloc_frame_near(my_mc);
    const u32 line = core_.chip().config().line_bytes;
    const u32 page = core_.chip().config().page_bytes;
    u8 buf[64];
    for (u32 off = 0; off < page; off += line) {
      core_.pread(domain_.frame_paddr(old_frame) + off, buf, line,
                  scc::MemPolicy::kUncached);
      core_.pwrite(domain_.frame_paddr(new_frame) + off, buf, line,
                   scc::MemPolicy::kUncached);
    }
    const scc::PhysTarget old_target =
        core_.chip().map().decode(domain_.frame_paddr(old_frame));
    domain_.free_frame(old_target.owner, old_frame);
    scratchpad_write(page_idx, new_frame);
    owner_write(page_idx, static_cast<u16>(core_.id()));
    core_.tas_release(lock_reg);
    install_mapping(page_base, new_frame, /*writable=*/true);
    return;
  }

  // Frame already exists: plain (re)mapping.
  ++stats_.map_faults;
  const u16 frame = entry & kFrameMask;
  core_.tas_release(lock_reg);
  if (region->readonly) {
    map_readonly(page_base, frame);
    return;
  }
  if (model() == Model::kStrong) {
    if (read_replication() && !is_write) {
      // Read-replication fast path: a read fault joins the sharer set
      // (one grant round-trip at most) instead of moving ownership.
      acquire_read_replica(page_base, page_idx, frame);
      return;
    }
    // "the Strong Memory Model has to retrieve the access permissions
    // from the page owner" (Section 7.2.1) — for reads as much as writes,
    // since at each point in time only one owner may access the page.
    acquire_ownership(page_base, page_idx);
    return;
  }
  (void)is_write;
  install_mapping(page_base, frame, /*writable=*/true);
}

void Svm::acquire_ownership(u64 page_vaddr, u64 page_idx) {
  ++stats_.ownership_acquires;
  core_.compute_cycles(domain_.config().ownership_software_cycles);
  const u16 frame = scratchpad_read(page_idx) & kFrameMask;

  // Fast path: we already own the page (e.g. a mapping dropped by
  // unprotect or next_touch on a page we kept owning). Under read
  // replication the directory word must also be clear — a Shared page
  // (even with an empty sharer set) needs the locked path below to
  // invalidate replicas and reset the state to Exclusive.
  core_.irq_disable();
  if (owner_read(page_idx) == core_.id() &&
      (!read_replication() || dir_read(page_idx) == 0)) {
    install_mapping(page_vaddr, frame, /*writable=*/true);
    core_.irq_enable();
    return;
  }
  core_.irq_enable();

  // Serialise transfers of this page: with a free-for-all, a request can
  // chase an owner that keeps moving (three or more contenders forward
  // the mail around forever). While spinning — and while waiting for the
  // ACK below — incoming ownership requests keep being served through the
  // interrupt path, so the lock cannot deadlock the protocol.
  const int treg = domain_.transfer_lock_reg(page_idx);
  u64 spins = 0;
  u64 backoff = 16;
  while (!core_.tas_try_acquire(treg)) {
    if (++spins % 100000 == 0) {
      MSVM_LOG_ERROR(
          "core %d: stuck spinning on transfer lock %d for page %llu "
          "(holder=core %d, holder_page=%llu) t=%.3fms",
          core_.id(), treg, static_cast<unsigned long long>(page_idx),
          domain_.debug_lock_holder_[static_cast<std::size_t>(treg)],
          static_cast<unsigned long long>(
              domain_.debug_lock_page_[static_cast<std::size_t>(treg)]),
          ps_to_ms(core_.now()));
    }
    core_.relax(backoff * core_.chip().config().core_cycle_ps());
    backoff = std::min<u64>(backoff * 2, 4096);
  }
  domain_.debug_lock_holder_[static_cast<std::size_t>(treg)] = core_.id();
  domain_.debug_lock_page_[static_cast<std::size_t>(treg)] = page_idx;

  // Write upgrade, step 1 (read replication): multicast invalidations to
  // every read replica and reset the directory to Exclusive. The sharer
  // set is frozen while we hold the transfer lock — joining it requires
  // the same lock.
  if (read_replication()) invalidate_sharers(page_idx);

  u64 rounds = 0;
  for (;;) {
    if (++rounds % 1000 == 0) {
      MSVM_LOG_ERROR("core %d: acquire of page %llu not converging "
                     "(round %llu, owner=%u)",
                     core_.id(), static_cast<unsigned long long>(page_idx),
                     static_cast<unsigned long long>(rounds),
                     owner_read(page_idx));
    }
    const u16 owner = owner_read(page_idx);
    if (owner == core_.id()) {
      // Close the window between learning we own the page and mapping
      // it: an incoming request handled in between would unmap it again.
      core_.irq_disable();
      if (owner_read(page_idx) == core_.id()) {
        install_mapping(page_vaddr, frame, /*writable=*/true);
        core_.irq_enable();
        domain_.debug_lock_holder_[static_cast<std::size_t>(treg)] = -1;
        core_.tas_release(treg);
        return;
      }
      core_.irq_enable();
      continue;
    }
    mbox::Mail req;
    req.type = kMailOwnershipReq;
    req.p0 = page_idx;
    req.p1 = static_cast<u64>(core_.id());  // survives forwarding
    MSVM_LOG_DEBUG("core %d: REQ page %llu -> owner %u", core_.id(),
                   static_cast<unsigned long long>(page_idx), owner);
    mbox_.send(owner, req);
    if (domain_.config().ack_via_mail) {
      (void)mbox_.recv_match([page_idx](const mbox::Mail& m) {
        return m.type == kMailOwnershipAck && m.p0 == page_idx;
      });
      ++core_.counters().svm_mail_roundtrips;
      MSVM_LOG_DEBUG("core %d: ACK page %llu consumed (owner now %u)",
                     core_.id(),
                     static_cast<unsigned long long>(page_idx),
                     owner_read(page_idx));
    } else {
      // Prior-prototype scheme [14]: poll the off-die owner vector. This
      // is the "memory wall" behaviour the mailbox+ACK design removes.
      while (owner_read(page_idx) !=
             static_cast<u16>(core_.id())) {
        core_.yield();
      }
    }
    // Loop re-verifies ownership and maps under masked interrupts.
  }
}

void Svm::serve_ownership_request(const mbox::Mail& mail) {
  const u64 page_idx = mail.p0;
  const int requester = static_cast<int>(mail.p1);
  core_.compute_cycles(domain_.config().ownership_software_cycles);
  const u16 owner = owner_read(page_idx);
  if (owner == requester) {
    // Transfer already happened (raced with a forward); just confirm.
    MSVM_LOG_DEBUG("core %d: CONFIRM page %llu to %d", core_.id(),
                   static_cast<unsigned long long>(page_idx), requester);
    if (domain_.config().ack_via_mail) {
      mbox::Mail ack;
      ack.type = kMailOwnershipAck;
      ack.p0 = page_idx;
      mbox_.send(requester, ack);
    }
    return;
  }
  if (owner != core_.id()) {
    // We gave the page away before this request arrived: forward it to
    // the core we handed it to.
    MSVM_LOG_DEBUG("core %d: FWD page %llu req-by %d -> %u", core_.id(),
                   static_cast<unsigned long long>(page_idx), requester,
                   owner);
    ++stats_.ownership_forwards;
    mbox_.send(owner, mail);
    return;
  }
  MSVM_LOG_DEBUG("core %d: SERVE page %llu -> %d t=%.3fms", core_.id(),
                 static_cast<unsigned long long>(page_idx), requester,
                 ps_to_ms(core_.now()));

  // The paper's transfer sequence (Section 6.1, steps 3-5): flush the
  // write-combine buffer, invalidate the tagged L1 entries, drop our
  // access permission, publish the new owner, send the acknowledgment.
  ++stats_.ownership_serves;
  const auto& sabotage = domain_.config().sabotage;
  if (!sabotage.skip_serve_wcb_flush) core_.flush_wcb();
  if (!sabotage.skip_serve_cl1invmb) core_.cl1invmb();
  const u64 page_vaddr =
      scc::kSvmVBase + page_idx * core_.chip().config().page_bytes;
  if (!sabotage.skip_serve_unmap) {
    core_.pagetable().update(page_vaddr, [](scc::Pte& p) {
      p.present = false;
      p.writable = false;
    });
  }
  owner_write(page_idx, static_cast<u16>(requester));
  if (domain_.config().ack_via_mail) {
    mbox::Mail ack;
    ack.type = kMailOwnershipAck;
    ack.p0 = page_idx;
    mbox_.send(requester, ack);
  }
}

// ---------------------------------------------------------------------------
// read-replication directory protocol (SvmConfig::read_replication)
//
// The owner vector is extended by a per-page directory word holding the
// sharer bitmask and the Exclusive/Shared state (see kDirSharedBit). All
// directory transitions happen under the page's transfer lock, except the
// Exclusive->Shared downgrade the owner performs on behalf of the lock
// holder while serving its read request.

void Svm::acquire_read_replica(u64 page_vaddr, u64 page_idx, u16 frame) {
  core_.compute_cycles(domain_.config().ownership_software_cycles);

  // Fast path: we are the exclusive owner — remap writable without any
  // protocol traffic (mirrors the ownership fast path).
  core_.irq_disable();
  if (owner_read(page_idx) == core_.id() && dir_read(page_idx) == 0) {
    install_mapping(page_vaddr, frame, /*writable=*/true);
    core_.irq_enable();
    return;
  }
  core_.irq_enable();

  // The transfer lock serialises directory transitions of this page:
  // while we hold it no write upgrade can invalidate the replica we are
  // about to install, and no other reader can race our sharer update.
  const int treg = domain_.transfer_lock_reg(page_idx);
  u64 backoff = 16;
  while (!core_.tas_try_acquire(treg)) {
    core_.relax(backoff * core_.chip().config().core_cycle_ps());
    backoff = std::min<u64>(backoff * 2, 4096);
  }
  domain_.debug_lock_holder_[static_cast<std::size_t>(treg)] = core_.id();
  domain_.debug_lock_page_[static_cast<std::size_t>(treg)] = page_idx;
  const auto unlock = [&] {
    domain_.debug_lock_holder_[static_cast<std::size_t>(treg)] = -1;
    core_.tas_release(treg);
  };

  for (;;) {
    const u16 owner = owner_read(page_idx);
    if (owner == core_.id()) {
      // We own the page after all (a transfer raced ahead of the
      // fault). Shared: our mapping was downgraded — stay read-only so
      // the sharer invariants hold; Exclusive: map writable.
      core_.irq_disable();
      if (owner_read(page_idx) == core_.id()) {
        const bool shared = (dir_read(page_idx) & kDirSharedBit) != 0;
        install_mapping(page_vaddr, frame, /*writable=*/!shared);
        core_.irq_enable();
        unlock();
        return;
      }
      core_.irq_enable();
      continue;
    }
    const u64 dir = dir_read(page_idx);
    if ((dir & kDirSharedBit) != 0) {
      // Already Shared: the owner flushed its WCB when the state was
      // entered and cannot have written since (its mapping is read-only),
      // so the frame is clean in DRAM — join the sharer set without
      // contacting anyone. Stale MPBT lines from an earlier ownership of
      // this page must not shadow the fresh data.
      dir_write(page_idx, dir | dir_bit(core_.id()));
      core_.cl1invmb();
      install_mapping(page_vaddr, frame, /*writable=*/false);
      ++stats_.replica_installs;
      unlock();
      return;
    }
    // Exclusive at a remote owner: one grant round-trip downgrades the
    // owner to Shared. No ownership transfer, no CL1INVMB on the owner.
    mbox::Mail req;
    req.type = kMailReadReq;
    req.p0 = page_idx;
    req.p1 = static_cast<u64>(core_.id());  // survives forwarding
    MSVM_LOG_DEBUG("core %d: READ-REQ page %llu -> owner %u", core_.id(),
                   static_cast<unsigned long long>(page_idx), owner);
    mbox_.send(owner, req);
    (void)mbox_.recv_match([page_idx](const mbox::Mail& m) {
      return m.type == kMailReadAck && m.p0 == page_idx;
    });
    ++core_.counters().svm_mail_roundtrips;
    // Loop: the ACK normally means the Shared bit is now set; re-check
    // in case the request chased a stale owner.
  }
}

void Svm::serve_read_request(const mbox::Mail& mail) {
  const u64 page_idx = mail.p0;
  const int requester = static_cast<int>(mail.p1);
  core_.compute_cycles(domain_.config().ownership_software_cycles);
  const u16 owner = owner_read(page_idx);
  if (owner == requester) {
    // A forward raced with an ownership transfer to the requester
    // itself; just confirm so its wait terminates.
    mbox::Mail ack;
    ack.type = kMailReadAck;
    ack.p0 = page_idx;
    mbox_.send(requester, ack);
    return;
  }
  if (owner != core_.id()) {
    // We gave the page away before this request arrived: chase the
    // current owner.
    ++stats_.ownership_forwards;
    mbox_.send(owner, mail);
    return;
  }
  MSVM_LOG_DEBUG("core %d: READ-GRANT page %llu -> %d", core_.id(),
                 static_cast<unsigned long long>(page_idx), requester);
  // Exclusive -> Shared: publish our writes and downgrade our own
  // mapping so a later local write takes the upgrade path. Our L1 is
  // write-through — it holds nothing newer than the WCB flush, so no
  // CL1INVMB is needed (the saving over a full ownership transfer).
  ++stats_.replica_grants;
  core_.flush_wcb();
  const u64 page_vaddr =
      scc::kSvmVBase + page_idx * core_.chip().config().page_bytes;
  core_.pagetable().update(page_vaddr,
                           [](scc::Pte& p) { p.writable = false; });
  dir_write(page_idx, dir_read(page_idx) | kDirSharedBit);
  mbox::Mail ack;
  ack.type = kMailReadAck;
  ack.p0 = page_idx;
  mbox_.send(requester, ack);
}

void Svm::serve_invalidation(const mbox::Mail& mail) {
  const u64 page_idx = mail.p0;
  const int requester = static_cast<int>(mail.p1);
  core_.compute_cycles(domain_.config().ownership_software_cycles);
  ++stats_.invalidations_received;
  ++core_.counters().svm_inval_recv;
  const u64 page_vaddr =
      scc::kSvmVBase + page_idx * core_.chip().config().page_bytes;
  // Drop the replica mapping and its cached lines: the replica is
  // read-only and MPBT-typed, so CL1INVMB discards exactly the lines a
  // future re-read must fetch fresh.
  core_.pagetable().update(page_vaddr, [](scc::Pte& p) {
    p.present = false;
    p.writable = false;
  });
  core_.cl1invmb();
  MSVM_LOG_DEBUG("core %d: INVAL page %llu (upgrade by %d)", core_.id(),
                 static_cast<unsigned long long>(page_idx), requester);
  mbox::Mail ack;
  ack.type = kMailInvalAck;
  ack.p0 = page_idx;
  mbox_.send(requester, ack);
}

void Svm::invalidate_sharers(u64 page_idx) {
  const u64 dir = dir_read(page_idx);
  if (dir == 0) return;
  const u64 mask = dir & kDirSharerMask & ~dir_bit(core_.id());
  const int nshare = std::popcount(mask);
  if (nshare > 0) {
    mbox::Mail inv;
    inv.type = kMailInval;
    inv.p0 = page_idx;
    inv.p1 = static_cast<u64>(core_.id());
    mbox_.multicast(mask, inv);
    stats_.invalidations_sent += static_cast<u64>(nshare);
    core_.counters().svm_inval_sent += static_cast<u64>(nshare);
    for (int i = 0; i < nshare; ++i) {
      (void)mbox_.recv_match([page_idx](const mbox::Mail& m) {
        return m.type == kMailInvalAck && m.p0 == page_idx;
      });
    }
    ++core_.counters().svm_mail_roundtrips;  // one multicast round
  }
  dir_write(page_idx, 0);  // Exclusive again
}

void Svm::install_mapping(u64 page_vaddr, u16 frame_no, bool writable) {
  scc::Pte pte;
  pte.frame_paddr = domain_.frame_paddr(frame_no);
  pte.present = true;
  pte.writable = writable;
  pte.mpbt = true;  // SVM pages are MPBT-typed: L1 WT + WCB, no L2
  pte.l2_enable = false;
  core_.pagetable().map(page_vaddr, pte);
  core_.compute_cycles(80);
}

void Svm::map_readonly(u64 page_vaddr, u16 frame_no) {
  scc::Pte pte;
  pte.frame_paddr = domain_.frame_paddr(frame_no);
  pte.present = true;
  pte.writable = false;
  pte.mpbt = false;  // read-only regions may use the L2 (Section 6.4)
  pte.l2_enable = true;
  core_.pagetable().map(page_vaddr, pte);
  core_.compute_cycles(80);
}

}  // namespace msvm::svm
