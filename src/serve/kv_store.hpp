// Sharded in-memory key-value store over SVM shared regions.
//
// The table is hash-partitioned into shards, each owned by one *home*
// member core (shard s is homed on rank s % members). Every shard's
// slot array lives in its own page-aligned slice of one collective SVM
// allocation, and the home core first-touches its slice at init — so
// frames land near the home's memory controller, and under the Strong
// model the home acquires (and keeps) page ownership, making steady-
// state serving a run of local L1 hits. Requests from other cores are
// routed to the home over the mailbox layer (see kv_serving.*); remote
// cores never touch a foreign shard's pages directly, which keeps the
// tier correct under all three coherence models and confines a fail-
// stopped home's page poisonings to the shard nobody else will read.
//
// Keys are dense in [0, num_keys): shard_of = key % shards, slot =
// key / shards — a perfect hash, so there is no collision chain and a
// slot's address is a pure function of the key.
//
// Values are self-verifying: slot contents are derived words
// value_word(seed, key, version, i), so any byte the store hands back
// can be checked against the (key, version) pair it claims to carry —
// by the serving core when it executes the op, and independently by the
// client when the reply's fold arrives. Silent corruption anywhere in
// the SVM/mailbox stack surfaces as a verification mismatch, never as
// a plausible-looking answer (same discipline as the kill-mosaic
// workload's slot checksums).
#pragma once

#include "sim/types.hpp"
#include "svm/svm.hpp"

namespace msvm::serve {

struct KvConfig {
  /// Shard count; 0 means one shard per member core.
  u32 shards = 0;
  u64 num_keys = 4096;
  /// 8-byte value words per entry; the entry is the version word plus
  /// the value words, padded to a 64-byte line.
  u32 value_words = 6;
  /// Seed the derived value words are keyed on.
  u64 seed = 42;
  /// TAS stripes backing the per-shard locks (shard -> stripe by mod).
  u32 lock_stripes = 16;
};

/// Per-core view of the shared store. Every member constructs one (the
/// constructor performs the collective SVM allocation, so construction
/// is itself a collective call), then each home initialises its own
/// shards before serving.
class KvStore {
 public:
  KvStore(svm::Svm& svm, const KvConfig& cfg, int num_members);

  u32 num_shards() const { return shards_; }
  u64 num_keys() const { return cfg_.num_keys; }
  u64 keys_per_shard() const { return keys_per_shard_; }
  u64 base_vaddr() const { return base_; }
  u64 shard_bytes() const { return shard_bytes_; }

  u32 shard_of(u64 key) const {
    return static_cast<u32>(key % shards_);
  }
  /// Rank (not core id) of the member that owns `shard`.
  int home_rank(u32 shard) const {
    return static_cast<int>(shard % static_cast<u32>(num_members_));
  }
  /// TAS lock id guarding `shard` (pass to Svm::lock_acquire).
  int lock_id(u32 shard) const {
    return static_cast<int>(shard % cfg_.lock_stripes);
  }

  /// Home-side init: fills every slot of `shard` with version 1 and its
  /// derived value words (first touch places the frames). Call once per
  /// owned shard before serving.
  void init_shard(u32 shard);

  struct OpResult {
    bool ok = false;   // store-side verification of what was read
    u64 version = 0;   // entry version the op observed/installed
    u64 fold = 0;      // fold of the value words read/written
    u32 count = 0;     // entries touched (1, or scan length)
  };

  /// Reads the entry and verifies the stored words against the stored
  /// version; `fold` is computed from the words actually read so the
  /// caller can re-verify end to end. Ops take the shard's TAS lock.
  OpResult get(u64 key);

  /// Bumps the version and installs the new derived words; `fold`
  /// covers the written words.
  OpResult put(u64 key);

  /// Reads `len` consecutive slots of the key's shard (wrapping within
  /// the shard), verifying each; `fold` mixes all entry folds.
  OpResult scan(u64 key, u32 len);

  // ---- the self-verifying value scheme ----

  /// The i-th derived value word of (key, version) under `seed`
  /// (splitmix-style finalizer, like the kill-mosaic slot values: a
  /// misplaced or stale word mismatches, never collides plausibly).
  static u64 value_word(u64 seed, u64 key, u64 version, u32 i);

  /// Fold of all value words of (key, version) — what a correct GET or
  /// PUT reply must carry for that version.
  static u64 value_fold(u64 seed, u64 key, u64 version, u32 value_words);

 private:
  u64 entry_vaddr(u64 key) const;

  svm::Svm& svm_;
  KvConfig cfg_;
  int num_members_;
  u32 shards_;
  u64 keys_per_shard_;
  u64 entry_bytes_;
  u64 shard_bytes_;  // page-aligned slice per shard
  u64 base_ = 0;
};

}  // namespace msvm::serve
