// The served-traffic tier: every member core is both a client (an
// open-loop generator issuing GET/PUT/SCAN against the sharded KV
// store) and a server (executing requests for the shards it homes).
//
// Request framing over the mailbox layer:
//
//   kMailKvReq   arg16 = op | scan_len<<2      p0=key  p1=reqid
//   kMailKvAck   arg16 = status                p0=reqid p1=version/count
//                                              p2=fold
//
// A request is routed to its shard's home core; the home executes the
// op against SVM under the shard's TAS lock and replies with the
// version and value fold. The client verifies the fold against the
// self-verifying value scheme (KvStore::value_fold), so a wrong answer
// anywhere in the stack is *detected*, never absorbed. Latency is
// captured per request from intended arrival (open loop — queueing
// delay counts) to reply, into a serve::LatencyHisto.
//
// The tier is deliberately barrier-free after construction: a home that
// fail-stops mid-run can never wedge the survivors at a rendezvous.
// Clients fail fast on presumed-dead homes (typed shed), time out on
// unanswered requests (typed timeout), and optionally retransmit —
// under kill/fault campaigns the contract is graceful degradation:
// fewer completions, zero wrong responses, zero hangs.
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "serve/kv_store.hpp"
#include "serve/latency_histo.hpp"
#include "serve/workload_gen.hpp"
#include "sim/faults.hpp"

namespace msvm::serve {

/// Mail types of the KV request/reply framing (SVM protocol mails own
/// 0x20..0x25; the serving tier starts at 0x30).
inline constexpr u8 kMailKvReq = 0x30;
inline constexpr u8 kMailKvAck = 0x31;

/// kMailKvAck status values.
inline constexpr u16 kKvStatusOk = 0;
inline constexpr u16 kKvStatusCorrupt = 1;  // server-side verify failed

struct KvServingParams {
  KvConfig store;
  GenConfig gen;
  /// Virtual-time budget after the load window for in-flight requests
  /// to drain before the run ends.
  TimePs drain_ps = 500 * kPsPerUs;
  /// Client-side request timeout (from issue to reply).
  TimePs timeout_ps = 200 * kPsPerUs;
  /// Retransmissions after a timeout before declaring the request lost.
  u32 retries = 1;
  /// In-flight requests per client; arrivals beyond this queue (open
  /// loop: their waiting time is measured, not elided).
  u32 max_outstanding = 4;

  /// Common virtual-time instant (from simulation start) at which every
  /// core begins issuing; arrivals and latency are measured against it.
  /// Cores finishing store init early relax until the epoch — a *time*
  /// rendezvous, not a barrier, so a core that dies during init can
  /// never wedge the survivors. Must comfortably cover construction +
  /// init (a late core starts late and is counted in late_starts).
  /// Init is dominated by first-touch faults on the shard pages, which
  /// convoy through the directory homes' single-slot channels: at 48
  /// cores the slowest home is ready at ~11 ms.
  TimePs start_epoch_ps = 16 * kPsPerMs;

  u64 seed = 42;
  bool read_replication = false;
  bool use_ipi = true;
  int sched_lanes = 1;
  sim::FaultPlan faults;
};

struct KvServingResult {
  // Client side.
  u64 issued = 0;       // requests handed to the transport (or run locally)
  u64 completed = 0;    // replies received (wrong ones included)
  u64 completed_in_window = 0;  // ... before the load window closed
  u64 wrong = 0;        // fold/status mismatches — contract violations
  u64 timeouts = 0;     // no reply within timeout after all retries
  u64 dead_shed = 0;    // failed fast: home presumed dead
  u64 unfinished = 0;   // still queued or in flight when the run ended
  u64 retransmits = 0;
  u64 stale_acks = 0;   // replies that arrived after their request retired
  u64 gets = 0, puts = 0, scans = 0;

  // Server side.
  u64 served_ops = 0;   // ops executed for remote clients
  u64 local_ops = 0;    // ops a client ran against its own shard
  u64 acks_dropped = 0; // replies undeliverable (dead/stuck requester)

  /// Merged request-latency histogram (picoseconds), intended-arrival
  /// to completion.
  LatencyHisto latency;

  /// completed_in_window / load-window seconds, summed over all cores
  /// (the tier's sustained goodput in requests per virtual second;
  /// drain-window completions are excluded so a saturated run reports
  /// capacity, not the offered rate).
  double goodput_rps = 0;

  /// Cores whose init overran the start epoch (they begin late; their
  /// early requests absorb the delay as measured queueing latency).
  int late_starts = 0;

  // Fail-stop bookkeeping (kill campaigns).
  int ranks_lost = 0;
  std::vector<cluster::Cluster::MemberFailure> failures;
  u64 recoveries = 0;
  u64 pages_lost = 0;

  TimePs makespan = 0;
};

/// Runs the serving tier on `num_cores` cores under `model`; propagates
/// sim::HangError (the caller decides what a hang means for the run).
KvServingResult run_kv_serving(const KvServingParams& p, svm::Model model,
                               int num_cores);

}  // namespace msvm::serve
