#include "serve/kv_store.hpp"

#include <cassert>

namespace msvm::serve {

namespace {

u64 mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

u64 round_up(u64 v, u64 align) { return (v + align - 1) / align * align; }

}  // namespace

u64 KvStore::value_word(u64 seed, u64 key, u64 version, u32 i) {
  return mix64(seed ^ (key << 20) ^ (version << 4) ^ i);
}

u64 KvStore::value_fold(u64 seed, u64 key, u64 version, u32 value_words) {
  u64 fold = 0;
  for (u32 i = 0; i < value_words; ++i) {
    const u64 w = value_word(seed, key, version, i);
    fold = (fold << 7 | fold >> 57) ^ w;
  }
  return fold;
}

KvStore::KvStore(svm::Svm& svm, const KvConfig& cfg, int num_members)
    : svm_(svm), cfg_(cfg), num_members_(num_members) {
  assert(num_members > 0);
  shards_ = cfg_.shards != 0 ? cfg_.shards
                             : static_cast<u32>(num_members);
  assert(cfg_.lock_stripes > 0);
  keys_per_shard_ = (cfg_.num_keys + shards_ - 1) / shards_;
  // Version word + value words, padded to a 64-byte line so one entry
  // never straddles lines.
  entry_bytes_ = round_up(8 * (1 + static_cast<u64>(cfg_.value_words)), 64);
  // Page-aligned shard slices: no page is ever shared by two shards, so
  // the only core that touches a shard's pages (its home) is also the
  // only one a fail-stop there can hurt.
  const u64 page = svm_.core().chip().config().page_bytes;
  shard_bytes_ = round_up(keys_per_shard_ * entry_bytes_, page);
  base_ = svm_.alloc(shard_bytes_ * shards_);  // collective
}

u64 KvStore::entry_vaddr(u64 key) const {
  const u32 shard = shard_of(key);
  const u64 slot = key / shards_;
  return base_ + static_cast<u64>(shard) * shard_bytes_ +
         slot * entry_bytes_;
}

void KvStore::init_shard(u32 shard) {
  // Lockless by design: init happens before the serving epoch, when no
  // request can reach this shard yet, and the home is the only core
  // that ever touches its pages — its own later reads see its own
  // writes under every model. Taking the striped TAS lock here would
  // serialise the inits of every shard sharing a stripe (and stripes
  // alias in the TAS register file), delaying the last home past the
  // start epoch at high core counts.
  for (u64 slot = 0; slot < keys_per_shard_; ++slot) {
    const u64 key = slot * shards_ + shard;
    if (key >= cfg_.num_keys) break;
    const u64 e = entry_vaddr(key);
    svm_.write<u64>(e, 1);  // initial version
    for (u32 i = 0; i < cfg_.value_words; ++i) {
      svm_.write<u64>(e + 8 * (1 + static_cast<u64>(i)),
                      value_word(cfg_.seed, key, 1, i));
    }
  }
}

KvStore::OpResult KvStore::get(u64 key) {
  assert(key < cfg_.num_keys);
  const u64 e = entry_vaddr(key);
  OpResult r;
  svm_.lock_acquire(lock_id(shard_of(key)));
  r.version = svm_.read<u64>(e);
  u64 fold = 0;
  bool ok = r.version != 0;
  for (u32 i = 0; i < cfg_.value_words; ++i) {
    const u64 w = svm_.read<u64>(e + 8 * (1 + static_cast<u64>(i)));
    fold = (fold << 7 | fold >> 57) ^ w;
    ok = ok && w == value_word(cfg_.seed, key, r.version, i);
  }
  svm_.lock_release(lock_id(shard_of(key)));
  r.fold = fold;
  r.ok = ok;
  r.count = 1;
  return r;
}

KvStore::OpResult KvStore::put(u64 key) {
  assert(key < cfg_.num_keys);
  const u64 e = entry_vaddr(key);
  OpResult r;
  svm_.lock_acquire(lock_id(shard_of(key)));
  const u64 old = svm_.read<u64>(e);
  r.version = old + 1;
  u64 fold = 0;
  for (u32 i = 0; i < cfg_.value_words; ++i) {
    const u64 w = value_word(cfg_.seed, key, r.version, i);
    svm_.write<u64>(e + 8 * (1 + static_cast<u64>(i)), w);
    fold = (fold << 7 | fold >> 57) ^ w;
  }
  // Version is published last: a torn entry (words without the matching
  // version) can only exist below a version that still verifies.
  svm_.write<u64>(e, r.version);
  svm_.lock_release(lock_id(shard_of(key)));
  r.fold = fold;
  r.ok = true;
  r.count = 1;
  return r;
}

KvStore::OpResult KvStore::scan(u64 key, u32 len) {
  assert(key < cfg_.num_keys);
  const u32 shard = shard_of(key);
  const u64 start = key / shards_;
  OpResult r;
  r.ok = true;
  svm_.lock_acquire(lock_id(shard));
  for (u32 k = 0; k < len; ++k) {
    const u64 slot = (start + k) % keys_per_shard_;
    const u64 skey = slot * shards_ + shard;
    if (skey >= cfg_.num_keys) continue;  // ragged last shard
    const u64 e = base_ + static_cast<u64>(shard) * shard_bytes_ +
                  slot * entry_bytes_;
    const u64 version = svm_.read<u64>(e);
    u64 fold = 0;
    bool ok = version != 0;
    for (u32 i = 0; i < cfg_.value_words; ++i) {
      const u64 w = svm_.read<u64>(e + 8 * (1 + static_cast<u64>(i)));
      fold = (fold << 7 | fold >> 57) ^ w;
      ok = ok && w == value_word(cfg_.seed, skey, version, i);
    }
    r.ok = r.ok && ok;
    r.fold = (r.fold << 9 | r.fold >> 55) ^ fold;
    ++r.count;
  }
  svm_.lock_release(lock_id(shard));
  r.version = 0;  // a scan spans many versions; the fold is the witness
  return r;
}

}  // namespace msvm::serve
