// Zipfian key-popularity sampler for the serving tier's synthetic load.
//
// Production key-value traffic is heavily skewed — a small set of hot
// keys absorbs most requests (the YCSB default models this with a
// Zipf(0.99) distribution). The sampler precomputes the cumulative
// weight table once (host-side, O(n)) and draws by binary search on a
// uniform deviate from the run's deterministic Rng, so the sequence of
// keys is a pure function of (seed, draw index) on every platform.
//
// theta = 0 degrades to the uniform distribution; larger theta skews
// harder. Keyspace sizes stay modest (thousands to tens of thousands),
// so the table is small and exact rather than approximated.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace msvm::serve {

class ZipfSampler {
 public:
  ZipfSampler(u64 num_keys, double theta) : cdf_(num_keys) {
    double sum = 0;
    for (u64 i = 0; i < num_keys; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  u64 num_keys() const { return cdf_.size(); }

  /// Draws one key in [0, num_keys). Key 0 is the hottest.
  u64 sample(sim::Rng& rng) const {
    const double u = rng.next_double();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    const auto idx = static_cast<u64>(it - cdf_.begin());
    return std::min(idx, cdf_.size() - 1);
  }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(key <= i)
};

}  // namespace msvm::serve
