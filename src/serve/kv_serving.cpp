#include "serve/kv_serving.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "mailbox/reliable.hpp"
#include "sccsim/chip.hpp"

namespace msvm::serve {

namespace {

/// Modelled client-loop bookkeeping cost per productive iteration.
constexpr u64 kLoopCycles = 32;
/// Re-poll gap while a send target's slot is full or acks are pending.
constexpr TimePs kBusyRetryPs = 2 * kPsPerUs;
/// Poll-mode idle granularity (an IPI-less receiver must scan slots).
constexpr TimePs kPollGapPs = 20 * kPsPerUs;
constexpr TimePs kMinIdlePs = 200 * kPsPerNs;

/// One in-flight client request.
struct Slot {
  bool active = false;
  Request req;
  u64 reqid = 0;
  int dest = -1;
  TimePs deadline = 0;
  u32 tries = 0;
};

/// A reply whose first try_send found the requester's slot full.
struct PendingAck {
  int dest;
  mbox::Mail mail;
  TimePs deadline;
};

/// Host-side per-rank tallies, merged into the result after the run.
struct CoreTally {
  u64 issued = 0, completed = 0, in_window = 0, wrong = 0, timeouts = 0;
  u64 dead_shed = 0;
  u64 unfinished = 0, retransmits = 0, stale_acks = 0;
  u64 gets = 0, puts = 0, scans = 0;
  u64 served_ops = 0, local_ops = 0, acks_dropped = 0;
  int late_start = 0;
  LatencyHisto histo;
};

}  // namespace

KvServingResult run_kv_serving(const KvServingParams& p, svm::Model model,
                               int num_cores) {
  cluster::ClusterConfig cfg;
  scc::configure_cores(cfg.chip, num_cores);
  cfg.chip.sched_lanes = p.sched_lanes;
  cfg.chip.shared_dram_bytes = 32 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.model = model;
  cfg.svm.read_replication = p.read_replication;
  cfg.use_ipi = p.use_ipi;
  cfg.chip.faults = p.faults;
  // The serving tier is the one place a lease is consulted as a *detector*
  // (shed-on-presumed-dead at issue time), not merely as a grace period on
  // a ground-truth death. A sound detector needs heartbeats refreshed well
  // inside the lease, and heartbeats ride the kernel timer tick — so when
  // lease detection is armed, shorten the tick to a quarter of the lease.
  if (p.faults.lease_ps > 0) {
    const u64 tick_us =
        std::max<u64>(1, p.faults.lease_ps / (4 * kPsPerUs));
    cfg.chip.timer_period_us =
        std::min<u64>(cfg.chip.timer_period_us, tick_us);
  }
  cluster::Cluster cl(cfg);
  const std::vector<int>& members = cl.members();

  // The popularity table is identical for every rank; build it once.
  const ZipfSampler zipf(p.gen.num_keys, p.gen.zipf_theta);
  std::vector<CoreTally> tally(static_cast<std::size_t>(num_cores));

  cl.run([&](cluster::Node& n) {
    svm::Svm& svm = n.svm();
    scc::Core& core = n.core();
    mbox::MailboxSystem& mb = n.mbox();
    scc::Chip& chip = core.chip();
    const int rank = n.rank();
    CoreTally& t = tally[static_cast<std::size_t>(rank)];

    KvStore store(svm, p.store, n.size());
    // Home-side init, first touch placing each shard near its home. No
    // barrier afterwards: a home serves only after its own init, and
    // requests that arrive early just wait in the software inbox.
    for (u32 s = 0; s < store.num_shards(); ++s) {
      if (store.home_rank(s) == rank) store.init_shard(s);
    }

    // Time-rendezvous at the start epoch: everyone's stream clock is the
    // same virtual instant, so a request's home is in (or about to
    // enter) its serve loop when the request lands. No barrier — a core
    // that died during init simply never shows up, and nobody waits.
    // While asleep a core takes no timer ticks, so with lease detection
    // armed it must wake often enough to keep heartbeating or its peers
    // will shed traffic to a perfectly healthy core.
    const TimePs max_nap = chip.lease_enabled()
                               ? p.faults.lease_ps / 4
                               : std::numeric_limits<TimePs>::max();
    while (core.now() < p.start_epoch_ps) {
      if (!mb.use_ipi()) mb.poll_all();
      TimePs left = p.start_epoch_ps - core.now();
      if (!mb.use_ipi()) left = std::min(left, kPollGapPs);
      core.relax(std::min(left, max_nap));
    }
    // The relax wake lands a hair past the epoch (interrupt delivery
    // granularity); only a core whose *init* overran the epoch is late.
    if (core.now() > p.start_epoch_ps + 50 * kPsPerUs) ++t.late_start;

    OpenLoopGen gen(p.gen, zipf, p.seed, rank);
    const TimePs t0 = p.start_epoch_ps;
    const TimePs t_end = t0 + p.gen.load_ps + p.drain_ps;

    std::deque<Request> backlog;
    std::vector<Slot> slots(p.max_outstanding);
    std::deque<PendingAck> pending_acks;
    // Request identity + retransmission through the shared reliable-
    // delivery endpoint; ids are 64-bit (rank << 32 | monotonic) because
    // a serving run issues far more requests than a 16-bit protocol
    // sequence could distinguish.
    mbox::ReliableChannel chan(mb);
    const u64 rank_tag = static_cast<u64>(rank) << 32;

    auto is_req = [](const mbox::Mail& m) {
      return m.type == kMailKvReq;
    };
    auto is_ack = [](const mbox::Mail& m) {
      return m.type == kMailKvAck;
    };

    auto exec = [&](KvOp op, u64 key, u32 scan_len) -> KvStore::OpResult {
      switch (op) {
        case KvOp::kGet: return store.get(key);
        case KvOp::kPut: return store.put(key);
        case KvOp::kScan: return store.scan(key, std::max(1u, scan_len));
      }
      return {};
    };

    auto count_op = [&](KvOp op) {
      if (op == KvOp::kGet) ++t.gets;
      else if (op == KvOp::kPut) ++t.puts;
      else ++t.scans;
    };

    /// Client-side end-to-end check of a reply against the
    /// self-verifying value scheme.
    auto reply_ok = [&](const Request& req, const mbox::Mail& ack) {
      if (ack.arg16 != kKvStatusOk) return false;
      if (req.op == KvOp::kScan) return true;  // server-verified fold
      return ack.p2 == KvStore::value_fold(p.store.seed, req.key, ack.p1,
                                           p.store.value_words);
    };

    auto serve_one = [&](const mbox::Mail& m) {
      const auto op = static_cast<KvOp>(m.arg16 & 3);
      const u32 scan_len = m.arg16 >> 2;
      const KvStore::OpResult r = exec(op, m.p0, scan_len);
      ++t.served_ops;
      mbox::Mail ack;
      ack.type = kMailKvAck;
      ack.arg16 = r.ok ? kKvStatusOk : kKvStatusCorrupt;
      ack.p0 = m.p1;  // reqid
      ack.p1 = op == KvOp::kScan ? r.count : r.version;
      ack.p2 = r.fold;
      if (!mb.try_send(m.sender, ack)) {
        pending_acks.push_back(
            {m.sender, ack, core.now() + p.timeout_ps});
      }
    };

    auto complete = [&](const mbox::Mail& ack) {
      for (Slot& s : slots) {
        if (!s.active || s.reqid != ack.p0) continue;
        ++t.completed;
        if (core.now() <= t0 + p.gen.load_ps) ++t.in_window;
        if (!reply_ok(s.req, ack)) ++t.wrong;
        t.histo.record(core.now() - (t0 + s.req.arrival));
        s.active = false;
        return;
      }
      ++t.stale_acks;  // late ack of a retired request (dup/retry)
    };

    auto run_local = [&](const Request& r) {
      const KvStore::OpResult res = exec(r.op, r.key, r.scan_len);
      ++t.local_ops;
      ++t.issued;
      count_op(r.op);
      ++t.completed;
      if (core.now() <= t0 + p.gen.load_ps) ++t.in_window;
      const bool ok =
          res.ok && (r.op == KvOp::kScan ||
                     res.fold == KvStore::value_fold(p.store.seed, r.key,
                                                     res.version,
                                                     p.store.value_words));
      if (!ok) ++t.wrong;
      t.histo.record(core.now() - (t0 + r.arrival));
    };

    // Issues the oldest queued arrival if a slot is free and the
    // transport accepts it; returns whether anything moved.
    auto try_issue = [&]() -> bool {
      if (backlog.empty()) return false;
      Slot* free_slot = nullptr;
      for (Slot& s : slots) {
        if (!s.active) {
          free_slot = &s;
          break;
        }
      }
      if (free_slot == nullptr) return false;
      const Request r = backlog.front();
      const int dest = members[static_cast<std::size_t>(
          store.home_rank(store.shard_of(r.key)))];
      if (dest == core.id()) {
        backlog.pop_front();
        run_local(r);
        return true;
      }
      if (chip.peer_presumed_dead(dest, core.now())) {
        backlog.pop_front();
        ++t.dead_shed;  // typed loss: the shard's home is gone
        return true;
      }
      // No age-based shedding: open loop means an arrival that queued
      // behind the outstanding limit is *measured* (its waiting time is
      // latency), never quietly dropped. Stuck destinations are handled
      // above (presumed dead) and by the per-slot timeout machinery;
      // anything still queued at the end of the run counts unfinished.
      mbox::Mail m;
      m.type = kMailKvReq;
      m.arg16 = static_cast<u16>(static_cast<u16>(r.op) |
                                 (u32{r.scan_len} << 2));
      m.p0 = r.key;
      m.p1 = chan.reqid(rank_tag);
      if (!mb.try_send(dest, m)) return false;  // slot full; retry later
      backlog.pop_front();
      free_slot->active = true;
      free_slot->req = r;
      free_slot->reqid = m.p1;
      free_slot->dest = dest;
      free_slot->deadline = core.now() + p.timeout_ps;
      free_slot->tries = 1;
      chan.advance_reqid();
      ++t.issued;
      count_op(r.op);
      return true;
    };

    auto check_timeouts = [&]() {
      for (Slot& s : slots) {
        if (!s.active || core.now() < s.deadline) continue;
        if (s.tries <= p.retries &&
            !chip.peer_presumed_dead(s.dest, core.now())) {
          mbox::Mail m;
          m.type = kMailKvReq;
          m.arg16 = static_cast<u16>(static_cast<u16>(s.req.op) |
                                     (u32{s.req.scan_len} << 2));
          m.p0 = s.req.key;
          m.p1 = s.reqid;  // same id: a late first reply still matches
          if (chan.retransmit(s.dest, m)) {
            ++s.tries;
            ++t.retransmits;
            s.deadline = core.now() + p.timeout_ps;
          } else {
            // Channel to the home is full — traffic is moving, just not
            // our turn. Nudge the deadline and try the retransmit again
            // shortly instead of declaring the request lost.
            s.deadline = core.now() + kBusyRetryPs;
          }
          continue;
        }
        ++t.timeouts;
        s.active = false;
      }
    };

    auto flush_acks = [&]() {
      for (std::size_t i = 0; i < pending_acks.size();) {
        PendingAck& a = pending_acks[i];
        if (chip.peer_presumed_dead(a.dest, core.now()) ||
            core.now() >= a.deadline) {
          ++t.acks_dropped;
          pending_acks.erase(pending_acks.begin() +
                             static_cast<std::ptrdiff_t>(i));
          continue;
        }
        if (mb.try_send(a.dest, a.mail)) {
          pending_acks.erase(pending_acks.begin() +
                             static_cast<std::ptrdiff_t>(i));
          continue;
        }
        ++i;
      }
    };

    while (core.now() < t_end) {
      bool progress = false;
      while (std::optional<mbox::Mail> m = mb.try_take(is_req)) {
        serve_one(*m);
        progress = true;
      }
      while (std::optional<mbox::Mail> m = mb.try_take(is_ack)) {
        complete(*m);
        progress = true;
      }
      flush_acks();
      check_timeouts();
      while (gen.has_next() && t0 + gen.next_arrival() <= core.now()) {
        backlog.push_back(gen.take());
      }
      while (try_issue()) progress = true;
      if (progress) {
        core.compute_cycles(kLoopCycles);
        continue;
      }
      // Idle until the next interesting instant: the next arrival, the
      // earliest in-flight deadline, or the end of the run — cut short
      // by any incoming IPI (a request to serve, a reply to take).
      TimePs wake = t_end;
      if (gen.has_next()) {
        wake = std::min(wake, t0 + gen.next_arrival());
      }
      for (const Slot& s : slots) {
        if (s.active) wake = std::min(wake, s.deadline);
      }
      if (!backlog.empty() || !pending_acks.empty()) {
        wake = std::min(wake, core.now() + kBusyRetryPs);
      }
      TimePs gap =
          wake > core.now() ? wake - core.now() : kMinIdlePs;
      if (!mb.use_ipi()) {
        mb.poll_all();  // nobody will interrupt us: scan the slots
        gap = std::min(gap, kPollGapPs);
      }
      core.relax(std::min(gap, max_nap));
    }

    for (Slot& s : slots) {
      if (s.active) ++t.unfinished;
    }
    t.unfinished += backlog.size();
    for (const PendingAck& a : pending_acks) {
      (void)a;
      ++t.acks_dropped;
    }
  });

  KvServingResult result;
  for (const CoreTally& t : tally) {
    result.issued += t.issued;
    result.completed += t.completed;
    result.completed_in_window += t.in_window;
    result.wrong += t.wrong;
    result.timeouts += t.timeouts;
    result.dead_shed += t.dead_shed;
    result.unfinished += t.unfinished;
    result.retransmits += t.retransmits;
    result.stale_acks += t.stale_acks;
    result.gets += t.gets;
    result.puts += t.puts;
    result.scans += t.scans;
    result.served_ops += t.served_ops;
    result.local_ops += t.local_ops;
    result.acks_dropped += t.acks_dropped;
    result.late_starts += t.late_start;
    result.latency.merge(t.histo);
  }
  // Goodput counts only completions inside the load window: at
  // saturation the backlog keeps completing through the drain window,
  // and counting those would report the *offered* rate, not capacity.
  result.goodput_rps =
      static_cast<double>(result.completed_in_window) /
      (static_cast<double>(p.gen.load_ps) /
       static_cast<double>(kPsPerSec));
  result.failures = cl.failures();
  for (const int c : cl.members()) {
    if (cl.chip().core_dead(c)) {
      ++result.ranks_lost;
      continue;
    }
    const svm::SvmStats& s = cl.node(c).svm().stats();
    result.recoveries += s.recoveries;
    result.pages_lost += s.pages_lost;
  }
  result.makespan = cl.makespan();
  return result;
}

}  // namespace msvm::serve
