// serve::LatencyHisto — log-scaled (HDR-style) latency histogram for the
// request-serving tier.
//
// NOT the same "histogram" as workloads/histogram.{hpp,cpp}: that one is
// a *workload* (cores binning samples into SVM-resident counters under
// striped locks); this one is a *measurement instrument* — it records
// per-request virtual-time latencies on the host side, with zero
// simulated cost, and answers percentile queries for BENCH_kv.json.
//
// Bucketing follows HdrHistogram's scheme: values below 2^kSubBits land
// in exact unit buckets; above that, each power-of-two octave is split
// into 2^kSubBits sub-buckets, bounding the relative quantisation error
// at 1/2^kSubBits (6.25% with the default 4 sub-bits) across the whole
// range. The exponent range is capped: values at or beyond 2^(kSubBits +
// kMaxOctaves) saturate into the top bucket (and are counted, so a
// saturated histogram is detectable rather than silently clipped).
// Everything is plain integer arithmetic over fixed-size arrays —
// deterministic, mergeable, and byte-stable across platforms.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>

#include "sim/types.hpp"

namespace msvm::serve {

class LatencyHisto {
 public:
  /// Sub-bucket resolution: 2^kSubBits sub-buckets per octave.
  static constexpr u32 kSubBits = 4;
  static constexpr u32 kSubBuckets = 1u << kSubBits;
  /// Octaves above the exact range. With 40 octaves and picosecond
  /// samples the top boundary is 2^44 ps (~17.6 virtual seconds) —
  /// far beyond any sane request latency; beyond it, saturation.
  static constexpr u32 kMaxOctaves = 40;
  static constexpr std::size_t kNumBuckets =
      kSubBuckets + static_cast<std::size_t>(kMaxOctaves) * kSubBuckets;

  /// Bucket index of `v` (values past the top boundary clamp to the
  /// last bucket; see saturated()).
  static constexpr std::size_t bucket_of(u64 v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const u32 octave =
        static_cast<u32>(std::bit_width(v)) - kSubBits;  // >= 1
    if (octave > kMaxOctaves) return kNumBuckets - 1;
    const u64 mantissa = (v >> (octave - 1)) - kSubBuckets;  // 0..15
    return kSubBuckets +
           static_cast<std::size_t>(octave - 1) * kSubBuckets +
           static_cast<std::size_t>(mantissa);
  }

  /// Smallest value mapping to bucket `b` (inverse of bucket_of).
  static constexpr u64 bucket_lo(std::size_t b) {
    if (b < kSubBuckets) return static_cast<u64>(b);
    const u32 octave = static_cast<u32>((b - kSubBuckets) / kSubBuckets) + 1;
    const u64 mantissa = (b - kSubBuckets) % kSubBuckets;
    return (kSubBuckets + mantissa) << (octave - 1);
  }

  /// Width of bucket `b` (number of distinct values it covers).
  static constexpr u64 bucket_width(std::size_t b) {
    if (b < kSubBuckets) return 1;
    const u32 octave = static_cast<u32>((b - kSubBuckets) / kSubBuckets) + 1;
    return u64{1} << (octave - 1);
  }

  void record(u64 v) {
    const std::size_t b = bucket_of(v);
    ++counts_[b];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
    if (std::bit_width(v) > static_cast<int>(kSubBits + kMaxOctaves)) {
      ++saturated_;
    }
  }

  /// Folds `other` into this histogram (exact: bucket-wise addition).
  void merge(const LatencyHisto& other) {
    if (other.count_ == 0) return;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      counts_[b] += other.counts_[b];
    }
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    saturated_ += other.saturated_;
  }

  u64 count() const { return count_; }
  u64 min() const { return count_ == 0 ? 0 : min_; }
  u64 max() const { return max_; }
  u64 sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  /// Samples that fell at or past the top bucket boundary. A non-zero
  /// value means percentiles near 1.0 are lower bounds, clamped to the
  /// exact tracked max().
  u64 saturated() const { return saturated_; }

  /// Quantile `q` in [0, 1], linearly interpolated inside the landing
  /// bucket and clamped to the exact [min, max] observed — so an empty
  /// histogram answers 0, a single-sample histogram answers that sample
  /// exactly, and a saturated top bucket answers max() rather than the
  /// bucket's theoretical span.
  u64 percentile(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest-rank, 1-based: the smallest rank covering fraction q.
    u64 target = static_cast<u64>(q * static_cast<double>(count_) + 0.5);
    target = std::clamp<u64>(target, 1, count_);
    u64 cum = 0;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      if (counts_[b] == 0) continue;
      if (cum + counts_[b] >= target) {
        // A quantile landing among saturated samples has no meaningful
        // in-bucket position (they clamped in from anywhere above the
        // boundary); the exact tracked max is the documented answer.
        if (b == kNumBuckets - 1 && saturated_ > 0) return max_;
        const u64 pos = target - cum;  // 1..counts_[b]
        const u64 interp =
            bucket_lo(b) + (bucket_width(b) * (pos - 1)) / counts_[b];
        return std::clamp(interp, min_, max_);
      }
      cum += counts_[b];
    }
    return max_;  // unreachable with consistent counts
  }

  u64 p50() const { return percentile(0.50); }
  u64 p95() const { return percentile(0.95); }
  u64 p99() const { return percentile(0.99); }
  u64 p999() const { return percentile(0.999); }

  const std::array<u64, kNumBuckets>& buckets() const { return counts_; }

 private:
  std::array<u64, kNumBuckets> counts_{};
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = 0;
  u64 max_ = 0;
  u64 saturated_ = 0;
};

}  // namespace msvm::serve
