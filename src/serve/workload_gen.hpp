// Open-loop synthetic request generator for the serving tier.
//
// Open loop means arrivals are scheduled by the *workload*, not by the
// system's completion rate: every request has an intended arrival time
// drawn from a Poisson process (exponential inter-arrivals), and latency
// is measured from that intended arrival to completion. A client that
// falls behind accumulates queueing delay into the measurement instead
// of silently slowing the arrival clock — the coordinated-omission
// mistake closed-loop harnesses make at saturation.
//
// The base rate is modulated by a cyclic phase schedule (rate
// multipliers over fixed-length phases), which models diurnal swings
// and bursts: {1.0} is a flat day, {0.5, 1.0, 2.5, 1.0} is a quiet
// night, a morning ramp, a lunch spike, and an afternoon plateau.
//
// Everything is a pure function of (seed, rank, draw index): two runs
// with the same seed produce byte-identical request streams.
#pragma once

#include <cmath>
#include <vector>

#include "serve/zipf.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace msvm::serve {

enum class KvOp : u8 { kGet = 0, kPut = 1, kScan = 2 };

/// One scheduled request: what to do and when it was *meant* to start.
struct Request {
  TimePs arrival = 0;  // intended arrival, relative to the stream start
  KvOp op = KvOp::kGet;
  u64 key = 0;
  u16 scan_len = 0;  // kScan only
};

struct GenConfig {
  u64 num_keys = 4096;
  double zipf_theta = 0.99;  // YCSB-style key skew; 0 = uniform
  double read_fraction = 0.95;  // P(GET)
  double scan_fraction = 0.0;   // P(SCAN); P(PUT) = 1 - read - scan
  u16 scan_len = 8;
  /// Mean offered rate per generator at multiplier 1.0, in requests per
  /// virtual second.
  double rate_rps = 50'000.0;
  /// Cyclic rate multipliers; phase i covers
  /// [i*phase_ps, (i+1)*phase_ps) mod (n*phase_ps).
  std::vector<double> phase_mults = {1.0};
  TimePs phase_ps = 1 * kPsPerMs;
  /// Arrivals are generated in [0, load_ps).
  TimePs load_ps = 2 * kPsPerMs;
};

class OpenLoopGen {
 public:
  /// `zipf` is shared (the table is identical for every rank); the
  /// per-rank Rng stream is split from (seed, rank).
  OpenLoopGen(const GenConfig& cfg, const ZipfSampler& zipf, u64 seed,
              int rank)
      : cfg_(cfg),
        zipf_(zipf),
        rng_(seed ^ (0x517cc1b727220a95ull * static_cast<u64>(rank + 1))) {
    advance();
  }

  /// True while the stream has a request at or before the load horizon.
  bool has_next() const { return !done_; }

  /// Intended arrival of the next request (valid while has_next()).
  TimePs next_arrival() const { return next_.arrival; }

  /// Consumes and returns the next request.
  Request take() {
    const Request r = next_;
    advance();
    return r;
  }

  /// The phase-schedule rate multiplier in effect at stream time `t`.
  double rate_mult_at(TimePs t) const {
    if (cfg_.phase_mults.empty()) return 1.0;
    const auto n = static_cast<u64>(cfg_.phase_mults.size());
    const u64 phase = (static_cast<u64>(t) / cfg_.phase_ps) % n;
    return cfg_.phase_mults[static_cast<std::size_t>(phase)];
  }

  /// The fixed rank->key permutation-ish scatter (splitmix finalizer);
  /// deterministic, shared by every generator.
  static u64 scramble(u64 x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

 private:
  void advance() {
    // Exponential inter-arrival at the phase-local rate. Sampling the
    // multiplier at the previous arrival is the standard thinning-free
    // approximation; phases are long relative to inter-arrival gaps.
    const double mult = rate_mult_at(clock_);
    const double rate = cfg_.rate_rps * mult;
    if (rate <= 0) {
      done_ = true;
      return;
    }
    const double u = rng_.next_double();
    const double gap_s = -std::log1p(-u) / rate;
    clock_ += static_cast<TimePs>(gap_s * static_cast<double>(kPsPerSec));
    if (clock_ >= cfg_.load_ps) {
      done_ = true;
      return;
    }
    next_.arrival = clock_;
    // Scramble the popularity rank into the key space (YCSB-style):
    // without this the hottest ranks are keys 0, 1, 2, ... which all
    // land in the lowest shards and overload their homes; scrambled,
    // the hot set scatters uniformly across shards.
    next_.key = scramble(zipf_.sample(rng_)) % cfg_.num_keys;
    const double op = rng_.next_double();
    if (op < cfg_.read_fraction) {
      next_.op = KvOp::kGet;
      next_.scan_len = 0;
    } else if (op < cfg_.read_fraction + cfg_.scan_fraction) {
      next_.op = KvOp::kScan;
      next_.scan_len = cfg_.scan_len;
    } else {
      next_.op = KvOp::kPut;
      next_.scan_len = 0;
    }
  }

  GenConfig cfg_;
  const ZipfSampler& zipf_;
  sim::Rng rng_;
  TimePs clock_ = 0;
  Request next_;
  bool done_ = false;
};

}  // namespace msvm::serve
