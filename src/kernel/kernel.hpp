// The per-core MetalSVM kernel substrate.
//
// MetalSVM runs a small bare-metal kernel on every SCC core (Section 4);
// this class is that kernel's simulated counterpart. It owns the boot-time
// memory setup (identity mapping of the core's private DRAM, L1+L2
// cached), a private-heap allocator, and the interrupt dispatch fabric
// that the mailbox system plugs into: "at every interrupt the kernel
// checks all receiving buffers for incoming messages" (Section 5) is
// realised by registering a timer callback, and the GIC path by an IPI
// callback.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "sccsim/chip.hpp"
#include "sccsim/core.hpp"
#include "sim/fnref.hpp"

namespace msvm::kernel {

/// Tuning for spin_wait below. The defaults reproduce the historical
/// exponential backoff used by every TAS spin loop in the tree (start at
/// 16 core cycles, double to a 4096-cycle cap).
struct SpinWaitOpts {
  u64 start_cycles = 16;
  u64 cap_cycles = 4096;
  const char* site = "kernel.spin";  // wait-site label for hang reports
  u64 site_arg = 0;                  // e.g. the contended register/page
  u64 warn_every = 0;                // invoke on_stuck every N failures
  /// Non-owning (sim::FnRef): SpinWaitOpts is built fresh on every
  /// contended acquire, and a std::function here heap-allocated whenever
  /// the diagnostic capture outgrew the small-buffer limit. The callable
  /// must be a *named* local at the call site (a lambda temporary
  /// assigned to this member dies at the end of its statement).
  sim::FnRef<void(u64 spins)> on_stuck;
};

/// The one exponential-backoff spin loop: try, back off (cooperatively
/// relaxing so the holder can run), double up to the cap. Replaces the
/// four hand-rolled copies that used to live in TasSpinlock::lock, the
/// SVM scratchpad/transfer-lock paths, and svm lock_acquire. The loop is
/// annotated as a wait site and checks the chip watchdog, so a spin that
/// never succeeds becomes a structured hang report instead of a silent
/// livelock; both checks are host-side only and the backoff sequence is
/// bit-identical to the historical loops.
template <typename TryAcquire>
void spin_wait(scc::Core& core, TryAcquire&& try_acquire,
               const SpinWaitOpts& opts = {}) {
  scc::Chip& chip = core.chip();
  sim::BlockScope scope(chip.scheduler().current(), opts.site,
                        opts.site_arg, static_cast<u64>(core.id()));
  const TimePs t0 = core.now();
  u64 spins = 0;
  u64 backoff_cycles = opts.start_cycles;
  while (!try_acquire()) {
    ++spins;
    if (opts.warn_every != 0 && spins % opts.warn_every == 0 &&
        opts.on_stuck) {
      opts.on_stuck(spins);
    }
    if (chip.watchdog().check(core.now(), t0, opts.site, core.id())) {
      chip.scheduler().block();  // parked; teardown unwinds via cancel
    }
    core.relax(backoff_cycles * chip.config().core_cycle_ps());
    backoff_cycles = std::min<u64>(backoff_cycles * 2, opts.cap_cycles);
  }
}

class Kernel {
 public:
  explicit Kernel(scc::Core& core);

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  scc::Core& core() { return core_; }
  int core_id() const { return core_.id(); }

  /// Boot-time setup: maps the private region and installs the interrupt
  /// and fault dispatchers on the core. Must run before any other use.
  void boot();

  // ---- private-memory heap (virtual addresses) ----

  /// Allocates `bytes` from this core's private region; returns a virtual
  /// address mapped cacheable (L1 + L2). Never freed (kernel bump heap).
  u64 kmalloc(u64 bytes, u64 align = 8);

  /// Bytes still available in the private heap.
  u64 kheap_remaining() const;

  // ---- interrupt clients ----

  using IpiCallback = std::function<void(const scc::IpiSourceSet& sources)>;
  using TimerCallback = std::function<void()>;

  void add_ipi_handler(IpiCallback cb) {
    ipi_handlers_.push_back(std::move(cb));
  }
  void add_timer_handler(TimerCallback cb) {
    timer_handlers_.push_back(std::move(cb));
  }

  /// SVM page-fault entry: invoked for faults on addresses at or above
  /// kSvmVBase. Faults elsewhere are fatal (a wild access in "kernel"
  /// code).
  using SvmFaultHandler =
      std::function<void(u64 vaddr, bool is_write)>;
  void set_svm_fault_handler(SvmFaultHandler h) {
    svm_fault_handler_ = std::move(h);
  }

  /// Idle step: halts until the next interrupt is delivered.
  void idle_once() { core_.halt(); }

 private:
  scc::Core& core_;
  u64 heap_next_ = 0;
  u64 heap_end_ = 0;
  std::vector<IpiCallback> ipi_handlers_;
  std::vector<TimerCallback> timer_handlers_;
  SvmFaultHandler svm_fault_handler_;
  bool booted_ = false;
};

/// Spin lock over an SCC Test-and-Set register. The register index
/// doubles as the lock identity chip-wide, mirroring how MetalSVM guards
/// its scratch pad "by a lock, which is realized by the SCC-specific
/// Test-And-Set-Registers" (Section 6.3).
class TasSpinlock {
 public:
  explicit TasSpinlock(int reg) : reg_(reg) {}

  int reg() const { return reg_; }

  /// Acquires, cooperatively yielding between failed attempts so other
  /// simulated cores can make progress and release. Exponential backoff
  /// keeps a contended register from hammering the mesh (and keeps the
  /// simulation host-efficient under heavy contention).
  void lock(scc::Core& core) {
    SpinWaitOpts opts;
    opts.site = "tas.lock";
    opts.site_arg = static_cast<u64>(reg_);
    spin_wait(core, [&] { return core.tas_try_acquire(reg_); }, opts);
  }

  void unlock(scc::Core& core) { core.tas_release(reg_); }

 private:
  int reg_;
};

/// RAII guard for TasSpinlock.
class TasLockGuard {
 public:
  TasLockGuard(TasSpinlock& lock, scc::Core& core)
      : lock_(lock), core_(core) {
    lock_.lock(core_);
  }
  ~TasLockGuard() { lock_.unlock(core_); }
  TasLockGuard(const TasLockGuard&) = delete;
  TasLockGuard& operator=(const TasLockGuard&) = delete;

 private:
  TasSpinlock& lock_;
  scc::Core& core_;
};

}  // namespace msvm::kernel
