// The per-core MetalSVM kernel substrate.
//
// MetalSVM runs a small bare-metal kernel on every SCC core (Section 4);
// this class is that kernel's simulated counterpart. It owns the boot-time
// memory setup (identity mapping of the core's private DRAM, L1+L2
// cached), a private-heap allocator, and the interrupt dispatch fabric
// that the mailbox system plugs into: "at every interrupt the kernel
// checks all receiving buffers for incoming messages" (Section 5) is
// realised by registering a timer callback, and the GIC path by an IPI
// callback.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "sccsim/chip.hpp"
#include "sccsim/core.hpp"

namespace msvm::kernel {

class Kernel {
 public:
  explicit Kernel(scc::Core& core);

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  scc::Core& core() { return core_; }
  int core_id() const { return core_.id(); }

  /// Boot-time setup: maps the private region and installs the interrupt
  /// and fault dispatchers on the core. Must run before any other use.
  void boot();

  // ---- private-memory heap (virtual addresses) ----

  /// Allocates `bytes` from this core's private region; returns a virtual
  /// address mapped cacheable (L1 + L2). Never freed (kernel bump heap).
  u64 kmalloc(u64 bytes, u64 align = 8);

  /// Bytes still available in the private heap.
  u64 kheap_remaining() const;

  // ---- interrupt clients ----

  using IpiCallback = std::function<void(u64 source_mask)>;
  using TimerCallback = std::function<void()>;

  void add_ipi_handler(IpiCallback cb) {
    ipi_handlers_.push_back(std::move(cb));
  }
  void add_timer_handler(TimerCallback cb) {
    timer_handlers_.push_back(std::move(cb));
  }

  /// SVM page-fault entry: invoked for faults on addresses at or above
  /// kSvmVBase. Faults elsewhere are fatal (a wild access in "kernel"
  /// code).
  using SvmFaultHandler =
      std::function<void(u64 vaddr, bool is_write)>;
  void set_svm_fault_handler(SvmFaultHandler h) {
    svm_fault_handler_ = std::move(h);
  }

  /// Idle step: halts until the next interrupt is delivered.
  void idle_once() { core_.halt(); }

 private:
  scc::Core& core_;
  u64 heap_next_ = 0;
  u64 heap_end_ = 0;
  std::vector<IpiCallback> ipi_handlers_;
  std::vector<TimerCallback> timer_handlers_;
  SvmFaultHandler svm_fault_handler_;
  bool booted_ = false;
};

/// Spin lock over an SCC Test-and-Set register. The register index
/// doubles as the lock identity chip-wide, mirroring how MetalSVM guards
/// its scratch pad "by a lock, which is realized by the SCC-specific
/// Test-And-Set-Registers" (Section 6.3).
class TasSpinlock {
 public:
  explicit TasSpinlock(int reg) : reg_(reg) {}

  int reg() const { return reg_; }

  /// Acquires, cooperatively yielding between failed attempts so other
  /// simulated cores can make progress and release. Exponential backoff
  /// keeps a contended register from hammering the mesh (and keeps the
  /// simulation host-efficient under heavy contention).
  void lock(scc::Core& core) {
    u64 backoff_cycles = 16;
    while (!core.tas_try_acquire(reg_)) {
      core.relax(backoff_cycles * core.chip().config().core_cycle_ps());
      backoff_cycles = std::min<u64>(backoff_cycles * 2, 4096);
    }
  }

  void unlock(scc::Core& core) { core.tas_release(reg_); }

 private:
  int reg_;
};

/// RAII guard for TasSpinlock.
class TasLockGuard {
 public:
  TasLockGuard(TasSpinlock& lock, scc::Core& core)
      : lock_(lock), core_(core) {
    lock_.lock(core_);
  }
  ~TasLockGuard() { lock_.unlock(core_); }
  TasLockGuard(const TasLockGuard&) = delete;
  TasLockGuard& operator=(const TasLockGuard&) = delete;

 private:
  TasSpinlock& lock_;
  scc::Core& core_;
};

}  // namespace msvm::kernel
