#include "kernel/kernel.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "sccsim/addrmap.hpp"

namespace msvm::kernel {

Kernel::Kernel(scc::Core& core) : core_(core) {}

void Kernel::boot() {
  assert(!booted_ && "kernel booted twice");
  booted_ = true;

  scc::Chip& chip = core_.chip();
  const scc::ChipConfig& cfg = chip.config();

  // Identity-style map of the core's private DRAM: cacheable through L1
  // and L2 (the SCC enables caches on private regions by default), never
  // MPBT. Mapped eagerly — the private region is the kernel's own memory,
  // there is nothing lazy about it.
  const u64 priv_phys = chip.map().private_base(core_.id());
  for (u64 off = 0; off < cfg.private_dram_bytes; off += cfg.page_bytes) {
    scc::Pte pte;
    pte.frame_paddr = priv_phys + off;
    pte.present = true;
    pte.writable = true;
    pte.mpbt = false;
    pte.l2_enable = true;
    core_.pagetable().map(scc::kPrivVBase + off, pte);
  }
  heap_next_ = scc::kPrivVBase;
  heap_end_ = scc::kPrivVBase + cfg.private_dram_bytes;

  // Interrupt dispatch: fan out to every registered client.
  core_.set_ipi_handler([this](scc::Core&, const scc::IpiSourceSet& sources) {
    for (auto& h : ipi_handlers_) h(sources);
  });
  core_.set_timer_handler([this](scc::Core&) {
    for (auto& h : timer_handlers_) h();
  });

  // Heartbeat lease (failure detection, opt-in via faults `lease=DUR`):
  // every timer tick refreshes this core's lease host-side; a peer whose
  // lease lapses is presumed fail-stopped. The modelled cost is a couple
  // of register writes inside the already-charged timer handler.
  if (chip.lease_enabled()) {
    chip.record_heartbeat(core_.id(), core_.now());  // alive at boot
    add_timer_handler([this] {
      core_.compute_cycles(20);
      core_.chip().record_heartbeat(core_.id(), core_.now());
    });
  }

  // Fault dispatch: SVM addresses go to the SVM subsystem, anything else
  // is a kernel bug.
  core_.set_fault_handler([this](scc::Core&, u64 vaddr, bool is_write) {
    if (vaddr >= scc::kSvmVBase && svm_fault_handler_) {
      svm_fault_handler_(vaddr, is_write);
      return;
    }
    std::fprintf(stderr,
                 "kernel panic (core %d): unhandled %s fault at 0x%llx\n",
                 core_.id(), is_write ? "write" : "read",
                 static_cast<unsigned long long>(vaddr));
    std::abort();
  });
}

u64 Kernel::kmalloc(u64 bytes, u64 align) {
  assert(booted_ && "kmalloc before boot");
  assert(align != 0 && (align & (align - 1)) == 0);
  const u64 base = (heap_next_ + align - 1) & ~(align - 1);
  if (base + bytes > heap_end_) {
    std::fprintf(stderr,
                 "kernel panic (core %d): private heap exhausted "
                 "(%llu bytes requested)\n",
                 core_.id(), static_cast<unsigned long long>(bytes));
    std::abort();
  }
  heap_next_ = base + bytes;
  // Bookkeeping cost of the allocation path itself.
  core_.compute_cycles(60);
  return base;
}

u64 Kernel::kheap_remaining() const { return heap_end_ - heap_next_; }

}  // namespace msvm::kernel
