// Reimplementation of the RCCE subset MetalSVM builds on, plus the iRCCE
// non-blocking extension used as the paper's message-passing baseline
// (Figure 9's "iRCCE variant").
//
// RCCE (Mattson & van der Wijngaart) is Intel's bare-metal communication
// library for the SCC. The two-sided protocol is the classic MPB pipeline:
// the sender copies a chunk into its *own* MPB communication buffer and
// raises a `sent` flag in the receiver's MPB; the receiver copies the
// chunk out of the sender's MPB and raises an `ack` flag back in the
// sender's MPB. Flags are always *polled locally* (each side spins on a
// flag inside its own MPB), which is what made RCCE efficient on the SCC.
//
// iRCCE adds non-blocking isend/irecv with a progress engine; both sides
// must still drive the transfer ("working coevally in a non-blocking but
// synchronizing manner", Section 5) — the asynchrony the mailbox system
// adds is exactly what this layer lacks, which is the paper's argument
// for building the mailbox at all.
//
// MPB sub-layout within the RCCE share [rcce_offset, mpb_bytes), computed
// at runtime from the die's maximum core count n (mbox::Layout; at the
// 48-core SCC this is [3584, 8192) with the historical constants):
//   +0         .. +4096      : communication buffer (one in-flight chunk)
//   +4096      .. +4096+n    : sent flags, byte per source core
//   +4096+n    .. +4096+2n   : ack flags, byte per destination core
//   +4096+2n   .. +4096+3n   : barrier arrival bytes (master-resident)
//   +4096+3n   .. +4096+3n+1 : barrier release byte
#pragma once

#include <cassert>
#include <deque>
#include <memory>
#include <vector>

#include "kernel/kernel.hpp"
#include "mailbox/layout.hpp"
#include "sim/types.hpp"

namespace msvm::rcce {

inline constexpr u32 kChunkBytes = 4096;

struct RcceStats {
  u64 sends = 0;
  u64 recvs = 0;
  u64 bytes_sent = 0;
  u64 bytes_received = 0;
  u64 chunks = 0;
  u64 barriers = 0;
  u64 flag_polls = 0;
};

/// Per-core RCCE endpoint over a communication domain (a list of member
/// cores, identical on every participant; rank = index in that list).
class Rcce {
 public:
  Rcce(kernel::Kernel& kernel, std::vector<int> members);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }
  int core_of(int rank) const {
    return members_[static_cast<std::size_t>(rank)];
  }

  // ---- one-sided (RCCE_put / RCCE_get) ----

  /// Copies `bytes` from local (virtual) memory into `target_rank`'s MPB
  /// communication buffer at `mpb_off`.
  void put(int target_rank, u32 mpb_off, u64 src_vaddr, u32 bytes);

  /// Copies `bytes` from `source_rank`'s MPB communication buffer into
  /// local (virtual) memory.
  void get(u64 dst_vaddr, int source_rank, u32 mpb_off, u32 bytes);

  // ---- two-sided blocking (RCCE_send / RCCE_recv) ----

  void send(u64 src_vaddr, u32 bytes, int dest_rank);
  void recv(u64 dst_vaddr, u32 bytes, int source_rank);

  // ---- iRCCE non-blocking extension ----

  class Request {
   public:
    bool done() const { return done_; }

   private:
    friend class Rcce;
    bool is_send_ = false;
    int peer_rank_ = -1;  // dest for send, source for recv
    u64 vaddr_ = 0;
    u32 bytes_ = 0;
    u32 progress_ = 0;  // bytes fully transferred
    bool active_ = false;  // head of its channel queue
    bool chunk_in_flight_ = false;  // send: chunk deposited, awaiting ack
    bool done_ = false;
  };

  using RequestHandle = std::shared_ptr<Request>;

  RequestHandle isend(u64 src_vaddr, u32 bytes, int dest_rank);
  RequestHandle irecv(u64 dst_vaddr, u32 bytes, int source_rank);

  /// Advances every in-flight request as far as currently possible
  /// without blocking. Returns true if any progress was made.
  bool progress();

  /// Blocks (driving progress and yielding) until `req` completes.
  void wait(const RequestHandle& req);

  /// Waits for all listed requests.
  void wait_all(const std::vector<RequestHandle>& reqs);

  // ---- collectives ----

  /// Master-gather / release barrier with sense reversal, flags in MPB.
  void barrier();

  /// Root's buffer is replicated to all members (chunked through send).
  void bcast(u64 vaddr, u32 bytes, int root_rank);

  enum class ReduceOp { kSum, kMin, kMax };

  /// Element-wise reduction of every member's buffer into the root's
  /// buffer (non-roots' buffers are unchanged). T: double, u64 or i32.
  template <typename T>
  void reduce(u64 vaddr, u32 count, ReduceOp op, int root_rank);

  /// reduce() followed by bcast(): every member ends with the result.
  template <typename T>
  void allreduce(u64 vaddr, u32 count, ReduceOp op);

  /// Root collects `bytes_each` from every member, rank-ordered, into
  /// its buffer at `dst_vaddr` (size() * bytes_each bytes).
  void gather(u64 src_vaddr, u32 bytes_each, u64 dst_vaddr,
              int root_rank);

  /// Root distributes rank-ordered slices of `src_vaddr` to everyone.
  void scatter(u64 src_vaddr, u32 bytes_each, u64 dst_vaddr,
               int root_rank);

  const RcceStats& stats() const { return stats_; }

 private:
  u64 mpb_paddr(int core, u32 off) const;
  u8 mpb_read8(int core, u32 off);
  void mpb_write8(int core, u32 off, u8 v);

  /// Lazily-allocated private staging buffer for collectives.
  u64 scratch_vaddr(u32 bytes);

  /// Spins until this core's own MPB byte at `off` equals `v`, then
  /// resets it to 0. Local poll, as RCCE flags are designed to be.
  void wait_own_flag(u32 off, u8 v);

  // Progress sub-steps; return true when they moved a request forward.
  bool progress_send(Request& req);
  bool progress_recv(Request& req);
  void activate_heads();

  kernel::Kernel& kernel_;
  scc::Core& core_;
  std::vector<int> members_;
  int rank_ = -1;
  RcceStats stats_;

  // Runtime MPB offsets of the RCCE share (see file comment), derived
  // from mbox::Layout at construction. Identical on every member.
  u32 comm_off_ = 0;
  u32 sent_off_ = 0;
  u32 ack_off_ = 0;
  u32 arrive_off_ = 0;
  u32 release_off_ = 0;

  // FIFO of pending sends (they share the single comm buffer) and of
  // pending receives per source rank (channel order must match).
  std::deque<RequestHandle> send_queue_;
  std::vector<std::deque<RequestHandle>> recv_queues_;  // by source rank
  u8 barrier_sense_ = 1;
  u64 scratch_ = 0;
  u32 scratch_bytes_ = 0;
};

}  // namespace msvm::rcce
