#include "rcce/rcce.hpp"

#include <algorithm>
#include <cstring>

#include "sccsim/addrmap.hpp"
#include "sccsim/chip.hpp"

namespace msvm::rcce {

namespace {
// Software cost of request bookkeeping per progress step.
constexpr u64 kProgressCycles = 40;
}  // namespace

Rcce::Rcce(kernel::Kernel& kernel, std::vector<int> members)
    : kernel_(kernel),
      core_(kernel.core()),
      members_(std::move(members)),
      recv_queues_(members_.size()) {
  const scc::Chip& chip = core_.chip();
  const mbox::Layout layout = mbox::Layout::make(
      chip.topology().max_cores(), chip.config().mpb_bytes);
  const u32 n = static_cast<u32>(layout.max_cores);
  comm_off_ = layout.rcce_offset;
  sent_off_ = comm_off_ + kChunkBytes;
  ack_off_ = sent_off_ + n;
  arrive_off_ = ack_off_ + n;
  release_off_ = arrive_off_ + n;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == core_.id()) rank_ = static_cast<int>(i);
  }
  assert(rank_ >= 0 && "this core is not a member of the RCCE domain");
}

u64 Rcce::mpb_paddr(int core, u32 off) const {
  return core_.chip().map().mpb_base(core) + off;
}

u8 Rcce::mpb_read8(int core, u32 off) {
  ++stats_.flag_polls;
  return core_.pload<u8>(mpb_paddr(core, off), scc::MemPolicy::kUncached);
}

void Rcce::mpb_write8(int core, u32 off, u8 v) {
  core_.pstore<u8>(mpb_paddr(core, off), v, scc::MemPolicy::kUncached);
}

void Rcce::wait_own_flag(u32 off, u8 v) {
  TimePs gap = 200 * kPsPerNs;
  while (mpb_read8(core_.id(), off) != v) {
    core_.relax(gap);
    gap = std::min<TimePs>(gap * 2, 2 * kPsPerUs);
  }
  mpb_write8(core_.id(), off, 0);
}

// ---------------------------------------------------------------------------
// one-sided

void Rcce::put(int target_rank, u32 mpb_off, u64 src_vaddr, u32 bytes) {
  assert(mpb_off + bytes <= kChunkBytes);
  const int target_core = core_of(target_rank);
  u8 buf[256];
  while (bytes > 0) {
    const u32 seg = std::min<u32>(bytes, sizeof(buf));
    core_.vread(src_vaddr, buf, seg);
    core_.pwrite(mpb_paddr(target_core, comm_off_ + mpb_off), buf,
                 seg, scc::MemPolicy::kUncached);
    src_vaddr += seg;
    mpb_off += seg;
    bytes -= seg;
  }
}

void Rcce::get(u64 dst_vaddr, int source_rank, u32 mpb_off, u32 bytes) {
  assert(mpb_off + bytes <= kChunkBytes);
  const int source_core = core_of(source_rank);
  u8 buf[256];
  while (bytes > 0) {
    const u32 seg = std::min<u32>(bytes, sizeof(buf));
    core_.pread(mpb_paddr(source_core, comm_off_ + mpb_off), buf, seg,
                scc::MemPolicy::kUncached);
    core_.vwrite(dst_vaddr, buf, seg);
    dst_vaddr += seg;
    mpb_off += seg;
    bytes -= seg;
  }
}

// ---------------------------------------------------------------------------
// iRCCE requests & progress engine

Rcce::RequestHandle Rcce::isend(u64 src_vaddr, u32 bytes, int dest_rank) {
  assert(dest_rank != rank_ && "self-send is not supported");
  auto req = std::make_shared<Request>();
  req->is_send_ = true;
  req->peer_rank_ = dest_rank;
  req->vaddr_ = src_vaddr;
  req->bytes_ = bytes;
  ++stats_.sends;
  stats_.bytes_sent += bytes;
  send_queue_.push_back(req);
  activate_heads();
  progress();
  return req;
}

Rcce::RequestHandle Rcce::irecv(u64 dst_vaddr, u32 bytes,
                                int source_rank) {
  assert(source_rank != rank_ && "self-receive is not supported");
  auto req = std::make_shared<Request>();
  req->is_send_ = false;
  req->peer_rank_ = source_rank;
  req->vaddr_ = dst_vaddr;
  req->bytes_ = bytes;
  ++stats_.recvs;
  stats_.bytes_received += bytes;
  recv_queues_[static_cast<std::size_t>(source_rank)].push_back(req);
  activate_heads();
  progress();
  return req;
}

void Rcce::activate_heads() {
  // The single comm buffer serialises sends: only the queue head may use
  // it. Receives are per-source channels: each head is active.
  if (!send_queue_.empty()) send_queue_.front()->active_ = true;
  for (auto& q : recv_queues_) {
    if (!q.empty()) q.front()->active_ = true;
  }
}

bool Rcce::progress() {
  core_.compute_cycles(kProgressCycles);
  bool moved = false;
  if (!send_queue_.empty() && progress_send(*send_queue_.front())) {
    moved = true;
    if (send_queue_.front()->done_) send_queue_.pop_front();
  }
  for (auto& q : recv_queues_) {
    if (!q.empty() && progress_recv(*q.front())) {
      moved = true;
      if (q.front()->done_) q.pop_front();
    }
  }
  activate_heads();
  return moved;
}

bool Rcce::progress_send(Request& req) {
  bool moved = false;
  const int dest_core = core_of(req.peer_rank_);
  if (req.chunk_in_flight_) {
    // Has the receiver drained the previous chunk?
    if (mpb_read8(core_.id(),
                  ack_off_ + static_cast<u32>(dest_core)) == 1) {
      mpb_write8(core_.id(), ack_off_ + static_cast<u32>(dest_core),
                 0);
      const u32 chunk =
          std::min(kChunkBytes, req.bytes_ - req.progress_);
      req.progress_ += chunk;
      req.chunk_in_flight_ = false;
      moved = true;
      if (req.progress_ >= req.bytes_) {
        req.done_ = true;
        return true;
      }
    } else {
      return false;
    }
  }
  if (!req.chunk_in_flight_ && req.progress_ < req.bytes_) {
    // Deposit the next chunk into our own MPB buffer and flag the peer.
    const u32 chunk = std::min(kChunkBytes, req.bytes_ - req.progress_);
    u8 buf[256];
    u64 src = req.vaddr_ + req.progress_;
    u32 left = chunk;
    u32 off = comm_off_;
    while (left > 0) {
      const u32 seg = std::min<u32>(left, sizeof(buf));
      core_.vread(src, buf, seg);
      core_.pwrite(mpb_paddr(core_.id(), off), buf, seg,
                   scc::MemPolicy::kUncached);
      src += seg;
      off += seg;
      left -= seg;
    }
    mpb_write8(dest_core, sent_off_ + static_cast<u32>(core_.id()),
               1);
    ++stats_.chunks;
    req.chunk_in_flight_ = true;
    moved = true;
  }
  return moved;
}

bool Rcce::progress_recv(Request& req) {
  const int source_core = core_of(req.peer_rank_);
  if (mpb_read8(core_.id(),
                sent_off_ + static_cast<u32>(source_core)) != 1) {
    return false;
  }
  mpb_write8(core_.id(), sent_off_ + static_cast<u32>(source_core),
             0);
  const u32 chunk = std::min(kChunkBytes, req.bytes_ - req.progress_);
  u8 buf[256];
  u64 dst = req.vaddr_ + req.progress_;
  u32 left = chunk;
  u32 off = comm_off_;
  while (left > 0) {
    const u32 seg = std::min<u32>(left, sizeof(buf));
    core_.pread(mpb_paddr(source_core, off), buf, seg,
                scc::MemPolicy::kUncached);
    core_.vwrite(dst, buf, seg);
    dst += seg;
    off += seg;
    left -= seg;
  }
  // Tell the sender its buffer is free again.
  mpb_write8(source_core, ack_off_ + static_cast<u32>(core_.id()),
             1);
  req.progress_ += chunk;
  if (req.progress_ >= req.bytes_) req.done_ = true;
  return true;
}

void Rcce::wait(const RequestHandle& req) {
  while (!req->done_) {
    if (!progress()) core_.yield();
  }
}

void Rcce::wait_all(const std::vector<RequestHandle>& reqs) {
  for (const auto& r : reqs) wait(r);
}

// ---------------------------------------------------------------------------
// two-sided blocking

void Rcce::send(u64 src_vaddr, u32 bytes, int dest_rank) {
  wait(isend(src_vaddr, bytes, dest_rank));
}

void Rcce::recv(u64 dst_vaddr, u32 bytes, int source_rank) {
  wait(irecv(dst_vaddr, bytes, source_rank));
}

// ---------------------------------------------------------------------------
// collectives

void Rcce::barrier() {
  ++stats_.barriers;
  const u8 sense = barrier_sense_;
  barrier_sense_ = sense == 1 ? 2 : 1;
  const int master_core = core_of(0);
  if (rank_ == 0) {
    // Gather: wait for every member's arrival byte to carry this sense.
    for (int r = 1; r < size(); ++r) {
      const u32 off = arrive_off_ + static_cast<u32>(core_of(r));
      TimePs gap = 200 * kPsPerNs;
      while (mpb_read8(core_.id(), off) != sense) {
        core_.relax(gap);
        gap = std::min<TimePs>(gap * 2, 50 * kPsPerUs);
      }
    }
    // Release everyone.
    for (int r = 1; r < size(); ++r) {
      mpb_write8(core_of(r), release_off_, sense);
    }
  } else {
    mpb_write8(master_core,
               arrive_off_ + static_cast<u32>(core_.id()), sense);
    TimePs gap = 200 * kPsPerNs;
    while (mpb_read8(core_.id(), release_off_) != sense) {
      core_.relax(gap);
      gap = std::min<TimePs>(gap * 2, 50 * kPsPerUs);
    }
  }
}

void Rcce::bcast(u64 vaddr, u32 bytes, int root_rank) {
  if (rank_ == root_rank) {
    for (int r = 0; r < size(); ++r) {
      if (r != root_rank) send(vaddr, bytes, r);
    }
  } else {
    recv(vaddr, bytes, root_rank);
  }
}


// ---------------------------------------------------------------------------
// reduction collectives

u64 Rcce::scratch_vaddr(u32 bytes) {
  if (scratch_bytes_ < bytes) {
    scratch_ = kernel_.kmalloc(bytes, 64);
    scratch_bytes_ = bytes;
  }
  return scratch_;
}

template <typename T>
void Rcce::reduce(u64 vaddr, u32 count, ReduceOp op, int root_rank) {
  const u32 bytes = count * static_cast<u32>(sizeof(T));
  if (rank_ != root_rank) {
    send(vaddr, bytes, root_rank);
    return;
  }
  const u64 tmp = scratch_vaddr(bytes);
  for (int r = 0; r < size(); ++r) {
    if (r == root_rank) continue;
    recv(tmp, bytes, r);
    for (u32 i = 0; i < count; ++i) {
      const T a = core_.vload<T>(vaddr + i * sizeof(T));
      const T b = core_.vload<T>(tmp + i * sizeof(T));
      T out = a;
      switch (op) {
        case ReduceOp::kSum:
          out = a + b;
          break;
        case ReduceOp::kMin:
          out = b < a ? b : a;
          break;
        case ReduceOp::kMax:
          out = a < b ? b : a;
          break;
      }
      core_.vstore<T>(vaddr + i * sizeof(T), out);
      core_.compute_cycles(3);
    }
  }
}

template <typename T>
void Rcce::allreduce(u64 vaddr, u32 count, ReduceOp op) {
  reduce<T>(vaddr, count, op, /*root_rank=*/0);
  bcast(vaddr, count * static_cast<u32>(sizeof(T)), /*root_rank=*/0);
}

template void Rcce::reduce<double>(u64, u32, Rcce::ReduceOp, int);
template void Rcce::reduce<u64>(u64, u32, Rcce::ReduceOp, int);
template void Rcce::reduce<i32>(u64, u32, Rcce::ReduceOp, int);
template void Rcce::allreduce<double>(u64, u32, Rcce::ReduceOp);
template void Rcce::allreduce<u64>(u64, u32, Rcce::ReduceOp);
template void Rcce::allreduce<i32>(u64, u32, Rcce::ReduceOp);

// ---------------------------------------------------------------------------
// data-movement collectives

void Rcce::gather(u64 src_vaddr, u32 bytes_each, u64 dst_vaddr,
                  int root_rank) {
  if (rank_ != root_rank) {
    send(src_vaddr, bytes_each, root_rank);
    return;
  }
  u8 buf[256];
  for (int r = 0; r < size(); ++r) {
    const u64 dst = dst_vaddr + static_cast<u64>(r) * bytes_each;
    if (r == root_rank) {
      // Local copy of the root's own contribution.
      u64 off = 0;
      while (off < bytes_each) {
        const u32 seg = std::min<u32>(bytes_each - off, sizeof(buf));
        core_.vread(src_vaddr + off, buf, seg);
        core_.vwrite(dst + off, buf, seg);
        off += seg;
      }
    } else {
      recv(dst, bytes_each, r);
    }
  }
}

void Rcce::scatter(u64 src_vaddr, u32 bytes_each, u64 dst_vaddr,
                   int root_rank) {
  u8 buf[256];
  if (rank_ != root_rank) {
    recv(dst_vaddr, bytes_each, root_rank);
    return;
  }
  for (int r = 0; r < size(); ++r) {
    const u64 src = src_vaddr + static_cast<u64>(r) * bytes_each;
    if (r == root_rank) {
      u64 off = 0;
      while (off < bytes_each) {
        const u32 seg = std::min<u32>(bytes_each - off, sizeof(buf));
        core_.vread(src + off, buf, seg);
        core_.vwrite(dst_vaddr + off, buf, seg);
        off += seg;
      }
    } else {
      send(src, bytes_each, r);
    }
  }
}

}  // namespace msvm::rcce
