#include "obs/heatmap.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace msvm::obs {

void PageHeatmap::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::kProtoFault:
      if (e.b != 0) {
        ++pages_[e.a].write_faults;
      } else {
        ++pages_[e.a].read_faults;
      }
      break;
    case EventKind::kProtoMsgRecv:
      // Count protocol completions on the receiving side: an
      // OwnershipAck means ownership just moved to this core, a ReadAck
      // that a replica was granted, an Inval that a replica is being
      // dropped here.
      switch (static_cast<u8>(e.b)) {
        case kWireOwnershipAck: ++pages_[e.a].transfers; break;
        case kWireReadAck: ++pages_[e.a].replica_grants; break;
        case kWireInval: ++pages_[e.a].invalidations; break;
        default: break;
      }
      break;
    default:
      break;
  }
}

std::string PageHeatmap::to_json() const {
  std::string out = "{\n  \"pages\": [";
  bool first = true;
  for (const auto& [page, s] : pages_) {
    char buf[224];
    std::snprintf(
        buf, sizeof(buf),
        "{\"page\": %llu, \"read_faults\": %llu, \"write_faults\": %llu, "
        "\"transfers\": %llu, \"invalidations\": %llu, "
        "\"replica_grants\": %llu}",
        static_cast<unsigned long long>(page),
        static_cast<unsigned long long>(s.read_faults),
        static_cast<unsigned long long>(s.write_faults),
        static_cast<unsigned long long>(s.transfers),
        static_cast<unsigned long long>(s.invalidations),
        static_cast<unsigned long long>(s.replica_grants));
    out += first ? "\n    " : ",\n    ";
    out += buf;
    first = false;
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string PageHeatmap::table(std::size_t top_n,
                               const std::string& prefix) const {
  std::vector<std::pair<u64, PageStats>> hot(pages_.begin(), pages_.end());
  std::stable_sort(hot.begin(), hot.end(),
                   [](const auto& x, const auto& y) {
                     return x.second.total() > y.second.total();
                   });
  if (hot.size() > top_n) hot.resize(top_n);
  std::string out;
  for (const auto& [page, s] : hot) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "page %6llu: faults rd %6llu wr %6llu, transfers %6llu, "
                  "invals %6llu, grants %6llu\n",
                  static_cast<unsigned long long>(page),
                  static_cast<unsigned long long>(s.read_faults),
                  static_cast<unsigned long long>(s.write_faults),
                  static_cast<unsigned long long>(s.transfers),
                  static_cast<unsigned long long>(s.invalidations),
                  static_cast<unsigned long long>(s.replica_grants));
    out += prefix;
    out += buf;
  }
  return out;
}

PageHeatmap& global_heatmap() {
  static PageHeatmap h;
  return h;
}

bool write_heatmap_json(const PageHeatmap& h, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = h.to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
                  json.size();
  std::fclose(f);
  return ok;
}

}  // namespace msvm::obs
