// Per-page SVM heatmap: faults, ownership transfers and replica
// invalidations per page, accumulated from the protocol event stream.
// Makes false sharing and placement pathologies visible — the hottest
// pages are exactly where the coherence protocol burns its time.
//
// The heatmap is a plain EventSink over the always-on protocol category,
// so it needs no extra publish sites: attach it and every state
// transition, message and fault it cares about is already flowing.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "obs/bus.hpp"
#include "obs/events.hpp"

namespace msvm::obs {

class PageHeatmap final : public EventSink {
 public:
  struct PageStats {
    u64 read_faults = 0;
    u64 write_faults = 0;
    u64 transfers = 0;       // ownership moved to a new core
    u64 invalidations = 0;   // replicas dropped on demand
    u64 replica_grants = 0;  // read-only replicas handed out
    u64 total() const {
      return read_faults + write_faults + transfers + invalidations +
             replica_grants;
    }
  };

  void on_event(const Event& e) override;

  const std::map<u64, PageStats>& pages() const { return pages_; }
  bool empty() const { return pages_.empty(); }
  void clear() { pages_.clear(); }

  /// Machine-readable dump: {"pages": [{"page": N, ...}, ...]}.
  std::string to_json() const;

  /// Report table of the `top_n` hottest pages, one per line, each
  /// prefixed with `prefix`.
  std::string table(std::size_t top_n,
                    const std::string& prefix = "  ") const;

 private:
  std::map<u64, PageStats> pages_;
};

/// The process-wide heatmap --metrics / --heatmap attach to every bus.
PageHeatmap& global_heatmap();

/// Writes to_json to `path`; returns false on I/O failure.
bool write_heatmap_json(const PageHeatmap& h, const std::string& path);

}  // namespace msvm::obs
