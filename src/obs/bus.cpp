#include "obs/bus.hpp"

namespace msvm::obs {

std::vector<Event> EventRing::snapshot() const {
  std::vector<Event> out;
  const std::size_t n = size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const u64 idx = (next_ - n + i) % events_.size();
    out.push_back(events_[static_cast<std::size_t>(idx)]);
  }
  return out;
}

RuntimeConfig& runtime_config() {
  static RuntimeConfig cfg;
  return cfg;
}

}  // namespace msvm::obs
