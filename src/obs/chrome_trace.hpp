// Chrome-trace / Perfetto exporter. A TraceCollector sink accumulates
// the published event stream; chrome_trace_json renders it as a JSON
// trace with one track per core plus mailbox / chaos / memory tracks,
// B/E duration slices for the SVM fault and serve windows, and flow
// events stitching every protocol request round-trip (fault-begin ->
// request mail -> owner service -> ACK -> fault-end) into one clickable
// chain. Load the file at https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/bus.hpp"
#include "obs/events.hpp"

namespace msvm::obs {

/// Reserved track (tid) numbers beyond the per-core tracks.
inline constexpr int kTidMailbox = 900;
inline constexpr int kTidChaos = 901;
inline constexpr int kTidMemory = 910;
inline constexpr int kTidChip = 999;

class TraceCollector final : public EventSink {
 public:
  void on_event(const Event& e) override {
    u64 t = e.t_ps + session_offset_;
    if (t > max_t_) max_t_ = t;
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    Event shifted = e;
    shifted.t_ps = t;
    events_.push_back(shifted);
  }

  /// Called once per chip construction: shifts this session's virtual
  /// time past everything already collected, so a bench that runs many
  /// chips in sequence (each restarting at t=0) still produces one
  /// monotone timeline instead of overlapping ghosts.
  void begin_session(int num_cores) {
    if (num_cores > num_cores_) num_cores_ = num_cores;
    if (!events_.empty()) session_offset_ = max_t_ + kSessionGapPs;
  }

  const std::vector<Event>& events() const { return events_; }
  int num_cores() const { return num_cores_; }
  u64 dropped() const { return dropped_; }
  bool empty() const { return events_.empty(); }

  void clear() {
    events_.clear();
    session_offset_ = 0;
    max_t_ = 0;
    dropped_ = 0;
    num_cores_ = 0;
  }

 private:
  static constexpr u64 kSessionGapPs = 1'000'000;  // 1 us between runs

  std::vector<Event> events_;
  u64 session_offset_ = 0;
  u64 max_t_ = 0;
  u64 dropped_ = 0;
  int num_cores_ = 0;
  std::size_t capacity_ = 2'000'000;
};

/// The process-wide collector --trace attaches to every chip's bus.
TraceCollector& global_collector();

/// Renders the collected events as Chrome-trace JSON.
std::string chrome_trace_json(const TraceCollector& c);

/// Writes chrome_trace_json to `path`; returns false on I/O failure.
bool write_chrome_trace(const TraceCollector& c, const std::string& path);

}  // namespace msvm::obs
