#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>

namespace msvm::obs {

namespace {

const char* wire_name(u8 type) {
  switch (type) {
    case kWireOwnershipReq: return "OwnershipReq";
    case kWireOwnershipAck: return "OwnershipAck";
    case kWireReadReq: return "ReadReq";
    case kWireReadAck: return "ReadAck";
    case kWireInval: return "Inval";
    case kWireInvalAck: return "InvalAck";
  }
  return "mail";
}

std::string fmt_ts(u64 t_ps) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f",
                static_cast<double>(t_ps) / 1e6);  // ps -> us
  return buf;
}

/// One finished JSON record with the timestamp it sorts by. stable_sort
/// on `t` makes every track's timestamps monotone (each core's virtual
/// clock already is; cross-core interleavings are whatever publish
/// order was, which sorting normalises).
struct Rec {
  u64 t;
  std::string json;
};

void emit(std::vector<Rec>& out, u64 t, const char* name, const char* cat,
          const char* ph, int tid, const std::string& extra) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
                "\"pid\":0,\"tid\":%d,\"ts\":",
                name, cat, ph, tid);
  std::string j = buf;
  j += fmt_ts(t);
  j += extra;
  j += "}";
  out.push_back(Rec{t, std::move(j)});
}

std::string args_u64(const char* k0, u64 v0, const char* k1 = nullptr,
                     u64 v1 = 0, const char* k2 = nullptr, u64 v2 = 0) {
  char buf[160];
  std::string s = ",\"args\":{";
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", k0,
                static_cast<unsigned long long>(v0));
  s += buf;
  if (k1 != nullptr) {
    std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", k1,
                  static_cast<unsigned long long>(v1));
    s += buf;
  }
  if (k2 != nullptr) {
    std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", k2,
                  static_cast<unsigned long long>(v2));
    s += buf;
  }
  return s + "}";
}

std::string flow_extra(u64 id, bool terminating) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s,\"id\":%llu",
                terminating ? ",\"bp\":\"e\"" : "",
                static_cast<unsigned long long>(id));
  return buf;
}

/// Flow-step classification for one mail event. The chain for a request
/// (requester R, seq S, flow id (R<<16)|S):
///   s  request send on R        (inside R's svm-fault slice)
///   t  request deliver at owner (and any forward hops, re-sends)
///   t  ACK send on the owner    (inside its svm-serve slice)
///   f  ACK deliver back on R    (inside the same svm-fault slice)
void emit_mail_flow(std::vector<Rec>& out, const Event& e) {
  const u8 type = mail_type(e.b);
  const bool request = is_wire_request(type);
  const bool ack = is_wire_ack(type);
  if (!request && !ack) return;
  // Requests carry the originating requester in the packed header; ACKs
  // carry 0 there (the wire format echoes the Msg, whose requester field
  // an ACK does not use) — but an ACK's requester is exactly where it is
  // going (send) or where it was consumed (deliver).
  const u8 requester =
      request ? mail_requester(e.b)
              : (e.kind == EventKind::kMailSend
                     ? static_cast<u8>(e.a)
                     : static_cast<u8>(e.core));
  const u64 id = flow_id(requester, mail_seq(e.b));
  const bool at_requester = e.core >= 0 &&
                            static_cast<u8>(e.core) == requester;
  const char* ph;
  if (e.kind == EventKind::kMailSend) {
    ph = (request && at_requester) ? "s" : "t";
  } else {  // kMailDeliver
    ph = (ack && at_requester) ? "f" : "t";
  }
  emit(out, e.t_ps, "svm-req", "svm", ph, e.core,
       flow_extra(id, ph[0] == 'f'));
}

void meta_thread(std::vector<std::string>& out, int tid,
                 const std::string& name) {
  out.push_back("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":" +
                std::to_string(tid) + ",\"args\":{\"name\":\"" + name +
                "\"}}");
}

}  // namespace

std::string chrome_trace_json(const TraceCollector& c) {
  std::vector<std::string> meta;
  meta.push_back(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
      "\"args\":{\"name\":\"msvm\"}}");
  int max_core = c.num_cores() - 1;
  for (const Event& e : c.events()) {
    if (e.core > max_core) max_core = e.core;
  }
  for (int i = 0; i <= max_core; ++i) {
    meta_thread(meta, i, "core " + std::to_string(i));
  }
  meta_thread(meta, kTidMailbox, "mailbox");
  meta_thread(meta, kTidChaos, "chaos");
  meta_thread(meta, kTidMemory, "memory");
  meta_thread(meta, kTidChip, "chip");

  std::vector<Rec> recs;
  recs.reserve(c.events().size());
  for (const Event& e : c.events()) {
    const int core_tid = e.core >= 0 ? e.core : kTidChip;
    switch (e.kind) {
      case EventKind::kFaultBegin:
        emit(recs, e.t_ps, "svm-fault", "svm", "B", core_tid,
             args_u64("page", e.a, "write", e.b));
        break;
      case EventKind::kFaultEnd:
        emit(recs, e.t_ps, "svm-fault", "svm", "E", core_tid, "");
        break;
      case EventKind::kServeBegin:
        emit(recs, e.t_ps, "svm-serve", "svm", "B", core_tid,
             args_u64("page", e.a, "type", e.b, "seq", e.c));
        break;
      case EventKind::kServeEnd:
        emit(recs, e.t_ps, "svm-serve", "svm", "E", core_tid, "");
        break;
      case EventKind::kMailSend:
        emit(recs, e.t_ps, wire_name(mail_type(e.b)), "mail", "i",
             kTidMailbox,
             ",\"s\":\"t\"" +
                 args_u64("from", static_cast<u64>(e.core), "to", e.a,
                          "page", e.c));
        emit_mail_flow(recs, e);
        break;
      case EventKind::kMailDeliver:
        emit(recs, e.t_ps, wire_name(mail_type(e.b)), "mail", "i",
             kTidMailbox,
             ",\"s\":\"t\"" +
                 args_u64("at", static_cast<u64>(e.core), "from", e.a,
                          "page", e.c));
        emit_mail_flow(recs, e);
        break;
      case EventKind::kMailSweep:
        emit(recs, e.t_ps, "mail-sweep", "mail", "i", kTidMailbox,
             ",\"s\":\"t\"" + args_u64("recovered", e.a));
        break;
      case EventKind::kMemRead:
      case EventKind::kMemWrite:
        emit(recs, e.t_ps, to_string(e.kind), "mem", "i", kTidMemory,
             ",\"s\":\"t\"" +
                 args_u64("paddr", e.a, "size", e.b, "core",
                          static_cast<u64>(e.core)));
        break;
      case EventKind::kFaultInject:
        emit(recs, e.t_ps, to_string(static_cast<InjectKind>(e.a)),
             "chaos", "i", kTidChaos,
             ",\"s\":\"t\"" +
                 args_u64("core", static_cast<u64>(e.core), "ps", e.b));
        break;
      case EventKind::kWatchdogTrip:
        emit(recs, e.t_ps, "watchdog-trip", "chaos", "i", kTidChaos,
             ",\"s\":\"p\"" + args_u64("core", e.a));
        break;
      default:
        // Protocol events, lock/WCB/IPI instants, retransmits: thread-
        // scoped instants on the publishing core's track.
        emit(recs, e.t_ps, to_string(e.kind),
             category_of(e.kind) == kCatProto ? "proto" : "sync", "i",
             core_tid,
             ",\"s\":\"t\"" + args_u64("a", e.a, "b", e.b, "c", e.c));
        break;
    }
  }
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Rec& x, const Rec& y) { return x.t < y.t; });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const std::string& m : meta) {
    out += first ? "\n" : ",\n";
    out += m;
    first = false;
  }
  for (const Rec& r : recs) {
    out += first ? "\n" : ",\n";
    out += r.json;
    first = false;
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const TraceCollector& c, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json(c);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
                  json.size();
  std::fclose(f);
  return ok;
}

TraceCollector& global_collector() {
  static TraceCollector c;
  return c;
}

}  // namespace msvm::obs
