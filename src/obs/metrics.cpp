#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace msvm::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

MetricsRegistry::HistSummary MetricsRegistry::summarize(
    const std::string& name) const {
  HistSummary s;
  const auto it = histograms_.find(name);
  if (it == histograms_.end() || it->second.empty()) return s;
  std::vector<double> v = it->second;
  std::sort(v.begin(), v.end());
  s.count = v.size();
  s.min = v.front();
  s.max = v.back();
  double sum = 0;
  for (const double x : v) sum += x;
  s.mean = sum / static_cast<double>(v.size());
  s.p50 = percentile(v, 0.50);
  s.p95 = percentile(v, 0.95);
  s.p99 = percentile(v, 0.99);
  s.p999 = percentile(v, 0.999);
  return s;
}

std::string MetricsRegistry::to_json(const std::string& indent) const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n" : ",\n";
    out += indent + "\"" + name + "\": " + std::to_string(value);
    first = false;
  }
  for (const auto& [name, samples] : histograms_) {
    (void)samples;
    const HistSummary s = summarize(name);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %zu, \"min\": %s, \"max\": %s, "
                  "\"mean\": %s, \"p50\": %s, \"p95\": %s, "
                  "\"p99\": %s, \"p999\": %s}",
                  s.count, fmt_double(s.min).c_str(),
                  fmt_double(s.max).c_str(), fmt_double(s.mean).c_str(),
                  fmt_double(s.p50).c_str(), fmt_double(s.p95).c_str(),
                  fmt_double(s.p99).c_str(), fmt_double(s.p999).c_str());
    out += first ? "\n" : ",\n";
    out += indent + "\"" + name + "\": " + buf;
    first = false;
  }
  if (first) {
    out += "}";
  } else {
    out += "\n";
    if (indent.size() > 2) out += indent.substr(0, indent.size() - 2);
    out += "}";
  }
  return out;
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry m;
  return m;
}

}  // namespace msvm::obs
