// Typed event vocabulary of the observability subsystem.
//
// Every layer of the simulator publishes its interesting moments as one
// flat Event record: the protocol engine's state transitions and
// messages, the SVM runtime's fault/serve windows, mailbox deposits and
// deliveries, lock and WCB activity, memory-system transactions, and the
// chaos layer's injections. Events carry the publishing core's *virtual*
// timestamp — recording is host-side only and costs zero simulated time,
// which is what lets the whole subsystem stay bit-identical whether it
// is enabled or not.
//
// The obs library is the bottom of the dependency stack (even msvm_sim
// links it), so this header is deliberately freestanding: no sim/sccsim
// includes, local fixed-width aliases like the protocol core's.
#pragma once

#include <cstdint>

namespace msvm::obs {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;

/// Every event kind the bus understands. The first five mirror the
/// protocol layer's trace vocabulary one-to-one (same order, same
/// payload meaning) so the binding layer converts by cast.
enum class EventKind : u8 {
  // Protocol engine (payload: a = page, b/c = old TraceEvent a/b).
  kProtoTransition = 0,  // b: old PageState, c: new PageState
  kProtoMsgSend = 1,     // b: MsgType, c: destination core / multicast mask
  kProtoMsgRecv = 2,     // b: MsgType, c: requester id
  kProtoMetaWrite = 3,   // b: MetaKind, c: value written
  kProtoFault = 4,       // b: 1 = write fault, c: fault-path tag

  // SVM runtime spans and instants.
  kFaultBegin,       // a: page, b: is_write — enter the fault handler
  kFaultEnd,         // a: page, b: is_write — leave the fault handler
  kServeBegin,       // a: page, b: mail type, c: request seq
  kServeEnd,         // a: page, b: mail type, c: request seq
  kMailRetransmit,   // a: dest core, b: packed mail, c: page

  // Synchronisation / kernel.
  kLockAcquire,  // a: lock id
  kLockRelease,  // a: lock id
  kWcbFlush,     // (no payload)
  kIpiRaise,     // a: target core

  // Mailbox transport.
  kMailSend,     // a: dest core,   b: packed mail (see pack_mail), c: p0
  kMailDeliver,  // a: sender core, b: packed mail,                 c: p0
  kMailSweep,    // a: mails recovered by this poll sweep

  // Memory system (high volume; gated separately, see kCatMem).
  kMemRead,   // a: paddr, b: size, c: target kind << 8 | owner
  kMemWrite,  // a: paddr, b: size, c: target kind << 8 | owner

  // Chaos layer.
  kFaultInject,   // a: InjectKind, b: injected delay in ps (when timed)
  kWatchdogTrip,  // a: core that noticed the hang

  // Failure recovery (category kCatProto: the auditor and the proto
  // rings must see epoch fences under the default mask).
  kRecoveryBegin,  // a: epoch, b: dead-core bitmask (low 64), c: page
  kRecoveryEnd,    // a: epoch, b: proto::RecoveryAction taken, c: page

  // Integrity layer (category kCatIntegrity): checksummed mail and
  // sealed pages turning corruption into detection-and-recovery.
  kMailCorruptDrop,  // a: sender core, b: packed mail, c: computed crc
  kPageSeal,         // a: page, b: seal generation, c: crc32c
  kPageCorrupt,      // a: page, b: seal generation, c: IntegrityAction
  kMetaCorrupt,      // a: page, b: MetaKind, c: corrected value
  kScrubPass,        // a: pages walked, b: corruptions found
};

/// What became of a page whose seal failed verification (payload `c`
/// of kPageCorrupt).
enum class IntegrityAction : u8 {
  kRepaired = 0,   // rebuilt from a clean cached copy, seal re-verified
  kRefetched = 1,  // re-read from the owner's clean copy
  kPoisoned = 2,   // no clean copy anywhere: page poisoned, access throws
};

inline const char* to_string(IntegrityAction a) {
  switch (a) {
    case IntegrityAction::kRepaired: return "repaired";
    case IntegrityAction::kRefetched: return "refetched";
    case IntegrityAction::kPoisoned: return "poisoned";
  }
  return "?";
}

/// What the chaos layer injected (payload `a` of kFaultInject).
enum class InjectKind : u8 {
  kIpiDrop = 0,
  kIpiDelay,
  kMailDelay,
  kMailDup,
  kStall,
  kSpuriousWake,
  kCoreKill,
  kMailFlip,
  kPageFlip,
  kMetaFlip,
};

inline const char* to_string(InjectKind k) {
  switch (k) {
    case InjectKind::kIpiDrop: return "ipi-drop";
    case InjectKind::kIpiDelay: return "ipi-delay";
    case InjectKind::kMailDelay: return "mail-delay";
    case InjectKind::kMailDup: return "mail-dup";
    case InjectKind::kStall: return "stall";
    case InjectKind::kSpuriousWake: return "spurious-wake";
    case InjectKind::kCoreKill: return "core-kill";
    case InjectKind::kMailFlip: return "mail-flip";
    case InjectKind::kPageFlip: return "page-flip";
    case InjectKind::kMetaFlip: return "meta-flip";
  }
  return "?";
}

inline const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kProtoTransition: return "proto-transition";
    case EventKind::kProtoMsgSend: return "proto-send";
    case EventKind::kProtoMsgRecv: return "proto-recv";
    case EventKind::kProtoMetaWrite: return "proto-meta";
    case EventKind::kProtoFault: return "proto-fault";
    case EventKind::kFaultBegin: return "svm-fault";
    case EventKind::kFaultEnd: return "svm-fault";
    case EventKind::kServeBegin: return "svm-serve";
    case EventKind::kServeEnd: return "svm-serve";
    case EventKind::kMailRetransmit: return "mail-retransmit";
    case EventKind::kLockAcquire: return "lock-acquire";
    case EventKind::kLockRelease: return "lock-release";
    case EventKind::kWcbFlush: return "wcb-flush";
    case EventKind::kIpiRaise: return "ipi";
    case EventKind::kMailSend: return "mail-send";
    case EventKind::kMailDeliver: return "mail-deliver";
    case EventKind::kMailSweep: return "mail-sweep";
    case EventKind::kMemRead: return "mem-read";
    case EventKind::kMemWrite: return "mem-write";
    case EventKind::kFaultInject: return "fault-inject";
    case EventKind::kWatchdogTrip: return "watchdog-trip";
    case EventKind::kRecoveryBegin: return "recovery-begin";
    case EventKind::kRecoveryEnd: return "recovery-end";
    case EventKind::kMailCorruptDrop: return "mail-corrupt-drop";
    case EventKind::kPageSeal: return "page-seal";
    case EventKind::kPageCorrupt: return "page-corrupt";
    case EventKind::kMetaCorrupt: return "meta-corrupt";
    case EventKind::kScrubPass: return "scrub-pass";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Categories: the bus's runtime gate. Publishing sites check
// bus.enabled(kCatX) before even constructing an Event, so a disabled
// category costs one predictable branch.

inline constexpr u32 kCatProto = 1u << 0;  // always on: feeds the rings
inline constexpr u32 kCatSvm = 1u << 1;
inline constexpr u32 kCatMail = 1u << 2;
inline constexpr u32 kCatSync = 1u << 3;
inline constexpr u32 kCatMem = 1u << 4;  // high volume, off by default
inline constexpr u32 kCatChaos = 1u << 5;
inline constexpr u32 kCatIntegrity = 1u << 6;

/// What `--trace` turns on (everything but the memory firehose).
inline constexpr u32 kCatTrace =
    kCatProto | kCatSvm | kCatMail | kCatSync | kCatChaos | kCatIntegrity;
inline constexpr u32 kCatAll = kCatTrace | kCatMem;

constexpr u32 category_of(EventKind k) {
  switch (k) {
    case EventKind::kProtoTransition:
    case EventKind::kProtoMsgSend:
    case EventKind::kProtoMsgRecv:
    case EventKind::kProtoMetaWrite:
    case EventKind::kProtoFault:
      return kCatProto;
    case EventKind::kFaultBegin:
    case EventKind::kFaultEnd:
    case EventKind::kServeBegin:
    case EventKind::kServeEnd:
    case EventKind::kMailRetransmit:
      return kCatSvm;
    case EventKind::kLockAcquire:
    case EventKind::kLockRelease:
    case EventKind::kWcbFlush:
    case EventKind::kIpiRaise:
      return kCatSync;
    case EventKind::kMailSend:
    case EventKind::kMailDeliver:
    case EventKind::kMailSweep:
      return kCatMail;
    case EventKind::kMemRead:
    case EventKind::kMemWrite:
      return kCatMem;
    case EventKind::kFaultInject:
    case EventKind::kWatchdogTrip:
      return kCatChaos;
    case EventKind::kRecoveryBegin:
    case EventKind::kRecoveryEnd:
      return kCatProto;
    case EventKind::kMailCorruptDrop:
    case EventKind::kPageSeal:
    case EventKind::kPageCorrupt:
    case EventKind::kMetaCorrupt:
    case EventKind::kScrubPass:
      return kCatIntegrity;
  }
  return kCatProto;
}

/// One published event. `core` is the publishing core (-1 for chip-level
/// sources like the watchdog); `t_ps` is that core's virtual clock.
struct Event {
  u64 t_ps = 0;
  u64 a = 0;
  u64 b = 0;
  u64 c = 0;
  EventKind kind = EventKind::kProtoTransition;
  i32 core = -1;
};

// ---------------------------------------------------------------------------
// Mail payload packing: kMailSend/kMailDeliver compress the protocol-
// relevant mail header into Event::b so the exporter can reconstruct
// request/ACK chains.

constexpr u64 pack_mail(u8 type, u16 seq, u8 requester) {
  return static_cast<u64>(type) | (static_cast<u64>(seq) << 16) |
         (static_cast<u64>(requester) << 32);
}
constexpr u8 mail_type(u64 packed) { return static_cast<u8>(packed); }
constexpr u16 mail_seq(u64 packed) {
  return static_cast<u16>(packed >> 16);
}
constexpr u8 mail_requester(u64 packed) {
  return static_cast<u8>(packed >> 32);
}

/// On-wire SVM protocol mail types (the values of svm.hpp's kMail*
/// constants; duplicated here because obs sits below the svm layer).
inline constexpr u8 kWireOwnershipReq = 0x20;
inline constexpr u8 kWireOwnershipAck = 0x21;
inline constexpr u8 kWireReadReq = 0x22;
inline constexpr u8 kWireReadAck = 0x23;
inline constexpr u8 kWireInval = 0x24;
inline constexpr u8 kWireInvalAck = 0x25;

constexpr bool is_wire_request(u8 type) {
  return type == kWireOwnershipReq || type == kWireReadReq ||
         type == kWireInval;
}
constexpr bool is_wire_ack(u8 type) {
  return type == kWireOwnershipAck || type == kWireReadAck ||
         type == kWireInvalAck;
}

/// Flow id linking one protocol request round-trip end to end: stamped
/// from (originating requester, sequence number), both of which every
/// hop of the chain echoes.
constexpr u64 flow_id(u8 requester, u16 seq) {
  return (static_cast<u64>(requester) << 16) | seq;
}

}  // namespace msvm::obs
