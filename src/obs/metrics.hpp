// The metrics registry: named typed counters and histograms, enumerable
// by the cluster report and dumped into BENCH_*.json.
//
// This replaces the ad-hoc plumbing where every stats struct
// (CoreCounters, SvmStats, MailboxStats) needed hand-written aggregation
// in the report and hand-picked fields in each bench: the structs now
// describe themselves through field tables, and fold_* pours any of them
// into the registry under a dotted prefix ("core.loads", "svm.barriers",
// "mailbox.sent"). Host-side only; nothing here touches virtual time.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/events.hpp"

namespace msvm::obs {

class MetricsRegistry {
 public:
  /// Accumulates `delta` into the named counter (creating it at 0).
  void add(const std::string& name, u64 delta) {
    counters_[name] += delta;
  }
  void set(const std::string& name, u64 value) { counters_[name] = value; }
  u64 counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Records one sample into the named histogram.
  void observe(const std::string& name, double sample) {
    histograms_[name].push_back(sample);
  }

  bool empty() const { return counters_.empty() && histograms_.empty(); }
  void clear() {
    counters_.clear();
    histograms_.clear();
  }

  /// Sorted (name, value) view of every counter.
  const std::map<std::string, u64>& counters() const { return counters_; }

  struct HistSummary {
    std::size_t count = 0;
    double min = 0;
    double max = 0;
    double mean = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    double p999 = 0;
  };
  HistSummary summarize(const std::string& name) const;
  const std::map<std::string, std::vector<double>>& histograms() const {
    return histograms_;
  }

  /// JSON object `{"name": value, ..., "hist": {count,...}}` with every
  /// entry on its own line prefixed by `indent`.
  std::string to_json(const std::string& indent) const;

 private:
  std::map<std::string, u64> counters_;
  std::map<std::string, std::vector<double>> histograms_;
};

/// The process-wide registry the --metrics flag folds run totals into.
MetricsRegistry& global_metrics();

/// Pours a self-describing stats struct (any struct with a field table
/// of {name, pointer-to-member}) into `m` under `prefix` + ".".
template <typename Struct, typename Field, std::size_t N>
void fold_fields(MetricsRegistry& m, const std::string& prefix,
                 const Struct& s, const Field (&fields)[N]) {
  for (const Field& f : fields) {
    m.add(prefix + "." + f.name, static_cast<u64>(s.*(f.member)));
  }
}

}  // namespace msvm::obs
