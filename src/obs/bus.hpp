// The event bus: bounded per-core ring buffers plus a fan-out to
// attached sinks (trace collector, heatmap, ...). One EventBus per chip.
//
// Cost model, because the zero-overhead-off guarantee depends on it:
//   * publish() is host-side only — it never touches a core's virtual
//     clock, so enabling any amount of observability cannot perturb the
//     simulation.
//   * protocol-category events are always recorded into the publishing
//     core's ring (they replaced the old per-core proto::TraceRing and
//     feed hang reports / the svm-trace section even with obs off).
//   * every other category is gated by a runtime mask; call sites check
//     bus.enabled(kCatX) before constructing the Event, so a disabled
//     category costs one predictable branch.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/events.hpp"

namespace msvm::obs {

/// Anything that wants the live event stream implements this.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& e) = 0;
};

/// Fixed-capacity ring of the most recent events on one track. Same
/// keep-the-newest semantics as the protocol layer's former TraceRing.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity = 256) : events_(capacity) {}

  void record(const Event& e) {
    if (events_.empty()) return;
    events_[static_cast<std::size_t>(next_ % events_.size())] = e;
    ++next_;
  }

  void clear() { next_ = 0; }

  /// Total events ever recorded (>= size(); the excess was overwritten).
  u64 recorded() const { return next_; }
  std::size_t size() const {
    return next_ < events_.size() ? static_cast<std::size_t>(next_)
                                  : events_.size();
  }

  /// Oldest-to-newest snapshot of the surviving events.
  std::vector<Event> snapshot() const;

 private:
  std::vector<Event> events_;
  u64 next_ = 0;
};

class EventBus {
 public:
  explicit EventBus(int num_cores)
      : rings_(static_cast<std::size_t>(num_cores) + 1) {}

  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  int num_cores() const { return static_cast<int>(rings_.size()) - 1; }

  /// ORs extra categories into the runtime mask (kCatProto is always set).
  void enable(u32 categories) { mask_ |= categories; }

  /// Cheap call-site gate: is any of `categories` being published?
  bool enabled(u32 categories) const { return (mask_ & categories) != 0; }

  /// Subscribes `sink` to every event that passes the mask.
  void attach(EventSink* sink) { sinks_.push_back(sink); }

  void publish(const Event& e) {
    const u32 cat = category_of(e.kind);
    if ((mask_ & cat) == 0) return;
    if (cat == kCatProto) ring_of(e.core).record(e);
    for (EventSink* sink : sinks_) sink->on_event(e);
  }

  /// Per-core ring; index num_cores() (or any core id out of range,
  /// including -1) is the chip-level ring.
  const EventRing& ring(int core) const {
    return const_cast<EventBus*>(this)->ring_of(core);
  }

 private:
  EventRing& ring_of(int core) {
    const std::size_t chip = rings_.size() - 1;
    const std::size_t i =
        core >= 0 && core < static_cast<int>(chip)
            ? static_cast<std::size_t>(core)
            : chip;
    return rings_[i];
  }

  std::vector<EventRing> rings_;  // [0, N) per core, [N] chip-level
  std::vector<EventSink*> sinks_;
  u32 mask_ = kCatProto;
};

// ---------------------------------------------------------------------------
// Process-wide observability configuration. Benches (via bench_common's
// obs_setup) fill it from --trace/--metrics/--heatmap flags before any
// chip exists; every Chip constructor then applies it to its own bus.
// Default-constructed (all off) it changes nothing.

struct RuntimeConfig {
  u32 categories = 0;        // extra categories every new chip enables
  bool collect = false;      // attach the global TraceCollector
  bool heatmap = false;      // attach the global PageHeatmap
  bool metrics = false;      // fold run counters into global_metrics()
  std::string trace_path;    // Chrome-trace JSON output ("" = off)
  std::string heatmap_path;  // heatmap JSON output ("" = off)
};

RuntimeConfig& runtime_config();

}  // namespace msvm::obs
