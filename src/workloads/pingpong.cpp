#include "workloads/pingpong.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "kernel/kernel.hpp"
#include "mailbox/mailbox.hpp"
#include "sccsim/chip.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace msvm::workloads {

namespace {

constexpr u8 kPing = 1;
constexpr u8 kPong = 2;
constexpr u8 kNoise = 3;

}  // namespace

PingPongResult run_mailbox_pingpong(const PingPongParams& params) {
  scc::ChipConfig ccfg;
  ccfg.num_cores = 48;
  ccfg.shared_dram_bytes = 4 << 20;
  ccfg.private_dram_bytes = 1 << 20;
  scc::Chip chip(ccfg);

  // Activated set: the ping-pong pair plus the lowest-numbered others.
  std::vector<int> active{params.core_a, params.core_b};
  for (int c = 0; c < ccfg.num_cores &&
                  static_cast<int>(active.size()) < params.activated_cores;
       ++c) {
    if (c != params.core_a && c != params.core_b) active.push_back(c);
  }
  std::sort(active.begin(), active.end());

  std::vector<int> noise_cores;
  if (params.background_noise) {
    for (const int c : active) {
      if (c != params.core_a && c != params.core_b) noise_cores.push_back(c);
    }
  }

  bool stop_flag = false;
  sim::SampleSet samples;
  u64 checks_before = 0;
  u64 checks_after = 0;

  std::vector<std::unique_ptr<kernel::Kernel>> kernels(
      static_cast<std::size_t>(ccfg.num_cores));
  std::vector<std::unique_ptr<mbox::MailboxSystem>> mboxes(
      static_cast<std::size_t>(ccfg.num_cores));

  for (const int core_id : active) {
    chip.spawn_program(core_id, [&, core_id](scc::Core& core) {
      auto& kern = kernels[static_cast<std::size_t>(core_id)];
      kern = std::make_unique<kernel::Kernel>(core);
      kern->boot();
      auto& mb = mboxes[static_cast<std::size_t>(core_id)];
      mb = std::make_unique<mbox::MailboxSystem>(*kern, params.use_ipi);
      mb->set_participants(active);

      const bool is_noise =
          std::find(noise_cores.begin(), noise_cores.end(), core_id) !=
          noise_cores.end();

      if (core_id == params.core_a) {
        sim::Rng stagger(0x9e37);
        for (int i = 0; i < params.reps + params.warmup; ++i) {
          // Decorrelate the sender from the receiver's poll-loop phase:
          // the simulation is deterministic, so without this stagger
          // every repetition hits the identical loop alignment and the
          // measured latency aliases instead of averaging. The pause is
          // outside the timed window and spans many poll periods.
          core.compute_cycles(1 + stagger.next_below(2048));
          const TimePs t0 = core.now();
          mbox::Mail m;
          m.type = kPing;
          mb->send(params.core_b, m);
          (void)mb->recv_type(kPong);
          if (i >= params.warmup) {
            samples.add(static_cast<double>((core.now() - t0) / 2));
          }
        }
        stop_flag = true;
        // Kick every halted participant so the run winds down promptly.
        for (const int other : active) {
          if (other != core_id) core.raise_ipi(other);
        }
      } else if (core_id == params.core_b) {
        sim::Rng stagger(0x51c2);
        for (int i = 0; i < params.reps + params.warmup; ++i) {
          if (i == params.warmup) {
            checks_before = mb->stats().slot_checks;
          }
          (void)mb->recv_type(kPing);
          mbox::Mail m;
          m.type = kPong;
          mb->send(params.core_a, m);
          // Randomise this core's poll-loop phase for the next ping (the
          // deterministic simulation otherwise locks both loops into a
          // hop-dependent interleaving pattern; real hardware jitters).
          core.compute_cycles(stagger.next_below(384));
        }
        checks_after = mb->stats().slot_checks;
        while (!stop_flag) kern->idle_once();
      } else if (is_noise) {
        // Background noise: ring of non-blocking mails among the idle
        // participants ("the remaining activated cores permanently
        // interact among themselves by sending mails", Section 7.1).
        const auto me = std::find(noise_cores.begin(), noise_cores.end(),
                                  core_id);
        const int next =
            noise_cores[static_cast<std::size_t>(
                (me - noise_cores.begin() + 1) % noise_cores.size())];
        while (!stop_flag) {
          if (next != core_id) {
            mbox::Mail m;
            m.type = kNoise;
            (void)mb->try_send(next, m);
          }
          // Discard received noise.
          while (mb->try_take([](const mbox::Mail& m) {
            return m.type == kNoise;
          })) {
          }
          if (!params.use_ipi) mb->poll_all();
          core.yield();
          core.compute_cycles(200);
        }
      } else {
        // Plain activated core: sits in the mailbox idle path.
        while (!stop_flag) {
          if (params.use_ipi) {
            kern->idle_once();
          } else {
            mb->poll_all();
            core.yield();
          }
        }
      }
    });
  }
  chip.run();

  PingPongResult result;
  result.half_rtt_mean = static_cast<TimePs>(samples.mean());
  result.half_rtt_min = static_cast<TimePs>(samples.min());
  result.half_rtt_max = static_cast<TimePs>(samples.max());
  result.slot_checks = checks_after - checks_before;
  return result;
}

}  // namespace msvm::workloads
