#include "workloads/matmul.hpp"

#include <algorithm>
#include <vector>

#include "cluster/cluster.hpp"

namespace msvm::workloads {

namespace {

double a_of(u32 i, u32 j) { return 0.25 + static_cast<double>((i * 7 + j) % 13); }
double b_of(u32 i, u32 j) { return 0.5 + static_cast<double>((i * 3 + j) % 7); }

}  // namespace

double matmul_reference_checksum(const MatmulParams& p) {
  double sum = 0.0;
  for (u32 i = 0; i < p.n; ++i) {
    for (u32 j = 0; j < p.n; ++j) {
      double acc = 0.0;
      for (u32 k = 0; k < p.n; ++k) acc += a_of(i, k) * b_of(k, j);
      sum += acc;
    }
  }
  return sum;
}

MatmulResult run_matmul(const MatmulParams& p, svm::Model model,
                        int num_cores) {
  cluster::ClusterConfig cfg;
  // Sizes the chip grid to the member count (a no-op below 48 cores).
  scc::configure_cores(cfg.chip, num_cores);
  cfg.chip.sched_lanes = p.sched_lanes;
  const u64 mat_bytes = static_cast<u64>(p.n) * p.n * 8;
  // As in laplace: 64 KiB of shared DRAM per core past the 48-core die
  // keeps the per-MC frame pools ahead of the allocation batches.
  cfg.chip.shared_dram_bytes =
      std::max<u64>({16ull << 20, 8 * mat_bytes,
                     static_cast<u64>(num_cores) << 16});
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.model = model;
  cfg.svm.read_replication = p.read_replication;
  cfg.use_ipi = p.use_ipi;
  cfg.chip.faults = p.faults;
  cluster::Cluster cl(cfg);

  MatmulResult result;
  std::vector<double> partial(static_cast<std::size_t>(num_cores), 0.0);
  std::vector<TimePs> elapsed(static_cast<std::size_t>(num_cores), 0);
  std::vector<u64> l2(static_cast<std::size_t>(num_cores), 0);

  cl.run([&](cluster::Node& n) {
    svm::Svm& svm = n.svm();
    scc::Core& core = n.core();
    const auto r = static_cast<std::size_t>(n.rank());
    const u64 a = svm.alloc(mat_bytes);
    const u64 b = svm.alloc(mat_bytes);
    const u64 c = svm.alloc(mat_bytes);
    auto at = [&](u64 base, u32 i, u32 j) {
      return base + (static_cast<u64>(i) * p.n + j) * 8;
    };

    // Block-row initialisation: first-touch places each core's rows of
    // all three matrices near its own memory controller.
    const u32 r0 = static_cast<u32>(
        static_cast<u64>(p.n) * static_cast<u64>(n.rank()) / n.size());
    const u32 r1 = static_cast<u32>(
        static_cast<u64>(p.n) * (static_cast<u64>(n.rank()) + 1) /
        n.size());
    for (u32 i = r0; i < r1; ++i) {
      for (u32 j = 0; j < p.n; ++j) {
        core.vstore<double>(at(a, i, j), a_of(i, j));
        core.vstore<double>(at(b, i, j), b_of(i, j));
        core.vstore<double>(at(c, i, j), 0.0);
      }
    }
    svm.barrier();

    if (p.protect_inputs) {
      svm.protect_readonly(a, mat_bytes);
      svm.protect_readonly(b, mat_bytes);
    }

    const u64 l2_before = core.counters().l2_hits;
    const TimePs t0 = core.now();
    for (u32 i = r0; i < r1; ++i) {
      for (u32 j = 0; j < p.n; ++j) {
        double acc = 0.0;
        for (u32 k = 0; k < p.n; ++k) {
          acc += core.vload<double>(at(a, i, k)) *
                 core.vload<double>(at(b, k, j));
          core.compute_cycles(p.compute_cycles_per_madd);
        }
        core.vstore<double>(at(c, i, j), acc);
      }
    }
    svm.barrier();
    elapsed[r] = core.now() - t0;
    l2[r] = core.counters().l2_hits - l2_before;

    double sum = 0.0;
    for (u32 i = r0; i < r1; ++i) {
      for (u32 j = 0; j < p.n; ++j) {
        sum += core.vload<double>(at(c, i, j));
      }
    }
    partial[r] = sum;
    svm.barrier();
  });

  for (int r = 0; r < num_cores; ++r) {
    const auto i = static_cast<std::size_t>(r);
    result.checksum += partial[i];
    result.elapsed = std::max(result.elapsed, elapsed[i]);
    result.l2_hits += l2[i];
  }
  for (const int c : cl.members()) {
    result.ownership_acquires +=
        cl.node(c).svm().stats().ownership_acquires;
    result.mail_roundtrips +=
        cl.node(c).core().counters().svm_mail_roundtrips;
    result.invalidations += cl.node(c).svm().stats().invalidations_sent;
  }
  return result;
}

}  // namespace msvm::workloads
