// Synthetic SVM overhead benchmark — the paper's Table 1 (Section 7.2.1).
//
// Protocol (executed on cores 0 and 30 of a 48-core chip, as in the
// paper):
//   1. Both cores collectively allocate 4 MiB (1024 pages) — row 1.
//   2. Core 0 writes the first four bytes of every page, physically
//      allocating each frame on first touch — row 2 (per page).
//   3. Core 30 writes the first four bytes of every page; the frames
//      exist, so this measures mapping an already-allocated page — row 3.
//      Under the Strong model this includes retrieving ownership.
//   4. Core 0 writes again; pages are allocated and were mapped on core 0
//      before, so under the Strong model this isolates the pure
//      "retrieve the access permission" cost — row 4.
#pragma once

#include "sim/types.hpp"
#include "svm/svm.hpp"

namespace msvm::workloads {

struct SvmOverheadParams {
  svm::Model model = svm::Model::kLazyRelease;
  bool use_ipi = true;
  u64 bytes = 4 << 20;  // the paper's 4 MiB
  int core_a = 0;
  int core_b = 30;
};

struct SvmOverheadResult {
  TimePs alloc_total = 0;          // row 1: collective reservation
  TimePs phys_alloc_per_page = 0;  // row 2
  TimePs map_per_page = 0;         // row 3
  TimePs retrieve_per_page = 0;    // row 4
  u64 pages = 0;
};

SvmOverheadResult run_svm_overhead(const SvmOverheadParams& params);

}  // namespace msvm::workloads
