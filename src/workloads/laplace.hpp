// The paper's application benchmark (Section 7.2.2): the two-dimensional
// Laplace (heat-distribution) problem solved by Jacobi over-relaxation,
//   u_new[i][j] = 1/4 (u_old[i-1][j] + u_old[i+1][j]
//                      + u_old[i][j-1] + u_old[i][j+1]),
// over a ny x nx grid of doubles with fixed boundary temperatures, a
// static block-row distribution over n cores, array swap plus barrier
// after every iteration.
//
// Three variants, matching Figure 9's three curves:
//   - SVM, Strong Memory Model
//   - SVM, Lazy Release Consistency
//   - iRCCE message passing (private arrays + ghost-row exchange)
//
// The paper's grid is 1024 x 512 doubles — each row is exactly one 4 KiB
// page, so boundary-row sharing is page-granular by construction (and the
// two arrays total 2 x 4 MiB, the size Table 1 allocates).
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "sim/faults.hpp"
#include "sim/types.hpp"
#include "svm/svm.hpp"

namespace msvm::workloads {

struct LaplaceParams {
  u32 nx = 512;    // row width in doubles (512 * 8 B = one page)
  u32 ny = 1024;   // number of rows
  u32 iterations = 10;
  /// FPU cost per 5-point stencil update (P54C-ish adds + multiply).
  u32 compute_cycles_per_cell = 8;
  /// Boundary temperature along the top edge (other edges at 0).
  double hot_edge = 100.0;
  /// Core clock; mesh/DRAM stay at 800 MHz (the frequency-sweep
  /// ablation exercises this, Section 3).
  u32 core_mhz = 533;
  /// Strong-model read-replication directory: boundary rows are read by
  /// one neighbour and written by their owner, the sharing pattern the
  /// directory turns into one grant + one invalidation per iteration.
  bool read_replication = false;
  /// Event lanes for the sharded scheduler (1 = classic single heap).
  int sched_lanes = 1;
  /// Chaos layer: deterministic fault-injection plan (default: no faults).
  sim::FaultPlan faults;
};

struct LaplaceResult {
  /// Iteration-phase virtual time of the slowest core (excludes init).
  TimePs elapsed = 0;
  double checksum = 0.0;  // sum over the final grid, for correctness
  u64 page_faults = 0;    // total across cores, iteration phase only
  u64 ownership_acquires = 0;
  u64 wcb_flushes = 0;
  u64 l2_hits = 0;
  u64 l1_misses = 0;
  u64 dram_reads = 0;
  u64 dram_writes = 0;
  u64 bytes_messaged = 0;   // iRCCE variant only
  u64 mail_roundtrips = 0;  // blocking fault-path round-trips, iter phase
  u64 invalidations = 0;    // replica invalidations sent, all cores
};

/// Host-side reference solution (plain C++), for checksum validation.
double laplace_reference_checksum(const LaplaceParams& p);

/// Runs the SVM variant on `num_cores` cores under the given model.
LaplaceResult run_laplace_svm(const LaplaceParams& p, svm::Model model,
                              int num_cores, bool use_ipi = true);

/// Runs the iRCCE message-passing variant on `num_cores` cores.
LaplaceResult run_laplace_ircce(const LaplaceParams& p, int num_cores);

/// Row partition helper: rows [first, last) of rank r out of n (interior
/// distribution of ny rows including the boundary rows).
std::pair<u32, u32> laplace_rows_of_rank(u32 ny, int rank, int n);

}  // namespace msvm::workloads
