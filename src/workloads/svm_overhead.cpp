#include "workloads/svm_overhead.hpp"

#include "cluster/cluster.hpp"

namespace msvm::workloads {

SvmOverheadResult run_svm_overhead(const SvmOverheadParams& params) {
  cluster::ClusterConfig cfg;
  cfg.chip.num_cores = 48;
  cfg.chip.shared_dram_bytes = 32 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.model = params.model;
  cfg.use_ipi = params.use_ipi;
  cfg.members = {params.core_a, params.core_b};
  cluster::Cluster cl(cfg);

  SvmOverheadResult result;
  const u64 page = cfg.chip.page_bytes;
  const u64 pages = params.bytes / page;
  result.pages = pages;

  cl.run([&](cluster::Node& n) {
    svm::Svm& svm = n.svm();
    scc::Core& core = n.core();
    const bool is_a = n.core_id() == params.core_a;

    // Row 1: collective reservation of the whole region.
    const TimePs t_alloc0 = core.now();
    const u64 base = svm.alloc(params.bytes);
    if (is_a) result.alloc_total = core.now() - t_alloc0;

    // Row 2: core A touches every page => physical allocation.
    if (is_a) {
      const TimePs t0 = core.now();
      for (u64 p = 0; p < pages; ++p) {
        core.vstore<u32>(base + p * page, 0xa110c);
      }
      result.phys_alloc_per_page = (core.now() - t0) / pages;
    }
    svm.barrier();

    // Row 3: core B touches every (already allocated) page => mapping,
    // plus — under Strong — the ownership retrieval from core A.
    if (!is_a) {
      const TimePs t0 = core.now();
      for (u64 p = 0; p < pages; ++p) {
        core.vstore<u32>(base + p * page, 0x3a99ed);
      }
      result.map_per_page = (core.now() - t0) / pages;
    }
    svm.barrier();

    // Row 4: core A writes again. Pages are allocated and were mapped on
    // A before; under Strong, A must retrieve permission from B — the
    // isolated ownership-transfer cost. Under Lazy Release the mapping
    // still exists, so this is the no-overhead baseline.
    if (is_a) {
      const TimePs t0 = core.now();
      for (u64 p = 0; p < pages; ++p) {
        core.vstore<u32>(base + p * page, 0x4e5e7);
      }
      result.retrieve_per_page = (core.now() - t0) / pages;
    }
    svm.barrier();
  });

  return result;
}

}  // namespace msvm::workloads
