#include "workloads/histogram.hpp"

#include <algorithm>

#include "cluster/cluster.hpp"
#include "sim/rng.hpp"

namespace msvm::workloads {

namespace {

u32 draw_bin(sim::Rng& rng, u32 bins) {
  return static_cast<u32>(rng.next_below(bins));
}

}  // namespace

std::vector<u64> histogram_reference(const HistogramParams& p,
                                     int num_cores) {
  std::vector<u64> bins(p.bins, 0);
  for (int rank = 0; rank < num_cores; ++rank) {
    sim::Rng rng(p.seed + static_cast<u64>(rank));
    for (u32 s = 0; s < p.samples_per_core; ++s) {
      ++bins[draw_bin(rng, p.bins)];
    }
  }
  return bins;
}

HistogramResult run_histogram(const HistogramParams& p, svm::Model model,
                              int num_cores) {
  cluster::ClusterConfig cfg;
  cfg.chip.num_cores = num_cores;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.model = model;
  cfg.svm.read_replication = p.read_replication;
  cfg.use_ipi = p.use_ipi;
  cfg.chip.faults = p.faults;
  cluster::Cluster cl(cfg);

  HistogramResult result;
  std::vector<TimePs> elapsed(static_cast<std::size_t>(num_cores), 0);
  const u32 stripes = std::max(1u, std::min(p.lock_stripes, p.bins));
  const u32 bins_per_stripe = (p.bins + stripes - 1) / stripes;

  cl.run([&](cluster::Node& n) {
    svm::Svm& svm = n.svm();
    scc::Core& core = n.core();
    const u64 base = svm.alloc(static_cast<u64>(p.bins) * 8);

    // Rank 0 zeroes the histogram (first touch places it near rank 0's
    // MC; a NUMA-aware variant could stripe the initialisation).
    if (n.rank() == 0) {
      for (u32 b = 0; b < p.bins; ++b) svm.write<u64>(base + b * 8, 0);
    }
    svm.barrier();

    // Local binning (private memory is implicit: plain host counters
    // stand for register/private-array work; the charged compute models
    // the binning loop).
    sim::Rng rng(p.seed + static_cast<u64>(n.rank()));
    std::vector<u64> local(p.bins, 0);
    for (u32 s = 0; s < p.samples_per_core; ++s) {
      ++local[draw_bin(rng, p.bins)];
      core.compute_cycles(6);
    }

    const TimePs t0 = core.now();
    // Merge under striped SVM locks: acquire = CL1INVMB, release = WCB
    // flush, so concurrent stripe merges stay correct under LRC.
    for (u32 stripe = 0; stripe < stripes; ++stripe) {
      const u32 s =
          (stripe + static_cast<u32>(n.rank())) % stripes;  // stagger
      svm.lock_acquire(static_cast<int>(s));
      const u32 lo = s * bins_per_stripe;
      const u32 hi = std::min(p.bins, lo + bins_per_stripe);
      for (u32 b = lo; b < hi; ++b) {
        if (local[b] == 0) continue;
        const u64 cur = svm.read<u64>(base + b * 8);
        svm.write<u64>(base + b * 8, cur + local[b]);
      }
      svm.lock_release(static_cast<int>(s));
    }
    svm.barrier();
    elapsed[static_cast<std::size_t>(n.rank())] = core.now() - t0;

    if (n.rank() == 0) {
      result.bins.resize(p.bins);
      for (u32 b = 0; b < p.bins; ++b) {
        result.bins[b] = svm.read<u64>(base + b * 8);
        result.total_samples += result.bins[b];
      }
    }
    svm.barrier();
  });

  result.elapsed = *std::max_element(elapsed.begin(), elapsed.end());
  for (int c = 0; c < num_cores; ++c) {
    result.mail_roundtrips +=
        cl.node(c).core().counters().svm_mail_roundtrips;
    result.invalidations += cl.node(c).svm().stats().invalidations_sent;
  }
  return result;
}

}  // namespace msvm::workloads
