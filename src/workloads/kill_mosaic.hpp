// Slot mosaic: the fail-stop kill workload. Every rank writes the
// 8-byte slot at offset rank*8 of every participating page (a value
// derived from (rank, page, seed)), then re-reads its OWN slots and
// verifies them. Slots are single-writer, so the expected value of
// every slot a survivor checks is independent of every other core —
// killing 1..3 cores mid-run can never make a survivor's check
// ambiguous. There are deliberately no barriers: a dead member must
// not be able to wedge the survivors at a rendezvous.
//
// Under the Strong model every write migrates whole-page ownership, so
// the mosaic keeps pages bouncing between cores — exactly the protocol
// traffic a mid-flight kill needs to land in. Under LRC each slot write
// is a disjoint-byte write-through store, so survivors' own slots are
// locally coherent without locks.
//
// Outcomes per rank: verified (all own slots correct), lost (a typed
// SvmDataLossError, recorded by the Cluster), or mismatched (wrong
// data — a contract violation the campaign fails on).
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/faults.hpp"
#include "sim/types.hpp"
#include "svm/svm.hpp"

namespace msvm::workloads {

struct KillMosaicParams {
  u32 pages = 16;  // participating pages (<= 512: slots are 8 bytes)
  u64 seed = 42;
  bool read_replication = false;
  bool use_ipi = true;
  int sched_lanes = 1;  // >1 shards the event heap by mesh quadrant
  /// Attach the ShadowDirectory coherence auditor to the run's bus
  /// (enables the chaos event category so kills reach the dead-set).
  bool audit = false;
  sim::FaultPlan faults;
};

struct KillMosaicResult {
  int ranks_verified = 0;  // survivors whose own slots all checked out
  int ranks_lost = 0;      // typed data-loss aborts (Cluster::failures)
  u64 slot_mismatches = 0;  // wrong values read — contract violation
  std::vector<cluster::Cluster::MemberFailure> failures;

  // Recovery tallies summed over all booted members.
  u64 recoveries = 0;
  u64 pages_lost = 0;
  u64 pages_rehomed = 0;
  u64 pages_refetched = 0;
  u64 locks_broken = 0;

  // Corruption ledger (armed plans only). Injected counts come from the
  // chip-wide FaultStats; detection counts are summed over every booted
  // member (dead cores included — their tallies froze at death, but the
  // flips they detected before dying must still reconcile):
  //   mail_flips == mail_corrupt_drops            (every flip dropped)
  //   seal_repairs + seal_refetches + pages_poisoned <= page_flips
  //   meta_corrections <= meta_flips               (corrected on reload)
  u64 mail_flips = 0;
  u64 page_flips = 0;
  u64 meta_flips = 0;
  u64 mail_corrupt_drops = 0;
  u64 pages_sealed = 0;
  u64 seal_verifies = 0;
  u64 seal_repairs = 0;
  u64 seal_refetches = 0;
  u64 pages_poisoned = 0;
  u64 meta_corrections = 0;
  int ranks_corrupt = 0;  // typed SvmIntegrityError aborts (subset of lost)

  // Auditor verdict (audit == true only).
  u64 audit_events = 0;
  u64 audit_violations = 0;
  std::string audit_report;

  TimePs makespan = 0;
};

/// Runs the mosaic; propagates sim::HangError (the caller's taxonomy
/// decides what a clean hang means for the run).
KillMosaicResult run_kill_mosaic(const KillMosaicParams& p,
                                 svm::Model model, int num_cores);

/// The expected slot value: what rank `rank` writes into page `page`.
u64 kill_mosaic_slot_value(u64 seed, int rank, u32 page);

}  // namespace msvm::workloads
