#include "workloads/laplace.hpp"

#include <algorithm>
#include <cassert>

#include "kernel/kernel.hpp"
#include "rcce/rcce.hpp"

namespace msvm::workloads {

namespace {

/// Initial temperature of grid cell (i, j): hot along the top edge,
/// cold everywhere else (including the other three edges).
double initial_value(const LaplaceParams& p, u32 i, u32 j) {
  (void)j;
  return i == 0 ? p.hot_edge : 0.0;
}

}  // namespace

std::pair<u32, u32> laplace_rows_of_rank(u32 ny, int rank, int n) {
  const u64 first = static_cast<u64>(ny) * static_cast<u64>(rank) /
                    static_cast<u64>(n);
  const u64 last = static_cast<u64>(ny) * (static_cast<u64>(rank) + 1) /
                   static_cast<u64>(n);
  return {static_cast<u32>(first), static_cast<u32>(last)};
}

double laplace_reference_checksum(const LaplaceParams& p) {
  std::vector<double> old_g(static_cast<std::size_t>(p.ny) * p.nx);
  std::vector<double> new_g(old_g.size());
  for (u32 i = 0; i < p.ny; ++i) {
    for (u32 j = 0; j < p.nx; ++j) {
      old_g[static_cast<std::size_t>(i) * p.nx + j] = initial_value(p, i, j);
      new_g[static_cast<std::size_t>(i) * p.nx + j] = initial_value(p, i, j);
    }
  }
  for (u32 iter = 0; iter < p.iterations; ++iter) {
    for (u32 i = 1; i + 1 < p.ny; ++i) {
      for (u32 j = 1; j + 1 < p.nx; ++j) {
        const std::size_t at = static_cast<std::size_t>(i) * p.nx + j;
        new_g[at] = 0.25 * (old_g[at - p.nx] + old_g[at + p.nx] +
                            old_g[at - 1] + old_g[at + 1]);
      }
    }
    std::swap(old_g, new_g);
  }
  double sum = 0.0;
  for (const double v : old_g) sum += v;
  return sum;
}

// ---------------------------------------------------------------------------
// SVM variant

LaplaceResult run_laplace_svm(const LaplaceParams& p, svm::Model model,
                              int num_cores, bool use_ipi) {
  cluster::ClusterConfig cfg;
  // The full die is always simulated — the first-touch scratchpad is
  // distributed over every MPB on the chip — while only `num_cores`
  // members run the program, exactly like using part of a real SCC.
  // Past 48 members the chip grid grows to fit (configure_cores), and at
  // 48 or fewer it stays the exact default SCC die.
  scc::configure_cores(cfg.chip, std::max(num_cores, 48));
  cfg.chip.sched_lanes = p.sched_lanes;
  cfg.chip.core_mhz = p.core_mhz;
  for (int c = 0; c < num_cores; ++c) cfg.members.push_back(c);
  const u64 grid_bytes = static_cast<u64>(p.ny) * p.nx * 8;
  // Past 48 members, grow shared DRAM with the core count (64 KiB per
  // core) so the per-MC frame pools keep headroom for every core's
  // allocation batch; at <= 48 the historical 16 MiB floor is unchanged.
  cfg.chip.shared_dram_bytes =
      std::max<u64>({16ull << 20, 4 * grid_bytes,
                     static_cast<u64>(num_cores) << 16});
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.model = model;
  cfg.svm.read_replication = p.read_replication;
  cfg.use_ipi = use_ipi;
  cfg.chip.faults = p.faults;
  cluster::Cluster cl(cfg);

  std::vector<double> partial(static_cast<std::size_t>(num_cores), 0.0);
  std::vector<TimePs> elapsed(static_cast<std::size_t>(num_cores), 0);
  std::vector<scc::CoreCounters> before(
      static_cast<std::size_t>(num_cores));
  std::vector<scc::CoreCounters> after(
      static_cast<std::size_t>(num_cores));

  cl.run([&](cluster::Node& n) {
    svm::Svm& svm = n.svm();
    scc::Core& core = n.core();
    const auto r = static_cast<std::size_t>(n.rank());
    u64 old_base = svm.alloc(grid_bytes);
    u64 new_base = svm.alloc(grid_bytes);
    const auto [r0, r1] = laplace_rows_of_rank(p.ny, n.rank(), n.size());

    // Affinity-on-first-touch initialisation: every core touches exactly
    // the rows it will later compute on, so frames land near its MC.
    auto addr = [&](u64 base, u32 i, u32 j) {
      return base + (static_cast<u64>(i) * p.nx + j) * 8;
    };
    // One pass per array, not one interleaved pass: first touch assigns
    // physical frames in touch order, and interleaving old/new pages
    // would give the row streams an 8 KiB physical stride that collides
    // in the same L1 sets (three streams in a 2-way cache = thrash).
    for (u32 i = r0; i < r1; ++i) {
      for (u32 j = 0; j < p.nx; ++j) {
        core.vstore<double>(addr(old_base, i, j), initial_value(p, i, j));
      }
    }
    for (u32 i = r0; i < r1; ++i) {
      for (u32 j = 0; j < p.nx; ++j) {
        core.vstore<double>(addr(new_base, i, j), initial_value(p, i, j));
      }
    }
    svm.barrier();

    before[r] = core.counters();
    const TimePs t0 = core.now();

    for (u32 iter = 0; iter < p.iterations; ++iter) {
      const u32 lo = std::max(r0, 1u);
      const u32 hi = std::min(r1, p.ny - 1);
      for (u32 i = lo; i < hi; ++i) {
        for (u32 j = 1; j + 1 < p.nx; ++j) {
          const double north = core.vload<double>(addr(old_base, i - 1, j));
          const double south = core.vload<double>(addr(old_base, i + 1, j));
          const double west = core.vload<double>(addr(old_base, i, j - 1));
          const double east = core.vload<double>(addr(old_base, i, j + 1));
          core.compute_cycles(p.compute_cycles_per_cell);
          core.vstore<double>(addr(new_base, i, j),
                              0.25 * (north + south + west + east));
        }
      }
      std::swap(old_base, new_base);
      svm.barrier();
    }

    elapsed[r] = core.now() - t0;
    after[r] = core.counters();

    // Checksum of the final grid (outside the timed phase).
    double sum = 0.0;
    for (u32 i = r0; i < r1; ++i) {
      for (u32 j = 0; j < p.nx; ++j) {
        sum += core.vload<double>(addr(old_base, i, j));
      }
    }
    partial[r] = sum;
    svm.barrier();
  });

  LaplaceResult result;
  for (int r = 0; r < num_cores; ++r) {
    const auto i = static_cast<std::size_t>(r);
    result.elapsed = std::max(result.elapsed, elapsed[i]);
    result.checksum += partial[i];
    const scc::CoreCounters d = after[i] - before[i];
    result.page_faults += d.page_faults;
    result.wcb_flushes += d.wcb_flushes;
    result.l2_hits += d.l2_hits;
    result.l1_misses += d.l1_misses;
    result.dram_reads += d.dram_reads;
    result.dram_writes += d.dram_writes;
    result.mail_roundtrips += d.svm_mail_roundtrips;
  }
  for (const int c : cl.members()) {
    result.ownership_acquires += cl.node(c).svm().stats().ownership_acquires;
    result.invalidations += cl.node(c).svm().stats().invalidations_sent;
  }
  return result;
}

// ---------------------------------------------------------------------------
// iRCCE message-passing variant

LaplaceResult run_laplace_ircce(const LaplaceParams& p, int num_cores) {
  cluster::ClusterConfig cfg;
  cfg.chip.num_cores = num_cores;
  cfg.chip.core_mhz = p.core_mhz;
  cfg.chip.shared_dram_bytes = 16 << 20;
  const u64 rows_max =
      (p.ny + static_cast<u32>(num_cores) - 1) / static_cast<u32>(num_cores) +
      2;
  cfg.chip.private_dram_bytes = std::max<u64>(
      2 << 20, 4ull * (rows_max + 2) * p.nx * 8 + (1 << 20));
  cluster::Cluster cl(cfg);

  std::vector<double> partial(static_cast<std::size_t>(num_cores), 0.0);
  std::vector<TimePs> elapsed(static_cast<std::size_t>(num_cores), 0);
  std::vector<scc::CoreCounters> before(
      static_cast<std::size_t>(num_cores));
  std::vector<scc::CoreCounters> after(
      static_cast<std::size_t>(num_cores));
  std::vector<u64> messaged(static_cast<std::size_t>(num_cores), 0);

  cl.run([&](cluster::Node& n) {
    scc::Core& core = n.core();
    rcce::Rcce& rcce = n.rcce();
    const int rank = rcce.rank();
    const int size = rcce.size();
    const auto ri = static_cast<std::size_t>(rank);
    const auto [r0, r1] = laplace_rows_of_rank(p.ny, rank, size);
    const u32 rows_local = r1 - r0;
    const u64 row_bytes = static_cast<u64>(p.nx) * 8;

    // Local arrays with one ghost row above and below: local row l holds
    // global row (r0 - 1 + l).
    u64 old_l = n.kernel().kmalloc((rows_local + 2) * row_bytes, 4096);
    u64 new_l = n.kernel().kmalloc((rows_local + 2) * row_bytes, 4096);
    auto addr = [&](u64 base, u32 local_i, u32 j) {
      return base + static_cast<u64>(local_i) * row_bytes + j * 8;
    };
    for (u32 i = 0; i < rows_local; ++i) {
      for (u32 j = 0; j < p.nx; ++j) {
        const double v = initial_value(p, r0 + i, j);
        core.vstore<double>(addr(old_l, i + 1, j), v);
        core.vstore<double>(addr(new_l, i + 1, j), v);
      }
    }
    rcce.barrier();

    before[ri] = core.counters();
    const TimePs t0 = core.now();
    const int up = rank > 0 ? rank - 1 : -1;
    const int down = rank + 1 < size ? rank + 1 : -1;

    for (u32 iter = 0; iter < p.iterations; ++iter) {
      // Non-blocking ghost-row exchange of the current `old` array.
      std::vector<rcce::Rcce::RequestHandle> reqs;
      if (up >= 0) {
        reqs.push_back(rcce.irecv(addr(old_l, 0, 0), row_bytes, up));
        reqs.push_back(rcce.isend(addr(old_l, 1, 0), row_bytes, up));
      }
      if (down >= 0) {
        reqs.push_back(
            rcce.irecv(addr(old_l, rows_local + 1, 0), row_bytes, down));
        reqs.push_back(
            rcce.isend(addr(old_l, rows_local, 0), row_bytes, down));
      }
      rcce.wait_all(reqs);

      const u32 lo = std::max(r0, 1u);
      const u32 hi = std::min(r1, p.ny - 1);
      for (u32 gi = lo; gi < hi; ++gi) {
        const u32 li = gi - r0 + 1;
        for (u32 j = 1; j + 1 < p.nx; ++j) {
          const double north = core.vload<double>(addr(old_l, li - 1, j));
          const double south = core.vload<double>(addr(old_l, li + 1, j));
          const double west = core.vload<double>(addr(old_l, li, j - 1));
          const double east = core.vload<double>(addr(old_l, li, j + 1));
          core.compute_cycles(p.compute_cycles_per_cell);
          core.vstore<double>(addr(new_l, li, j),
                              0.25 * (north + south + west + east));
        }
      }
      std::swap(old_l, new_l);
      rcce.barrier();
    }

    elapsed[ri] = core.now() - t0;
    after[ri] = core.counters();
    messaged[ri] = rcce.stats().bytes_sent;

    double sum = 0.0;
    for (u32 i = 0; i < rows_local; ++i) {
      for (u32 j = 0; j < p.nx; ++j) {
        sum += core.vload<double>(addr(old_l, i + 1, j));
      }
    }
    partial[ri] = sum;
    rcce.barrier();
  });

  LaplaceResult result;
  for (int r = 0; r < num_cores; ++r) {
    const auto i = static_cast<std::size_t>(r);
    result.elapsed = std::max(result.elapsed, elapsed[i]);
    result.checksum += partial[i];
    const scc::CoreCounters d = after[i] - before[i];
    result.page_faults += d.page_faults;
    result.wcb_flushes += d.wcb_flushes;
    result.l2_hits += d.l2_hits;
    result.l1_misses += d.l1_misses;
    result.dram_reads += d.dram_reads;
    result.dram_writes += d.dram_writes;
    result.bytes_messaged += messaged[i];
  }
  return result;
}

}  // namespace msvm::workloads
