// Lock-based shared histogram: the classic Lazy-Release-Consistency
// workload (every access to shared data protected by a lock, Section
// 6.2). Each core draws deterministic pseudo-random samples, bins them
// locally, then merges into the SVM-resident histogram under striped SVM
// locks — acquire invalidates, release publishes.
//
// Not to be confused with serve/latency_histo.hpp: that is the serving
// tier's log-scaled *latency* histogram (a measurement container); this
// is a *workload* whose shared data happens to be a histogram.
#pragma once

#include <vector>

#include "sim/faults.hpp"
#include "sim/types.hpp"
#include "svm/svm.hpp"

namespace msvm::workloads {

struct HistogramParams {
  u32 bins = 256;
  u32 samples_per_core = 4096;
  u32 lock_stripes = 8;  // bins per lock stripe = bins / stripes
  u64 seed = 42;
  /// Strong-model read-replication directory (no effect under LRC).
  bool read_replication = false;
  /// Mailbox delivery mode (the chaos campaign exercises both).
  bool use_ipi = true;
  /// Chaos layer: deterministic fault-injection plan (default: no faults).
  sim::FaultPlan faults;
};

struct HistogramResult {
  std::vector<u64> bins;   // final shared histogram
  u64 total_samples = 0;
  TimePs elapsed = 0;      // slowest core, merge phase
  u64 mail_roundtrips = 0;  // blocking fault-path round-trips, all cores
  u64 invalidations = 0;    // replica invalidations sent, all cores
};

HistogramResult run_histogram(const HistogramParams& p, svm::Model model,
                              int num_cores);

/// Host-side reference for validation (same PRNG stream per rank).
std::vector<u64> histogram_reference(const HistogramParams& p,
                                     int num_cores);

}  // namespace msvm::workloads
