// Mailbox ping-pong drivers for Figures 6 and 7.
//
// The benchmark sends a mail from core A to core B, which replies
// immediately; the reported latency is the half round-trip time, "the
// elapsed time for sending a mail and handling on the receiver's side"
// (Section 7.1). Non-participating "activated" cores sit in the mailbox
// idle path (scanning all slots in poll mode, halting in IPI mode) and —
// optionally — generate background all-to-all mail noise.
#pragma once

#include <vector>

#include "sim/types.hpp"

namespace msvm::workloads {

struct PingPongParams {
  int core_a = 0;
  int core_b = 30;          // the paper's 5-hop pair
  int activated_cores = 2;  // cores booted into the mailbox layer
  bool use_ipi = true;
  bool background_noise = false;  // remaining cores mail each other
  int reps = 200;
  int warmup = 20;
};

struct PingPongResult {
  TimePs half_rtt_mean = 0;
  TimePs half_rtt_min = 0;
  TimePs half_rtt_max = 0;
  u64 slot_checks = 0;  // receiver-side mailbox checks during the run
};

PingPongResult run_mailbox_pingpong(const PingPongParams& params);

}  // namespace msvm::workloads
