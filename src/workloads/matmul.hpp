// Shared-memory matrix multiply C = A * B with a block-row distribution.
// Showcases the read-only-region optimisation of Section 6.4: after the
// collective initialisation, A and B are protected read-only, letting
// every core cache them in its (otherwise unusable) L2 while it computes
// its rows of C through the write-combine buffer.
#pragma once

#include "sim/faults.hpp"
#include "sim/types.hpp"
#include "svm/svm.hpp"

namespace msvm::workloads {

struct MatmulParams {
  u32 n = 64;  // square matrices n x n of doubles
  u32 compute_cycles_per_madd = 3;
  /// Protect A and B read-only before the compute phase (Section 6.4).
  bool protect_inputs = true;
  /// Strong-model read-replication directory (SvmConfig::read_replication):
  /// the protocol-level alternative to protect_inputs for read-mostly
  /// operands.
  bool read_replication = false;
  /// Mailbox delivery mode (the chaos campaign exercises both).
  bool use_ipi = true;
  /// Event lanes for the sharded scheduler (1 = classic single heap).
  int sched_lanes = 1;
  /// Chaos layer: deterministic fault-injection plan (default: no faults).
  sim::FaultPlan faults;
};

struct MatmulResult {
  double checksum = 0.0;  // sum over C
  TimePs elapsed = 0;     // compute phase, slowest core
  u64 l2_hits = 0;        // evidence of the read-only optimisation
  u64 ownership_acquires = 0;
  u64 mail_roundtrips = 0;  // blocking fault-path round-trips, all cores
  u64 invalidations = 0;    // replica invalidations sent, all cores
};

MatmulResult run_matmul(const MatmulParams& p, svm::Model model,
                        int num_cores);

/// Host-side reference checksum for the same deterministic inputs.
double matmul_reference_checksum(const MatmulParams& p);

}  // namespace msvm::workloads
