#include "workloads/kill_mosaic.hpp"

#include <cassert>

#include "svm/shadow_directory.hpp"

namespace msvm::workloads {

u64 kill_mosaic_slot_value(u64 seed, int rank, u32 page) {
  // splitmix64-style finalizer over a distinct (seed, rank, page) key:
  // any slot landing in the wrong place reads as a mismatch, never as a
  // coincidental duplicate.
  u64 x = seed ^ (static_cast<u64>(rank) << 32) ^ (page + 1);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

KillMosaicResult run_kill_mosaic(const KillMosaicParams& p,
                                 svm::Model model, int num_cores) {
  // Constructed before the Cluster so the chip's bus (which holds a raw
  // pointer once attached) is torn down first.
  svm::ShadowDirectory::Config scfg;
  // LRC maps every writer RW by design; only the epoch and dead-silence
  // invariants apply there.
  scfg.single_writer = model != svm::Model::kLazyRelease;
  // Chips past 64 cores spill directory entries across words; the
  // traced single-word view stops being the whole sharer set.
  scfg.subset_check = num_cores <= 64;
  svm::ShadowDirectory shadow(scfg);

  cluster::ClusterConfig cfg;
  scc::configure_cores(cfg.chip, num_cores);  // grows the grid past 48
  cfg.chip.sched_lanes = p.sched_lanes;
  cfg.chip.shared_dram_bytes = 32 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.model = model;
  cfg.svm.read_replication = p.read_replication;
  cfg.use_ipi = p.use_ipi;
  cfg.chip.faults = p.faults;
  cluster::Cluster cl(cfg);

  const u64 page_bytes = cl.chip().config().page_bytes;
  assert(static_cast<u64>(num_cores) * 8 <= page_bytes &&
         "one 8-byte slot per rank must fit in a page");

  if (p.audit) {
    // The dead-set needs the kCoreKill injection records (kCatChaos);
    // the poison-finality invariant and the integrity tallies need the
    // seal/corrupt/scrub events (kCatIntegrity).
    cl.chip().bus().enable(obs::kCatChaos | obs::kCatIntegrity);
    cl.chip().bus().attach(&shadow);
  }

  KillMosaicResult result;
  std::vector<u8> verified(static_cast<std::size_t>(num_cores), 0);

  cl.run([&](cluster::Node& n) {
    svm::Svm& svm = n.svm();
    scc::Core& core = n.core();
    const int rank = n.rank();
    const u64 base = svm.alloc(static_cast<u64>(p.pages) * page_bytes);
    const u64 slot_off = static_cast<u64>(rank) * 8;

    // Phase 1: write our slot into every page, staggered by rank so the
    // pages bounce between concurrent owners instead of convoying.
    for (u32 i = 0; i < p.pages; ++i) {
      const u32 page = (i + static_cast<u32>(rank)) % p.pages;
      svm.write<u64>(base + page * page_bytes + slot_off,
                     kill_mosaic_slot_value(p.seed, rank, page));
      core.compute_cycles(64);
    }

    // Phase 2: re-read and verify our own slots. No barrier in between —
    // the expected values depend on nobody else, and a dead member must
    // not be able to wedge the survivors at a rendezvous.
    u64 bad = 0;
    for (u32 i = 0; i < p.pages; ++i) {
      const u32 page = (i + static_cast<u32>(rank)) % p.pages;
      const u64 got = svm.read<u64>(base + page * page_bytes + slot_off);
      if (got != kill_mosaic_slot_value(p.seed, rank, page)) ++bad;
      core.compute_cycles(16);
    }
    result.slot_mismatches += bad;
    if (bad == 0) verified[static_cast<std::size_t>(rank)] = 1;
  });

  for (const u8 ok : verified) result.ranks_verified += ok;
  result.failures = cl.failures();
  result.ranks_lost = static_cast<int>(result.failures.size());
  for (const int c : cl.members()) {
    if (cl.chip().core_dead(c)) continue;
    const svm::SvmStats& s = cl.node(c).svm().stats();
    result.recoveries += s.recoveries;
    result.pages_lost += s.pages_lost;
    result.pages_rehomed += s.pages_rehomed;
    result.pages_refetched += s.pages_refetched;
    result.locks_broken += s.locks_broken;
  }
  // Corruption ledger: injected counts from the chip-wide fault oracle,
  // detection counts summed over every booted member — dead cores
  // included, since a flip detected (and counted) before a fail-stop
  // must still reconcile against the injection side.
  const sim::FaultStats& fs = cl.chip().faults().stats();
  result.mail_flips = fs.mail_flips;
  result.page_flips = fs.page_flips;
  result.meta_flips = fs.meta_flips;
  for (const int c : cl.members()) {
    const svm::SvmStats& s = cl.node(c).svm().stats();
    result.pages_sealed += s.pages_sealed;
    result.seal_verifies += s.seal_verifies;
    result.seal_repairs += s.seal_repairs;
    result.seal_refetches += s.seal_refetches;
    result.pages_poisoned += s.pages_poisoned;
    result.meta_corrections += s.meta_corrections;
    result.mail_corrupt_drops += cl.node(c).mbox().stats().corrupt_drops;
  }
  for (const auto& f : result.failures) {
    if (f.what.find("integrity") != std::string::npos) {
      ++result.ranks_corrupt;
    }
  }
  if (p.audit) {
    result.audit_events = shadow.events_audited();
    result.audit_violations = shadow.violation_count();
    result.audit_report = shadow.report();
  }
  result.makespan = cl.makespan();
  return result;
}

}  // namespace msvm::workloads
