// Multicast-helper tests: delivery to every core named in the mask,
// self-exclusion, out-of-domain bits, and both delivery modes (poll and
// IPI). The SVM invalidation protocol rides on this helper, so the
// guarantees here are load-bearing for the directory tests.
#include "mailbox/mailbox.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

namespace msvm::mbox {
namespace {

scc::ChipConfig small_config(int cores) {
  scc::ChipConfig cfg;
  cfg.num_cores = cores;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  return cfg;
}

/// Harness: boots a kernel + mailbox on every core and runs `body(i)`
/// (same shape as mailbox_test.cpp's rig).
class MailboxRig {
 public:
  MailboxRig(int cores, bool use_ipi)
      : chip_(small_config(cores)), use_ipi_(use_ipi) {
    kernels_.resize(static_cast<std::size_t>(cores));
    mailboxes_.resize(static_cast<std::size_t>(cores));
  }

  scc::Chip& chip() { return chip_; }
  MailboxSystem& mbox(int i) {
    return *mailboxes_[static_cast<std::size_t>(i)];
  }

  using Body = std::function<void(int core, MailboxSystem& mbox,
                                  scc::Core& c)>;

  void run(Body body) {
    for (int i = 0; i < chip_.num_cores(); ++i) {
      chip_.spawn_program(i, [this, i, body](scc::Core& c) {
        auto& kern = kernels_[static_cast<std::size_t>(i)];
        kern = std::make_unique<kernel::Kernel>(c);
        kern->boot();
        auto& mb = mailboxes_[static_cast<std::size_t>(i)];
        mb = std::make_unique<MailboxSystem>(*kern, use_ipi_);
        body(i, *mb, c);
      });
    }
    chip_.run();
  }

 private:
  scc::Chip chip_;
  bool use_ipi_;
  std::vector<std::unique_ptr<kernel::Kernel>> kernels_;
  std::vector<std::unique_ptr<MailboxSystem>> mailboxes_;
};

constexpr u8 kPing = 21;
constexpr u8 kPong = 22;

TEST(MailboxMulticast, DeliversToEveryCoreInMask) {
  for (const bool ipi : {false, true}) {
    constexpr int kCores = 6;
    MailboxRig rig(kCores, ipi);
    std::vector<u64> got(kCores, 0);
    int fanout = -1;
    rig.run([&](int core, MailboxSystem& mb, scc::Core&) {
      if (core == 0) {
        Mail m;
        m.type = kPing;
        m.p0 = 777;
        fanout = mb.multicast(0b111110, m);  // cores 1..5
        // Collect one pong per target so the run only ends after
        // everyone consumed the mail.
        for (int i = 1; i < kCores; ++i) (void)mb.recv_type(kPong);
      } else {
        const Mail m = mb.recv_type(kPing);
        got[static_cast<std::size_t>(core)] = m.p0;
        EXPECT_EQ(m.sender, 0);
        Mail pong;
        pong.type = kPong;
        mb.send(0, pong);
      }
    });
    EXPECT_EQ(fanout, kCores - 1);
    for (int c = 1; c < kCores; ++c) {
      EXPECT_EQ(got[static_cast<std::size_t>(c)], 777u) << "core " << c;
    }
    EXPECT_EQ(rig.mbox(0).stats().multicasts, 1u);
    EXPECT_GE(rig.mbox(0).stats().sent, static_cast<u64>(kCores - 1));
  }
}

TEST(MailboxMulticast, SelfBitIsIgnored) {
  for (const bool ipi : {false, true}) {
    MailboxRig rig(3, ipi);
    int fanout = -1;
    rig.run([&](int core, MailboxSystem& mb, scc::Core&) {
      if (core == 0) {
        Mail m;
        m.type = kPing;
        // Bit 0 names the sender itself: it must be skipped (a core
        // cannot mail itself — its own slot is never polled).
        fanout = mb.multicast(0b111, m);
        (void)mb.recv_type(kPong);
        (void)mb.recv_type(kPong);
      } else {
        (void)mb.recv_type(kPing);
        Mail pong;
        pong.type = kPong;
        mb.send(0, pong);
      }
    });
    EXPECT_EQ(fanout, 2);
  }
}

TEST(MailboxMulticast, EmptyAndSelfOnlyMasksSendNothing) {
  MailboxRig rig(2, /*use_ipi=*/true);
  int empty_fanout = -1;
  int self_fanout = -1;
  rig.run([&](int core, MailboxSystem& mb, scc::Core&) {
    if (core == 0) {
      Mail m;
      m.type = kPing;
      empty_fanout = mb.multicast(0, m);
      self_fanout = mb.multicast(0b1, m);
      Mail done;
      done.type = kPong;
      mb.send(1, done);
    } else {
      (void)mb.recv_type(kPong);
    }
  });
  EXPECT_EQ(empty_fanout, 0);
  EXPECT_EQ(self_fanout, 0);
  EXPECT_EQ(rig.mbox(0).stats().sent, 1u);  // only the completion pong
}

TEST(MailboxMulticast, HandlersFireOnMulticastDelivery) {
  // Receivers consume through a registered handler (the SVM invalidation
  // pattern) rather than recv_type, in both delivery modes.
  for (const bool ipi : {false, true}) {
    constexpr int kCores = 4;
    MailboxRig rig(kCores, ipi);
    std::vector<int> handled(kCores, 0);
    constexpr u8 kReady = 23;
    rig.run([&](int core, MailboxSystem& mb, scc::Core& c) {
      if (core == 0) {
        // Handlers must be installed before the multicast leaves — an
        // earlier arrival would fall through to the inbox instead.
        for (int i = 1; i < kCores; ++i) (void)mb.recv_type(kReady);
        Mail m;
        m.type = kPing;
        m.p1 = static_cast<u64>(core);
        mb.multicast(0b1110, m);
        for (int i = 1; i < kCores; ++i) (void)mb.recv_type(kPong);
      } else {
        mb.set_handler(kPing, [&handled, core, &mb](const Mail& m) {
          ++handled[static_cast<std::size_t>(core)];
          Mail pong;
          pong.type = kPong;
          mb.send(static_cast<int>(m.p1), pong);
        });
        Mail ready;
        ready.type = kReady;
        mb.send(0, ready);
        // Wait until our handler ran (poll mode needs explicit scans;
        // the yield lets the simulated sender make progress).
        while (handled[static_cast<std::size_t>(core)] == 0) {
          mb.poll_all();
          c.yield();
        }
      }
    });
    for (int c = 1; c < kCores; ++c) {
      EXPECT_EQ(handled[static_cast<std::size_t>(c)], 1) << "core " << c;
    }
  }
}

}  // namespace
}  // namespace msvm::mbox
