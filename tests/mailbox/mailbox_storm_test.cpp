// All-to-all mailbox storm: every core bursts mails at every other core
// faster than the receivers drain, so the single-slot-per-sender channels
// saturate and send() must stall. The test asserts the system survives
// the storm with exact conservation (every mail sent is eventually
// received), that the new stall-time accounting actually measured the
// congestion, and that the armed watchdog saw nothing resembling a hang.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mailbox/mailbox.hpp"

namespace msvm::mbox {
namespace {

scc::ChipConfig storm_config(int cores) {
  scc::ChipConfig cfg;
  cfg.num_cores = cores;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  // A real hang in this test should fail typed, not wedge ctest.
  cfg.faults.watchdog_ps = kPsPerSec;
  return cfg;
}

struct StormOutcome {
  u64 total_sent = 0;
  u64 total_received = 0;
  u64 send_stalls = 0;
  TimePs send_stall_ps = 0;
  u64 payload_sum_sent = 0;
  u64 payload_sum_received = 0;
  bool watchdog_tripped = false;
};

StormOutcome run_storm(int cores, bool use_ipi, int rounds) {
  scc::Chip chip(storm_config(cores));
  StormOutcome out;
  std::vector<std::unique_ptr<kernel::Kernel>> kernels(
      static_cast<std::size_t>(cores));
  std::vector<std::unique_ptr<MailboxSystem>> mbs(
      static_cast<std::size_t>(cores));
  const u64 expected =
      static_cast<u64>(cores) * static_cast<u64>(cores - 1) *
      static_cast<u64>(rounds);
  std::vector<u64> received_per_core(static_cast<std::size_t>(cores), 0);
  u64 global_received = 0;

  for (int i = 0; i < cores; ++i) {
    chip.spawn_program(i, [&, i](scc::Core& core) {
      auto& kern = kernels[static_cast<std::size_t>(i)];
      kern = std::make_unique<kernel::Kernel>(core);
      kern->boot();
      auto& mb = mbs[static_cast<std::size_t>(i)];
      mb = std::make_unique<MailboxSystem>(*kern, use_ipi);
      mb->set_handler(7, [&, i](const Mail& m) {
        out.payload_sum_received += m.p0;
        ++received_per_core[static_cast<std::size_t>(i)];
        ++global_received;
      });

      // The storm: back-to-back rounds of all-to-all sends with no
      // voluntary draining between them. Every round after the first
      // finds most destination slots still full, so send() stalls (its
      // internal drain loop is the only thing that keeps traffic moving).
      for (int r = 0; r < rounds; ++r) {
        for (int d = 0; d < cores; ++d) {
          if (d == i) continue;
          Mail m;
          m.type = 7;
          m.p0 = static_cast<u64>(r) * 1000 + static_cast<u64>(i);
          out.payload_sum_sent += m.p0;
          mb->send(d, m);
          ++out.total_sent;
        }
      }
      // Drain until the whole storm has landed somewhere.
      while (global_received < expected) {
        if (use_ipi) {
          kern->idle_once();
        } else {
          mb->poll_all();
          core.yield();
        }
      }
    });
  }

  chip.run();
  for (int i = 0; i < cores; ++i) {
    const MailboxStats& s = mbs[static_cast<std::size_t>(i)]->stats();
    out.send_stalls += s.send_stalls;
    out.send_stall_ps += s.send_stall_ps;
    out.total_received += s.received;
  }
  out.watchdog_tripped = chip.watchdog().tripped();
  return out;
}

class MailboxStorm
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(MailboxStorm, SaturationStallsAreSurvivedAndAccounted) {
  const auto [cores, use_ipi] = GetParam();
  const int rounds = 8;
  const StormOutcome out = run_storm(cores, use_ipi, rounds);
  const u64 expected = static_cast<u64>(cores) *
                       static_cast<u64>(cores - 1) *
                       static_cast<u64>(rounds);
  // Exact conservation: the drain loop runs until every mail landed.
  EXPECT_EQ(out.total_sent, expected);
  EXPECT_EQ(out.total_received, expected);
  EXPECT_EQ(out.payload_sum_received, out.payload_sum_sent);
  // The storm must actually have congested the slots, and the stall
  // accounting must have measured it in virtual time.
  EXPECT_GT(out.send_stalls, 0u);
  EXPECT_GT(out.send_stall_ps, 0u);
  // Congestion is not a hang: the armed watchdog stays quiet.
  EXPECT_FALSE(out.watchdog_tripped);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MailboxStorm,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Bool()));

}  // namespace
}  // namespace msvm::mbox
