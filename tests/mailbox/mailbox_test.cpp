// Mailbox-system tests: SRSW channel semantics, both delivery modes,
// handler dispatch, full-slot back-pressure, mutual sends, and the
// latency characteristics Figures 6 and 7 rely on.
#include "mailbox/mailbox.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace msvm::mbox {
namespace {

scc::ChipConfig small_config(int cores) {
  scc::ChipConfig cfg;
  cfg.num_cores = cores;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  return cfg;
}

/// Harness: boots a kernel + mailbox on every core and runs `body(i)`.
class MailboxRig {
 public:
  MailboxRig(int cores, bool use_ipi)
      : chip_(small_config(cores)), use_ipi_(use_ipi) {
    kernels_.resize(static_cast<std::size_t>(cores));
    mailboxes_.resize(static_cast<std::size_t>(cores));
  }

  scc::Chip& chip() { return chip_; }
  MailboxSystem& mbox(int i) {
    return *mailboxes_[static_cast<std::size_t>(i)];
  }

  using Body = std::function<void(int core, MailboxSystem& mbox,
                                  scc::Core& c)>;

  void run(Body body) {
    for (int i = 0; i < chip_.num_cores(); ++i) {
      chip_.spawn_program(i, [this, i, body](scc::Core& c) {
        auto& kern = kernels_[static_cast<std::size_t>(i)];
        kern = std::make_unique<kernel::Kernel>(c);
        kern->boot();
        auto& mb = mailboxes_[static_cast<std::size_t>(i)];
        mb = std::make_unique<MailboxSystem>(*kern, use_ipi_);
        body(i, *mb, c);
      });
    }
    chip_.run();
  }

 private:
  scc::Chip chip_;
  bool use_ipi_;
  std::vector<std::unique_ptr<kernel::Kernel>> kernels_;
  std::vector<std::unique_ptr<MailboxSystem>> mailboxes_;
};

TEST(Mailbox, SendAndReceivePollMode) {
  MailboxRig rig(2, /*use_ipi=*/false);
  Mail got;
  rig.run([&](int core, MailboxSystem& mb, scc::Core&) {
    if (core == 0) {
      Mail m;
      m.type = 7;
      m.arg16 = 42;
      m.p0 = 0xdeadbeef;
      m.p1 = 0xfeed;
      m.p2 = 3;
      mb.send(1, m);
    } else {
      got = mb.recv_type(7);
    }
  });
  EXPECT_EQ(got.type, 7);
  EXPECT_EQ(got.arg16, 42);
  EXPECT_EQ(got.p0, 0xdeadbeefull);
  EXPECT_EQ(got.p1, 0xfeedull);
  EXPECT_EQ(got.p2, 3ull);
  EXPECT_EQ(got.sender, 0);
}

TEST(Mailbox, SendAndReceiveIpiMode) {
  MailboxRig rig(2, /*use_ipi=*/true);
  Mail got;
  rig.run([&](int core, MailboxSystem& mb, scc::Core&) {
    if (core == 0) {
      Mail m;
      m.type = 9;
      m.p0 = 1234;
      mb.send(1, m);
    } else {
      got = mb.recv_type(9);
    }
  });
  EXPECT_EQ(got.type, 9);
  EXPECT_EQ(got.p0, 1234ull);
}

TEST(Mailbox, ManyMailsArriveInOrderPerChannel) {
  for (const bool ipi : {false, true}) {
    MailboxRig rig(2, ipi);
    std::vector<u64> received;
    rig.run([&](int core, MailboxSystem& mb, scc::Core&) {
      constexpr int kMails = 50;
      if (core == 0) {
        for (int i = 0; i < kMails; ++i) {
          Mail m;
          m.type = 1;
          m.p0 = static_cast<u64>(i);
          mb.send(1, m);
        }
      } else {
        for (int i = 0; i < kMails; ++i) {
          received.push_back(mb.recv_type(1).p0);
        }
      }
    });
    ASSERT_EQ(received.size(), 50u) << "ipi=" << ipi;
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(received[static_cast<std::size_t>(i)],
                static_cast<u64>(i));
    }
  }
}

TEST(Mailbox, FullSlotExertsBackpressure) {
  // The second send must stall until the receiver consumes the first.
  MailboxRig rig(2, /*use_ipi=*/false);
  u64 stalls = 0;
  rig.run([&](int core, MailboxSystem& mb, scc::Core& c) {
    if (core == 0) {
      Mail m;
      m.type = 1;
      mb.send(1, m);
      mb.send(1, m);  // receiver consumes only much later
      stalls = mb.stats().send_stalls;
    } else {
      c.compute_cycles(3'000'000);  // stay busy; no receives yet
      (void)mb.recv_type(1);
      (void)mb.recv_type(1);
    }
  });
  EXPECT_GT(stalls, 0u);
}

TEST(Mailbox, HandlersInterceptTypedMail) {
  MailboxRig rig(2, /*use_ipi=*/true);
  int handled = 0;
  rig.run([&](int core, MailboxSystem& mb, scc::Core&) {
    if (core == 1) {
      mb.set_handler(5, [&](const Mail& m) {
        ++handled;
        EXPECT_EQ(m.p0, 11ull);
      });
      // Wait for an unrelated terminator type; the type-5 mail must have
      // been consumed by the handler, not the inbox.
      (void)mb.recv_type(6);
      EXPECT_FALSE(mb.try_take([](const Mail& m) { return m.type == 5; })
                       .has_value());
    } else {
      Mail m;
      m.type = 5;
      m.p0 = 11;
      mb.send(1, m);
      m.type = 6;
      mb.send(1, m);
    }
  });
  EXPECT_EQ(handled, 1);
}

TEST(Mailbox, HandlerCanReply) {
  // Request/reply as the SVM ownership protocol uses it: the handler on
  // the owner side replies from interrupt context.
  MailboxRig rig(2, /*use_ipi=*/true);
  u64 reply_payload = 0;
  rig.run([&](int core, MailboxSystem& mb, scc::Core&) {
    constexpr u8 kReq = 10;
    constexpr u8 kAck = 11;
    if (core == 1) {
      mb.set_handler(kReq, [&](const Mail& req) {
        Mail ack;
        ack.type = kAck;
        ack.p0 = req.p0 * 2;
        mb.send(req.sender, ack);
      });
      // Stay alive until the exchange completes.
      (void)mb.recv_type(99);
    } else {
      Mail req;
      req.type = kReq;
      req.p0 = 21;
      mb.send(1, req);
      reply_payload = mb.recv_type(kAck).p0;
      Mail done;
      done.type = 99;
      mb.send(1, done);
    }
  });
  EXPECT_EQ(reply_payload, 42ull);
}

TEST(Mailbox, MutualSimultaneousSendsDoNotDeadlock) {
  for (const bool ipi : {false, true}) {
    MailboxRig rig(2, ipi);
    int delivered = 0;
    rig.run([&](int core, MailboxSystem& mb, scc::Core&) {
      const int peer = 1 - core;
      for (int i = 0; i < 20; ++i) {
        Mail m;
        m.type = 1;
        m.p0 = static_cast<u64>(i);
        mb.send(peer, m);
        (void)mb.recv_type(1);
        ++delivered;
      }
    });
    EXPECT_EQ(delivered, 40) << "ipi=" << ipi;
  }
}

TEST(Mailbox, AllToAllTraffic) {
  constexpr int kCores = 8;
  MailboxRig rig(kCores, /*use_ipi=*/true);
  std::vector<int> received(kCores, 0);
  rig.run([&](int core, MailboxSystem& mb, scc::Core&) {
    for (int dest = 0; dest < kCores; ++dest) {
      if (dest == core) continue;
      Mail m;
      m.type = 2;
      m.p0 = static_cast<u64>(core);
      mb.send(dest, m);
    }
    for (int i = 0; i < kCores - 1; ++i) {
      (void)mb.recv_type(2);
      ++received[static_cast<std::size_t>(core)];
    }
  });
  for (int i = 0; i < kCores; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], kCores - 1);
  }
}

TEST(Mailbox, PollModeLatencyGrowsWithParticipants) {
  // The Figure 7 effect in miniature: a ping-pong between cores 0 and 1
  // while N-2 other cores idle. In poll mode the receiver scans every
  // participating slot, so more cores => higher latency.
  auto half_rtt = [](int cores) {
    MailboxRig rig(cores, /*use_ipi=*/false);
    TimePs elapsed = 0;
    rig.run([&](int core, MailboxSystem& mb, scc::Core& c) {
      constexpr int kReps = 20;
      if (core == 0) {
        const TimePs t0 = c.now();
        for (int i = 0; i < kReps; ++i) {
          Mail m;
          m.type = 1;
          mb.send(1, m);
          (void)mb.recv_type(2);
        }
        elapsed = (c.now() - t0) / (2 * kReps);
        Mail stop;
        stop.type = 9;
        for (int d = 2; d < c.chip().num_cores(); ++d) mb.send(d, stop);
      } else if (core == 1) {
        for (int i = 0; i < kReps; ++i) {
          (void)mb.recv_type(1);
          Mail m;
          m.type = 2;
          mb.send(0, m);
        }
      } else {
        (void)mb.recv_type(9);  // idle participant, scanning all slots
      }
    });
    return elapsed;
  };
  const TimePs few = half_rtt(4);
  const TimePs many = half_rtt(16);
  EXPECT_GT(many, few + few / 4);  // clearly growing
}

TEST(Mailbox, IpiModeLatencyIndependentOfParticipants) {
  auto half_rtt = [](int cores) {
    MailboxRig rig(cores, /*use_ipi=*/true);
    TimePs elapsed = 0;
    rig.run([&](int core, MailboxSystem& mb, scc::Core& c) {
      constexpr int kReps = 20;
      if (core == 0) {
        const TimePs t0 = c.now();
        for (int i = 0; i < kReps; ++i) {
          Mail m;
          m.type = 1;
          mb.send(1, m);
          (void)mb.recv_type(2);
        }
        elapsed = (c.now() - t0) / (2 * kReps);
        Mail stop;
        stop.type = 9;
        for (int d = 2; d < c.chip().num_cores(); ++d) mb.send(d, stop);
      } else if (core == 1) {
        for (int i = 0; i < kReps; ++i) {
          (void)mb.recv_type(1);
          Mail m;
          m.type = 2;
          mb.send(0, m);
        }
      } else {
        (void)mb.recv_type(9);  // halted, waiting for the IPI
      }
    });
    return elapsed;
  };
  const TimePs few = half_rtt(4);
  const TimePs many = half_rtt(16);
  // Within 10% of each other: the receiver checks one slot either way.
  const double ratio =
      static_cast<double>(many) / static_cast<double>(few);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(Mailbox, StatsCountTraffic) {
  MailboxRig rig(2, /*use_ipi=*/false);
  u64 sent = 0;
  u64 received = 0;
  rig.run([&](int core, MailboxSystem& mb, scc::Core&) {
    if (core == 0) {
      for (int i = 0; i < 5; ++i) {
        Mail m;
        m.type = 1;
        mb.send(1, m);
      }
      sent = mb.stats().sent;
    } else {
      for (int i = 0; i < 5; ++i) (void)mb.recv_type(1);
      received = mb.stats().received;
    }
  });
  EXPECT_EQ(sent, 5u);
  EXPECT_EQ(received, 5u);
}

}  // namespace
}  // namespace msvm::mbox
