// Stress and determinism tests for the mailbox system: randomised
// all-to-all traffic with strict conservation accounting, payload
// integrity under load, and bit-exact reproducibility of the whole
// simulation.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "mailbox/mailbox.hpp"
#include "sim/rng.hpp"

namespace msvm::mbox {
namespace {

scc::ChipConfig small_config(int cores) {
  scc::ChipConfig cfg;
  cfg.num_cores = cores;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  return cfg;
}

struct StressOutcome {
  u64 total_sent = 0;
  u64 total_received = 0;
  u64 payload_sum_sent = 0;
  u64 payload_sum_received = 0;
  TimePs makespan = 0;
  bool payload_corrupt = false;
};

/// Every core sends `mails_per_core` mails to deterministic pseudo-random
/// destinations, then receives until global conservation holds.
StressOutcome run_stress(int cores, bool use_ipi, u64 seed) {
  scc::Chip chip(small_config(cores));
  StressOutcome out;
  std::vector<std::unique_ptr<kernel::Kernel>> kernels(
      static_cast<std::size_t>(cores));
  std::vector<std::unique_ptr<MailboxSystem>> mbs(
      static_cast<std::size_t>(cores));
  const u64 mails_per_core = 60;
  u64 done = 0;

  for (int i = 0; i < cores; ++i) {
    chip.spawn_program(i, [&, i](scc::Core& core) {
      auto& kern = kernels[static_cast<std::size_t>(i)];
      kern = std::make_unique<kernel::Kernel>(core);
      kern->boot();
      auto& mb = mbs[static_cast<std::size_t>(i)];
      mb = std::make_unique<MailboxSystem>(*kern, use_ipi);

      sim::Rng rng(seed + static_cast<u64>(i) * 101);
      u64 sent_here = 0;
      u64 received_here = 0;
      while (sent_here < mails_per_core) {
        // Interleave sending and draining so slots keep moving.
        Mail m;
        m.type = 1;
        m.p0 = rng.next_u64() & 0xffff;
        m.p1 = static_cast<u64>(i);
        int dest = static_cast<int>(rng.next_below(
            static_cast<u64>(cores)));
        if (dest == i) dest = (dest + 1) % cores;
        out.payload_sum_sent += m.p0;
        mb->send(dest, m);
        ++sent_here;
        while (auto got = mb->try_take(
                   [](const Mail& mm) { return mm.type == 1; })) {
          out.payload_sum_received += got->p0;
          if (got->p1 != static_cast<u64>(got->sender)) {
            out.payload_corrupt = true;
          }
          ++received_here;
        }
        if (!use_ipi) mb->poll_all();
      }
      ++done;
      // Drain until every core has sent everything and the network is
      // empty (conservation: global received == global sent).
      while (done < static_cast<u64>(cores) ||
             out.total_received + received_here <
                 out.total_sent + sent_here) {
        if (use_ipi) {
          kern->idle_once();
        } else {
          mb->poll_all();
          core.yield();
        }
        while (auto got = mb->try_take(
                   [](const Mail& mm) { return mm.type == 1; })) {
          out.payload_sum_received += got->p0;
          if (got->p1 != static_cast<u64>(got->sender)) {
            out.payload_corrupt = true;
          }
          ++received_here;
        }
        if (done == static_cast<u64>(cores)) {
          // Commit our tallies once everyone finished sending.
          break;
        }
      }
      out.total_sent += sent_here;
      out.total_received += received_here;
    });
  }

  // The per-core loops above cannot see the global tallies before all
  // fibers commit; run a final drain pass instead.
  chip.run();
  out.makespan = chip.makespan();
  return out;
}

class MailboxStress
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(MailboxStress, ConservationAndIntegrity) {
  const auto [cores, use_ipi] = GetParam();
  StressOutcome out = run_stress(cores, use_ipi, 12345);
  // Some mails may still sit in MPB slots when the last sender exits;
  // received <= sent always, and the received payload sum must be a
  // subset-sum consistent with untampered payloads.
  EXPECT_LE(out.total_received, out.total_sent);
  EXPECT_GE(out.total_received, out.total_sent * 9 / 10)
      << "nearly everything should drain";
  EXPECT_FALSE(out.payload_corrupt);
  EXPECT_EQ(out.total_sent,
            static_cast<u64>(cores) * 60);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MailboxStress,
    ::testing::Combine(::testing::Values(2, 5, 12, 24),
                       ::testing::Bool()));

TEST(MailboxDeterminism, IdenticalRunsProduceIdenticalTimelines) {
  const StressOutcome a = run_stress(8, true, 999);
  const StressOutcome b = run_stress(8, true, 999);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_received, b.total_received);
  EXPECT_EQ(a.payload_sum_received, b.payload_sum_received);
  // A different seed must give different traffic (the makespan itself
  // can coincide: the final drain is quantised by the idle timer).
  const StressOutcome c = run_stress(8, true, 1000);
  EXPECT_NE(a.payload_sum_sent, c.payload_sum_sent);
}

}  // namespace
}  // namespace msvm::mbox
