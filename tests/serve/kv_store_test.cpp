// KvStore unit and cluster tests: the shard map (perfect hash, home
// affinity, page-aligned slices), the self-verifying value scheme, the
// op surface (get/put/scan under the shard TAS locks), and determinism
// of the Zipf sampler and the open-loop generator the serving benches
// are seeded from.
#include "serve/kv_store.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cluster/cluster.hpp"
#include "serve/workload_gen.hpp"
#include "serve/zipf.hpp"

namespace msvm::serve {
namespace {

cluster::ClusterConfig small_config() {
  cluster::ClusterConfig cfg;
  cfg.chip.num_cores = 8;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  return cfg;
}

TEST(KvStoreScheme, ValueWordsDependOnEveryInput) {
  const u64 w = KvStore::value_word(1, 2, 3, 4);
  EXPECT_NE(w, KvStore::value_word(9, 2, 3, 4));  // seed
  EXPECT_NE(w, KvStore::value_word(1, 9, 3, 4));  // key
  EXPECT_NE(w, KvStore::value_word(1, 2, 9, 4));  // version
  EXPECT_NE(w, KvStore::value_word(1, 2, 3, 9));  // word index
}

TEST(KvStoreScheme, FoldMatchesManualChain) {
  const u64 seed = 7, key = 123, version = 5;
  const u32 words = 6;
  u64 fold = 0;
  for (u32 i = 0; i < words; ++i) {
    const u64 w = KvStore::value_word(seed, key, version, i);
    fold = (fold << 7 | fold >> 57) ^ w;
  }
  EXPECT_EQ(fold, KvStore::value_fold(seed, key, version, words));
  // A different version folds differently (the property the end-to-end
  // reply check stands on).
  EXPECT_NE(fold, KvStore::value_fold(seed, key, version + 1, words));
}

TEST(KvStoreCluster, ShardMapCoversAllRanksAndKeys) {
  cluster::Cluster cl(small_config());
  cl.run([&](cluster::Node& n) {
    KvConfig cfg;
    cfg.num_keys = 1000;
    KvStore store(n.svm(), cfg, n.size());
    if (n.rank() != 0) return;  // assertions once; alloc is collective
    EXPECT_EQ(store.num_shards(), 8u);
    // Every key maps to exactly one shard/slot, and each shard's keys
    // are dense under key = slot * shards + shard.
    std::set<int> homes;
    for (u64 key = 0; key < cfg.num_keys; ++key) {
      const u32 s = store.shard_of(key);
      EXPECT_LT(s, store.num_shards());
      homes.insert(store.home_rank(s));
    }
    EXPECT_EQ(homes.size(), 8u);  // every member homes some traffic
    // Page-aligned slices: no page shared by two shards.
    const u64 page = cl.chip().config().page_bytes;
    EXPECT_EQ(store.shard_bytes() % page, 0u);
  });
}

TEST(KvStoreCluster, HomeInitThenLocalOpsVerify) {
  cluster::Cluster cl(small_config());
  cl.run([&](cluster::Node& n) {
    KvConfig cfg;
    cfg.num_keys = 256;
    KvStore store(n.svm(), cfg, n.size());
    for (u32 s = 0; s < store.num_shards(); ++s) {
      if (store.home_rank(s) == n.rank()) store.init_shard(s);
    }
    n.svm().barrier();
    // Each home exercises its own shard: fresh entries verify at
    // version 1, a put bumps to 2, a get re-verifies, and a scan walks
    // the shard with every entry checking out.
    const u64 key = static_cast<u64>(n.rank());  // shard = rank % 8
    ASSERT_EQ(store.home_rank(store.shard_of(key)), n.rank());
    KvStore::OpResult g = store.get(key);
    EXPECT_TRUE(g.ok);
    EXPECT_EQ(g.version, 1u);
    EXPECT_EQ(g.fold, KvStore::value_fold(cfg.seed, key, 1,
                                          cfg.value_words));
    KvStore::OpResult p = store.put(key);
    EXPECT_TRUE(p.ok);
    EXPECT_EQ(p.version, 2u);
    g = store.get(key);
    EXPECT_TRUE(g.ok);
    EXPECT_EQ(g.version, 2u);
    EXPECT_EQ(g.fold, KvStore::value_fold(cfg.seed, key, 2,
                                          cfg.value_words));
    const KvStore::OpResult sc = store.scan(key, 16);
    EXPECT_TRUE(sc.ok);
    EXPECT_EQ(sc.count, 16u);
  });
}

TEST(ZipfSampler, DeterministicAndSkewed) {
  const ZipfSampler zipf(1024, 0.99);
  sim::Rng a(7), b(7);
  u64 low_ranks = 0;
  for (int i = 0; i < 2000; ++i) {
    const u64 ra = zipf.sample(a);
    ASSERT_EQ(ra, zipf.sample(b));  // same seed, same stream
    ASSERT_LT(ra, 1024u);
    if (ra < 16) ++low_ranks;
  }
  // theta=0.99 concentrates mass on the first ranks (~38% on the top
  // 16 of 1024); uniform would put ~1.5% there.
  EXPECT_GT(low_ranks, 2000u / 5);
}

TEST(OpenLoopGen, SameSeedSameStreamDifferentRankDifferentStream) {
  GenConfig cfg;
  cfg.rate_rps = 200'000;
  cfg.load_ps = 1 * kPsPerMs;
  cfg.scan_fraction = 0.1;
  const ZipfSampler zipf(cfg.num_keys, cfg.zipf_theta);
  OpenLoopGen g1(cfg, zipf, 42, 3);
  OpenLoopGen g2(cfg, zipf, 42, 3);
  OpenLoopGen g3(cfg, zipf, 42, 4);
  bool diverged = false;
  TimePs prev = 0;
  int n = 0;
  while (g1.has_next()) {
    ASSERT_TRUE(g2.has_next());
    const Request a = g1.take();
    const Request b = g2.take();
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(static_cast<int>(a.op), static_cast<int>(b.op));
    EXPECT_GE(a.arrival, prev);  // arrivals are monotone
    EXPECT_LT(a.arrival, cfg.load_ps);
    prev = a.arrival;
    if (g3.has_next()) {
      const Request c = g3.take();
      if (c.arrival != a.arrival || c.key != a.key) diverged = true;
    }
    ++n;
  }
  EXPECT_FALSE(g2.has_next());
  EXPECT_GT(n, 50);        // ~200 arrivals expected in the window
  EXPECT_TRUE(diverged);   // rank splits the stream
}

TEST(OpenLoopGen, PhaseScheduleModulatesTheRate) {
  GenConfig cfg;
  cfg.rate_rps = 500'000;
  cfg.load_ps = 2 * kPsPerMs;
  cfg.phase_ps = 1 * kPsPerMs;
  cfg.phase_mults = {0.25, 2.0};
  const ZipfSampler zipf(cfg.num_keys, cfg.zipf_theta);
  OpenLoopGen gen(cfg, zipf, 1, 0);
  EXPECT_EQ(gen.rate_mult_at(0), 0.25);
  EXPECT_EQ(gen.rate_mult_at(1 * kPsPerMs), 2.0);
  u64 quiet = 0, burst = 0;
  while (gen.has_next()) {
    (gen.take().arrival < 1 * kPsPerMs ? quiet : burst)++;
  }
  // The burst phase offers 8x the quiet phase's rate.
  EXPECT_GT(burst, quiet * 4);
}

}  // namespace
}  // namespace msvm::serve
