// Serving-tier integration tests: a clean run under each coherence
// model completes every request with zero wrong responses, the whole
// result (histogram buckets included) is a pure function of the seed,
// and a mid-window fail-stop degrades to typed losses — never a wrong
// answer, never a hang.
#include "serve/kv_serving.hpp"

#include <gtest/gtest.h>

#include "sim/faults.hpp"

namespace msvm::serve {
namespace {

KvServingParams small_params() {
  KvServingParams p;
  p.seed = 42;
  p.store.seed = 42;
  p.store.num_keys = 1024;
  p.gen.num_keys = 1024;
  p.gen.zipf_theta = 0.99;
  p.gen.read_fraction = 0.8;
  p.gen.scan_fraction = 0.05;
  p.gen.rate_rps = 30'000;
  p.gen.load_ps = 500 * kPsPerUs;
  p.drain_ps = 500 * kPsPerUs;
  return p;
}

struct ModelCase {
  svm::Model model;
  bool read_replication;
};

TEST(KvServing, CleanRunCompletesEverythingUnderEveryModel) {
  const ModelCase cases[] = {
      {svm::Model::kStrong, false},
      {svm::Model::kStrong, true},
      {svm::Model::kLazyRelease, false},
  };
  for (const ModelCase& mc : cases) {
    KvServingParams p = small_params();
    p.read_replication = mc.read_replication;
    const KvServingResult r = run_kv_serving(p, mc.model, 8);
    EXPECT_EQ(r.wrong, 0u);
    EXPECT_EQ(r.timeouts, 0u);
    EXPECT_EQ(r.dead_shed, 0u);
    EXPECT_EQ(r.late_starts, 0);
    EXPECT_EQ(r.ranks_lost, 0);
    EXPECT_GT(r.issued, 50u);
    // Everything issued completes (a still-in-flight tail at the drain
    // horizon would show up as unfinished, not as silence).
    EXPECT_EQ(r.completed + r.unfinished, r.issued);
    EXPECT_EQ(r.latency.count(), r.completed);
    EXPECT_GT(r.goodput_rps, 0.0);
    EXPECT_GT(r.latency.p999(), r.latency.p50());
    // Mix plumbing: every op kind was exercised.
    EXPECT_GT(r.gets, 0u);
    EXPECT_GT(r.puts, 0u);
    EXPECT_GT(r.scans, 0u);
    EXPECT_EQ(r.gets + r.puts + r.scans, r.issued);
  }
}

TEST(KvServing, ResultIsAPureFunctionOfTheSeed) {
  KvServingParams p = small_params();
  const KvServingResult a = run_kv_serving(p, svm::Model::kStrong, 8);
  const KvServingResult b = run_kv_serving(p, svm::Model::kStrong, 8);
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.served_ops, b.served_ops);
  EXPECT_EQ(a.local_ops, b.local_ops);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.sum(), b.latency.sum());
  EXPECT_EQ(a.latency.buckets(), b.latency.buckets());

  // A different seed produces a genuinely different run.
  p.seed = 43;
  const KvServingResult c = run_kv_serving(p, svm::Model::kStrong, 8);
  EXPECT_NE(a.latency.sum(), c.latency.sum());
}

TEST(KvServing, MidWindowKillDegradesToTypedLossOnly) {
  KvServingParams p = small_params();
  p.gen.rate_rps = 20'000;
  // Kill one core a quarter into the load window, under the heartbeat
  // lease so survivors detect it and shed instead of waiting forever.
  sim::KillSpec spec;
  spec.core = 3;
  spec.at_ps = p.start_epoch_ps + p.gen.load_ps / 4;
  p.faults.seed = 42;
  p.faults.kills.push_back(spec);
  p.faults.watchdog_ps = 500 * kPsPerMs;
  p.faults.sweep_period = 2;
  p.faults.degrade_after = 6;
  p.faults.retry_ps = 2 * kPsPerMs;
  p.faults.lease_ps = 500 * kPsPerUs;

  const KvServingResult r = run_kv_serving(p, svm::Model::kStrong, 8);
  EXPECT_EQ(r.ranks_lost, 1);
  EXPECT_EQ(r.wrong, 0u);       // the contract: typed loss, never lies
  EXPECT_GT(r.completed, 0u);   // survivors kept serving
  // The dead home's shard traffic surfaces as typed losses.
  EXPECT_GT(r.dead_shed + r.timeouts + r.unfinished, 0u);
  // And the loss is bounded: one home of eight, plus in-flight fallout.
  EXPECT_LT(r.dead_shed + r.timeouts, r.issued / 2);
}

}  // namespace
}  // namespace msvm::serve
