// serve::LatencyHisto unit tests: the HDR-style bucket map (exact unit
// range, octave/sub-bucket boundaries, bucket_lo as the inverse of
// bucket_of), exact merging, and the percentile edge cases the serving
// benches lean on — empty, single-sample, and a saturated top bucket.
#include "serve/latency_histo.hpp"

#include <gtest/gtest.h>

namespace msvm::serve {
namespace {

TEST(LatencyHisto, UnitBucketsAreExactBelowSubBucketRange) {
  for (u64 v = 0; v < LatencyHisto::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHisto::bucket_of(v), static_cast<std::size_t>(v));
    EXPECT_EQ(LatencyHisto::bucket_lo(static_cast<std::size_t>(v)), v);
    EXPECT_EQ(LatencyHisto::bucket_width(static_cast<std::size_t>(v)), 1u);
  }
}

TEST(LatencyHisto, OctaveBoundariesLandInTheRightSubBucket) {
  // 16 opens the first octave: [16, 32) split into 16 sub-buckets of 1.
  EXPECT_EQ(LatencyHisto::bucket_of(16), LatencyHisto::kSubBuckets);
  EXPECT_EQ(LatencyHisto::bucket_of(31), LatencyHisto::kSubBuckets + 15);
  // [32, 64): sub-buckets of width 2.
  EXPECT_EQ(LatencyHisto::bucket_of(32), LatencyHisto::kSubBuckets + 16);
  EXPECT_EQ(LatencyHisto::bucket_of(33), LatencyHisto::kSubBuckets + 16);
  EXPECT_EQ(LatencyHisto::bucket_of(34), LatencyHisto::kSubBuckets + 17);
  EXPECT_EQ(LatencyHisto::bucket_of(63), LatencyHisto::kSubBuckets + 31);
  EXPECT_EQ(LatencyHisto::bucket_of(64), LatencyHisto::kSubBuckets + 32);
}

TEST(LatencyHisto, BucketLoInvertsBucketOfOnEveryBoundary) {
  for (std::size_t b = 0; b < LatencyHisto::kNumBuckets; ++b) {
    const u64 lo = LatencyHisto::bucket_lo(b);
    EXPECT_EQ(LatencyHisto::bucket_of(lo), b) << "bucket " << b;
    // The last value of the bucket still maps to it.
    const u64 hi = lo + LatencyHisto::bucket_width(b) - 1;
    if (b + 1 < LatencyHisto::kNumBuckets) {
      EXPECT_EQ(LatencyHisto::bucket_of(hi), b) << "bucket " << b;
      EXPECT_EQ(LatencyHisto::bucket_of(hi + 1), b + 1) << "bucket " << b;
    }
  }
}

TEST(LatencyHisto, QuantisationErrorIsBoundedBySubBucketWidth) {
  // Relative error of bucket_lo vs. any member of the bucket is at most
  // 1/kSubBuckets (6.25% at 4 sub-bits).
  for (u64 v : {u64{100}, u64{12345}, u64{1} << 20, (u64{1} << 33) + 12345}) {
    const std::size_t b = LatencyHisto::bucket_of(v);
    const u64 lo = LatencyHisto::bucket_lo(b);
    EXPECT_LE(lo, v);
    EXPECT_LE(static_cast<double>(v - lo) / static_cast<double>(v),
              1.0 / LatencyHisto::kSubBuckets);
  }
}

TEST(LatencyHisto, EmptyHistogramAnswersZero) {
  const LatencyHisto h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p999(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHisto, SingleSampleIsEveryPercentile) {
  LatencyHisto h;
  h.record(12345);
  EXPECT_EQ(h.count(), 1u);
  // The clamp to [min, max] makes the answer exact despite the 6.25%
  // bucket quantisation.
  EXPECT_EQ(h.percentile(0.0), 12345u);
  EXPECT_EQ(h.p50(), 12345u);
  EXPECT_EQ(h.p999(), 12345u);
  EXPECT_EQ(h.percentile(1.0), 12345u);
}

TEST(LatencyHisto, NearestRankOnUniformRamp) {
  LatencyHisto h;
  for (u64 v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  // Log-bucketed answers are within one sub-bucket of the exact rank.
  EXPECT_NEAR(static_cast<double>(h.p50()), 500.0, 500.0 / 16);
  EXPECT_NEAR(static_cast<double>(h.p95()), 950.0, 950.0 / 16);
  EXPECT_NEAR(static_cast<double>(h.p99()), 990.0, 990.0 / 16);
}

TEST(LatencyHisto, SaturatedTopBucketClampsToTrackedMax) {
  LatencyHisto h;
  const u64 beyond = u64{1}
                     << (LatencyHisto::kSubBits + LatencyHisto::kMaxOctaves);
  h.record(10);
  h.record(beyond + 5);
  h.record(beyond * 2);
  EXPECT_EQ(h.saturated(), 2u);
  EXPECT_EQ(h.max(), beyond * 2);
  // Tail percentiles answer the exact tracked max, not the top bucket's
  // theoretical span.
  EXPECT_EQ(h.percentile(1.0), beyond * 2);
  EXPECT_EQ(h.p999(), beyond * 2);
}

TEST(LatencyHisto, MergeMatchesRecordingEverythingInOne) {
  LatencyHisto a, b, all;
  for (u64 v = 0; v < 500; ++v) {
    const u64 x = (v * 2654435761u) % 100000;
    ((v % 2 == 0) ? a : b).record(x);
    all.record(x);
  }
  LatencyHisto merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_EQ(merged.sum(), all.sum());
  EXPECT_EQ(merged.min(), all.min());
  EXPECT_EQ(merged.max(), all.max());
  EXPECT_EQ(merged.buckets(), all.buckets());
  EXPECT_EQ(merged.p50(), all.p50());
  EXPECT_EQ(merged.p999(), all.p999());
}

TEST(LatencyHisto, MergeWithEmptyIsIdentity) {
  LatencyHisto h, empty;
  h.record(42);
  h.merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  empty.merge(h);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 42u);
  EXPECT_EQ(empty.p50(), 42u);
}

}  // namespace
}  // namespace msvm::serve
