// Property-based write-combine-buffer test: a random store stream is
// mirrored into a shadow memory through the WCB (applying every flush it
// requests) and directly; the two memories must end identical, and no
// flush may ever write a byte that was not stored.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sccsim/wcb.hpp"
#include "sim/rng.hpp"

namespace msvm::scc {
namespace {

class WcbFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(WcbFuzz, RandomStoreStreamPreservesMemoryImage) {
  const u32 line = GetParam();
  constexpr u64 kMem = 4096;
  WriteCombineBuffer wcb(line);
  std::vector<u8> via_wcb(kMem, 0);
  std::vector<u8> direct(kMem, 0);
  // Track which bytes were ever stored: flushes must only touch those.
  std::vector<bool> stored(kMem, false);
  sim::Rng rng(line * 1234567);

  auto apply_flush = [&](const WriteCombineBuffer::FlushRequest& f) {
    ASSERT_LT(f.line_addr + f.size, kMem + 1);
    for (u32 i = 0; i < f.size; ++i) {
      if (f.dirty_mask & (u64{1} << i)) {
        ASSERT_TRUE(stored[f.line_addr + i])
            << "flush dirtied a byte that was never stored";
        via_wcb[f.line_addr + i] = f.data[i];
      }
    }
  };

  for (int step = 0; step < 30000; ++step) {
    const u32 size = 1u << rng.next_below(4);  // 1,2,4,8
    u64 addr = rng.next_below(kMem - size);
    // Keep the access within one line, as the memory pipeline guarantees.
    const u64 line_off = addr & (line - 1);
    if (line_off + size > line) addr -= line_off + size - line;

    u64 value = rng.next_u64();
    auto flush = wcb.store(addr, &value, size);
    if (flush.has_value()) {
      apply_flush(*flush);
      flush = wcb.store(addr, &value, size);
      ASSERT_FALSE(flush.has_value()) << "retry after drain must merge";
    }
    std::memcpy(direct.data() + addr, &value, size);
    for (u32 i = 0; i < size; ++i) stored[addr + i] = true;

    // The buffered view must always agree with the direct view for
    // fully-dirty spans.
    u8 fwd[8];
    if (wcb.forward(addr, fwd, size)) {
      ASSERT_EQ(std::memcmp(fwd, direct.data() + addr, size), 0);
    }

    if (rng.next_bool(0.05)) {
      if (auto f = wcb.flush()) apply_flush(*f);
      ASSERT_FALSE(wcb.valid());
    }
  }
  if (auto f = wcb.flush()) apply_flush(*f);

  EXPECT_EQ(via_wcb, direct)
      << "memory image through the WCB diverged from direct stores";
}

INSTANTIATE_TEST_SUITE_P(LineSizes, WcbFuzz,
                         ::testing::Values(16u, 32u, 64u));

}  // namespace
}  // namespace msvm::scc
