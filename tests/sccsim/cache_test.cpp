// Functional cache tests: hit/miss behaviour, write-through semantics,
// read-allocate-only policy, LRU eviction, and the MPBT-selective
// invalidate that CL1INVMB relies on.
#include "sccsim/cache.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace msvm::scc {
namespace {

constexpr u32 kLine = 32;

std::vector<u8> pattern_line(u8 seed) {
  std::vector<u8> line(kLine);
  for (u32 i = 0; i < kLine; ++i) line[i] = static_cast<u8>(seed + i);
  return line;
}

TEST(Cache, MissOnEmpty) {
  Cache c(16 * 1024, 2, kLine);
  u64 out = 0;
  EXPECT_FALSE(c.read(0x1000, &out, 8));
  EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, FillThenHit) {
  Cache c(16 * 1024, 2, kLine);
  const auto line = pattern_line(7);
  c.fill(0x1000, line.data(), false);
  EXPECT_TRUE(c.probe(0x1000));
  EXPECT_TRUE(c.probe(0x101f));   // same line
  EXPECT_FALSE(c.probe(0x1020));  // next line

  u8 out[8];
  ASSERT_TRUE(c.read(0x1008, out, 8));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], static_cast<u8>(7 + 8 + i));
}

TEST(Cache, WriteUpdatesPresentLineOnly) {
  Cache c(16 * 1024, 2, kLine);
  const u32 value = 0xdeadbeef;
  // No write-allocate: a store to an absent line is rejected.
  EXPECT_FALSE(c.write(0x2000, &value, 4));
  EXPECT_FALSE(c.probe(0x2000));

  const auto line = pattern_line(0);
  c.fill(0x2000, line.data(), false);
  EXPECT_TRUE(c.write(0x2004, &value, 4));
  u32 out = 0;
  ASSERT_TRUE(c.read(0x2004, &out, 4));
  EXPECT_EQ(out, value);
}

TEST(Cache, FillOverwritesExistingLine) {
  Cache c(16 * 1024, 2, kLine);
  c.fill(0x3000, pattern_line(1).data(), false);
  c.fill(0x3000, pattern_line(9).data(), false);
  u8 out = 0;
  ASSERT_TRUE(c.read(0x3000, &out, 1));
  EXPECT_EQ(out, 9);
  // No duplicate line may exist.
  EXPECT_EQ(c.valid_line_count(), 1u);
}

TEST(Cache, LruEvictionWithinSet) {
  // 2-way cache: lines A, B map to the same set; touching A then filling C
  // must evict B (the least recently used).
  Cache c(16 * 1024, 2, kLine);
  const u32 set_stride = c.num_sets() * kLine;
  const u64 a = 0x0;
  const u64 b = a + set_stride;
  const u64 d = a + 2 * set_stride;
  c.fill(a, pattern_line(1).data(), false);
  c.fill(b, pattern_line(2).data(), false);
  u8 tmp;
  ASSERT_TRUE(c.read(a, &tmp, 1));  // A most recent
  c.fill(d, pattern_line(3).data(), false);
  EXPECT_TRUE(c.probe(a));
  EXPECT_FALSE(c.probe(b));  // evicted
  EXPECT_TRUE(c.probe(d));
}

TEST(Cache, InvalidateLine) {
  Cache c(16 * 1024, 2, kLine);
  c.fill(0x4000, pattern_line(5).data(), false);
  c.invalidate_line(0x4010);  // any address within the line
  EXPECT_FALSE(c.probe(0x4000));
}

TEST(Cache, Cl1invmbInvalidatesOnlyMpbtLines) {
  Cache c(16 * 1024, 2, kLine);
  c.fill(0x1000, pattern_line(1).data(), /*mpbt=*/true);
  c.fill(0x2000, pattern_line(2).data(), /*mpbt=*/false);
  c.fill(0x3000, pattern_line(3).data(), /*mpbt=*/true);
  c.invalidate_mpbt();
  EXPECT_FALSE(c.probe(0x1000));
  EXPECT_TRUE(c.probe(0x2000));  // non-MPBT data survives
  EXPECT_FALSE(c.probe(0x3000));
}

TEST(Cache, InvalidateAll) {
  Cache c(16 * 1024, 2, kLine);
  c.fill(0x1000, pattern_line(1).data(), true);
  c.fill(0x2000, pattern_line(2).data(), false);
  c.invalidate_all();
  EXPECT_EQ(c.valid_line_count(), 0u);
}

TEST(Cache, StaleDataIsServedAfterBackingChanges) {
  // The essence of the non-coherent SCC: the cache keeps returning its
  // copy no matter what happened in memory. Higher layers must invalidate
  // explicitly; this test pins the simulator to that behaviour.
  Cache c(16 * 1024, 2, kLine);
  c.fill(0x5000, pattern_line(1).data(), true);
  // "Memory" changes elsewhere — the cache is not told.
  u8 out = 0;
  ASSERT_TRUE(c.read(0x5000, &out, 1));
  EXPECT_EQ(out, 1);  // still the old value: stale by design
}

TEST(Cache, GeometryDerivedCorrectly) {
  Cache l1(16 * 1024, 2, 32);
  EXPECT_EQ(l1.num_sets(), 256u);
  Cache l2(256 * 1024, 4, 32);
  EXPECT_EQ(l2.num_sets(), 2048u);
}

TEST(Cache, CapacityIsRespected) {
  // Fill more distinct lines than the cache holds; valid count must not
  // exceed capacity.
  Cache c(1024, 2, kLine);  // 32 lines
  for (u64 i = 0; i < 100; ++i) {
    c.fill(i * kLine, pattern_line(static_cast<u8>(i)).data(), false);
  }
  EXPECT_LE(c.valid_line_count(), 32u);
}

}  // namespace
}  // namespace msvm::scc
