// Property-based cache tests: a randomised operation stream is applied
// both to the functional Cache and to a trivially-correct reference
// model; their visible behaviour must match for every geometry in the
// parameter sweep. Catches indexing, eviction and aliasing bugs that
// example-based tests miss.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "sccsim/cache.hpp"
#include "sim/rng.hpp"

namespace msvm::scc {
namespace {

/// Reference model: an unbounded map of cached lines. The only property
/// it cannot check alone is capacity/eviction; those are asserted
/// separately via the LRU-order property.
class ReferenceCache {
 public:
  explicit ReferenceCache(u32 line_bytes) : line_(line_bytes) {}

  void fill(u64 addr, const std::vector<u8>& data, bool mpbt) {
    lines_[addr & ~u64{line_ - 1}] = {data, mpbt};
  }

  /// Returns the line if the reference says it must still be cached --
  /// which we can only claim when the real cache also reports a hit (the
  /// reference has no evictions). Used for *content* agreement.
  std::optional<std::vector<u8>> content(u64 addr) const {
    const auto it = lines_.find(addr & ~u64{line_ - 1});
    if (it == lines_.end()) return std::nullopt;
    return it->second.first;
  }

  void write(u64 addr, const void* src, u32 size) {
    const auto it = lines_.find(addr & ~u64{line_ - 1});
    if (it == lines_.end()) return;
    const u32 off = static_cast<u32>(addr & (line_ - 1));
    std::memcpy(it->second.first.data() + off, src, size);
  }

  void invalidate_mpbt() {
    for (auto it = lines_.begin(); it != lines_.end();) {
      it = it->second.second ? lines_.erase(it) : std::next(it);
    }
  }

  void invalidate_line(u64 addr) { lines_.erase(addr & ~u64{line_ - 1}); }

  bool mpbt(u64 addr) const {
    const auto it = lines_.find(addr & ~u64{line_ - 1});
    return it != lines_.end() && it->second.second;
  }

 private:
  u32 line_;
  std::map<u64, std::pair<std::vector<u8>, bool>> lines_;
};

struct Geometry {
  u32 bytes;
  u32 assoc;
  u32 line;
};

class CacheFuzz : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheFuzz, AgreesWithReferenceModel) {
  const Geometry g = GetParam();
  Cache cache(g.bytes, g.assoc, g.line);
  ReferenceCache ref(g.line);
  sim::Rng rng(g.bytes * 31 + g.assoc * 7 + g.line);

  // A modest address universe so hits, conflicts and evictions all occur.
  const u64 universe = 4ull * g.bytes;

  for (int step = 0; step < 20000; ++step) {
    const u64 addr = rng.next_below(universe) & ~u64{7};
    switch (rng.next_below(100)) {
      case 0 ... 39: {  // read
        u64 got = 0;
        if (cache.read(addr, &got, 8)) {
          // A real-cache hit must agree byte-for-byte with the reference.
          const auto want = ref.content(addr);
          ASSERT_TRUE(want.has_value())
              << "cache hit on a line the reference never saw";
          u64 expect = 0;
          std::memcpy(&expect, want->data() +
                                   (addr & (g.line - 1)), 8);
          ASSERT_EQ(got, expect) << "stale/corrupt line content";
        }
        break;
      }
      case 40 ... 69: {  // write-through update
        const u64 v = rng.next_u64();
        if (cache.write(addr, &v, 8)) {
          ref.write(addr, &v, 8);
        }
        // A write must never allocate.
        break;
      }
      case 70 ... 89: {  // fill
        std::vector<u8> line(g.line);
        for (auto& b : line) b = static_cast<u8>(rng.next_u64());
        const bool mpbt = rng.next_bool(0.5);
        cache.fill(addr, line.data(), mpbt);
        ref.fill(addr, line, mpbt);
        // A just-filled line must hit.
        u8 probe = 0;
        ASSERT_TRUE(cache.read(addr, &probe, 1));
        break;
      }
      case 90 ... 94:  // targeted invalidate
        cache.invalidate_line(addr);
        ref.invalidate_line(addr);
        ASSERT_FALSE(cache.probe(addr));
        break;
      default:  // CL1INVMB
        cache.invalidate_mpbt();
        ref.invalidate_mpbt();
        ASSERT_FALSE(cache.probe(addr) && ref.mpbt(addr));
        break;
    }
    // Capacity invariant at every step.
    ASSERT_LE(cache.valid_line_count(),
              static_cast<std::size_t>(g.bytes / g.line));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheFuzz,
    ::testing::Values(Geometry{16 * 1024, 2, 32},   // the SCC L1
                      Geometry{256 * 1024, 4, 32},  // the SCC L2
                      Geometry{1024, 1, 32},        // direct-mapped
                      Geometry{2048, 2, 64},        // wider lines
                      Geometry{4096, 4, 16},        // narrow lines
                      Geometry{512, 16, 32}));      // fully-associative

TEST(CacheLru, MostRecentlyUsedSurvivesConflictStream) {
  // Property: in a k-way set, after touching a line and then filling
  // k-1 fresh conflicting lines, the touched line must still be present.
  for (const u32 assoc : {2u, 4u, 8u}) {
    Cache cache(32 * 32 * assoc, assoc, 32);  // 32 sets
    const u32 stride = cache.num_sets() * 32;
    std::vector<u8> line(32, 0xab);
    cache.fill(0, line.data(), false);
    u8 tmp;
    ASSERT_TRUE(cache.read(0, &tmp, 1));
    for (u32 k = 1; k < assoc; ++k) {
      cache.fill(k * stride, line.data(), false);
    }
    EXPECT_TRUE(cache.probe(0)) << "assoc=" << assoc;
    // One more conflicting fill must finally evict the oldest of the
    // later fills, not the freshly re-touched line 0.
    u8 probe;
    ASSERT_TRUE(cache.read(0, &probe, 1));
    cache.fill(assoc * stride, line.data(), false);
    EXPECT_TRUE(cache.probe(0)) << "assoc=" << assoc;
    EXPECT_FALSE(cache.probe(stride)) << "assoc=" << assoc;
  }
}

}  // namespace
}  // namespace msvm::scc
