// Integration tests for Core + Chip: the full memory pipeline (page
// tables, caches, WCB), interrupt delivery, TAS registers, and — most
// importantly — demonstrations that the simulated incoherence is real:
// stale reads happen unless software flushes/invalidates, exactly the
// behaviour the SVM layer exists to manage.
#include "sccsim/chip.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace msvm::scc {
namespace {

ChipConfig small_config(int cores = 2) {
  ChipConfig cfg;
  cfg.num_cores = cores;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  return cfg;
}

/// Maps one page at `vaddr` on `core` with the given attributes.
void map_page(Core& core, u64 vaddr, u64 frame_paddr, bool writable,
              bool mpbt, bool l2 = false) {
  Pte pte;
  pte.frame_paddr = frame_paddr;
  pte.present = true;
  pte.writable = writable;
  pte.mpbt = mpbt;
  pte.l2_enable = l2;
  core.pagetable().map(vaddr, pte);
}

TEST(Core, VirtualLoadStoreRoundTrip) {
  Chip chip(small_config());
  bool done = false;
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, /*writable=*/true, /*mpbt=*/true);
    c.vstore<u64>(kSvmVBase + 8, 0x1234567890abcdefull);
    EXPECT_EQ(c.vload<u64>(kSvmVBase + 8), 0x1234567890abcdefull);
    done = true;
  });
  chip.run();
  EXPECT_TRUE(done);
}

TEST(Core, TimeAdvancesWithAccesses) {
  Chip chip(small_config());
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, true);
    const TimePs t0 = c.now();
    c.vstore<u32>(kSvmVBase, 42);
    EXPECT_GT(c.now(), t0);
  });
  chip.run();
}

TEST(Core, L1HitIsCheaperThanDramMiss) {
  Chip chip(small_config());
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, true);
    TimePs t0 = c.now();
    (void)c.vload<u32>(kSvmVBase);  // cold: DRAM fill
    const TimePs miss_cost = c.now() - t0;
    t0 = c.now();
    (void)c.vload<u32>(kSvmVBase);  // warm: L1 hit
    const TimePs hit_cost = c.now() - t0;
    EXPECT_GT(miss_cost, 10 * hit_cost);
    EXPECT_EQ(c.counters().l1_hits, 1u);
    EXPECT_EQ(c.counters().l1_misses, 1u);
  });
  chip.run();
}

TEST(Core, MpbtPagesBypassL2) {
  Chip chip(small_config());
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, /*mpbt=*/true);
    (void)c.vload<u32>(kSvmVBase);
    EXPECT_EQ(c.counters().l2_hits + c.counters().l2_misses, 0u);
    EXPECT_EQ(c.l2().valid_line_count(), 0u);
  });
  chip.run();
}

TEST(Core, CachedPagesFillL2) {
  Chip chip(small_config());
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, /*mpbt=*/false);
    (void)c.vload<u32>(kSvmVBase);
    EXPECT_EQ(c.counters().l2_misses, 1u);
    EXPECT_EQ(c.l2().valid_line_count(), 1u);
    // Evict from L1, keep in L2: next read must be an L2 hit.
    c.l1().invalidate_all();
    (void)c.vload<u32>(kSvmVBase);
    EXPECT_EQ(c.counters().l2_hits, 1u);
  });
  chip.run();
}

TEST(Core, WcbCombinesStoresIntoOneDramWrite) {
  Chip chip(small_config());
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, /*mpbt=*/true);
    const u64 w0 = c.counters().dram_writes;
    // Eight sequential u32 stores = one 32-byte line.
    for (u64 i = 0; i < 8; ++i) {
      c.vstore<u32>(kSvmVBase + 4 * i, static_cast<u32>(i));
    }
    EXPECT_EQ(c.counters().dram_writes, w0);  // still buffered
    c.vstore<u32>(kSvmVBase + 32, 99);        // next line: forces flush
    EXPECT_EQ(c.counters().dram_writes, w0 + 1);
  });
  chip.run();
}

TEST(Core, NonMpbtStoresGoStraightToDram) {
  // The "like uncachable memory" store path (Section 7.2.2): without the
  // MPBT flag every write-through store is its own DRAM transaction.
  Chip chip(small_config());
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, /*mpbt=*/false);
    const u64 w0 = c.counters().dram_writes;
    for (u64 i = 0; i < 8; ++i) {
      c.vstore<u32>(kSvmVBase + 4 * i, static_cast<u32>(i));
    }
    EXPECT_EQ(c.counters().dram_writes, w0 + 8);
  });
  chip.run();
}

TEST(Core, StaleReadWithoutInvalidate) {
  // Core 0 caches a value; core 1 overwrites memory; core 0 keeps seeing
  // its stale copy until it invalidates. This is the hardware reality the
  // whole SVM system is built around.
  Chip chip(small_config());
  u32 stale_read = 0;
  u32 fresh_read = 0;
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, true);
    c.pstore<u32>(kSharedBase, 111, MemPolicy::kUncached);
    (void)c.vload<u32>(kSvmVBase);  // cache the old value
    // Let core 1 run far ahead.
    c.compute_cycles(1'000'000);
    stale_read = c.vload<u32>(kSvmVBase);
    c.cl1invmb();
    fresh_read = c.vload<u32>(kSvmVBase);
  });
  chip.spawn_program(1, [&](Core& c) {
    c.compute_cycles(10'000);  // after core 0's first read
    c.pstore<u32>(kSharedBase, 222, MemPolicy::kUncached);
  });
  chip.run();
  EXPECT_EQ(stale_read, 111u);  // incoherence: the write was invisible
  EXPECT_EQ(fresh_read, 222u);  // CL1INVMB makes it visible
}

TEST(Core, WcbHidesStoresUntilFlush) {
  // Core 0 writes through the WCB; core 1 reads memory uncached and sees
  // the old data until core 0 flushes. The LRC release step exists
  // precisely because of this.
  Chip chip(small_config());
  u32 before_flush = 99;
  u32 after_flush = 99;
  Chip* chp = &chip;
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, true);
    c.vstore<u32>(kSvmVBase, 7);  // sits in the WCB
    c.compute_cycles(100'000);    // give core 1 a window
    c.flush_wcb();
    c.compute_cycles(200'000);
  });
  chip.spawn_program(1, [&](Core& c) {
    c.compute_cycles(50'000);
    before_flush = c.pload<u32>(kSharedBase, MemPolicy::kUncached);
    c.compute_cycles(200'000);
    after_flush = c.pload<u32>(kSharedBase, MemPolicy::kUncached);
    (void)chp;
  });
  chip.run();
  EXPECT_EQ(before_flush, 0u);
  EXPECT_EQ(after_flush, 7u);
}

TEST(Core, PageFaultHandlerInstallsMapping) {
  Chip chip(small_config());
  int faults = 0;
  chip.spawn_program(0, [&](Core& c) {
    c.set_fault_handler([&](Core& core, u64 vaddr, bool is_write) {
      ++faults;
      EXPECT_TRUE(is_write);
      map_page(core, vaddr, kSharedBase, true, true);
    });
    c.vstore<u32>(kSvmVBase + 123, 5);  // faults, then retries
    EXPECT_EQ(c.vload<u32>(kSvmVBase + 123), 5u);
  });
  chip.run();
  EXPECT_EQ(faults, 1);
  EXPECT_EQ(chip.core(0).counters().page_faults, 1u);
}

TEST(Core, WriteToReadOnlyPageFaults) {
  Chip chip(small_config());
  int faults = 0;
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, /*writable=*/false, false);
    c.set_fault_handler([&](Core& core, u64 vaddr, bool is_write) {
      ++faults;
      EXPECT_TRUE(is_write);
      // Upgrade to writable, as an SVM ownership acquisition would.
      core.pagetable().update(vaddr, [](Pte& p) { p.writable = true; });
    });
    (void)c.vload<u32>(kSvmVBase);  // reads are fine
    EXPECT_EQ(faults, 0);
    c.vstore<u32>(kSvmVBase, 1);  // write faults once
    EXPECT_EQ(faults, 1);
  });
  chip.run();
}

TEST(Core, TimerInterruptFires) {
  ChipConfig cfg = small_config(1);
  cfg.timer_period_us = 10;  // 10 us period for a fast test
  Chip chip(cfg);
  chip.spawn_program(0, [&](Core& c) {
    int ticks = 0;
    c.set_timer_handler([&](Core&) { ++ticks; });
    // Busy for ~100 us of virtual time => ~10 timer interrupts.
    for (int i = 0; i < 100; ++i) c.compute_cycles(533);  // ~1 us each
    EXPECT_GE(ticks, 8);
    EXPECT_LE(ticks, 12);
  });
  chip.run();
}

TEST(Core, IpiWakesHaltedCore) {
  Chip chip(small_config());
  bool got_ipi = false;
  u64 source_mask = 0;
  TimePs woke_at = 0;
  chip.spawn_program(0, [&](Core& c) {
    c.set_ipi_handler([&](Core&, const IpiSourceSet& sources) {
      got_ipi = true;
      source_mask = sources.word0();
    });
    while (!got_ipi) c.halt();
    woke_at = c.now();
  });
  chip.spawn_program(1, [&](Core& c) {
    c.compute_cycles(100'000);
    c.raise_ipi(0);
  });
  chip.run();
  EXPECT_TRUE(got_ipi);
  EXPECT_EQ(source_mask, u64{1} << 1);
  // The halted core woke from the IPI, long before its 1 ms timer.
  EXPECT_LT(woke_at, 500 * kPsPerUs);
  EXPECT_GT(woke_at, 100'000 * chip.config().core_cycle_ps());
}

TEST(Core, IpiToRunningCoreDeliveredAtBoundary) {
  Chip chip(small_config());
  bool got_ipi = false;
  chip.spawn_program(0, [&](Core& c) {
    c.set_ipi_handler(
        [&](Core&, const IpiSourceSet&) { got_ipi = true; });
    // Keep computing; the IPI must be delivered at an access boundary.
    for (int i = 0; i < 1000 && !got_ipi; ++i) c.compute_cycles(100);
    EXPECT_TRUE(got_ipi);
  });
  chip.spawn_program(1, [&](Core& c) { c.raise_ipi(0); });
  chip.run();
}

TEST(Core, TasProvidesMutualExclusion) {
  Chip chip(small_config(4));
  int in_critical = 0;
  int max_in_critical = 0;
  int total = 0;
  for (int i = 0; i < 4; ++i) {
    chip.spawn_program(i, [&](Core& c) {
      for (int k = 0; k < 25; ++k) {
        while (!c.tas_try_acquire(0)) c.yield();
        ++in_critical;
        max_in_critical = std::max(max_in_critical, in_critical);
        c.compute_cycles(50);
        ++total;
        --in_critical;
        c.tas_release(0);
        c.compute_cycles(20);
      }
    });
  }
  chip.run();
  EXPECT_EQ(max_in_critical, 1);
  EXPECT_EQ(total, 100);
}

TEST(Core, MpbAccessIsCheaperThanDram) {
  Chip chip(small_config());
  chip.spawn_program(0, [&](Core& c) {
    TimePs t0 = c.now();
    (void)c.pload<u32>(chip.map().mpb_base(0), MemPolicy::kUncached);
    const TimePs mpb_cost = c.now() - t0;
    t0 = c.now();
    (void)c.pload<u32>(kSharedBase, MemPolicy::kUncached);
    const TimePs dram_cost = c.now() - t0;
    EXPECT_LT(mpb_cost, dram_cost);
  });
  chip.run();
}

TEST(Core, RemoteMpbCostsMoreWithDistance) {
  Chip chip(small_config(48));
  chip.spawn_program(0, [&](Core& c) {
    TimePs t0 = c.now();
    (void)c.pload<u32>(chip.map().mpb_base(1), MemPolicy::kUncached);
    const TimePs near = c.now() - t0;  // same tile: 0 hops
    t0 = c.now();
    (void)c.pload<u32>(chip.map().mpb_base(47), MemPolicy::kUncached);
    const TimePs far = c.now() - t0;  // 8 hops
    EXPECT_GT(far, near);
  });
  chip.run();
}

TEST(Core, CountersTrackTraffic) {
  Chip chip(small_config());
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, true);
    c.vstore<u32>(kSvmVBase, 1);
    (void)c.vload<u32>(kSvmVBase);
    EXPECT_EQ(c.counters().stores, 1u);
    EXPECT_EQ(c.counters().loads, 1u);
    EXPECT_GE(c.counters().wcb_merges, 1u);
  });
  chip.run();
  const CoreCounters total = chip.total_counters();
  EXPECT_EQ(total.stores, 1u);
  EXPECT_EQ(total.loads, 1u);
}

TEST(Core, MakespanReported) {
  Chip chip(small_config());
  chip.spawn_program(0, [&](Core& c) { c.compute_cycles(1000); });
  chip.spawn_program(1, [&](Core& c) { c.compute_cycles(5000); });
  chip.run();
  EXPECT_EQ(chip.makespan(), 5000 * chip.config().core_cycle_ps());
}

TEST(Core, McContentionAddsQueueingDelay) {
  // Two runs of the same 48-core DRAM hammering, with and without the
  // contention model; the contended run must take longer.
  auto run = [](bool contention) {
    ChipConfig cfg = small_config(8);
    cfg.mc_contention = contention;
    Chip chip(cfg);
    for (int i = 0; i < 8; ++i) {
      chip.spawn_program(i, [](Core& c) {
        for (int k = 0; k < 200; ++k) {
          (void)c.pload<u32>(kSharedBase + 64 * k, MemPolicy::kUncached);
        }
      });
    }
    chip.run();
    return chip.makespan();
  };
  EXPECT_GT(run(true), run(false));
}

}  // namespace
}  // namespace msvm::scc
