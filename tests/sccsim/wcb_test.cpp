// Write-combine buffer tests: merging, conflict flush, dirty-byte masking
// and load forwarding.
#include "sccsim/wcb.hpp"

#include <gtest/gtest.h>

namespace msvm::scc {
namespace {

TEST(Wcb, EmptyBufferFlushesNothing) {
  WriteCombineBuffer w(32);
  EXPECT_FALSE(w.valid());
  EXPECT_FALSE(w.flush().has_value());
}

TEST(Wcb, StoresToSameLineMerge) {
  WriteCombineBuffer w(32);
  const u64 a = 0x1000;
  u32 v1 = 0x11111111;
  u32 v2 = 0x22222222;
  EXPECT_FALSE(w.store(a, &v1, 4).has_value());
  EXPECT_FALSE(w.store(a + 4, &v2, 4).has_value());
  EXPECT_TRUE(w.valid());
  EXPECT_EQ(w.line_addr(), a);
  EXPECT_EQ(w.dirty_mask(), 0xffull);  // bytes 0..7 dirty
}

TEST(Wcb, ConflictingLineRequestsFlushFirst) {
  WriteCombineBuffer w(32);
  u8 x = 1;
  EXPECT_FALSE(w.store(0x1000, &x, 1).has_value());
  auto flush = w.store(0x2000, &x, 1);  // different line
  ASSERT_TRUE(flush.has_value());
  EXPECT_EQ(flush->line_addr, 0x1000u);
  EXPECT_EQ(flush->dirty_mask, 0x1ull);
  // After the caller performs the flush, the retry succeeds.
  EXPECT_FALSE(w.store(0x2000, &x, 1).has_value());
  EXPECT_EQ(w.line_addr(), 0x2000u);
}

TEST(Wcb, DirtyMaskTracksExactBytes) {
  WriteCombineBuffer w(32);
  u8 x = 0xaa;
  w.store(0x1003, &x, 1);
  w.store(0x1010, &x, 1);
  EXPECT_EQ(w.dirty_mask(), (u64{1} << 3) | (u64{1} << 16));
}

TEST(Wcb, FullLineStoreProducesFullMask) {
  WriteCombineBuffer w(32);
  u8 line[32] = {0};
  w.store(0x2000, line, 32);
  EXPECT_EQ(w.dirty_mask(), 0xffffffffull);
}

TEST(Wcb, ForwardOnlyWhenAllBytesDirty) {
  WriteCombineBuffer w(32);
  u32 v = 0xcafebabe;
  w.store(0x1000, &v, 4);
  u32 out = 0;
  EXPECT_TRUE(w.forward(0x1000, &out, 4));
  EXPECT_EQ(out, v);
  // Bytes 4..7 were never written: a wider read cannot forward.
  u64 wide = 0;
  EXPECT_FALSE(w.forward(0x1000, &wide, 8));
}

TEST(Wcb, ForwardMissesOtherLines) {
  WriteCombineBuffer w(32);
  u32 v = 1;
  w.store(0x1000, &v, 4);
  u32 out;
  EXPECT_FALSE(w.forward(0x2000, &out, 4));
}

TEST(Wcb, OverlapsDetectsPartialIntersection) {
  WriteCombineBuffer w(32);
  u8 x = 1;
  w.store(0x1000, &x, 1);
  EXPECT_TRUE(w.overlaps(0x1000, 1));
  EXPECT_TRUE(w.overlaps(0x101f, 1));
  EXPECT_FALSE(w.overlaps(0x1020, 1));
  EXPECT_FALSE(w.overlaps(0x0fff, 1));
}

TEST(Wcb, FlushEmptiesAndReportsData) {
  WriteCombineBuffer w(32);
  u16 v = 0xbeef;
  w.store(0x3008, &v, 2);
  auto flush = w.flush();
  ASSERT_TRUE(flush.has_value());
  EXPECT_EQ(flush->line_addr, 0x3000u);
  EXPECT_EQ(flush->dirty_mask, u64{0x3} << 8);
  EXPECT_EQ(flush->data[8], 0xef);
  EXPECT_EQ(flush->data[9], 0xbe);
  EXPECT_FALSE(w.valid());
  EXPECT_FALSE(w.flush().has_value());
}

TEST(Wcb, OverwriteWithinBufferKeepsLatestValue) {
  WriteCombineBuffer w(32);
  u32 v1 = 0x11111111;
  u32 v2 = 0x22222222;
  w.store(0x1000, &v1, 4);
  w.store(0x1000, &v2, 4);
  u32 out = 0;
  ASSERT_TRUE(w.forward(0x1000, &out, 4));
  EXPECT_EQ(out, v2);
}

}  // namespace
}  // namespace msvm::scc
