// Unit tests for the remaining simulated devices: the Global Interrupt
// Controller, the Memory backing store (including masked writes and the
// TAS register semantics), and the physical address map edge cases.
#include <gtest/gtest.h>

#include <cstring>

#include "sccsim/gic.hpp"
#include "sccsim/memory.hpp"

namespace msvm::scc {
namespace {

TEST(Gic, PendingMaskAccumulatesSources) {
  Gic gic(48);
  EXPECT_FALSE(gic.has_pending(5));
  gic.raise(5, 3, 100);
  gic.raise(5, 7, 200);
  EXPECT_TRUE(gic.has_pending(5));
  EXPECT_FALSE(gic.has_pending(3));
  EXPECT_EQ(gic.take_pending(5).word0(), (u64{1} << 3) | (u64{1} << 7));
  EXPECT_FALSE(gic.has_pending(5));
  EXPECT_EQ(gic.take_pending(5).word0(), 0u);
}

TEST(Gic, DuplicateRaiseCoalesces) {
  Gic gic(8);
  gic.raise(1, 0, 10);
  gic.raise(1, 0, 20);
  EXPECT_EQ(gic.take_pending(1).word0(), u64{1} << 0);
}

TEST(Gic, WakeCallbackFiresPerRaise) {
  Gic gic(8);
  int wakes = 0;
  int last_target = -1;
  TimePs last_at = 0;
  gic.wake_fn = [&](int target, TimePs at) {
    ++wakes;
    last_target = target;
    last_at = at;
  };
  gic.raise(6, 2, 12345);
  EXPECT_EQ(wakes, 1);
  EXPECT_EQ(last_target, 6);
  EXPECT_EQ(last_at, 12345u);
}

ChipConfig mem_config() {
  ChipConfig cfg;
  cfg.num_cores = 4;
  cfg.shared_dram_bytes = 1 << 20;
  cfg.private_dram_bytes = 64 << 10;
  return cfg;
}

TEST(Memory, SharedDramRoundTrip) {
  ChipConfig cfg = mem_config();
  Memory mem(cfg);
  const u64 value = 0x1122334455667788ull;
  mem.write(kSharedBase + 512, &value, 8);
  u64 out = 0;
  mem.read(kSharedBase + 512, &out, 8);
  EXPECT_EQ(out, value);
}

TEST(Memory, PrivateRegionsAreDisjointPerCore) {
  ChipConfig cfg = mem_config();
  Memory mem(cfg);
  const u32 a = 0xaaaa5555;
  const u32 b = 0x3333cccc;
  mem.write(mem.map().private_base(0) + 16, &a, 4);
  mem.write(mem.map().private_base(3) + 16, &b, 4);
  u32 out = 0;
  mem.read(mem.map().private_base(0) + 16, &out, 4);
  EXPECT_EQ(out, a);
  mem.read(mem.map().private_base(3) + 16, &out, 4);
  EXPECT_EQ(out, b);
}

TEST(Memory, MpbRegionsAreDisjointPerCore) {
  ChipConfig cfg = mem_config();
  Memory mem(cfg);
  const u8 x = 0x5a;
  mem.write(mem.map().mpb_base(1) + 100, &x, 1);
  u8 out = 0;
  mem.read(mem.map().mpb_base(2) + 100, &out, 1);
  EXPECT_EQ(out, 0);
  mem.read(mem.map().mpb_base(1) + 100, &out, 1);
  EXPECT_EQ(out, 0x5a);
}

TEST(Memory, MaskedWritePreservesUnselectedBytes) {
  ChipConfig cfg = mem_config();
  Memory mem(cfg);
  u8 original[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  mem.write(kSharedBase, original, 8);
  u8 update[8] = {0xa0, 0xa1, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7};
  // Only bytes 1, 3 and 6 are dirty.
  mem.write_masked(kSharedBase, update, 8,
                   (1u << 1) | (1u << 3) | (1u << 6));
  u8 out[8];
  mem.read(kSharedBase, out, 8);
  const u8 expect[8] = {1, 0xa1, 3, 0xa3, 5, 6, 0xa6, 8};
  EXPECT_EQ(std::memcmp(out, expect, 8), 0);
}

TEST(Memory, TasSemanticsMatchTheScc) {
  ChipConfig cfg = mem_config();
  Memory mem(cfg);
  // SCC semantics: a read returns the previous value and sets the
  // register; a write clears it.
  EXPECT_TRUE(mem.tas_read_acquire(0));   // was free -> acquired
  EXPECT_FALSE(mem.tas_read_acquire(0));  // now busy
  EXPECT_EQ(mem.tas_peek(0), 1u);
  mem.tas_write_release(0);
  EXPECT_EQ(mem.tas_peek(0), 0u);
  EXPECT_TRUE(mem.tas_read_acquire(0));
}

TEST(Memory, FullTasRegisterFileExistsRegardlessOfCoreCount) {
  // A 4-core configuration still exposes all 48 registers — they are a
  // fixed resource of the die.
  ChipConfig cfg = mem_config();
  Memory mem(cfg);
  EXPECT_TRUE(mem.tas_read_acquire(47));
  EXPECT_FALSE(mem.tas_read_acquire(47));
  mem.tas_write_release(47);
}

TEST(Memory, IndependentTasRegisters) {
  ChipConfig cfg = mem_config();
  Memory mem(cfg);
  EXPECT_TRUE(mem.tas_read_acquire(1));
  EXPECT_TRUE(mem.tas_read_acquire(2));  // unaffected by register 1
  mem.tas_write_release(1);
  EXPECT_TRUE(mem.tas_read_acquire(1));
  EXPECT_FALSE(mem.tas_read_acquire(2));
}

}  // namespace
}  // namespace msvm::scc
