// Topology tests: core/tile mapping, hop distances, memory-controller and
// system-interface placement — on the default SCC die, on non-SCC single
// chips, and on multi-chip super-meshes.
#include "sccsim/mesh.hpp"

#include <gtest/gtest.h>

#include "sccsim/addrmap.hpp"
#include "sccsim/config.hpp"

namespace msvm::scc {
namespace {

const Topology& scc() { return Topology::scc_default(); }

TEST(Topology, DefaultIsTheSccDie) {
  EXPECT_EQ(scc().cols(), 6);
  EXPECT_EQ(scc().rows(), 4);
  EXPECT_EQ(scc().cores_per_tile(), 2);
  EXPECT_EQ(scc().max_cores(), 48);
  EXPECT_EQ(scc().num_chips(), 1);
  EXPECT_EQ(scc().num_mem_controllers(), 4);
}

TEST(Topology, CoreToTileMapping) {
  EXPECT_EQ(scc().tile_of_core(0), 0);
  EXPECT_EQ(scc().tile_of_core(1), 0);
  EXPECT_EQ(scc().tile_of_core(2), 1);
  EXPECT_EQ(scc().tile_of_core(47), 23);
}

TEST(Topology, TileCoordinates) {
  EXPECT_EQ(scc().coord_of_tile(0), (TileCoord{0, 0}));
  EXPECT_EQ(scc().coord_of_tile(5), (TileCoord{5, 0}));
  EXPECT_EQ(scc().coord_of_tile(6), (TileCoord{0, 1}));
  EXPECT_EQ(scc().coord_of_tile(23), (TileCoord{5, 3}));
}

TEST(Topology, HopsAreManhattanDistance) {
  EXPECT_EQ(scc().hops({0, 0}, {0, 0}), 0);
  EXPECT_EQ(scc().hops({0, 0}, {5, 3}), 8);
  EXPECT_EQ(scc().hops({2, 1}, {4, 3}), 4);
  EXPECT_EQ(scc().hops({4, 3}, {2, 1}), 4);  // symmetric
}

TEST(Topology, SameTileCoresAreZeroHops) {
  EXPECT_EQ(scc().hops_between_cores(0, 1), 0);
  EXPECT_EQ(scc().hops_between_cores(46, 47), 0);
}

TEST(Topology, PaperPingPongPairDistance) {
  // The paper's Figure 7 benchmark uses cores 0 and 30 "with a distance
  // of 5 hops". Core 0 -> tile 0 = (0,0); core 30 -> tile 15 = (3,2);
  // Manhattan distance = 5. Our topology must reproduce that exactly.
  EXPECT_EQ(scc().hops_between_cores(0, 30), 5);
}

TEST(Topology, MaxDistanceOnChip) {
  // Opposite mesh corners: (0,0) to (5,3) = 8 hops.
  EXPECT_EQ(scc().hops_between_cores(0, 47), 8);
}

TEST(Topology, NearestMcIsStable) {
  for (int core = 0; core < scc().max_cores(); ++core) {
    const int mc = scc().nearest_mc(core);
    ASSERT_GE(mc, 0);
    ASSERT_LT(mc, scc().num_mem_controllers());
    // No other MC may be strictly closer.
    const int h = scc().hops_core_to_mc(core, mc);
    for (int other = 0; other < scc().num_mem_controllers(); ++other) {
      EXPECT_LE(h, scc().hops_core_to_mc(core, other));
    }
  }
}

TEST(Topology, CornersMapToTheirOwnMc) {
  EXPECT_EQ(scc().nearest_mc(0), 0);    // tile (0,0)
  EXPECT_EQ(scc().nearest_mc(10), 1);   // core 10 -> tile 5 = (5,0)
  EXPECT_EQ(scc().nearest_mc(24), 2);   // core 24 -> tile 12 = (0,2)
  EXPECT_EQ(scc().nearest_mc(34), 3);   // core 34 -> tile 17 = (5,2)
}

// ---- non-SCC single-chip shapes -------------------------------------------

TEST(Topology, NonSccShapeGeometry) {
  TopologySpec spec;
  spec.tile_cols = 8;
  spec.tile_rows = 8;
  spec.cores_per_tile = 4;
  const Topology t(spec);
  EXPECT_EQ(t.max_cores(), 256);
  EXPECT_EQ(t.num_mem_controllers(), 4);
  EXPECT_EQ(t.tile_of_core(0), 0);
  EXPECT_EQ(t.tile_of_core(3), 0);
  EXPECT_EQ(t.tile_of_core(4), 1);
  EXPECT_EQ(t.tile_of_core(255), 63);
  EXPECT_EQ(t.coord_of_tile(63), (TileCoord{7, 7}));
  // Opposite corners of an 8x8 mesh.
  EXPECT_EQ(t.hops_between_cores(0, 255), 14);
  // MCs at local (0,0), (7,0), (0,4), (7,4).
  EXPECT_EQ(t.mem_controller_coord(0), (TileCoord{0, 0}));
  EXPECT_EQ(t.mem_controller_coord(1), (TileCoord{7, 0}));
  EXPECT_EQ(t.mem_controller_coord(2), (TileCoord{0, 4}));
  EXPECT_EQ(t.mem_controller_coord(3), (TileCoord{7, 4}));
}

// ---- multi-chip super-meshes ----------------------------------------------

TEST(Topology, TwoChipGridGeometry) {
  TopologySpec spec;  // two SCC dies side by side
  spec.chips_x = 2;
  const Topology t(spec);
  EXPECT_EQ(t.cols(), 12);
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.max_cores(), 96);
  EXPECT_EQ(t.num_chips(), 2);
  EXPECT_EQ(t.num_mem_controllers(), 8);
  // Core 48 is the first core of the second chip's first tile — which in
  // the row-major global mesh is tile (6,0).
  EXPECT_EQ(t.coord_of_core(48), (TileCoord{6, 0}));
  // Chip 1's MC 0 attaches at its local (0,0) = global (6,0).
  EXPECT_EQ(t.mem_controller_coord(4), (TileCoord{6, 0}));
  EXPECT_EQ(t.mem_controller_coord(5), (TileCoord{11, 0}));
  // A core on chip 1 prefers its own chip's controllers.
  const int mc48 = t.nearest_mc(48);
  EXPECT_GE(mc48, 4);
  EXPECT_LT(mc48, 8);
}

TEST(Topology, InterchipHopPenalty) {
  TopologySpec spec;
  spec.chips_x = 2;
  spec.interchip_hop_cost = 4;
  const Topology t(spec);
  // Tiles (5,0) and (6,0) are mesh neighbours but sit on different
  // chips: 1 Manhattan hop + the 4-hop boundary penalty.
  EXPECT_EQ(t.hops({5, 0}, {6, 0}), 5);
  // Same pair with the penalty disabled degenerates to plain Manhattan.
  spec.interchip_hop_cost = 0;
  const Topology flat(spec);
  EXPECT_EQ(flat.hops({5, 0}, {6, 0}), 1);
  // Intra-chip distances never pay the penalty.
  EXPECT_EQ(t.hops({0, 0}, {5, 3}), 8);
}

TEST(Topology, ForCoresGrowsNearSquareGrids) {
  EXPECT_EQ(TopologySpec::for_cores(48), TopologySpec{});
  const TopologySpec two = TopologySpec::for_cores(96);
  EXPECT_EQ(two.chips_x * two.chips_y, 2);
  const TopologySpec big = TopologySpec::for_cores(1024);
  EXPECT_GE(big.chips_x * big.chips_y * 48, 1024);
  const Topology t(big);
  EXPECT_GE(t.max_cores(), 1024);
  // Near-square: neither dimension more than twice the other.
  EXPECT_LE(big.chips_y, 2 * big.chips_x);
  EXPECT_LE(big.chips_x, 2 * big.chips_y);
}

TEST(Topology, ValidateConfigCatchesBadCounts) {
  ChipConfig cfg;
  EXPECT_EQ(validate_config(cfg), "");
  cfg.num_cores = 96;  // exceeds the default single die
  EXPECT_NE(validate_config(cfg), "");
  configure_cores(cfg, 96);
  EXPECT_EQ(validate_config(cfg), "");
  configure_cores(cfg, 1024);
  EXPECT_EQ(validate_config(cfg), "");
  cfg.num_cores = 2000;
  EXPECT_NE(validate_config(cfg), "");
}

TEST(Topology, ConfigureCoresKeepsSccDefaultsBelow48) {
  ChipConfig cfg;
  const ChipConfig before = cfg;
  configure_cores(cfg, 48);
  EXPECT_EQ(cfg.num_cores, before.num_cores);
  EXPECT_EQ(cfg.topology, before.topology);
  EXPECT_EQ(cfg.mpb_bytes, before.mpb_bytes);
}

// ---- AddrMap over the runtime topology ------------------------------------

TEST(AddrMap, DecodeSharedDram) {
  ChipConfig cfg;
  AddrMap map(cfg);
  const PhysTarget t = map.decode(kSharedBase + 100);
  EXPECT_EQ(t.kind, MemKind::kSharedDram);
  EXPECT_EQ(t.owner, 0);
  EXPECT_EQ(t.offset, 100u);
}

TEST(AddrMap, SharedDramQuartersMapToFourMcs) {
  ChipConfig cfg;
  AddrMap map(cfg);
  const u64 quarter = cfg.shared_dram_bytes / 4;
  for (int q = 0; q < 4; ++q) {
    EXPECT_EQ(map.decode(kSharedBase + q * quarter).owner, q);
    EXPECT_EQ(map.decode(kSharedBase + (q + 1) * quarter - 1).owner, q);
  }
}

TEST(AddrMap, DecodePrivateDram) {
  ChipConfig cfg;
  AddrMap map(cfg);
  const u64 base7 = map.private_base(7);
  const PhysTarget t = map.decode(base7 + 42);
  EXPECT_EQ(t.kind, MemKind::kPrivateDram);
  EXPECT_EQ(t.owner, Topology::scc_default().nearest_mc(7));
  EXPECT_EQ(t.offset, 7 * cfg.private_dram_bytes + 42);
}

TEST(AddrMap, DecodeMpb) {
  ChipConfig cfg;
  AddrMap map(cfg);
  const PhysTarget t = map.decode(map.mpb_base(30) + 17);
  EXPECT_EQ(t.kind, MemKind::kMpb);
  EXPECT_EQ(t.owner, 30);
  EXPECT_EQ(t.offset, 17u);
  EXPECT_EQ(map.mpb_owner(map.mpb_base(30) + 17), 30);
}

TEST(AddrMap, DecodeInvalid) {
  ChipConfig cfg;
  AddrMap map(cfg);
  EXPECT_EQ(map.decode(0xdead'0000'0000ull).kind, MemKind::kInvalid);
}

TEST(AddrMap, SharedRangeOfMcRoundTrips) {
  ChipConfig cfg;
  AddrMap map(cfg);
  const int nmc = map.topology().num_mem_controllers();
  for (int mc = 0; mc < nmc; ++mc) {
    const auto [lo, hi] = map.shared_range_of_mc(mc);
    EXPECT_LT(lo, hi);
    EXPECT_EQ(map.mc_of_shared_offset(lo), mc);
    EXPECT_EQ(map.mc_of_shared_offset(hi - 1), mc);
  }
}

TEST(AddrMap, MultiChipSharedDramStripesOverAllMcs) {
  ChipConfig cfg;
  configure_cores(cfg, 192);  // 4 chips, 16 MCs
  AddrMap map(cfg);
  const int nmc = map.topology().num_mem_controllers();
  EXPECT_EQ(nmc, 16);
  for (int mc = 0; mc < nmc; ++mc) {
    const auto [lo, hi] = map.shared_range_of_mc(mc);
    EXPECT_LT(lo, hi);
    EXPECT_EQ(map.mc_of_shared_offset(lo), mc);
  }
  // The TAS file covers the whole die set.
  const PhysTarget t = map.decode(map.tas_addr(191));
  EXPECT_EQ(t.kind, MemKind::kTas);
  EXPECT_EQ(t.owner, 191);
}

}  // namespace
}  // namespace msvm::scc
