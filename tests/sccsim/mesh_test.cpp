// Topology tests: core/tile mapping, hop distances, memory-controller and
// system-interface placement.
#include "sccsim/mesh.hpp"

#include <gtest/gtest.h>

#include "sccsim/addrmap.hpp"
#include "sccsim/config.hpp"

namespace msvm::scc {
namespace {

TEST(Mesh, CoreToTileMapping) {
  EXPECT_EQ(Mesh::tile_of_core(0), 0);
  EXPECT_EQ(Mesh::tile_of_core(1), 0);
  EXPECT_EQ(Mesh::tile_of_core(2), 1);
  EXPECT_EQ(Mesh::tile_of_core(47), 23);
}

TEST(Mesh, TileCoordinates) {
  EXPECT_EQ(Mesh::coord_of_tile(0), (TileCoord{0, 0}));
  EXPECT_EQ(Mesh::coord_of_tile(5), (TileCoord{5, 0}));
  EXPECT_EQ(Mesh::coord_of_tile(6), (TileCoord{0, 1}));
  EXPECT_EQ(Mesh::coord_of_tile(23), (TileCoord{5, 3}));
}

TEST(Mesh, HopsAreManhattanDistance) {
  EXPECT_EQ(Mesh::hops({0, 0}, {0, 0}), 0);
  EXPECT_EQ(Mesh::hops({0, 0}, {5, 3}), 8);
  EXPECT_EQ(Mesh::hops({2, 1}, {4, 3}), 4);
  EXPECT_EQ(Mesh::hops({4, 3}, {2, 1}), 4);  // symmetric
}

TEST(Mesh, SameTileCoresAreZeroHops) {
  EXPECT_EQ(Mesh::hops_between_cores(0, 1), 0);
  EXPECT_EQ(Mesh::hops_between_cores(46, 47), 0);
}

TEST(Mesh, PaperPingPongPairDistance) {
  // The paper's Figure 7 benchmark uses cores 0 and 30 "with a distance
  // of 5 hops". Core 0 -> tile 0 = (0,0); core 30 -> tile 15 = (3,2);
  // Manhattan distance = 5. Our topology must reproduce that exactly.
  EXPECT_EQ(Mesh::hops_between_cores(0, 30), 5);
}

TEST(Mesh, MaxDistanceOnChip) {
  // Opposite mesh corners: (0,0) to (5,3) = 8 hops.
  EXPECT_EQ(Mesh::hops_between_cores(0, 47), 8);
}

TEST(Mesh, NearestMcIsStable) {
  for (int core = 0; core < Mesh::kMaxCores; ++core) {
    const int mc = Mesh::nearest_mc(core);
    ASSERT_GE(mc, 0);
    ASSERT_LT(mc, Mesh::kNumMemControllers);
    // No other MC may be strictly closer.
    const int h = Mesh::hops_core_to_mc(core, mc);
    for (int other = 0; other < Mesh::kNumMemControllers; ++other) {
      EXPECT_LE(h, Mesh::hops_core_to_mc(core, other));
    }
  }
}

TEST(Mesh, CornersMapToTheirOwnMc) {
  EXPECT_EQ(Mesh::nearest_mc(0), 0);    // tile (0,0)
  EXPECT_EQ(Mesh::nearest_mc(10), 1);   // core 10 -> tile 5 = (5,0)
  EXPECT_EQ(Mesh::nearest_mc(24), 2);   // core 24 -> tile 12 = (0,2)
  EXPECT_EQ(Mesh::nearest_mc(34), 3);   // core 34 -> tile 17 = (5,2)
}

TEST(AddrMap, DecodeSharedDram) {
  ChipConfig cfg;
  AddrMap map(cfg);
  const PhysTarget t = map.decode(kSharedBase + 100);
  EXPECT_EQ(t.kind, MemKind::kSharedDram);
  EXPECT_EQ(t.owner, 0);
  EXPECT_EQ(t.offset, 100u);
}

TEST(AddrMap, SharedDramQuartersMapToFourMcs) {
  ChipConfig cfg;
  AddrMap map(cfg);
  const u64 quarter = cfg.shared_dram_bytes / 4;
  for (int q = 0; q < 4; ++q) {
    EXPECT_EQ(map.decode(kSharedBase + q * quarter).owner, q);
    EXPECT_EQ(map.decode(kSharedBase + (q + 1) * quarter - 1).owner, q);
  }
}

TEST(AddrMap, DecodePrivateDram) {
  ChipConfig cfg;
  AddrMap map(cfg);
  const u64 base7 = map.private_base(7);
  const PhysTarget t = map.decode(base7 + 42);
  EXPECT_EQ(t.kind, MemKind::kPrivateDram);
  EXPECT_EQ(t.owner, Mesh::nearest_mc(7));
  EXPECT_EQ(t.offset, 7 * cfg.private_dram_bytes + 42);
}

TEST(AddrMap, DecodeMpb) {
  ChipConfig cfg;
  AddrMap map(cfg);
  const PhysTarget t = map.decode(map.mpb_base(30) + 17);
  EXPECT_EQ(t.kind, MemKind::kMpb);
  EXPECT_EQ(t.owner, 30);
  EXPECT_EQ(t.offset, 17u);
  EXPECT_EQ(map.mpb_owner(map.mpb_base(30) + 17), 30);
}

TEST(AddrMap, DecodeInvalid) {
  ChipConfig cfg;
  AddrMap map(cfg);
  EXPECT_EQ(map.decode(0xdead'0000'0000ull).kind, MemKind::kInvalid);
}

TEST(AddrMap, SharedRangeOfMcRoundTrips) {
  ChipConfig cfg;
  AddrMap map(cfg);
  for (int mc = 0; mc < Mesh::kNumMemControllers; ++mc) {
    const auto [lo, hi] = map.shared_range_of_mc(mc);
    EXPECT_LT(lo, hi);
    EXPECT_EQ(map.mc_of_shared_offset(lo), mc);
    EXPECT_EQ(map.mc_of_shared_offset(hi - 1), mc);
  }
}

}  // namespace
}  // namespace msvm::scc
