// Pins the invariant the inlined L1-hit fast path (Core::vread_fast /
// vwrite_fast) must uphold: a hit taken on the fast path is cycle- and
// counter-identical to the same hit walked through the full slow path,
// and every condition the fast path cannot handle really does fall back
// (straddles, WCB overlaps, boundary proximity, interrupt delivery).
#include "sccsim/chip.hpp"

#include <gtest/gtest.h>

namespace msvm::scc {
namespace {

ChipConfig small_config() {
  ChipConfig cfg;
  cfg.num_cores = 2;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  return cfg;
}

void map_page(Core& core, u64 vaddr, u64 frame_paddr, bool writable,
              bool mpbt) {
  Pte pte;
  pte.frame_paddr = frame_paddr;
  pte.present = true;
  pte.writable = writable;
  pte.mpbt = mpbt;
  core.pagetable().map(vaddr, pte);
}

TEST(CoreFastPath, HitCostsExactlyTheModelledLatency) {
  Chip chip(small_config());
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, true);
    (void)c.vload<u64>(kSvmVBase);  // warm the line (slow path, miss)
    const u64 hits0 = c.counters().l1_hits;
    const u64 loads0 = c.counters().loads;
    const u64 tlb0 = c.counters().tlb_hits;
    // Every warm load must cost exactly l1_hit — the fast path charges
    // the same single latency the slow-path hit does, nothing else.
    for (int i = 0; i < 100; ++i) {
      const TimePs t0 = c.now();
      (void)c.vload<u64>(kSvmVBase);
      EXPECT_EQ(c.now() - t0, chip.latency().l1_hit());
    }
    EXPECT_EQ(c.counters().l1_hits, hits0 + 100);
    EXPECT_EQ(c.counters().loads, loads0 + 100);
    EXPECT_EQ(c.counters().tlb_hits, tlb0 + 100);
  });
  chip.run();
}

TEST(CoreFastPath, StoreMergeCostsStoreHitPlusWcbMerge) {
  Chip chip(small_config());
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, true);
    (void)c.vload<u64>(kSvmVBase);  // line present in L1
    const u64 merges0 = c.counters().wcb_merges;
    // Same-line stores with the line in L1: store_hit + wcb_merge.
    for (int i = 0; i < 50; ++i) {
      const TimePs t0 = c.now();
      c.vstore<u64>(kSvmVBase + static_cast<u64>(i % 4) * 8, u64{1} << i);
      EXPECT_EQ(c.now() - t0,
                chip.latency().store_hit() + chip.latency().wcb_merge());
    }
    EXPECT_EQ(c.counters().wcb_merges, merges0 + 50);
  });
  chip.run();
}

TEST(CoreFastPath, StraddlingAccessFallsBackAndStaysCorrect) {
  Chip chip(small_config());
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, true);
    const u32 line = chip.config().line_bytes;
    // A u64 spanning the line boundary cannot take the fast path; the
    // slow path must still produce the right bytes.
    c.vstore<u64>(kSvmVBase + line - 4, 0x1122334455667788ull);
    c.flush_wcb();
    EXPECT_EQ(c.vload<u64>(kSvmVBase + line - 4), 0x1122334455667788ull);
  });
  chip.run();
}

TEST(CoreFastPath, WcbOverlapIsObservedByLoads) {
  Chip chip(small_config());
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, true);
    (void)c.vload<u64>(kSvmVBase);  // warm: later loads are L1 hits
    // The store sits in the WCB (not yet flushed). A fast-path load that
    // ignored the buffered bytes would return the stale line — the
    // overlap check must force the slow path's forwarding.
    c.vstore<u64>(kSvmVBase, 0xdeadbeefcafef00dull);
    EXPECT_EQ(c.vload<u64>(kSvmVBase), 0xdeadbeefcafef00dull);
  });
  chip.run();
}

TEST(CoreFastPath, TimerInterruptsStillFireUnderHitLoops) {
  // The fast path skips the per-access boundary machinery only when the
  // access cannot reach the next boundary; a long loop of pure L1 hits
  // must therefore still cross boundaries and deliver timer interrupts.
  Chip chip(small_config());
  int timer_fires = 0;
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, true, true);
    c.set_timer_handler([&](Core&) { ++timer_fires; });
    (void)c.vload<u64>(kSvmVBase);  // warm
    // Enough warm hits to span several timer periods of virtual time.
    const TimePs period_ps =
        static_cast<TimePs>(chip.config().timer_period_us) * 1'000'000;
    const TimePs t_end = c.now() + 3 * period_ps;
    while (c.now() < t_end) {
      (void)c.vload<u64>(kSvmVBase);
    }
  });
  chip.run();
  EXPECT_GE(timer_fires, 2);
}

TEST(CoreFastPath, ReadOnlyPageStoreFaults) {
  Chip chip(small_config());
  int faults = 0;
  chip.spawn_program(0, [&](Core& c) {
    map_page(c, kSvmVBase, kSharedBase, /*writable=*/false, true);
    (void)c.vload<u64>(kSvmVBase);  // read is fine (and warms the line)
    c.set_fault_handler([&](Core& core, u64 vaddr, bool is_write) {
      ++faults;
      EXPECT_TRUE(is_write);
      // Resolve the fault: upgrade the page so the retry succeeds.
      core.pagetable().update(vaddr, [](Pte& p) { p.writable = true; });
    });
    c.vstore<u64>(kSvmVBase, 7);  // must fault despite the warm line
    EXPECT_EQ(c.vload<u64>(kSvmVBase), 7u);
  });
  chip.run();
  EXPECT_EQ(faults, 1);
}

}  // namespace
}  // namespace msvm::scc
