// Unit tests for the latency model: composition of the clock domains,
// monotonicity in distance, and the read/write asymmetry (posted
// stores) the Figure 9 reproduction depends on.
#include "sccsim/latency.hpp"

#include <gtest/gtest.h>

namespace msvm::scc {
namespace {

TEST(Latency, ClockDomainPeriods) {
  ChipConfig cfg;  // 533 / 800 / 800 MHz
  LatencyModel lat(cfg);
  EXPECT_EQ(lat.core_cycles(1), 1876u);
  EXPECT_EQ(lat.mesh_cycles(1), 1250u);
  EXPECT_EQ(lat.dram_cycles(1), 1250u);
  EXPECT_EQ(lat.core_cycles(100), 187600u);
}

TEST(Latency, HierarchyOrdering) {
  ChipConfig cfg;
  LatencyModel lat(cfg);
  // L1 << L2 << MPB(0 hops) < DRAM(0 hops): the ordering every paper
  // claim rests on.
  EXPECT_LT(lat.l1_hit(), lat.l2_hit());
  EXPECT_LT(lat.l2_hit(), lat.dram_access(0));
  EXPECT_LT(lat.mpb_access(0), lat.dram_access(0));
}

TEST(Latency, MonotoneInHops) {
  ChipConfig cfg;
  LatencyModel lat(cfg);
  for (int h = 0; h < 8; ++h) {
    EXPECT_LT(lat.mpb_access(h), lat.mpb_access(h + 1));
    EXPECT_LT(lat.dram_access(h), lat.dram_access(h + 1));
    EXPECT_LT(lat.tas_access(h), lat.tas_access(h + 1));
    EXPECT_LT(lat.gic_access(h), lat.gic_access(h + 1));
  }
}

TEST(Latency, PerHopGradientIsLinear) {
  ChipConfig cfg;
  LatencyModel lat(cfg);
  const TimePs d1 = lat.mpb_access(1) - lat.mpb_access(0);
  const TimePs d2 = lat.mpb_access(5) - lat.mpb_access(4);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, lat.mesh_round_trip(1));
}

TEST(Latency, PostedStoresAreCheaperThanLoads) {
  ChipConfig cfg;
  LatencyModel lat(cfg);
  for (int h = 0; h <= 8; ++h) {
    EXPECT_LT(lat.dram_write(h), lat.dram_access(h)) << h << " hops";
    EXPECT_LT(lat.mpb_write(h), lat.mpb_access(h) + 1) << h << " hops";
  }
  // One-way vs round trip: the write's mesh share is half the read's.
  EXPECT_EQ(lat.mesh_one_way(4) * 2, lat.mesh_round_trip(4));
}

TEST(Latency, DramReadMatchesDocumentedApproximation) {
  ChipConfig cfg;
  LatencyModel lat(cfg);
  // 60 core cycles + 110 DRAM cycles at 0 hops ~ 250 ns.
  const double ns = static_cast<double>(lat.dram_access(0)) / 1000.0;
  EXPECT_GT(ns, 200.0);
  EXPECT_LT(ns, 300.0);
}

TEST(Latency, FrequencyScalingAffectsCoreShareOnly) {
  ChipConfig slow;
  slow.core_mhz = 200;
  ChipConfig fast;
  fast.core_mhz = 800;
  LatencyModel lat_slow(slow);
  LatencyModel lat_fast(fast);
  // Core-cycle costs scale with the core clock...
  EXPECT_GT(lat_slow.l2_hit(), lat_fast.l2_hit());
  // ...but the mesh share does not.
  EXPECT_EQ(lat_slow.mesh_round_trip(3), lat_fast.mesh_round_trip(3));
}

}  // namespace
}  // namespace msvm::scc
