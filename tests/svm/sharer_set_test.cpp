// SharerSet and wide-directory tests: the inline-word encoding at SCC
// widths, the spilled multi-word encoding at 65 and 1024 cores, and the
// DirEntry round-trip through both the narrow (single packed word) and
// wide (flags word + sharer words) MetaStore serialisations.
//
// Links the protocol library only — the sharer set must stay free of
// simulator dependencies.
#include "svm/protocol/sharer_set.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "svm/protocol/meta.hpp"

namespace msvm::svm::proto {
namespace {

TEST(SharerSet, InlineWordAtSccWidth) {
  SharerSet s(48);
  EXPECT_EQ(s.num_words(), 1);
  EXPECT_TRUE(s.none());
  s.set(0);
  s.set(47);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(47));
  EXPECT_FALSE(s.test(23));
  EXPECT_EQ(s.count(), 2);
  EXPECT_EQ(s.word(0), (u64{1} << 47) | 1);
  s.clear(0);
  EXPECT_EQ(s.count(), 1);
  // Out-of-width ids are ignored, not UB.
  s.set(48);
  s.set(-1);
  EXPECT_EQ(s.count(), 1);
  EXPECT_FALSE(s.test(48));
}

TEST(SharerSet, SpillsAtSixtyFive) {
  SharerSet s(65);
  EXPECT_EQ(s.num_words(), 2);
  s.set(63);
  s.set(64);  // first bit of the second word
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_EQ(s.count(), 2);
  EXPECT_EQ(s.word(0), u64{1} << 63);
  EXPECT_EQ(s.word(1), u64{1});
  s.clear(63);
  EXPECT_FALSE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.any());
  s.clear(64);
  EXPECT_TRUE(s.none());
}

TEST(SharerSet, WordRoundTripAtSixtyFive) {
  // Serialise through word()/set_word() — the exact path the wide
  // MetaStore uses — and get the same membership back.
  SharerSet a(65);
  a.set(0);
  a.set(31);
  a.set(63);
  a.set(64);
  SharerSet b(65);
  for (int w = 0; w < a.num_words(); ++w) b.set_word(w, a.word(w));
  for (int id = 0; id < 65; ++id) {
    EXPECT_EQ(b.test(id), a.test(id)) << "id " << id;
  }
  EXPECT_EQ(b.count(), 4);
}

TEST(SharerSet, SpillRoundTripAtTenTwentyFour) {
  SharerSet a(1024);
  EXPECT_EQ(a.num_words(), 16);
  const int members[] = {0, 1, 63, 64, 511, 512, 767, 1023};
  for (const int id : members) a.set(id);
  EXPECT_EQ(a.count(), 8);

  SharerSet b(1024);
  for (int w = 0; w < a.num_words(); ++w) b.set_word(w, a.word(w));
  std::vector<int> seen;
  b.for_each([&seen](int id) { seen.push_back(id); });
  EXPECT_EQ(seen, std::vector<int>(std::begin(members), std::end(members)))
      << "for_each must visit members in ascending order";

  b.reset();
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0);
}

// ---- DirEntry round-trips through MetaStore serialisations ----

/// Narrow store: the default single-word packing over a plain map.
class MapStore : public MetaStore {
 public:
  explicit MapStore(int width) : width_(width) {}
  int sharer_width() const override { return width_; }
  u64 load(MetaKind kind, u64 page) override {
    return words_[{static_cast<u64>(kind), page}];
  }
  void store(MetaKind kind, u64 page, u64 value) override {
    words_[{static_cast<u64>(kind), page}] = value;
  }

 private:
  int width_;
  std::map<std::pair<u64, u64>, u64> words_;
};

/// Wide store: flags word + ceil(width/64) sharer words per page, the
/// same format SvmRuntime lays out in simulated DRAM past 64 cores.
class WideMapStore : public MapStore {
 public:
  explicit WideMapStore(int width) : MapStore(width) {}
  DirEntry load_dir(u64 page) override {
    DirEntry e(sharer_width());
    e.shared = (row_[page].flags & 1) != 0;
    for (int w = 0; w < e.sharers.num_words(); ++w) {
      e.sharers.set_word(w, word_of(page, w));
    }
    return e;
  }
  void store_dir(u64 page, const DirEntry& e) override {
    row_[page].flags = e.shared ? 1 : 0;
    row_[page].words.assign(
        static_cast<std::size_t>(e.sharers.num_words()), 0);
    for (int w = 0; w < e.sharers.num_words(); ++w) {
      row_[page].words[static_cast<std::size_t>(w)] = e.sharers.word(w);
    }
  }

 private:
  u64 word_of(u64 page, int w) {
    const auto& v = row_[page].words;
    return static_cast<std::size_t>(w) < v.size()
               ? v[static_cast<std::size_t>(w)]
               : 0;
  }
  struct Row {
    u64 flags = 0;
    std::vector<u64> words;
  };
  std::map<u64, Row> row_;
};

TEST(DirEntry, NarrowPackingKeepsSharersUpToSixtyThree) {
  // The single-word encoding must carry sharer ids 48..62 — dies of up
  // to 63 cores still use it.
  MapStore store(63);
  MetaWord meta(store);
  DirEntry e(63);
  e.shared = true;
  e.sharers.set(4);
  e.sharers.set(62);
  meta.store_dir_entry(7, e);
  const DirEntry back = meta.dir_entry(7);
  EXPECT_TRUE(back.shared);
  EXPECT_TRUE(back.sharers.test(4));
  EXPECT_TRUE(back.sharers.test(62));
  EXPECT_EQ(back.sharers.count(), 2);
  // And the raw packed word is the historical layout.
  EXPECT_EQ(store.load(MetaKind::kDirectory, 7),
            kDirSharedBit | dir_bit(4) | dir_bit(62));
}

TEST(DirEntry, WideRoundTripAtSixtyFive) {
  WideMapStore store(65);
  MetaWord meta(store);
  DirEntry e(65);
  e.shared = true;
  e.sharers.set(63);
  e.sharers.set(64);
  meta.store_dir_entry(3, e);
  const DirEntry back = meta.dir_entry(3);
  EXPECT_TRUE(back.shared);
  EXPECT_TRUE(back.sharers.test(63));
  EXPECT_TRUE(back.sharers.test(64));
  EXPECT_EQ(back.sharers.count(), 2);
  meta.clear_dir(3);
  EXPECT_TRUE(meta.dir_entry(3).none());
}

TEST(DirEntry, WideRoundTripAtTenTwentyFour) {
  WideMapStore store(1024);
  MetaWord meta(store);
  DirEntry e(1024);
  e.shared = true;
  for (int id = 0; id < 1024; id += 129) e.sharers.set(id);
  meta.store_dir_entry(11, e);
  const DirEntry back = meta.dir_entry(11);
  EXPECT_TRUE(back.shared);
  EXPECT_EQ(back.sharers.count(), e.sharers.count());
  for (int id = 0; id < 1024; ++id) {
    ASSERT_EQ(back.sharers.test(id), e.sharers.test(id)) << "id " << id;
  }
}

}  // namespace
}  // namespace msvm::svm::proto
