// Acceptance tests for the data-integrity layer, driven through the full
// cluster stack. The kill-mosaic workload provides the end-to-end runs
// (inject -> detect -> account, with the coherence auditor attached);
// the hand-rolled read-replication clusters pin down the two repair
// paths — snoop repair from the sealer's write-through L1, and the
// background scrubber — with surgical host-side corruption of exactly
// one byte, so each test knows precisely which line is dirty and who
// still caches a clean copy.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "sim/faults.hpp"
#include "svm/svm.hpp"
#include "workloads/kill_mosaic.hpp"

namespace msvm::svm {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Node;
using workloads::KillMosaicParams;
using workloads::KillMosaicResult;

constexpr int kCores = 8;
constexpr u64 kPageBytes = 4096;

KillMosaicResult run_mosaic(const char* spec) {
  KillMosaicParams p;
  p.pages = 8;
  p.seed = 1234;
  p.audit = true;  // every run under the coherence auditor
  p.faults = sim::FaultPlan::parse(spec);
  return workloads::run_kill_mosaic(p, Model::kStrong, kCores);
}

TEST(SvmIntegrity, CleanIntegrityPlanStaysCorrectAndQuiet) {
  // Integrity armed but nothing injected: pages seal and verify on every
  // ownership handoff, yet no repair/poison/correction may ever fire —
  // the checking layer must be a pure observer on a clean run.
  const KillMosaicResult r = run_mosaic(
      "integrity=1,watchdog=500ms,sweep=2,retry=2ms");
  EXPECT_EQ(r.ranks_verified, kCores);
  EXPECT_EQ(r.ranks_lost, 0);
  EXPECT_EQ(r.slot_mismatches, 0u);
  EXPECT_GT(r.pages_sealed, 0u) << "no handoff ever took a seal";
  EXPECT_GT(r.seal_verifies, 0u) << "no migration ever checked a seal";
  EXPECT_EQ(r.seal_repairs, 0u);
  EXPECT_EQ(r.seal_refetches, 0u);
  EXPECT_EQ(r.pages_poisoned, 0u);
  EXPECT_EQ(r.meta_corrections, 0u);
  EXPECT_EQ(r.mail_corrupt_drops, 0u);
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
}

TEST(SvmIntegrity, MailFlipsAllDroppedAndRetransmitRecovers) {
  // Bit flips in MPB mail slots: the per-mail CRC must catch every one
  // (drops == flips, exactly — a flip that is not dropped was either
  // consumed corrupt or missed), and the retry machinery must keep the
  // run fully correct with no rank lost.
  const KillMosaicResult r = run_mosaic(
      "seed=7,flipmail=0.15,watchdog=500ms,sweep=2,degrade=6,retry=2ms");
  EXPECT_GT(r.mail_flips, 0u) << "plan failed to inject anything";
  EXPECT_EQ(r.mail_corrupt_drops, r.mail_flips);
  EXPECT_EQ(r.ranks_verified, kCores);
  EXPECT_EQ(r.ranks_lost, 0);
  EXPECT_EQ(r.slot_mismatches, 0u);
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
}

TEST(SvmIntegrity, MetaEccCorrectsEveryReloadedFlip) {
  // Bit flips in metadata words: the ECC shadow corrects each one on the
  // next load, so the protocol never acts on a flipped owner/scratchpad
  // word. Corrections can trail flips (a flipped word the run never
  // reloads stays latent) but can never exceed them.
  const KillMosaicResult r = run_mosaic(
      "seed=5,flipmeta=0.2,watchdog=500ms,sweep=2,retry=2ms");
  EXPECT_GT(r.meta_flips, 0u) << "plan failed to inject anything";
  EXPECT_GT(r.meta_corrections, 0u) << "no flip was ever corrected";
  EXPECT_LE(r.meta_corrections, r.meta_flips);
  EXPECT_EQ(r.ranks_verified, kCores);
  EXPECT_EQ(r.ranks_lost, 0);
  EXPECT_EQ(r.slot_mismatches, 0u);
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
}

TEST(SvmIntegrity, PageFlipsPoisonButNeverGoSilent) {
  // Every exclusive seal flipped: under the Strong model the owner's
  // caches were invalidated before the handoff, so there is no clean
  // copy and detect-or-die must poison. The contract is typed loss only:
  // zero wrong values, every lost rank aborted with the integrity error,
  // and the ledger accounts each flip at most once.
  const KillMosaicResult r = run_mosaic(
      "seed=3,flippage=1,watchdog=500ms,sweep=2,retry=2ms");
  EXPECT_GT(r.page_flips, 0u) << "plan failed to inject anything";
  EXPECT_EQ(r.slot_mismatches, 0u) << "a flipped page was read as good data";
  EXPECT_GT(r.pages_poisoned, 0u);
  EXPECT_GT(r.ranks_lost, 0);
  EXPECT_EQ(r.ranks_corrupt, r.ranks_lost);
  EXPECT_EQ(r.ranks_verified + r.ranks_lost, kCores);
  EXPECT_LE(r.seal_repairs + r.seal_refetches + r.pages_poisoned,
            r.page_flips);
  for (const auto& f : r.failures) {
    EXPECT_NE(f.what.find("integrity"), std::string::npos) << f.what;
  }
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
}

// ---------------------------------------------------------------------------
// Hand-rolled repair-path tests. Roles on a 4-core read-replication
// cluster sharing one page:
//   rank 0  writes the page, then re-reads it so its L1 holds the lines
//           (MPBT stores are no-write-allocate; only the read-back after
//           the WCB-flushing barrier fills the cache with clean data);
//   rank 1  takes a read replica, forcing rank 0 to seal the frame on
//           the Exclusive -> Shared downgrade (rank 0 is the sealer);
//   rank 0  then corrupts one byte of the DRAM frame host-side;
//   recovery is exercised either by rank 2's later replica join (verify
//   -> snoop repair) or by the background scrubber.

u64 slot_val(u64 i) { return 0xfeedfacecafe0000ull + i * 0x9e37ull; }

struct RepairRig {
  ClusterConfig cfg;
  explicit RepairRig(const char* spec) {
    cfg.chip.num_cores = 4;
    cfg.chip.shared_dram_bytes = 16 << 20;
    cfg.chip.private_dram_bytes = 1 << 20;
    cfg.chip.faults = sim::FaultPlan::parse(spec);
    cfg.svm.model = Model::kStrong;
    cfg.svm.read_replication = true;
  }
};

/// Flips one bit of byte `off` of the DRAM frame backing `base`. The
/// frame number comes from the ECC shadow (golden host-side copy of the
/// scratchpad word), the same source the scrubber trusts.
void corrupt_frame_byte(Cluster& cl, u64 base, u64 off) {
  SvmDomain& dom = cl.domain();
  const u64 page =
      (base - dom.vbase()) / kPageBytes + dom.page_index_base();
  const u64 entry = dom.meta_shadow.at(dom.scratchpad_entry_paddr(page));
  const u16 frame = static_cast<u16>(entry) & proto::kFrameMask;
  const u64 paddr = dom.frame_paddr(frame) + off;
  u8 byte = 0;
  cl.chip().memory().read(paddr, &byte, 1);
  byte ^= 0x40;
  cl.chip().memory().write(paddr, &byte, 1);
}

struct IntegritySums {
  u64 sealed = 0, verifies = 0, repairs = 0, refetches = 0, poisoned = 0;
};

IntegritySums sum_stats(Cluster& cl) {
  IntegritySums t;
  for (const int c : cl.members()) {
    const SvmStats& s = cl.node(c).svm().stats();
    t.sealed += s.pages_sealed;
    t.verifies += s.seal_verifies;
    t.repairs += s.seal_repairs;
    t.refetches += s.seal_refetches;
    t.poisoned += s.pages_poisoned;
  }
  return t;
}

TEST(SvmIntegrity, SnoopRepairServesCleanCopyFromSealersCache) {
  RepairRig rig("integrity=1,watchdog=500ms,sweep=2,retry=2ms");
  Cluster cl(rig.cfg);

  std::vector<u64> got(8, 0);
  cl.run([&](Node& n) {
    Svm& svm = n.svm();
    const int rank = n.rank();
    const u64 base = svm.alloc(kPageBytes);
    svm.barrier();
    if (rank == 0) {
      for (u64 i = 0; i < 8; ++i) svm.write<u64>(base + i * 8, slot_val(i));
    }
    svm.barrier();
    if (rank == 0) {
      for (u64 i = 0; i < 8; ++i) (void)svm.read<u64>(base + i * 8);
    }
    svm.barrier();
    if (rank == 1) (void)svm.read<u64>(base);  // downgrade: rank 0 seals
    svm.barrier();
    if (rank == 0) corrupt_frame_byte(cl, base, 3);
    svm.barrier();
    if (rank == 2) {
      // Replica join verifies the seal, finds the flipped byte, and must
      // rebuild the frame from rank 0's still-clean L1 lines.
      for (u64 i = 0; i < 8; ++i) got[i] = svm.read<u64>(base + i * 8);
    }
    svm.barrier();
  });

  EXPECT_TRUE(cl.failures().empty());
  for (u64 i = 0; i < 8; ++i) {
    EXPECT_EQ(got[i], slot_val(i)) << "slot " << i;
  }
  const IntegritySums t = sum_stats(cl);
  EXPECT_GE(t.sealed, 1u);
  EXPECT_GE(t.verifies, 2u);  // rank 1's clean join + rank 2's dirty one
  EXPECT_EQ(t.repairs, 1u) << "repair did not come from the sealer's L1";
  EXPECT_EQ(t.refetches, 0u);
  EXPECT_EQ(t.poisoned, 0u);
}

TEST(SvmIntegrity, ScrubberRepairsCorruptSealedPageInBackground) {
  RepairRig rig("integrity=1,scrub=100us,watchdog=500ms,sweep=2,retry=2ms");
  Cluster cl(rig.cfg);

  u64 repairs_before_touch = 0;
  u64 poisoned_before_touch = 0;
  std::vector<u64> got(8, 0);
  cl.run([&](Node& n) {
    Svm& svm = n.svm();
    scc::Core& core = n.core();
    const int rank = n.rank();
    const u64 base = svm.alloc(kPageBytes);
    svm.barrier();
    if (rank == 0) {
      for (u64 i = 0; i < 8; ++i) svm.write<u64>(base + i * 8, slot_val(i));
    }
    svm.barrier();
    if (rank == 0) {
      for (u64 i = 0; i < 8; ++i) (void)svm.read<u64>(base + i * 8);
    }
    svm.barrier();
    if (rank == 1) (void)svm.read<u64>(base);  // downgrade: rank 0 seals
    svm.barrier();
    if (rank == 0) corrupt_frame_byte(cl, base, 3);
    svm.barrier();
    // Nobody touches the page: only the scrubber can find the flip. The
    // per-core timer ticks every 1 ms, so spin a few periods of pure
    // compute to let a scrub pass land on the sealed page.
    const TimePs deadline = core.now() + 4 * kPsPerMs;
    while (core.now() < deadline) core.compute_cycles(10000);
    svm.barrier();
    if (rank == 0) {
      const IntegritySums t = sum_stats(cl);
      repairs_before_touch = t.repairs + t.refetches;
      poisoned_before_touch = t.poisoned;
    }
    svm.barrier();
    if (rank == 2) {
      for (u64 i = 0; i < 8; ++i) got[i] = svm.read<u64>(base + i * 8);
    }
    svm.barrier();
  });

  EXPECT_TRUE(cl.failures().empty());
  EXPECT_GE(repairs_before_touch, 1u)
      << "scrubber never repaired the page before anyone touched it";
  EXPECT_EQ(poisoned_before_touch, 0u);
  for (u64 i = 0; i < 8; ++i) {
    EXPECT_EQ(got[i], slot_val(i)) << "slot " << i;
  }
  EXPECT_EQ(sum_stats(cl).poisoned, 0u);
}

TEST(SvmIntegrity, ScrubberPoisonsWhenNoCleanCopyExists) {
  RepairRig rig("integrity=1,scrub=100us,watchdog=500ms,sweep=2,retry=2ms");
  Cluster cl(rig.cfg);

  cl.run([&](Node& n) {
    Svm& svm = n.svm();
    scc::Core& core = n.core();
    const int rank = n.rank();
    const u64 base = svm.alloc(kPageBytes);
    svm.barrier();
    if (rank == 0) {
      for (u64 i = 0; i < 8; ++i) svm.write<u64>(base + i * 8, slot_val(i));
    }
    svm.barrier();
    if (rank == 0) {
      for (u64 i = 0; i < 8; ++i) (void)svm.read<u64>(base + i * 8);
    }
    svm.barrier();
    if (rank == 1) (void)svm.read<u64>(base);  // downgrade: rank 0 seals
    svm.barrier();
    // Flip a byte in a line no core ever cached (offset 2000 — only the
    // first 64 bytes were written and read back): snoop repair can fix
    // the lines it finds, but the final CRC still fails, so the scrubber
    // must poison the page from interrupt context without throwing.
    if (rank == 0) corrupt_frame_byte(cl, base, 2000);
    svm.barrier();
    const TimePs deadline = core.now() + 4 * kPsPerMs;
    while (core.now() < deadline) core.compute_cycles(10000);
    svm.barrier();
    // Deliberately nobody reads the page again: poisoning must stand on
    // its own, not ride on a later fault.
  });

  EXPECT_TRUE(cl.failures().empty())
      << "scrub-context poisoning must not throw into anyone";
  const IntegritySums t = sum_stats(cl);
  EXPECT_EQ(t.poisoned, 1u);
  EXPECT_EQ(t.repairs, 0u);
  EXPECT_EQ(t.refetches, 0u);
}

}  // namespace
}  // namespace msvm::svm
