// Table-driven protocol tests against the deterministic harness
// (protocol_harness.hpp): the same CoherencePolicy code that runs under
// the simulated chip is driven here with scripted message sequences and
// fault events — no fibers, no chip — so interleavings that are timing
// accidents in the full simulator are exact, repeatable scenarios here.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "protocol_harness.hpp"
#include "svm/protocol/policy.hpp"

namespace msvm::svm {
namespace {

using proto::u64;

using harness::Harness;
using harness::kPageBytes;
using harness::Model;
using proto::dir_bit;
using proto::HwEvent;
using proto::kDirSharedBit;
using proto::Msg;
using proto::MsgType;
using proto::PageState;
using proto::PolicyConfig;

// ---------------------------------------------------------------------------
// Strong single-owner model

TEST(ProtocolStrong, OwnershipTransferMovesDataAndState) {
  Harness h(2, Model::kStrong);
  h.seed_page(5, /*owner=*/0);
  const u64 addr = 5 * kPageBytes;

  h.write(0, addr, 7);  // owner writes; the byte sits in core 0's WCB
  h.write(1, addr + 1, 9);  // core 1 write-faults -> ownership transfer

  EXPECT_EQ(h.owner(5), 1);
  EXPECT_EQ(h.state_of(0, 5), PageState::kInvalid);
  EXPECT_EQ(h.state_of(1, 5), PageState::kOwnedRW);
  EXPECT_FALSE(h.mapped(0, 5));
  EXPECT_TRUE(h.writable(1, 5));
  // The serve flushed core 0's WCB before handing the page over, so the
  // new owner reads the old owner's data.
  EXPECT_EQ(h.read(1, addr), 7);
  EXPECT_EQ(h.read(1, addr + 1), 9);
  EXPECT_EQ(h.stats(0).ownership_serves, 1u);
  EXPECT_EQ(h.stats(1).ownership_acquires, 1u);
  EXPECT_GE(h.flushes(0), 1u);
  EXPECT_EQ(h.invalidates(0), 1u);  // CL1INVMB is part of the serve
  EXPECT_EQ(h.hw(1, HwEvent::kMailRoundtrip), 1u);
}

TEST(ProtocolStrong, FastPathRemapsWithoutAnyTraffic) {
  Harness h(2, Model::kStrong);
  h.seed_page(3, /*owner=*/0);
  h.drop_mapping(0, 3);  // what unprotect / next_touch do

  h.write(0, 3 * kPageBytes, 1);

  EXPECT_EQ(h.stats(0).ownership_acquires, 1u);
  EXPECT_EQ(h.hw(0, HwEvent::kMailRoundtrip), 0u);
  EXPECT_EQ(h.inbox_size(0), 0u);
  EXPECT_EQ(h.inbox_size(1), 0u);
  EXPECT_EQ(h.state_of(0, 3), PageState::kOwnedRW);
  // Exactly one modelled software step, no round-trip cost.
  EXPECT_EQ(h.cost(0), h.policy(0).config().ownership_software_cycles);
}

// Two write faults contending for one page, with a third core as the
// initial owner: core 1's request is already in flight when core 0
// faults, so the owner serves core 1 first and core 0's request has to
// chase the moving owner through a forward.
TEST(ProtocolStrong, ConcurrentWriteFaultsChaseThroughForward) {
  Harness h(3, Model::kStrong);
  h.seed_page(7, /*owner=*/2);
  h.inject(2, Msg{MsgType::kOwnershipReq, 7, /*requester=*/1});

  h.run_fault(0, 7, /*is_write=*/true);

  // Dispatch order (deterministic): owner 2 serves the in-flight request
  // from core 1 first, then forwards core 0's request to the new owner 1,
  // which serves it.
  EXPECT_EQ(h.owner(7), 0);
  EXPECT_EQ(h.state_of(0, 7), PageState::kOwnedRW);
  EXPECT_EQ(h.stats(2).ownership_serves, 1u);
  EXPECT_EQ(h.stats(2).ownership_forwards, 1u);
  EXPECT_EQ(h.stats(1).ownership_serves, 1u);

  // Core 1 transiently owned the page without ever mapping it; its ACK
  // from core 2 is still queued. Now its fault flow runs: the stale ACK
  // satisfies the first wait, the re-verification loop notices the owner
  // vector still says core 0, and a second request converges.
  h.run_fault(1, 7, /*is_write=*/true);

  EXPECT_EQ(h.owner(7), 1);
  EXPECT_EQ(h.state_of(1, 7), PageState::kOwnedRW);
  EXPECT_EQ(h.state_of(0, 7), PageState::kInvalid);
  EXPECT_EQ(h.hw(1, HwEvent::kMailRoundtrip), 2u);  // stale + real ACK

  // The duplicate request still queued at core 0 is answered with a
  // plain confirmation (owner == requester), not another transfer.
  EXPECT_EQ(h.drain_all(), 1);
  EXPECT_EQ(h.stats(0).ownership_serves, 1u);
  EXPECT_EQ(h.owner(7), 1);
}

TEST(ProtocolStrong, PollingFallbackConvergesWithoutAcks) {
  PolicyConfig cfg;
  cfg.ack_via_mail = false;  // the authors' earlier owner-vector polling
  Harness h(2, Model::kStrong, cfg);
  h.seed_page(2, /*owner=*/0);

  h.run_fault(1, 2, /*is_write=*/true);

  EXPECT_EQ(h.owner(2), 1);
  EXPECT_EQ(h.state_of(1, 2), PageState::kOwnedRW);
  EXPECT_EQ(h.hw(1, HwEvent::kMailRoundtrip), 0u);
  EXPECT_EQ(h.inbox_size(0), 0u);
  EXPECT_EQ(h.inbox_size(1), 0u);
}

// ---------------------------------------------------------------------------
// Sabotage knobs, strong model: each removed step must be observable as
// wrong data (or a protocol violation), proving the step is load-bearing.

TEST(ProtocolStrongSabotage, SkippedServeFlushLosesTheOwnersWrites) {
  const auto transferred_value = [](PolicyConfig cfg) {
    Harness h(2, Model::kStrong, cfg);
    h.seed_page(1, /*owner=*/0);
    h.write(0, kPageBytes, 7);      // sits in core 0's WCB
    h.write(1, kPageBytes + 1, 1);  // forces the transfer
    return h.read(1, kPageBytes);
  };

  EXPECT_EQ(transferred_value(PolicyConfig{}), 7);

  PolicyConfig sabotaged;
  sabotaged.sabotage.skip_serve_wcb_flush = true;
  EXPECT_EQ(transferred_value(sabotaged), 0);  // the write never landed
}

TEST(ProtocolStrongSabotage, SkippedServeInvalidateReadsStaleCache) {
  const auto reread_value = [](PolicyConfig cfg) {
    Harness h(2, Model::kStrong, cfg);
    h.seed_page(4, /*owner=*/0);
    const u64 addr = 4 * kPageBytes;
    EXPECT_EQ(h.read(0, addr), 0);  // core 0 caches the stale byte
    h.write(1, addr, 9);            // ownership moves to core 1
    return h.read(0, addr);         // ownership moves back to core 0
  };

  EXPECT_EQ(reread_value(PolicyConfig{}), 9);

  PolicyConfig sabotaged;
  sabotaged.sabotage.skip_serve_cl1invmb = true;
  EXPECT_EQ(reread_value(sabotaged), 0);  // served from the stale L1
}

TEST(ProtocolStrongSabotage, SkippedServeUnmapAllowsRogueWrites) {
  PolicyConfig sabotaged;
  sabotaged.sabotage.skip_serve_unmap = true;
  Harness h(2, Model::kStrong, sabotaged);
  h.seed_page(6, /*owner=*/0);
  const u64 addr = 6 * kPageBytes;

  h.write(1, addr, 5);  // transfer: core 0 serves but keeps its mapping
  ASSERT_EQ(h.owner(6), 1);

  // Core 0 can now write without faulting: no acquire, no traffic, while
  // its own state machine says the page is Invalid.
  h.write(0, addr, 8);
  EXPECT_EQ(h.stats(0).ownership_acquires, 0u);
  EXPECT_EQ(h.state_of(0, 6), PageState::kInvalid);
  EXPECT_TRUE(h.writable(0, 6));
  EXPECT_EQ(h.inbox_size(1), 0u);

  // Without the knob the same write faults and transfers ownership back.
  Harness ctrl(2, Model::kStrong);
  ctrl.seed_page(6, /*owner=*/0);
  ctrl.write(1, addr, 5);
  ctrl.write(0, addr, 8);
  EXPECT_EQ(ctrl.stats(0).ownership_acquires, 1u);
  EXPECT_EQ(ctrl.owner(6), 0);
}

// ---------------------------------------------------------------------------
// Read replication (directory protocol)

TEST(ProtocolReadReplication, ReadFaultInstallsReplicaViaGrant) {
  Harness h(3, Model::kReadReplication);
  h.seed_page(9, /*owner=*/0);
  const u64 addr = 9 * kPageBytes;
  h.write(0, addr, 7);

  EXPECT_EQ(h.read(1, addr), 7);  // grant round-trip published the WCB

  EXPECT_EQ(h.state_of(0, 9), PageState::kSharedRO);
  EXPECT_FALSE(h.writable(0, 9));  // owner downgraded itself
  EXPECT_EQ(h.state_of(1, 9), PageState::kSharedRO);
  EXPECT_FALSE(h.writable(1, 9));
  EXPECT_EQ(h.dir(9), kDirSharedBit | dir_bit(1));
  EXPECT_EQ(h.owner(9), 0);  // ownership did NOT move
  EXPECT_EQ(h.stats(0).replica_grants, 1u);
  EXPECT_EQ(h.stats(1).replica_installs, 1u);
  EXPECT_EQ(h.hw(1, HwEvent::kMailRoundtrip), 1u);

  // Second reader joins the Shared page without contacting anyone.
  EXPECT_EQ(h.read(2, addr), 7);
  EXPECT_EQ(h.stats(2).replica_installs, 1u);
  EXPECT_EQ(h.hw(2, HwEvent::kMailRoundtrip), 0u);
  EXPECT_EQ(h.inbox_size(0), 0u);
  EXPECT_EQ(h.dir(9), kDirSharedBit | dir_bit(1) | dir_bit(2));
}

TEST(ProtocolReadReplication, WriteUpgradeInvalidatesSharerSet) {
  Harness h(3, Model::kReadReplication);
  h.seed_page(9, /*owner=*/0);
  const u64 addr = 9 * kPageBytes;
  h.write(0, addr, 7);
  ASSERT_EQ(h.read(1, addr), 7);
  ASSERT_EQ(h.read(2, addr), 7);

  // Sharer 1 upgrades: invalidate the other sharer, then take ownership.
  h.write(1, addr, 8);

  EXPECT_EQ(h.owner(9), 1);
  EXPECT_EQ(h.dir(9), 0u);  // Exclusive again
  EXPECT_EQ(h.state_of(1, 9), PageState::kOwnedRW);
  EXPECT_EQ(h.state_of(0, 9), PageState::kInvalid);
  EXPECT_EQ(h.state_of(2, 9), PageState::kInvalid);
  EXPECT_FALSE(h.mapped(2, 9));
  EXPECT_EQ(h.stats(1).invalidations_sent, 1u);
  EXPECT_EQ(h.stats(2).invalidations_received, 1u);

  // The invalidated reader re-faults and sees the upgrader's write.
  EXPECT_EQ(h.read(2, addr), 8);
  EXPECT_EQ(h.state_of(2, 9), PageState::kSharedRO);
}

TEST(ProtocolReadReplication, DuplicateInvalidationIsIdempotent) {
  Harness h(2, Model::kReadReplication);
  h.seed_page(1, /*owner=*/0);

  // An Inval for a page this core holds no replica of (e.g. delivered
  // after the replica was already dropped) is served without damage.
  h.inject(1, Msg{MsgType::kInval, 1, /*requester=*/0});
  EXPECT_EQ(h.drain_all(), 1);

  EXPECT_EQ(h.stats(1).invalidations_received, 1u);
  EXPECT_EQ(h.state_of(1, 1), PageState::kInvalid);
  EXPECT_EQ(h.inbox_size(0), 1u);  // the (stray) InvalAck
}

// ---------------------------------------------------------------------------
// Lazy Release Consistency: lock acquire/release via the policy hooks

TEST(ProtocolLrc, LockHandoffMovesDataThroughSyncHooks) {
  Harness h(2, Model::kLrc);

  h.write(0, 0, 1);   // inside core 0's critical section
  h.sync_release(0);  // lock release: WCB flush
  h.sync_acquire(1);  // lock acquire: CL1INVMB
  EXPECT_EQ(h.read(1, 0), 1);

  // Both cores hold writable mappings of the same page — LRC exchanges
  // no protocol messages at all.
  EXPECT_EQ(h.state_of(0, 0), PageState::kOwnedRW);
  EXPECT_EQ(h.state_of(1, 0), PageState::kOwnedRW);
  EXPECT_EQ(h.inbox_size(0), 0u);
  EXPECT_EQ(h.inbox_size(1), 0u);
  EXPECT_EQ(h.stats(0).ownership_acquires, 0u);
}

// The scripted release-before-acquire interleaving: an acquire that runs
// before the writer's release sees stale data (correct under LRC), and
// only the *next* acquire — ordered after the release — sees the write.
TEST(ProtocolLrc, ReleaseBeforeAcquireInterleaving) {
  Harness h(2, Model::kLrc);

  h.write(0, 0, 1);
  h.sync_acquire(1);  // acquire BEFORE the writer released
  EXPECT_EQ(h.read(1, 0), 0);  // stale by design: nothing released yet

  h.sync_release(0);  // the release lands after core 1's acquire
  // Still stale: core 1 cached the byte and has not re-acquired.
  EXPECT_EQ(h.read(1, 0), 0);

  h.sync_acquire(1);  // acquire ordered after the release
  EXPECT_EQ(h.read(1, 0), 1);
}

TEST(ProtocolLrcSabotage, SkippedReleaseFlushHidesTheWrite) {
  const auto handoff_value = [](PolicyConfig cfg) {
    Harness h(2, Model::kLrc, cfg);
    h.write(0, 0, 1);
    h.sync_release(0);
    h.sync_acquire(1);
    return h.read(1, 0);
  };

  EXPECT_EQ(handoff_value(PolicyConfig{}), 1);

  PolicyConfig sabotaged;
  sabotaged.sabotage.skip_release_flush = true;
  EXPECT_EQ(handoff_value(sabotaged), 0);
}

TEST(ProtocolLrcSabotage, SkippedAcquireInvalidateReadsStaleCache) {
  const auto handoff_value = [](PolicyConfig cfg) {
    Harness h(2, Model::kLrc, cfg);
    EXPECT_EQ(h.read(1, 0), 0);  // core 1 caches the stale byte
    h.write(0, 0, 1);
    h.sync_release(0);
    h.sync_acquire(1);
    return h.read(1, 0);
  };

  EXPECT_EQ(handoff_value(PolicyConfig{}), 1);

  PolicyConfig sabotaged;
  sabotaged.sabotage.skip_acquire_invalidate = true;
  EXPECT_EQ(handoff_value(sabotaged), 0);
}

// Diff-free WCB semantics: two cores write disjoint bytes of one page
// between synchronisation points; both writes survive because flushes
// publish dirty bytes only, not whole pages.
TEST(ProtocolLrc, DisjointWritesToOnePageMerge) {
  Harness h(3, Model::kLrc);

  h.write(0, 0, 1);
  h.write(1, 1, 2);
  h.sync_release(0);
  EXPECT_EQ(h.memory(0), 1);
  EXPECT_EQ(h.memory(1), 0);  // core 1 has not released yet
  h.sync_release(1);

  h.sync_acquire(2);
  EXPECT_EQ(h.read(2, 0), 1);
  EXPECT_EQ(h.read(2, 1), 2);
}

// ---------------------------------------------------------------------------
// Trace seam (TraceSink): the protocol layer narrates every fault,
// message, transition and metadata write to its environment. The bounded
// ring that used to live here moved to obs::EventRing (tests/obs).

TEST(ProtocolTrace, RecordsFaultsMessagesAndTransitions) {
  Harness h(2, Model::kStrong);
  h.seed_page(5, /*owner=*/0);
  h.write(1, 5 * kPageBytes, 9);

  const std::string requester = h.trace(1).dump("");
  EXPECT_NE(requester.find("page 5 write fault"), std::string::npos);
  EXPECT_NE(requester.find("send OwnershipReq -> core 0"),
            std::string::npos);
  EXPECT_NE(requester.find("recv OwnershipAck"), std::string::npos);
  EXPECT_NE(requester.find("Invalid -> OwnedRW"), std::string::npos);

  const std::string server = h.trace(0).dump("");
  EXPECT_NE(server.find("recv OwnershipReq"), std::string::npos);
  EXPECT_NE(server.find("OwnedRW -> Invalid"), std::string::npos);
  EXPECT_NE(server.find("owner := 0x1"), std::string::npos);
}

TEST(ProtocolTrace, MetaWordRecordsEveryWrite) {
  struct ToyStore final : proto::MetaStore {
    u64 words[3][16] = {};
    u64 load(proto::MetaKind kind, u64 page) override {
      return words[static_cast<int>(kind)][page];
    }
    void store(proto::MetaKind kind, u64 page, u64 value) override {
      words[static_cast<int>(kind)][page] = value;
    }
  };

  struct VecSink final : proto::TraceSink {
    std::vector<proto::TraceEvent> events;
    void trace(const proto::TraceEvent& e) override {
      events.push_back(e);
    }
  };

  ToyStore store;
  VecSink sink;
  proto::MetaWord meta(store, &sink);

  meta.set_owner(3, 7);
  meta.set_scratchpad(1, proto::kMigrateBit | 5);
  proto::DirEntry entry(store.sharer_width());
  entry.shared = true;
  entry.sharers.set(4);
  meta.store_dir_entry(2, entry);

  EXPECT_EQ(meta.owner(3), 7);
  EXPECT_EQ(meta.frame_of(1), 5);  // migrate bit masked off
  const proto::DirEntry back = meta.dir_entry(2);
  EXPECT_TRUE(back.shared);
  EXPECT_TRUE(back.sharers.test(4));
  EXPECT_EQ(back.sharers.count(), 1);
  // The packed single-word form round-trips through the raw store.
  EXPECT_EQ(store.words[static_cast<int>(proto::MetaKind::kDirectory)][2],
            kDirSharedBit | dir_bit(4));

  ASSERT_EQ(sink.events.size(), 3u);  // reads are not traced
  EXPECT_EQ(sink.events[0].kind, proto::TraceKind::kMetaWrite);
  EXPECT_EQ(sink.events[0].page, 3u);
  EXPECT_EQ(sink.events[0].a, static_cast<u64>(proto::MetaKind::kOwner));
  EXPECT_EQ(sink.events[0].b, 7u);
}

}  // namespace
}  // namespace msvm::svm
