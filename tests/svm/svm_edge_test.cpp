// Edge-case and misuse tests for the SVM subsystem: collective-call
// contract violations, protection round trips under both models,
// next-touch interactions, and capacity behaviour.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "svm/svm.hpp"

namespace msvm::svm {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Node;

ClusterConfig base_config(int cores, Model model) {
  ClusterConfig cfg;
  cfg.chip.num_cores = cores;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.model = model;
  return cfg;
}

using SvmEdgeDeath = ::testing::Test;

TEST(SvmEdgeDeath, MismatchedAllocSizesPanic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        Cluster cl(base_config(2, Model::kLazyRelease));
        cl.run([](Node& n) {
          // Collective contract violation: different sizes per rank.
          (void)n.svm().alloc(n.rank() == 0 ? 4096 : 8192);
        });
      },
      "mismatched sizes");
}

TEST(SvmEdgeDeath, ExhaustingVirtualCapacityPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        ClusterConfig cfg = base_config(2, Model::kLazyRelease);
        Cluster cl(cfg);
        cl.run([](Node& n) {
          // The 2-core chip's scratchpad holds 2 x 992 entries; ask for
          // more virtual pages than that.
          (void)n.svm().alloc(3000ull * 4096);
        });
      },
      "exceeds scratchpad capacity");
}

TEST(SvmEdge, AllocSmallerThanPageStillWorks) {
  Cluster cl(base_config(2, Model::kLazyRelease));
  u32 got = 0;
  cl.run([&](Node& n) {
    const u64 a = n.svm().alloc(16);  // rounds up to one page
    const u64 b = n.svm().alloc(16);
    EXPECT_EQ(b - a, 4096u);
    if (n.rank() == 0) n.svm().write<u32>(a, 7);
    n.svm().barrier();
    if (n.rank() == 1) got = n.svm().read<u32>(a);
    n.svm().barrier();
  });
  EXPECT_EQ(got, 7u);
}

TEST(SvmEdge, ReadOnlyUnderStrongModelThrowsOnWrite) {
  Cluster cl(base_config(2, Model::kStrong));
  bool threw = false;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u32>(base, 3);
    n.svm().barrier();
    n.svm().protect_readonly(base, 4096);
    if (n.rank() == 0) {
      // Even the previous owner may no longer write.
      try {
        n.svm().write<u32>(base, 4);
      } catch (const SvmProtectionError&) {
        threw = true;
      }
    }
    n.svm().barrier();
  });
  EXPECT_TRUE(threw);
}

TEST(SvmEdge, ProtectUnprotectCycleKeepsData) {
  Cluster cl(base_config(3, Model::kLazyRelease));
  bool ok = true;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(2 * 4096);
    if (n.rank() == 0) {
      for (u64 off = 0; off < 2 * 4096; off += 8) {
        n.svm().write<u64>(base + off, off * 3 + 1);
      }
    }
    n.svm().barrier();
    for (int cycle = 0; cycle < 3; ++cycle) {
      n.svm().protect_readonly(base, 2 * 4096);
      for (u64 off = 0; off < 2 * 4096; off += 512) {
        if (n.svm().read<u64>(base + off) != off * 3 + 1) ok = false;
      }
      n.svm().unprotect(base, 2 * 4096);
    }
    n.svm().barrier();
  });
  EXPECT_TRUE(ok);
}

TEST(SvmEdge, NextTouchUnderStrongModel) {
  ClusterConfig cfg = base_config(4, Model::kStrong);
  cfg.chip.num_cores = 48;
  cfg.members = {0, 1, 24, 47};
  Cluster cl(cfg);
  u32 after = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u32>(base, 0xabc);
    n.svm().barrier();
    n.svm().next_touch(base, 4096);
    if (n.core_id() == 47) {
      after = n.svm().read<u32>(base);  // migrates + acquires ownership
      n.svm().write<u32>(base, 0xdef);  // and can write it
    }
    n.svm().barrier();
  });
  EXPECT_EQ(after, 0xabcu);
  EXPECT_EQ(cl.node(47).svm().stats().migrations, 1u);
}

TEST(SvmEdge, NextTouchWithoutRetouchIsHarmless) {
  Cluster cl(base_config(2, Model::kLazyRelease));
  u32 got = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u32>(base, 5);
    n.svm().barrier();
    n.svm().next_touch(base, 4096);
    n.svm().barrier();  // nobody touches in between
    if (n.rank() == 0) got = n.svm().read<u32>(base);  // migrate to self
    n.svm().barrier();
  });
  EXPECT_EQ(got, 5u);
}

TEST(SvmEdge, ManyRegionsStayIndependent) {
  Cluster cl(base_config(2, Model::kLazyRelease));
  bool ok = true;
  cl.run([&](Node& n) {
    std::vector<u64> regions;
    for (int r = 0; r < 12; ++r) {
      regions.push_back(n.svm().alloc(4096 * (1 + r % 3)));
    }
    n.svm().barrier();
    if (n.rank() == 0) {
      for (std::size_t r = 0; r < regions.size(); ++r) {
        n.svm().write<u64>(regions[r], 1000 + r);
      }
    }
    n.svm().barrier();
    if (n.rank() == 1) {
      for (std::size_t r = 0; r < regions.size(); ++r) {
        if (n.svm().read<u64>(regions[r]) != 1000 + r) ok = false;
      }
    }
    n.svm().barrier();
  });
  EXPECT_TRUE(ok);
}

TEST(SvmEdge, StressManyPagesAcrossModels) {
  for (const Model model : {Model::kStrong, Model::kLazyRelease}) {
    Cluster cl(base_config(4, model));
    u64 sum = 0;
    constexpr u64 kPages = 100;
    cl.run([&](Node& n) {
      const u64 base = n.svm().alloc(kPages * 4096);
      n.svm().barrier();
      // Each rank touches a strided quarter of the pages.
      for (u64 p = static_cast<u64>(n.rank()); p < kPages; p += 4) {
        n.svm().write<u64>(base + p * 4096, p + 1);
      }
      n.svm().barrier();
      if (n.rank() == 0) {
        for (u64 p = 0; p < kPages; ++p) {
          sum += n.svm().read<u64>(base + p * 4096);
        }
      }
      n.svm().barrier();
    });
    EXPECT_EQ(sum, kPages * (kPages + 1) / 2) << "model "
                                              << static_cast<int>(model);
  }
}

}  // namespace
}  // namespace msvm::svm
