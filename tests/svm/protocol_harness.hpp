// Deterministic protocol harness — the second ProtocolEnv implementation
// (next to SvmRuntime): no fibers, no chip, no mailboxes. N policy
// instances share a plain metadata store and a byte-addressed memory
// model; protocol messages travel through per-core inboxes that the
// harness drains *deterministically* (lowest core id first) whenever a
// policy blocks in wait_match()/yield(). Scripted interleavings — a
// request already in flight, a duplicate invalidation, a release
// happening after a stale acquire — become table-driven unit tests.
//
// The memory model is the part that makes sabotage observable: each core
// has a write-combine buffer (dirty bytes, published by flush_wcb) and an
// L1 overlay (filled by reads, dropped by cl1invmb) over one shared
// memory map. Skipping a protocol step therefore produces *wrong data*,
// not just a missing counter — the same evidence the full-simulator
// sabotage tests rely on, at unit-test cost.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "svm/protocol/policy.hpp"

namespace msvm::svm::harness {

using proto::Msg;
using proto::MsgType;
using proto::PageState;
using proto::PolicyConfig;
using proto::u16;
using proto::u64;
using proto::u8;

/// Tiny pages keep test addresses readable: page p covers
/// [p * kPageBytes, (p + 1) * kPageBytes).
inline constexpr u64 kPageBytes = 64;

enum class Model { kStrong, kReadReplication, kLrc };

/// Thrown when an access cannot be resolved (still unmapped / read-only
/// after the policy ran) or when the scripted system deadlocks (a policy
/// blocks with no pending message anywhere).
struct HarnessError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Unbounded per-core event log — the harness's TraceSink backing store.
/// Tests inspect the raw events or a text dump (one to_string'd event
/// per line, each prefixed with `prefix`).
struct TraceLog {
  std::vector<proto::TraceEvent> events;

  void record(const proto::TraceEvent& e) { events.push_back(e); }
  std::size_t size() const { return events.size(); }

  std::string dump(const char* prefix = "  ") const {
    std::string out;
    for (const proto::TraceEvent& e : events) {
      out += prefix;
      out += proto::to_string(e);
      out += '\n';
    }
    return out;
  }
};

class Harness final : public proto::MetaStore {
 public:
  Harness(int num_cores, Model model, PolicyConfig cfg = {})
      : model_(model) {
    cores_.reserve(static_cast<std::size_t>(num_cores));
    for (int id = 0; id < num_cores; ++id) {
      cores_.push_back(std::make_unique<Core>(*this, id, model, cfg));
    }
  }

  // ---- scenario setup ------------------------------------------------

  /// Registers a page: frame number in the scratchpad, initial owner in
  /// the owner vector, and a writable mapping + OwnedRW state on the
  /// owner (as if it first-touched the page).
  void seed_page(u64 page, int owner) {
    scratchpad_[page] = static_cast<u16>(page + 1);  // any nonzero frame
    owner_[page] = static_cast<u16>(owner);
    dir_[page] = 0;
    Core& c = core(owner);
    c.pt[page] = Mapping{true};
    c.policy->note_mapped(page, /*writable=*/true, *c.env);
  }

  /// Queues a message into `dest`'s inbox without dispatching it — the
  /// "already in flight" ingredient of scripted races.
  void inject(int dest, const Msg& m) { core(dest).inbox.push_back(m); }

  /// Drops a core's mapping without telling its policy (what unprotect /
  /// next_touch do from outside the protocol).
  void drop_mapping(int id, u64 page) { core(id).pt.erase(page); }

  // ---- application-level accesses (fault on demand) ------------------

  u8 read(int id, u64 addr) {
    access(id, addr, /*is_write=*/false);
    Core& c = core(id);
    if (const auto wcb = c.wcb.find(addr); wcb != c.wcb.end()) {
      return wcb->second;
    }
    if (const auto l1 = c.l1.find(addr); l1 != c.l1.end()) {
      return l1->second;
    }
    const u8 v = mem_value(addr);
    c.l1[addr] = v;  // read fills the cache
    return v;
  }

  void write(int id, u64 addr, u8 value) {
    access(id, addr, /*is_write=*/true);
    Core& c = core(id);
    c.wcb[addr] = value;
    // The L1 is write-through: a cached line is updated in place, so the
    // core's own later reads see the store even after the WCB drains.
    if (c.l1.count(addr) != 0) c.l1[addr] = value;
  }

  // ---- direct protocol entry points ----------------------------------

  /// Runs the policy fault flow directly (page-level, no data access).
  void run_fault(int id, u64 page, bool is_write) {
    Core& c = core(id);
    c.trace.record(proto::TraceEvent{proto::TraceKind::kFault, page,
                                     is_write ? u64{1} : u64{0}, 0});
    c.policy->fault(page, frame_of(page), is_write, *c.env);
  }

  /// Synchronisation hooks as the Svm endpoint drives them (lock
  /// acquire/release, barrier entry/exit).
  void sync_acquire(int id) { core(id).policy->on_acquire(*core(id).env); }
  void sync_release(int id) { core(id).policy->on_release(*core(id).env); }

  /// Dispatches pending request-type messages until every inbox holds
  /// only unconsumed ACKs. Returns the number of messages dispatched.
  int drain_all() {
    int n = 0;
    while (dispatch_one()) ++n;
    return n;
  }

  // ---- inspection ----------------------------------------------------

  proto::CoherencePolicy& policy(int id) { return *core(id).policy; }
  /// The core's ProtocolEnv view — recovery tests call recover_page
  /// against it directly, outside any policy flow.
  proto::ProtocolEnv& env(int id) { return *core(id).env; }
  proto::SvmStats& stats(int id) { return core(id).stats; }
  TraceLog& trace(int id) { return core(id).trace; }
  PageState state_of(int id, u64 page) const {
    return cores_[static_cast<std::size_t>(id)]->policy->state_of(page);
  }
  u16 owner(u64 page) const {
    const auto it = owner_.find(page);
    return it == owner_.end() ? u16{0} : it->second;
  }
  u64 dir(u64 page) const {
    const auto it = dir_.find(page);
    return it == dir_.end() ? u64{0} : it->second;
  }
  bool mapped(int id, u64 page) const {
    return cores_[static_cast<std::size_t>(id)]->pt.count(page) != 0;
  }
  bool writable(int id, u64 page) const {
    const auto& pt = cores_[static_cast<std::size_t>(id)]->pt;
    const auto it = pt.find(page);
    return it != pt.end() && it->second.writable;
  }
  std::size_t inbox_size(int id) const {
    return cores_[static_cast<std::size_t>(id)]->inbox.size();
  }
  u64 flushes(int id) const { return core(id).flushes; }
  u64 invalidates(int id) const { return core(id).invmbs; }
  u64 cost(int id) const { return core(id).cost; }
  u64 hw(int id, proto::HwEvent e) const {
    return core(id).hw[static_cast<std::size_t>(e)];
  }
  /// The committed (post-flush) value at `addr` in shared memory.
  u8 memory(u64 addr) const { return mem_value(addr); }
  const std::string& last_warning() const { return last_warning_; }

  u16 frame_of(u64 page) const {
    const auto it = scratchpad_.find(page);
    return it == scratchpad_.end()
               ? u16{0}
               : static_cast<u16>(it->second & proto::kFrameMask);
  }

  // ---- proto::MetaStore (shared across all cores) --------------------

  u64 load(proto::MetaKind kind, u64 page) override {
    switch (kind) {
      case proto::MetaKind::kOwner: return owner(page);
      case proto::MetaKind::kScratchpad: {
        const auto it = scratchpad_.find(page);
        return it == scratchpad_.end() ? 0 : it->second;
      }
      case proto::MetaKind::kDirectory: return dir(page);
    }
    return 0;
  }

  void store(proto::MetaKind kind, u64 page, u64 value) override {
    switch (kind) {
      case proto::MetaKind::kOwner:
        owner_[page] = static_cast<u16>(value);
        return;
      case proto::MetaKind::kScratchpad:
        scratchpad_[page] = static_cast<u16>(value);
        return;
      case proto::MetaKind::kDirectory:
        dir_[page] = value;
        return;
    }
  }

 private:
  struct Mapping {
    bool writable = false;
  };

  class CoreEnv;

  struct Core {
    Core(Harness& h, int id, Model model, PolicyConfig cfg);

    std::unique_ptr<proto::CoherencePolicy> policy;
    TraceLog trace;
    proto::SvmStats stats;
    std::unique_ptr<CoreEnv> env;
    proto::MetaWord meta;

    std::deque<Msg> inbox;
    std::map<u64, Mapping> pt;
    std::map<u64, u8> wcb;  // dirty bytes awaiting flush
    std::map<u64, u8> l1;   // read-cached bytes
    u64 cost = 0;
    u64 flushes = 0;
    u64 invmbs = 0;
    u64 hw[3] = {0, 0, 0};
    int irq_depth = 0;
  };

  /// Per-core ProtocolEnv view onto the harness.
  class CoreEnv final : public proto::ProtocolEnv {
   public:
    CoreEnv(Harness& h, int id) : h_(h), id_(id) {}

    int self() const override { return id_; }
    proto::MetaWord& meta() override { return h_.core(id_).meta; }
    proto::SvmStats& stats() override { return h_.core(id_).stats; }
    void trace(const proto::TraceEvent& e) override {
      h_.core(id_).trace.record(e);
    }

    void send(int dest, const Msg& m) override {
      h_.core(id_).trace.record(
          proto::TraceEvent{proto::TraceKind::kMsgSend, m.page,
                            static_cast<u64>(m.type),
                            static_cast<u64>(dest)});
      h_.core(dest).inbox.push_back(m);
    }

    int multicast(const proto::SharerSet& dests, const Msg& m) override {
      h_.core(id_).trace.record(
          proto::TraceEvent{proto::TraceKind::kMsgSend, m.page,
                            static_cast<u64>(m.type), dests.word(0)});
      int n = 0;
      dests.for_each([&](int d) {
        if (d == id_ || d >= static_cast<int>(h_.cores_.size())) return;
        h_.cores_[static_cast<std::size_t>(d)]->inbox.push_back(m);
        ++n;
      });
      return n;
    }

    Msg wait_match(MsgType type, u64 page) override {
      return h_.wait_match(id_, type, page);
    }

    void yield() override { h_.yield_step(); }

    void flush_wcb() override {
      Core& c = h_.core(id_);
      for (const auto& [addr, v] : c.wcb) h_.mem_[addr] = v;
      c.wcb.clear();
      ++c.flushes;
    }

    void cl1invmb() override {
      Core& c = h_.core(id_);
      c.l1.clear();
      ++c.invmbs;
    }

    void map_page(u64 page, u16 frame, bool writable) override {
      (void)frame;  // data lives in the flat byte map, not in frames
      h_.core(id_).pt[page] = Mapping{writable};
    }

    void unmap_page(u64 page) override { h_.core(id_).pt.erase(page); }

    void downgrade_page(u64 page) override {
      auto& pt = h_.core(id_).pt;
      if (const auto it = pt.find(page); it != pt.end()) {
        it->second.writable = false;
      }
    }

    void transfer_lock(u64 page) override {
      const auto it = h_.lock_holder_.find(page);
      if (it != h_.lock_holder_.end()) {
        // Single-threaded harness: a second top-level flow taking a held
        // lock can never be released — a scripted-scenario bug.
        throw HarnessError("transfer lock deadlock on page " +
                           std::to_string(page));
      }
      h_.lock_holder_[page] = id_;
    }

    void transfer_unlock(u64 page) override {
      h_.lock_holder_.erase(page);
    }

    void irq_off() override { ++h_.core(id_).irq_depth; }
    void irq_on() override { --h_.core(id_).irq_depth; }

    void cost_cycles(proto::u32 cycles) override {
      h_.core(id_).cost += cycles;
    }

    void hw_count(proto::HwEvent event, u64 delta) override {
      h_.core(id_).hw[static_cast<std::size_t>(event)] += delta;
    }

    void warn(const char* message) override {
      h_.last_warning_ = message;
    }

   private:
    Harness& h_;
    int id_;
  };

  Core& core(int id) { return *cores_[static_cast<std::size_t>(id)]; }
  const Core& core(int id) const {
    return *cores_[static_cast<std::size_t>(id)];
  }

  u8 mem_value(u64 addr) const {
    const auto it = mem_.find(addr);
    return it == mem_.end() ? u8{0} : it->second;
  }

  static bool is_request(MsgType t) {
    return t == MsgType::kOwnershipReq || t == MsgType::kReadReq ||
           t == MsgType::kInval;
  }

  /// Delivers the first pending request-type message (lowest core id,
  /// oldest message first) to its policy. ACKs stay queued for
  /// wait_match. Returns false when no request is pending anywhere.
  bool dispatch_one() {
    if (dispatch_depth_ > 64) {
      throw HarnessError("protocol dispatch recursion exceeded 64");
    }
    for (auto& cp : cores_) {
      Core& c = *cp;
      for (auto it = c.inbox.begin(); it != c.inbox.end(); ++it) {
        if (!is_request(it->type)) continue;
        const Msg m = *it;
        c.inbox.erase(it);
        c.trace.record(proto::TraceEvent{proto::TraceKind::kMsgRecv,
                                         m.page, static_cast<u64>(m.type),
                                         static_cast<u64>(m.requester)});
        ++dispatch_depth_;
        c.policy->on_message(m, *c.env);
        --dispatch_depth_;
        return true;
      }
    }
    return false;
  }

  Msg wait_match(int id, MsgType type, u64 page) {
    Core& c = core(id);
    for (int guard = 0; guard < 100000; ++guard) {
      for (auto it = c.inbox.begin(); it != c.inbox.end(); ++it) {
        if (it->type != type || it->page != page) continue;
        const Msg m = *it;
        c.inbox.erase(it);
        c.trace.record(proto::TraceEvent{proto::TraceKind::kMsgRecv,
                                         m.page, static_cast<u64>(m.type),
                                         static_cast<u64>(m.requester)});
        return m;
      }
      if (!dispatch_one()) {
        throw HarnessError("deadlock: core " + std::to_string(id) +
                           " waits for " +
                           std::string(proto::to_string(type)) +
                           " on page " + std::to_string(page) +
                           " with no request pending anywhere");
      }
    }
    throw HarnessError("livelock in wait_match");
  }

  void yield_step() {
    if (dispatch_one()) {
      idle_yields_ = 0;
      return;
    }
    if (++idle_yields_ > 100000) {
      throw HarnessError("livelock: polling with no pending requests");
    }
  }

  void access(int id, u64 addr, bool is_write) {
    const u64 page = addr / kPageBytes;
    Core& c = core(id);
    const auto needs_fault = [&] {
      const auto it = c.pt.find(page);
      if (it == c.pt.end()) return true;
      return is_write && !it->second.writable;
    };
    if (needs_fault()) {
      run_fault(id, page, is_write);
      if (needs_fault()) {
        throw HarnessError("access to page " + std::to_string(page) +
                           " still unresolved after fault");
      }
    }
  }

  Model model_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::map<u64, u16> owner_;
  std::map<u64, u16> scratchpad_;
  std::map<u64, u64> dir_;
  std::map<u64, u8> mem_;
  std::map<u64, int> lock_holder_;
  std::string last_warning_;
  int dispatch_depth_ = 0;
  int idle_yields_ = 0;
};

inline Harness::Core::Core(Harness& h, int id, Model model,
                           PolicyConfig cfg)
    : env(std::make_unique<CoreEnv>(h, id)), meta(h, env.get()) {
  switch (model) {
    case Model::kStrong:
      policy = std::make_unique<proto::StrongOwnerPolicy>(cfg);
      break;
    case Model::kReadReplication:
      policy = std::make_unique<proto::ReadReplicationPolicy>(cfg);
      break;
    case Model::kLrc:
      policy = std::make_unique<proto::LrcPolicy>(cfg);
      break;
  }
}

}  // namespace msvm::svm::harness
