// Property tests over the SVM protocol matrix (model x mailbox mode x
// core count): a randomised lock-protected workload must produce the
// arithmetic reference result in every configuration, and the strong
// model's single-owner invariant must hold whenever the system is
// quiescent.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/rng.hpp"
#include "svm/svm.hpp"

namespace msvm::svm {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Node;

using MatrixParam = std::tuple<Model, bool /*use_ipi*/, int /*cores*/>;

class SvmMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(SvmMatrix, RandomLockedIncrementsSumExactly) {
  const auto [model, use_ipi, cores] = GetParam();
  constexpr u32 kCells = 64;   // u64 cells spread over 2 pages
  constexpr u32 kOpsPerCore = 300;
  constexpr u32 kStripes = 4;

  ClusterConfig cfg;
  cfg.chip.num_cores = cores;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.model = model;
  cfg.use_ipi = use_ipi;
  Cluster cl(cfg);

  // Reference: addition commutes, so the expected cell sums are
  // independent of the simulated interleaving.
  std::vector<u64> expect(kCells, 0);
  for (int r = 0; r < cores; ++r) {
    sim::Rng rng(1000 + static_cast<u64>(r));
    for (u32 op = 0; op < kOpsPerCore; ++op) {
      // Draw in the same order as the simulated workload (compound
      // assignment would sequence the RHS draw first).
      const u64 cell = rng.next_below(kCells);
      const u64 inc = rng.next_range(1, 9);
      expect[cell] += inc;
    }
  }

  std::vector<u64> got(kCells, 0);
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(kCells * 8 + 4096);
    n.svm().barrier();
    sim::Rng rng(1000 + static_cast<u64>(n.rank()));
    for (u32 op = 0; op < kOpsPerCore; ++op) {
      const u64 cell = rng.next_below(kCells);
      const u64 inc = rng.next_range(1, 9);
      const int stripe = static_cast<int>(cell % kStripes);
      n.svm().lock_acquire(stripe);
      const u64 cur = n.svm().read<u64>(base + cell * 8);
      n.svm().write<u64>(base + cell * 8, cur + inc);
      n.svm().lock_release(stripe);
    }
    n.svm().barrier();
    if (n.rank() == 0) {
      for (u32 c = 0; c < kCells; ++c) {
        got[c] = n.svm().read<u64>(base + c * 8);
      }
    }
    n.svm().barrier();
  });

  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolMatrix, SvmMatrix,
    ::testing::Combine(::testing::Values(Model::kStrong,
                                         Model::kLazyRelease),
                       ::testing::Bool(), ::testing::Values(2, 3, 5, 8)));

TEST(SvmInvariant, StrongModelNeverHasTwoMappingsAtQuiescence) {
  // After any barrier (a quiescent point), every SVM page may be mapped
  // present on at most one core under the strong model.
  constexpr int kCores = 6;
  constexpr u64 kPages = 8;
  ClusterConfig cfg;
  cfg.chip.num_cores = kCores;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.svm.model = Model::kStrong;
  Cluster cl(cfg);

  int violations = 0;
  u64 base_out = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(kPages * 4096);
    base_out = base;
    n.svm().barrier();
    sim::Rng rng(77 + static_cast<u64>(n.rank()));
    for (int round = 0; round < 6; ++round) {
      for (int op = 0; op < 20; ++op) {
        const u64 page = rng.next_below(kPages);
        n.svm().write<u32>(base + page * 4096 + 8 * n.rank(),
                           static_cast<u32>(op));
      }
      n.svm().barrier();
      // Quiescent: rank 0 audits every core's page table (host-side
      // introspection, no simulated cost).
      if (n.rank() == 0) {
        for (u64 page = 0; page < kPages; ++page) {
          int mapped = 0;
          for (int c = 0; c < kCores; ++c) {
            const scc::Pte* pte =
                cl.node(c).core().pagetable().find(base + page * 4096);
            if (pte != nullptr && pte->present) ++mapped;
          }
          if (mapped > 1) ++violations;
        }
      }
      n.svm().barrier();
    }
  });
  EXPECT_EQ(violations, 0);
}

TEST(SvmInvariant, OwnerVectorAlwaysNamesTheMappedCore) {
  // Companion invariant: whenever a core holds a present mapping at
  // quiescence, the owner vector must name exactly that core.
  constexpr int kCores = 4;
  constexpr u64 kPages = 4;
  ClusterConfig cfg;
  cfg.chip.num_cores = kCores;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.svm.model = Model::kStrong;
  Cluster cl(cfg);

  int mismatches = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(kPages * 4096);
    n.svm().barrier();
    sim::Rng rng(5 + static_cast<u64>(n.rank()));
    for (int op = 0; op < 40; ++op) {
      const u64 page = rng.next_below(kPages);
      n.svm().write<u32>(base + page * 4096, static_cast<u32>(op));
    }
    n.svm().barrier();
    if (n.rank() == 0) {
      for (u64 page = 0; page < kPages; ++page) {
        for (int c = 0; c < kCores; ++c) {
          const scc::Pte* pte =
              cl.node(c).core().pagetable().find(base + page * 4096);
          if (pte != nullptr && pte->present) {
            const u16 owner = n.core().pload<u16>(
                cl.domain().owner_entry_paddr(page),
                scc::MemPolicy::kUncached);
            if (owner != c) ++mismatches;
          }
        }
      }
    }
    n.svm().barrier();
  });
  EXPECT_EQ(mismatches, 0);
}

}  // namespace
}  // namespace msvm::svm
