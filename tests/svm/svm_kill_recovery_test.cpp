// Full-stack fail-stop acceptance: kill cores mid-protocol in the slot-
// mosaic workload and assert the outcome taxonomy the robustness layer
// guarantees — every surviving rank either verifies its own data or
// surfaces a typed SvmDataLossError; slot values are never silently
// wrong; and the always-on ShadowDirectory auditor sees zero invariant
// violations throughout boot, death, recovery, and drain.
#include <gtest/gtest.h>

#include <string>

#include "sim/faults.hpp"
#include "workloads/kill_mosaic.hpp"

namespace msvm::workloads {
namespace {

/// The recovery envelope every kill run needs: bounded waits (retry),
/// heartbeat leases for failure detection, and a watchdog so even an
/// unrecoverable wedge is a typed HangError rather than a silent spin.
sim::FaultPlan recovery_envelope(const std::string& kills) {
  return sim::FaultPlan::parse(
      "watchdog=500ms,sweep=2,degrade=6,retry=2ms,lease=500us," + kills);
}

KillMosaicParams params_for(const std::string& kills) {
  KillMosaicParams p;
  p.pages = 8;
  p.audit = true;
  p.faults = recovery_envelope(kills);
  return p;
}

/// The union taxonomy: dead ranks aside, every member is accounted for
/// as verified or typed-loss, with zero silent mismatches and a clean
/// audit. `dead` is the number of kills that land before completion.
void expect_accounted(const KillMosaicResult& r, int cores, int dead) {
  EXPECT_EQ(r.slot_mismatches, 0u) << "silently wrong data";
  EXPECT_EQ(r.ranks_verified + r.ranks_lost, cores - dead);
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
  EXPECT_GT(r.audit_events, 0u) << "auditor saw no protocol traffic";
}

TEST(KillRecovery, NoFaultControlRunIsFullyVerified) {
  KillMosaicParams p;
  p.pages = 8;
  p.audit = true;
  const KillMosaicResult r = run_kill_mosaic(p, svm::Model::kStrong, 6);
  EXPECT_EQ(r.ranks_verified, 6);
  EXPECT_EQ(r.ranks_lost, 0);
  EXPECT_EQ(r.slot_mismatches, 0u);
  EXPECT_EQ(r.recoveries, 0u);
  EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
  EXPECT_GT(r.audit_events, 0u);
}

TEST(KillRecovery, StrongSurvivesAnOwnerDeath) {
  // Sweep the kill across the run: an early kill lands in boot (the
  // victim owns nothing yet), a late one after its last release — but
  // somewhere in between core 3 dies as the recorded owner of pages the
  // survivors still need, which must surface as recovery or typed loss.
  u64 evidence = 0;
  for (const char* at : {"300us", "500us", "800us", "1000us"}) {
    const KillMosaicResult r = run_kill_mosaic(
        params_for(std::string("kill=3@") + at), svm::Model::kStrong, 8);
    EXPECT_EQ(r.slot_mismatches, 0u) << "silently wrong data at " << at;
    EXPECT_EQ(r.audit_violations, 0u) << r.audit_report;
    // Dead-or-alive: the kill may land before or after core 3 finishes.
    const int accounted = r.ranks_verified + r.ranks_lost;
    EXPECT_TRUE(accounted == 7 || accounted == 8)
        << accounted << " ranks accounted at " << at;
    evidence += r.recoveries + r.locks_broken +
                static_cast<u64>(r.ranks_lost);
  }
  EXPECT_GT(evidence, 0u)
      << "no kill time produced a repaired or typed-lost page";
}

TEST(KillRecovery, ReadReplicationSurvivesAnOwnerDeath) {
  KillMosaicParams p = params_for("kill=3@50us");
  p.read_replication = true;
  const KillMosaicResult r = run_kill_mosaic(p, svm::Model::kStrong, 8);
  expect_accounted(r, 8, /*dead=*/1);
}

TEST(KillRecovery, LrcSurvivesAnOwnerDeath) {
  const KillMosaicResult r = run_kill_mosaic(
      params_for("kill=3@50us"), svm::Model::kLazyRelease, 8);
  expect_accounted(r, 8, /*dead=*/1);
}

TEST(KillRecovery, SurvivesTwoDeaths) {
  const KillMosaicResult r = run_kill_mosaic(
      params_for("kill=2@400us,kill=5@900us"), svm::Model::kStrong, 8);
  expect_accounted(r, 8, /*dead=*/2);
}

TEST(KillRecovery, TypedLossCarriesThePageAndMessage) {
  // Sweep seeds until a run reports typed data loss (a dirty-WCB owner
  // death); assert the error the member caught names the page.
  for (u64 seed = 1; seed <= 20; ++seed) {
    KillMosaicParams p = params_for("kill=3@500us");
    p.seed = seed;
    const KillMosaicResult r =
        run_kill_mosaic(p, svm::Model::kStrong, 8);
    expect_accounted(r, 8, /*dead=*/1);
    if (r.ranks_lost == 0) continue;
    for (const auto& f : r.failures) {
      EXPECT_NE(f.what.find("SVM data loss"), std::string::npos);
      EXPECT_NE(f.what.find("page"), std::string::npos);
      EXPECT_GE(f.core_id, 0);
    }
    return;
  }
  GTEST_SKIP() << "no seed in the sweep produced a dirty-owner death";
}

TEST(KillRecovery, MultiLaneWideChipStaysAuditClean) {
  // 96 cores on 4 event lanes: the sharded scheduler must deliver the
  // same taxonomy (subset check is off past 64 cores — multi-word
  // directory entries — but writer-exclusivity and dead-silence hold).
  KillMosaicParams p = params_for("kill=17@500us");
  p.sched_lanes = 4;
  const KillMosaicResult r = run_kill_mosaic(p, svm::Model::kStrong, 96);
  expect_accounted(r, 96, /*dead=*/1);
}

}  // namespace
}  // namespace msvm::workloads
