// Fault-injection tests: remove exactly one step of a consistency
// protocol and assert the computation goes WRONG. These tests are the
// strongest evidence that (a) the simulator's non-coherence is real —
// stale cache lines and unflushed write-combine buffers carry real data —
// and (b) every protocol step the paper describes is load-bearing.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "svm/svm.hpp"
#include "workloads/laplace.hpp"

namespace msvm::svm {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Node;

ClusterConfig config_with(Model model, SvmConfig::Sabotage sabotage) {
  ClusterConfig cfg;
  cfg.chip.num_cores = 2;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.model = model;
  cfg.svm.sabotage = sabotage;
  return cfg;
}

/// Strong-model value handoff: core 0 writes (the value stays in its
/// write-combine buffer), core 1 steals ownership and reads. The only
/// flush between the write and the read is the serve-side one — no
/// barrier may intervene, its release flush would mask the sabotage.
u32 strong_handoff(SvmConfig::Sabotage sabotage) {
  Cluster cl(config_with(Model::kStrong, sabotage));
  u32 observed = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    n.svm().barrier();
    if (n.rank() == 0) {
      n.svm().write<u32>(base, 0xc0ffee);  // parked in the WCB
      // Stay busy so the ownership request arrives while the value is
      // still buffered; the serve handler's flush is what publishes it.
      n.core().compute_cycles(3'000'000);
    } else {
      n.core().compute_cycles(500'000);    // let core 0 write first
      observed = n.svm().read<u32>(base);  // pulls ownership
    }
    n.svm().barrier();
  });
  return observed;
}

TEST(SvmFaultInjection, StrongBaselineHandsOffCorrectly) {
  EXPECT_EQ(strong_handoff({}), 0xc0ffeeu);
}

TEST(SvmFaultInjection, SkippingServeWcbFlushLosesData) {
  // Without the owner-side WCB flush (paper step 3), core 0's write is
  // still sitting in its combine buffer when core 1 reads memory.
  SvmConfig::Sabotage sabotage;
  sabotage.skip_serve_wcb_flush = true;
  EXPECT_NE(strong_handoff(sabotage), 0xc0ffeeu);
}

/// Strong-model write-back: the page returns to core 0, which must see
/// core 1's update rather than its own stale cache line.
u32 strong_return_trip(SvmConfig::Sabotage sabotage) {
  Cluster cl(config_with(Model::kStrong, sabotage));
  u32 observed = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) {
      // Populate our L1 with the line (flush the WCB first so the read
      // misses into the cache instead of forwarding from the buffer),
      // then lose the page.
      n.svm().write<u32>(base, 1);
      n.core().flush_wcb();
      (void)n.svm().read<u32>(base);
      n.svm().barrier();
      n.svm().barrier();
      observed = n.svm().read<u32>(base);  // must re-fetch, not reuse L1
    } else {
      n.svm().barrier();
      n.svm().write<u32>(base, 2);  // takes ownership, writes new value
      n.core().flush_wcb();
      n.svm().barrier();
    }
  });
  return observed;
}

TEST(SvmFaultInjection, StrongBaselineReturnTripSeesNewValue) {
  EXPECT_EQ(strong_return_trip({}), 2u);
}

TEST(SvmFaultInjection, SkippingServeInvalidateServesStaleLine) {
  // Without CL1INVMB on transfer, core 0 keeps the old line in L1 and
  // reads 1 instead of 2 when it re-acquires the page.
  SvmConfig::Sabotage sabotage;
  sabotage.skip_serve_cl1invmb = true;
  EXPECT_EQ(strong_return_trip(sabotage), 1u);
}

TEST(SvmFaultInjection, SkippingServeUnmapBreaksExclusivity) {
  // Without "clears its access permission", the old owner keeps writing
  // a page it no longer owns; its late WCB flush clobbers the new
  // owner's data.
  SvmConfig::Sabotage sabotage;
  sabotage.skip_serve_unmap = true;
  Cluster cl(config_with(Model::kStrong, sabotage));
  u32 observed = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) {
      n.svm().write<u32>(base, 1);
      n.svm().barrier();
      // Keep writing even though core 1 took the page: with the unmap
      // skipped this does NOT fault.
      n.core().compute_cycles(500'000);
      n.svm().write<u32>(base, 111);
      n.core().flush_wcb();
      n.svm().barrier();
    } else {
      n.svm().barrier();
      n.svm().write<u32>(base, 222);  // acquires ownership
      n.core().flush_wcb();
      n.core().compute_cycles(2'000'000);
      n.svm().barrier();
      n.core().cl1invmb();
      observed = n.svm().read<u32>(base);
    }
  });
  // The stale owner's late write overwrote the rightful owner's value.
  EXPECT_EQ(observed, 111u);
}

/// LRC handoff through a barrier.
u32 lazy_barrier_handoff(SvmConfig::Sabotage sabotage) {
  Cluster cl(config_with(Model::kLazyRelease, sabotage));
  u32 observed = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) {
      // Delay the write so the reader demonstrably caches the *old*
      // (zero) value first.
      n.core().compute_cycles(400'000);
      n.svm().write<u32>(base + 4, 0xfeed);
      n.svm().barrier();  // release
    } else {
      // Pre-cache the line so the acquire-invalidate actually matters.
      (void)n.svm().read<u32>(base + 4);
      n.svm().barrier();  // acquire
      observed = n.svm().read<u32>(base + 4);
    }
    n.svm().barrier();
  });
  return observed;
}

TEST(SvmFaultInjection, LazyBaselineBarrierTransfersData) {
  EXPECT_EQ(lazy_barrier_handoff({}), 0xfeedu);
}

TEST(SvmFaultInjection, SkippingReleaseFlushHidesWrites) {
  SvmConfig::Sabotage sabotage;
  sabotage.skip_release_flush = true;
  EXPECT_NE(lazy_barrier_handoff(sabotage), 0xfeedu);
}

TEST(SvmFaultInjection, SkippingAcquireInvalidateReadsStaleCache) {
  SvmConfig::Sabotage sabotage;
  sabotage.skip_acquire_invalidate = true;
  // The reader pre-cached 0; without CL1INVMB it keeps seeing 0.
  EXPECT_EQ(lazy_barrier_handoff(sabotage), 0u);
}

TEST(SvmFaultInjection, LazyLaplaceCorruptsWithoutAcquireInvalidate) {
  // End-to-end: the paper's application produces a wrong checksum when
  // the LRC acquire step is removed. The grid is chosen small enough
  // that the stale boundary-row lines survive in L1 between iterations
  // (a larger grid can mask the bug through capacity evictions — which
  // is exactly why such coherence bugs are nightmares to find).
  // Enough iterations that the heat front actually crosses the rank
  // boundary (row 8): while the exchanged rows are still all-zero, the
  // stale cached zeros are indistinguishable from fresh zeros and the
  // missing invalidate stays invisible.
  workloads::LaplaceParams p;
  p.nx = 32;
  p.ny = 16;
  p.iterations = 16;
  const double expect = workloads::laplace_reference_checksum(p);

  const auto good = workloads::run_laplace_svm(p, Model::kLazyRelease, 2);
  EXPECT_NEAR(good.checksum, expect, 1e-9 * std::abs(expect));

  // Sabotaged run (wired through a custom cluster, since the workload
  // helper does not expose sabotage — by design).
  ClusterConfig cfg;
  cfg.chip.num_cores = 48;
  cfg.members = {0, 1};
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.svm.model = Model::kLazyRelease;
  cfg.svm.sabotage.skip_acquire_invalidate = true;
  Cluster cl(cfg);
  double checksum = 0;
  std::vector<double> partial(2, 0.0);
  cl.run([&](Node& n) {
    const u64 grid = static_cast<u64>(p.ny) * p.nx * 8;
    u64 old_base = n.svm().alloc(grid);
    u64 new_base = n.svm().alloc(grid);
    const auto [r0, r1] =
        workloads::laplace_rows_of_rank(p.ny, n.rank(), n.size());
    auto at = [&](u64 b, u32 i, u32 j) {
      return b + (static_cast<u64>(i) * p.nx + j) * 8;
    };
    for (u32 i = r0; i < r1; ++i) {
      for (u32 j = 0; j < p.nx; ++j) {
        const double v = i == 0 ? p.hot_edge : 0.0;
        n.core().vstore<double>(at(old_base, i, j), v);
        n.core().vstore<double>(at(new_base, i, j), v);
      }
    }
    n.svm().barrier();
    for (u32 it = 0; it < p.iterations; ++it) {
      for (u32 i = std::max(r0, 1u); i < std::min(r1, p.ny - 1); ++i) {
        for (u32 j = 1; j + 1 < p.nx; ++j) {
          const double v = 0.25 * (n.core().vload<double>(at(old_base, i - 1, j)) +
                                   n.core().vload<double>(at(old_base, i + 1, j)) +
                                   n.core().vload<double>(at(old_base, i, j - 1)) +
                                   n.core().vload<double>(at(old_base, i, j + 1)));
          n.core().vstore<double>(at(new_base, i, j), v);
        }
      }
      std::swap(old_base, new_base);
      n.svm().barrier();
    }
    double sum = 0;
    // Read through uncached physical plane to get the true memory
    // content regardless of the sabotaged caches.
    for (u32 i = r0; i < r1; ++i) {
      for (u32 j = 0; j < p.nx; ++j) {
        sum += n.core().vload<double>(at(old_base, i, j));
      }
    }
    partial[static_cast<std::size_t>(n.rank())] = sum;
    n.svm().barrier();
  });
  checksum = partial[0] + partial[1];
  EXPECT_GT(std::abs(checksum - expect), 1e-6 * std::abs(expect))
      << "sabotaged run should NOT match the reference";
}

}  // namespace
}  // namespace msvm::svm
