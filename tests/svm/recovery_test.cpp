// recover_page unit tests against the deterministic harness: every
// RecoveryAction outcome (prune / re-home / refetch / poison), the
// idempotence guarantee, and the no-directory (plain Strong) path —
// links the protocol library only, like the engine tests.
#include "svm/protocol/recovery.hpp"

#include <gtest/gtest.h>

#include "protocol_harness.hpp"

namespace msvm::svm {
namespace {

using harness::Harness;
using harness::Model;
using proto::RecoveryAction;
using proto::SharerSet;
using proto::u64;

constexpr u64 kPage = 7;

SharerSet dead_set(std::initializer_list<int> cores) {
  SharerSet s(64);
  for (const int c : cores) s.set(c);
  return s;
}

/// Directory word with the given sharers (single-word, <= 64 cores).
u64 dir_word(std::initializer_list<int> sharers) {
  u64 w = 0;
  for (const int s : sharers) w |= u64{1} << s;
  return w | proto::kDirSharedBit;
}

TEST(Recovery, NoneWhenNothingDeadTouchesThePage) {
  Harness h(4, Model::kReadReplication);
  h.seed_page(kPage, /*owner=*/0);
  const RecoveryAction a = proto::recover_page(
      h.env(2), kPage, dead_set({3}), /*owner_died_dirty=*/false,
      /*has_directory=*/true);
  EXPECT_EQ(a, RecoveryAction::kNone);
  EXPECT_EQ(h.owner(kPage), 0);
  EXPECT_EQ(h.stats(2).recoveries, 1u);
  EXPECT_EQ(h.stats(2).sharers_pruned, 0u);
}

TEST(Recovery, PrunesDeadSharersAndKeepsLiveOwner) {
  Harness h(6, Model::kReadReplication);
  h.seed_page(kPage, /*owner=*/0);
  h.store(proto::MetaKind::kDirectory, kPage, dir_word({2, 3, 4}));
  const RecoveryAction a = proto::recover_page(
      h.env(1), kPage, dead_set({3}), false, true);
  EXPECT_EQ(a, RecoveryAction::kPruned);
  EXPECT_EQ(h.owner(kPage), 0);
  const u64 dir = h.dir(kPage) & ~proto::kDirSharedBit;
  EXPECT_EQ(dir, (u64{1} << 2) | (u64{1} << 4));
  EXPECT_EQ(h.stats(1).sharers_pruned, 1u);
}

TEST(Recovery, RehomesDeadOwnerToLowestSurvivingSharer) {
  Harness h(6, Model::kReadReplication);
  h.seed_page(kPage, /*owner=*/1);
  h.store(proto::MetaKind::kDirectory, kPage, dir_word({2, 4}));
  const RecoveryAction a = proto::recover_page(
      h.env(5), kPage, dead_set({1}), /*owner_died_dirty=*/false, true);
  EXPECT_EQ(a, RecoveryAction::kRehomed);
  EXPECT_EQ(h.owner(kPage), 2);  // lowest-id survivor elected
  // The elected core left the sharer list (the directory never lists
  // the owner); the other sharer remains.
  const u64 dir = h.dir(kPage) & ~proto::kDirSharedBit;
  EXPECT_EQ(dir, u64{1} << 4);
  EXPECT_EQ(h.stats(5).pages_rehomed, 1u);
  EXPECT_EQ(h.stats(5).pages_lost, 0u);
}

TEST(Recovery, RefetchesWhenNoSharerSurvives) {
  Harness h(6, Model::kReadReplication);
  h.seed_page(kPage, /*owner=*/1);
  const RecoveryAction a = proto::recover_page(
      h.env(3), kPage, dead_set({1}), /*owner_died_dirty=*/false, true);
  EXPECT_EQ(a, RecoveryAction::kRefetched);
  EXPECT_EQ(h.owner(kPage), 3);  // the recovering core took the page
  EXPECT_EQ(h.stats(3).pages_refetched, 1u);
}

TEST(Recovery, DirtyOwnerDeathPoisonsThePage) {
  Harness h(6, Model::kReadReplication);
  h.seed_page(kPage, /*owner=*/1);
  h.store(proto::MetaKind::kDirectory, kPage, dir_word({2, 4}));
  const RecoveryAction a = proto::recover_page(
      h.env(5), kPage, dead_set({1}), /*owner_died_dirty=*/true, true);
  EXPECT_EQ(a, RecoveryAction::kLost);
  EXPECT_EQ(h.owner(kPage), proto::kOwnerLost);
  // A torn frame must not keep advertised replicas either.
  EXPECT_EQ(h.dir(kPage) & ~proto::kDirSharedBit, 0u);
  EXPECT_EQ(h.stats(5).pages_lost, 1u);
}

TEST(Recovery, RepairIsIdempotent) {
  Harness h(6, Model::kReadReplication);
  h.seed_page(kPage, /*owner=*/1);
  h.store(proto::MetaKind::kDirectory, kPage, dir_word({2}));
  ASSERT_EQ(proto::recover_page(h.env(4), kPage, dead_set({1}), false,
                                true),
            RecoveryAction::kRehomed);
  // Second walk over the already-repaired page: nothing left to do.
  EXPECT_EQ(proto::recover_page(h.env(4), kPage, dead_set({1}), false,
                                true),
            RecoveryAction::kNone);
  EXPECT_EQ(h.owner(kPage), 2);
  EXPECT_EQ(h.stats(4).pages_rehomed, 1u);
}

TEST(Recovery, PoisonedPageStaysPoisoned) {
  Harness h(4, Model::kReadReplication);
  h.seed_page(kPage, /*owner=*/1);
  ASSERT_EQ(proto::recover_page(h.env(2), kPage, dead_set({1}), true,
                                true),
            RecoveryAction::kLost);
  // A later recovery attempt (even a "clean" one) must not resurrect
  // the page: kOwnerLost is never in the dead set.
  EXPECT_EQ(proto::recover_page(h.env(2), kPage, dead_set({1}), false,
                                true),
            RecoveryAction::kNone);
  EXPECT_EQ(h.owner(kPage), proto::kOwnerLost);
  EXPECT_EQ(h.stats(2).pages_lost, 1u);
}

TEST(Recovery, PlainStrongHasNoDirectoryToRepair) {
  Harness h(4, Model::kStrong);
  h.seed_page(kPage, /*owner=*/1);
  // Strong metadata has no directory words: the repair must not read or
  // write them, and a dead owner re-homes straight to the recoverer.
  const RecoveryAction a = proto::recover_page(
      h.env(2), kPage, dead_set({1}), /*owner_died_dirty=*/false,
      /*has_directory=*/false);
  EXPECT_EQ(a, RecoveryAction::kRefetched);
  EXPECT_EQ(h.owner(kPage), 2);
}

}  // namespace
}  // namespace msvm::svm
