// SVM subsystem tests: collective allocation, first-touch affinity,
// strong-model single ownership, lazy release consistency, read-only
// regions, and next-touch migration. These run over the full stack
// (kernel + mailbox + caches), so they validate the protocols against the
// simulator's real incoherence.
#include "svm/svm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "sccsim/addrmap.hpp"

namespace msvm::svm {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Node;

ClusterConfig base_config(int cores, Model model, bool use_ipi = true) {
  ClusterConfig cfg;
  cfg.chip.num_cores = cores;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.model = model;
  cfg.use_ipi = use_ipi;
  return cfg;
}

TEST(SvmAlloc, CollectiveAllocReturnsSameBaseEverywhere) {
  for (const Model model : {Model::kStrong, Model::kLazyRelease}) {
    Cluster cl(base_config(4, model));
    std::vector<u64> bases(4, 0);
    std::vector<u64> second(4, 0);
    cl.run([&](Node& n) {
      bases[static_cast<std::size_t>(n.rank())] = n.svm().alloc(64 * 1024);
      second[static_cast<std::size_t>(n.rank())] = n.svm().alloc(4096);
    });
    for (int r = 1; r < 4; ++r) {
      EXPECT_EQ(bases[static_cast<std::size_t>(r)], bases[0]);
      EXPECT_EQ(second[static_cast<std::size_t>(r)], second[0]);
    }
    EXPECT_EQ(bases[0], scc::kSvmVBase);
    EXPECT_EQ(second[0], scc::kSvmVBase + 64 * 1024);
  }
}

TEST(SvmAlloc, NoPhysicalFramesBeforeFirstTouch) {
  Cluster cl(base_config(2, Model::kLazyRelease));
  u64 faults_after_alloc = 99;
  cl.run([&](Node& n) {
    (void)n.svm().alloc(1 << 20);
    if (n.rank() == 0) {
      faults_after_alloc = n.core().counters().page_faults;
    }
    n.svm().barrier();
  });
  EXPECT_EQ(faults_after_alloc, 0u);
}

TEST(SvmFirstTouch, FirstToucherAllocatesNearItsMc) {
  // Core 0 (tile (0,0), MC 0) and core 47 (tile (5,3), MC 3) each touch
  // their own page; the frames must come from their local quarters.
  Cluster cl(base_config(48, Model::kLazyRelease));
  u64 frame_paddr_0 = 0;
  u64 frame_paddr_47 = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(2 * 4096);
    if (n.core_id() == 0) n.svm().write<u64>(base, 1);
    if (n.core_id() == 47) n.svm().write<u64>(base + 4096, 1);
    n.svm().barrier();
    if (n.core_id() == 0) {
      frame_paddr_0 = n.core().pagetable().find(base)->frame_paddr;
    }
    if (n.core_id() == 47) {
      frame_paddr_47 = n.core().pagetable().find(base + 4096)->frame_paddr;
    }
  });
  scc::ChipConfig ccfg = base_config(48, Model::kLazyRelease).chip;
  scc::AddrMap map(ccfg);
  EXPECT_EQ(map.decode(frame_paddr_0).owner, scc::Topology::scc_default().nearest_mc(0));
  EXPECT_EQ(map.decode(frame_paddr_47).owner, scc::Topology::scc_default().nearest_mc(47));
}

TEST(SvmFirstTouch, OnlyOneCoreAllocatesEachPage) {
  // All cores hammer the same fresh region; each page must be allocated
  // exactly once chip-wide and every core must read coherent zeroes.
  Cluster cl(base_config(8, Model::kLazyRelease));
  u64 total_first_touches = 0;
  bool all_zero = true;
  constexpr u64 kPages = 16;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(kPages * 4096);
    n.svm().barrier();
    for (u64 p = 0; p < kPages; ++p) {
      if (n.svm().read<u64>(base + p * 4096 + 128) != 0) all_zero = false;
    }
    n.svm().barrier();
  });
  for (int c = 0; c < 8; ++c) {
    total_first_touches += cl.node(c).svm().stats().first_touch_allocs;
  }
  EXPECT_EQ(total_first_touches, kPages);
  EXPECT_TRUE(all_zero);
}

TEST(SvmFirstTouch, TableOneShapeLazyMappingIsCheaperThanStrong) {
  // Table 1: "mapping of a page frame" is much cheaper under Lazy Release
  // (scratchpad lookup only) than under Strong (ownership retrieval).
  auto measure_map_cost = [](Model model) {
    Cluster cl(base_config(2, model));
    TimePs cost = 0;
    cl.run([&](Node& n) {
      constexpr u64 kPages = 64;
      const u64 base = n.svm().alloc(kPages * 4096);
      if (n.rank() == 0) {
        for (u64 p = 0; p < kPages; ++p) {
          n.svm().write<u32>(base + p * 4096, 1);  // allocate everything
        }
      }
      n.svm().barrier();
      if (n.rank() == 1) {
        const TimePs t0 = n.core().now();
        for (u64 p = 0; p < kPages; ++p) {
          n.svm().write<u32>(base + p * 4096, 2);  // map on this core
        }
        cost = (n.core().now() - t0) / kPages;
      }
      n.svm().barrier();
    });
    return cost;
  };
  const TimePs lazy = measure_map_cost(Model::kLazyRelease);
  const TimePs strong = measure_map_cost(Model::kStrong);
  EXPECT_GT(strong, 2 * lazy);  // paper: 10.2 us vs 2.4 us (~4x)
}

TEST(SvmStrong, OwnershipMovesOnRemoteWrite) {
  Cluster cl(base_config(2, Model::kStrong));
  u32 read_back = 0;
  u64 acquires_1 = 0;
  u64 serves_0 = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) {
      n.svm().write<u32>(base, 0xaa55);
      n.svm().barrier();  // rank 1 takes ownership after this
      n.svm().barrier();
      // Re-acquire and verify rank 1's value (ownership round trip).
      read_back = n.svm().read<u32>(base);
    } else {
      n.svm().barrier();
      EXPECT_EQ(n.svm().read<u32>(base), 0xaa55u);  // pulls ownership
      n.svm().write<u32>(base, 0x1234);
      n.svm().barrier();
    }
  });
  EXPECT_EQ(read_back, 0x1234u);
  acquires_1 = cl.node(1).svm().stats().ownership_acquires;
  serves_0 = cl.node(0).svm().stats().ownership_serves;
  EXPECT_GE(acquires_1, 1u);
  EXPECT_GE(serves_0, 1u);
}

TEST(SvmStrong, OwnerVectorTracksCurrentOwner) {
  Cluster cl(base_config(2, Model::kStrong));
  std::vector<u16> owners;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) {
      n.svm().write<u32>(base, 1);
      owners.push_back(n.core().pload<u16>(
          cl.domain().owner_entry_paddr(0), scc::MemPolicy::kUncached));
      n.svm().barrier();
      n.svm().barrier();
      owners.push_back(n.core().pload<u16>(
          cl.domain().owner_entry_paddr(0), scc::MemPolicy::kUncached));
    } else {
      n.svm().barrier();
      n.svm().write<u32>(base, 2);
      n.svm().barrier();
    }
  });
  ASSERT_EQ(owners.size(), 2u);
  EXPECT_EQ(owners[0], 0u);  // first toucher
  EXPECT_EQ(owners[1], 1u);  // moved to core 1
}

TEST(SvmStrong, LoserIsUnmappedAfterTransfer) {
  Cluster cl(base_config(2, Model::kStrong));
  bool unmapped_on_0 = false;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) {
      n.svm().write<u32>(base, 1);
      n.svm().barrier();
      n.svm().barrier();
      const scc::Pte* pte = n.core().pagetable().find(base);
      unmapped_on_0 = (pte == nullptr) || !pte->present;
    } else {
      n.svm().barrier();
      n.svm().write<u32>(base, 2);  // steals ownership from core 0
      n.svm().barrier();
    }
  });
  EXPECT_TRUE(unmapped_on_0);
}

TEST(SvmStrong, PingPongWritesStayCoherent) {
  // The two cores alternately increment a counter on the same page; under
  // single ownership the final value must be exact — any missed flush or
  // stale read would corrupt it.
  Cluster cl(base_config(2, Model::kStrong));
  u32 final_value = 0;
  constexpr int kRounds = 25;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    n.svm().barrier();
    for (int round = 0; round < kRounds; ++round) {
      if (round % 2 == static_cast<int>(n.rank())) {
        const u32 v = n.svm().read<u32>(base);
        n.svm().write<u32>(base, v + 1);
      }
      n.svm().barrier();
    }
    if (n.rank() == 0) final_value = n.svm().read<u32>(base);
    n.svm().barrier();
  });
  EXPECT_EQ(final_value, static_cast<u32>(kRounds));
}

TEST(SvmStrong, ManyCoresContendOnOnePage) {
  // Every core increments the same counter under an SVM lock; strong
  // ownership serialises page access underneath.
  constexpr int kCores = 6;
  constexpr int kIters = 10;
  Cluster cl(base_config(kCores, Model::kStrong));
  u32 final_value = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    n.svm().barrier();
    for (int i = 0; i < kIters; ++i) {
      n.svm().lock_acquire(1);
      const u32 v = n.svm().read<u32>(base);
      n.svm().write<u32>(base, v + 1);
      n.svm().lock_release(1);
    }
    n.svm().barrier();
    if (n.rank() == 0) final_value = n.svm().read<u32>(base);
  });
  EXPECT_EQ(final_value, kCores * kIters);
}

TEST(SvmLazy, BarrierPublishesWrites) {
  Cluster cl(base_config(2, Model::kLazyRelease));
  u32 observed = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) {
      n.svm().write<u32>(base + 64, 0xbeef);
      n.svm().barrier();  // release: flush WCB
    } else {
      n.svm().barrier();  // acquire: invalidate
      observed = n.svm().read<u32>(base + 64);
    }
    n.svm().barrier();
  });
  EXPECT_EQ(observed, 0xbeefu);
}

TEST(SvmLazy, LockAcquireReleaseTransfersData) {
  Cluster cl(base_config(2, Model::kLazyRelease));
  u32 observed = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    n.svm().barrier();
    if (n.rank() == 0) {
      n.svm().lock_acquire(0);
      n.svm().write<u32>(base, 42);
      n.svm().lock_release(0);
      n.svm().barrier();
    } else {
      n.svm().barrier();  // after rank 0's release
      n.svm().lock_acquire(0);
      observed = n.svm().read<u32>(base);
      n.svm().lock_release(0);
    }
  });
  EXPECT_EQ(observed, 42u);
}

TEST(SvmLazy, DisjointWritesToSamePageMerge) {
  // Two cores write different halves of one page between barriers; the
  // masked WCB flush must preserve both halves.
  Cluster cl(base_config(2, Model::kLazyRelease));
  bool ok = true;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    n.svm().barrier();
    const u64 my_half = base + static_cast<u64>(n.rank()) * 2048;
    for (u64 i = 0; i < 2048; i += 8) {
      n.svm().write<u64>(my_half + i, static_cast<u64>(n.rank()) + 1);
    }
    n.svm().barrier();
    for (u64 i = 0; i < 4096; i += 8) {
      const u64 expect = i < 2048 ? 1 : 2;
      if (n.svm().read<u64>(base + i) != expect) ok = false;
    }
    n.svm().barrier();
  });
  EXPECT_TRUE(ok);
}

TEST(SvmLazy, NoOwnershipTrafficUnderLazyModel) {
  Cluster cl(base_config(4, Model::kLazyRelease));
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(16 * 4096);
    n.svm().barrier();
    for (u64 p = 0; p < 16; ++p) {
      n.svm().write<u32>(base + p * 4096 + static_cast<u64>(n.rank()) * 4,
                         7);
    }
    n.svm().barrier();
  });
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(cl.node(c).svm().stats().ownership_acquires, 0u);
    EXPECT_EQ(cl.node(c).svm().stats().ownership_serves, 0u);
  }
}

TEST(SvmReadOnly, ProtectEnablesL2) {
  Cluster cl(base_config(2, Model::kLazyRelease));
  u64 l2_hits = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) {
      for (u64 i = 0; i < 4096; i += 8) {
        n.svm().write<u64>(base + i, i);
      }
    }
    n.svm().barrier();
    n.svm().protect_readonly(base, 4096);
    // Read twice: first pass fills L2 (and L1), then evict L1 and reread.
    for (u64 i = 0; i < 4096; i += 8) (void)n.svm().read<u64>(base + i);
    n.core().l1().invalidate_all();
    const u64 h0 = n.core().counters().l2_hits;
    for (u64 i = 0; i < 4096; i += 8) (void)n.svm().read<u64>(base + i);
    if (n.rank() == 1) l2_hits = n.core().counters().l2_hits - h0;
    n.svm().barrier();
  });
  EXPECT_GT(l2_hits, 100u);  // 128 lines re-read from L2
}

TEST(SvmReadOnly, WriteToProtectedRegionThrows) {
  Cluster cl(base_config(2, Model::kLazyRelease));
  bool threw = false;
  u64 fault_addr = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u32>(base, 5);
    n.svm().barrier();
    n.svm().protect_readonly(base, 4096);
    if (n.rank() == 1) {
      try {
        n.svm().write<u32>(base + 12, 1);
      } catch (const SvmProtectionError& e) {
        threw = true;
        fault_addr = e.vaddr();
      }
    }
    n.svm().barrier();
  });
  EXPECT_TRUE(threw);
  EXPECT_EQ(fault_addr, scc::kSvmVBase + 12);
}

TEST(SvmReadOnly, ValuesReadableOnAllCoresAfterProtect) {
  Cluster cl(base_config(4, Model::kStrong));
  bool ok = true;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(2 * 4096);
    if (n.rank() == 0) {
      for (u64 i = 0; i < 2 * 4096; i += 8) {
        n.svm().write<u64>(base + i, i * 3);
      }
    }
    n.svm().barrier();
    n.svm().protect_readonly(base, 2 * 4096);
    // Under the strong model a read-only region is the only way several
    // cores may read concurrently without ownership traffic.
    const u64 before = n.svm().stats().ownership_acquires;
    for (u64 i = 0; i < 2 * 4096; i += 8) {
      if (n.svm().read<u64>(base + i) != i * 3) ok = false;
    }
    EXPECT_EQ(n.svm().stats().ownership_acquires, before);
    n.svm().barrier();
  });
  EXPECT_TRUE(ok);
}

TEST(SvmReadOnly, UnprotectRestoresWritability) {
  Cluster cl(base_config(2, Model::kLazyRelease));
  u32 after = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u32>(base, 1);
    n.svm().barrier();
    n.svm().protect_readonly(base, 4096);
    n.svm().unprotect(base, 4096);
    if (n.rank() == 1) n.svm().write<u32>(base, 2);
    n.svm().barrier();
    if (n.rank() == 0) after = n.svm().read<u32>(base);
    n.svm().barrier();
  });
  EXPECT_EQ(after, 2u);
}

TEST(SvmNextTouch, PageMigratesToToucher) {
  Cluster cl(base_config(48, Model::kLazyRelease));
  u64 frame_before = 0;
  u64 frame_after = 0;
  u64 migrations = 0;
  u32 value_after = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.core_id() == 0) {
      n.svm().write<u32>(base, 99);  // allocated near MC 0
      frame_before = n.core().pagetable().find(base)->frame_paddr;
    }
    n.svm().barrier();
    n.svm().next_touch(base, 4096);
    if (n.core_id() == 47) {
      value_after = n.svm().read<u32>(base);  // migrates near MC 3
      frame_after = n.core().pagetable().find(base)->frame_paddr;
    }
    n.svm().barrier();
  });
  migrations = cl.node(47).svm().stats().migrations;
  EXPECT_EQ(migrations, 1u);
  EXPECT_EQ(value_after, 99u);  // data survived the move
  scc::ChipConfig ccfg = base_config(48, Model::kLazyRelease).chip;
  scc::AddrMap map(ccfg);
  EXPECT_EQ(map.decode(frame_before).owner, 0);
  EXPECT_EQ(map.decode(frame_after).owner, scc::Topology::scc_default().nearest_mc(47));
}

TEST(SvmNextTouch, FreedFrameIsReused) {
  Cluster cl(base_config(2, Model::kLazyRelease));
  u64 first_frame = 0;
  u64 reused_frame = 0;
  cl.run([&](Node& n) {
    const u64 a = n.svm().alloc(4096);
    if (n.rank() == 0) {
      n.svm().write<u32>(a, 1);
      first_frame = n.core().pagetable().find(a)->frame_paddr;
    }
    n.svm().barrier();
    n.svm().next_touch(a, 4096);
    if (n.rank() == 1) (void)n.svm().read<u32>(a);  // migrate, free old
    n.svm().barrier();
    const u64 b = n.svm().alloc(4096);
    if (n.rank() == 0) {
      n.svm().write<u32>(b, 2);  // must reuse the freed frame (same MC)
      reused_frame = n.core().pagetable().find(b)->frame_paddr;
    }
    n.svm().barrier();
  });
  EXPECT_EQ(reused_frame, first_frame);
}

TEST(SvmModes, WorksWithPollingMailboxes) {
  // The strong model must function with the poll-only mailbox layer too
  // (Figure 7's "without IPI" configuration).
  Cluster cl(base_config(2, Model::kStrong, /*use_ipi=*/false));
  u32 final_value = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    n.svm().barrier();
    for (int round = 0; round < 6; ++round) {
      if (round % 2 == static_cast<int>(n.rank())) {
        n.svm().write<u32>(base, n.svm().read<u32>(base) + 1);
      }
      n.svm().barrier();
    }
    if (n.rank() == 0) final_value = n.svm().read<u32>(base);
    n.svm().barrier();
  });
  EXPECT_EQ(final_value, 6u);
}

TEST(SvmModes, OffDieScratchpadStillCorrect) {
  ClusterConfig cfg = base_config(4, Model::kLazyRelease);
  cfg.svm.scratchpad_offdie = true;
  Cluster cl(cfg);
  u64 total_first = 0;
  bool ok = true;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(8 * 4096);
    n.svm().barrier();
    for (u64 p = 0; p < 8; ++p) {
      if (n.svm().read<u64>(base + p * 4096) != 0) ok = false;
    }
    n.svm().barrier();
  });
  for (int c = 0; c < 4; ++c) {
    total_first += cl.node(c).svm().stats().first_touch_allocs;
  }
  EXPECT_EQ(total_first, 8u);
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace msvm::svm
