// Acceptance tests for the chaos layer's recovery paths, driven through
// the full cluster stack. Each test runs a small ownership-heavy SPMD
// workload under a seeded fault plan and asserts two things at once:
// the specific recovery mechanism actually fired (its counter moved) AND
// the data still came out correct. A recovery that silently corrupts
// state would pass neither.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "sim/faults.hpp"
#include "svm/svm.hpp"

namespace msvm::svm {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Node;

constexpr int kCores = 4;
constexpr u64 kPages = 12;
constexpr int kIters = 5;

/// Aggregated evidence from one chaos run.
struct ChaosOutcome {
  bool correct = false;
  u64 sweep_recoveries = 0;
  u64 degradations = 0;
  u64 retransmits = 0;
  u64 dup_acks_dropped = 0;
  u64 ipis_dropped = 0;
  u64 mails_duplicated = 0;
};

/// Ownership-migration workload: in iteration k, rank (k mod size)
/// increments a counter on every page, then everyone barriers and — on
/// the final round — verifies every counter on every rank. Each round
/// moves ownership of all pages to a different core and crosses the
/// barrier, so the run is dense in exactly the protocol mail (ownership
/// requests, ACKs, barrier mail) the fault plan attacks.
ChaosOutcome run_chaos(const sim::FaultPlan& plan, bool use_ipi) {
  ClusterConfig cfg;
  cfg.chip.num_cores = kCores;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.chip.faults = plan;
  cfg.svm.model = Model::kStrong;
  cfg.use_ipi = use_ipi;

  Cluster cl(cfg);
  bool all_correct = true;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(kPages * 4096);
    n.svm().barrier();
    for (int k = 0; k < kIters; ++k) {
      if (k % n.size() == n.rank()) {
        for (u64 p = 0; p < kPages; ++p) {
          const u64 addr = base + p * 4096;
          n.svm().write<u64>(addr, n.svm().read<u64>(addr) + 1);
        }
      }
      n.svm().barrier();
    }
    for (u64 p = 0; p < kPages; ++p) {
      if (n.svm().read<u64>(base + p * 4096) !=
          static_cast<u64>(kIters)) {
        all_correct = false;
      }
    }
    n.svm().barrier();
  });

  ChaosOutcome out;
  out.correct = all_correct;
  for (int c = 0; c < kCores; ++c) {
    const auto& mb = cl.node(c).mbox().stats();
    out.sweep_recoveries += mb.sweep_recoveries;
    out.degradations += mb.degradations;
    const auto& sv = cl.node(c).svm().stats();
    out.retransmits += sv.retransmits;
    out.dup_acks_dropped += sv.dup_acks_dropped;
  }
  out.ipis_dropped = cl.chip().faults().stats().ipis_dropped;
  out.mails_duplicated = cl.chip().faults().stats().mails_duplicated;
  return out;
}

TEST(SvmChaos, CleanPlanLeavesRecoveryCountersQuiet) {
  // Recovery knobs armed but nothing injected: the hardened paths must
  // be pure observers on a clean run. Note sweep_recoveries is NOT
  // asserted zero — an armed sweep can legitimately find a mail whose
  // IPI is still in flight through the GIC (deposited but not yet
  // delivered), which is benign early consumption, not a fault.
  const sim::FaultPlan plan =
      sim::FaultPlan::parse("watchdog=500ms,sweep=2,retry=2ms");
  for (const bool use_ipi : {true, false}) {
    const ChaosOutcome out = run_chaos(plan, use_ipi);
    EXPECT_TRUE(out.correct);
    EXPECT_EQ(out.retransmits, 0u);
    EXPECT_EQ(out.dup_acks_dropped, 0u);
    EXPECT_EQ(out.ipis_dropped, 0u);
    EXPECT_EQ(out.degradations, 0u);
  }
}

TEST(SvmChaos, PollSweepRecoversDroppedIpisWithCorrectData) {
  // IPI mode with a third of all interrupts dropped: the only way a
  // halted receiver learns about a deposited mail is the periodic poll
  // sweep. The sweep must both fire (counter moves) and preserve
  // correctness.
  const sim::FaultPlan plan = sim::FaultPlan::parse(
      "seed=11,ipi_drop=0.3,watchdog=500ms,sweep=2,retry=2ms");
  const ChaosOutcome out = run_chaos(plan, /*use_ipi=*/true);
  EXPECT_TRUE(out.correct);
  EXPECT_GT(out.ipis_dropped, 0u) << "plan failed to inject anything";
  EXPECT_GT(out.sweep_recoveries, 0u)
      << "dropped IPIs were never recovered by the sweep";
}

TEST(SvmChaos, RepeatedIpiLossDegradesMailboxToPolling) {
  // Heavy interrupt loss with a low degradation threshold: after a few
  // sweep recoveries the mailbox must stop trusting IPIs entirely.
  const sim::FaultPlan plan = sim::FaultPlan::parse(
      "seed=23,ipi_drop=0.5,watchdog=800ms,sweep=2,degrade=3,retry=2ms");
  const ChaosOutcome out = run_chaos(plan, /*use_ipi=*/true);
  EXPECT_TRUE(out.correct);
  EXPECT_GT(out.degradations, 0u)
      << "no mailbox degraded despite 50% IPI loss";
}

TEST(SvmChaos, BoundedWaitsRetransmitStuckRequestsWithCorrectData) {
  // Delayed flag visibility plus stalls push protocol waits past their
  // (shortened) deadline, so the requester must retransmit — and the
  // receiver-side idempotence must keep the data correct anyway.
  const sim::FaultPlan plan = sim::FaultPlan::parse(
      "seed=13,ipi_drop=0.3,mail_delay=0.4,stall=0.3:200us,"
      "watchdog=800ms,sweep=2,retry=1ms");
  const ChaosOutcome out = run_chaos(plan, /*use_ipi=*/true);
  EXPECT_TRUE(out.correct);
  EXPECT_GT(out.retransmits, 0u)
      << "no protocol wait ever hit its retransmission deadline";
}

TEST(SvmChaos, DuplicatedAcksAreDeduplicatedWithCorrectData) {
  // Duplicated mail delivery: requests may be served twice (idempotent
  // by design) but ACKs must be dropped by the receiver-side dedup or a
  // stale ACK could satisfy a *later* wait for the same page.
  const sim::FaultPlan plan = sim::FaultPlan::parse(
      "seed=17,mail_dup=0.5,watchdog=500ms,sweep=2,retry=2ms");
  const ChaosOutcome out = run_chaos(plan, /*use_ipi=*/true);
  EXPECT_TRUE(out.correct);
  EXPECT_GT(out.mails_duplicated, 0u) << "plan failed to inject anything";
  EXPECT_GT(out.dup_acks_dropped, 0u)
      << "duplicated ACKs were never caught by the dedup ring";
}

TEST(SvmChaos, SameSeedReproducesTheSameRecoveryCounts) {
  const sim::FaultPlan plan = sim::FaultPlan::parse(
      "seed=29,ipi_drop=0.3,mail_delay=0.2,watchdog=500ms,sweep=2,"
      "retry=2ms");
  const ChaosOutcome a = run_chaos(plan, /*use_ipi=*/true);
  const ChaosOutcome b = run_chaos(plan, /*use_ipi=*/true);
  EXPECT_TRUE(a.correct);
  EXPECT_EQ(a.sweep_recoveries, b.sweep_recoveries);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.ipis_dropped, b.ipis_dropped);
}

}  // namespace
}  // namespace msvm::svm
