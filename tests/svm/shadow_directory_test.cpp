// ShadowDirectory invariant tests driven by synthetic obs::Events — each
// test hand-crafts the minimal event arrival sequence that either
// satisfies or violates one audited invariant, so every violation path
// is exercised without running a simulated chip.
#include "svm/shadow_directory.hpp"

#include <gtest/gtest.h>

#include "svm/protocol/types.hpp"

namespace msvm::svm {
namespace {

using obs::Event;
using obs::EventKind;
using obs::InjectKind;

Event ev(EventKind kind, u64 a, u64 b, u64 c, int core, u64 t = 0) {
  return Event{t, a, b, c, kind, core};
}

Event transition(u64 page, proto::PageState from, proto::PageState to,
                 int core) {
  return ev(EventKind::kProtoTransition, page, static_cast<u64>(from),
            static_cast<u64>(to), core);
}

Event meta_write(u64 page, proto::MetaKind kind, u64 value, int core) {
  return ev(EventKind::kProtoMetaWrite, page, static_cast<u64>(kind),
            value, core);
}

Event kill(int core) {
  return ev(EventKind::kFaultInject,
            static_cast<u64>(InjectKind::kCoreKill), 0, 0, core);
}

constexpr auto kInvalid = proto::PageState::kInvalid;
constexpr auto kSharedRO = proto::PageState::kSharedRO;
constexpr auto kOwnedRW = proto::PageState::kOwnedRW;

TEST(ShadowDirectory, CleanOwnershipHandoff) {
  ShadowDirectory shadow;
  shadow.on_event(transition(7, kInvalid, kOwnedRW, 0));
  shadow.on_event(transition(7, kOwnedRW, kInvalid, 0));
  shadow.on_event(transition(7, kInvalid, kOwnedRW, 1));
  EXPECT_TRUE(shadow.clean());
  EXPECT_EQ(shadow.events_audited(), 3u);
  EXPECT_NE(shadow.report().find("(clean)"), std::string::npos);
}

TEST(ShadowDirectory, TwoConcurrentWritersViolateExclusivity) {
  ShadowDirectory shadow;
  shadow.on_event(transition(7, kInvalid, kOwnedRW, 0));
  shadow.on_event(transition(7, kInvalid, kOwnedRW, 1));
  ASSERT_EQ(shadow.violation_count(), 1u);
  EXPECT_NE(shadow.violations()[0].find("writer-exclusivity"),
            std::string::npos);
  EXPECT_NE(shadow.violations()[0].find("page 7"), std::string::npos);
  // A second page is tracked independently.
  shadow.on_event(transition(8, kInvalid, kOwnedRW, 2));
  EXPECT_EQ(shadow.violation_count(), 1u);
}

TEST(ShadowDirectory, ReacquireByTheSameWriterIsClean) {
  ShadowDirectory shadow;
  shadow.on_event(transition(3, kInvalid, kOwnedRW, 5));
  shadow.on_event(transition(3, kOwnedRW, kOwnedRW, 5));
  EXPECT_TRUE(shadow.clean());
}

TEST(ShadowDirectory, SharerOutsideDirectoryWordIsFlagged) {
  ShadowDirectory shadow;
  // Directory word admits cores 1 and 2; owner is core 0.
  shadow.on_event(meta_write(9, proto::MetaKind::kOwner, 0, 0));
  shadow.on_event(
      meta_write(9, proto::MetaKind::kDirectory, (1u << 1) | (1u << 2), 0));
  shadow.on_event(transition(9, kInvalid, kSharedRO, 2));  // in word: clean
  shadow.on_event(transition(9, kOwnedRW, kSharedRO, 0));  // owner: exempt
  EXPECT_TRUE(shadow.clean());
  shadow.on_event(transition(9, kInvalid, kSharedRO, 3));  // neither
  ASSERT_EQ(shadow.violation_count(), 1u);
  EXPECT_NE(shadow.violations()[0].find("sharer-subset"),
            std::string::npos);
}

TEST(ShadowDirectory, SubsetCheckNeedsBothMetaWordsObserved) {
  ShadowDirectory shadow;
  // Only the directory word has been seen — the owner word is unknown,
  // so an arrival-order gap must not be reported as a violation.
  shadow.on_event(meta_write(9, proto::MetaKind::kDirectory, 0, 0));
  shadow.on_event(transition(9, kInvalid, kSharedRO, 3));
  EXPECT_TRUE(shadow.clean());
}

TEST(ShadowDirectory, SubsetCheckCanBeDisabledForWideChips) {
  ShadowDirectory::Config cfg;
  cfg.subset_check = false;  // >64-core chips: multi-word directory
  ShadowDirectory shadow(cfg);
  shadow.on_event(meta_write(9, proto::MetaKind::kOwner, 0, 0));
  shadow.on_event(meta_write(9, proto::MetaKind::kDirectory, 0, 0));
  shadow.on_event(transition(9, kInvalid, kSharedRO, 3));
  EXPECT_TRUE(shadow.clean());
}

TEST(ShadowDirectory, SingleWriterOffSkipsOwnershipChecks) {
  // LRC maps pages writable on every core by design.
  ShadowDirectory::Config cfg;
  cfg.single_writer = false;
  ShadowDirectory shadow(cfg);
  shadow.on_event(transition(1, kInvalid, kOwnedRW, 0));
  shadow.on_event(transition(1, kInvalid, kOwnedRW, 1));
  shadow.on_event(transition(1, kInvalid, kOwnedRW, 2));
  EXPECT_TRUE(shadow.clean());
}

TEST(ShadowDirectory, RecoveryEpochMustGrowStrictly) {
  ShadowDirectory shadow;
  shadow.on_event(ev(EventKind::kRecoveryBegin, 1, 0, 4, 0));
  shadow.on_event(ev(EventKind::kRecoveryBegin, 2, 0, 5, 0));
  EXPECT_TRUE(shadow.clean());
  shadow.on_event(ev(EventKind::kRecoveryBegin, 2, 0, 6, 0));
  ASSERT_EQ(shadow.violation_count(), 1u);
  EXPECT_NE(shadow.violations()[0].find("epoch-monotonicity"),
            std::string::npos);
}

TEST(ShadowDirectory, DeadCoreMustStaySilent) {
  ShadowDirectory shadow;
  shadow.on_event(kill(4));
  EXPECT_TRUE(shadow.clean());  // the kill record itself is not flagged
  shadow.on_event(transition(2, kInvalid, kSharedRO, 4));
  ASSERT_EQ(shadow.violation_count(), 1u);
  EXPECT_NE(shadow.violations()[0].find("dead-silence"),
            std::string::npos);
}

TEST(ShadowDirectory, KillReleasesTheShadowWriterSlot) {
  ShadowDirectory shadow;
  // Core 4 dies holding OwnedRW on page 6: it never publishes the exit
  // transition, so the kill must free the slot for recovery's new owner.
  shadow.on_event(transition(6, kInvalid, kOwnedRW, 4));
  shadow.on_event(kill(4));
  shadow.on_event(transition(6, kInvalid, kOwnedRW, 5));
  EXPECT_TRUE(shadow.clean());
}

TEST(ShadowDirectory, ViolationStorageIsCappedButCountIsNot) {
  ShadowDirectory shadow;
  shadow.on_event(kill(1));
  for (int i = 0; i < 100; ++i) {
    shadow.on_event(transition(1, kInvalid, kSharedRO, 1));
  }
  EXPECT_EQ(shadow.violation_count(), 100u);
  EXPECT_EQ(shadow.violations().size(), 64u);
  EXPECT_NE(shadow.report().find("more (storage capped)"),
            std::string::npos);
}

}  // namespace
}  // namespace msvm::svm
