// Directory-state tests for the Strong model's read-replication mode
// (SvmConfig::read_replication): Exclusive -> Shared on a remote read,
// Shared -> Exclusive on a write upgrade with N sharers, and replica
// invalidation actually dropping the mappings. Like svm_test.cpp these
// run over the full stack, so the replicas live in really-incoherent
// simulated caches.
#include "svm/svm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "sccsim/addrmap.hpp"

namespace msvm::svm {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Node;

ClusterConfig rr_config(int cores, bool read_replication = true,
                        bool use_ipi = true) {
  ClusterConfig cfg;
  cfg.chip.num_cores = cores;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.model = Model::kStrong;
  cfg.svm.read_replication = read_replication;
  cfg.use_ipi = use_ipi;
  return cfg;
}

u64 sum_stat(Cluster& cl, int cores, u64 SvmStats::* field) {
  u64 total = 0;
  for (int c = 0; c < cores; ++c) total += cl.node(c).svm().stats().*field;
  return total;
}

TEST(SvmDirectory, RemoteReadInstallsReadOnlyReplicaWithoutTransfer) {
  Cluster cl(rr_config(2));
  u64 base = 0;
  u64 seen = 0;
  cl.run([&](Node& n) {
    base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u64>(base, 0xfeedbeef);
    n.svm().barrier();
    if (n.rank() == 1) seen = n.svm().read<u64>(base);
    n.svm().barrier();
  });
  EXPECT_EQ(seen, 0xfeedbeefu);

  // The reader holds a read-only replica; the owner kept its frame but
  // was downgraded to read-only (Exclusive -> Shared).
  const scc::Pte* owner_pte = cl.node(0).core().pagetable().find(base);
  const scc::Pte* reader_pte = cl.node(1).core().pagetable().find(base);
  ASSERT_NE(owner_pte, nullptr);
  ASSERT_NE(reader_pte, nullptr);
  EXPECT_TRUE(owner_pte->present);
  EXPECT_FALSE(owner_pte->writable);
  EXPECT_TRUE(reader_pte->present);
  EXPECT_FALSE(reader_pte->writable);

  // One grant, one replica — and no ownership movement at all.
  EXPECT_EQ(cl.node(0).svm().stats().replica_grants, 1u);
  EXPECT_EQ(cl.node(1).svm().stats().replica_installs, 1u);
  EXPECT_EQ(cl.node(0).svm().stats().ownership_serves, 0u);
  EXPECT_EQ(cl.node(1).svm().stats().ownership_acquires, 0u);
}

TEST(SvmDirectory, ManyReadersPayOneGrantTotal) {
  // First reader triggers the Exclusive -> Shared downgrade; everyone
  // after that joins the sharer set directly off the directory word.
  constexpr int kCores = 8;
  Cluster cl(rr_config(kCores));
  bool all_correct = true;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u64>(base, 4242);
    n.svm().barrier();
    if (n.svm().read<u64>(base) != 4242) all_correct = false;
    n.svm().barrier();
  });
  EXPECT_TRUE(all_correct);
  EXPECT_EQ(sum_stat(cl, kCores, &SvmStats::replica_grants), 1u);
  EXPECT_EQ(sum_stat(cl, kCores, &SvmStats::replica_installs),
            static_cast<u64>(kCores - 1));
  EXPECT_EQ(sum_stat(cl, kCores, &SvmStats::ownership_serves), 0u);
}

TEST(SvmDirectory, WriteUpgradeInvalidatesAllSharers) {
  // Ranks 1..3 hold replicas; rank 1 then writes. The upgrade must
  // invalidate the other sharers' replicas (Shared -> Exclusive) and
  // every later read must observe the new value.
  constexpr int kCores = 4;
  Cluster cl(rr_config(kCores));
  u64 base = 0;
  bool reads_ok = true;
  bool rereads_ok = true;
  cl.run([&](Node& n) {
    base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u64>(base, 7);
    n.svm().barrier();
    if (n.svm().read<u64>(base) != 7) reads_ok = false;
    n.svm().barrier();
    if (n.rank() == 1) n.svm().write<u64>(base, 8);
    n.svm().barrier();
    if (n.svm().read<u64>(base) != 8) rereads_ok = false;
    n.svm().barrier();
  });
  EXPECT_TRUE(reads_ok);
  EXPECT_TRUE(rereads_ok);
  // Rank 1 (a sharer itself) invalidated the replicas at ranks 2 and 3;
  // rank 0 lost its copy through the ordinary ownership transfer.
  EXPECT_EQ(cl.node(1).svm().stats().invalidations_sent, 2u);
  EXPECT_EQ(cl.node(2).svm().stats().invalidations_received +
                cl.node(3).svm().stats().invalidations_received,
            2u);
  EXPECT_EQ(cl.node(0).svm().stats().ownership_serves, 1u);
}

TEST(SvmDirectory, InvalidationDropsReplicaMappings) {
  // Observe the page tables right after the upgrade (before the sharers
  // re-fault): the replicas must be gone, only the writer maps the page.
  constexpr int kCores = 4;
  Cluster cl(rr_config(kCores));
  u64 base = 0;
  std::vector<int> present_after_upgrade(kCores, -1);
  std::vector<int> writable_after_upgrade(kCores, -1);
  cl.run([&](Node& n) {
    base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u64>(base, 1);
    n.svm().barrier();
    (void)n.svm().read<u64>(base);
    n.svm().barrier();
    if (n.rank() == 3) n.svm().write<u64>(base, 2);
    n.svm().barrier();
    const scc::Pte* pte = n.core().pagetable().find(base);
    const auto r = static_cast<std::size_t>(n.rank());
    present_after_upgrade[r] = (pte != nullptr && pte->present) ? 1 : 0;
    writable_after_upgrade[r] = (pte != nullptr && pte->writable) ? 1 : 0;
    n.svm().barrier();
  });
  EXPECT_EQ(present_after_upgrade[0], 0);  // unmapped by the transfer
  EXPECT_EQ(present_after_upgrade[1], 0);  // replica invalidated
  EXPECT_EQ(present_after_upgrade[2], 0);  // replica invalidated
  EXPECT_EQ(present_after_upgrade[3], 1);  // the new exclusive owner
  EXPECT_EQ(writable_after_upgrade[3], 1);
}

TEST(SvmDirectory, OwnerUpgradesItsOwnDowngradedPage) {
  // After granting a replica the owner is read-only on its own page; a
  // local write must invalidate the sharers and restore Exclusive
  // without any ownership transfer.
  Cluster cl(rr_config(2));
  u64 base = 0;
  u64 final_at_reader = 0;
  cl.run([&](Node& n) {
    base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u64>(base, 10);
    n.svm().barrier();
    if (n.rank() == 1) (void)n.svm().read<u64>(base);
    n.svm().barrier();
    if (n.rank() == 0) n.svm().write<u64>(base, 11);  // upgrade in place
    n.svm().barrier();
    if (n.rank() == 1) final_at_reader = n.svm().read<u64>(base);
    n.svm().barrier();
  });
  EXPECT_EQ(final_at_reader, 11u);
  EXPECT_EQ(cl.node(0).svm().stats().invalidations_sent, 1u);
  EXPECT_EQ(cl.node(1).svm().stats().invalidations_received, 1u);
  // The upgrade is resolved locally — nobody serves a transfer.
  EXPECT_EQ(cl.node(0).svm().stats().ownership_serves +
                cl.node(1).svm().stats().ownership_serves,
            0u);
}

TEST(SvmDirectory, PollingModeAlsoConverges) {
  // The grant and invalidation mails must also flow when delivery relies
  // on timer-driven polling instead of IPIs.
  constexpr int kCores = 4;
  Cluster cl(rr_config(kCores, /*read_replication=*/true, /*use_ipi=*/false));
  bool ok = true;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u64>(base, 99);
    n.svm().barrier();
    if (n.svm().read<u64>(base) != 99) ok = false;
    n.svm().barrier();
    if (n.rank() == 2) n.svm().write<u64>(base, 100);
    n.svm().barrier();
    if (n.svm().read<u64>(base) != 100) ok = false;
    n.svm().barrier();
  });
  EXPECT_TRUE(ok);
  EXPECT_GE(sum_stat(cl, kCores, &SvmStats::replica_installs), 3u);
}

TEST(SvmDirectory, FlagOffKeepsSingleOwnerSemantics) {
  // Without the flag every read fault still moves ownership and the
  // replica counters stay hard zero.
  constexpr int kCores = 4;
  Cluster cl(rr_config(kCores, /*read_replication=*/false));
  bool ok = true;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u64>(base, 5);
    n.svm().barrier();
    if (n.svm().read<u64>(base) != 5) ok = false;
    n.svm().barrier();
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(sum_stat(cl, kCores, &SvmStats::replica_installs), 0u);
  EXPECT_EQ(sum_stat(cl, kCores, &SvmStats::replica_grants), 0u);
  EXPECT_EQ(sum_stat(cl, kCores, &SvmStats::invalidations_sent), 0u);
  EXPECT_GE(sum_stat(cl, kCores, &SvmStats::ownership_serves), 1u);
}

TEST(SvmDirectory, FaultCountersTrackReadsAndWrites) {
  Cluster cl(rr_config(2));
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u64>(base, 1);  // write fault
    n.svm().barrier();
    if (n.rank() == 1) (void)n.svm().read<u64>(base);  // read fault
    n.svm().barrier();
  });
  EXPECT_GE(cl.node(0).core().counters().svm_write_faults, 1u);
  EXPECT_EQ(cl.node(0).core().counters().svm_read_faults, 0u);
  EXPECT_GE(cl.node(1).core().counters().svm_read_faults, 1u);
  EXPECT_GE(cl.node(1).core().counters().svm_mail_roundtrips, 1u);
  EXPECT_GT(cl.node(1).core().counters().svm_fault_stall_ps, 0u);
}

TEST(SvmDirectory, ReplicationSurvivesUnprotectCycle) {
  // protect_readonly()/unprotect() interact with the directory: after
  // unprotect the state must be Exclusive again (a reader needs a fresh
  // grant, a writer exclusive ownership — no stale Shared bit).
  constexpr int kCores = 4;
  Cluster cl(rr_config(kCores));
  bool ok = true;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    if (n.rank() == 0) n.svm().write<u64>(base, 1);
    n.svm().barrier();
    (void)n.svm().read<u64>(base);  // everyone shares
    n.svm().barrier();
    n.svm().protect_readonly(base, 4096);
    if (n.svm().read<u64>(base) != 1) ok = false;
    n.svm().unprotect(base, 4096);
    if (n.rank() == 2) n.svm().write<u64>(base, 2);
    n.svm().barrier();
    if (n.svm().read<u64>(base) != 2) ok = false;
    n.svm().barrier();
  });
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace msvm::svm
