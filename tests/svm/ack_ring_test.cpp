// AckRing boundary behaviour: capacity eviction, duplicate detection,
// and the u16 sequence wraparound (which clears the ring so stale keys
// from the previous sequence epoch cannot swallow fresh ACKs). These are
// exactly the paths a simulated run would need ~65k protocol round-trips
// to reach, hence the standalone class and this direct test.
#include "svm/ack_ring.hpp"

#include <gtest/gtest.h>

namespace msvm::svm {
namespace {

using Admit = AckRing::Admit;
using u64 = AckRing::u64;

TEST(AckRing, FreshThenDuplicate) {
  AckRing ring;
  EXPECT_EQ(ring.admit(0xabcd), Admit::kFresh);
  EXPECT_EQ(ring.admit(0xabcd), Admit::kDuplicate);
  EXPECT_TRUE(ring.remembers(0xabcd));
  EXPECT_EQ(ring.admit(0xef01), Admit::kFresh);
  EXPECT_EQ(ring.admit(0xabcd), Admit::kDuplicate);
}

TEST(AckRing, SequenceNumbersSkipZero) {
  AckRing ring;
  EXPECT_EQ(ring.next_seq(), 1);
  EXPECT_EQ(ring.next_seq(), 2);
  EXPECT_EQ(ring.seq(), 2);
}

TEST(AckRing, CapacityEvictionIsCountedAndFifo) {
  AckRing ring;
  // Fill every slot: all fresh, no evictions yet.
  for (u64 k = 1; k <= AckRing::kEntries; ++k) {
    EXPECT_EQ(ring.admit(k), Admit::kFresh) << "key " << k;
  }
  // One more displaces the oldest entry (slot 0, key 1).
  EXPECT_EQ(ring.admit(1000), Admit::kFreshEvicting);
  EXPECT_FALSE(ring.remembers(1));
  EXPECT_TRUE(ring.remembers(2));
  EXPECT_TRUE(ring.remembers(1000));
  // The evicted key is re-admitted as fresh work — the double-count
  // hazard the ring guards against has a bounded window, not an
  // unbounded memory.
  EXPECT_EQ(ring.admit(1), Admit::kFreshEvicting);
}

TEST(AckRing, WrapClearsRingAndCountsWrap) {
  AckRing ring;
  // Park some ACK identities from the pre-wrap sequence epoch.
  ASSERT_EQ(ring.admit(0x1111), Admit::kFresh);
  ASSERT_EQ(ring.admit(0x2222), Admit::kFresh);
  // Drive the u16 counter to the wrap point: 65535 increments reach
  // seq 65535, the next one wraps to 1 (0 is reserved).
  for (int i = 0; i < 65535; ++i) ring.next_seq();
  ASSERT_EQ(ring.seq(), 65535);
  ASSERT_EQ(ring.wraps(), 0u);
  EXPECT_EQ(ring.next_seq(), 1);
  EXPECT_EQ(ring.wraps(), 1u);
  // The wrap cleared the ring: the old epoch's keys are forgotten, so a
  // same-packed key from the new epoch is fresh (not a false duplicate),
  // and nothing counts as an eviction right after the clear.
  EXPECT_FALSE(ring.remembers(0x1111));
  EXPECT_FALSE(ring.remembers(0x2222));
  EXPECT_EQ(ring.admit(0x1111), Admit::kFresh);
}

TEST(AckRing, SecondWrapAlsoCounted) {
  AckRing ring;
  // Each epoch is 65535 calls (values 1..65535) plus the wrapping call
  // that re-yields 1; two full wraps and one more call land on seq 2.
  for (int i = 0; i < 2 * 65536; ++i) ring.next_seq();
  EXPECT_EQ(ring.wraps(), 2u);
  EXPECT_EQ(ring.seq(), 2);
}

}  // namespace
}  // namespace msvm::svm
