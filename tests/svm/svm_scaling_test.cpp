// End-to-end tests past the 48-core SCC die: multi-chip topologies run
// the SVM workloads correctly (checksums match the host reference), the
// wide directory invalidates replicas at >64 cores, and the sharded
// event-lane scheduler is deterministic — two same-seed runs produce
// identical virtual times and protocol counters.
#include <gtest/gtest.h>

#include "workloads/laplace.hpp"
#include "workloads/matmul.hpp"

namespace msvm::workloads {
namespace {

LaplaceParams small_laplace() {
  LaplaceParams p;
  p.nx = 512;  // one page per row
  p.ny = 128;
  p.iterations = 2;
  return p;
}

TEST(SvmScaling, LaplaceNinetySixCoresMatchesReference) {
  LaplaceParams p = small_laplace();
  const double want = laplace_reference_checksum(p);
  const auto strong = run_laplace_svm(p, svm::Model::kStrong, 96);
  EXPECT_NEAR(strong.checksum, want, 1e-9);
  const auto lazy = run_laplace_svm(p, svm::Model::kLazyRelease, 96);
  EXPECT_NEAR(lazy.checksum, want, 1e-9);
}

TEST(SvmScaling, WideDirectoryInvalidatesPastSixtyFourCores) {
  // 96 cores needs the multi-word directory (2 sharer words). Boundary
  // rows are read by neighbours and re-written by their owner each
  // iteration, so read replication must grant and then multicast-
  // invalidate replicas — through the wide encoding.
  LaplaceParams p = small_laplace();
  p.read_replication = true;
  const auto r = run_laplace_svm(p, svm::Model::kStrong, 96);
  EXPECT_NEAR(r.checksum, laplace_reference_checksum(p), 1e-9);
  EXPECT_GT(r.invalidations, 0u);
}

TEST(SvmScaling, LaneShardedRunIsDeterministic) {
  // Same seed, same config, two runs, four event lanes: every virtual
  // time and protocol counter must match bit for bit (the property the
  // CI double-run gate enforces on the bench binaries).
  LaplaceParams p = small_laplace();
  p.sched_lanes = 4;
  p.read_replication = true;
  const auto a = run_laplace_svm(p, svm::Model::kStrong, 96);
  const auto b = run_laplace_svm(p, svm::Model::kStrong, 96);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.page_faults, b.page_faults);
  EXPECT_EQ(a.ownership_acquires, b.ownership_acquires);
  EXPECT_EQ(a.invalidations, b.invalidations);
  EXPECT_EQ(a.mail_roundtrips, b.mail_roundtrips);
}

TEST(SvmScaling, MatmulOneTwentyEightCoresMatchesReference) {
  MatmulParams p;
  p.n = 48;
  p.sched_lanes = 4;
  const double want = matmul_reference_checksum(p);
  const auto r = run_matmul(p, svm::Model::kLazyRelease, 128);
  EXPECT_NEAR(r.checksum, want, 1e-6);
}

}  // namespace
}  // namespace msvm::workloads
