// RCCE / iRCCE tests: one-sided put/get, two-sided blocking transfers,
// chunked large messages, non-blocking overlap, barrier and bcast.
#include "rcce/rcce.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "sccsim/addrmap.hpp"
#include "sccsim/chip.hpp"

namespace msvm::rcce {
namespace {

scc::ChipConfig small_config(int cores) {
  scc::ChipConfig cfg;
  cfg.num_cores = cores;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 2 << 20;
  return cfg;
}

/// Boots kernel + RCCE on every core; all cores are members.
class RcceRig {
 public:
  explicit RcceRig(int cores) : chip_(small_config(cores)) {
    for (int i = 0; i < cores; ++i) members_.push_back(i);
    kernels_.resize(static_cast<std::size_t>(cores));
    endpoints_.resize(static_cast<std::size_t>(cores));
  }

  scc::Chip& chip() { return chip_; }

  using Body =
      std::function<void(int rank, Rcce& rcce, kernel::Kernel& k)>;

  void run(Body body) {
    for (int i = 0; i < chip_.num_cores(); ++i) {
      chip_.spawn_program(i, [this, i, body](scc::Core& c) {
        auto& kern = kernels_[static_cast<std::size_t>(i)];
        kern = std::make_unique<kernel::Kernel>(c);
        kern->boot();
        auto& ep = endpoints_[static_cast<std::size_t>(i)];
        ep = std::make_unique<Rcce>(*kern, members_);
        body(ep->rank(), *ep, *kern);
      });
    }
    chip_.run();
  }

 private:
  scc::Chip chip_;
  std::vector<int> members_;
  std::vector<std::unique_ptr<kernel::Kernel>> kernels_;
  std::vector<std::unique_ptr<Rcce>> endpoints_;
};

/// Fills a private buffer with a deterministic pattern via the core.
void fill_pattern(scc::Core& c, u64 vaddr, u32 bytes, u8 seed) {
  for (u32 i = 0; i < bytes; ++i) {
    c.vstore<u8>(vaddr + i, static_cast<u8>(seed + i * 7));
  }
}

bool check_pattern(scc::Core& c, u64 vaddr, u32 bytes, u8 seed) {
  for (u32 i = 0; i < bytes; ++i) {
    if (c.vload<u8>(vaddr + i) != static_cast<u8>(seed + i * 7)) {
      return false;
    }
  }
  return true;
}

TEST(Rcce, RankAssignment) {
  RcceRig rig(4);
  std::vector<int> ranks(4, -1);
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    ranks[static_cast<std::size_t>(k.core_id())] = rank;
    EXPECT_EQ(r.size(), 4);
  });
  EXPECT_EQ(ranks, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Rcce, PutGetRoundTrip) {
  RcceRig rig(2);
  bool ok = false;
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    if (rank == 0) {
      const u64 buf = k.kmalloc(128);
      fill_pattern(k.core(), buf, 128, 5);
      r.put(1, 0, buf, 128);
      r.barrier();
      r.barrier();
    } else {
      r.barrier();  // put completed
      const u64 buf = k.kmalloc(128);
      r.get(buf, 1, 0, 128);  // read own MPB (rank 1's buffer)
      ok = check_pattern(k.core(), buf, 128, 5);
      r.barrier();
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Rcce, BlockingSendRecvSmall) {
  RcceRig rig(2);
  bool ok = false;
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    const u64 buf = k.kmalloc(256);
    if (rank == 0) {
      fill_pattern(k.core(), buf, 256, 9);
      r.send(buf, 256, 1);
    } else {
      r.recv(buf, 256, 0);
      ok = check_pattern(k.core(), buf, 256, 9);
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Rcce, LargeMessageIsChunked) {
  // 20 KiB > 4 KiB chunk size: the pipeline must run multiple rounds.
  RcceRig rig(2);
  bool ok = false;
  u64 chunks = 0;
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    constexpr u32 kBytes = 20 * 1024;
    const u64 buf = k.kmalloc(kBytes);
    if (rank == 0) {
      fill_pattern(k.core(), buf, kBytes, 3);
      r.send(buf, kBytes, 1);
      chunks = r.stats().chunks;
    } else {
      r.recv(buf, kBytes, 0);
      ok = check_pattern(k.core(), buf, kBytes, 3);
    }
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(chunks, 5u);  // ceil(20K / 4K)
}

TEST(Rcce, NonBlockingSendRecvCompletes) {
  RcceRig rig(2);
  bool ok = false;
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    const u64 buf = k.kmalloc(8192);
    if (rank == 0) {
      fill_pattern(k.core(), buf, 8192, 1);
      auto req = r.isend(buf, 8192, 1);
      r.wait(req);
      EXPECT_TRUE(req->done());
    } else {
      auto req = r.irecv(buf, 8192, 0);
      r.wait(req);
      ok = check_pattern(k.core(), buf, 8192, 1);
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Rcce, BidirectionalExchangeNoDeadlock) {
  // Both ranks isend+irecv simultaneously — the ghost-cell pattern of the
  // Laplace benchmark. Blocking sends would deadlock here if unbuffered;
  // the non-blocking engine must interleave.
  RcceRig rig(2);
  bool ok0 = false;
  bool ok1 = false;
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    constexpr u32 kBytes = 6000;
    const u64 out = k.kmalloc(kBytes);
    const u64 in = k.kmalloc(kBytes);
    fill_pattern(k.core(), out, kBytes, static_cast<u8>(10 + rank));
    const int peer = 1 - rank;
    auto rr = r.irecv(in, kBytes, peer);
    auto sr = r.isend(out, kBytes, peer);
    r.wait_all({rr, sr});
    const bool ok =
        check_pattern(k.core(), in, kBytes, static_cast<u8>(10 + peer));
    if (rank == 0) {
      ok0 = ok;
    } else {
      ok1 = ok;
    }
  });
  EXPECT_TRUE(ok0);
  EXPECT_TRUE(ok1);
}

TEST(Rcce, QueuedSendsToDistinctPeersDrainInOrder) {
  RcceRig rig(3);
  bool ok1 = false;
  bool ok2 = false;
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    const u64 buf = k.kmalloc(5000);
    if (rank == 0) {
      fill_pattern(k.core(), buf, 5000, 21);
      auto a = r.isend(buf, 5000, 1);
      auto b = r.isend(buf, 5000, 2);  // queued behind `a`
      r.wait_all({a, b});
    } else {
      r.recv(buf, 5000, 0);
      const bool ok = check_pattern(k.core(), buf, 5000, 21);
      if (rank == 1) {
        ok1 = ok;
      } else {
        ok2 = ok;
      }
    }
  });
  EXPECT_TRUE(ok1);
  EXPECT_TRUE(ok2);
}

TEST(Rcce, BarrierSynchronisesAllRanks) {
  constexpr int kCores = 8;
  RcceRig rig(kCores);
  std::vector<TimePs> after(kCores, 0);
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    // Stagger arrival times wildly.
    k.core().compute_cycles(static_cast<u64>(rank) * 100'000);
    r.barrier();
    after[static_cast<std::size_t>(rank)] = k.core().now();
  });
  // Nobody may leave before the slowest arrival (~rank 7's offset).
  const TimePs slowest = 7 * 100'000 *
                         rig.chip().config().core_cycle_ps();
  for (int i = 0; i < kCores; ++i) {
    EXPECT_GE(after[static_cast<std::size_t>(i)], slowest);
  }
}

TEST(Rcce, RepeatedBarriersStaySynchronised) {
  constexpr int kCores = 4;
  RcceRig rig(kCores);
  std::vector<int> counters(kCores, 0);
  bool monotone = true;
  rig.run([&](int rank, Rcce& r, kernel::Kernel&) {
    for (int round = 0; round < 10; ++round) {
      counters[static_cast<std::size_t>(rank)] = round;
      r.barrier();
      // After the barrier every counter must be at this round.
      for (int other = 0; other < kCores; ++other) {
        if (counters[static_cast<std::size_t>(other)] < round) {
          monotone = false;
        }
      }
      r.barrier();
    }
  });
  EXPECT_TRUE(monotone);
}

TEST(Rcce, BcastReplicatesRootBuffer) {
  constexpr int kCores = 4;
  RcceRig rig(kCores);
  std::vector<bool> ok(kCores, false);
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    const u64 buf = k.kmalloc(2048);
    if (rank == 2) fill_pattern(k.core(), buf, 2048, 33);
    r.bcast(buf, 2048, /*root_rank=*/2);
    ok[static_cast<std::size_t>(rank)] =
        check_pattern(k.core(), buf, 2048, 33);
  });
  for (int i = 0; i < kCores; ++i) EXPECT_TRUE(ok[static_cast<std::size_t>(i)]);
}

TEST(Rcce, SubsetDomainUsesRanksNotCoreIds) {
  // Domain = cores {1, 3}: rank 0 is core 1.
  scc::Chip chip(small_config(4));
  std::vector<int> members{1, 3};
  bool ok = false;
  std::vector<std::unique_ptr<kernel::Kernel>> kernels(4);
  std::vector<std::unique_ptr<Rcce>> eps(4);
  for (int core : members) {
    chip.spawn_program(core, [&, core](scc::Core& c) {
      kernels[static_cast<std::size_t>(core)] =
          std::make_unique<kernel::Kernel>(c);
      kernels[static_cast<std::size_t>(core)]->boot();
      eps[static_cast<std::size_t>(core)] = std::make_unique<Rcce>(
          *kernels[static_cast<std::size_t>(core)], members);
      Rcce& r = *eps[static_cast<std::size_t>(core)];
      auto& k = *kernels[static_cast<std::size_t>(core)];
      const u64 buf = k.kmalloc(64);
      if (r.rank() == 0) {
        EXPECT_EQ(core, 1);
        fill_pattern(c, buf, 64, 2);
        r.send(buf, 64, 1);
      } else {
        EXPECT_EQ(core, 3);
        r.recv(buf, 64, 0);
        ok = check_pattern(c, buf, 64, 2);
      }
    });
  }
  chip.run();
  EXPECT_TRUE(ok);
}

TEST(Rcce, StatsAccumulate) {
  RcceRig rig(2);
  u64 sent_bytes = 0;
  u64 barriers = 0;
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    const u64 buf = k.kmalloc(1000);
    if (rank == 0) {
      r.send(buf, 1000, 1);
      sent_bytes = r.stats().bytes_sent;
    } else {
      r.recv(buf, 1000, 0);
    }
    r.barrier();
    if (rank == 0) barriers = r.stats().barriers;
  });
  EXPECT_EQ(sent_bytes, 1000u);
  EXPECT_EQ(barriers, 1u);
}

}  // namespace
}  // namespace msvm::rcce
