// Tests for the RCCE reduction and data-movement collectives.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rcce/rcce.hpp"
#include "sccsim/chip.hpp"

namespace msvm::rcce {
namespace {

scc::ChipConfig small_config(int cores) {
  scc::ChipConfig cfg;
  cfg.num_cores = cores;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 2 << 20;
  return cfg;
}

class CollectiveRig {
 public:
  explicit CollectiveRig(int cores) : chip_(small_config(cores)) {
    for (int i = 0; i < cores; ++i) members_.push_back(i);
    kernels_.resize(static_cast<std::size_t>(cores));
    endpoints_.resize(static_cast<std::size_t>(cores));
  }

  using Body =
      std::function<void(int rank, Rcce& rcce, kernel::Kernel& k)>;

  void run(Body body) {
    for (int i = 0; i < chip_.num_cores(); ++i) {
      chip_.spawn_program(i, [this, i, body](scc::Core& c) {
        auto& kern = kernels_[static_cast<std::size_t>(i)];
        kern = std::make_unique<kernel::Kernel>(c);
        kern->boot();
        auto& ep = endpoints_[static_cast<std::size_t>(i)];
        ep = std::make_unique<Rcce>(*kern, members_);
        body(ep->rank(), *ep, *kern);
      });
    }
    chip_.run();
  }

 private:
  scc::Chip chip_;
  std::vector<int> members_;
  std::vector<std::unique_ptr<kernel::Kernel>> kernels_;
  std::vector<std::unique_ptr<Rcce>> endpoints_;
};

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, ReduceSumOfDoubles) {
  const int cores = GetParam();
  CollectiveRig rig(cores);
  constexpr u32 kCount = 40;
  std::vector<double> result(kCount, 0.0);
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    const u64 buf = k.kmalloc(kCount * 8);
    for (u32 i = 0; i < kCount; ++i) {
      k.core().vstore<double>(buf + i * 8,
                              static_cast<double>(rank + 1) * (i + 1));
    }
    r.reduce<double>(buf, kCount, Rcce::ReduceOp::kSum, /*root=*/0);
    if (rank == 0) {
      for (u32 i = 0; i < kCount; ++i) {
        result[i] = k.core().vload<double>(buf + i * 8);
      }
    }
  });
  const double rank_sum = cores * (cores + 1) / 2.0;
  for (u32 i = 0; i < kCount; ++i) {
    EXPECT_DOUBLE_EQ(result[i], rank_sum * (i + 1)) << "element " << i;
  }
}

TEST_P(CollectiveSizes, AllreduceMaxReachesEveryRank) {
  const int cores = GetParam();
  CollectiveRig rig(cores);
  std::vector<u64> seen(static_cast<std::size_t>(cores), 0);
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    const u64 buf = k.kmalloc(8);
    k.core().vstore<u64>(buf, 100 + static_cast<u64>(rank) * 7);
    r.allreduce<u64>(buf, 1, Rcce::ReduceOp::kMax);
    seen[static_cast<std::size_t>(rank)] = k.core().vload<u64>(buf);
  });
  const u64 expect = 100 + static_cast<u64>(cores - 1) * 7;
  for (int r = 0; r < cores; ++r) {
    EXPECT_EQ(seen[static_cast<std::size_t>(r)], expect) << "rank " << r;
  }
}

TEST_P(CollectiveSizes, GatherCollectsRankOrdered) {
  const int cores = GetParam();
  CollectiveRig rig(cores);
  constexpr u32 kBytesEach = 96;
  std::vector<u8> gathered;
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    const u64 src = k.kmalloc(kBytesEach);
    for (u32 i = 0; i < kBytesEach; ++i) {
      k.core().vstore<u8>(src + i, static_cast<u8>(rank * 16 + i % 16));
    }
    const u64 dst =
        k.kmalloc(kBytesEach * static_cast<u64>(cores));
    r.gather(src, kBytesEach, dst, /*root=*/1 % cores);
    if (rank == 1 % cores) {
      for (u32 i = 0; i < kBytesEach * static_cast<u32>(cores); ++i) {
        gathered.push_back(k.core().vload<u8>(dst + i));
      }
    }
  });
  ASSERT_EQ(gathered.size(), kBytesEach * static_cast<std::size_t>(cores));
  for (int r = 0; r < cores; ++r) {
    for (u32 i = 0; i < kBytesEach; ++i) {
      ASSERT_EQ(gathered[static_cast<std::size_t>(r) * kBytesEach + i],
                static_cast<u8>(r * 16 + i % 16))
          << "rank " << r << " byte " << i;
    }
  }
}

TEST_P(CollectiveSizes, ScatterDistributesSlices) {
  const int cores = GetParam();
  CollectiveRig rig(cores);
  constexpr u32 kBytesEach = 64;
  std::vector<bool> ok(static_cast<std::size_t>(cores), false);
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    const u64 src = k.kmalloc(kBytesEach * static_cast<u64>(cores));
    if (rank == 0) {
      for (u32 i = 0; i < kBytesEach * static_cast<u32>(cores); ++i) {
        k.core().vstore<u8>(src + i, static_cast<u8>(i * 3));
      }
    }
    const u64 dst = k.kmalloc(kBytesEach);
    r.scatter(src, kBytesEach, dst, /*root=*/0);
    bool good = true;
    for (u32 i = 0; i < kBytesEach; ++i) {
      const u8 expect = static_cast<u8>(
          (static_cast<u32>(rank) * kBytesEach + i) * 3);
      if (k.core().vload<u8>(dst + i) != expect) good = false;
    }
    ok[static_cast<std::size_t>(rank)] = good;
  });
  for (int r = 0; r < cores; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

TEST_P(CollectiveSizes, ReduceMinIntegers) {
  const int cores = GetParam();
  CollectiveRig rig(cores);
  i32 result = 0;
  rig.run([&](int rank, Rcce& r, kernel::Kernel& k) {
    const u64 buf = k.kmalloc(4);
    k.core().vstore<i32>(buf, 1000 - rank * 13);
    r.reduce<i32>(buf, 1, Rcce::ReduceOp::kMin, /*root=*/0);
    if (rank == 0) result = k.core().vload<i32>(buf);
  });
  EXPECT_EQ(result, 1000 - (cores - 1) * 13);
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace msvm::rcce
