// End-to-end validation of the Laplace workload: all three variants must
// produce the reference solution, with the consistency-model and
// message-count side effects the paper describes.
#include "workloads/laplace.hpp"

#include <gtest/gtest.h>

namespace msvm::workloads {
namespace {

LaplaceParams small_params() {
  LaplaceParams p;
  p.nx = 64;
  p.ny = 32;
  p.iterations = 6;
  return p;
}

TEST(LaplaceRows, PartitionCoversAllRowsExactlyOnce) {
  for (const int n : {1, 2, 3, 7, 48}) {
    u32 covered = 0;
    u32 prev_last = 0;
    for (int r = 0; r < n; ++r) {
      const auto [first, last] = laplace_rows_of_rank(1024, r, n);
      EXPECT_EQ(first, prev_last);
      EXPECT_LE(first, last);
      covered += last - first;
      prev_last = last;
    }
    EXPECT_EQ(covered, 1024u);
    EXPECT_EQ(prev_last, 1024u);
  }
}

TEST(LaplaceRows, PaperGeometryRowsArePageAligned) {
  // 512 doubles per row = exactly one 4 KiB page (the property the
  // paper's ownership traffic depends on).
  EXPECT_EQ(512 * sizeof(double), 4096u);
}

TEST(LaplaceReference, HeatFlowsIntoTheSheet) {
  LaplaceParams p = small_params();
  const double cold = [&] {
    LaplaceParams q = p;
    q.iterations = 0;
    return laplace_reference_checksum(q);
  }();
  const double warm = laplace_reference_checksum(p);
  // Top edge stays hot and interior warms up, so the checksum grows.
  EXPECT_GT(warm, cold);
}

struct VariantCase {
  const char* name;
  int cores;
};

class LaplaceVariants : public ::testing::TestWithParam<int> {};

TEST_P(LaplaceVariants, SvmLazyMatchesReference) {
  LaplaceParams p = small_params();
  const double expect = laplace_reference_checksum(p);
  const LaplaceResult r =
      run_laplace_svm(p, svm::Model::kLazyRelease, GetParam());
  EXPECT_NEAR(r.checksum, expect, 1e-9 * std::abs(expect));
}

TEST_P(LaplaceVariants, SvmStrongMatchesReference) {
  LaplaceParams p = small_params();
  const double expect = laplace_reference_checksum(p);
  const LaplaceResult r =
      run_laplace_svm(p, svm::Model::kStrong, GetParam());
  EXPECT_NEAR(r.checksum, expect, 1e-9 * std::abs(expect));
}

TEST_P(LaplaceVariants, IrcceMatchesReference) {
  LaplaceParams p = small_params();
  const double expect = laplace_reference_checksum(p);
  const LaplaceResult r = run_laplace_ircce(p, GetParam());
  EXPECT_NEAR(r.checksum, expect, 1e-9 * std::abs(expect));
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, LaplaceVariants,
                         ::testing::Values(1, 2, 4, 8));

TEST(Laplace, StrongModelFaultsPerIterationAreSmall) {
  // Section 7.2.2: "each iteration triggers two page faults" per core —
  // ownership ping-pong on the boundary rows only. This requires the
  // paper's geometry where one row is exactly one page (nx = 512); with
  // narrower rows several ranks share a page and ownership thrashes far
  // more. Allow a small constant factor (our accounting counts both
  // boundary directions).
  // Geometry matters twice here: one row must be one page (nx = 512, as
  // in the paper) AND each rank needs enough rows that its boundary-row
  // sweep does not overlap its neighbour's in time — with tiny blocks
  // both cores read the shared boundary rows concurrently and steal the
  // page per *cell*, not per iteration. The paper's 1024/48 ~ 21 rows
  // per core keeps the windows apart; we use 16 rows per core.
  LaplaceParams p;
  p.nx = 512;
  p.ny = 64;
  p.iterations = 8;
  const LaplaceResult r = run_laplace_svm(p, svm::Model::kStrong, 4);
  const double per_core_iter = static_cast<double>(r.ownership_acquires) /
                               (4.0 * p.iterations);
  // The paper counts the two ghost-row pulls; a full accounting adds the
  // steal-backs of the core's own boundary rows in both arrays (~6 per
  // core per iteration). Either way the overhead stays O(1) pages per
  // iteration — the property behind the "overhead is negligible" claim.
  EXPECT_GE(per_core_iter, 1.0);
  EXPECT_LE(per_core_iter, 8.0);
}

TEST(Laplace, LazyModelHasNoSteadyStateFaults) {
  LaplaceParams p = small_params();
  const LaplaceResult r = run_laplace_svm(p, svm::Model::kLazyRelease, 4);
  EXPECT_EQ(r.ownership_acquires, 0u);
  // After warm-up, pages are mapped everywhere: the only faults are the
  // per-core mapping faults on neighbour boundary rows (not per
  // iteration).
  EXPECT_LT(r.page_faults, 2u * 4u * p.iterations);
}

TEST(Laplace, IrcceMessagesMatchGhostExchange) {
  LaplaceParams p = small_params();
  const int cores = 4;
  const LaplaceResult r = run_laplace_ircce(p, cores);
  // Each iteration: every interior neighbour pair exchanges two rows.
  const u64 row_bytes = p.nx * 8;
  const u64 expect =
      static_cast<u64>(p.iterations) * 2 * (cores - 1) * row_bytes;
  EXPECT_EQ(r.bytes_messaged, expect);
}

TEST(Laplace, SvmUsesWcbAndIrcceDoesNot) {
  // The central asymmetry behind Figure 9: SVM pages are MPBT-typed and
  // write through the combine buffer; the private arrays of the
  // message-passing variant are not, so every store is its own DRAM
  // transaction.
  LaplaceParams p = small_params();
  const LaplaceResult svm_r =
      run_laplace_svm(p, svm::Model::kLazyRelease, 2);
  const LaplaceResult mp_r = run_laplace_ircce(p, 2);
  EXPECT_GT(svm_r.wcb_flushes, 100u);
  EXPECT_EQ(mp_r.wcb_flushes, 0u);
  // And the mirror image: only the MP variant can hit in the L2.
  EXPECT_EQ(svm_r.l2_hits, 0u);
  EXPECT_GT(mp_r.l2_hits, 0u);
}

TEST(Laplace, DeterministicAcrossRuns) {
  LaplaceParams p = small_params();
  const LaplaceResult a = run_laplace_svm(p, svm::Model::kStrong, 3);
  const LaplaceResult b = run_laplace_svm(p, svm::Model::kStrong, 3);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.page_faults, b.page_faults);
}

}  // namespace
}  // namespace msvm::workloads
