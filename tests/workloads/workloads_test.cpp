// Validation of the remaining workloads: mailbox ping-pong shape,
// Table-1 overheads, histogram correctness, matmul correctness and the
// read-only-region effect.
#include <gtest/gtest.h>

#include "workloads/histogram.hpp"
#include "workloads/matmul.hpp"
#include "workloads/pingpong.hpp"
#include "workloads/svm_overhead.hpp"

namespace msvm::workloads {
namespace {

TEST(PingPong, LatencyGrowsWithDistancePollMode) {
  PingPongParams p;
  p.use_ipi = false;
  p.reps = 50;
  p.core_a = 0;
  p.core_b = 1;  // same tile: 0 hops
  const TimePs near = run_mailbox_pingpong(p).half_rtt_mean;
  p.core_b = 47;  // opposite corner: 8 hops
  const TimePs far = run_mailbox_pingpong(p).half_rtt_mean;
  EXPECT_GT(far, near);
  // "increases linear according to the distance with a very low
  // gradient": the 8-hop latency stays well under 2x the 0-hop latency.
  EXPECT_LT(far, 2 * near);
}

TEST(PingPong, IpiCostsMoreThanPollingWithTwoCores) {
  // Figure 6: with only two active cores the polling variant checks a
  // single slot and beats the interrupt-driven path.
  PingPongParams p;
  p.reps = 50;
  p.activated_cores = 2;
  p.use_ipi = false;
  const TimePs poll = run_mailbox_pingpong(p).half_rtt_mean;
  p.use_ipi = true;
  const TimePs ipi = run_mailbox_pingpong(p).half_rtt_mean;
  EXPECT_GT(ipi, poll);
}

TEST(PingPong, PollLatencyGrowsWithActivatedCores) {
  // Figure 7, curve 1: more activated cores = more slots to scan.
  PingPongParams p;
  p.use_ipi = false;
  p.reps = 40;
  p.activated_cores = 2;
  const TimePs few = run_mailbox_pingpong(p).half_rtt_mean;
  p.activated_cores = 24;
  const TimePs many = run_mailbox_pingpong(p).half_rtt_mean;
  EXPECT_GT(many, few * 3 / 2);
}

TEST(PingPong, IpiLatencyFlatInActivatedCores) {
  // Figure 7, curve 2.
  PingPongParams p;
  p.use_ipi = true;
  p.reps = 40;
  p.activated_cores = 2;
  const TimePs few = run_mailbox_pingpong(p).half_rtt_mean;
  p.activated_cores = 24;
  const TimePs many = run_mailbox_pingpong(p).half_rtt_mean;
  const double ratio = static_cast<double>(many) / static_cast<double>(few);
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

TEST(PingPong, BackgroundNoiseBarelyPerturbsIpiLatency) {
  // Figure 7, curve 3: "the average latency is on a similar level ...
  // compared to the benchmark without background noise".
  PingPongParams p;
  p.use_ipi = true;
  p.reps = 40;
  p.activated_cores = 16;
  p.background_noise = false;
  const TimePs quiet = run_mailbox_pingpong(p).half_rtt_mean;
  p.background_noise = true;
  const TimePs noisy = run_mailbox_pingpong(p).half_rtt_mean;
  const double ratio =
      static_cast<double>(noisy) / static_cast<double>(quiet);
  EXPECT_LT(ratio, 1.6);
}

TEST(SvmOverhead, AllocationCostIndependentOfModel) {
  SvmOverheadParams p;
  p.bytes = 1 << 20;
  p.model = svm::Model::kLazyRelease;
  const auto lazy = run_svm_overhead(p);
  p.model = svm::Model::kStrong;
  const auto strong = run_svm_overhead(p);
  // Table 1 row 1: both models reserve address space identically (the
  // sub-0.1% difference comes from the Lazy barrier's CL1INVMB).
  EXPECT_NEAR(static_cast<double>(lazy.alloc_total),
              static_cast<double>(strong.alloc_total),
              0.002 * static_cast<double>(lazy.alloc_total));
  // Row 2: the first-touch path is identical too ("values are
  // independent from the used memory model").
  const double ratio = static_cast<double>(lazy.phys_alloc_per_page) /
                       static_cast<double>(strong.phys_alloc_per_page);
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.05);
}

TEST(SvmOverhead, StrongMappingCostExceedsLazy) {
  SvmOverheadParams p;
  p.bytes = 1 << 20;
  p.model = svm::Model::kLazyRelease;
  const auto lazy = run_svm_overhead(p);
  p.model = svm::Model::kStrong;
  const auto strong = run_svm_overhead(p);
  // Table 1 row 3: 10.2 us (strong) vs 2.4 us (lazy).
  EXPECT_GT(strong.map_per_page, 2 * lazy.map_per_page);
  // Row 4: retrieval cost only exists under the strong model.
  EXPECT_GT(strong.retrieve_per_page, 10 * lazy.retrieve_per_page);
}

TEST(SvmOverhead, PhysicalAllocationDominatesMapping) {
  // Table 1 row 2 (112 us) is an order of magnitude above row 3.
  SvmOverheadParams p;
  p.bytes = 1 << 20;
  const auto r = run_svm_overhead(p);
  EXPECT_GT(r.phys_alloc_per_page, 3 * r.map_per_page);
}

class HistogramModels
    : public ::testing::TestWithParam<std::tuple<svm::Model, int>> {};

TEST_P(HistogramModels, MatchesReference) {
  const auto [model, cores] = GetParam();
  HistogramParams p;
  p.bins = 64;
  p.samples_per_core = 512;
  const HistogramResult r = run_histogram(p, model, cores);
  const auto expect = histogram_reference(p, cores);
  EXPECT_EQ(r.bins, expect);
  EXPECT_EQ(r.total_samples,
            static_cast<u64>(cores) * p.samples_per_core);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndCores, HistogramModels,
    ::testing::Combine(::testing::Values(svm::Model::kLazyRelease,
                                         svm::Model::kStrong),
                       ::testing::Values(1, 2, 4)));

TEST(Matmul, MatchesReferenceLazy) {
  MatmulParams p;
  p.n = 32;
  const double expect = matmul_reference_checksum(p);
  const MatmulResult r = run_matmul(p, svm::Model::kLazyRelease, 4);
  EXPECT_NEAR(r.checksum, expect, 1e-9 * expect);
}

TEST(Matmul, MatchesReferenceStrongWithProtectedInputs) {
  MatmulParams p;
  p.n = 32;
  const double expect = matmul_reference_checksum(p);
  const MatmulResult r = run_matmul(p, svm::Model::kStrong, 4);
  EXPECT_NEAR(r.checksum, expect, 1e-9 * expect);
}

TEST(Matmul, ReadOnlyInputsEnableL2AndKillOwnershipTraffic) {
  MatmulParams p;
  // n = 64: each matrix is 32 KiB (larger than L1, so the read-only L2
  // path is visible) and each rank's C block is page-aligned.
  p.n = 64;
  p.protect_inputs = true;
  const MatmulResult with = run_matmul(p, svm::Model::kStrong, 2);
  p.protect_inputs = false;
  const MatmulResult without = run_matmul(p, svm::Model::kStrong, 2);
  EXPECT_GT(with.l2_hits, 0u);
  // Unprotected inputs bounce ownership between the two cores' reads.
  EXPECT_GT(without.ownership_acquires, 4 * with.ownership_acquires);
  // And the protected run is faster.
  EXPECT_LT(with.elapsed, without.elapsed);
}

}  // namespace
}  // namespace msvm::workloads
