// Observability core tests: the EventRing keep-the-newest semantics the
// protocol trace inherited, the bus's category gate and sink fan-out,
// and the metrics registry (counters, field-table folding, histograms).
#include "obs/bus.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "svm/svm.hpp"

namespace msvm::obs {
namespace {

// Ported from the protocol layer's former TraceRing test: the ring keeps
// the newest events, counts everything ever recorded, and the svm-trace
// renderer reports the overwritten prefix.
TEST(EventRing, KeepsNewestEventsAndCountsOverflow) {
  EventRing ring(4);
  for (u64 i = 0; i < 10; ++i) {
    ring.record(Event{0, i, 1, 0, EventKind::kProtoFault, 0});
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.size(), 4u);

  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().a, 6u);  // oldest survivor
  EXPECT_EQ(events.back().a, 9u);   // newest

  const std::string text = svm::proto_trace_dump(ring, "| ");
  EXPECT_NE(text.find("| ... 6 earlier event(s)"), std::string::npos);
  EXPECT_NE(text.find("| page 9 write fault"), std::string::npos);
}

TEST(EventRing, DumpTruncatesToMaxEventsAndCountsTheRest) {
  EventRing ring(16);
  for (u64 i = 0; i < 8; ++i) {
    ring.record(Event{0, i, 0, 0, EventKind::kProtoFault, 0});
  }
  const std::string text = svm::proto_trace_dump(ring, "", 3);
  EXPECT_NE(text.find("... 5 earlier event(s)"), std::string::npos);
  EXPECT_EQ(text.find("page 4 "), std::string::npos);  // truncated away
  EXPECT_NE(text.find("page 5 read fault"), std::string::npos);
  EXPECT_NE(text.find("page 7 read fault"), std::string::npos);
}

struct CollectSink final : EventSink {
  std::vector<Event> got;
  void on_event(const Event& e) override { got.push_back(e); }
};

TEST(EventBus, CategoryGateDropsDisabledPublishes) {
  EventBus bus(2);
  CollectSink sink;
  bus.attach(&sink);

  EXPECT_TRUE(bus.enabled(kCatProto));  // always on: feeds the rings
  EXPECT_FALSE(bus.enabled(kCatMail));

  bus.publish(Event{10, 1, 0, 0, EventKind::kMailSend, 0});
  EXPECT_TRUE(sink.got.empty());  // gated out, never reached the sink

  bus.enable(kCatMail);
  EXPECT_TRUE(bus.enabled(kCatMail));
  bus.publish(Event{20, 1, 0, 0, EventKind::kMailSend, 0});
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.got[0].t_ps, 20u);
  // Mail events pass to sinks but only kCatProto feeds the rings.
  EXPECT_EQ(bus.ring(0).recorded(), 0u);
}

TEST(EventBus, ProtoEventsLandInThePublishersRingAndAllSinks) {
  EventBus bus(2);
  CollectSink a;
  CollectSink b;
  bus.attach(&a);
  bus.attach(&b);

  bus.publish(Event{5, 7, 1, 0, EventKind::kProtoFault, 1});
  EXPECT_EQ(bus.ring(1).recorded(), 1u);
  EXPECT_EQ(bus.ring(0).recorded(), 0u);
  EXPECT_EQ(a.got.size(), 1u);  // fan-out reaches every sink
  EXPECT_EQ(b.got.size(), 1u);

  // Core ids outside [0, num_cores) — chip-level sources — share the
  // chip ring, including the -1 the watchdog publishes with.
  bus.publish(Event{6, 8, 0, 0, EventKind::kProtoFault, -1});
  bus.publish(Event{7, 9, 0, 0, EventKind::kProtoFault, 99});
  EXPECT_EQ(bus.ring(-1).recorded(), 2u);
  EXPECT_EQ(bus.ring(bus.num_cores()).recorded(), 2u);
}

TEST(Metrics, CountersAccumulateAndFoldFromFieldTables) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add("svm.faults", 3);
  m.add("svm.faults", 2);
  EXPECT_EQ(m.counter("svm.faults"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);

  struct Toy {
    u64 x = 4;
    u64 y = 2;
  };
  struct ToyField {
    const char* name;
    u64 Toy::*member;
  };
  static constexpr ToyField kToyFields[] = {{"x", &Toy::x},
                                            {"y", &Toy::y}};
  fold_fields(m, "toy", Toy{}, kToyFields);
  fold_fields(m, "toy", Toy{}, kToyFields);  // folds accumulate
  EXPECT_EQ(m.counter("toy.x"), 8u);
  EXPECT_EQ(m.counter("toy.y"), 4u);

  const std::string json = m.to_json("  ");
  EXPECT_NE(json.find("\"toy.x\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"svm.faults\": 5"), std::string::npos);

  m.clear();
  EXPECT_TRUE(m.empty());
}

TEST(Metrics, HistogramSummaryIsOrderIndependent) {
  MetricsRegistry m;
  for (const double v : {9.0, 1.0, 5.0, 3.0, 7.0}) {
    m.observe("lat", v);
  }
  const auto s = m.summarize("lat");
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);

  const auto missing = m.summarize("nope");
  EXPECT_EQ(missing.count, 0u);
}

TEST(Metrics, MailPackingRoundTrips) {
  const u64 packed = pack_mail(kWireOwnershipReq, 0xBEEF, 5);
  EXPECT_EQ(mail_type(packed), kWireOwnershipReq);
  EXPECT_EQ(mail_seq(packed), 0xBEEF);
  EXPECT_EQ(mail_requester(packed), 5);
  EXPECT_TRUE(is_wire_request(kWireOwnershipReq));
  EXPECT_TRUE(is_wire_ack(kWireOwnershipAck));
  EXPECT_FALSE(is_wire_ack(kWireOwnershipReq));
  EXPECT_EQ(flow_id(5, 0xBEEF), (u64{5} << 16) | 0xBEEF);
}

}  // namespace
}  // namespace msvm::obs
