// The zero-overhead-off guarantee, tested from both sides: a seeded
// workload runs bit-identically with the full observability pipeline on
// and with it off. Publishing is host-side only — it must never touch a
// core's virtual clock — so makespan and every hardware counter have to
// match exactly, not approximately.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/bus.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace msvm::obs {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Node;

struct RunResult {
  u64 makespan = 0;
  scc::CoreCounters totals;
  std::vector<scc::CoreCounters> per_core;
};

/// A small seeded matmul-ish workload with real sharing: both cores
/// read-modify-write interleaved rows of one shared block, synchronising
/// every pass, so the run exercises faults, transfers, mails, locks and
/// the WCB — every publish site the bus has.
RunResult run_workload(u64 seed) {
  ClusterConfig cfg;
  cfg.chip.num_cores = 2;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.model = svm::Model::kStrong;
  Cluster cl(cfg);
  cl.run([&](Node& n) {
    constexpr int kDim = 8;
    const u64 base = n.svm().alloc(kDim * kDim * sizeof(u64));
    sim::Rng rng(seed + static_cast<u64>(n.rank()));
    for (int pass = 0; pass < 3; ++pass) {
      for (int row = n.rank(); row < kDim; row += 2) {
        for (int col = 0; col < kDim; ++col) {
          const u64 addr =
              base + static_cast<u64>(row * kDim + col) * sizeof(u64);
          const u64 v = n.svm().read<u64>(addr);
          n.svm().write<u64>(addr, v + (rng.next_u64() & 0xff));
        }
      }
      n.svm().barrier();
    }
  });
  RunResult r;
  r.makespan = cl.makespan();
  r.totals = cl.chip().total_counters();
  for (const int c : cl.members()) {
    r.per_core.push_back(cl.node(c).core().counters());
  }
  return r;
}

void expect_identical(const scc::CoreCounters& on,
                      const scc::CoreCounters& off,
                      const std::string& label) {
  for (const scc::CoreCounterField& f : scc::kCoreCounterFields) {
    EXPECT_EQ(on.*(f.member), off.*(f.member))
        << label << " counter '" << f.name << "' diverged with obs on";
  }
}

TEST(ZeroOverhead, FullPipelineOnChangesNoCounterAndNoCycle) {
  // Baseline: observability entirely off (the default).
  runtime_config() = RuntimeConfig{};
  const RunResult off = run_workload(42);

  // Same seed, everything on: all categories (including the memory
  // firehose), the trace collector, and the heatmap sink.
  RuntimeConfig& cfg = runtime_config();
  cfg.categories = kCatAll;
  cfg.collect = true;
  cfg.heatmap = true;
  global_collector().clear();
  global_heatmap().clear();
  const RunResult on = run_workload(42);

  // The run was actually observed — otherwise this test proves nothing.
  EXPECT_FALSE(global_collector().empty());
  EXPECT_FALSE(global_heatmap().empty());

  EXPECT_EQ(on.makespan, off.makespan);
  expect_identical(on.totals, off.totals, "total");
  ASSERT_EQ(on.per_core.size(), off.per_core.size());
  for (std::size_t i = 0; i < on.per_core.size(); ++i) {
    expect_identical(on.per_core[i], off.per_core[i],
                     "core " + std::to_string(i));
  }

  runtime_config() = RuntimeConfig{};
  global_collector().clear();
  global_heatmap().clear();
}

TEST(ZeroOverhead, MetricsFoldingLeavesTheRunUntouched) {
  runtime_config() = RuntimeConfig{};
  const RunResult off = run_workload(7);

  global_metrics().clear();
  runtime_config().metrics = true;
  const RunResult on = run_workload(7);

  EXPECT_EQ(on.makespan, off.makespan);
  expect_identical(on.totals, off.totals, "total");

  // The fold actually happened, and through the field tables: core,
  // svm and mailbox families are all present with live values.
  const MetricsRegistry& m = global_metrics();
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.counter("core.loads"), off.totals.loads);
  EXPECT_EQ(m.counter("core.busy_ps"), off.totals.busy_ps);
  EXPECT_GT(m.counter("svm.ownership_acquires"), 0u);
  EXPECT_GT(m.counter("mailbox.sent"), 0u);
  EXPECT_EQ(m.summarize("chip.makespan_ms").count, 1u);

  runtime_config() = RuntimeConfig{};
  global_metrics().clear();
}

}  // namespace
}  // namespace msvm::obs
