// Chrome-trace exporter schema test: a 2-core strong-model ping-pong run
// is exported and the JSON is checked structurally — balanced braces,
// monotone timestamps per track, matched B/E slice pairs, and flow ids
// that resolve start-to-finish (every page-fault round trip is one
// clickable chain in Perfetto).
#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/bus.hpp"
#include "obs/heatmap.hpp"

namespace msvm::obs {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Node;

/// Turns the full observability pipeline on for one scope and restores
/// the all-off default (and empty global sinks) afterwards, so the other
/// tests in this binary — and this process's other runs — start clean.
struct ObsScope {
  ObsScope(u32 categories, bool collect, bool heatmap) {
    RuntimeConfig& cfg = runtime_config();
    cfg.categories = categories;
    cfg.collect = collect;
    cfg.heatmap = heatmap;
    global_collector().clear();
    global_heatmap().clear();
  }
  ~ObsScope() {
    runtime_config() = RuntimeConfig{};
    global_collector().clear();
    global_heatmap().clear();
  }
};

/// Two cores bouncing writes on one shared page: every round is a write
/// fault, an ownership request mail, a serve on the old owner and an ACK
/// back — the richest small event stream the exporter handles.
void run_ping_pong(int rounds) {
  ClusterConfig cfg;
  cfg.chip.num_cores = 2;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.svm.model = svm::Model::kStrong;
  Cluster cl(cfg);
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    for (int i = 0; i < rounds; ++i) {
      if (n.rank() == i % 2) {
        n.svm().write<u64>(base, static_cast<u64>(i + 1));
      }
      n.svm().barrier();
    }
  });
}

/// One JSON record per line in the exporter's output; the scanner below
/// relies on that (and on record field values containing no braces).
std::vector<std::string> records(const std::string& json) {
  std::vector<std::string> out;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    const auto start = line.find('{');
    if (start == std::string::npos) continue;
    if (line.find("\"ph\":") == std::string::npos) continue;  // header
    out.push_back(line.substr(start));
  }
  return out;
}

/// Raw token after `"key":` up to the next top-level ',' or '}'.
std::string raw_field(const std::string& rec, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = rec.find(needle);
  if (pos == std::string::npos) return "";
  std::size_t end = pos + needle.size();
  int depth = 0;
  while (end < rec.size()) {
    const char ch = rec[end];
    if (ch == '{') ++depth;
    if (ch == '}') {
      if (depth == 0) break;
      --depth;
    }
    if (ch == ',' && depth == 0) break;
    ++end;
  }
  return rec.substr(pos + needle.size(), end - pos - needle.size());
}

std::string ph_of(const std::string& rec) {
  const std::string raw = raw_field(rec, "ph");
  return raw.size() >= 2 ? raw.substr(1, raw.size() - 2) : raw;
}

TEST(ChromeTrace, PingPongExportPassesSchemaChecks) {
  std::string json;
  {
    ObsScope obs(kCatTrace, /*collect=*/true, /*heatmap=*/false);
    run_ping_pong(6);
    ASSERT_FALSE(global_collector().empty());
    EXPECT_EQ(global_collector().dropped(), 0u);
    json = chrome_trace_json(global_collector());
  }

  // Balanced braces and brackets (no string the exporter emits contains
  // either, so plain counting is a sound well-formedness check).
  int braces = 0;
  int brackets = 0;
  for (const char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  const std::vector<std::string> recs = records(json);
  ASSERT_GT(recs.size(), 10u);

  std::map<int, double> last_ts;       // per-track timestamp monotony
  std::map<int, int> slice_depth;      // per-track B/E nesting
  std::set<long long> flow_starts;
  std::set<long long> flow_steps;
  std::set<long long> flow_ends;
  bool saw_fault_slice = false;
  bool saw_thread_names = false;

  for (const std::string& rec : recs) {
    const std::string ph = ph_of(rec);
    ASSERT_FALSE(ph.empty()) << rec;
    if (ph == "M") {
      saw_thread_names = true;
      continue;
    }
    const int tid = std::stoi(raw_field(rec, "tid"));
    const double ts = std::stod(raw_field(rec, "ts"));
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "track " << tid << " went backwards";
    }
    last_ts[tid] = ts;

    if (ph == "B") {
      ++slice_depth[tid];
      if (raw_field(rec, "name") == "\"svm-fault\"") {
        saw_fault_slice = true;
      }
    } else if (ph == "E") {
      --slice_depth[tid];
      ASSERT_GE(slice_depth[tid], 0) << "E without B on track " << tid;
    } else if (ph == "s" || ph == "t" || ph == "f") {
      const long long id = std::stoll(raw_field(rec, "id"));
      if (ph == "s") flow_starts.insert(id);
      if (ph == "t") flow_steps.insert(id);
      if (ph == "f") flow_ends.insert(id);
    }
  }

  EXPECT_TRUE(saw_thread_names);
  EXPECT_TRUE(saw_fault_slice);  // the ping-pong faulted at least once
  for (const auto& [tid, depth] : slice_depth) {
    EXPECT_EQ(depth, 0) << "unmatched B on track " << tid;
  }

  // Every request flow that starts also steps through the owner and
  // terminates at the requester's ACK delivery — one complete chain per
  // page-fault round trip.
  ASSERT_FALSE(flow_starts.empty());
  for (const long long id : flow_starts) {
    EXPECT_TRUE(flow_steps.count(id)) << "flow " << id << " never stepped";
    EXPECT_TRUE(flow_ends.count(id)) << "flow " << id << " never ended";
  }
}

TEST(ChromeTrace, WriterProducesTheLoadableFile) {
  {
    ObsScope obs(kCatTrace, /*collect=*/true, /*heatmap=*/false);
    run_ping_pong(2);
    ASSERT_TRUE(write_chrome_trace(global_collector(), "obs_test.json"));
  }
  std::FILE* f = std::fopen("obs_test.json", "rb");
  ASSERT_NE(f, nullptr);
  char head[32] = {};
  const std::size_t n = std::fread(head, 1, sizeof(head) - 1, f);
  std::fclose(f);
  std::remove("obs_test.json");
  ASSERT_GT(n, 0u);
  EXPECT_EQ(std::string(head).rfind("{\"displayTimeUnit\"", 0), 0u);
}

TEST(Heatmap, PingPongLightsUpTheBouncedPage) {
  {
    ObsScope obs(/*categories=*/0, /*collect=*/false, /*heatmap=*/true);
    run_ping_pong(6);

    const PageHeatmap& h = global_heatmap();
    ASSERT_FALSE(h.empty());
    ASSERT_TRUE(h.pages().count(0));  // page 0 of the SVM arena bounced
    const PageHeatmap::PageStats& s = h.pages().at(0);
    EXPECT_GE(s.write_faults, 4u);  // one per handoff round
    EXPECT_GE(s.transfers, 4u);     // ownership moved every round
    EXPECT_EQ(s.replica_grants, 0u);  // strong model: no replicas

    const std::string table = h.table(1, "> ");
    EXPECT_EQ(table.rfind("> page", 0), 0u);
    EXPECT_NE(table.find("transfers"), std::string::npos);

    const std::string json = h.to_json();
    EXPECT_NE(json.find("\"pages\""), std::string::npos);
    EXPECT_NE(json.find("\"write_faults\""), std::string::npos);
  }
  EXPECT_TRUE(global_heatmap().empty());  // the scope cleaned up
}

}  // namespace
}  // namespace msvm::obs
