// Kernel substrate tests: boot-time private mapping, the kmalloc heap,
// interrupt fan-out, fault dispatch, and the TAS spin lock.
#include "kernel/kernel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sccsim/addrmap.hpp"

namespace msvm::kernel {
namespace {

scc::ChipConfig small_config(int cores = 2) {
  scc::ChipConfig cfg;
  cfg.num_cores = cores;
  cfg.shared_dram_bytes = 4 << 20;
  cfg.private_dram_bytes = 1 << 20;
  return cfg;
}

TEST(Kernel, BootMapsPrivateMemory) {
  scc::Chip chip(small_config());
  chip.spawn_program(0, [&](scc::Core& c) {
    Kernel k(c);
    k.boot();
    // The whole private region must be mapped, cacheable, non-MPBT.
    const scc::Pte* pte = c.pagetable().find(scc::kPrivVBase);
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->present);
    EXPECT_TRUE(pte->writable);
    EXPECT_FALSE(pte->mpbt);
    EXPECT_TRUE(pte->l2_enable);
    const u64 last =
        scc::kPrivVBase + chip.config().private_dram_bytes - 1;
    EXPECT_NE(c.pagetable().find(last), nullptr);
  });
  chip.run();
}

TEST(Kernel, PrivateMemoryIsPerCore) {
  scc::Chip chip(small_config());
  u32 seen_by_1 = 123;
  chip.spawn_program(0, [&](scc::Core& c) {
    Kernel k(c);
    k.boot();
    c.vstore<u32>(scc::kPrivVBase, 777);
  });
  chip.spawn_program(1, [&](scc::Core& c) {
    Kernel k(c);
    k.boot();
    c.compute_cycles(1'000'000);  // run after core 0's store
    seen_by_1 = c.vload<u32>(scc::kPrivVBase);
  });
  chip.run();
  // Same virtual address, different physical frames: no interference.
  EXPECT_EQ(seen_by_1, 0u);
}

TEST(Kernel, KmallocReturnsAlignedDisjointRegions) {
  scc::Chip chip(small_config());
  chip.spawn_program(0, [&](scc::Core& c) {
    Kernel k(c);
    k.boot();
    const u64 a = k.kmalloc(100, 8);
    const u64 b = k.kmalloc(64, 64);
    const u64 d = k.kmalloc(8, 8);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(d, b + 64);
    // Returned memory is usable.
    c.vstore<u64>(a, 1);
    c.vstore<u64>(b, 2);
    c.vstore<u64>(d, 3);
    EXPECT_EQ(c.vload<u64>(a), 1u);
    EXPECT_EQ(c.vload<u64>(b), 2u);
    EXPECT_EQ(c.vload<u64>(d), 3u);
  });
  chip.run();
}

TEST(Kernel, KheapRemainingShrinks) {
  scc::Chip chip(small_config());
  chip.spawn_program(0, [&](scc::Core& c) {
    Kernel k(c);
    k.boot();
    const u64 before = k.kheap_remaining();
    k.kmalloc(1024);
    EXPECT_LE(k.kheap_remaining(), before - 1024);
  });
  chip.run();
}

TEST(Kernel, IpiHandlersFanOut) {
  scc::Chip chip(small_config());
  int calls_a = 0;
  int calls_b = 0;
  chip.spawn_program(0, [&](scc::Core& c) {
    Kernel k(c);
    k.boot();
    k.add_ipi_handler([&](const scc::IpiSourceSet&) { ++calls_a; });
    k.add_ipi_handler([&](const scc::IpiSourceSet&) { ++calls_b; });
    while (calls_a == 0) k.idle_once();
  });
  chip.spawn_program(1, [&](scc::Core& c) {
    c.compute_cycles(1000);
    c.raise_ipi(0);
  });
  chip.run();
  EXPECT_EQ(calls_a, 1);
  EXPECT_EQ(calls_b, 1);
}

TEST(Kernel, SvmFaultHandlerReceivesSvmFaults) {
  scc::Chip chip(small_config());
  u64 faulted_vaddr = 0;
  bool faulted_write = false;
  chip.spawn_program(0, [&](scc::Core& c) {
    Kernel k(c);
    k.boot();
    k.set_svm_fault_handler([&](u64 vaddr, bool is_write) {
      faulted_vaddr = vaddr;
      faulted_write = is_write;
      scc::Pte pte;
      pte.frame_paddr = scc::kSharedBase;
      pte.present = true;
      pte.writable = true;
      pte.mpbt = true;
      c.pagetable().map(vaddr, pte);
    });
    c.vstore<u32>(scc::kSvmVBase + 40, 9);
  });
  chip.run();
  EXPECT_EQ(faulted_vaddr, scc::kSvmVBase + 40);
  EXPECT_TRUE(faulted_write);
}

TEST(TasSpinlock, MutualExclusionAcrossCores) {
  scc::Chip chip(small_config(8));
  TasSpinlock lock(3);
  int critical = 0;
  int max_critical = 0;
  long counter = 0;
  for (int i = 0; i < 8; ++i) {
    chip.spawn_program(i, [&](scc::Core& c) {
      Kernel k(c);
      k.boot();
      for (int iter = 0; iter < 20; ++iter) {
        TasLockGuard guard(lock, c);
        ++critical;
        max_critical = std::max(max_critical, critical);
        c.compute_cycles(30);
        ++counter;
        --critical;
      }
    });
  }
  chip.run();
  EXPECT_EQ(max_critical, 1);
  EXPECT_EQ(counter, 160);
}

TEST(TasSpinlock, ContendedLockEventuallyFair) {
  // All cores must complete; no starvation under the yield-based spin.
  scc::Chip chip(small_config(4));
  std::vector<int> done(4, 0);
  TasSpinlock lock(0);
  for (int i = 0; i < 4; ++i) {
    chip.spawn_program(i, [&, i](scc::Core& c) {
      Kernel k(c);
      k.boot();
      for (int iter = 0; iter < 10; ++iter) {
        lock.lock(c);
        c.compute_cycles(100);
        lock.unlock(c);
      }
      done[static_cast<std::size_t>(i)] = 1;
    });
  }
  chip.run();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(done[static_cast<std::size_t>(i)], 1);
}

}  // namespace
}  // namespace msvm::kernel
