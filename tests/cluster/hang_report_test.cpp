// Watchdog HangError reporting under multi-lane scheduling: a
// deliberately deadlocked 96-core run (rank 0 never enters the barrier)
// must surface as a typed HangError whose report names the blocked
// wait-site chain and the per-lane utilization of the sharded event
// scheduler — the two facts a hang investigation starts from.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sccsim/config.hpp"
#include "sim/faults.hpp"
#include "svm/svm.hpp"

namespace msvm::cluster {
namespace {

TEST(HangReport, MultiLaneDeadlockNamesWaitSitesAndLanes) {
  ClusterConfig cfg;
  scc::configure_cores(cfg.chip, 96);
  cfg.chip.sched_lanes = 4;
  cfg.chip.shared_dram_bytes = 32 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  // Short virtual-time watchdog so the deadlock is detected quickly.
  cfg.chip.faults.watchdog_ps = 2 * kPsPerMs;

  Cluster cl(cfg);
  std::string report;
  try {
    cl.run([](Node& n) {
      (void)n.svm().alloc(4096);
      if (n.rank() == 0) return;  // deliberately desert the barrier
      n.svm().barrier();          // 95 cores wait forever
    });
    FAIL() << "expected HangError from the deserted barrier";
  } catch (const sim::HangError& e) {
    report = e.report();
  }

  // The report is structured: headline, blocked actors with their
  // BlockScope wait-site chains, then the lane table.
  EXPECT_NE(report.find("watchdog hang report"), std::string::npos);
  EXPECT_NE(report.find("blocked actors:"), std::string::npos);
  // The 95 waiters are blocked inside the barrier; at least one wait
  // site naming it must appear (gather/release/dissemination variants
  // all share the svm.barrier prefix).
  EXPECT_NE(report.find("waiting at"), std::string::npos);
  EXPECT_NE(report.find("svm.barrier"), std::string::npos);
  // Lane utilization: the sharded scheduler reports each of the 4 lanes.
  EXPECT_NE(report.find("event lanes: 4"), std::string::npos);
  EXPECT_NE(report.find("lane 0:"), std::string::npos);
  EXPECT_NE(report.find("lane 3:"), std::string::npos);
  EXPECT_NE(report.find("events dispatched"), std::string::npos);
}

TEST(HangReport, SingleLaneReportOmitsLaneTable) {
  ClusterConfig cfg;
  cfg.chip.num_cores = 4;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.chip.faults.watchdog_ps = 2 * kPsPerMs;

  Cluster cl(cfg);
  std::string report;
  try {
    cl.run([](Node& n) {
      (void)n.svm().alloc(4096);
      if (n.rank() == 0) return;
      n.svm().barrier();
    });
    FAIL() << "expected HangError from the deserted barrier";
  } catch (const sim::HangError& e) {
    report = e.report();
  }
  EXPECT_NE(report.find("svm.barrier"), std::string::npos);
  // One lane is the classic single-heap scheduler: no lane table.
  EXPECT_EQ(report.find("event lanes:"), std::string::npos);
}

}  // namespace
}  // namespace msvm::cluster
