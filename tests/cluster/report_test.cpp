// Tests for the run-report formatter.
#include "cluster/report.hpp"

#include <gtest/gtest.h>

namespace msvm::cluster {
namespace {

TEST(Report, ContainsHeadlineAndSections) {
  ClusterConfig cfg;
  cfg.chip.num_cores = 4;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  Cluster cl(cfg);
  cl.run([](Node& n) {
    const u64 base = n.svm().alloc(4096);
    n.svm().write<u64>(base + 8 * static_cast<u64>(n.rank()), 1);
    n.svm().barrier();
  });
  const std::string report = format_report(cl);
  EXPECT_NE(report.find("run report: 4 member core(s)"),
            std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
  EXPECT_NE(report.find("svm: first-touch"), std::string::npos);
  EXPECT_NE(report.find("mailbox: sent"), std::string::npos);
  // The workload touched one page: one first-touch chip-wide.
  EXPECT_NE(report.find("first-touch 1,"), std::string::npos);
}

TEST(Report, PerCoreRowsWhenRequested) {
  ClusterConfig cfg;
  cfg.chip.num_cores = 3;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  Cluster cl(cfg);
  cl.run([](Node& n) {
    const u64 base = n.svm().alloc(4096);
    n.svm().write<u64>(base, static_cast<u64>(n.rank()));
    n.svm().barrier();
  });
  ReportOptions options;
  options.per_core = true;
  const std::string report = format_report(cl, options);
  EXPECT_NE(report.find("core  0"), std::string::npos);
  EXPECT_NE(report.find("core  1"), std::string::npos);
  EXPECT_NE(report.find("core  2"), std::string::npos);
}

TEST(Report, SectionsCanBeDisabled) {
  ClusterConfig cfg;
  cfg.chip.num_cores = 2;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  Cluster cl(cfg);
  cl.run([](Node& n) {
    (void)n.svm().alloc(4096);
    n.svm().barrier();
  });
  ReportOptions options;
  options.svm = false;
  options.mailbox = false;
  const std::string report = format_report(cl, options);
  EXPECT_EQ(report.find("svm:"), std::string::npos);
  EXPECT_EQ(report.find("mailbox:"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

TEST(Report, SvmTraceSectionWhenRequested) {
  ClusterConfig cfg;
  cfg.chip.num_cores = 2;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  cfg.members = {0, 1};
  cfg.svm.model = svm::Model::kStrong;
  Cluster cl(cfg);
  cl.run([](Node& n) {
    const u64 base = n.svm().alloc(4096);
    n.svm().barrier();
    // Both cores write the page: rank 1 first-touches or transfers, so
    // protocol events land in both rings.
    n.svm().write<u64>(base, static_cast<u64>(n.rank()));
    n.svm().barrier();
  });

  const std::string without = format_report(cl);
  EXPECT_EQ(without.find("svm-trace"), std::string::npos);

  ReportOptions options;
  options.svm_trace = true;
  const std::string report = format_report(cl, options);
  EXPECT_NE(report.find("svm-trace core 0"), std::string::npos);
  EXPECT_NE(report.find("svm-trace core 1"), std::string::npos);
  // Ring contents render through svm::proto_trace_dump — transitions and
  // metadata writes of the ownership protocol.
  EXPECT_NE(report.find("OwnedRW"), std::string::npos);
  EXPECT_NE(report.find("owner :="), std::string::npos);
}

}  // namespace
}  // namespace msvm::cluster
