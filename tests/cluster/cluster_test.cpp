// Cluster aggregation tests: SPMD lifecycle, member subsets, and the
// coherency-domain partitioning (several independent SVM domains on one
// chip, the paper's Section 1 goal).
#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace msvm::cluster {
namespace {

ClusterConfig base_config() {
  ClusterConfig cfg;
  cfg.chip.num_cores = 8;
  cfg.chip.shared_dram_bytes = 16 << 20;
  cfg.chip.private_dram_bytes = 1 << 20;
  return cfg;
}

TEST(Cluster, DefaultsToAllCores) {
  Cluster cl(base_config());
  int launched = 0;
  cl.run([&](Node& n) {
    (void)n;
    ++launched;
  });
  EXPECT_EQ(launched, 8);
}

TEST(Cluster, SubsetMembersGetDenseRanks) {
  ClusterConfig cfg = base_config();
  cfg.members = {1, 4, 6};
  Cluster cl(cfg);
  std::vector<int> rank_of_core(8, -1);
  cl.run([&](Node& n) {
    rank_of_core[static_cast<std::size_t>(n.core_id())] = n.rank();
    EXPECT_EQ(n.size(), 3);
  });
  EXPECT_EQ(rank_of_core[1], 0);
  EXPECT_EQ(rank_of_core[4], 1);
  EXPECT_EQ(rank_of_core[6], 2);
  EXPECT_EQ(rank_of_core[0], -1);
}

TEST(Cluster, NodeAccessAfterRunForStats) {
  ClusterConfig cfg = base_config();
  cfg.members = {0, 1};
  Cluster cl(cfg);
  cl.run([](Node& n) {
    const u64 base = n.svm().alloc(4096);
    n.svm().write<u32>(base + 8 * n.rank(), 1);
    n.svm().barrier();
  });
  EXPECT_GE(cl.node(0).svm().stats().barriers, 2u);
  EXPECT_GE(cl.node(0).core().counters().stores, 1u);
}

TEST(CoherencyDomains, TwoDomainsGetDisjointAddressSpaces) {
  ClusterConfig cfg = base_config();
  cfg.domains = {{0, 1, 2}, {4, 5}};
  Cluster cl(cfg);
  std::vector<u64> base_of_core(8, 0);
  cl.run([&](Node& n) {
    base_of_core[static_cast<std::size_t>(n.core_id())] =
        n.svm().alloc(4096);
    n.svm().barrier();
  });
  // Same base within a domain, different across domains.
  EXPECT_EQ(base_of_core[0], base_of_core[1]);
  EXPECT_EQ(base_of_core[0], base_of_core[2]);
  EXPECT_EQ(base_of_core[4], base_of_core[5]);
  EXPECT_NE(base_of_core[0], base_of_core[4]);
  EXPECT_EQ(cl.num_domains(), 2u);
}

TEST(CoherencyDomains, DomainsRunIndependentWorkloadsConcurrently) {
  // Domain A runs a strong-model counter; domain B a lazy histogram-ish
  // accumulation. Each must get its own correct result with zero
  // interference.
  ClusterConfig cfg = base_config();
  cfg.domains = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  cfg.svm.model = svm::Model::kStrong;  // both domains strong here
  Cluster cl(cfg);
  u32 total_a = 0;
  u64 total_b = 0;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    n.svm().barrier();
    if (n.core_id() < 4) {
      for (int i = 0; i < 10; ++i) {
        n.svm().lock_acquire(0);
        n.svm().write<u32>(base, n.svm().read<u32>(base) + 1);
        n.svm().lock_release(0);
      }
      n.svm().barrier();
      if (n.rank() == 0) total_a = n.svm().read<u32>(base);
    } else {
      n.svm().write<u64>(base + 8 + 8 * static_cast<u64>(n.rank()),
                         static_cast<u64>(n.rank()) + 1);
      n.svm().barrier();
      if (n.rank() == 0) {
        for (int r = 0; r < 4; ++r) {
          total_b += n.svm().read<u64>(base + 8 + 8 * static_cast<u64>(r));
        }
      }
    }
    n.svm().barrier();
  });
  EXPECT_EQ(total_a, 40u);      // 4 cores x 10 locked increments
  EXPECT_EQ(total_b, 1 + 2 + 3 + 4u);
}

TEST(CoherencyDomains, SameLockIdsDoNotCollideAcrossDomains) {
  // Lock id 0 in domain A and lock id 0 in domain B alias the same TAS
  // register (a chip-level resource) — that costs contention but must
  // not break correctness.
  ClusterConfig cfg = base_config();
  cfg.domains = {{0, 1}, {2, 3}};
  Cluster cl(cfg);
  std::vector<u64> sums(2, 0);
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    n.svm().barrier();
    for (int i = 0; i < 20; ++i) {
      n.svm().lock_acquire(0);
      n.svm().write<u64>(base, n.svm().read<u64>(base) + 1);
      n.svm().lock_release(0);
    }
    n.svm().barrier();
    if (n.rank() == 0) {
      sums[static_cast<std::size_t>(n.core_id() / 2)] =
          n.svm().read<u64>(base);
    }
  });
  EXPECT_EQ(sums[0], 40u);
  EXPECT_EQ(sums[1], 40u);
}

TEST(Cluster, MakespanCoversSlowestMember) {
  ClusterConfig cfg = base_config();
  cfg.members = {0, 1};
  Cluster cl(cfg);
  cl.run([](Node& n) {
    if (n.rank() == 1) n.core().compute_cycles(1'000'000);
  });
  EXPECT_GE(cl.makespan(), 1'000'000 * cl.chip().config().core_cycle_ps());
}


TEST(Barrier, DisseminationSynchronisesAndStaysSynchronised) {
  ClusterConfig cfg = base_config();
  cfg.svm.barrier_algo = svm::BarrierAlgo::kDissemination;
  Cluster cl(cfg);
  std::vector<int> counters(8, 0);
  bool monotone = true;
  std::vector<TimePs> after(8, 0);
  cl.run([&](Node& n) {
    (void)n.svm().alloc(4096);
    // Stagger arrivals wildly; nobody may pass before the slowest.
    n.core().compute_cycles(static_cast<u64>(n.rank()) * 60'000);
    n.svm().barrier();
    after[static_cast<std::size_t>(n.rank())] = n.core().now();
    // Many repeated barriers: the parity/sense reuse must stay sound.
    for (int round = 0; round < 20; ++round) {
      counters[static_cast<std::size_t>(n.rank())] = round;
      n.svm().barrier();
      for (int other = 0; other < 8; ++other) {
        if (counters[static_cast<std::size_t>(other)] < round) {
          monotone = false;
        }
      }
      n.svm().barrier();
    }
  });
  const TimePs slowest =
      7 * 60'000 * cl.chip().config().core_cycle_ps();
  for (int r = 0; r < 8; ++r) {
    EXPECT_GE(after[static_cast<std::size_t>(r)], slowest) << r;
  }
  EXPECT_TRUE(monotone);
}

TEST(Barrier, DisseminationIsExactForNonPowerOfTwoMemberCounts) {
  // Regression: the dissemination barrier must synchronise exactly for
  // any member count, not just powers of two — ceil(log2 n) rounds at
  // distances 1, 2, 4, ... (mod n) cover every core. A silently degraded
  // barrier would let a fast core pass before the slowest arrives.
  for (const int members : {3, 5, 6, 7}) {
    ClusterConfig cfg = base_config();
    cfg.svm.barrier_algo = svm::BarrierAlgo::kDissemination;
    cfg.members.clear();
    for (int c = 0; c < members; ++c) cfg.members.push_back(c);
    Cluster cl(cfg);
    std::vector<TimePs> after(static_cast<std::size_t>(members), 0);
    std::vector<int> counters(static_cast<std::size_t>(members), 0);
    bool monotone = true;
    cl.run([&](Node& n) {
      (void)n.svm().alloc(4096);
      n.core().compute_cycles(static_cast<u64>(n.rank()) * 60'000);
      n.svm().barrier();
      after[static_cast<std::size_t>(n.rank())] = n.core().now();
      // Repeated barriers keep the parity/sense reuse honest at odd n.
      for (int round = 0; round < 12; ++round) {
        counters[static_cast<std::size_t>(n.rank())] = round;
        n.svm().barrier();
        for (int other = 0; other < members; ++other) {
          if (counters[static_cast<std::size_t>(other)] < round) {
            monotone = false;
          }
        }
        n.svm().barrier();
      }
    });
    const TimePs slowest = static_cast<TimePs>(members - 1) * 60'000 *
                           cl.chip().config().core_cycle_ps();
    for (int r = 0; r < members; ++r) {
      EXPECT_GE(after[static_cast<std::size_t>(r)], slowest)
          << "members=" << members << " rank=" << r;
    }
    EXPECT_TRUE(monotone) << "members=" << members;
  }
}

TEST(Barrier, DisseminationAtFullChipWidth) {
  // 48 members need 6 rounds — exactly the reserved flag capacity; this
  // must work (ablation_barrier depends on it) while anything wider
  // panics instead of corrupting neighbouring MPB bytes.
  ClusterConfig cfg = base_config();
  cfg.chip.num_cores = 48;
  cfg.svm.barrier_algo = svm::BarrierAlgo::kDissemination;
  Cluster cl(cfg);
  std::vector<TimePs> after(48, 0);
  cl.run([&](Node& n) {
    (void)n.svm().alloc(4096);
    n.core().compute_cycles(static_cast<u64>(n.rank()) * 10'000);
    n.svm().barrier();
    after[static_cast<std::size_t>(n.rank())] = n.core().now();
  });
  const TimePs slowest =
      47 * 10'000 * cl.chip().config().core_cycle_ps();
  for (int r = 0; r < 48; ++r) {
    EXPECT_GE(after[static_cast<std::size_t>(r)], slowest) << r;
  }
}

TEST(Barrier, DisseminationDataTransferUnderLazyRelease) {
  ClusterConfig cfg = base_config();
  cfg.svm.barrier_algo = svm::BarrierAlgo::kDissemination;
  cfg.svm.model = svm::Model::kLazyRelease;
  Cluster cl(cfg);
  bool ok = true;
  cl.run([&](Node& n) {
    const u64 base = n.svm().alloc(4096);
    n.svm().barrier();
    n.svm().write<u64>(base + 8 * static_cast<u64>(n.rank()),
                       100 + static_cast<u64>(n.rank()));
    n.svm().barrier();  // release + acquire through dissemination
    for (int r = 0; r < n.size(); ++r) {
      if (n.svm().read<u64>(base + 8 * static_cast<u64>(r)) !=
          100 + static_cast<u64>(r)) {
        ok = false;
      }
    }
    n.svm().barrier();
  });
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace msvm::cluster
