// Unit tests for the chaos layer's spec parsing, injector determinism,
// and the virtual-time watchdog (driven through a bare scheduler).
#include <gtest/gtest.h>

#include "sim/faults.hpp"
#include "sim/scheduler.hpp"

namespace msvm::sim {
namespace {

TEST(FaultPlanParse, EmptySpecIsDefaultPlan) {
  const FaultPlan p = FaultPlan::parse("");
  EXPECT_FALSE(p.any_faults());
  EXPECT_EQ(p.watchdog_ps, 0u);
  EXPECT_EQ(p.sweep_period, 0u);
  EXPECT_TRUE(p.to_spec().empty());
}

TEST(FaultPlanParse, FullSpecRoundTripsThroughToSpec) {
  const char* spec =
      "seed=9,ipi_drop=0.25,ipi_delay=0.1:200us,mail_delay=0.05,"
      "mail_dup=0.02,stall=0.3:50us,spurious=0.01,watchdog=500ms,"
      "sweep=4,degrade=8,retry=2ms";
  const FaultPlan p = FaultPlan::parse(spec);
  EXPECT_EQ(p.seed, 9u);
  EXPECT_DOUBLE_EQ(p.ipi_drop, 0.25);
  EXPECT_DOUBLE_EQ(p.ipi_delay, 0.1);
  EXPECT_EQ(p.ipi_delay_max_ps, 200 * kPsPerUs);
  EXPECT_DOUBLE_EQ(p.mail_delay, 0.05);
  EXPECT_DOUBLE_EQ(p.mail_dup, 0.02);
  EXPECT_DOUBLE_EQ(p.stall, 0.3);
  EXPECT_EQ(p.stall_max_ps, 50 * kPsPerUs);
  EXPECT_DOUBLE_EQ(p.spurious, 0.01);
  EXPECT_EQ(p.watchdog_ps, 500 * kPsPerMs);
  EXPECT_EQ(p.sweep_period, 4u);
  EXPECT_EQ(p.degrade_after, 8u);
  EXPECT_EQ(p.retry_ps, 2 * kPsPerMs);
  EXPECT_TRUE(p.any_faults());

  // to_spec() must parse back to the identical plan.
  const FaultPlan q = FaultPlan::parse(p.to_spec());
  EXPECT_EQ(q.to_spec(), p.to_spec());
  EXPECT_EQ(q.seed, p.seed);
  EXPECT_EQ(q.watchdog_ps, p.watchdog_ps);
  EXPECT_DOUBLE_EQ(q.ipi_drop, p.ipi_drop);
}

TEST(FaultPlanParse, WhitespaceSeparatorsWork) {
  const FaultPlan p = FaultPlan::parse("ipi_drop=0.1 watchdog=10ms");
  EXPECT_DOUBLE_EQ(p.ipi_drop, 0.1);
  EXPECT_EQ(p.watchdog_ps, 10 * kPsPerMs);
}

TEST(FaultPlanParse, MalformedSpecsThrowTypedErrors) {
  EXPECT_THROW(FaultPlan::parse("bogus_key=1"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("ipi_drop"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("ipi_drop=1.5"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("ipi_drop=-0.1"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("watchdog=500"), FaultSpecError);  // no unit
  EXPECT_THROW(FaultPlan::parse("watchdog=abcms"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("stall=0.5"), FaultSpecError);  // needs :DUR
  EXPECT_THROW(FaultPlan::parse("stall=0.5:0ms"), FaultSpecError);
}

TEST(FaultPlanParse, KillAndLeaseClausesRoundTrip) {
  const FaultPlan p = FaultPlan::parse(
      "kill=3@10ms,kill=17@1234567ns,lease=2ms,watchdog=500ms");
  ASSERT_EQ(p.kills.size(), 2u);
  EXPECT_EQ(p.kills[0].core, 3);
  EXPECT_EQ(p.kills[0].at_ps, 10 * kPsPerMs);
  EXPECT_EQ(p.kills[1].core, 17);
  EXPECT_EQ(p.kills[1].at_ps, 1234567 * kPsPerNs);
  EXPECT_EQ(p.lease_ps, 2 * kPsPerMs);
  EXPECT_TRUE(p.any_faults());  // scheduled kills are faults

  const FaultPlan q = FaultPlan::parse(p.to_spec());
  EXPECT_EQ(q.to_spec(), p.to_spec());
  EXPECT_EQ(q.kills, p.kills);
  EXPECT_EQ(q.lease_ps, p.lease_ps);
}

TEST(FaultPlanParse, LeaseAloneIsNotAFault) {
  const FaultPlan p = FaultPlan::parse("lease=1ms");
  EXPECT_FALSE(p.any_faults());  // detection is a recovery knob
}

// Table-driven rejection: every malformed spec must throw a typed
// FaultSpecError whose message names the offending token — never parse
// to a silently-wrong plan.
TEST(FaultPlanParse, MalformedSpecsRejectedWithOffendingToken) {
  struct BadSpec {
    const char* spec;
    const char* why;
    const char* in_msg;  // substring the error message must carry
  };
  static constexpr BadSpec kBad[] = {
      {"bogus_key=1", "unknown key", "bogus_key"},
      {"=1ms", "empty key", "unknown key"},
      {"kill", "key without value", "key=value"},
      {"kill=3", "kill missing @TIME", "CORE@TIME"},
      {"kill=@5ms", "kill missing core", "kill=@5ms"},
      {"kill=x@5ms", "kill non-numeric core", "kill=x@5ms"},
      {"kill=-1@5ms", "kill negative core", "kill=-1@5ms"},
      {"kill=3@", "kill empty time", "kill=3@"},
      {"kill=3@5", "kill time without unit", "suffix"},
      {"kill=3@0ms", "kill time must be positive", "positive"},
      {"kill=3@5parsecs", "kill bogus unit", "suffix"},
      {"kill=200000@5ms", "implausible core id", "implausible"},
      {"kill=3@999999999s", "kill time past the virtual clock", "too large"},
      {"lease=", "lease empty duration", "lease="},
      {"lease=5", "lease without unit", "suffix"},
      {"lease=abcms", "lease non-numeric", "lease=abcms"},
      {"lease=0x10ms", "lease hex spelling", "lease=0x10ms"},
      {"lease=-2ms", "lease negative", "lease=-2ms"},
      {"seed=", "seed empty", "seed="},
      {"seed=12x", "seed trailing garbage", "seed=12x"},
      {"sweep=-1", "sweep negative", "sweep=-1"},
      {"watchdog=nan", "watchdog NaN", "watchdog=nan"},
      {"kill=3@1ms,lease=oops", "second token malformed", "lease=oops"},
  };
  for (const BadSpec& b : kBad) {
    try {
      FaultPlan::parse(b.spec);
      FAIL() << "expected FaultSpecError for '" << b.spec << "' (" << b.why
             << ")";
    } catch (const FaultSpecError& e) {
      // The message must point at the offending token so a user can find
      // the typo in a long spec string.
      EXPECT_NE(std::string(e.what()).find(b.in_msg), std::string::npos)
          << "spec '" << b.spec << "' (" << b.why << "): " << e.what();
    }
  }
}

TEST(FaultPlanParse, RecoveryKnobsAloneAreNotFaults) {
  const FaultPlan p = FaultPlan::parse("watchdog=100ms,sweep=2,retry=1ms");
  EXPECT_FALSE(p.any_faults());
}

TEST(FaultPlanParse, FlipClausesRoundTripThroughToSpec) {
  const FaultPlan p = FaultPlan::parse(
      "seed=5,flipmail=0.02@7,flippage=0.2,flipmeta=0.01,scrub=200us,"
      "watchdog=500ms");
  EXPECT_DOUBLE_EQ(p.flipmail, 0.02);
  EXPECT_EQ(p.flipmail_core, 7);
  EXPECT_DOUBLE_EQ(p.flippage, 0.2);
  EXPECT_DOUBLE_EQ(p.flipmeta, 0.01);
  EXPECT_EQ(p.scrub_ps, 200 * kPsPerUs);
  EXPECT_TRUE(p.any_faults());
  EXPECT_TRUE(p.integrity_armed());

  const FaultPlan q = FaultPlan::parse(p.to_spec());
  EXPECT_EQ(q.to_spec(), p.to_spec());
  EXPECT_DOUBLE_EQ(q.flipmail, p.flipmail);
  EXPECT_EQ(q.flipmail_core, p.flipmail_core);
  EXPECT_DOUBLE_EQ(q.flippage, p.flippage);
  EXPECT_DOUBLE_EQ(q.flipmeta, p.flipmeta);
  EXPECT_EQ(q.scrub_ps, p.scrub_ps);

  // A bare flipmail (no @CORE filter) round-trips without growing one.
  const FaultPlan bare = FaultPlan::parse("flipmail=0.1");
  EXPECT_EQ(bare.flipmail_core, -1);
  EXPECT_EQ(FaultPlan::parse(bare.to_spec()).flipmail_core, -1);
}

TEST(FaultPlanParse, IntegrityKnobsAloneAreNotFaults) {
  // Checksums without injection: byte-identical data, just guarded — so
  // any_faults (the injection gate) stays false while integrity_armed
  // (the detection gate) turns on.
  for (const char* spec : {"integrity=1", "scrub=500us"}) {
    const FaultPlan p = FaultPlan::parse(spec);
    EXPECT_FALSE(p.any_faults()) << spec;
    EXPECT_TRUE(p.integrity_armed()) << spec;
  }
  // Every flip clause implies the detection layer: injecting corruption
  // nobody checks for would be the silent-wrong outcome itself.
  for (const char* spec : {"flipmail=0.1", "flippage=0.1", "flipmeta=0.1"}) {
    const FaultPlan p = FaultPlan::parse(spec);
    EXPECT_TRUE(p.any_faults()) << spec;
    EXPECT_TRUE(p.integrity_armed()) << spec;
  }
  EXPECT_FALSE(FaultPlan::parse("integrity=0").integrity_armed());
}

TEST(FaultPlanParse, MalformedFlipClausesRejectedWithOffendingToken) {
  struct BadSpec {
    const char* spec;
    const char* why;
    const char* in_msg;
  };
  static constexpr BadSpec kBad[] = {
      {"flipmail=", "flipmail empty probability", "flipmail="},
      {"flipmail=1.5", "flipmail probability above 1", "outside [0,1]"},
      {"flipmail=-0.1", "flipmail negative probability", "outside [0,1]"},
      {"flipmail=nan", "flipmail NaN", "outside [0,1]"},
      {"flipmail=0.1@", "flipmail empty core filter", "flipmail=0.1@"},
      {"flipmail=0.1@x", "flipmail non-numeric core", "flipmail=0.1@x"},
      {"flipmail=0.1@-3", "flipmail negative core", "flipmail=0.1@-3"},
      {"flipmail=0.1@200000", "flipmail implausible core", "implausible"},
      {"flippage=2", "flippage probability above 1", "outside [0,1]"},
      {"flippage=0.1@3", "flippage takes no core filter", "outside [0,1]"},
      {"flipmeta=oops", "flipmeta non-numeric", "flipmeta=oops"},
      {"integrity=yes", "integrity non-boolean", "expected 0 or 1"},
      {"integrity=2", "integrity out of range", "expected 0 or 1"},
      {"scrub=5", "scrub without unit", "suffix"},
      {"scrub=-1ms", "scrub negative", "scrub=-1ms"},
  };
  for (const BadSpec& b : kBad) {
    try {
      FaultPlan::parse(b.spec);
      FAIL() << "expected FaultSpecError for '" << b.spec << "' (" << b.why
             << ")";
    } catch (const FaultSpecError& e) {
      EXPECT_NE(std::string(e.what()).find(b.in_msg), std::string::npos)
          << "spec '" << b.spec << "' (" << b.why << "): " << e.what();
    }
  }
}

TEST(FaultInjector, DisabledPlanNeverInjects) {
  FaultInjector inj{FaultPlan{}};
  EXPECT_FALSE(inj.enabled());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.drop_ipi());
    EXPECT_EQ(inj.ipi_extra_delay_ps(), 0u);
    EXPECT_FALSE(inj.delay_flag());
    EXPECT_FALSE(inj.duplicate_mail());
    EXPECT_EQ(inj.stall_ps(), 0u);
    EXPECT_EQ(inj.spurious_wake_ps(kPsPerMs), 0u);
    EXPECT_EQ(inj.mail_flip_bit(0, 248), -1);
    EXPECT_EQ(inj.page_flip_bit(4096 * 8), -1);
    EXPECT_EQ(inj.meta_flip_bit(16), -1);
  }
  EXPECT_EQ(inj.stats().ipis_dropped, 0u);
  EXPECT_EQ(inj.stats().stalls, 0u);
}

TEST(FaultInjector, SameSeedReplaysTheSameFaultSchedule) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=77,ipi_drop=0.3,mail_delay=0.2,stall=0.1:10us");
  FaultInjector a{plan};
  FaultInjector b{plan};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.drop_ipi(), b.drop_ipi());
    EXPECT_EQ(a.delay_flag(), b.delay_flag());
    EXPECT_EQ(a.stall_ps(), b.stall_ps());
  }
  EXPECT_EQ(a.stats().ipis_dropped, b.stats().ipis_dropped);
  EXPECT_GT(a.stats().ipis_dropped, 0u);
  EXPECT_GT(a.stats().flags_delayed, 0u);
  EXPECT_GT(a.stats().stalls, 0u);
}

TEST(FaultInjector, SameSeedReplaysTheSameFlipSchedule) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=11,flipmail=0.3,flippage=0.2,flipmeta=0.25");
  FaultInjector a{plan};
  FaultInjector b{plan};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.mail_flip_bit(i % 48, 248), b.mail_flip_bit(i % 48, 248));
    EXPECT_EQ(a.page_flip_bit(4096 * 8), b.page_flip_bit(4096 * 8));
    EXPECT_EQ(a.meta_flip_bit(16), b.meta_flip_bit(16));
  }
  EXPECT_EQ(a.stats().mail_flips, b.stats().mail_flips);
  EXPECT_GT(a.stats().mail_flips, 0u);
  EXPECT_GT(a.stats().page_flips, 0u);
  EXPECT_GT(a.stats().meta_flips, 0u);
}

TEST(FaultInjector, ClauseSubStreamsAreIndependent) {
  // The determinism contract behind per-clause sub-seeds: arming an
  // extra clause must not perturb the draws of the clauses already in
  // the plan, even when the queries interleave.
  FaultInjector just_mail{FaultPlan::parse("seed=3,flipmail=0.2")};
  FaultInjector mail_and_more{FaultPlan::parse(
      "seed=3,flipmail=0.2,flippage=0.5,flipmeta=0.5,ipi_drop=0.4")};
  for (int i = 0; i < 2000; ++i) {
    const int expect = just_mail.mail_flip_bit(i % 8, 248);
    mail_and_more.page_flip_bit(4096 * 8);
    mail_and_more.drop_ipi();
    EXPECT_EQ(mail_and_more.mail_flip_bit(i % 8, 248), expect) << i;
    mail_and_more.meta_flip_bit(64);
  }
  EXPECT_EQ(mail_and_more.stats().mail_flips, just_mail.stats().mail_flips);
}

TEST(FaultInjector, FlipMailCoreFilterConsumesNoForeignDraws) {
  // Mails to cores outside the @CORE filter must not advance the stream:
  // focusing the clause on core 5 leaves core 5's own flip schedule
  // exactly as if the other cores' deliveries never happened.
  FaultInjector focused{FaultPlan::parse("seed=9,flipmail=0.3@5")};
  FaultInjector reference{FaultPlan::parse("seed=9,flipmail=0.3@5")};
  for (int i = 0; i < 500; ++i) {
    for (int other = 0; other < 48; ++other) {
      if (other == 5) continue;
      EXPECT_EQ(focused.mail_flip_bit(other, 248), -1);
    }
    EXPECT_EQ(focused.mail_flip_bit(5, 248), reference.mail_flip_bit(5, 248));
  }
  EXPECT_EQ(focused.stats().mail_flips, reference.stats().mail_flips);
  EXPECT_GT(focused.stats().mail_flips, 0u);
}

TEST(FaultInjector, ClauseSeedsAreDistinct) {
  // The sub-seed finalizer must spread neighbouring clause indices apart;
  // a collision would correlate two clauses' schedules.
  for (u32 i = 0; i < static_cast<u32>(FaultClause::kCount); ++i) {
    for (u32 j = i + 1; j < static_cast<u32>(FaultClause::kCount); ++j) {
      EXPECT_NE(fault_clause_seed(42, static_cast<FaultClause>(i)),
                fault_clause_seed(42, static_cast<FaultClause>(j)));
    }
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector a{FaultPlan::parse("seed=1,ipi_drop=0.5")};
  FaultInjector b{FaultPlan::parse("seed=2,ipi_drop=0.5")};
  for (int i = 0; i < 500; ++i) {
    a.drop_ipi();
    b.drop_ipi();
  }
  EXPECT_NE(a.stats().ipis_dropped, b.stats().ipis_dropped);
}

TEST(Watchdog, DisabledWatchdogNeverTrips) {
  Scheduler sched;
  Watchdog wd(sched, 0);
  EXPECT_FALSE(wd.enabled());
  EXPECT_FALSE(wd.check(kPsPerSec, 0, "test.site", 0));
  EXPECT_FALSE(wd.tripped());
}

TEST(Watchdog, TripsPastTheLimitAndRequestsStop) {
  Scheduler sched;
  Watchdog wd(sched, 10 * kPsPerMs);
  ASSERT_TRUE(wd.enabled());
  // Within the limit: no trip.
  EXPECT_FALSE(wd.check(5 * kPsPerMs, 0, "test.site", 2));
  EXPECT_FALSE(sched.stop_requested());
  // Past the limit: trips, records a report, asks the scheduler to stop.
  bool provider_ran = false;
  wd.add_provider([&provider_ran](std::string& out) {
    provider_ran = true;
    out += "provider-section\n";
  });
  EXPECT_TRUE(wd.check(11 * kPsPerMs, 0, "test.site", 2));
  EXPECT_TRUE(wd.tripped());
  EXPECT_TRUE(sched.stop_requested());
  EXPECT_TRUE(provider_ran);
  EXPECT_NE(wd.report().find("test.site"), std::string::npos);
  EXPECT_NE(wd.report().find("provider-section"), std::string::npos);
  // Once tripped, every later check reports tripped immediately so the
  // caller parks instead of spinning on.
  EXPECT_TRUE(wd.check(11 * kPsPerMs + 1, 11 * kPsPerMs, "other", 0));
}

TEST(Watchdog, HangReportNamesBlockedActorsAndSites) {
  Scheduler sched;
  Watchdog wd(sched, kPsPerMs);
  sched.spawn("stuck-actor", [&sched] {
    BlockScope scope(sched.current(), "test.wait", 42, 7);
    sched.block();  // parked forever; cancelled at teardown
  });
  // Drive the actor to its block() by running until the stop request.
  // (block() leaves no timeout, so run() would throw DeadlockError; the
  // watchdog check below runs host-side before that.)
  EXPECT_TRUE(wd.check(2 * kPsPerMs, 0, "main.site", 0));
  const std::string& r = wd.report();
  EXPECT_NE(r.find("stuck-actor"), std::string::npos);
  sched.cancel_all();
}

TEST(Scheduler, DeadlockAbortEnumeratesBlockedActorsAndSites) {
  Scheduler sched;
  sched.spawn("blocked-a", [&sched] {
    BlockScope scope(sched.current(), "site.alpha", 1, 2);
    sched.block();
  });
  sched.spawn("blocked-b", [&sched] {
    BlockScope scope(sched.current(), "site.beta", 3, 4);
    sched.block();
  });
  try {
    sched.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("blocked-a"), std::string::npos);
    EXPECT_NE(msg.find("site.alpha(1,2)"), std::string::npos);
    EXPECT_NE(msg.find("blocked-b"), std::string::npos);
    EXPECT_NE(msg.find("site.beta(3,4)"), std::string::npos);
  }
  sched.cancel_all();
}

TEST(BlockScope, NestedSitesReportInnermostFirst) {
  Scheduler sched;
  std::string described;
  sched.spawn("nester", [&] {
    BlockScope outer(sched.current(), "outer.op", 1, 0);
    BlockScope inner(sched.current(), "inner.wait", 2, 0);
    described = sched.current()->describe_sites();
  });
  sched.run();
  EXPECT_EQ(described, "inner.wait(2,0) <- outer.op(1,0)");
}

}  // namespace
}  // namespace msvm::sim
