// Tests for the deterministic RNG, statistics helpers and time conversions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace msvm {
namespace {

TEST(Time, CyclePeriods) {
  EXPECT_EQ(cycle_ps_from_mhz(533), 1876u);  // SCC core clock
  EXPECT_EQ(cycle_ps_from_mhz(800), 1250u);  // SCC mesh/DRAM clock
  EXPECT_EQ(cycle_ps_from_mhz(1000), 1000u);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(ps_to_us(1'000'000), 1.0);
  EXPECT_DOUBLE_EQ(ps_to_ms(2'500'000'000ull), 2.5);
  EXPECT_DOUBLE_EQ(ps_to_sec(kPsPerSec), 1.0);
}

TEST(Rng, DeterministicForSameSeed) {
  sim::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  sim::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  sim::Rng r(7);
  for (u64 bound : {1ull, 2ull, 7ull, 48ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextRangeInclusive) {
  sim::Rng r(9);
  std::set<u64> seen;
  for (int i = 0; i < 500; ++i) {
    const u64 v = r.next_range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, DoubleInUnitInterval) {
  sim::Rng r(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RunningStats, BasicMoments) {
  sim::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  sim::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSet, PercentilesExact) {
  sim::SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(90), 90.0, 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(SampleSet, AddAfterPercentileQuery) {
  sim::SampleSet s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);  // nearest-rank on {1,3}
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);  // re-sorts after mutation
}

}  // namespace
}  // namespace msvm
